// Package repro is a from-scratch Go reproduction of "The Case For Data
// Centre Hyperloops" (ISCA 2024): an analytical and event-driven model of
// data centre hyperloops (DHLs) — maglev carts carrying M.2 SSDs through
// evacuated tubes — evaluated against 400 Gb/s optical networking for
// PB-scale bulk data movement.
//
// The root package is a thin facade over the implementation packages:
//
//   - internal/core:    the paper's analytical DHL model (Table VI, §V-E)
//   - internal/netmodel: the optical-network energy baseline (Fig. 2)
//   - internal/astra:   the "astra-lite" DLRM training study (Table VII, Fig. 6)
//   - internal/dhlsys:  the event-driven system simulation with the §III-D API
//   - internal/cost:    the materials cost model (Table VIII)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured numbers for every table and figure.
package repro

import (
	"repro/internal/astra"
	"repro/internal/core"
	"repro/internal/units"
)

// Config is a DHL deployment configuration (cart, track, LIM, docking).
type Config = core.Config

// LaunchMetrics are the five single-launch metrics of Table VI.
type LaunchMetrics = core.LaunchMetrics

// BulkTransfer is the analytical cost of a repeated-trip dataset transfer.
type BulkTransfer = core.BulkTransfer

// DefaultConfig is the paper's bold configuration: 256 TB cart, 500 m track,
// 200 m/s, 75 % efficient LIM, 3 s + 3 s docking.
func DefaultConfig() Config { return core.DefaultConfig() }

// Launch computes the single-launch metrics for a configuration.
func Launch(c Config) (LaunchMetrics, error) { return core.Launch(c) }

// Transfer computes the analytical bulk-transfer cost of moving a dataset.
func Transfer(c Config, dataset units.Bytes) (BulkTransfer, error) {
	return core.Transfer(c, dataset)
}

// PaperDataset is the paper's running example, Meta's 29 PB ML dataset.
const PaperDataset = core.PaperDataset

// DLRM is the calibrated §V-C training workload.
func DLRM() astra.DLRM { return astra.DefaultDLRM() }
