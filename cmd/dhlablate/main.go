// Command dhlablate runs the ablation and discussion-section (§VI) studies:
// docking-time sensitivity, acceleration/peak-power trade-off, regenerative
// braking, passive dual-rail braking, SSD-density scaling, pipelined
// transfers, thermal budgets, stabilisation power, and the sneakernet
// baselines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sneakernet"
	"repro/internal/storage"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlablate: ")
	jobs := flag.Int("j", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	flag.Parse()
	workers := sweep.Workers(*jobs)
	cfg := core.DefaultConfig()

	dock := report.NewTable("Docking-time sensitivity (§V-A observation a)",
		"dock_s", "launch_s", "dock_share", "bw_TB/s")
	rows, err := core.DockTimeSensitivity(cfg, []units.Seconds{0, 1, 2, 3, 4, 5}, workers)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		dock.AddRow(float64(r.DockTime), float64(r.Launch.Time), r.DockShare,
			float64(r.Launch.Bandwidth)/1e12)
	}
	render(dock)

	acc := report.NewTable("Acceleration vs peak power (§V-A note)",
		"accel_m/s2", "LIM_m", "launch_s", "extra_s", "peak_kW")
	arows, err := core.AccelerationTradeoff(cfg, []units.MetresPerSecond2{250, 500, 1000, 2000}, workers)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range arows {
		acc.AddRow(float64(r.Acceleration), float64(r.LIMLength),
			float64(r.Launch.Time), float64(r.ExtraTime), r.Launch.PeakPower.KW())
	}
	render(acc)

	regen := report.NewTable("Regenerative braking (§VI, 16–70%)",
		"regen", "energy_kJ", "saving")
	rrows, err := core.RegenerativeBrakingSavings(cfg, []float64{0, 0.16, 0.3, 0.5, 0.7}, workers)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rrows {
		regen.AddRow(r.Regen, r.Energy.KJ(), float64(r.Saving))
	}
	render(regen)

	active, passive, saving, err := core.PassiveBrakeSavings(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Passive eddy brakes (dual rail, §VI): %v → %v per launch (%v)\n\n",
		active, passive, saving)

	dens := report.NewTable("SSD density scaling (§II-A: upgrade carts, not the track)",
		"year", "ssd", "cart", "bw_TB/s", "GB/J")
	drows, err := core.DefaultDensityScaling()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range drows {
		dens.AddRow(r.Year, r.SSDCapacity.String(), r.CartCapacity.String(),
			float64(r.Launch.Bandwidth)/1e12, r.Launch.Efficiency)
	}
	render(dens)

	pipe := report.NewTable("Pipelined 29 PB transfer (§V-B refinements)",
		"mode", "cadence_s", "time", "speedup_vs_TableVI")
	for _, m := range []struct {
		name string
		opt  core.PipelineOptions
	}{
		{"single rail", core.PipelineOptions{DockStations: 1}},
		{"dual rail", core.PipelineOptions{DualRail: true, DockStations: 1}},
		{"dual rail + 4 docks + reads", core.PipelineOptions{DualRail: true, DockStations: 4, ReadRate: 227.2 * units.GBps}},
	} {
		pt, err := core.TransferPipelined(cfg, core.PaperDataset, m.opt)
		if err != nil {
			log.Fatal(err)
		}
		pipe.AddRow(m.name, float64(pt.Cadence), pt.Time.String(), float64(pt.Speedup))
	}
	render(pipe)

	th := report.NewTable("Thermal budget, 32-SSD cart under load (§VI)",
		"sink", "steady_C", "sustained", "sustainable_read_frac")
	for _, s := range []thermal.Sink{thermal.ConductiveFins, thermal.BareM2} {
		a, err := thermal.Analyze(thermal.CartThermals{Sink: s, NumSSDs: 32, Ambient: thermal.DefaultAmbient})
		if err != nil {
			log.Fatal(err)
		}
		th.AddRow(s.Name, a.SteadyTemp, fmt.Sprintf("%v", a.SustainedFullLoad), a.SustainableReadFraction)
	}
	render(th)

	p, err := control.StabilisationPowerPerCart()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Active stabilisation (§III-B.2): %v per cart — negligible vs the %v launch peak.\n\n",
		p, units.Watts(75.2*1000))

	courier, err := sneakernet.DefaultCourier().Carry(29*units.PB, storage.WD22TB, 500)
	if err != nil {
		log.Fatal(err)
	}
	dhl, err := core.Transfer(cfg, 29*units.PB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sneakernet baseline (§II-C): carrying 29 PB by hand = %d drives, %d trips, %v, %v wages;\n"+
		"the DHL does it in %v for %v of electricity.\n",
		courier.Drives, courier.Trips, courier.Time, courier.LaborCost, dhl.Time, dhl.Energy)
}

func render(t *report.Table) {
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
