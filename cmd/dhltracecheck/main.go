// Command dhltracecheck validates Chrome trace_event JSON files produced
// by dhlsim -trace-out (or any telemetry.ChromeTrace output): the file
// must parse as a trace_event object, timestamps of non-metadata events
// must be monotonically non-decreasing in file order (the exporter's
// sim-time ordering contract), and no complete event may carry a negative
// duration. CI runs it against a chaos-run trace to pin the exporter's
// invariants.
//
// Usage:
//
//	dhltracecheck FILE...
//
// Exits non-zero on the first invalid file.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

// traceEvent is the subset of the trace_event schema the checks inspect.
type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

// traceFile is the trace_event JSON object format.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// checkTrace validates one trace document and returns the number of
// events checked.
func checkTrace(data []byte) (int, error) {
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("not parseable trace JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	lastTs := 0.0
	seenTs := false
	for i, e := range f.TraceEvents {
		if e.Ph == "" {
			return 0, fmt.Errorf("event %d (%q): missing ph", i, e.Name)
		}
		if e.Pid == nil || e.Tid == nil {
			return 0, fmt.Errorf("event %d (%q): missing pid/tid", i, e.Name)
		}
		if e.Ph == "M" {
			continue // metadata events carry no timeline position
		}
		if e.Ts == nil {
			return 0, fmt.Errorf("event %d (%q): missing ts", i, e.Name)
		}
		if seenTs && *e.Ts < lastTs {
			return 0, fmt.Errorf("event %d (%q): ts %v before predecessor %v — sim-time order violated",
				i, e.Name, *e.Ts, lastTs)
		}
		lastTs, seenTs = *e.Ts, true
		if e.Ph == "X" {
			if e.Dur == nil {
				return 0, fmt.Errorf("event %d (%q): complete event missing dur", i, e.Name)
			}
			if *e.Dur < 0 {
				return 0, fmt.Errorf("event %d (%q): negative dur %v", i, e.Name, *e.Dur)
			}
		}
	}
	return len(f.TraceEvents), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhltracecheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: dhltracecheck FILE...")
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		n, err := checkTrace(data)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: ok (%d events, sim-time monotone)\n", path, n)
	}
}
