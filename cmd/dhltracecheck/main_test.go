package main

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestCheckTraceAcceptsExporterOutput(t *testing.T) {
	l := telemetry.NewSpanLog()
	l.Span("cart-0", "transit", 10, 110, telemetry.KV{Key: "dir", Value: "outbound"})
	l.Span("cart-1", "dock", 120, 125)
	l.Mark("cart-0", "reroute", 130)
	data, err := telemetry.ChromeTrace(l)
	if err != nil {
		t.Fatal(err)
	}
	n, err := checkTrace(data)
	if err != nil {
		t.Fatalf("exporter output rejected: %v", err)
	}
	// 2 tracks × 1 metadata event + 3 timeline events.
	if n != 5 {
		t.Errorf("checked %d events, want 5", n)
	}
}

func TestCheckTraceRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", `{"traceEvents": [`, "not parseable"},
		{"missing array", `{"displayTimeUnit": "ms"}`, "missing traceEvents"},
		{"missing ph", `{"traceEvents": [{"name": "x", "ts": 1, "pid": 1, "tid": 1}]}`, "missing ph"},
		{"missing pid", `{"traceEvents": [{"name": "x", "ph": "X", "ts": 1, "dur": 1, "tid": 1}]}`, "missing pid/tid"},
		{"missing ts", `{"traceEvents": [{"name": "x", "ph": "i", "pid": 1, "tid": 1}]}`, "missing ts"},
		{"time travel", `{"traceEvents": [
			{"name": "a", "ph": "X", "ts": 100, "dur": 1, "pid": 1, "tid": 1},
			{"name": "b", "ph": "X", "ts": 50, "dur": 1, "pid": 1, "tid": 1}]}`, "sim-time order violated"},
		{"missing dur", `{"traceEvents": [{"name": "x", "ph": "X", "ts": 1, "pid": 1, "tid": 1}]}`, "missing dur"},
		{"negative dur", `{"traceEvents": [{"name": "x", "ph": "X", "ts": 1, "dur": -2, "pid": 1, "tid": 1}]}`, "negative dur"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := checkTrace([]byte(tc.data))
			if err == nil {
				t.Fatal("invalid trace accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckTraceMetadataExemptFromOrdering(t *testing.T) {
	// "M" events carry no ts and may appear anywhere; real exporter output
	// front-loads them before timeline events.
	data := `{"traceEvents": [
		{"name": "a", "ph": "X", "ts": 100, "dur": 5, "pid": 1, "tid": 1},
		{"name": "thread_name", "ph": "M", "pid": 1, "tid": 2},
		{"name": "b", "ph": "i", "ts": 200, "pid": 1, "tid": 2}]}`
	if _, err := checkTrace([]byte(data)); err != nil {
		t.Errorf("metadata between timeline events rejected: %v", err)
	}
}
