// Command dhlserve runs the §III-D control plane: a TCP server exposing a
// simulated DHL deployment's Open/Close/Read/Write/Status/Metrics API as
// newline-delimited JSON. Telemetry is always on: status responses carry
// the metrics snapshot, and the metrics op returns the Prometheus text
// exposition of the deployment's registry.
//
// Usage:
//
//	dhlserve [-addr 127.0.0.1:7070] [-carts N] [-docks N] [-dual]
//	         [-pprof ADDR] [-drain 5s] [-max-conns N]
//	         [-max-queue N] [-admit-rate R] [-per-conn N]
//
// SIGINT/SIGTERM drains in-flight exchanges for -drain, then severs the
// stragglers and logs how many were cut off.
//
// Example session (one JSON object per line):
//
//	{"op":"open","cart":0}
//	{"op":"read","cart":0,"bytes":1e12}
//	{"op":"close","cart":0}
//	{"op":"status"}
//	{"op":"metrics"}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/dhlsys"
	"repro/internal/telemetry"
	"repro/internal/track"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlserve: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		carts     = flag.Int("carts", 2, "fleet size")
		docks     = flag.Int("docks", 4, "endpoint docking stations")
		dual      = flag.Bool("dual", false, "dual-rail track")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof profiles on this address (e.g. 127.0.0.1:6060); empty disables")

		drain     = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain before severing connections")
		maxConns  = flag.Int("max-conns", 0, "connection cap (0 off); excess connections get a busy reply")
		maxQueue  = flag.Int("max-queue", 64, "admission: bounded waiting room behind the simulation")
		admitRate = flag.Float64("admit-rate", 0, "admission: token-bucket rate limit, req/s (0 off)")
		perConn   = flag.Int("per-conn", 0, "admission: outstanding-request cap per connection (0 off)")
	)
	flag.Parse()

	opt := dhlsys.DefaultOptions()
	opt.NumCarts = *carts
	opt.DockStations = *docks
	opt.Telemetry = telemetry.NewSet()
	if *dual {
		opt.RailMode = track.DualRail
	}

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//dhllint:allow goroutine -- wall-clock profiling endpoint; the simulation stays single-threaded behind the control plane
		go func() {
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof profiles on http://%s/debug/pprof/\n", *pprofAddr)
	}
	sys, err := dhlsys.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	sopt := controlplane.DefaultServerOptions()
	sopt.DrainTimeout = *drain
	sopt.MaxConns = *maxConns
	sopt.Admission.MaxQueue = *maxQueue
	sopt.Admission.Rate = *admitRate
	sopt.Admission.PerConn = *perConn
	srv, err := controlplane.NewServerWithOptions(sys, sopt)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DHL control plane on %s (%d carts, %d docks, %v)\n",
		bound, opt.NumCarts, opt.DockStations, opt.RailMode)
	fmt.Println("Send newline-delimited JSON requests; SIGINT/SIGTERM drains and stops.")

	// Graceful shutdown: both Ctrl-C and the SIGTERM a supervisor sends
	// drain in-flight exchanges for -drain, then sever the stragglers.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("%v: draining for up to %v", got, *drain)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if n := srv.Severed(); n > 0 {
		log.Printf("drain deadline expired: severed %d connection(s)", n)
	} else {
		log.Printf("drained cleanly")
	}
}
