// Command dhlserve runs the §III-D control plane: a TCP server exposing a
// simulated DHL deployment's Open/Close/Read/Write/Status API as
// newline-delimited JSON.
//
// Usage:
//
//	dhlserve [-addr 127.0.0.1:7070] [-carts N] [-docks N] [-dual]
//
// Example session (one JSON object per line):
//
//	{"op":"open","cart":0}
//	{"op":"read","cart":0,"bytes":1e12}
//	{"op":"close","cart":0}
//	{"op":"status"}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/controlplane"
	"repro/internal/dhlsys"
	"repro/internal/track"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlserve: ")
	var (
		addr  = flag.String("addr", "127.0.0.1:7070", "listen address")
		carts = flag.Int("carts", 2, "fleet size")
		docks = flag.Int("docks", 4, "endpoint docking stations")
		dual  = flag.Bool("dual", false, "dual-rail track")
	)
	flag.Parse()

	opt := dhlsys.DefaultOptions()
	opt.NumCarts = *carts
	opt.DockStations = *docks
	if *dual {
		opt.RailMode = track.DualRail
	}
	sys, err := dhlsys.New(opt)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := controlplane.NewServer(sys)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DHL control plane on %s (%d carts, %d docks, %v)\n",
		bound, opt.NumCarts, opt.DockStations, opt.RailMode)
	fmt.Println("Send newline-delimited JSON requests; Ctrl-C to stop.")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
