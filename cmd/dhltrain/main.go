// Command dhltrain runs the astra-lite DLRM training study of §V-C:
// Table VII's iso-power and iso-time comparisons and the Figure 6 sweep.
//
// Usage:
//
//	dhltrain [-figure6] [-csv] [-tracks N] [-regen F]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/astra"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhltrain: ")
	var (
		figure6 = flag.Bool("figure6", false, "emit the Figure 6 power-vs-time sweep instead of Table VII")
		asCSV   = flag.Bool("csv", false, "emit CSV instead of tables/plots")
		tracks  = flag.Int("tracks", 1, "DHL tracks for the Table VII comparison")
		regen   = flag.Float64("regen", astra.DefaultRegen, "regenerative braking efficiency [0,1]")
		jobs    = flag.Int("j", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	)
	flag.Parse()

	w := astra.DefaultDLRM()
	dhl, err := astra.NewDHL(core.DefaultConfig(), *tracks, *regen)
	if err != nil {
		log.Fatal(err)
	}

	if *figure6 {
		opt := astra.DefaultFigure6Options()
		opt.Workers = *jobs
		curves, err := astra.Figure6(w, opt)
		if err != nil {
			log.Fatal(err)
		}
		if *asCSV {
			var rows [][]string
			for _, c := range curves {
				for _, p := range c.Points {
					rows = append(rows, []string{c.Name,
						fmt.Sprintf("%v", float64(p.Power)), fmt.Sprintf("%v", float64(p.Time))})
				}
			}
			if err := report.WriteCSV(os.Stdout, []string{"series", "power_w", "time_s"}, rows); err != nil {
				log.Fatal(err)
			}
			return
		}
		plot := report.Plot{
			Title:  "Figure 6 — time per DLRM iteration vs communication power budget",
			XLabel: "average power (W)", YLabel: "time/iteration (s)",
			Width: 90, Height: 28,
		}
		for _, c := range curves {
			s := report.Series{Name: c.Name}
			for _, p := range c.Points {
				s.X = append(s.X, float64(p.Power))
				s.Y = append(s.Y, float64(p.Time))
			}
			plot.Add(s)
		}
		if err := plot.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	emit := func(title string, rows []astra.SchemeResult, factorName string) {
		t := report.NewTable(title, "scheme", "avg_power_kW", "time_per_iter_s", factorName)
		for _, r := range rows {
			t.AddRow(r.Scheme, r.Power.KW(), float64(r.TimePerIter), float64(r.Factor))
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	iso, err := astra.IsoPower(w, dhl, sweep.Workers(*jobs))
	if err != nil {
		log.Fatal(err)
	}
	emit("Table VII(a) — time comparison with fixed average power", iso, "slowdown_vs_DHL")
	isoT, err := astra.IsoTime(w, dhl, sweep.Workers(*jobs))
	if err != nil {
		log.Fatal(err)
	}
	emit("Table VII(b) — communication power with fixed iteration time", isoT, "power_vs_DHL")
}
