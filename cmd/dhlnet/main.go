// Command dhlnet evaluates the optical-network energy baseline of §II-C:
// the five routes of Figure 2 and their power/energy for a bulk transfer.
//
// Usage:
//
//	dhlnet [-dataset-pb N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/netmodel"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlnet: ")
	datasetPB := flag.Float64("dataset-pb", 29, "dataset size in PB")
	flag.Parse()
	if *datasetPB <= 0 {
		log.Fatalf("-dataset-pb must be positive, got %v", *datasetPB)
	}
	dataset := units.Bytes(*datasetPB) * units.PB

	fmt.Printf("Transfer of %v over one %v link: %v (%.2f days)\n\n",
		dataset, netmodel.LineRate, netmodel.TransferTime(dataset),
		netmodel.TransferTime(dataset).Days())

	t := report.NewTable("Figure 2 — route power and energy",
		"route", "description", "power_W", "energy_MJ", "eff_GB/J")
	for _, s := range netmodel.Scenarios() {
		p := s.Power()
		t.AddRow(s.String(), s.Describe(), float64(p.Total()),
			p.Energy(dataset).MJ(), p.Efficiency(dataset))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	d := report.NewTable("Derived fat-tree routes (must match the scenario port counts)",
		"route", "xcvrs", "NICs", "passive_ports", "active_ports")
	for _, s := range netmodel.Scenarios() {
		rp := netmodel.ScenarioRoutes()[s]
		d.AddRow(s.String(), rp.Transceivers, rp.NICs, rp.PassivePorts, rp.ActivePorts)
	}
	if err := d.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
