package main

import (
	"repro/internal/lint"
)

// SARIF 2.1.0 output (-sarif) lets findings annotate pull requests via
// GitHub code scanning. The log is deterministic: the driver lists every
// rule in lint.Rules() order, and results follow the engine's sorted
// diagnostic order. Interprocedural chains ride along as indented
// continuation lines of the message text, and file URIs are
// module-root-relative under the standard %SRCROOT% base.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifReport renders sorted diagnostics (files already module-relative)
// as one SARIF run.
func sarifReport(diags []lint.Diagnostic) sarifLog {
	rules := lint.Rules()
	ruleIndex := make(map[string]int, len(rules))
	driver := sarifDriver{Name: "dhllint"}
	for i, r := range rules {
		ruleIndex[r.Name] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		text := d.Message
		for _, frame := range d.Chain {
			text += "\n  " + frame
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIndex[d.Rule],
			Level:     "warning",
			Message:   sarifMessage{Text: text},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       d.File,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
}
