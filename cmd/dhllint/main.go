// Command dhllint runs the repository's domain-specific static analyzers
// (internal/lint) over the module: determinism, map-order, unit-safety,
// dimensional-flow, float-equality, and goroutine-hygiene rules, plus the
// interprocedural purity, allocflow, lockcheck, lockorder, and goescape
// passes over the module call graph — pure stdlib end to end.
//
// Usage:
//
//	go run ./cmd/dhllint ./...             # lint every package
//	go run ./cmd/dhllint ./internal/core   # lint specific directories
//	go run ./cmd/dhllint -json ./...       # machine-readable report
//	go run ./cmd/dhllint -sarif ./...      # SARIF 2.1.0 log for code scanning
//	go run ./cmd/dhllint -rules determinism,maporder ./...
//	go run ./cmd/dhllint -disable floateq ./...
//	go run ./cmd/dhllint -graph ./...      # dump the call graph and exit
//	go run ./cmd/dhllint -j 4 ./...        # bound the analysis worker pool
//	                                       # (default: runtime.GOMAXPROCS)
//
// Exit status: 0 clean, 1 diagnostics found, 2 usage or load error.
// Interprocedural findings carry the full source→sink call chain, in the
// message and in the JSON "chain" field. Suppress a finding in place with
// a justified escape hatch:
//
//	//dhllint:allow <rule> -- <why this is safe>
//
// An allow that suppresses nothing is itself reported (rule unusedallow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint"
)

type report struct {
	Module string `json:"module"`
	// GoMaxProcs records the host parallelism the worker pool defaulted
	// to, so single-core no-speedup runs are self-explaining in recorded
	// reports (see BENCH_lint.json).
	GoMaxProcs  int               `json:"gomaxprocs"`
	Total       int               `json:"total"`
	Counts      map[string]int    `json:"counts"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

func main() {
	os.Exit(runCLI(os.Args[1:], os.Stdout, os.Stderr))
}

// runCLI is main with the process edges injected, so tests can drive the
// whole command without forking.
func runCLI(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dhllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit a JSON report instead of file:line:col lines")
		sarifOut = fs.Bool("sarif", false, "emit a SARIF 2.1.0 log (for GitHub code scanning)")
		rules    = fs.String("rules", "", "comma-separated rules to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated rules to skip")
		list     = fs.Bool("list", false, "list available rules and exit")
		graph    = fs.Bool("graph", false, "dump the module call graph and exit")
		workers  = fs.Int("j", runtime.GOMAXPROCS(0), "analysis workers")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "dhllint: -json and -sarif are mutually exclusive")
		return 2
	}

	if *list {
		for _, r := range lint.Rules() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name, r.Doc)
		}
		return 0
	}

	root, modpath, err := findModule()
	if err != nil {
		fmt.Fprintln(stderr, "dhllint:", err)
		return 2
	}
	cfg := lint.DefaultConfig(root, modpath)
	cfg.Workers = *workers
	if cfg.Enabled, err = ruleSet(*rules, *disable); err != nil {
		fmt.Fprintln(stderr, "dhllint:", err)
		return 2
	}

	paths, err := targetPaths(fs.Args(), root, modpath)
	if err != nil {
		fmt.Fprintln(stderr, "dhllint:", err)
		return 2
	}

	if *graph {
		g, err := lint.Graph(cfg, paths)
		if err != nil {
			fmt.Fprintln(stderr, "dhllint:", err)
			return 2
		}
		g.Dump(stdout)
		return 0
	}

	diags, err := lint.Run(cfg, paths)
	if err != nil {
		fmt.Fprintln(stderr, "dhllint:", err)
		return 2
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	switch {
	case *jsonOut:
		r := report{Module: modpath, GoMaxProcs: runtime.GOMAXPROCS(0),
			Total: len(diags), Counts: map[string]int{}, Diagnostics: diags}
		if r.Diagnostics == nil {
			r.Diagnostics = []lint.Diagnostic{}
		}
		for _, d := range diags {
			r.Counts[d.Rule]++
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "dhllint:", err)
			return 2
		}
	case *sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifReport(diags)); err != nil {
			fmt.Fprintln(stderr, "dhllint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "dhllint: %d issue(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// ruleSet resolves -rules/-disable into the config's Enabled map,
// rejecting unknown rule names. The name set is lint.Rules(): the
// analyzers plus the module-level passes (purity, allocflow, lockcheck,
// lockorder, goescape, unusedallow) and the "allow" justification check.
func ruleSet(rules, disable string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, r := range lint.Rules() {
		known[r.Name] = true
	}
	check := func(names []string) error {
		for _, n := range names {
			if !known[n] {
				return fmt.Errorf("unknown rule %q (use -list)", n)
			}
		}
		return nil
	}
	if rules == "" && disable == "" {
		return nil, nil
	}
	enabled := map[string]bool{}
	if rules == "" {
		for name := range known {
			enabled[name] = true
		}
	} else {
		names := splitList(rules)
		if err := check(names); err != nil {
			return nil, err
		}
		for _, n := range names {
			enabled[n] = true
		}
	}
	names := splitList(disable)
	if err := check(names); err != nil {
		return nil, err
	}
	for _, n := range names {
		delete(enabled, n)
	}
	return enabled, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// findModule locates go.mod upward from the working directory and reads
// the module path.
func findModule() (root, modpath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// targetPaths maps command-line patterns to import paths. "./..." (or no
// arguments) selects every package in the module; other arguments name
// package directories.
func targetPaths(args []string, root, modpath string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		if arg == "./..." || arg == "..." || arg == "all" {
			pkgs, err := lint.ModulePackages(root, modpath)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
			continue
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside the module", arg)
		}
		if rel == "." {
			add(modpath)
		} else {
			add(modpath + "/" + filepath.ToSlash(rel))
		}
	}
	sort.Strings(out)
	return out, nil
}
