package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src"

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runCLI(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListRules(t *testing.T) {
	code, out, _ := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"determinism", "maporder", "unitsafety", "dimflow",
		"floateq", "goroutine", "purity", "unusedallow", "allow"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list misses rule %q:\n%s", rule, out)
		}
	}
}

func TestFlagErrorsExitTwo(t *testing.T) {
	if code, _, _ := run(t, "-nonsense"); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code, _, stderr := run(t, "-rules", "nope", "."); code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown -rules name: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
	if code, _, stderr := run(t, "-disable", "nope", "."); code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown -disable name: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
}

func TestExitCodeGating(t *testing.T) {
	code, out, _ := run(t, "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	if code != 1 {
		t.Errorf("findings exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "issue(s)") {
		t.Errorf("text mode misses the summary line:\n%s", out)
	}
	code, out, _ = run(t, "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("clean package exited %d, want 0\n%s", code, out)
	}
}

// TestJSONExitCode pins the gate the shell wrapper relies on: -json mode
// must still exit non-zero when there are findings.
func TestJSONExitCode(t *testing.T) {
	code, out, _ := run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	if code != 1 {
		t.Errorf("-json with findings exited %d, want 1\n%s", code, out)
	}
	code, _, _ = run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("-json clean exited %d, want 0", code)
	}
}

// TestJSONGolden locks the report schema byte for byte.
func TestJSONGolden(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	golden := filepath.Join("testdata", "floateq_bad.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/dhllint -json -rules floateq %s > %s)",
			err, filepath.Join(fixtureDir, "floateq_bad"), golden)
	}
	if out != string(want) {
		t.Errorf("JSON report drifted from %s.\ngot:\n%s\nwant:\n%s", golden, out, want)
	}
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if r.Total != len(r.Diagnostics) || r.Counts["floateq"] != r.Total {
		t.Errorf("report totals inconsistent: %+v", r)
	}
}

func TestGraphDumpFlag(t *testing.T) {
	code, out, stderr := run(t, "-graph",
		filepath.Join(fixtureDir, "purity_helpers"), filepath.Join(fixtureDir, "purity_bad"))
	if code != 0 {
		t.Fatalf("-graph exited %d: %s", code, stderr)
	}
	if !strings.HasPrefix(out, "# call graph: ") {
		t.Errorf("-graph misses the summary header:\n%s", out)
	}
	for _, frag := range []string{".Stamp -> ", "=> time.Now (wall clock)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("-graph dump misses %q:\n%s", frag, out)
		}
	}
}
