package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src"

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runCLI(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListRules(t *testing.T) {
	code, out, _ := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"determinism", "maporder", "unitsafety", "dimflow",
		"floateq", "goroutine", "purity", "allocflow", "unusedallow", "allow"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list misses rule %q:\n%s", rule, out)
		}
	}
}

func TestFlagErrorsExitTwo(t *testing.T) {
	if code, _, _ := run(t, "-nonsense"); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code, _, stderr := run(t, "-rules", "nope", "."); code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown -rules name: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
	if code, _, stderr := run(t, "-disable", "nope", "."); code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown -disable name: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
}

func TestExitCodeGating(t *testing.T) {
	code, out, _ := run(t, "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	if code != 1 {
		t.Errorf("findings exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "issue(s)") {
		t.Errorf("text mode misses the summary line:\n%s", out)
	}
	code, out, _ = run(t, "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("clean package exited %d, want 0\n%s", code, out)
	}
}

// TestJSONExitCode pins the gate the shell wrapper relies on: -json mode
// must still exit non-zero when there are findings.
func TestJSONExitCode(t *testing.T) {
	code, out, _ := run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	if code != 1 {
		t.Errorf("-json with findings exited %d, want 1\n%s", code, out)
	}
	code, _, _ = run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("-json clean exited %d, want 0", code)
	}
}

// gomaxprocsLine matches the host-dependent parallelism field so golden
// comparisons hold on any machine; the live value is asserted separately.
var gomaxprocsLine = regexp.MustCompile(`"gomaxprocs": \d+`)

// checkGolden compares a -json report against a recorded golden with the
// gomaxprocs field normalised, and verifies the live field matches the
// host.
func checkGolden(t *testing.T, out, golden, regen string) {
	t.Helper()
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: %s)", err, regen)
	}
	norm := func(s string) string {
		return gomaxprocsLine.ReplaceAllString(s, `"gomaxprocs": N`)
	}
	if norm(out) != norm(string(want)) {
		t.Errorf("JSON report drifted from %s.\ngot:\n%s\nwant:\n%s", golden, out, want)
	}
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if r.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("report gomaxprocs = %d, host has %d", r.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if r.Total != len(r.Diagnostics) {
		t.Errorf("report totals inconsistent: %+v", r)
	}
}

// TestJSONGolden locks the report schema byte for byte (modulo the
// host-dependent gomaxprocs field).
func TestJSONGolden(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	golden := filepath.Join("testdata", "floateq_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules floateq "+filepath.Join(fixtureDir, "floateq_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	if r.Counts["floateq"] != r.Total {
		t.Errorf("report totals inconsistent: %+v", r)
	}
}

// TestJSONGoldenAllocFlow locks the interprocedural report shape: allocflow
// diagnostics must carry the shortest site→root call chain in the "chain"
// field.
func TestJSONGoldenAllocFlow(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "allocflow", filepath.Join(fixtureDir, "allocflow_bad"))
	golden := filepath.Join("testdata", "allocflow_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules allocflow "+filepath.Join(fixtureDir, "allocflow_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diagnostics {
		if len(d.Chain) == 0 {
			t.Errorf("allocflow diagnostic at %s:%d has no chain", d.File, d.Line)
		}
	}
}

func TestGraphDumpFlag(t *testing.T) {
	code, out, stderr := run(t, "-graph",
		filepath.Join(fixtureDir, "purity_helpers"), filepath.Join(fixtureDir, "purity_bad"))
	if code != 0 {
		t.Fatalf("-graph exited %d: %s", code, stderr)
	}
	if !strings.HasPrefix(out, "# call graph: ") {
		t.Errorf("-graph misses the summary header:\n%s", out)
	}
	for _, frag := range []string{".Stamp -> ", "=> time.Now (wall clock)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("-graph dump misses %q:\n%s", frag, out)
		}
	}
}
