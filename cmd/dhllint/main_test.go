package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src"

func run(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = runCLI(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListRules(t *testing.T) {
	code, out, _ := run(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"determinism", "maporder", "unitsafety", "dimflow",
		"floateq", "goroutine", "purity", "allocflow", "lockcheck", "lockorder",
		"goescape", "unusedallow", "allow"} {
		if !strings.Contains(out, rule) {
			t.Errorf("-list misses rule %q:\n%s", rule, out)
		}
	}
}

func TestFlagErrorsExitTwo(t *testing.T) {
	if code, _, _ := run(t, "-nonsense"); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code, _, stderr := run(t, "-rules", "nope", "."); code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown -rules name: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
	if code, _, stderr := run(t, "-disable", "nope", "."); code != 2 || !strings.Contains(stderr, "unknown rule") {
		t.Errorf("unknown -disable name: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
}

func TestExitCodeGating(t *testing.T) {
	code, out, _ := run(t, "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	if code != 1 {
		t.Errorf("findings exited %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "issue(s)") {
		t.Errorf("text mode misses the summary line:\n%s", out)
	}
	code, out, _ = run(t, "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("clean package exited %d, want 0\n%s", code, out)
	}
}

// TestJSONExitCode pins the gate the shell wrapper relies on: -json mode
// must still exit non-zero when there are findings.
func TestJSONExitCode(t *testing.T) {
	code, out, _ := run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	if code != 1 {
		t.Errorf("-json with findings exited %d, want 1\n%s", code, out)
	}
	code, _, _ = run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("-json clean exited %d, want 0", code)
	}
}

// gomaxprocsLine matches the host-dependent parallelism field so golden
// comparisons hold on any machine; the live value is asserted separately.
var gomaxprocsLine = regexp.MustCompile(`"gomaxprocs": \d+`)

// checkGolden compares a -json report against a recorded golden with the
// gomaxprocs field normalised, and verifies the live field matches the
// host.
func checkGolden(t *testing.T, out, golden, regen string) {
	t.Helper()
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: %s)", err, regen)
	}
	norm := func(s string) string {
		return gomaxprocsLine.ReplaceAllString(s, `"gomaxprocs": N`)
	}
	if norm(out) != norm(string(want)) {
		t.Errorf("JSON report drifted from %s.\ngot:\n%s\nwant:\n%s", golden, out, want)
	}
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if r.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("report gomaxprocs = %d, host has %d", r.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if r.Total != len(r.Diagnostics) {
		t.Errorf("report totals inconsistent: %+v", r)
	}
}

// TestJSONGolden locks the report schema byte for byte (modulo the
// host-dependent gomaxprocs field).
func TestJSONGolden(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_bad"))
	golden := filepath.Join("testdata", "floateq_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules floateq "+filepath.Join(fixtureDir, "floateq_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	if r.Counts["floateq"] != r.Total {
		t.Errorf("report totals inconsistent: %+v", r)
	}
}

// TestJSONGoldenAllocFlow locks the interprocedural report shape: allocflow
// diagnostics must carry the shortest site→root call chain in the "chain"
// field.
func TestJSONGoldenAllocFlow(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "allocflow", filepath.Join(fixtureDir, "allocflow_bad"))
	golden := filepath.Join("testdata", "allocflow_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules allocflow "+filepath.Join(fixtureDir, "allocflow_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diagnostics {
		if len(d.Chain) == 0 {
			t.Errorf("allocflow diagnostic at %s:%d has no chain", d.File, d.Line)
		}
	}
}

// TestJSONGoldenLockCheck locks the lock-discipline report shape: direct
// findings carry the single access frame, interprocedural findings the
// caller→access chain, and annotation errors no chain at all.
func TestJSONGoldenLockCheck(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "lockcheck", filepath.Join(fixtureDir, "lockcheck_bad"))
	golden := filepath.Join("testdata", "lockcheck_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules lockcheck "+filepath.Join(fixtureDir, "lockcheck_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	interprocedural := 0
	for _, d := range r.Diagnostics {
		if len(d.Chain) > 1 {
			interprocedural++
		}
	}
	if interprocedural == 0 {
		t.Errorf("expected at least one multi-frame lockcheck chain: %+v", r.Diagnostics)
	}
}

// TestJSONGoldenLockOrder locks the cycle report shape: every cycle
// carries one witness frame per edge in its chain.
func TestJSONGoldenLockOrder(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "lockorder", filepath.Join(fixtureDir, "lockorder_bad"))
	golden := filepath.Join("testdata", "lockorder_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules lockorder "+filepath.Join(fixtureDir, "lockorder_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diagnostics {
		if len(d.Chain) < 2 {
			t.Errorf("lockorder cycle at %s:%d has %d witness frames, want >= 2", d.File, d.Line, len(d.Chain))
		}
	}
}

// TestJSONGoldenGoEscape locks the escape report shape, including the
// call-graph-propagated finding's method→touch chain.
func TestJSONGoldenGoEscape(t *testing.T) {
	_, out, _ := run(t, "-json", "-rules", "goescape", filepath.Join(fixtureDir, "goescape_bad"))
	golden := filepath.Join("testdata", "goescape_bad.json")
	checkGolden(t, out, golden,
		"go run ./cmd/dhllint -json -rules goescape "+filepath.Join(fixtureDir, "goescape_bad")+" > "+golden)
	var r report
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Diagnostics {
		if len(d.Chain) == 0 {
			t.Errorf("goescape diagnostic at %s:%d has no chain", d.File, d.Line)
		}
	}
}

// TestSARIFGolden locks the SARIF 2.1.0 log byte for byte: nothing in it
// is host-dependent, so the comparison is exact. The log must parse, name
// every rule in the driver, and gate the exit code like every other mode.
func TestSARIFGolden(t *testing.T) {
	code, out, _ := run(t, "-sarif", "-rules", "lockcheck", filepath.Join(fixtureDir, "lockcheck_bad"))
	if code != 1 {
		t.Errorf("-sarif with findings exited %d, want 1", code)
	}
	golden := filepath.Join("testdata", "lockcheck_bad.sarif")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with: go run ./cmd/dhllint -sarif -rules lockcheck %s > %s)",
			err, filepath.Join(fixtureDir, "lockcheck_bad"), golden)
	}
	if out != string(want) {
		t.Errorf("SARIF log drifted from %s.\ngot:\n%s\nwant:\n%s", golden, out, want)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF log is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "dhllint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), 13; got != want {
		t.Errorf("driver lists %d rules, want %d", got, want)
	}
	if len(run.Results) == 0 {
		t.Fatal("no results in the SARIF log")
	}
	for _, res := range run.Results {
		if res.RuleID != "lockcheck" {
			t.Errorf("unexpected ruleId %q", res.RuleID)
		}
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("ruleIndex %d does not point at %q", res.RuleIndex, res.RuleID)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.Region.StartLine < 1 || loc.ArtifactLocation.URI == "" {
			t.Errorf("result missing location: %+v", res)
		}
	}
}

func TestSARIFCleanAndFlagExclusion(t *testing.T) {
	code, _, _ := run(t, "-sarif", "-rules", "floateq", filepath.Join(fixtureDir, "floateq_clean"))
	if code != 0 {
		t.Errorf("-sarif clean exited %d, want 0", code)
	}
	code, _, stderr := run(t, "-json", "-sarif", ".")
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("-json -sarif: exit %d, stderr %q; want 2 and a mention", code, stderr)
	}
}

func TestGraphDumpFlag(t *testing.T) {
	code, out, stderr := run(t, "-graph",
		filepath.Join(fixtureDir, "purity_helpers"), filepath.Join(fixtureDir, "purity_bad"))
	if code != 0 {
		t.Fatalf("-graph exited %d: %s", code, stderr)
	}
	if !strings.HasPrefix(out, "# call graph: ") {
		t.Errorf("-graph misses the summary header:\n%s", out)
	}
	for _, frag := range []string{".Stamp -> ", "=> time.Now (wall clock)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("-graph dump misses %q:\n%s", frag, out)
		}
	}
}
