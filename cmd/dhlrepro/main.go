// Command dhlrepro regenerates every table and figure of the paper in one
// run, writing text and CSV artefacts into an output directory — the
// repository's "make all figures" entry point.
//
// Usage:
//
//	dhlrepro [-out out]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/astra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/netmodel"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlrepro: ")
	outDir := flag.String("out", "out", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, data []byte) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}

	// Figure 2: route energies.
	{
		var b bytes.Buffer
		t := report.NewTable("Figure 2 — network route energies for 29 PB",
			"route", "power_W", "energy_MJ")
		for _, s := range netmodel.Scenarios() {
			t.AddRow(s.String(), float64(s.Power().Total()),
				s.Power().Energy(core.PaperDataset).MJ())
		}
		must(t.Render(&b))
		write("fig2_route_energies.txt", b.Bytes())
	}

	// Table VI.
	{
		rows, err := core.DesignSpace()
		must(err)
		var b bytes.Buffer
		headers := []string{"config", "energy_kJ", "eff_GB_per_J", "time_s", "bw_TB_per_s",
			"peak_kW", "trips", "speedup", "red_A0", "red_A1", "red_A2", "red_B", "red_C"}
		var data [][]string
		for _, r := range rows {
			row := []string{
				r.Launch.Config.String(),
				fmt.Sprintf("%.4g", r.Launch.Energy.KJ()),
				fmt.Sprintf("%.4g", r.Launch.Efficiency),
				fmt.Sprintf("%.4g", float64(r.Launch.Time)),
				fmt.Sprintf("%.4g", float64(r.Launch.Bandwidth)/1e12),
				fmt.Sprintf("%.4g", r.Launch.PeakPower.KW()),
				fmt.Sprintf("%d", r.Transfer.TotalTrips),
				fmt.Sprintf("%.4g", float64(r.Comparisons[0].TimeSpeedup)),
			}
			for _, c := range r.Comparisons {
				row = append(row, fmt.Sprintf("%.4g", float64(c.EnergyReduction)))
			}
			data = append(data, row)
		}
		must(report.WriteCSV(&b, headers, data))
		write("table6_design_space.csv", b.Bytes())
	}

	// Table VII.
	{
		w := astra.DefaultDLRM()
		dhl := astra.DefaultDHL()
		var b bytes.Buffer
		emit := func(title string, rows []astra.SchemeResult, factor string) {
			t := report.NewTable(title, "scheme", "power_kW", "time_s", factor)
			for _, r := range rows {
				t.AddRow(r.Scheme, r.Power.KW(), float64(r.TimePerIter), float64(r.Factor))
			}
			must(t.Render(&b))
			b.WriteString("\n")
		}
		iso, err := astra.IsoPower(w, dhl)
		must(err)
		emit("Table VII(a) — iso-power", iso, "slowdown")
		isoT, err := astra.IsoTime(w, dhl)
		must(err)
		emit("Table VII(b) — iso-time", isoT, "power_increase")
		write("table7_training.txt", b.Bytes())
	}

	// Figure 6: CSV series and ASCII plot.
	{
		curves, err := astra.Figure6(astra.DefaultDLRM(), astra.DefaultFigure6Options())
		must(err)
		var csvB bytes.Buffer
		var rows [][]string
		plot := report.Plot{
			Title:  "Figure 6 — time per DLRM iteration vs communication power",
			XLabel: "power (W)", YLabel: "time (s)", Width: 90, Height: 28,
		}
		for _, c := range curves {
			s := report.Series{Name: c.Name}
			for _, p := range c.Points {
				rows = append(rows, []string{c.Name,
					fmt.Sprintf("%.6g", float64(p.Power)), fmt.Sprintf("%.6g", float64(p.Time))})
				s.X = append(s.X, float64(p.Power))
				s.Y = append(s.Y, float64(p.Time))
			}
			plot.Add(s)
		}
		must(report.WriteCSV(&csvB, []string{"series", "power_w", "time_s"}, rows))
		write("fig6_curves.csv", csvB.Bytes())
		var plotB bytes.Buffer
		must(plot.Render(&plotB))
		write("fig6_plot.txt", plotB.Bytes())
	}

	// Table VIII.
	{
		var b bytes.Buffer
		t := report.NewTable("Table VIII(c) — overall cost grid",
			"distance_m", "100m/s", "200m/s", "300m/s")
		for _, d := range []units.Metres{100, 500, 1000} {
			t.AddRow(float64(d), cost.Overall(d, 100).String(),
				cost.Overall(d, 200).String(), cost.Overall(d, 300).String())
		}
		must(t.Render(&b))
		write("table8_cost.txt", b.Bytes())
	}

	// §V-E crossover.
	{
		r, err := core.Crossover(core.MinimumSpecConfig(), netmodel.ScenarioA0)
		must(err)
		body := fmt.Sprintf("Minimum specs (§V-E): launch %v, break-even dataset %v,\n"+
			"optical %v vs DHL %v per window.\n",
			r.LaunchTime, r.BreakEvenDataset, r.OpticalEnergy, r.DHLEnergy)
		write("sec5e_minimum_specs.txt", []byte(body))
	}

	fmt.Println("all artefacts regenerated")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
