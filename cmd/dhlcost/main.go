// Command dhlcost regenerates the paper's Table VIII materials cost model.
//
// Usage:
//
//	dhlcost
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cost"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlcost: ")

	a := report.NewTable("Table VIII(a) — total rail cost",
		"component", "USD/kg", "100m", "500m", "1000m")
	rails := []cost.RailCost{cost.Rail(100), cost.Rail(500), cost.Rail(1000)}
	a.AddRow("Aluminium", float64(cost.AluminiumPerKg),
		rails[0].Aluminium.String(), rails[1].Aluminium.String(), rails[2].Aluminium.String())
	a.AddRow("PVC (rail)", float64(cost.PVCPerKg),
		rails[0].PVCRail.String(), rails[1].PVCRail.String(), rails[2].PVCRail.String())
	a.AddRow("PVC (vacuum tube)", float64(cost.PVCPerKg),
		rails[0].PVCTube.String(), rails[1].PVCTube.String(), rails[2].PVCTube.String())
	a.AddRow("Total", "-",
		rails[0].Total().String(), rails[1].Total().String(), rails[2].Total().String())
	if err := a.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	b := report.NewTable("Table VIII(b) — total accelerator/decelerator cost",
		"component", "USD/kg", "100m/s", "200m/s", "300m/s")
	lims := []cost.LIMCost{cost.LIM(100), cost.LIM(200), cost.LIM(300)}
	b.AddRow("Copper wire", float64(cost.CopperPerKg),
		lims[0].Copper.String(), lims[1].Copper.String(), lims[2].Copper.String())
	b.AddRow("VFD", "-", lims[0].VFD.String(), lims[1].VFD.String(), lims[2].VFD.String())
	b.AddRow("Total", "-", lims[0].Total().String(), lims[1].Total().String(), lims[2].Total().String())
	if err := b.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	c := report.NewTable("Table VIII(c) — overall total cost",
		"distance", "100m/s", "200m/s", "300m/s")
	for _, d := range []units.Metres{100, 500, 1000} {
		c.AddRow(fmt.Sprintf("%gm", float64(d)),
			cost.Overall(d, 100).String(), cost.Overall(d, 200).String(), cost.Overall(d, 300).String())
	}
	if err := c.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nYardstick: a large 400Gb/s switch costs about %v.\n", cost.ComparableSwitchCost)
}
