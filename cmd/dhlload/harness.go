package main

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/controlplane"
	"repro/internal/cpclient"
	"repro/internal/dhlsys"
	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// Config shapes one deterministic load run. Every field feeds the virtual
// clock or a seeded RNG; the same Config always produces a byte-identical
// Result (the determinism contract documented in DESIGN.md §11).
type Config struct {
	Mode     string  // "closed" or "open"
	Clients  int     // concurrent clients (closed) or connections (open)
	Duration float64 // virtual seconds of offered load
	Seed     int64

	// Closed-loop workload: each client cycles open → Ops×(read|write) →
	// close, thinking Think seconds between cycles.
	Think    float64
	Ops      int
	ReadFrac float64
	Bytes    float64

	// Open-loop workload: aggregate Poisson arrivals of IO requests at
	// Rate per second against pre-opened carts, shed or served but never
	// retried (the arrival schedule does not react to outcomes).
	Rate float64

	// Carts in the simulated fleet; 0 means one per client (closed) or 8
	// (open).
	Carts int

	// Chaos names a faults.Scenario composed into the run ("" disables).
	Chaos string

	// StatusEvery is the control-probe period in virtual seconds
	// (status reads modelling an operator dashboard); 0 disables.
	StatusEvery float64

	// RequestTimeout is how long an admitted request may wait in the
	// queue before its client abandons it (mirrors the server option).
	RequestTimeout float64

	// APICost and CtlCost are the fixed per-request overheads (seconds)
	// added to simulated op time for IO/launch and control work.
	APICost float64
	CtlCost float64

	Admission admit.Options
	Retry     cpclient.RetryOptions
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = "closed"
	}
	if c.Clients <= 0 {
		c.Clients = 100
	}
	if c.Duration <= 0 {
		c.Duration = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Think < 0 {
		c.Think = 0
	}
	if c.Ops <= 0 {
		c.Ops = 4
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		c.ReadFrac = 0.5
	}
	if c.Bytes <= 0 {
		c.Bytes = 1e9
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Carts <= 0 {
		if c.Mode == "open" {
			c.Carts = 8
		} else {
			c.Carts = c.Clients
		}
	}
	if c.StatusEvery < 0 {
		c.StatusEvery = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10
	}
	if c.APICost <= 0 {
		c.APICost = 200e-6
	}
	if c.CtlCost <= 0 {
		c.CtlCost = 50e-6
	}
	if c.Admission.MaxQueue == 0 {
		c.Admission.MaxQueue = 64
	}
	return c
}

// latencyBounds are the histogram buckets for end-to-end latency,
// log-spaced from 100µs to 500s.
var latencyBounds = []float64{
	1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
	0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500,
}

// Result is the deterministic outcome of one harness run.
type Result struct {
	Config Config `json:"config"`

	Issued       int `json:"issued"`
	OK           int `json:"ok"`
	Failed       int `json:"failed"`
	ShedBusy     int `json:"shed_busy"`
	Retries      int `json:"retries"`
	BudgetDenied int `json:"budget_denied"`
	QueueTimeout int `json:"queue_timeouts"`

	CtlProbes  int `json:"ctl_probes"`
	CtlFresh   int `json:"ctl_fresh"`
	CtlStale   int `json:"ctl_stale"`
	CtlDropped int `json:"ctl_dropped"`

	P50S        float64 `json:"p50_s"`
	P90S        float64 `json:"p90_s"`
	P99S        float64 `json:"p99_s"`
	MaxS        float64 `json:"max_s"`
	GoodputRPS  float64 `json:"goodput_rps"`
	OfferedRPS  float64 `json:"offered_rps"`
	Utilization float64 `json:"utilization"`

	Admission admit.Stats              `json:"admission"`
	SimTimeS  float64                  `json:"sim_time_s"`
	Launches  int                      `json:"launches"`
	BytesIO   float64                  `json:"bytes_io"`
	Faults    int                      `json:"faults_injected"`
	Latency   telemetry.HistogramPoint `json:"latency"`
}

// event is one scheduled callback on the virtual clock.
type event struct {
	at  float64
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[j].at < h[i].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// pending is one admitted request parked in the modelled waiting room.
type pending struct {
	tk       *admit.Ticket
	req      controlplane.Request
	deliver  func(resp controlplane.Response)
	started  bool
	timedOut bool
}

// harness replays the server's overload machinery on a virtual clock: a
// real dhlsys.System behind a capacity-1 executor, fronted by a real
// admit.Controller fed virtual timestamps. Single-threaded; every source
// of variation is a seeded RNG, so runs are byte-reproducible.
type harness struct {
	cfg    Config
	sys    *dhlsys.System
	adm    *admit.Controller
	budget *cpclient.Budget
	reg    *telemetry.Registry
	lat    *telemetry.Histogram

	now    float64
	seq    int64
	events eventHeap

	execBusy bool
	queue    []*pending
	cacheOK  bool

	res      Result
	busyTime float64 // executor busy seconds clipped to the horizon
}

func newHarness(cfg Config) (*harness, error) {
	cfg = cfg.withDefaults()
	opt := dhlsys.DefaultOptions()
	opt.NumCarts = cfg.Carts
	opt.LibrarySlots = 0
	if cfg.Chaos != "" {
		script, err := faults.Scenario(cfg.Chaos, cfg.Seed, units.Seconds(cfg.Duration),
			opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs)
		if err != nil {
			return nil, err
		}
		opt.Faults = &script
	}
	sys, err := dhlsys.New(opt)
	if err != nil {
		return nil, err
	}
	h := &harness{
		cfg: cfg,
		sys: sys,
		adm: admit.New(cfg.Admission),
		// One retry budget for the whole fleet, scoped per server the way
		// cpclient documents; NewBudget applies the defaults.
		budget: cpclient.NewBudget(cfg.Retry.BudgetBurst, cfg.Retry.BudgetPerSuccess),
		reg:    telemetry.NewRegistry(),
	}
	h.lat = h.reg.Histogram("load_latency_s", latencyBounds)
	h.res.Config = cfg
	return h, nil
}

// vt converts virtual seconds to the time.Time the admission controller
// expects. Epoch-anchored, so identical runs see identical timestamps.
func (h *harness) vt() time.Time {
	return time.Unix(0, 0).Add(time.Duration(h.now * float64(time.Second)))
}

func (h *harness) schedule(at float64, fn func()) {
	if at < h.now {
		at = h.now
	}
	h.seq++
	heap.Push(&h.events, &event{at: at, seq: h.seq, fn: fn})
}

// Run drives the event loop to completion and finalises the result.
func (h *harness) Run() (*Result, error) {
	heap.Init(&h.events)
	switch h.cfg.Mode {
	case "closed":
		h.startClosedLoop()
	case "open":
		if err := h.startOpenLoop(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dhlload: unknown mode %q", h.cfg.Mode)
	}
	if h.cfg.StatusEvery > 0 {
		h.schedule(h.cfg.StatusEvery, h.statusProbe)
	}
	for h.events.Len() > 0 {
		e := heap.Pop(&h.events).(*event)
		h.now = e.at
		e.fn()
	}
	h.finish()
	return &h.res, nil
}

// submit routes one request through the modelled admission layer.
// deliver is invoked exactly once, at the virtual time the response
// reaches the client.
func (h *harness) submit(conn int64, req controlplane.Request, deliver func(controlplane.Response)) {
	h.res.Issued++
	tk, out := h.adm.Arrive(classOf(req.Op), conn, h.vt())
	if !out.Admitted {
		h.res.ShedBusy++
		resp := controlplane.Response{
			OK:          false,
			Code:        controlplane.CodeServerBusy,
			Error:       "overloaded: " + out.Reason.String(),
			RetryAfterS: out.RetryAfter.Seconds(),
		}
		// The shed reply still crosses the wire: deliver after the API
		// overhead, not instantaneously.
		h.schedule(h.now+h.cfg.APICost, func() { deliver(resp) })
		return
	}
	if !out.Queued {
		h.startService(tk, req, deliver)
		return
	}
	p := &pending{tk: tk, req: req, deliver: deliver}
	h.queue = append(h.queue, p)
	h.schedule(h.now+h.cfg.RequestTimeout, func() {
		if p.started || p.timedOut {
			return
		}
		p.timedOut = true
		h.adm.Abandon(p.tk)
		h.res.QueueTimeout++
		p.deliver(controlplane.Response{
			OK:          false,
			Code:        controlplane.CodeServerBusy,
			Error:       "overloaded: request timeout in queue",
			RetryAfterS: h.cfg.RequestTimeout,
		})
	})
}

// startService occupies the executor with one request. The simulation op
// runs (advancing sim time) when service begins; the response is
// delivered when the virtual service interval elapses.
func (h *harness) startService(tk *admit.Ticket, req controlplane.Request, deliver func(controlplane.Response)) {
	h.execBusy = true
	resp, opSeconds := h.runSim(req)
	service := opSeconds + h.cfg.APICost
	start := h.now
	end := start + service
	h.busyTime += clip(start, end, h.cfg.Duration)
	h.schedule(end, func() {
		h.execBusy = false
		h.cacheOK = true
		if tk != nil {
			h.adm.Done(tk, h.vt())
		}
		h.dispatchQueue()
		deliver(resp)
	})
}

// dispatchQueue starts the oldest still-waiting request, if any.
func (h *harness) dispatchQueue() {
	for len(h.queue) > 0 {
		p := h.queue[0]
		h.queue = h.queue[1:]
		if p.timedOut {
			continue
		}
		p.started = true
		h.adm.Started(p.tk, h.vt())
		h.startService(p.tk, p.req, p.deliver)
		return
	}
}

// clip returns the part of [start, end) inside [0, horizon).
func clip(start, end, horizon float64) float64 {
	if start > horizon {
		start = horizon
	}
	if end > horizon {
		end = horizon
	}
	if end < start {
		return 0
	}
	return end - start
}

// runSim executes one op against the real simulation, returning the wire
// response and the simulated service seconds.
func (h *harness) runSim(req controlplane.Request) (controlplane.Response, float64) {
	start := h.sys.Engine.Now()
	var opErr error
	id := track.CartID(req.Cart)
	switch req.Op {
	case controlplane.OpOpen:
		h.sys.Open(id, func(err error) { opErr = err })
	case controlplane.OpClose:
		h.sys.Close(id, func(err error) { opErr = err })
	case controlplane.OpRead:
		h.sys.Read(id, units.Bytes(req.Bytes), func(_ units.Seconds, err error) { opErr = err })
	case controlplane.OpWrite:
		h.sys.Write(id, units.Bytes(req.Bytes), func(_ units.Seconds, err error) { opErr = err })
	case controlplane.OpStatus:
		return controlplane.Response{OK: true, SimTime: float64(h.sys.Engine.Now())}, h.cfg.CtlCost
	}
	if _, err := h.sys.Run(); err != nil {
		return controlplane.Response{OK: false, Code: controlplane.CodeInternal, Error: err.Error()}, h.cfg.APICost
	}
	dur := float64(h.sys.Engine.Now() - start)
	resp := controlplane.Response{
		OK:        opErr == nil,
		SimTime:   float64(h.sys.Engine.Now()),
		OpSeconds: dur,
	}
	if opErr != nil {
		resp.Error = opErr.Error()
		resp.Code = controlplane.CodeForError(opErr)
	}
	return resp, dur
}

func classOf(op controlplane.Op) admit.Class {
	switch op {
	case controlplane.OpStatus, controlplane.OpMetrics:
		return admit.ClassControl
	case controlplane.OpOpen, controlplane.OpClose:
		return admit.ClassLaunch
	default:
		return admit.ClassIO
	}
}

// statusProbe models an operator dashboard polling status: answered
// fresh when the executor is idle, from the snapshot cache when it is
// busy (the server's graceful-degradation path), dropped only before the
// first snapshot exists.
func (h *harness) statusProbe() {
	h.res.CtlProbes++
	switch {
	case !h.execBusy:
		h.startService(nil, controlplane.Request{Op: controlplane.OpStatus}, func(controlplane.Response) {})
		h.res.CtlFresh++
	case h.cacheOK:
		h.res.CtlStale++
	default:
		h.res.CtlDropped++
	}
	if next := h.now + h.cfg.StatusEvery; next < h.cfg.Duration {
		h.schedule(next, h.statusProbe)
	}
}

// loadClient is one closed-loop client: a state machine cycling
// open → Ops×IO → close with retry/budget behaviour borrowed from
// cpclient's pieces.
type loadClient struct {
	id      int64
	cart    int
	policy  *cpclient.Policy
	rng     *rand.Rand
	phase   int // 0 = open, 1..Ops = IO, Ops+1 = close
	retries int
	began   float64 // first-issue time of the in-flight logical request
}

func (h *harness) startClosedLoop() {
	stagger := h.cfg.Think / float64(h.cfg.Clients)
	if stagger <= 0 {
		stagger = 1e-3 / float64(h.cfg.Clients)
	}
	for i := 0; i < h.cfg.Clients; i++ {
		r := h.cfg.Retry
		r.Seed = h.cfg.Seed*1_000_003 + int64(i)
		c := &loadClient{
			id:     int64(i),
			cart:   i % h.cfg.Carts,
			policy: cpclient.NewPolicy(r),
			rng:    rand.New(rand.NewSource(h.cfg.Seed*7_919 + int64(i))),
		}
		h.schedule(float64(i)*stagger, func() { h.clientIssue(c) })
	}
}

func (c *loadClient) request(cfg Config) controlplane.Request {
	switch {
	case c.phase == 0:
		return controlplane.Request{Op: controlplane.OpOpen, Cart: c.cart}
	case c.phase <= cfg.Ops:
		op := controlplane.OpWrite
		if c.rng.Float64() < cfg.ReadFrac {
			op = controlplane.OpRead
		}
		return controlplane.Request{Op: op, Cart: c.cart, Bytes: cfg.Bytes}
	default:
		return controlplane.Request{Op: controlplane.OpClose, Cart: c.cart}
	}
}

// clientIssue sends the client's current request (first attempt).
func (h *harness) clientIssue(c *loadClient) {
	if h.now >= h.cfg.Duration {
		return
	}
	c.retries = 0
	c.began = h.now
	h.clientAttempt(c)
}

func (h *harness) clientAttempt(c *loadClient) {
	req := c.request(h.cfg)
	h.submit(c.id, req, func(resp controlplane.Response) { h.clientDone(c, resp) })
}

func (h *harness) clientDone(c *loadClient, resp controlplane.Response) {
	if resp.OK {
		h.res.OK++
		h.lat.Observe(h.now - c.began)
		if l := h.now - c.began; l > h.res.MaxS {
			h.res.MaxS = l
		}
		h.budget.Success()
		h.clientAdvance(c, true)
		return
	}
	if cpclient.RetryableCode(resp.Code) && c.retries+1 < c.policy.Attempts() {
		if h.budget.Withdraw() {
			c.retries++
			h.res.Retries++
			hint := time.Duration(resp.RetryAfterS * float64(time.Second))
			wait := c.policy.Backoff(c.retries, hint).Seconds()
			h.schedule(h.now+wait, func() {
				if h.now >= h.cfg.Duration {
					return
				}
				h.clientAttempt(c)
			})
			return
		}
		h.res.BudgetDenied++
	}
	h.res.Failed++
	h.clientAdvance(c, false)
}

// failureBackoff floors the pause after a terminal failure so a fleet of
// failing clients cannot degenerate into a zero-think busy loop.
const failureBackoff = 0.25

// clientAdvance moves the cycle forward: on success to the next op, on
// terminal failure back to a fresh cycle (the client's cart state is
// unknown, so it restarts with open — which converges either way).
func (h *harness) clientAdvance(c *loadClient, ok bool) {
	think := 0.0
	if ok {
		c.phase++
		if c.phase > h.cfg.Ops+1 {
			c.phase = 0
			think = h.cfg.Think
		}
	} else {
		c.phase = 0
		think = h.cfg.Think
		if think < failureBackoff {
			think = failureBackoff
		}
	}
	if h.now+think >= h.cfg.Duration {
		return
	}
	h.schedule(h.now+think, func() { h.clientIssue(c) })
}

// startOpenLoop pre-opens the fleet outside the measured window, then
// schedules Poisson arrivals of IO requests that never retry: the offered
// rate is the experiment's independent variable.
func (h *harness) startOpenLoop() error {
	for cart := 0; cart < h.cfg.Carts; cart++ {
		var opErr error
		h.sys.Open(track.CartID(cart), func(err error) { opErr = err })
		if _, err := h.sys.Run(); err != nil {
			return err
		}
		if opErr != nil {
			return fmt.Errorf("dhlload: pre-open cart %d: %w", cart, opErr)
		}
	}
	rng := rand.New(rand.NewSource(h.cfg.Seed))
	var arrive func()
	t := 0.0
	arrive = func() {
		if h.now >= h.cfg.Duration {
			return
		}
		cart := rng.Intn(h.cfg.Carts)
		conn := int64(rng.Intn(h.cfg.Clients))
		op := controlplane.OpWrite
		if rng.Float64() < h.cfg.ReadFrac {
			op = controlplane.OpRead
		}
		began := h.now
		h.submit(conn, controlplane.Request{Op: op, Cart: cart, Bytes: h.cfg.Bytes},
			func(resp controlplane.Response) {
				if resp.OK {
					h.res.OK++
					h.lat.Observe(h.now - began)
					if l := h.now - began; l > h.res.MaxS {
						h.res.MaxS = l
					}
				} else if resp.Code != controlplane.CodeServerBusy {
					h.res.Failed++
				}
			})
		// Exponential interarrival at the aggregate rate.
		t += -math.Log(1-rng.Float64()) / h.cfg.Rate
		if t < h.cfg.Duration {
			h.schedule(t, arrive)
		}
	}
	t = -math.Log(1-rng.Float64()) / h.cfg.Rate
	if t < h.cfg.Duration {
		h.schedule(t, arrive)
	}
	return nil
}

// finish folds the terminal state into the result.
func (h *harness) finish() {
	h.res.Admission = h.adm.Snapshot()
	snap := h.reg.Snapshot()
	h.res.Latency = snap.Histograms[0]
	h.res.P50S = telemetry.Quantile(h.res.Latency, 0.5)
	h.res.P90S = telemetry.Quantile(h.res.Latency, 0.9)
	h.res.P99S = telemetry.Quantile(h.res.Latency, 0.99)
	h.res.GoodputRPS = float64(h.res.OK) / h.cfg.Duration
	h.res.OfferedRPS = float64(h.res.Issued) / h.cfg.Duration
	h.res.Utilization = h.busyTime / h.cfg.Duration
	rep := h.sys.Report()
	h.res.SimTimeS = float64(h.sys.Engine.Now())
	h.res.Launches = rep.Stats.Launches
	h.res.BytesIO = float64(rep.Stats.BytesRead + rep.Stats.BytesWritten)
	h.res.Faults = rep.Faults.Total
}

// Report renders the result as a deterministic text table.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dhlload report: mode=%s clients=%d duration=%gs seed=%d carts=%d chaos=%q\n",
		r.Config.Mode, r.Config.Clients, r.Config.Duration, r.Config.Seed, r.Config.Carts, r.Config.Chaos)
	fmt.Fprintf(&b, "requests:  issued=%d ok=%d failed=%d shed_busy=%d queue_timeouts=%d retries=%d budget_denied=%d\n",
		r.Issued, r.OK, r.Failed, r.ShedBusy, r.QueueTimeout, r.Retries, r.BudgetDenied)
	fmt.Fprintf(&b, "control:   probes=%d fresh=%d stale=%d dropped=%d\n",
		r.CtlProbes, r.CtlFresh, r.CtlStale, r.CtlDropped)
	fmt.Fprintf(&b, "latency_s: p50=%.6g p90=%.6g p99=%.6g max=%.6g\n",
		r.P50S, r.P90S, r.P99S, r.MaxS)
	fmt.Fprintf(&b, "rates:     offered=%.6g/s goodput=%.6g/s utilization=%.4f\n",
		r.OfferedRPS, r.GoodputRPS, r.Utilization)
	b.WriteString("admission:\n")
	fmt.Fprintf(&b, "  %-8s %-9s %-8s %-10s %-10s %-9s %-9s %s\n",
		"class", "admitted", "queued", "rate-lim", "queue-full", "brownout", "per-conn", "abandoned")
	for _, c := range r.Admission.Classes {
		fmt.Fprintf(&b, "  %-8s %-9d %-8d %-10d %-10d %-9d %-9d %d\n",
			c.Class, c.Admitted, c.Queued, c.RateLimited, c.QueueFull, c.Brownout, c.PerConn, c.Abandoned)
	}
	fmt.Fprintf(&b, "sim:       time=%.6gs launches=%d bytes=%.6g faults=%d\n",
		r.SimTimeS, r.Launches, r.BytesIO, r.Faults)
	return b.String()
}
