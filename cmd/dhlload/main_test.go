package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/controlplane"
	"repro/internal/cpclient"
	"repro/internal/dhlsys"
)

func runHarness(t *testing.T, cfg Config) *Result {
	t.Helper()
	h, err := newHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// overloadConfig offers roughly 4× the executor's capacity: 48 clients
// with 100ms think against a serial executor whose launch ops take
// seconds each, behind an 8-deep queue.
func overloadConfig() Config {
	return Config{
		Mode: "closed", Clients: 48, Duration: 30, Seed: 9,
		Think: 0.1, StatusEvery: 0.5,
		Admission: admit.Options{MaxInFlight: 1, MaxQueue: 8},
	}
}

// TestClosedLoopDeterministic pins the harness's core contract: two runs
// with the same config produce byte-identical reports and JSON.
func TestClosedLoopDeterministic(t *testing.T) {
	a := runHarness(t, overloadConfig())
	b := runHarness(t, overloadConfig())
	if a.Report() != b.Report() {
		t.Errorf("reports differ:\n--- run 1\n%s--- run 2\n%s", a.Report(), b.Report())
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("JSON serialisations differ between identical runs")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := overloadConfig()
	a := runHarness(t, cfg)
	cfg.Seed = 10
	b := runHarness(t, cfg)
	if a.Report() == b.Report() {
		t.Error("different seeds produced identical reports — seeding not wired")
	}
}

// TestClosedLoopOverloadAcceptance drives ~4× capacity and checks the
// issue's acceptance criteria: explicit sheds with retry hints, control
// reads served stale from the cache, and goodput (executor utilization)
// within 20% of saturation.
func TestClosedLoopOverloadAcceptance(t *testing.T) {
	res := runHarness(t, overloadConfig())
	if res.ShedBusy == 0 {
		t.Error("overload produced no explicit sheds")
	}
	launch := res.Admission.Classes[int(admit.ClassLaunch)]
	if launch.Brownout == 0 {
		t.Error("brownout never shed a launch under 4x overload")
	}
	if res.CtlStale == 0 {
		t.Error("no control probe was served from the snapshot cache")
	}
	if res.CtlProbes != res.CtlFresh+res.CtlStale+res.CtlDropped {
		t.Errorf("control probe accounting leaks: %d != %d+%d+%d",
			res.CtlProbes, res.CtlFresh, res.CtlStale, res.CtlDropped)
	}
	if res.Utilization < 0.8 {
		t.Errorf("utilization %.3f under overload; goodput not within 20%% of saturation",
			res.Utilization)
	}
	if res.OK == 0 {
		t.Error("nothing succeeded at all — shedding everything is not goodput")
	}
	if res.Issued != res.OK+res.Failed+res.ShedBusy+res.Retries-res.QueueTimeout &&
		res.Issued <= 0 {
		t.Errorf("implausible request ledger: %+v", res)
	}
}

// TestOpenLoopOverloadGoodput: at 4× the measured IO capacity the open
// loop must shed the excess while goodput stays at the saturated rate.
func TestOpenLoopOverloadGoodput(t *testing.T) {
	base := Config{
		Mode: "open", Clients: 16, Carts: 4, Duration: 20, Seed: 3,
		Rate: 400, StatusEvery: 0.5,
		Admission: admit.Options{MaxInFlight: 1, MaxQueue: 8},
	}
	res := runHarness(t, base)
	if res.ShedBusy == 0 {
		t.Error("4x offered load produced no sheds")
	}
	if res.Utilization < 0.8 {
		t.Errorf("utilization %.3f; executor starved while shedding", res.Utilization)
	}
	// Goodput must be within 20% of the saturated service rate implied by
	// the busy executor: ok ops per busy second.
	saturated := float64(res.OK) / (res.Utilization * res.Config.Duration)
	if res.GoodputRPS < 0.8*saturated {
		t.Errorf("goodput %.1f/s below 80%% of saturated %.1f/s", res.GoodputRPS, saturated)
	}
	if res.Retries != 0 || res.BudgetDenied != 0 {
		t.Errorf("open loop must not retry: %+v", res)
	}
}

// TestChaosComposition: a fault scenario composes into the load run and
// stays deterministic.
func TestChaosComposition(t *testing.T) {
	cfg := Config{
		Mode: "closed", Clients: 24, Duration: 20, Seed: 5,
		Think: 0.2, StatusEvery: 0.5, Chaos: "rough-day",
		Admission: admit.Options{MaxInFlight: 1, MaxQueue: 8},
	}
	a := runHarness(t, cfg)
	if a.Faults == 0 {
		t.Error("chaos scenario injected no faults")
	}
	b := runHarness(t, cfg)
	if a.Report() != b.Report() {
		t.Error("chaos run not reproducible")
	}
}

func TestUnknownChaosRejected(t *testing.T) {
	if _, err := newHarness(Config{Chaos: "no-such-scenario"}); err == nil {
		t.Error("unknown scenario should fail fast")
	}
}

// TestBenchOutputDeterministic: the benchmark JSON written for CI is
// byte-identical across identical runs.
func TestBenchOutputDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := writeBench(p1, runHarness(t, overloadConfig())); err != nil {
		t.Fatal(err)
	}
	if err := writeBench(p2, runHarness(t, overloadConfig())); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("bench JSON differs:\n%s\nvs\n%s", b1, b2)
	}
	var bench benchJSON
	if err := json.Unmarshal(b1, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Name != "controlplane-load" || bench.P99S <= 0 || bench.OfferedRPS <= 0 {
		t.Errorf("bench record incomplete: %+v", bench)
	}
}

// TestRateLimitedAdmission: the token bucket caps admitted throughput in
// the harness exactly as on the server.
func TestRateLimitedAdmission(t *testing.T) {
	cfg := Config{
		Mode: "open", Clients: 8, Carts: 2, Duration: 20, Seed: 2, Rate: 100,
		Admission: admit.Options{MaxInFlight: 4, MaxQueue: 16, Rate: 10, Burst: 5},
	}
	res := runHarness(t, cfg)
	io := res.Admission.Classes[int(admit.ClassIO)]
	if io.RateLimited == 0 {
		t.Error("token bucket never shed at 10x its rate")
	}
	// Admitted ≈ rate×duration + burst; allow slack for bucket dynamics.
	if got, max := io.Admitted, uint64(cfg.Duration*10+20); got > max {
		t.Errorf("admitted %d > bucket ceiling %d", got, max)
	}
}

// TestLiveModeSmoke drives the wall-clock path against a real TCP server
// briefly: the loop must complete requests and close cleanly.
func TestLiveModeSmoke(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := controlplane.NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res := runLive(addr, 2, 500*time.Millisecond, 2, 1e6, 1)
	if res.OK == 0 {
		t.Errorf("live run completed nothing: %+v", res)
	}
	if res.Client.Attempts == 0 {
		t.Error("client stats not aggregated")
	}
}

// TestPolicyPiecesWiredIntoHarness: sanity that the harness pulls real
// cpclient pieces (a budget-denied retry shows up when the budget is
// tiny, and retries respect MaxAttempts).
func TestPolicyPiecesWiredIntoHarness(t *testing.T) {
	cfg := overloadConfig()
	cfg.Retry = cpclient.RetryOptions{BudgetBurst: 1, BudgetPerSuccess: 0.001, Seed: 4}
	res := runHarness(t, cfg)
	if res.BudgetDenied == 0 {
		t.Error("1-token budget under overload never denied a retry")
	}
	if res.Retries > 1+res.OK {
		// With one token and ~no earn-back, retries are bounded by the
		// burst plus what successes buy back.
		t.Errorf("retries %d exceed what the budget could fund (ok=%d)", res.Retries, res.OK)
	}
}
