package main

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/controlplane"
	"repro/internal/cpclient"
)

// liveResult aggregates a wall-clock run against a real TCP server.
// Unlike the virtual harness this is inherently nondeterministic; the
// report says so.
type liveResult struct {
	OK, Failed, Busy uint64
	Client           cpclient.Stats
	Elapsed          time.Duration
}

// runLive drives `clients` concurrent cpclient loops against a live
// control-plane server for the given wall duration. Each client runs the
// same open → ops×IO → close cycle as the virtual closed loop.
func runLive(addr string, clients int, duration time.Duration, ops int, bytes float64, seed int64) liveResult {
	budget := cpclient.NewBudget(0, 0) // defaults, shared per server
	var (
		mu  sync.Mutex
		agg liveResult
		wg  sync.WaitGroup
	)
	deadline := time.Now().Add(duration)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		c := cpclient.New(cpclient.Options{
			Addr:   addr,
			Budget: budget,
			Retry:  cpclient.RetryOptions{Seed: seed*1_000_003 + int64(i)},
		})
		cart := i
		//dhllint:allow goroutine -- live-mode wall-clock load driver; aggregation is mutex-guarded and joined below
		go func() {
			defer wg.Done()
			defer c.Close()
			var ok, failed, busy uint64
			for time.Now().Before(deadline) {
				reqs := make([]controlplane.Request, 0, ops+2)
				reqs = append(reqs, controlplane.Request{Op: controlplane.OpOpen, Cart: cart})
				for j := 0; j < ops; j++ {
					op := controlplane.OpWrite
					if j%2 == 0 {
						op = controlplane.OpRead
					}
					reqs = append(reqs, controlplane.Request{Op: op, Cart: cart, Bytes: bytes})
				}
				reqs = append(reqs, controlplane.Request{Op: controlplane.OpClose, Cart: cart})
				for _, req := range reqs {
					resp, err := c.DoDeadline(req, deadline)
					switch {
					case err == nil && resp.OK:
						ok++
					case err == nil && resp.Code == controlplane.CodeServerBusy:
						busy++
					default:
						failed++
					}
					if time.Now().After(deadline) {
						break
					}
				}
			}
			st := c.Stats()
			mu.Lock()
			agg.OK += ok
			agg.Failed += failed
			agg.Busy += busy
			agg.Client.Requests += st.Requests
			agg.Client.Attempts += st.Attempts
			agg.Client.Retries += st.Retries
			agg.Client.Redials += st.Redials
			agg.Client.TransportErrors += st.TransportErrors
			agg.Client.BusyResponses += st.BusyResponses
			agg.Client.BudgetDenied += st.BudgetDenied
			agg.Client.DeadlineDenied += st.DeadlineDenied
			mu.Unlock()
		}()
	}
	wg.Wait()
	agg.Elapsed = time.Since(start)
	return agg
}

// Report renders the live run (wall-clock, nondeterministic by nature).
func (r liveResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dhlload live report (wall-clock, not deterministic)\n")
	fmt.Fprintf(&b, "elapsed:   %.2fs\n", r.Elapsed.Seconds())
	fmt.Fprintf(&b, "responses: ok=%d busy=%d failed=%d (%.6g ok/s)\n",
		r.OK, r.Busy, r.Failed, float64(r.OK)/r.Elapsed.Seconds())
	fmt.Fprintf(&b, "client:    attempts=%d retries=%d redials=%d transport_errors=%d budget_denied=%d deadline_denied=%d\n",
		r.Client.Attempts, r.Client.Retries, r.Client.Redials,
		r.Client.TransportErrors, r.Client.BudgetDenied, r.Client.DeadlineDenied)
	return b.String()
}
