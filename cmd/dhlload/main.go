// Command dhlload is the deterministic load generator for the control
// plane (DESIGN.md §11): it replays thousands of concurrent clients —
// with the retry, backoff, and budget behaviour of internal/cpclient —
// against the server's admission machinery (internal/admit) fronting a
// real simulated deployment, all on a virtual clock. The same flags and
// seed always produce a byte-identical report, so overload behaviour
// (shed rates, brownout, goodput under 4× saturation) is regression-
// testable and CI byte-compares two runs.
//
// Modes:
//
//	-mode closed   N clients cycle open → ops×IO → close with think time
//	               (load tracks completions, the classic closed loop)
//	-mode open     Poisson arrivals of IO requests at -rate/s against a
//	               pre-opened fleet; no retries — offered load is the
//	               independent variable
//
// A -chaos scenario (see internal/faults) composes fault injection into
// the same run. -live ADDR switches to a wall-clock driver hammering a
// real dhlserve over TCP instead of the virtual harness.
//
// Examples:
//
//	dhlload -clients 1000 -duration 300 -think 0.5
//	dhlload -mode open -rate 200 -duration 120 -chaos rush-hour
//	dhlload -clients 64 -duration 60 -bench-out BENCH_controlplane.json
//	dhlload -live 127.0.0.1:7070 -clients 32 -duration 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/admit"
	"repro/internal/cpclient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlload: ")
	var (
		mode     = flag.String("mode", "closed", "load shape: closed or open")
		clients  = flag.Int("clients", 100, "concurrent clients (closed) / connections (open)")
		duration = flag.Float64("duration", 120, "virtual seconds of offered load (wall seconds with -live)")
		seed     = flag.Int64("seed", 1, "master seed: same seed, same report, byte for byte")
		think    = flag.Float64("think", 1, "closed-loop think time between cycles, seconds")
		ops      = flag.Int("ops", 4, "IO ops per open/close cycle")
		readFrac = flag.Float64("read", 0.5, "fraction of IO ops that are reads")
		bytes    = flag.Float64("bytes", 1e9, "bytes per IO op")
		rate     = flag.Float64("rate", 50, "open-loop aggregate arrival rate, requests/s")
		carts    = flag.Int("carts", 0, "fleet size (0: one per client closed, 8 open)")
		chaos    = flag.String("chaos", "", "compose a fault scenario (see dhlsim -chaos list)")
		statusEv = flag.Float64("status-every", 0.5, "control-probe period, virtual seconds (0 disables)")
		reqTO    = flag.Float64("timeout", 10, "queued-request abandon timeout, virtual seconds")

		maxInFlight = flag.Int("max-inflight", 1, "admission: concurrent executor slots")
		maxQueue    = flag.Int("max-queue", 64, "admission: bounded waiting room")
		admitRate   = flag.Float64("admit-rate", 0, "admission: token-bucket rate limit, req/s (0 off)")
		perConn     = flag.Int("per-conn", 0, "admission: outstanding-request cap per connection (0 off)")

		benchOut = flag.String("bench-out", "", "write the result as benchmark JSON to this file")
		jsonOut  = flag.Bool("json", false, "print the result as JSON instead of the text report")
		live     = flag.String("live", "", "drive a real server at this TCP address (wall clock)")
	)
	flag.Parse()

	if *live != "" {
		res := runLive(*live, *clients, time.Duration(*duration*float64(time.Second)),
			*ops, *bytes, *seed)
		fmt.Print(res.Report())
		return
	}

	cfg := Config{
		Mode:           *mode,
		Clients:        *clients,
		Duration:       *duration,
		Seed:           *seed,
		Think:          *think,
		Ops:            *ops,
		ReadFrac:       *readFrac,
		Bytes:          *bytes,
		Rate:           *rate,
		Carts:          *carts,
		Chaos:          *chaos,
		StatusEvery:    *statusEv,
		RequestTimeout: *reqTO,
		Admission: admit.Options{
			MaxInFlight: *maxInFlight,
			MaxQueue:    *maxQueue,
			Rate:        *admitRate,
			PerConn:     *perConn,
		},
		Retry: cpclient.RetryOptions{Seed: *seed},
	}
	h, err := newHarness(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := h.Run()
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(res.Report())
	}
	if *benchOut != "" {
		if err := writeBench(*benchOut, res); err != nil {
			log.Fatal(err)
		}
	}
}

// benchJSON is the stable schema of BENCH_controlplane.json, consumed by
// CI trend tracking. Field order and formatting are fixed; two identical
// runs produce identical bytes.
type benchJSON struct {
	Name        string  `json:"name"`
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients"`
	DurationS   float64 `json:"duration_s"`
	Seed        int64   `json:"seed"`
	Chaos       string  `json:"chaos,omitempty"`
	P50S        float64 `json:"p50_s"`
	P90S        float64 `json:"p90_s"`
	P99S        float64 `json:"p99_s"`
	OfferedRPS  float64 `json:"offered_rps"`
	GoodputRPS  float64 `json:"goodput_rps"`
	Utilization float64 `json:"utilization"`
	ShedBusy    int     `json:"shed_busy"`
	Retries     int     `json:"retries"`
	CtlStale    int     `json:"ctl_stale"`
	OK          int     `json:"ok"`
	Failed      int     `json:"failed"`
}

func writeBench(path string, r *Result) error {
	b := benchJSON{
		Name:        "controlplane-load",
		Mode:        r.Config.Mode,
		Clients:     r.Config.Clients,
		DurationS:   r.Config.Duration,
		Seed:        r.Config.Seed,
		Chaos:       r.Config.Chaos,
		P50S:        r.P50S,
		P90S:        r.P90S,
		P99S:        r.P99S,
		OfferedRPS:  r.OfferedRPS,
		GoodputRPS:  r.GoodputRPS,
		Utilization: r.Utilization,
		ShedBusy:    r.ShedBusy,
		Retries:     r.Retries,
		CtlStale:    r.CtlStale,
		OK:          r.OK,
		Failed:      r.Failed,
	}
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
