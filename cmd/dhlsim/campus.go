package main

// Campus mode: instead of the point-to-point library→endpoint shuttle,
// -campus dispatches a cart fleet across the multi-junction tube-network
// graph (internal/tubenet) with congestion-aware routing, optionally under
// the campus chaos scenarios, and -campus-study runs the chaos-vs-calm
// replica comparison used by EXPERIMENTS.md.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/tubenet"
	"repro/internal/units"
)

// campusOptions carries the -campus* flag values into the runner.
type campusOptions struct {
	carts    int
	trips    int
	seed     int64
	epoch    float64
	alpha    float64
	workers  int
	chaos    string
	horizon  float64
	faultLog bool
	metrics  bool
	benchOut string
	study    string
}

// campusSim builds the default 4-junction campus and a fleet per opt.
func campusSim(opt campusOptions, set *telemetry.Set) (*tubenet.Campus, error) {
	return tubenet.New(tubenet.Options{
		Carts:         opt.carts,
		TripsPerCart:  opt.trips,
		Seed:          opt.seed,
		EpochEvery:    units.Seconds(opt.epoch),
		Alpha:         opt.alpha,
		RouterWorkers: opt.workers,
		Telemetry:     set,
	})
}

// campusHorizon is the chaos fault horizon: the flag value if set,
// otherwise a window long enough to overlap most of the fleet's trips.
func campusHorizon(opt campusOptions) units.Seconds {
	if opt.horizon > 0 {
		return units.Seconds(opt.horizon)
	}
	return 300
}

func runCampus(opt campusOptions) {
	if opt.study != "" {
		runCampusStudy(opt)
		return
	}
	var set *telemetry.Set
	if opt.metrics {
		set = telemetry.NewSet()
	}
	c, err := campusSim(opt, set)
	if err != nil {
		log.Fatal(err)
	}
	var inj *faults.Injector
	if opt.chaos != "" {
		script, err := faults.ScenarioDims(opt.chaos, opt.seed, campusHorizon(opt), c.Dims())
		if err != nil {
			if errors.Is(err, faults.ErrUnknownScenario) {
				log.Fatal(unknownChaosMessage(err))
			}
			log.Fatal(err)
		}
		if inj, err = faults.NewInjector(c.Engine(), c, script); err != nil {
			log.Fatal(err)
		}
		if err := inj.Arm(); err != nil {
			log.Fatal(err)
		}
	}
	res, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}

	topo := c.Topology()
	fmt.Printf("Campus tube-network simulation: %d stations, %d junction(s), %d segments, seed %d (%s)\n",
		len(topo.Stations()), topo.NumNodes()-len(topo.Stations()), topo.NumEdges(),
		opt.seed, scenarioLabel(opt.chaos))
	fmt.Print(res)
	if opt.faultLog && inj != nil {
		fmt.Println("\nFault event log:")
		for _, line := range inj.LogLines() {
			fmt.Println("  " + line)
		}
	}
	if opt.metrics {
		fmt.Println("\nTelemetry:")
		fmt.Print(telemetry.SummaryTable(set.Metrics.Snapshot()))
		if rollup := telemetry.SpanSummary(set.Spans); rollup != "" {
			fmt.Println()
			fmt.Print(rollup)
		}
	}
	if opt.benchOut != "" {
		if err := writeCampusBench(opt.benchOut, opt, topo, res); err != nil {
			log.Fatal(err)
		}
	}
}

// runCampusStudy runs the chaos-vs-calm replica comparison: the same fleet
// and seeds once under the chaos scenario (default campus-partition) and
// once fault-free, aggregated on the sweep pool.
func runCampusStudy(opt campusOptions) {
	var seeds []int64
	for _, tok := range strings.Split(opt.study, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		s, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			log.Fatalf("-campus-study: bad seed %q: %v", tok, err)
		}
		seeds = append(seeds, s)
	}
	scenario := opt.chaos
	if scenario == "" {
		scenario = faults.ScenarioCampusPartition
	}
	base := tubenet.Options{
		Carts:         opt.carts,
		TripsPerCart:  opt.trips,
		EpochEvery:    units.Seconds(opt.epoch),
		Alpha:         opt.alpha,
		RouterWorkers: 1,
	}
	ctx := context.Background()
	h := campusHorizon(opt)
	_, chaosTot, err := tubenet.RunStudy(ctx, base, scenario, h, seeds, opt.workers)
	if err != nil {
		log.Fatal(err)
	}
	_, calmTot, err := tubenet.RunStudy(ctx, base, "", h, seeds, opt.workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Campus study: %d carts × %d trips, %d replica(s), scenario %s vs fault-free\n",
		opt.carts, opt.trips, len(seeds), scenario)
	fmt.Printf("%-18s %-10s %-9s %-9s %-9s %-8s %-14s\n",
		"condition", "trips-done", "pending", "reroutes", "loiters", "stalls", "mean-transit-s")
	row := func(label string, t tubenet.StudyTotals) {
		mean := 0.0
		if t.TripsCompleted > 0 {
			mean = float64(t.TotalTransit) / float64(t.TripsCompleted)
		}
		fmt.Printf("%-18s %-10d %-9d %-9d %-9d %-8d %-14.3f\n",
			label, t.TripsCompleted, t.TripsPending, t.Reroutes, t.Loiters, t.Stalls, mean)
	}
	row("calm", calmTot)
	row(scenario, chaosTot)
}

// campusBenchJSON is the stable schema of BENCH_campus.json, consumed by
// CI trend tracking. Two identical runs produce identical bytes
// (scripts/bench.sh campus runs twice and compares).
type campusBenchJSON struct {
	Name           string  `json:"name"`
	Carts          int     `json:"carts"`
	TripsPerCart   int     `json:"trips_per_cart"`
	Stations       int     `json:"stations"`
	Segments       int     `json:"segments"`
	Seed           int64   `json:"seed"`
	Chaos          string  `json:"chaos,omitempty"`
	TripsCompleted int     `json:"trips_completed"`
	TripsPending   int     `json:"trips_pending"`
	Availability   float64 `json:"availability"`
	TransitP50S    float64 `json:"transit_p50_s"`
	TransitP99S    float64 `json:"transit_p99_s"`
	Reroutes       int     `json:"reroutes"`
	Loiters        int     `json:"loiters"`
	Stalls         int     `json:"stalls"`
	MaxQueue       int     `json:"max_queue"`
	RouteEpochs    int     `json:"route_epochs"`
	Events         int     `json:"events"`
	ElapsedS       float64 `json:"elapsed_s"`
}

func writeCampusBench(path string, opt campusOptions, topo *tubenet.Topology, r tubenet.Result) error {
	b := campusBenchJSON{
		Name:           "campus-sim",
		Carts:          r.Carts,
		TripsPerCart:   opt.trips,
		Stations:       len(topo.Stations()),
		Segments:       topo.NumEdges(),
		Seed:           opt.seed,
		Chaos:          opt.chaos,
		TripsCompleted: r.TripsCompleted,
		TripsPending:   r.TripsPending,
		Availability:   r.Availability(),
		TransitP50S:    float64(r.TransitP50),
		TransitP99S:    float64(r.TransitP99),
		Reroutes:       r.Reroutes,
		Loiters:        r.Loiters,
		Stalls:         r.Stalls,
		MaxQueue:       r.MaxQueue,
		RouteEpochs:    r.RouteEpochs,
		Events:         r.Events,
		ElapsedS:       float64(r.Elapsed),
	}
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
