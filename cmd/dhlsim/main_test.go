package main

import (
	"errors"
	"testing"

	"repro/internal/faults"
)

func TestChaosScenarioListMatchesFaults(t *testing.T) {
	names := faults.ScenarioNames()
	if len(chaosScenarios) != len(names) {
		t.Fatalf("chaosScenarios has %d entries, faults.ScenarioNames %d — keep them in lockstep",
			len(chaosScenarios), len(names))
	}
	for i, s := range chaosScenarios {
		if s.name != names[i] {
			t.Errorf("chaosScenarios[%d] = %q, want %q", i, s.name, names[i])
		}
		if s.desc == "" {
			t.Errorf("scenario %q has no description", s.name)
		}
	}
}

func TestUnknownChaosMessageGolden(t *testing.T) {
	_, err := faults.Scenario("typhoon", 1, 100, 2, 4, 16)
	if !errors.Is(err, faults.ErrUnknownScenario) {
		t.Fatalf("err = %v, want ErrUnknownScenario", err)
	}
	got := unknownChaosMessage(err)
	want := `faults: unknown scenario: "typhoon" (known: [ssd-storm leaky-tube blocked-track brownout rough-day campus-partition])
valid -chaos scenarios:
  ssd-storm         a burst of in-flight SSD deaths
  leaky-tube        repeated vacuum leaks of varying severity
  blocked-track     cart stalls and debris on the rail
  brownout          LIM power losses and dock-station failures
  rough-day         all of the above at once, at lower per-kind rates
  campus-partition  junction and tube-segment failures carving a campus apart (-campus only)
replay any scenario byte-identically with -chaos NAME -seed N`
	if got != want {
		t.Errorf("usage message drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
