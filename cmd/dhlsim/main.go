// Command dhlsim runs the event-driven DHL system simulation: a cart fleet
// shuttling a dataset between the library and an endpoint through the
// §III-D software API, with optional endpoint reads, dual-rail operation,
// and in-flight SSD failure injection.
//
// Usage:
//
//	dhlsim [-dataset-pb N] [-carts N] [-docks N] [-dual] [-read]
//	       [-failure-rate F] [-seed N] [-raid5]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dhlsys"
	"repro/internal/storage"
	"repro/internal/track"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlsim: ")
	var (
		datasetPB = flag.Float64("dataset-pb", 2.56, "dataset size in PB")
		datasetS  = flag.String("dataset", "", "dataset size with units (e.g. \"512TB\", \"29PB\"); overrides -dataset-pb")
		carts     = flag.Int("carts", 2, "fleet size")
		docks     = flag.Int("docks", 4, "endpoint docking stations")
		dual      = flag.Bool("dual", false, "dual-rail track (§VI)")
		read      = flag.Bool("read", false, "read cart contents at the endpoint (enables pipelining study)")
		failRate  = flag.Float64("failure-rate", 0, "per-launch probability of an in-flight SSD failure")
		seed      = flag.Int64("seed", 1, "failure-injection RNG seed")
		raid5     = flag.Bool("raid5", false, "use RAID5 cart arrays (tolerates one in-flight failure)")
	)
	flag.Parse()
	if *datasetPB <= 0 {
		log.Fatalf("-dataset-pb must be positive, got %v", *datasetPB)
	}
	dataset := units.Bytes(*datasetPB) * units.PB
	if *datasetS != "" {
		var err error
		dataset, err = units.ParseBytes(*datasetS)
		if err != nil {
			log.Fatal(err)
		}
		if dataset <= 0 {
			log.Fatalf("-dataset must be positive, got %v", dataset)
		}
	}

	opt := dhlsys.DefaultOptions()
	opt.NumCarts = *carts
	opt.DockStations = *docks
	opt.FailureRate = *failRate
	opt.Seed = *seed
	if *dual {
		opt.RailMode = track.DualRail
	}
	if *raid5 {
		opt.RAID = storage.RAID5
	}
	sys, err := dhlsys.New(opt)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Shuttle(dhlsys.ShuttleOptions{Dataset: dataset, ReadAtEndpoint: *read})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()

	fmt.Printf("DHL system simulation: %v over %v (%d carts, %d docks, %v, read=%v)\n",
		dataset, opt.Core, opt.NumCarts, opt.DockStations, opt.RailMode, *read)
	fmt.Printf("  deliveries:        %d (+%d retries)\n", res.Deliveries, res.Retries)
	fmt.Printf("  duration:          %v\n", res.Duration)
	fmt.Printf("  launch energy:     %v\n", res.Energy)
	fmt.Printf("  effective BW:      %v\n", res.EffectiveBandwidth())
	fmt.Printf("  launches/dock ops: %d / %d\n", st.Launches, st.DockOps)
	fmt.Printf("  bytes read:        %v\n", st.BytesRead)
	fmt.Printf("  failures injected: %d (API errors reported: %d)\n", st.FailuresSeen, len(res.FailureErrors))

	an, err := core.Transfer(opt.Core, dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAnalytical model (sequential, no reads): %v, %v\n", an.Time, an.Energy)
	fmt.Printf("Simulated vs analytical duration: %.3fx\n", float64(res.Duration)/float64(an.Time))
}
