// Command dhlsim runs the event-driven DHL system simulation: a cart fleet
// shuttling a dataset between the library and an endpoint through the
// §III-D software API, with optional endpoint reads, dual-rail operation,
// in-flight SSD failure injection, and named chaos scenarios replayed
// byte-identically from a seed.
//
// Usage:
//
//	dhlsim [-dataset-pb N] [-carts N] [-docks N] [-dual] [-read]
//	       [-failure-rate F] [-seed N] [-raid5]
//	       [-chaos NAME] [-horizon S] [-fault-log] [-strict]
//	       [-timeout S] [-backoff S] [-failure-sweep R1,R2,...]
//	       [-metrics] [-trace-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//	dhlsim -campus [-campus-carts N] [-campus-trips N] [-campus-epoch S]
//	       [-campus-alpha F] [-campus-workers N] [-chaos campus-partition]
//	       [-fault-log] [-metrics] [-bench-out FILE] [-campus-study S1,S2,...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dhlsys"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlsim: ")
	var (
		datasetPB = flag.Float64("dataset-pb", 2.56, "dataset size in PB")
		datasetS  = flag.String("dataset", "", "dataset size with units (e.g. \"512TB\", \"29PB\"); overrides -dataset-pb")
		carts     = flag.Int("carts", 2, "fleet size")
		docks     = flag.Int("docks", 4, "endpoint docking stations")
		dual      = flag.Bool("dual", false, "dual-rail track (§VI)")
		read      = flag.Bool("read", false, "read cart contents at the endpoint (enables pipelining study)")
		failRate  = flag.Float64("failure-rate", 0, "per-launch probability of an in-flight SSD failure")
		seed      = flag.Int64("seed", 1, "failure-injection and chaos-scenario RNG seed")
		raid5     = flag.Bool("raid5", false, "use RAID5 cart arrays (tolerates one in-flight failure)")
		chaos     = flag.String("chaos", "", "named chaos scenario: "+strings.Join(faults.ScenarioNames(), ", "))
		horizon   = flag.Float64("horizon", 0, "chaos fault horizon in seconds (0 = 1.1× the analytical transfer time)")
		faultLog  = flag.Bool("fault-log", false, "print the fault event log (byte-identical across replays of a seed)")
		strict    = flag.Bool("strict", false, "strict SSD mode: a RAID0 SSD failure fails the whole cart instead of degrading reads")
		timeoutS  = flag.Float64("timeout", 0, "launch timeout in seconds; slower launches report an error (0 = none)")
		backoffS  = flag.Float64("backoff", 0, "initial delivery retry backoff in seconds, doubling per failure (0 = immediate)")
		sweepSpec = flag.String("failure-sweep", "", "comma-separated failure rates: print the availability-vs-failure-rate table and exit")
		metrics   = flag.Bool("metrics", false, "collect telemetry and print the metrics summary and span rollup after the run")
		traceOut  = flag.String("trace-out", "", "collect telemetry and write a Chrome trace_event JSON file of the run")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")

		campus        = flag.Bool("campus", false, "run the campus tube-network simulation (internal/tubenet) instead of the shuttle")
		campusCarts   = flag.Int("campus-carts", 1000, "campus fleet size")
		campusTrips   = flag.Int("campus-trips", 2, "station-to-station trips per campus cart")
		campusEpoch   = flag.Float64("campus-epoch", 30, "congestion route-recompute period in seconds (0 = recompute only on faults)")
		campusAlpha   = flag.Float64("campus-alpha", 0.25, "queue-depth weight in the congestion-aware edge cost")
		campusWorkers = flag.Int("campus-workers", 1, "sweep workers for route recomputes and studies (output identical at any count)")
		campusStudy   = flag.String("campus-study", "", "comma-separated seeds: run the chaos-vs-calm campus replica study and exit (implies -campus)")
		benchOut      = flag.String("bench-out", "", "campus mode: write p50/p99 transit and reroute counts as benchmark JSON to this file")
	)
	flag.Parse()

	if *campus || *campusStudy != "" {
		runCampus(campusOptions{
			carts:    *campusCarts,
			trips:    *campusTrips,
			seed:     *seed,
			epoch:    *campusEpoch,
			alpha:    *campusAlpha,
			workers:  *campusWorkers,
			chaos:    *chaos,
			horizon:  *horizon,
			faultLog: *faultLog,
			metrics:  *metrics,
			benchOut: *benchOut,
			study:    *campusStudy,
		})
		return
	}
	if *benchOut != "" {
		log.Fatal("-bench-out is only meaningful with -campus")
	}
	if *datasetPB <= 0 {
		log.Fatalf("-dataset-pb must be positive, got %v", *datasetPB)
	}
	dataset := units.Bytes(*datasetPB) * units.PB
	if *datasetS != "" {
		var err error
		dataset, err = units.ParseBytes(*datasetS)
		if err != nil {
			log.Fatal(err)
		}
		if dataset <= 0 {
			log.Fatalf("-dataset must be positive, got %v", dataset)
		}
	}

	opt := dhlsys.DefaultOptions()
	opt.NumCarts = *carts
	opt.DockStations = *docks
	opt.FailureRate = *failRate
	opt.Seed = *seed
	opt.Recovery.StrictSSD = *strict
	opt.Recovery.LaunchTimeout = units.Seconds(*timeoutS)
	opt.Recovery.RetryBackoff = units.Seconds(*backoffS)
	if *dual {
		opt.RailMode = track.DualRail
	}
	if *raid5 {
		opt.RAID = storage.RAID5
	}

	an, err := core.Transfer(opt.Core, dataset)
	if err != nil {
		log.Fatal(err)
	}

	if *sweepSpec != "" {
		failureSweep(opt, dataset, *read, *sweepSpec)
		return
	}

	if *chaos != "" {
		h := units.Seconds(*horizon)
		if h <= 0 {
			h = an.Time * 1.1
		}
		script, err := faults.Scenario(*chaos, *seed, h,
			opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs)
		if err != nil {
			if errors.Is(err, faults.ErrUnknownScenario) {
				log.Fatal(unknownChaosMessage(err))
			}
			log.Fatal(err)
		}
		opt.Faults = &script
	}

	// Telemetry is opt-in: an uninstrumented run pays only nil checks.
	var set *telemetry.Set
	if *metrics || *traceOut != "" {
		set = telemetry.NewSet()
		opt.Telemetry = set
	}

	sys, err := dhlsys.New(opt)
	if err != nil {
		log.Fatal(err)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sys.Shuttle(dhlsys.ShuttleOptions{Dataset: dataset, ReadAtEndpoint: *read})
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()

	fmt.Printf("DHL system simulation: %v over %v (%d carts, %d docks, %v, read=%v)\n",
		dataset, opt.Core, opt.NumCarts, opt.DockStations, opt.RailMode, *read)
	fmt.Printf("  deliveries:        %d (+%d retries, %d degraded, %d timeouts)\n",
		res.Deliveries, res.Retries, res.DegradedDeliveries, res.Timeouts)
	fmt.Printf("  duration:          %v\n", res.Duration)
	fmt.Printf("  launch energy:     %v\n", res.Energy)
	fmt.Printf("  effective BW:      %v\n", res.EffectiveBandwidth())
	fmt.Printf("  launches/dock ops: %d / %d\n", st.Launches, st.DockOps)
	fmt.Printf("  bytes read:        %v\n", st.BytesRead)
	fmt.Printf("  failures injected: %d (API errors reported: %d)\n", st.FailuresSeen, len(res.FailureErrors))

	rep := sys.Report()
	if *chaos != "" || st.FailuresSeen > 0 {
		fmt.Printf("\nFault report (%s):\n", scenarioLabel(*chaos))
		fmt.Printf("  %v\n", rep)
		fmt.Printf("  degraded launches: %d  stalls: %d (+%vs delay)  reroutes: %d\n",
			st.DegradedLaunches, st.Stalls, float64(st.StallTime), st.Reroutes)
		fmt.Printf("  degraded reads:    %d (%v)  backoffs: %d (+%vs wait)\n",
			st.DegradedReads, st.DegradedBytes, st.Backoffs, float64(st.BackoffWait))
	}
	if *faultLog {
		fmt.Println("\nFault event log:")
		for _, line := range sys.FaultLog() {
			fmt.Println("  " + line)
		}
	}

	fmt.Printf("\nAnalytical model (sequential, no reads): %v, %v\n", an.Time, an.Energy)
	fmt.Printf("Simulated vs analytical duration: %.3fx\n", float64(res.Duration)/float64(an.Time))

	if *metrics {
		fmt.Println("\nTelemetry:")
		fmt.Print(telemetry.SummaryTable(sys.MetricsSnapshot()))
		if rollup := telemetry.SpanSummary(set.Spans); rollup != "" {
			fmt.Println()
			fmt.Print(rollup)
		}
	}
	if *traceOut != "" {
		b, err := telemetry.ChromeTrace(set.Spans)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, b, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nChrome trace (%d span-log entries) written to %s\n", set.Spans.Len(), *traceOut)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

func scenarioLabel(name string) string {
	if name == "" {
		return "stochastic only"
	}
	return "scenario " + name
}

// chaosScenarios pairs every valid -chaos value with its one-line
// description, in faults.ScenarioNames order (a unit test keeps the two in
// lockstep).
var chaosScenarios = []struct{ name, desc string }{
	{faults.ScenarioSSDStorm, "a burst of in-flight SSD deaths"},
	{faults.ScenarioLeakyTube, "repeated vacuum leaks of varying severity"},
	{faults.ScenarioBlockedTrack, "cart stalls and debris on the rail"},
	{faults.ScenarioBrownout, "LIM power losses and dock-station failures"},
	{faults.ScenarioRoughDay, "all of the above at once, at lower per-kind rates"},
	{faults.ScenarioCampusPartition, "junction and tube-segment failures carving a campus apart (-campus only)"},
}

// unknownChaosMessage renders the fatal message for an unrecognised -chaos
// value: the error itself plus one usage line per valid scenario.
func unknownChaosMessage(err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v\n", err)
	b.WriteString("valid -chaos scenarios:\n")
	width := 0
	for _, s := range chaosScenarios {
		if len(s.name) > width {
			width = len(s.name)
		}
	}
	for _, s := range chaosScenarios {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, s.name, s.desc)
	}
	b.WriteString("replay any scenario byte-identically with -chaos NAME -seed N")
	return b.String()
}

// failureSweep prints the availability-vs-failure-rate table: one fresh
// deterministic system per rate, same seed.
func failureSweep(opt dhlsys.Options, dataset units.Bytes, read bool, spec string) {
	fmt.Printf("Availability vs failure rate: %v, %d carts, %d docks, %v, read=%v, seed=%d\n",
		dataset, opt.NumCarts, opt.DockStations, opt.RAID, read, opt.Seed)
	fmt.Printf("%-10s %-12s %-9s %-10s %-10s %-14s %-14s\n",
		"rate", "deliveries", "retries", "degraded", "failures", "duration-s", "goodput-GB/s")
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		rate, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			log.Fatalf("-failure-sweep: bad rate %q: %v", tok, err)
		}
		o := opt
		o.FailureRate = rate
		sys, err := dhlsys.New(o)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{Dataset: dataset, ReadAtEndpoint: read})
		if err != nil {
			log.Fatalf("rate %v: %v", rate, err)
		}
		st := sys.Stats()
		goodput := float64(st.BytesRead) / float64(res.Duration) / 1e9
		if !read {
			goodput = float64(res.BytesDelivered) / float64(res.Duration) / 1e9
		}
		fmt.Printf("%-10.3g %-12d %-9d %-10d %-10d %-14.3f %-14.3f\n",
			rate, res.Deliveries, res.Retries, res.DegradedDeliveries,
			st.FailuresSeen, float64(res.Duration), goodput)
	}
}
