// Command dhlmodel runs the analytical DHL design-space exploration and the
// 29 PB bulk-transfer comparison, regenerating the paper's Table VI.
//
// Usage:
//
//	dhlmodel [-sweep paper|full] [-dataset-pb N] [-format table|csv] [-exact]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/physics"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlmodel: ")
	var (
		sweep     = flag.String("sweep", "paper", "parameter sweep: \"paper\" (the 13 Table VI rows) or \"full\" (all 27 combinations)")
		datasetPB = flag.Float64("dataset-pb", 29, "dataset size to transfer, in PB")
		format    = flag.String("format", "table", "output format: \"table\" or \"csv\"")
		exact     = flag.Bool("exact", false, "use exact trapezoidal ramp timing instead of the paper's accounting")
	)
	flag.Parse()

	var rows []core.TableVIRow
	var err error
	switch *sweep {
	case "paper":
		rows, err = core.DesignSpace()
	case "full":
		rows, err = core.FullFactorialSweep()
	default:
		log.Fatalf("unknown -sweep %q", *sweep)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *datasetPB <= 0 {
		log.Fatalf("-dataset-pb must be positive, got %v", *datasetPB)
	}
	dataset := units.Bytes(*datasetPB) * units.PB
	// Re-evaluate against the requested dataset / time model if they differ
	// from the defaults the sweep used.
	for i := range rows {
		cfg := rows[i].Launch.Config
		if *exact {
			cfg.TimeModel = physics.TimeModelExact
		}
		tr, err := core.Transfer(cfg, dataset)
		if err != nil {
			log.Fatal(err)
		}
		rows[i] = core.TableVIRow{Launch: tr.Launch, Transfer: tr, Comparisons: core.CompareAll(tr)}
	}

	headers := []string{"config", "energy_kJ", "eff_GB/J", "time_s", "bw_TB/s", "peak_kW",
		"trips", "speedup", "red_A0", "red_A1", "red_A2", "red_B", "red_C"}
	cells := func(r core.TableVIRow) []any {
		out := []any{
			r.Launch.Config.String(),
			r.Launch.Energy.KJ(),
			r.Launch.Efficiency,
			float64(r.Launch.Time),
			float64(r.Launch.Bandwidth) / 1e12,
			r.Launch.PeakPower.KW(),
			r.Transfer.TotalTrips,
			float64(r.Comparisons[0].TimeSpeedup),
		}
		for _, c := range r.Comparisons {
			out = append(out, float64(c.EnergyReduction))
		}
		return out
	}

	switch *format {
	case "table":
		t := report.NewTable(fmt.Sprintf("Table VI — DHL design space, moving %v (speedup & energy reductions vs 400Gb/s scenarios)", dataset), headers...)
		for _, r := range rows {
			t.AddRow(cells(r)...)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "csv":
		var data [][]string
		for _, r := range rows {
			var row []string
			for _, c := range cells(r) {
				row = append(row, fmt.Sprintf("%v", c))
			}
			data = append(data, row)
		}
		if err := report.WriteCSV(os.Stdout, headers, data); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -format %q", *format)
	}
}
