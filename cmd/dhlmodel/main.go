// Command dhlmodel runs the analytical DHL design-space exploration and the
// 29 PB bulk-transfer comparison, regenerating the paper's Table VI.
//
// Usage:
//
//	dhlmodel [-sweep paper|full|fine] [-fine SxLxC] [-dataset-pb N]
//	         [-format table|csv] [-exact] [-j N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/physics"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dhlmodel: ")
	var (
		sweepMode = flag.String("sweep", "paper", "parameter sweep: \"paper\" (the 13 Table VI rows), \"full\" (all 27 combinations), or \"fine\" (uniform grid, see -fine)")
		fine      = flag.String("fine", "8x5x5", "fine-grid resolution as speeds×lengths×carts (with -sweep fine)")
		datasetPB = flag.Float64("dataset-pb", 29, "dataset size to transfer, in PB")
		format    = flag.String("format", "table", "output format: \"table\" or \"csv\"")
		exact     = flag.Bool("exact", false, "use exact trapezoidal ramp timing instead of the paper's accounting")
		jobs      = flag.Int("j", 0, "sweep worker-pool size (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting")
	)
	flag.Parse()

	if *datasetPB <= 0 {
		log.Fatalf("-dataset-pb must be positive, got %v", *datasetPB)
	}
	dataset := units.Bytes(*datasetPB) * units.PB

	var configs []core.Config
	switch *sweepMode {
	case "paper":
		configs = core.DesignSpaceConfigs()
	case "full":
		configs = core.PaperResolutionGrid().Configs(core.DefaultConfig())
	case "fine":
		var ns, nl, nc int
		if _, err := fmt.Sscanf(*fine, "%dx%dx%d", &ns, &nl, &nc); err != nil {
			log.Fatalf("bad -fine %q, want e.g. 8x5x5: %v", *fine, err)
		}
		g, err := core.UniformFineGrid(ns, nl, nc)
		if err != nil {
			log.Fatal(err)
		}
		configs = g.Configs(core.DefaultConfig())
	default:
		log.Fatalf("unknown -sweep %q", *sweepMode)
	}
	if *exact {
		for i := range configs {
			configs[i].TimeModel = physics.TimeModelExact
		}
	}

	rows, err := core.EvalConfigs(context.Background(), configs, dataset, sweep.Workers(*jobs))
	if err != nil {
		log.Fatal(err)
	}

	headers := []string{"config", "energy_kJ", "eff_GB/J", "time_s", "bw_TB/s", "peak_kW",
		"trips", "speedup", "red_A0", "red_A1", "red_A2", "red_B", "red_C"}
	cells := func(r core.TableVIRow) []any {
		out := []any{
			r.Launch.Config.String(),
			r.Launch.Energy.KJ(),
			r.Launch.Efficiency,
			float64(r.Launch.Time),
			float64(r.Launch.Bandwidth) / 1e12,
			r.Launch.PeakPower.KW(),
			r.Transfer.TotalTrips,
			float64(r.Comparisons[0].TimeSpeedup),
		}
		for _, c := range r.Comparisons {
			out = append(out, float64(c.EnergyReduction))
		}
		return out
	}

	switch *format {
	case "table":
		t := report.NewTable(fmt.Sprintf("Table VI — DHL design space, moving %v (speedup & energy reductions vs 400Gb/s scenarios)", dataset), headers...)
		for _, r := range rows {
			t.AddRow(cells(r)...)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case "csv":
		var data [][]string
		for _, r := range rows {
			var row []string
			for _, c := range cells(r) {
				row = append(row, fmt.Sprintf("%v", c))
			}
			data = append(data, row)
		}
		if err := report.WriteCSV(os.Stdout, headers, data); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -format %q", *format)
	}
}
