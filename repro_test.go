package repro

// Root-level integration tests: the paper's headline claims, checked across
// module boundaries. Per-table reproductions live next to the packages that
// implement them; this file asserts the abstract's numbers end to end.

import (
	"math"
	"testing"

	"repro/internal/astra"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dhlsys"
	"repro/internal/netmodel"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

// TestAbstractEnergyAndTimeHeadlines checks: "we obtain energy reductions of
// 1.6× to 376.1× and time speedups from 114.8× to 646.4× versus 400gbps
// optical networking".
func TestAbstractEnergyAndTimeHeadlines(t *testing.T) {
	rows, err := core.DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	minRed, maxRed := math.Inf(1), math.Inf(-1)
	minSp, maxSp := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		for _, c := range r.Comparisons {
			minRed = math.Min(minRed, float64(c.EnergyReduction))
			maxRed = math.Max(maxRed, float64(c.EnergyReduction))
		}
		minSp = math.Min(minSp, float64(r.Comparisons[0].TimeSpeedup))
		maxSp = math.Max(maxSp, float64(r.Comparisons[0].TimeSpeedup))
	}
	approx(t, "min energy reduction", minRed, 1.6, 0.03)
	approx(t, "max energy reduction", maxRed, 376.1, 0.03)
	approx(t, "min time speedup", minSp, 114.8, 0.015)
	approx(t, "max time speedup", maxSp, 646.4, 0.015)
}

// TestAbstractEfficiencyHeadline checks: "improved embodied data
// transmission power efficiency of up to 73.3 GB/J".
func TestAbstractEfficiencyHeadline(t *testing.T) {
	l, err := Launch(DefaultConfig().With(100, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "peak efficiency", l.Efficiency, 73.3, 0.005)
}

// TestAbstractSimulationHeadlines checks: "time speedups of between 5.7×
// and 118× (iso-power) and communication power reductions of between 6.4×
// and 135× (iso-time)".
func TestAbstractSimulationHeadlines(t *testing.T) {
	w := DLRM()
	dhl := astra.DefaultDHL()
	iso, err := astra.IsoPower(w, dhl)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "min iso-power slowdown", float64(iso[1].Factor), 5.7, 0.06)
	approx(t, "max iso-power slowdown", float64(iso[5].Factor), 118, 0.06)
	isoT, err := astra.IsoTime(w, dhl)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "min iso-time increase", float64(isoT[1].Factor), 6.4, 0.06)
	approx(t, "max iso-time increase", float64(isoT[5].Factor), 135, 0.06)
}

// TestIntroWeekTransfer checks §I: moving 29 PB at 400 Gb/s "would take
// roughly 1 week", and a 1-hour target needs a 161× network speedup beyond
// 64 Tb/s.
func TestIntroWeekTransfer(t *testing.T) {
	tt := netmodel.TransferTime(PaperDataset)
	if tt.Days() < 6.5 || tt.Days() > 7 {
		t.Errorf("29PB transfer = %v days, want ≈1 week", tt.Days())
	}
	speedupFor1h := float64(tt) / 3600
	approx(t, "1-hour speedup", speedupFor1h, 161, 0.01)
	needed := 161 * 400 * units.Gbps
	if needed <= 64*1000*units.Gbps {
		t.Errorf("needed rate %v should exceed 64 Tb/s", needed)
	}
}

// TestCostHeadline checks §V-D: "DHL costs roughly twenty thousand dollars".
func TestCostHeadline(t *testing.T) {
	c := cost.Overall(1000, 300)
	if c < 18000*1 || c > 23000 {
		t.Errorf("max configuration cost = %v, want ≈$20k", c)
	}
}

// TestSimulationAgreesWithClosedForm ties the event-driven system to the
// analytical model across several configurations.
func TestSimulationAgreesWithClosedForm(t *testing.T) {
	for _, ssds := range []int{16, 32, 64} {
		opt := dhlsys.DefaultOptions()
		opt.Core = DefaultConfig().With(200, 500, ssds)
		opt.NumCarts = 1
		opt.DockStations = 1
		sys, err := dhlsys.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		dataset := 6 * opt.Core.Cart.Capacity()
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{Dataset: dataset})
		if err != nil {
			t.Fatal(err)
		}
		an, err := Transfer(opt.Core, dataset)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "sim vs analytical time", float64(res.Duration), float64(an.Time), 1e-9)
		approx(t, "sim vs analytical energy", float64(res.Energy), float64(an.Energy), 1e-9)
	}
}

// TestEmbodiedBandwidthHeadline checks §V-A: "we obtain from 15 to 60 TB/s,
// which is between 300× and 1200× faster than fibre optic".
func TestEmbodiedBandwidthHeadline(t *testing.T) {
	lo, err := Launch(DefaultConfig().With(200, 500, 16))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Launch(DefaultConfig().With(200, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "low embodied BW", float64(lo.Bandwidth)/1e12, 15, 0.01)
	approx(t, "high embodied BW", float64(hi.Bandwidth)/1e12, 60, 0.01)
}

// TestFacade exercises the root package's re-exports.
func TestFacade(t *testing.T) {
	tr, err := Transfer(DefaultConfig(), PaperDataset)
	if err != nil {
		t.Fatal(err)
	}
	if tr.DeliveryTrips != 114 {
		t.Errorf("deliveries = %d, want 114", tr.DeliveryTrips)
	}
	if DLRM().Dataset != PaperDataset {
		t.Error("DLRM dataset should be the 29 PB paper dataset")
	}
}
