// ML training: reproduce the paper's §V-C study — time and power to run a
// DLRM training iteration when the 29 PB dataset is fed over a DHL versus
// parallel optical links (Table VII), plus a small Figure 6 excerpt.
package main

import (
	"fmt"
	"log"

	"repro/internal/astra"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/units"
)

func main() {
	w := astra.DefaultDLRM()
	dhl := astra.DefaultDHL()

	it, err := w.Iteration(dhl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("One DLRM iteration over %s (avg power %v):\n", dhl.Name(), dhl.AveragePower())
	fmt.Printf("  ingest %v + compute %v + allreduce %v = %v\n\n",
		it.Ingest, it.Compute, it.AllReduce, it.Total())

	rows, err := astra.IsoPower(w, dhl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Iso-power (every scheme gets the DHL's power budget):")
	for _, r := range rows {
		fmt.Printf("  %-3s %8.0f s/iter  %6.1fx\n", r.Scheme, float64(r.TimePerIter), float64(r.Factor))
	}

	rows, err = astra.IsoTime(w, dhl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIso-time (every network matches the DHL's iteration time):")
	for _, r := range rows {
		fmt.Printf("  %-3s %8.1f kW  %6.1fx\n", r.Scheme, r.Power.KW(), float64(r.Factor))
	}

	// Scaling out: more DHL tracks versus more optical links at the same
	// power (a vertical slice of Figure 6).
	fmt.Println("\nScaling the power budget (DHL tracks vs A0 links):")
	for _, tracks := range []int{1, 2, 4, 8} {
		d, err := astra.NewDHL(core.DefaultConfig(), tracks, astra.DefaultRegen)
		if err != nil {
			log.Fatal(err)
		}
		dIt, err := w.Iteration(d)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := astra.OpticalForBudget(netmodel.ScenarioA0, d.AveragePower())
		if err != nil {
			log.Fatal(err)
		}
		oIt, err := w.Iteration(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6.2f kW: DHL×%d %7.0f s vs A0×%.0f links %7.0f s (%.1fx)\n",
			d.AveragePower().KW(), tracks, float64(dIt.Total()),
			opt.Links, float64(oIt.Total()), float64(oIt.Total())/float64(dIt.Total()))
	}

	// The event-driven path reproduces the analytical answer after the
	// paper's 1e7 downscale-and-upscale.
	simmed, err := w.SimulateIteration(dhl, astra.PaperDownscale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEvent-driven (×%.0e downscale) total: %v (analytical %v)\n",
		astra.PaperDownscale, simmed.Total(), it.Total())

	// Training several models on the same dataset amortises nothing on the
	// network but the DHL keeps its advantage every single time (§II-D.3).
	perIterSaving := units.Energy(rows[1].Power-rows[0].Power, it.Total())
	fmt.Printf("\nEach iteration at iso-time saves %v vs A0 links.\n", perIterSaving)
}
