// Physics: the §II-D.1 experimental-physics setting — shipping unfiltered
// LHC CMS detector captures (150 TB/s bursts) to off-site processing with a
// DHL instead of aggressively filtering them on radiation-hardened ASICs.
package main

import (
	"fmt"
	"log"

	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/storage"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	trace, err := workload.DefaultPhysicsBurst().Generate()
	if err != nil {
		log.Fatal(err)
	}
	burst := trace[0].Size
	fmt.Printf("CMS detector: %v; capturing %v per experiment (%d experiments)\n\n",
		workload.LHCCMSDetector.Rate, burst, len(trace))

	// Size a cart for one burst: 300 TB needs 38 M.2 SSDs; round to the
	// paper's 64-SSD (512 TB) configuration for headroom.
	needed, err := cart.ForCapacity(burst, storage.SabrentRocket4Plus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("One burst fits on %d × 8 TB M.2 (%v cart); using the 512 TB cart.\n",
		needed.Config.NumSSDs, needed.TotalMass)

	// A long DHL to an off-site facility: 1 km at 300 m/s.
	cfg := core.DefaultConfig().With(300, 1000, 64)
	launch, err := core.Launch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%v: %v per launch, %v, %v embodied bandwidth\n",
		cfg, launch.Energy, launch.Time, launch.Bandwidth)

	// Can the DHL keep up with the experiment cadence?
	var cartsPerBurst int
	if burst > cfg.Cart.Capacity() {
		cartsPerBurst = int((burst + cfg.Cart.Capacity() - 1) / cfg.Cart.Capacity())
	} else {
		cartsPerBurst = 1
	}
	period := trace[1].At - trace[0].At
	shipTime := units.Seconds(float64(cartsPerBurst) * float64(launch.Time))
	fmt.Printf("\nEach burst ships on %d cart(s) in %v; experiments every %v → ", cartsPerBurst, shipTime, period)
	if shipTime < period {
		fmt.Println("the DHL keeps up with zero filtering.")
	} else {
		fmt.Println("more carts or tracks are needed.")
	}

	// The optical alternative for a single burst.
	netTime := netmodel.TransferTime(burst)
	fmt.Printf("\nOne burst over a 400Gb/s link: %v (%.0fx slower than the DHL delivery)\n",
		netTime, float64(netTime)/float64(launch.Time))
	fmt.Printf("Sustaining 150 TB/s optically would need %.0f parallel links.\n",
		float64(workload.LHCCMSDetector.Rate)/float64(netmodel.LinkBandwidth()))
}
