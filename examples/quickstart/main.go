// Quickstart: model a single DHL launch and compare moving the paper's
// 29 PB ML dataset against 400 Gb/s optical networking.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	// The paper's default DHL: a 256 TB cart (32 × 8 TB M.2 SSDs, 282 g)
	// on a 500 m track at 200 m/s.
	cfg := core.DefaultConfig()

	launch, err := core.Launch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("One launch of %v:\n", cfg)
	fmt.Printf("  cart: %v\n", cfg.Cart)
	fmt.Printf("  energy:             %v\n", launch.Energy)
	fmt.Printf("  time:               %v\n", launch.Time)
	fmt.Printf("  embodied bandwidth: %v\n", launch.Bandwidth)
	fmt.Printf("  peak power:         %v\n", launch.PeakPower)
	fmt.Printf("  efficiency:         %.1f GB/J\n\n", launch.Efficiency)

	// Moving Meta's 29 PB dataset (§II-C) with repeated trips.
	tr, err := core.Transfer(cfg, core.PaperDataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Moving %v: %d deliveries (%d one-way trips), %v, %v\n\n",
		tr.Dataset, tr.DeliveryTrips, tr.TotalTrips, tr.Time, tr.Energy)

	fmt.Println("Versus 400 Gb/s optical networking:")
	for _, c := range core.CompareAll(tr) {
		fmt.Printf("  vs %-2s: %7s faster, %7s less energy (network: %v, %v)\n",
			c.Scenario, c.TimeSpeedup, c.EnergyReduction, c.NetworkTime, c.NetworkEnergy)
	}

	// A slower launch is far more energy-efficient (Table VI observation).
	eco := cfg
	eco.MaxSpeed = 100 * units.MetresPerSecond(1)
	ecoLaunch, err := core.Launch(eco)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt 100 m/s the same cart moves %.1f GB/J (vs %.1f GB/J at 200 m/s).\n",
		ecoLaunch.Efficiency, launch.Efficiency)
}
