// Crossover: explore §V-E — the minimum dataset size and deployment at
// which a DHL beats a single optical link, including the paper's 10 m/s,
// 10 m, 360 GB operating point.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/units"
)

func main() {
	// The paper's minimum-spec DHL: one-SSD cart, 10 m/s, 10 m.
	minCfg := core.MinimumSpecConfig()
	r, err := core.Crossover(minCfg, netmodel.ScenarioA0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Minimum-spec DHL (%v, cart %v):\n", minCfg, minCfg.Cart.TotalMass)
	fmt.Printf("  one-way launch:    %v\n", r.LaunchTime)
	fmt.Printf("  break-even dataset: %v (paper: ~360 GB)\n", r.BreakEvenDataset)
	fmt.Printf("  optical energy over that window: %v; DHL launch: %v (%.0fx less)\n\n",
		r.OpticalEnergy, r.DHLEnergy, float64(r.EnergyAdvantage()))

	for _, d := range []units.Bytes{100 * units.GB, 360 * units.GB, units.TB} {
		verdict := "optical wins"
		if r.DHLWins(d) {
			verdict = "DHL wins"
		}
		fmt.Printf("  %-6v → %s\n", d, verdict)
	}

	// How the break-even point moves with speed and track length: the 6 s
	// docking overhead dominates, so the break-even dataset is nearly flat.
	fmt.Println("\nBreak-even dataset across slow deployments:")
	for _, v := range []float64{5, 10, 20, 50} {
		for _, l := range []float64{10, 50, 100} {
			cfg := core.MinimumSpecConfig()
			cfg.MaxSpeed = units.MetresPerSecond(v)
			cfg.Length = units.Metres(l)
			c, err := core.Crossover(cfg, netmodel.ScenarioA0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %3.0f m/s, %4.0f m: %v (launch %v)\n",
				v, l, c.BreakEvenDataset, c.LaunchTime)
		}
	}
	fmt.Println("\nDHL is desirable for transfers of at least a few hundred GB over at least ~10 m.")
}
