// Control plane: run the §III-D software API over the standard network — a
// TCP server wrapping a simulated DHL deployment, driven by a JSON client
// the way a rack's storage-management daemon would (the paper suggests
// integration with suites like NVIDIA Magnum IO).
package main

import (
	"fmt"
	"log"

	"repro/internal/controlplane"
	"repro/internal/dhlsys"
	"repro/internal/units"
)

func main() {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	srv, err := controlplane.NewServer(sys)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("DHL control plane listening on %s\n\n", addr)

	c, err := controlplane.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	step := func(what string, r controlplane.Response, err error) {
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		if !r.OK {
			log.Fatalf("%s: API error: %s", what, r.Error)
		}
		fmt.Printf("%-28s sim-time %8.1f s (op took %6.1f s)\n", what, r.SimTime, r.OpSeconds)
	}

	// The four paper commands, §III-D.
	r, err := c.Open(0)
	step("Open(cart 0)", r, err)
	r, err = c.Write(0, 100*units.TB)
	step("Write(cart 0, 100 TB)", r, err)
	r, err = c.Read(0, 100*units.TB)
	step("Read(cart 0, 100 TB)", r, err)
	r, err = c.CloseCart(0)
	step("Close(cart 0)", r, err)

	// Errors are reported through the API, not hidden (§III-D).
	bad, err := c.Read(0, units.GB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRead at library correctly rejected: %q\n", bad.Error)

	st, err := c.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeployment: %d launches, %d dock ops, %.1f kJ, %s read, %s written\n",
		st.Stats.Launches, st.Stats.DockOps, st.Stats.EnergyJ/1000,
		units.Bytes(st.Stats.BytesRead), units.Bytes(st.Stats.BytesWritten))
}
