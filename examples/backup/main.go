// Backup: run the §II-D.2 data-centre bulk-backup setting through the
// event-driven DHL system simulation — a week of nightly multi-PB backups
// shuttled by a cart fleet, with in-flight SSD failures ameliorated by
// RAID5 (§III-D).
package main

import (
	"fmt"
	"log"

	"repro/internal/dhlsys"
	"repro/internal/netmodel"
	"repro/internal/storage"
	"repro/internal/track"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	trace, err := workload.DefaultBulkBackup().Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bulk backup trace: %d backups, %v total\n\n", len(trace), trace.TotalBytes())

	opt := dhlsys.DefaultOptions()
	opt.NumCarts = 4
	opt.DockStations = 4
	opt.RailMode = track.DualRail
	opt.RAID = storage.RAID5
	opt.FailureRate = 0.05 // 5% of launches lose one SSD in flight
	opt.Seed = 2024

	var totalDur units.Seconds
	var totalEnergy units.Joules
	for _, b := range trace {
		sys, err := dhlsys.New(opt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{Dataset: b.Size, ReadAtEndpoint: true})
		if err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		fmt.Printf("%-9s %-7v %3d deliveries in %-8v (%2d SSD failures, %d redeliveries)\n",
			b.Label, b.Size, res.Deliveries, res.Duration, st.FailuresSeen, res.Retries)
		totalDur += res.Duration
		totalEnergy += res.Energy
	}

	// The same week of backups over the cross-aisle network route C.
	netTime := netmodel.TransferTime(trace.TotalBytes())
	netEnergy := netmodel.ScenarioC.Power().Energy(trace.TotalBytes())
	fmt.Printf("\nDHL total:   %v moving time, %v launch energy\n", totalDur, totalEnergy)
	fmt.Printf("Network (C): %v on one 400Gb/s link, %v\n", netTime, netEnergy)
	fmt.Printf("The backups stop hogging the data centre network entirely: %.0fx less transfer energy.\n",
		float64(netEnergy)/float64(totalEnergy))
}
