// Multi-stop: the §VI track extension — one DHL line serving several racks,
// with concurrent moves on disjoint rail spans, triangular short hops, and
// the paper's observation that higher speeds ameliorate contention.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/multistop"
	"repro/internal/track"
	"repro/internal/units"
)

func line(speed units.MetresPerSecond) *multistop.Line {
	cfg := core.DefaultConfig()
	cfg.MaxSpeed = speed
	l, err := multistop.New(cfg, []multistop.Stop{
		{Name: "library", Position: 0},
		{Name: "rack-A", Position: 120},
		{Name: "rack-B", Position: 150},
		{Name: "rack-C", Position: 380},
		{Name: "rack-D", Position: 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func main() {
	l := line(200)
	fmt.Println("Multi-stop DHL line:")
	for i, s := range l.Stops() {
		fmt.Printf("  [%d] %-8s at %4.0f m\n", i, s.Name, float64(s.Position))
	}

	// Hop physics: a short hop never reaches cruise speed.
	long, err := l.HopBetween(0, 4)
	if err != nil {
		log.Fatal(err)
	}
	short, err := l.HopBetween(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlibrary→rack-D: %4.0fm, peak %5.1f m/s, %4.1fs, %5.1f kJ (trapezoid)\n",
		float64(long.Distance), float64(long.PeakSpeed), float64(long.MoveTime), long.Energy.KJ())
	fmt.Printf("rack-A→rack-B:  %4.0fm, peak %5.1f m/s, %4.1fs, %5.1f kJ (triangular=%v)\n",
		float64(short.Distance), float64(short.PeakSpeed), float64(short.MoveTime),
		short.Energy.KJ(), short.Triangular)

	// Four users move carts at once; disjoint spans overlap in time.
	for i := 0; i < 4; i++ {
		if err := l.Place(track.CartID(i), i); err != nil {
			log.Fatal(err)
		}
	}
	moves := []struct{ cart, to int }{{0, 1}, {1, 0}, {2, 3}, {3, 4}}
	for _, m := range moves {
		m := m
		l.Move(track.CartID(m.cart), m.to, func(err error) {
			if err != nil {
				log.Fatalf("cart %d → stop %d: %v", m.cart, m.to, err)
			}
		})
	}
	end, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := l.Stats()
	fmt.Printf("\n4 moves completed in %v (%d queued, %.1fs total wait, %v)\n",
		end, st.QueuedMoves, float64(st.TotalWait), st.Energy)

	// §VI: "Multi-stop would motivate higher speeds to ameliorate potential
	// contention from different users."
	fmt.Println("\nContention vs speed (same 4-user burst):")
	for _, v := range []units.MetresPerSecond{100, 200, 300} {
		l := line(v)
		for i := 0; i < 4; i++ {
			l.Place(track.CartID(i), 0)
		}
		for i := 0; i < 4; i++ {
			l.Move(track.CartID(i), 1+i%3, func(err error) {
				if err != nil {
					log.Fatal(err)
				}
			})
		}
		end, err := l.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f m/s: burst served in %6.2fs, total wait %6.2fs\n",
			float64(v), float64(end), float64(l.Stats().TotalWait))
	}
}
