// Deployment planner: size a DHL for a concrete data-centre floor plan —
// from Figure 1's geometry to track length, materials cost (Table VIII),
// launch metrics (Table VI), and fleet maintenance (§VI) in one pass.
package main

import (
	"fmt"
	"log"

	"repro/internal/cart"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fleet"
	"repro/internal/floorplan"
	"repro/internal/thermal"
)

func main() {
	plan := floorplan.DefaultPlan()
	fmt.Printf("Floor plan: %d aisles × %d racks (%.0f m aisles, %.0f m span), library %.0f m away\n",
		plan.Aisles, plan.RacksPerAisle, float64(plan.AisleLength()),
		float64(plan.FloorSpan()), float64(plan.LibraryRun))

	// Target: the §III-C ML supercomputer spanning aisle 12.
	run, err := plan.SupercomputerRun(12)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := plan.ConfigFor(core.DefaultConfig(), 12, plan.RacksPerAisle-1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Supercomputer run: %.0f m of track → configuration %v\n\n", float64(run), cfg)

	launch, err := core.Launch(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Performance: %v per launch, %v, %v embodied bandwidth, %.1f GB/J\n",
		launch.Energy, launch.Time, launch.Bandwidth, launch.Efficiency)

	// Materials bill for the track (round to the paper's cost grid for the
	// LIM sizing, use the exact distance for the rail).
	rail := cost.Rail(cfg.Length)
	lim := cost.LIM(cfg.MaxSpeed)
	fmt.Printf("Materials: rail %v (%d levitation rings) + LIM %v = %v\n",
		rail.Total(), rail.RingCount(), lim.Total(), rail.Total()+lim.Total())

	// Thermal budget for the docked cart with the §VI conductive fins.
	th, err := thermal.Analyze(thermal.CartThermals{
		Sink:    thermal.ConductiveFins,
		NumSSDs: cfg.Cart.Config.NumSSDs,
		Ambient: thermal.DefaultAmbient,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Thermals: %v of SSD heat, %.0f °C steady, full-rate reads sustained: %v\n",
		th.TotalHeat, th.SteadyTemp, th.SustainedFullLoad)

	// Maintenance forecast with USB-C docking connectors at one 29 PB
	// campaign per day.
	fl, err := fleet.New(fleet.USBC, fleet.DefaultPolicy(), 4)
	if err != nil {
		log.Fatal(err)
	}
	proj, err := fl.Project(454)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Maintenance: connector service every %.0f days, %.1f%% availability, %v/year for the fleet\n",
		proj.DaysBetweenService, 100*proj.Availability, proj.AnnualCost)

	// And the cart itself.
	c := cart.MustNew(cart.DefaultConfig())
	fmt.Printf("\nCart: %v — %v of magnets, %v fin, %v of SSDs\n",
		c, c.MagnetMass, c.FinMass, c.SSDMass)
}
