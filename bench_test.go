package repro

// One benchmark per paper table and figure (plus kernel micro-benchmarks).
// Each bench regenerates the corresponding artefact end to end; run with
//
//	go test -bench=. -benchmem
//
// or scripts/bench.sh for the regression harness. EXPERIMENTS.md maps every
// benchmark to its paper artefact and records paper-versus-measured values.
//
// Conventions: every benchmark calls b.ReportAllocs(), and any setup that is
// not part of the measured artefact happens before b.ResetTimer().

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/astra"
	"repro/internal/cart"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datamap"
	"repro/internal/dhlsys"
	"repro/internal/faults"
	"repro/internal/multistop"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/thermal"
	"repro/internal/track"
	"repro/internal/tubenet"
	"repro/internal/units"
	"repro/internal/workload"
)

// BenchmarkFig2RouteEnergies regenerates Figure 2's route energy table
// (E1): the five A0–C route energies for the 29 PB transfer, derived from
// fat-tree routing.
func BenchmarkFig2RouteEnergies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		routes := netmodel.ScenarioRoutes()
		var total units.Joules
		for _, rp := range routes {
			total += rp.Energy(PaperDataset)
		}
		if total <= 0 {
			b.Fatal("no energy computed")
		}
	}
}

// BenchmarkTableVCartMass regenerates Table V's cart masses (E3).
func BenchmarkTableVCartMass(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{16, 32, 64} {
			c, err := cart.New(cart.DefaultConfig().WithSSDs(n))
			if err != nil {
				b.Fatal(err)
			}
			if c.TotalMass <= 0 {
				b.Fatal("bad mass")
			}
		}
	}
}

// BenchmarkTableVIDesignSpace regenerates Table VI's single-launch block
// (E4): all 13 configurations' energy/time/bandwidth/power/efficiency,
// evaluated sequentially (the paper-scale baseline).
func BenchmarkTableVIDesignSpace(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := core.DesignSpace(sweep.Workers(1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 13 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// fineBenchGrid is the ≥200-point grid both fine-design-space benchmarks
// share, so their ns/op are directly comparable.
func fineBenchGrid(b *testing.B) core.FineGrid {
	b.Helper()
	g, err := core.UniformFineGrid(8, 5, 5) // 200 points
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFineDesignSpaceSequential sweeps a 200-point speed × length ×
// capacity grid on one worker — the sequential baseline for the parallel
// engine.
func BenchmarkFineDesignSpaceSequential(b *testing.B) {
	g := fineBenchGrid(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.FineDesignSpace(ctx, g, PaperDataset, sweep.Workers(1))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 200 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkDesignSpaceParallel sweeps the same 200-point grid on the
// GOMAXPROCS-bounded worker pool. With ≥4 cores this runs ≥2× faster than
// BenchmarkFineDesignSpaceSequential while producing byte-identical rows
// (TestFineDesignSpaceDeterministic asserts the identity).
func BenchmarkDesignSpaceParallel(b *testing.B) {
	g := fineBenchGrid(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.FineDesignSpace(ctx, g, PaperDataset, sweep.Workers(runtime.GOMAXPROCS(0)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 200 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTableVI29PB regenerates Table VI's right block (E5): the 29 PB
// speedups and energy reductions against all five network scenarios.
func BenchmarkTableVI29PB(b *testing.B) {
	cfgs := []core.Config{
		DefaultConfig().With(100, 500, 32),
		DefaultConfig().With(200, 500, 32),
		DefaultConfig().With(300, 500, 32),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			tr, err := core.Transfer(cfg, PaperDataset)
			if err != nil {
				b.Fatal(err)
			}
			if cmp := core.CompareAll(tr); len(cmp) != 5 {
				b.Fatal("missing comparisons")
			}
		}
	}
}

// BenchmarkTableVIIIsoPower regenerates Table VII(a) (E6).
func BenchmarkTableVIIIsoPower(b *testing.B) {
	w := DLRM()
	dhl := astra.DefaultDHL()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := astra.IsoPower(w, dhl)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkTableVIIIsoTime regenerates Table VII(b) (E7).
func BenchmarkTableVIIIsoTime(b *testing.B) {
	w := DLRM()
	dhl := astra.DefaultDHL()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := astra.IsoTime(w, dhl)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFigure6 regenerates the full Figure 6 sweep (E8) sequentially:
// five quantised DHL curves and five continuous network curves.
func BenchmarkFigure6(b *testing.B) {
	w := DLRM()
	opt := astra.DefaultFigure6Options()
	opt.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := astra.Figure6(w, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 10 {
			b.Fatal("bad curve count")
		}
	}
}

// BenchmarkFigure6Parallel regenerates Figure 6 with one sweep worker per
// curve; results are byte-identical to BenchmarkFigure6's
// (TestFigure6ParallelMatchesSequential).
func BenchmarkFigure6Parallel(b *testing.B) {
	w := DLRM()
	opt := astra.DefaultFigure6Options()
	opt.Workers = runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := astra.Figure6(w, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 10 {
			b.Fatal("bad curve count")
		}
	}
}

// BenchmarkTableVIIICost regenerates Table VIII (E9): rail, LIM, and the
// 3×3 overall grid.
func BenchmarkTableVIIICost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if g := cost.PaperGrid(); len(g) != 9 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkMinimumSpecCrossover regenerates §V-E's break-even analysis (E10).
func BenchmarkMinimumSpecCrossover(b *testing.B) {
	cfg := core.MinimumSpecConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Crossover(cfg, netmodel.ScenarioA0)
		if err != nil {
			b.Fatal(err)
		}
		if r.BreakEvenDataset <= 0 {
			b.Fatal("bad break-even")
		}
	}
}

// BenchmarkMinimumSpecSearch sweeps the §V-E break-even analysis over a
// 75-point grid around the minimum-spec operating point.
func BenchmarkMinimumSpecSearch(b *testing.B) {
	base := core.MinimumSpecConfig()
	g := core.FineGrid{
		Speeds:  []units.MetresPerSecond{5, 10, 20, 40, 80},
		Lengths: []units.Metres{10, 20, 50, 100, 500},
		SSDs:    []int{1, 2, 4},
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.MinimumSpecSearch(ctx, base, g, 360*units.GB, netmodel.ScenarioA0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Best == nil {
			b.Fatal("no winning spec")
		}
	}
}

// BenchmarkSystemSimulation runs the event-driven DHL system end to end
// (E12): a pipelined 2.56 PB transfer with endpoint reads on a dual-rail,
// 4-dock deployment.
func BenchmarkSystemSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
	}
}

// BenchmarkShuttleNoFaults is the fault-free baseline for the chaos
// overhead comparison: the same workload BenchmarkChaosShuttle runs, with
// no script armed. The fault engine's cost must stay under 10 % of this.
func BenchmarkShuttleNoFaults(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
	}
}

// BenchmarkShuttleArmedEmptyScript measures the injection machinery's own
// overhead: the injector armed with an explicit empty script, no fault ever
// firing. This is the number the <10 %-overhead target governs — the
// rough-day benchmark below costs more because it genuinely simulates more
// (stalls, reroutes, degraded launches), not because injection is slow.
func BenchmarkShuttleArmedEmptyScript(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		opt.Faults = &faults.Script{Name: "empty"}
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
	}
}

// BenchmarkShuttleTelemetryDisabled is the uninstrumented baseline for the
// telemetry overhead comparison: the BenchmarkShuttleNoFaults workload with
// no telemetry set attached. Every hook on this path is a nil-receiver
// no-op; the acceptance target holds this within 1 % of the pre-telemetry
// throughput.
func BenchmarkShuttleTelemetryDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
	}
}

// BenchmarkShuttleTelemetryEnabled measures full instrumentation cost in
// the intended operating mode: a long-lived Set reused across runs via
// Reset (sweeps, benchmarks, and servers all run many simulations against
// one collector). Per-run instrumentation — registry lookups, name
// interning, every span/counter/histogram record, and the final snapshot —
// is on the measured path; the collector's buffers are recycled, so the
// steady state allocates nothing for telemetry storage.
func BenchmarkShuttleTelemetryEnabled(b *testing.B) {
	b.ReportAllocs()
	set := telemetry.NewSet()
	for i := 0; i < b.N; i++ {
		set.Reset()
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		opt.Telemetry = set
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
		if snap := sys.MetricsSnapshot(); len(snap.Counters) == 0 {
			b.Fatal("instrumented run produced no counters")
		}
	}
}

// BenchmarkShuttleTelemetryEnabledCold is the same workload with a fresh
// Set constructed per run — the worst case, paying collector construction
// and first-use buffer growth every iteration. The gap between this and
// the warm benchmark above is the cost Reset pooling recovers.
func BenchmarkShuttleTelemetryEnabledCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		opt.Telemetry = telemetry.NewSet()
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
		if snap := sys.MetricsSnapshot(); len(snap.Counters) == 0 {
			b.Fatal("instrumented run produced no counters")
		}
	}
}

// BenchmarkChaosShuttle measures the fault-injection engine's end-to-end
// overhead: the BenchmarkShuttleNoFaults workload under the rough-day
// scenario (all five fault kinds active). Script generation is part of the
// measured path — a chaos run pays for it exactly once.
func BenchmarkChaosShuttle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		opt.Seed = 1337
		script, err := faults.Scenario(faults.ScenarioRoughDay, 1337, 120,
			opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs)
		if err != nil {
			b.Fatal(err)
		}
		opt.Faults = &script
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.Shuttle(dhlsys.ShuttleOptions{
			Dataset:        10 * 256 * units.TB,
			ReadAtEndpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deliveries != 10 {
			b.Fatal("bad deliveries")
		}
	}
}

// BenchmarkSimulateIteration runs the event-driven DLRM iteration with the
// paper's 1e7 downscale (part of E6/E7 methodology).
func BenchmarkSimulateIteration(b *testing.B) {
	w := DLRM()
	dhl := astra.DefaultDHL()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.SimulateIteration(dhl, astra.PaperDownscale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventKernel measures the discrete-event engine's throughput.
func BenchmarkEventKernel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 1000 {
				eng.MustAfter(1, "tick", tick)
			}
		}
		eng.MustAfter(1, "tick", tick)
		if _, err := eng.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventKernelSteadyState measures the engine at a fixed queue
// depth: 64 concurrent self-rescheduling timers firing 16384 events per
// iteration. This is the arena's steady state — after warm-up every
// schedule reuses a slot the free-list just recycled, so the heap and
// arena never grow and the per-event cost is pure heap-sift plus slot
// bookkeeping.
func BenchmarkEventKernelSteadyState(b *testing.B) {
	const depth = 64
	const events = 16384
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n <= events-depth {
				eng.MustAfter(1, "tick", tick)
			}
		}
		for j := 0; j < depth; j++ {
			eng.MustAfter(units.Seconds(1+j), "tick", tick)
		}
		if _, err := eng.Run(0); err != nil {
			b.Fatal(err)
		}
		if p := eng.Processed(); p != events {
			b.Fatalf("processed %d events, want %d", p, events)
		}
	}
}

// BenchmarkStorageArray measures striped array transfers.
func BenchmarkStorageArray(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := storage.NewArray(storage.RAID0, storage.SabrentRocket4Plus, 32, 6, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Write(256 * units.TB); err != nil {
			b.Fatal(err)
		}
		if _, err := a.Read(256 * units.TB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGenerators measures trace generation for the three
// §II-D settings.
func BenchmarkWorkloadGenerators(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.DefaultPhysicsBurst().Generate(); err != nil {
			b.Fatal(err)
		}
		if _, err := workload.DefaultBulkBackup().Generate(); err != nil {
			b.Fatal(err)
		}
		if _, err := workload.DefaultMLEpochs().Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationDockTime sweeps the §V-A dominant overhead: docking.
func BenchmarkAblationDockTime(b *testing.B) {
	times := []units.Seconds{0, 1, 2, 3, 4, 5}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.DockTimeSensitivity(cfg, times)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkAblationAcceleration sweeps the peak-power/trip-time trade-off.
func BenchmarkAblationAcceleration(b *testing.B) {
	accels := []units.MetresPerSecond2{250, 500, 1000, 2000}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AccelerationTradeoff(cfg, accels); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRegenBraking sweeps the §VI 16–70 % regeneration range.
func BenchmarkAblationRegenBraking(b *testing.B) {
	regens := []float64{0, 0.16, 0.3, 0.5, 0.7}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RegenerativeBrakingSavings(cfg, regens); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDensityScaling projects the §II-A SSD-density argument.
func BenchmarkAblationDensityScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := core.DefaultDensityScaling()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatal("bad projection")
		}
	}
}

// BenchmarkMultistopContention runs the §VI multi-stop line under a 4-user
// burst.
func BenchmarkMultistopContention(b *testing.B) {
	stops := []multistop.Stop{
		{Name: "library", Position: 0},
		{Name: "rack-A", Position: 120},
		{Name: "rack-B", Position: 250},
		{Name: "rack-C", Position: 380},
		{Name: "rack-D", Position: 500},
	}
	cfg := DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := multistop.New(cfg, stops)
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			if err := l.Place(track.CartID(c), 0); err != nil {
				b.Fatal(err)
			}
		}
		for c := 0; c < 4; c++ {
			l.Move(track.CartID(c), 1+c%4, func(err error) {
				if err != nil {
					b.Fatal(err)
				}
			})
		}
		if _, err := l.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStabilisationLoop runs the §III-B.2 active-stabilisation control
// simulation (1 s at 10 kHz integration).
func BenchmarkStabilisationLoop(b *testing.B) {
	plant, ctrl, opt := control.DefaultPlant(), control.DefaultController(), control.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := control.Simulate(plant, ctrl, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Settled {
			b.Fatal("loop did not settle")
		}
	}
}

// BenchmarkThermalAnalysis evaluates the §VI heat-sink budget for a cart.
func BenchmarkThermalAnalysis(b *testing.B) {
	c := thermal.CartThermals{Sink: thermal.ConductiveFins, NumSSDs: 32, Ambient: thermal.DefaultAmbient}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := thermal.Analyze(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceReplay replays the §II-D.2 weekly backup trace through the
// event-driven system.
func BenchmarkTraceReplay(b *testing.B) {
	tr, err := workload.DefaultBulkBackup().Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := dhlsys.DefaultOptions()
		opt.NumCarts = 4
		sys, err := dhlsys.New(opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ReplayTrace(tr, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatamapPlacement places and appends datasets across a fleet's
// catalogue (§III-D data mapping).
func BenchmarkDatamapPlacement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := datamap.NewCatalog()
		for j := 0; j < 8; j++ {
			if err := c.AddCart(track.CartID(j), 32, 8*units.TB); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Place("ds", 1.5*units.PB); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Append("ds", 200*units.TB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampusSimulation runs the acceptance-scale tubenet campus: the
// 1,000-cart fleet over the 20-station default campus under the
// campus-partition chaos scenario — the workload scripts/bench.sh campus
// pins in BENCH_campus.json.
func BenchmarkCampusSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := tubenet.New(tubenet.Options{Carts: 1000, TripsPerCart: 2, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		script, err := faults.ScenarioDims(faults.ScenarioCampusPartition, 3, 300, c.Dims())
		if err != nil {
			b.Fatal(err)
		}
		inj, err := faults.NewInjector(c.Engine(), c, script)
		if err != nil {
			b.Fatal(err)
		}
		if err := inj.Arm(); err != nil {
			b.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.TripsCompleted+res.TripsPending != 2000 {
			b.Fatal("trip accounting leaked")
		}
	}
}

// BenchmarkCampusDispatchSteadyState isolates the per-event cost of the
// tubenet dispatch hot loop (depart/arrive/dock/dwell), steady-state, no
// chaos, no epochs — the path the zero-alloc budget governs.
func BenchmarkCampusDispatchSteadyState(b *testing.B) {
	// Each campus instance yields ~400k dispatch events; when one drains,
	// a fresh warmed instance replaces it with the timer stopped.
	warm := func() *sim.Engine {
		c, err := tubenet.New(tubenet.Options{
			Carts: 256, TripsPerCart: 256, Seed: 1, EpochEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Start(); err != nil {
			b.Fatal(err)
		}
		eng := c.Engine()
		for i := 0; i < 1<<14; i++ {
			if !eng.Step() {
				b.Fatal("campus drained during warm-up")
			}
		}
		return eng
	}
	eng := warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.Step() {
			b.StopTimer()
			eng = warm()
			b.StartTimer()
		}
	}
}
