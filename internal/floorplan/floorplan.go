// Package floorplan models the data-centre geometry of Figure 1 and §III-C:
// a grid of aisles and racks over a false floor, a cart library in a
// cold-storage hall, and DHL tracks routed beneath the floor from the
// library to rack endpoints. It turns a physical floor plan into the track
// lengths the analytical model consumes — grounding the paper's 100/500/
// 1000 m evaluation points ("many data centres are already hundreds of
// metres long").
package floorplan

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/units"
)

// Plan is a rectangular data-centre floor plan.
type Plan struct {
	// Aisles and RacksPerAisle define the grid.
	Aisles, RacksPerAisle int
	// RackPitch is the spacing between adjacent racks along an aisle.
	RackPitch units.Metres
	// AislePitch is the spacing between adjacent aisles.
	AislePitch units.Metres
	// LibraryRun is the under-floor distance from the cart library (in its
	// cold-storage hall) to the near corner of the server floor.
	LibraryRun units.Metres
}

// DefaultPlan is a hyperscale hall: 16 aisles of 150 racks at 0.7 m pitch
// (105 m aisles), 3 m aisle pitch, with the library 350 m away — the far
// corner lands near the paper's default 500 m track.
func DefaultPlan() Plan {
	return Plan{
		Aisles:        16,
		RacksPerAisle: 150,
		RackPitch:     0.7,
		AislePitch:    3,
		LibraryRun:    350,
	}
}

// Validate checks the plan.
func (p Plan) Validate() error {
	if p.Aisles < 1 || p.RacksPerAisle < 1 {
		return errors.New("floorplan: need at least one aisle and rack")
	}
	if p.RackPitch <= 0 || p.AislePitch <= 0 || p.LibraryRun < 0 {
		return errors.New("floorplan: pitches must be positive and library run non-negative")
	}
	return nil
}

// AisleLength is the run of one aisle.
func (p Plan) AisleLength() units.Metres {
	return units.Metres(float64(p.RacksPerAisle) * float64(p.RackPitch))
}

// FloorSpan is the across-aisles width of the server floor.
func (p Plan) FloorSpan() units.Metres {
	return units.Metres(float64(p.Aisles) * float64(p.AislePitch))
}

// Contains reports whether the rack coordinate exists.
func (p Plan) Contains(aisle, rack int) bool {
	return aisle >= 0 && aisle < p.Aisles && rack >= 0 && rack < p.RacksPerAisle
}

// ErrNoRack is returned for coordinates outside the plan.
var ErrNoRack = errors.New("floorplan: no such rack")

// TrackLengthTo is the under-floor (Manhattan) track length from the
// library to the given rack: the library run, then across the aisles, then
// along the aisle.
func (p Plan) TrackLengthTo(aisle, rack int) (units.Metres, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !p.Contains(aisle, rack) {
		return 0, fmt.Errorf("%w: aisle %d rack %d", ErrNoRack, aisle, rack)
	}
	across := float64(aisle) * float64(p.AislePitch)
	along := float64(rack) * float64(p.RackPitch)
	return p.LibraryRun + units.Metres(across+along), nil
}

// LongestRun is the track length to the farthest rack.
func (p Plan) LongestRun() (units.Metres, error) {
	return p.TrackLengthTo(p.Aisles-1, p.RacksPerAisle-1)
}

// ConfigFor builds a DHL configuration for a track from the library to the
// rack, clamping the length up to the configuration's minimum realisable
// track (twice the LIM ramp) when the rack is very close.
func (p Plan) ConfigFor(base core.Config, aisle, rack int) (core.Config, error) {
	l, err := p.TrackLengthTo(aisle, rack)
	if err != nil {
		return core.Config{}, err
	}
	min := core.MinimumTrackLength(base)
	if l < min {
		l = min
	}
	cfg := base
	cfg.Length = l
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// SupercomputerRun is the paper's primary deployment (§III-C): "a straight
// DHL connecting an ML supercomputer (spanning one aisle) and the cart
// library" — the track to the far end of the given aisle.
func (p Plan) SupercomputerRun(aisle int) (units.Metres, error) {
	return p.TrackLengthTo(aisle, p.RacksPerAisle-1)
}

// FalseFloorArea is the floor area the DHL network occupies if every aisle
// gets a spur (track width ~0.3 m) — a sanity check that the under-floor
// plant is small.
func (p Plan) FalseFloorArea() float64 {
	const trackWidth = 0.3
	spine := float64(p.LibraryRun) + float64(p.FloorSpan())
	spurs := float64(p.Aisles) * float64(p.AisleLength())
	return trackWidth * (spine + spurs)
}

// RoundTo rounds a track length to the paper's evaluated grid
// (100/500/1000 m), choosing the nearest in log space.
func RoundTo(l units.Metres) units.Metres {
	grid := []float64{100, 500, 1000}
	best := grid[0]
	bestD := math.Inf(1)
	for _, g := range grid {
		d := math.Abs(math.Log(float64(l) / g))
		if d < bestD {
			bestD = d
			best = g
		}
	}
	return units.Metres(best)
}
