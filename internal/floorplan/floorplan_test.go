package floorplan

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/units"
)

func TestValidate(t *testing.T) {
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultPlan()
	bad.Aisles = 0
	if bad.Validate() == nil {
		t.Error("zero aisles must be invalid")
	}
	bad = DefaultPlan()
	bad.RackPitch = 0
	if bad.Validate() == nil {
		t.Error("zero pitch must be invalid")
	}
	bad = DefaultPlan()
	bad.LibraryRun = -1
	if bad.Validate() == nil {
		t.Error("negative library run must be invalid")
	}
}

func TestGeometry(t *testing.T) {
	p := DefaultPlan()
	if got := float64(p.AisleLength()); got != 105 {
		t.Errorf("aisle length = %v, want 105", got)
	}
	if got := float64(p.FloorSpan()); got != 48 {
		t.Errorf("floor span = %v, want 48", got)
	}
	// Near corner: just the library run.
	l, err := p.TrackLengthTo(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(l) != 350 {
		t.Errorf("near corner = %v, want 350", l)
	}
	// Far corner approaches the paper's default 500 m.
	far, err := p.LongestRun()
	if err != nil {
		t.Fatal(err)
	}
	if float64(far) < 480 || float64(far) > 520 {
		t.Errorf("longest run = %v, want ≈500 (the paper's default)", far)
	}
	// §III-C supercomputer deployment spans one aisle.
	sc, err := p.SupercomputerRun(0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sc) != 350+104.3 {
		t.Errorf("supercomputer run = %v", sc)
	}
}

func TestTrackLengthErrors(t *testing.T) {
	p := DefaultPlan()
	if _, err := p.TrackLengthTo(99, 0); !errors.Is(err, ErrNoRack) {
		t.Errorf("err = %v", err)
	}
	if _, err := p.TrackLengthTo(0, -1); !errors.Is(err, ErrNoRack) {
		t.Errorf("err = %v", err)
	}
	bad := Plan{}
	if _, err := bad.TrackLengthTo(0, 0); err == nil {
		t.Error("invalid plan must error")
	}
}

func TestTrackLengthMonotoneProperty(t *testing.T) {
	p := DefaultPlan()
	f := func(a, r uint8) bool {
		aisle := int(a) % (p.Aisles - 1)
		rack := int(r) % (p.RacksPerAisle - 1)
		l1, err1 := p.TrackLengthTo(aisle, rack)
		l2, err2 := p.TrackLengthTo(aisle+1, rack)
		l3, err3 := p.TrackLengthTo(aisle, rack+1)
		return err1 == nil && err2 == nil && err3 == nil && l2 > l1 && l3 > l1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigFor(t *testing.T) {
	p := DefaultPlan()
	cfg, err := p.ConfigFor(core.DefaultConfig(), 15, 149)
	if err != nil {
		t.Fatal(err)
	}
	if float64(cfg.Length) < 480 {
		t.Errorf("config length = %v", cfg.Length)
	}
	l, err := core.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Time <= 0 {
		t.Error("launch must be realisable")
	}
	// A rack closer than the LIM ramps clamps up to the minimum track.
	near := DefaultPlan()
	near.LibraryRun = 0
	cfg2, err := near.ConfigFor(core.DefaultConfig(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Length != core.MinimumTrackLength(core.DefaultConfig()) {
		t.Errorf("clamped length = %v, want %v", cfg2.Length, core.MinimumTrackLength(core.DefaultConfig()))
	}
	if _, err := p.ConfigFor(core.DefaultConfig(), 99, 0); err == nil {
		t.Error("bad rack must error")
	}
}

func TestFalseFloorAreaSmall(t *testing.T) {
	// The whole under-floor DHL plant (spine + a spur per aisle) occupies a
	// tiny fraction of the server floor.
	p := DefaultPlan()
	floor := float64(p.AisleLength()) * float64(p.FloorSpan())
	if area := p.FalseFloorArea(); area > 0.2*floor {
		t.Errorf("track area %v m² exceeds 20%% of the %v m² floor", area, floor)
	}
}

func TestRoundTo(t *testing.T) {
	// Log-space midpoints: √(100·500) ≈ 223.6 and √(500·1000) ≈ 707.1.
	cases := map[float64]float64{
		90: 100, 120: 100, 220: 100, 230: 500, 499: 500, 600: 500, 720: 1000, 2000: 1000,
	}
	for in, want := range cases {
		if got := RoundTo(units.Metres(in)); float64(got) != want {
			t.Errorf("RoundTo(%v) = %v, want %v", in, got, want)
		}
	}
	_ = math.Pi
}
