package controlplane

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dhlsys"
	"repro/internal/storage"
	"repro/internal/track"
	"repro/internal/units"
)

func startServer(t *testing.T, opt dhlsys.Options) (*Server, string) {
	t.Helper()
	sys, err := dhlsys.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestRequestValidation(t *testing.T) {
	cases := []struct {
		req Request
		ok  bool
	}{
		{Request{Op: OpOpen}, true},
		{Request{Op: OpClose, Cart: 1}, true},
		{Request{Op: OpStatus}, true},
		{Request{Op: OpRead, Bytes: 1e9}, true},
		{Request{Op: OpRead}, false},
		{Request{Op: OpWrite, Bytes: -1}, false},
		{Request{Op: "teleport"}, false},
	}
	for _, c := range cases {
		if err := c.req.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.req, err, c.ok)
		}
	}
}

func TestNewServerNilSystem(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil system must be rejected")
	}
}

func TestFullAPICycleOverTCP(t *testing.T) {
	_, addr := startServer(t, dhlsys.DefaultOptions())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	open, err := c.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if !open.OK {
		t.Fatalf("open failed: %s", open.Error)
	}
	// One launch: 8.6 simulated seconds.
	if math.Abs(open.OpSeconds-8.6) > 1e-9 {
		t.Errorf("open took %v sim-s, want 8.6", open.OpSeconds)
	}

	wr, err := c.Write(0, 256*units.TB)
	if err != nil {
		t.Fatal(err)
	}
	if !wr.OK {
		t.Fatalf("write failed: %s", wr.Error)
	}
	rd, err := c.Read(0, 256*units.TB)
	if err != nil {
		t.Fatal(err)
	}
	if !rd.OK {
		t.Fatalf("read failed: %s", rd.Error)
	}
	if rd.OpSeconds <= 0 {
		t.Error("read must take simulated time")
	}

	cl, err := c.CloseCart(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.OK {
		t.Fatalf("close failed: %s", cl.Error)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.OK || st.Stats == nil {
		t.Fatal("status must include stats")
	}
	if st.Stats.Launches != 2 {
		t.Errorf("launches = %d, want 2", st.Stats.Launches)
	}
	if st.Stats.BytesRead != 256e12 || st.Stats.BytesWritten != 256e12 {
		t.Errorf("io counters: %+v", st.Stats)
	}
	if st.SimTime <= 0 {
		t.Error("sim time must advance")
	}
}

func TestAPIErrorsPropagate(t *testing.T) {
	_, addr := startServer(t, dhlsys.DefaultOptions())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Unknown cart.
	resp, err := c.Open(99)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown cart") {
		t.Errorf("resp = %+v", resp)
	}
	// Read while at library.
	resp, err = c.Read(0, units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "not docked") {
		t.Errorf("resp = %+v", resp)
	}
	// Malformed op.
	resp, err = c.Do(Request{Op: "warp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Errorf("resp = %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	opt := dhlsys.DefaultOptions()
	opt.NumCarts = 4
	opt.DockStations = 4
	_, addr := startServer(t, opt)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(cart int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if r, err := c.Open(cart); err != nil || !r.OK {
				errs <- err
				return
			}
			if r, err := c.CloseCart(cart); err != nil || !r.OK {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// All four carts went out and back.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.Launches != 8 {
		t.Errorf("launches = %d, want 8", st.Stats.Launches)
	}
}

func TestMultipleRequestsPerConnection(t *testing.T) {
	_, addr := startServer(t, dhlsys.DefaultOptions())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Status(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestErrorCodesStructured(t *testing.T) {
	_, addr := startServer(t, dhlsys.DefaultOptions())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Open(99)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeUnknownCart {
		t.Errorf("open(99) code = %q, want %q", resp.Code, CodeUnknownCart)
	}
	resp, err = c.Read(0, units.GB)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeNotDocked {
		t.Errorf("read-at-library code = %q, want %q", resp.Code, CodeNotDocked)
	}
	resp, err = c.Do(Request{Op: "warp"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeBadRequest {
		t.Errorf("bad op code = %q, want %q", resp.Code, CodeBadRequest)
	}
	// Successful ops carry no code.
	resp, err = c.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Code != "" {
		t.Errorf("ok response should have empty code, got %+v", resp)
	}
}

func TestCodeForErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{dhlsys.ErrCartFailed, CodeCartFailed},
		{dhlsys.ErrDegradedRead, CodeDegradedRead},
		{dhlsys.ErrLaunchTimeout, CodeLaunchTimeout},
		{track.ErrRailBlocked, CodeRailBlocked},
		{track.ErrStationFailed, CodeStationFailed},
		{storage.ErrOutOfRange, CodeStorage},
		{fmt.Errorf("wrapped: %w", dhlsys.ErrCartBusy), CodeCartBusy},
		{errors.New("mystery"), CodeError},
	}
	for _, c := range cases {
		if got := CodeForError(c.err); got != c.want {
			t.Errorf("CodeForError(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestReadDeadlineDropsIdleConnection(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	opt.ReadTimeout = 50 * time.Millisecond
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Status(); err != nil {
		t.Fatalf("first request should succeed: %v", err)
	}
	// Sit idle past the read deadline; the server must drop us.
	time.Sleep(150 * time.Millisecond)
	if _, err := c.Status(); err == nil {
		t.Error("idle connection should have been dropped by the read deadline")
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	opt.DrainTimeout = 200 * time.Millisecond
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A connected-but-idle client must not wedge Close: the drain window
	// expires and the connection is severed.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not drain within the timeout")
	}
	// New connections are refused after shutdown.
	if c2, err := Dial(addr); err == nil {
		if _, err := c2.Status(); err == nil {
			t.Error("request after shutdown should fail")
		}
		c2.Close()
	}
}

func TestStatusCarriesAvailability(t *testing.T) {
	_, addr := startServer(t, dhlsys.DefaultOptions())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if r, err := c.Open(0); err != nil || !r.OK {
		t.Fatalf("open: %v %+v", err, r)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats == nil {
		t.Fatal("status must include stats")
	}
	if st.Stats.Availability != 1 {
		t.Errorf("availability = %v, want 1 with no faults", st.Stats.Availability)
	}
	if st.Stats.FaultsInjected != 0 || st.Stats.DowntimeS != 0 {
		t.Errorf("fault counters should be zero: %+v", st.Stats)
	}
}
