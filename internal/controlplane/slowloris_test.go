package controlplane

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/dhlsys"
)

// startHardened boots a TCP server with the given option tweaks.
func startHardened(t *testing.T, tweak func(*ServerOptions)) (*Server, string) {
	t.Helper()
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	if tweak != nil {
		tweak(&opt)
	}
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// TestOversizedRequestLineRejected: a peer streaming an endless line is
// answered with a structured CodeBadRequest and dropped — it cannot
// balloon server memory — and the server keeps serving other clients.
func TestOversizedRequestLineRejected(t *testing.T) {
	_, addr := startHardened(t, func(o *ServerOptions) { o.MaxRequestBytes = 256 })

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte(strings.Repeat("x", 4096) + "\n")); err != nil {
		t.Fatal(err)
	}
	_, dec := jsonPipe(raw)
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("want a structured rejection, got transport error: %v", err)
	}
	if resp.OK || resp.Code != CodeBadRequest || !strings.Contains(resp.Error, "exceeds") {
		t.Errorf("oversized line response = %+v", resp)
	}
	// The connection must be severed after the rejection.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := dec.Decode(&resp); err == nil {
		t.Error("connection should be closed after an oversized frame")
	}

	// A well-behaved client on a fresh connection is unaffected.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st, err := c.Status(); err != nil || !st.OK {
		t.Errorf("fresh connection after oversize rejection: %v %+v", err, st)
	}
}

// TestMalformedFrameAnsweredStructurally: garbage JSON gets a
// CodeBadRequest response before the drop, not a silent hangup.
func TestMalformedFrameAnsweredStructurally(t *testing.T) {
	_, addr := startHardened(t, nil)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("{this is not json}\n")); err != nil {
		t.Fatal(err)
	}
	_, dec := jsonPipe(raw)
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("want structured rejection: %v", err)
	}
	if resp.OK || resp.Code != CodeBadRequest {
		t.Errorf("malformed frame response = %+v", resp)
	}
}

// TestPartialFrameIdleTimeout: a slowloris peer that sends half a
// request and stalls is cut off by the read deadline — the deadline
// covers the whole frame, not just the first byte.
func TestPartialFrameIdleTimeout(t *testing.T) {
	_, addr := startHardened(t, func(o *ServerOptions) { o.ReadTimeout = 100 * time.Millisecond })
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Half a request, no newline, then silence.
	if _, err := raw.Write([]byte(`{"op":"sta`)); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 64)
	if _, err := raw.Read(buf); err == nil {
		t.Error("stalled half-frame should have been dropped by the read deadline")
	}
}

// TestDrainSeversStragglersAndCounts: Close's drain deadline forcibly
// severs connections that never finish, and Severed reports how many.
func TestDrainSeversStragglersAndCounts(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	opt.DrainTimeout = 150 * time.Millisecond
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Two clients park without completing an exchange.
	for i := 0; i < 2; i++ {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		if _, err := raw.Write([]byte(`{"op":`)); err != nil {
			t.Fatal(err)
		}
	}
	// Give the accept loop a moment to register both.
	deadline := time.Now().Add(2 * time.Second)
	for {
		srv.connMu.Lock()
		n := len(srv.conns)
		srv.connMu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("connections never registered: %d", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not drain")
	}
	if got := srv.Severed(); got != 2 {
		t.Errorf("Severed() = %d, want 2", got)
	}
}

// TestMaxConnsRefusedStructurally: connections over the cap get a
// CodeServerBusy response with a retry hint, then a clean close.
func TestMaxConnsRefusedStructurally(t *testing.T) {
	_, addr := startHardened(t, func(o *ServerOptions) { o.MaxConns = 1 })

	keeper, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Close()
	if _, err := keeper.Status(); err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_, dec := jsonPipe(raw)
	raw.SetReadDeadline(time.Now().Add(3 * time.Second))
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("over-cap connection should get a busy response: %v", err)
	}
	if resp.OK || resp.Code != CodeServerBusy || resp.RetryAfterS <= 0 {
		t.Errorf("over-cap response = %+v", resp)
	}
	// The kept connection still works.
	if st, err := keeper.Status(); err != nil || !st.OK {
		t.Errorf("kept connection: %v %+v", err, st)
	}
}
