package controlplane

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dhlsys"
	"repro/internal/faults"
	"repro/internal/telemetry"
)

// TestStatusDuringActiveChaos exercises the introspection ops while a
// scripted fault outage is still open: the status response must carry the
// fault counters and the telemetry snapshot, the metrics op must render the
// exposition, and server shutdown must stay bounded by the drain timeout.
func TestStatusDuringActiveChaos(t *testing.T) {
	opt := dhlsys.DefaultOptions()
	opt.Telemetry = telemetry.NewSet()
	// A leak that opens at t=1 s and outlives the whole test: every
	// status query lands inside the outage window.
	opt.Faults = &faults.Script{Faults: []faults.Fault{
		{At: 1, Kind: faults.VacuumLeak, Pressure: 40_000, Duration: 100_000},
	}}
	sys, err := dhlsys.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	sopt := DefaultServerOptions()
	sopt.DrainTimeout = 200 * time.Millisecond
	srv, err := NewServerWithOptions(sys, sopt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Drive the simulation past t=1 so the fault injects; the launch flies
	// degraded under the leak.
	open, err := c.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if !open.OK {
		t.Fatalf("open failed: %s", open.Error)
	}

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.OK || st.Stats == nil {
		t.Fatalf("status failed: %+v", st)
	}
	if st.Stats.FaultsInjected != 1 {
		t.Errorf("faults_injected = %d, want 1", st.Stats.FaultsInjected)
	}
	if st.Stats.DowntimeS <= 0 {
		t.Errorf("downtime = %v, want > 0 (outage still open)", st.Stats.DowntimeS)
	}
	if st.Stats.Availability >= 1 {
		t.Errorf("availability = %v, want < 1 mid-outage", st.Stats.Availability)
	}
	if st.Stats.DegradedLaunches == 0 {
		t.Error("launch under an open leak must be degraded")
	}
	if st.Metrics == nil {
		t.Fatal("status must include the metrics snapshot when telemetry is on")
	}
	var injected, degraded float64
	for _, cp := range st.Metrics.Counters {
		switch cp.Name {
		case "dhl_faults_injected_total":
			injected = cp.Value
		case "dhl_degraded_launches_total":
			degraded = cp.Value
		}
	}
	if injected != 1 || degraded == 0 {
		t.Errorf("metrics counters: injected=%v degraded=%v", injected, degraded)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !m.OK {
		t.Fatalf("metrics op failed: %+v", m)
	}
	if !strings.Contains(m.Text, "dhl_faults_injected_total 1") {
		t.Errorf("exposition missing fault counter:\n%s", m.Text)
	}
	if !strings.Contains(m.Text, "# TYPE dhl_launch_seconds histogram") {
		t.Errorf("exposition missing histogram type line:\n%s", m.Text)
	}

	// Shutdown with the connection still open must stay bounded: the drain
	// severs idle connections after DrainTimeout, not hang on the
	// 100 000 s simulated outage.
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v, want bounded by the %v drain timeout", elapsed, sopt.DrainTimeout)
	}
}

// TestMetricsOpWithoutTelemetry verifies the structured no-telemetry error.
func TestMetricsOpWithoutTelemetry(t *testing.T) {
	_, addr := startServer(t, dhlsys.DefaultOptions())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.OK || m.Code != CodeNoTelemetry {
		t.Errorf("metrics without telemetry: %+v, want code %q", m, CodeNoTelemetry)
	}
	// Status still works, just without the snapshot.
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.OK || st.Metrics != nil {
		t.Errorf("status on an uninstrumented system: %+v", st)
	}
}
