// Package controlplane exposes the DHL software API of §III-D over the
// standard network, as the paper prescribes: "Adopting a DHL in a data
// centre also relies on management software to coordinate SSDs' movement.
// Software controls access through an API that is accessed through the
// standard network."
//
// The wire protocol is newline-delimited JSON over TCP: one request object
// per line, one response object per line, multiple exchanges per
// connection. The server wraps a dhlsys.System; each request drives the
// simulation to completion of the operation and reports the simulated
// timing, so a client sees exactly what a rack's storage-management daemon
// would.
//
// The server is overload-hardened (see DESIGN.md §11): requests pass an
// admission controller (internal/admit) with bounded queues, a token
// bucket, priority classes, and brownout shedding; shed requests are
// answered CodeServerBusy with a retry_after_s hint instead of queueing
// unboundedly, and status/metrics reads degrade to a cached snapshot
// (stale=true) while the simulation is saturated.
package controlplane

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/dhlsys"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Op is a §III-D API command.
type Op string

// The four paper commands plus two introspection ops.
const (
	OpOpen   Op = "open"
	OpClose  Op = "close"
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpStatus Op = "status"
	// OpMetrics returns the deployment's telemetry snapshot rendered as
	// Prometheus text exposition (Response.Text). It fails with
	// CodeNoTelemetry when the wrapped system was built without a
	// telemetry set.
	OpMetrics Op = "metrics"
)

// Request is one client command.
type Request struct {
	Op   Op  `json:"op"`
	Cart int `json:"cart,omitempty"`
	// Bytes for read/write ops.
	Bytes float64 `json:"bytes,omitempty"`
}

// Validate checks the request shape.
func (r Request) Validate() error {
	switch r.Op {
	case OpOpen, OpClose, OpStatus, OpMetrics:
		return nil
	case OpRead, OpWrite:
		if r.Bytes <= 0 {
			return fmt.Errorf("controlplane: %s needs positive bytes, got %v", r.Op, r.Bytes)
		}
		return nil
	default:
		return fmt.Errorf("controlplane: unknown op %q", r.Op)
	}
}

// DecodeRequest parses one newline-delimited request frame. It rejects
// frames that carry trailing data after the JSON object (a desynchronised
// or malicious stream) and never panics on malformed input
// (FuzzDecodeRequest pins that).
func DecodeRequest(frame []byte) (Request, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(frame))
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("controlplane: malformed request: %v", err)
	}
	if rest := bytes.TrimSpace(frame[int(dec.InputOffset()):]); len(rest) > 0 {
		return Request{}, fmt.Errorf("controlplane: trailing data after request object")
	}
	return req, nil
}

// Response is the server's reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is the structured error code (CodeForError) when OK is false.
	Code string `json:"code,omitempty"`
	// RetryAfterS hints, on CodeServerBusy responses, how long a
	// well-behaved client should wait before retrying (wall seconds,
	// derived from the admission controller's backlog estimate).
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
	// Stale marks a status/metrics response served from the cached
	// snapshot because the simulation was saturated; CacheAgeS is that
	// snapshot's age in wall seconds.
	Stale     bool    `json:"stale,omitempty"`
	CacheAgeS float64 `json:"cache_age_s,omitempty"`
	// SimTime is the simulation clock after the operation, seconds.
	SimTime float64 `json:"sim_time"`
	// OpSeconds is the simulated duration of this operation.
	OpSeconds float64 `json:"op_seconds,omitempty"`
	// Stats is included for status requests.
	Stats *StatsJSON `json:"stats,omitempty"`
	// Metrics is the telemetry snapshot, included for status requests when
	// the wrapped system carries a telemetry set.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
	// Text carries the Prometheus exposition for metrics requests.
	Text string `json:"text,omitempty"`
}

// StatsJSON mirrors dhlsys.Stats plus the availability report for the wire.
type StatsJSON struct {
	Launches     int     `json:"launches"`
	DockOps      int     `json:"dock_ops"`
	EnergyJ      float64 `json:"energy_j"`
	BytesRead    float64 `json:"bytes_read"`
	BytesWritten float64 `json:"bytes_written"`
	FailuresSeen int     `json:"failures_seen"`
	Denied       int     `json:"denied"`
	Queued       int     `json:"queued"`
	// Fault-recovery counters (§III-D amelioration).
	DegradedLaunches int     `json:"degraded_launches,omitempty"`
	DegradedReads    int     `json:"degraded_reads,omitempty"`
	DegradedBytes    float64 `json:"degraded_bytes,omitempty"`
	Stalls           int     `json:"stalls,omitempty"`
	StallTimeS       float64 `json:"stall_time_s,omitempty"`
	Reroutes         int     `json:"reroutes,omitempty"`
	Timeouts         int     `json:"timeouts,omitempty"`
	Backoffs         int     `json:"backoffs,omitempty"`
	BackoffWaitS     float64 `json:"backoff_wait_s,omitempty"`
	// Availability summary over the run so far.
	FaultsInjected int     `json:"faults_injected"`
	DowntimeS      float64 `json:"downtime_s"`
	Availability   float64 `json:"availability"`
}

func statsJSON(rep dhlsys.AvailabilityReport) *StatsJSON {
	s := rep.Stats
	return &StatsJSON{
		Launches:         s.Launches,
		DockOps:          s.DockOps,
		EnergyJ:          float64(s.Energy),
		BytesRead:        float64(s.BytesRead),
		BytesWritten:     float64(s.BytesWritten),
		FailuresSeen:     s.FailuresSeen,
		Denied:           s.Denied,
		Queued:           s.Queued,
		DegradedLaunches: s.DegradedLaunches,
		DegradedReads:    s.DegradedReads,
		DegradedBytes:    float64(s.DegradedBytes),
		Stalls:           s.Stalls,
		StallTimeS:       float64(s.StallTime),
		Reroutes:         s.Reroutes,
		Timeouts:         s.Timeouts,
		Backoffs:         s.Backoffs,
		BackoffWaitS:     float64(s.BackoffWait),
		FaultsInjected:   rep.Faults.Total,
		DowntimeS:        float64(rep.Downtime),
		Availability:     rep.Availability,
	}
}

// bytesOf converts the wire size.
func bytesOf(r Request) units.Bytes { return units.Bytes(r.Bytes) }
