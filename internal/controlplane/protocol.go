// Package controlplane exposes the DHL software API of §III-D over the
// standard network, as the paper prescribes: "Adopting a DHL in a data
// centre also relies on management software to coordinate SSDs' movement.
// Software controls access through an API that is accessed through the
// standard network."
//
// The wire protocol is newline-delimited JSON over TCP: one request object
// per line, one response object per line, multiple exchanges per
// connection. The server wraps a dhlsys.System; each request drives the
// simulation to completion of the operation and reports the simulated
// timing, so a client sees exactly what a rack's storage-management daemon
// would.
package controlplane

import (
	"fmt"

	"repro/internal/dhlsys"
	"repro/internal/units"
)

// Op is a §III-D API command.
type Op string

// The four paper commands plus an introspection op.
const (
	OpOpen   Op = "open"
	OpClose  Op = "close"
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpStatus Op = "status"
)

// Request is one client command.
type Request struct {
	Op   Op  `json:"op"`
	Cart int `json:"cart,omitempty"`
	// Bytes for read/write ops.
	Bytes float64 `json:"bytes,omitempty"`
}

// Validate checks the request shape.
func (r Request) Validate() error {
	switch r.Op {
	case OpOpen, OpClose, OpStatus:
		return nil
	case OpRead, OpWrite:
		if r.Bytes <= 0 {
			return fmt.Errorf("controlplane: %s needs positive bytes, got %v", r.Op, r.Bytes)
		}
		return nil
	default:
		return fmt.Errorf("controlplane: unknown op %q", r.Op)
	}
}

// Response is the server's reply.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// SimTime is the simulation clock after the operation, seconds.
	SimTime float64 `json:"sim_time"`
	// OpSeconds is the simulated duration of this operation.
	OpSeconds float64 `json:"op_seconds,omitempty"`
	// Stats is included for status requests.
	Stats *StatsJSON `json:"stats,omitempty"`
}

// StatsJSON mirrors dhlsys.Stats for the wire.
type StatsJSON struct {
	Launches     int     `json:"launches"`
	DockOps      int     `json:"dock_ops"`
	EnergyJ      float64 `json:"energy_j"`
	BytesRead    float64 `json:"bytes_read"`
	BytesWritten float64 `json:"bytes_written"`
	FailuresSeen int     `json:"failures_seen"`
	Denied       int     `json:"denied"`
	Queued       int     `json:"queued"`
}

func statsJSON(s dhlsys.Stats) *StatsJSON {
	return &StatsJSON{
		Launches:     s.Launches,
		DockOps:      s.DockOps,
		EnergyJ:      float64(s.Energy),
		BytesRead:    float64(s.BytesRead),
		BytesWritten: float64(s.BytesWritten),
		FailuresSeen: s.FailuresSeen,
		Denied:       s.Denied,
		Queued:       s.Queued,
	}
}

// bytesOf converts the wire size.
func bytesOf(r Request) units.Bytes { return units.Bytes(r.Bytes) }
