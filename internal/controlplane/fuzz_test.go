package controlplane

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeRequest pins the no-panic contract of the frame decoder: any
// byte string either decodes to a Request that the rest of the pipeline
// (Validate, re-encode) can digest, or fails with a structured error.
// The seed corpus covers the malformed shapes misbehaving peers actually
// send: truncation, trailing garbage, wrong JSON kinds, giant numbers,
// and exotic whitespace.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Well-formed frames for every op.
		`{"op":"open","cart":0}`,
		`{"op":"close","cart":3}`,
		`{"op":"read","cart":1,"bytes":4096}`,
		`{"op":"write","cart":2,"bytes":1e9}`,
		`{"op":"status"}`,
		`{"op":"metrics"}`,
		"{\"op\":\"status\"}\n",
		// Truncated and malformed JSON.
		``,
		`{`,
		`{"op":`,
		`{"op":"sta`,
		`{this is not json}`,
		`}`,
		`null`,
		`true`,
		`42`,
		`"status"`,
		`[{"op":"status"}]`,
		// Trailing data after a complete object (desynchronised stream).
		`{"op":"status"}{"op":"status"}`,
		`{"op":"status"} trailing`,
		`{"op":"status"}]`,
		// Type confusion and numeric edge cases.
		`{"op":1}`,
		`{"op":null}`,
		`{"op":["open"]}`,
		`{"op":"read","bytes":"many"}`,
		`{"op":"read","bytes":-1}`,
		`{"op":"read","bytes":1e309}`,
		`{"op":"write","cart":1e20,"bytes":1}`,
		`{"op":"open","cart":-9223372036854775809}`,
		// Exotic whitespace and unicode.
		"\x00\x01\x02",
		"\xff\xfe{\"op\":\"status\"}",
		`{"op":"status"}`,
		"  \t\r\n  {\"op\":\"status\"}  \r\n",
		`{"op":"` + strings.Repeat("a", 1024) + `"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, err := DecodeRequest(frame)
		if err != nil {
			return // rejected structurally; nothing further to check
		}
		// A decoded request must survive the rest of the pipeline:
		// validation branches on it and the server echoes fields back.
		_ = req.Validate()
		if _, err := json.Marshal(req); err != nil {
			t.Fatalf("decoded request does not re-encode: %v (frame %q)", err, frame)
		}
	})
}
