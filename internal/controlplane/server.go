package controlplane

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/dhlsys"
	"repro/internal/track"
	"repro/internal/units"
)

// Server serves the §III-D API over TCP for one DHL deployment. The
// underlying simulation is single-threaded; a mutex serialises client
// operations (the DHL scheduler itself serialises physical resources).
type Server struct {
	sys *dhlsys.System

	mu sync.Mutex // guards sys and its engine

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer wraps a system. The system must not be driven elsewhere while
// the server owns it.
func NewServer(sys *dhlsys.System) (*Server, error) {
	if sys == nil {
		return nil, errors.New("controlplane: nil system")
	}
	return &Server{sys: sys, closed: make(chan struct{})}, nil
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("controlplane: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	//dhllint:allow goroutine -- network accept loop, not model code; the simulation stays single-threaded behind s.mu
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return // listener failed; nothing more to accept
			}
		}
		s.wg.Add(1)
		//dhllint:allow goroutine -- per-connection I/O handler; every simulation op it issues is serialized by s.mu
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or malformed stream: drop the connection
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle executes one request against the simulation.
func (s *Server) handle(req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{OK: false, Error: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	if req.Op == OpStatus {
		return Response{
			OK:      true,
			SimTime: float64(s.sys.Engine.Now()),
			Stats:   statsJSON(s.sys.Stats()),
		}
	}

	start := s.sys.Engine.Now()
	var opErr error
	id := track.CartID(req.Cart)
	switch req.Op {
	case OpOpen:
		s.sys.Open(id, func(err error) { opErr = err })
	case OpClose:
		s.sys.Close(id, func(err error) { opErr = err })
	case OpRead:
		s.sys.Read(id, bytesOf(req), func(_ units.Seconds, err error) { opErr = err })
	case OpWrite:
		s.sys.Write(id, bytesOf(req), func(_ units.Seconds, err error) { opErr = err })
	}
	if _, err := s.sys.Run(); err != nil {
		return Response{OK: false, Error: err.Error(), SimTime: float64(s.sys.Engine.Now())}
	}
	resp := Response{
		OK:        opErr == nil,
		SimTime:   float64(s.sys.Engine.Now()),
		OpSeconds: float64(s.sys.Engine.Now() - start),
	}
	if opErr != nil {
		resp.Error = opErr.Error()
	}
	return resp
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a minimal API client for the wire protocol.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: dial: %w", err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Do performs one request/response exchange.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("controlplane: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("controlplane: recv: %w", err)
	}
	return resp, nil
}

// Open shuttles a cart to the endpoint.
func (c *Client) Open(cart int) (Response, error) {
	return c.Do(Request{Op: OpOpen, Cart: cart})
}

// CloseCart returns a cart to the library.
func (c *Client) CloseCart(cart int) (Response, error) {
	return c.Do(Request{Op: OpClose, Cart: cart})
}

// Read reads bytes from a docked cart.
func (c *Client) Read(cart int, b units.Bytes) (Response, error) {
	return c.Do(Request{Op: OpRead, Cart: cart, Bytes: float64(b)})
}

// Write writes bytes to a docked cart.
func (c *Client) Write(cart int, b units.Bytes) (Response, error) {
	return c.Do(Request{Op: OpWrite, Cart: cart, Bytes: float64(b)})
}

// Status fetches the deployment counters.
func (c *Client) Status() (Response, error) {
	return c.Do(Request{Op: OpStatus})
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
