package controlplane

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/admit"
	"repro/internal/dhlsys"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// ServerOptions hardens the API server against misbehaving peers and
// overload. All timeouts are wall-clock (the simulation clock is
// unaffected).
type ServerOptions struct {
	// ReadTimeout bounds how long a connection may take to deliver one
	// complete request frame (including sitting idle between requests)
	// before it is dropped; 0 disables the deadline.
	ReadTimeout time.Duration
	// RequestTimeout bounds how long one admitted request may wait for
	// the simulation (which serialises all clients) plus execute; a
	// request that cannot acquire the simulation in time is answered
	// with CodeServerBusy instead of queueing unboundedly. 0 disables.
	RequestTimeout time.Duration
	// DrainTimeout bounds Close's graceful wait for in-flight
	// connections; connections still open when it expires are forcibly
	// closed. 0 waits forever.
	DrainTimeout time.Duration
	// MaxRequestBytes caps one request frame; a longer line is answered
	// CodeBadRequest and the connection dropped, so a peer streaming an
	// endless line cannot balloon server memory. 0 disables the cap.
	MaxRequestBytes int
	// MaxConns caps concurrently served connections; further accepts
	// are answered with a CodeServerBusy response and closed. 0
	// disables the cap.
	MaxConns int
	// Admission configures the overload controller (bounded queue,
	// token bucket, priority classes, brownout — see internal/admit).
	// nil disables admission control, leaving only RequestTimeout.
	Admission *admit.Options
	// Clock supplies wall time for admission control, retry-after
	// hints, and snapshot aging; nil means time.Now. Injected so the
	// overload machinery is testable on a deterministic clock.
	Clock func() time.Time
}

// DefaultServerOptions is the hardened default: 30 s frame deadline,
// 10 s request budget, 5 s shutdown drain, 1 MiB frame cap, and
// admission control with a 64-deep bounded queue.
func DefaultServerOptions() ServerOptions {
	return ServerOptions{
		ReadTimeout:     30 * time.Second,
		RequestTimeout:  10 * time.Second,
		DrainTimeout:    5 * time.Second,
		MaxRequestBytes: 1 << 20,
		Admission:       &admit.Options{MaxInFlight: 1, MaxQueue: 64},
	}
}

// Server serves the §III-D API over TCP for one DHL deployment. The
// underlying simulation is single-threaded; a capacity-1 semaphore
// serialises client operations (the DHL scheduler itself serialises
// physical resources). Overload protection happens before the semaphore:
// the admission controller bounds the waiting room and sheds the excess
// with retry-after hints, and status/metrics reads are served from a
// cached snapshot whenever the simulation is busy, so observability
// never queues behind the workload.
type Server struct {
	sys *dhlsys.System
	opt ServerOptions
	adm *admit.Controller

	sem chan struct{} // capacity 1: holds the simulation

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	connMu sync.Mutex
	// conns tracks live connections so Close can sever stragglers.
	//dhllint:guardedby connMu
	conns map[net.Conn]struct{}
	// nextConnID numbers connections for the per-connection admission
	// cap.
	//dhllint:guardedby connMu
	nextConnID int64
	// severed counts connections forcibly closed by Close's drain
	// deadline.
	//dhllint:guardedby connMu
	severed int

	cacheMu sync.Mutex
	// The snapshot cache: refreshed after every simulation-holding
	// request, served to status/metrics reads while the simulation is
	// saturated (graceful degradation instead of queueing).
	//dhllint:guardedby cacheMu
	cacheStats *StatsJSON
	//dhllint:guardedby cacheMu
	cacheMetrics *telemetry.Snapshot
	//dhllint:guardedby cacheMu
	cacheSimTime float64
	//dhllint:guardedby cacheMu
	cacheAt time.Time
	//dhllint:guardedby cacheMu
	cacheOK bool
}

// NewServer wraps a system with the default hardening options. The system
// must not be driven elsewhere while the server owns it.
func NewServer(sys *dhlsys.System) (*Server, error) {
	return NewServerWithOptions(sys, DefaultServerOptions())
}

// NewServerWithOptions wraps a system with explicit hardening options.
func NewServerWithOptions(sys *dhlsys.System, opt ServerOptions) (*Server, error) {
	if sys == nil {
		return nil, errors.New("controlplane: nil system")
	}
	if opt.ReadTimeout < 0 || opt.RequestTimeout < 0 || opt.DrainTimeout < 0 {
		return nil, errors.New("controlplane: timeouts must be non-negative")
	}
	if opt.MaxRequestBytes < 0 || opt.MaxConns < 0 {
		return nil, errors.New("controlplane: limits must be non-negative")
	}
	s := &Server{
		sys:    sys,
		opt:    opt,
		sem:    make(chan struct{}, 1),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	if opt.Admission != nil {
		s.adm = admit.New(*opt.Admission)
	}
	return s, nil
}

// Admission exposes the admission controller's ledger (zero Stats when
// admission control is disabled).
func (s *Server) Admission() admit.Stats {
	if s.adm == nil {
		return admit.Stats{}
	}
	return s.adm.Snapshot()
}

// Severed reports how many connections Close had to sever after the
// drain deadline expired.
func (s *Server) Severed() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.severed
}

func (s *Server) now() time.Time {
	if s.opt.Clock != nil {
		return s.opt.Clock()
	}
	return time.Now()
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("controlplane: listen: %w", err)
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve starts accepting connections from an already-bound listener and
// returns immediately; Close stops it. Exposed so tests and embedders
// can inject listeners (fault injection, in-memory transports).
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	//dhllint:allow goroutine,goescape -- network accept loop, not model code; the conns map it reaches is lockcheck-verified under connMu
	go s.acceptLoop()
}

// acceptBackoffMax caps the retry backoff for transient Accept errors.
const acceptBackoffMax = time.Second

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient failures (ECONNABORTED, EMFILE, accept
			// timeouts) must not kill the listener forever: back off
			// with a capped exponential delay and try again. Only a
			// permanent listener error exits the loop.
			var te interface{ Temporary() bool }
			if !errors.As(err, &te) || !te.Temporary() {
				return
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			t := time.NewTimer(backoff)
			select {
			case <-s.closed:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		backoff = 0
		id, st := s.track(conn)
		switch st {
		case trackRefused:
			// Over the connection cap: answer structurally so a
			// well-behaved client backs off instead of redialling hot.
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			enc := json.NewEncoder(conn)
			enc.Encode(Response{
				OK:          false,
				Error:       fmt.Sprintf("controlplane: connection limit (%d) reached", s.opt.MaxConns),
				Code:        CodeServerBusy,
				RetryAfterS: 1,
			})
			conn.Close()
			continue
		case trackClosing:
			conn.Close() // shutting down; refuse new work
			continue
		}
		s.wg.Add(1)
		//dhllint:allow goroutine,goescape -- per-connection I/O handler; untrack's conns-map delete is lockcheck-verified under connMu
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(id, conn)
		}()
	}
}

type trackStatus int

const (
	trackOK trackStatus = iota
	trackRefused
	trackClosing
)

// track registers a live connection and assigns its ID; it refuses once
// shutdown has begun or the connection cap is reached.
func (s *Server) track(conn net.Conn) (int64, trackStatus) {
	select {
	case <-s.closed:
		return 0, trackClosing
	default:
	}
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.opt.MaxConns > 0 && len(s.conns) >= s.opt.MaxConns {
		return 0, trackRefused
	}
	s.conns[conn] = struct{}{}
	s.nextConnID++
	return s.nextConnID, trackOK
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, conn)
}

// severConns force-closes every tracked connection so blocked handlers
// unblock. Callers must hold connMu; lockcheck verifies that through the
// call graph rather than a runtime assertion.
func (s *Server) severConns() {
	for c := range s.conns {
		c.Close()
		s.severed++
	}
}

// errFrameTooLarge marks a request frame over MaxRequestBytes.
var errFrameTooLarge = errors.New("controlplane: request frame too large")

// readFrame reads one newline-terminated request frame, bounding its
// size so a peer streaming an endless line cannot balloon server
// memory. A final frame without a trailing newline is accepted at EOF.
func readFrame(br *bufio.Reader, max int) ([]byte, error) {
	var frame []byte
	for {
		frag, err := br.ReadSlice('\n')
		frame = append(frame, frag...)
		if max > 0 && len(frame) > max {
			return nil, errFrameTooLarge
		}
		switch err {
		case nil:
			return frame, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(frame) > 0 {
				return frame, nil
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

func (s *Server) serveConn(connID int64, conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	enc := json.NewEncoder(conn)
	for {
		select {
		case <-s.closed:
			return // drain: finish between requests, never mid-request
		default:
		}
		if s.opt.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.opt.ReadTimeout)); err != nil {
				return
			}
		}
		frame, err := readFrame(br, s.opt.MaxRequestBytes)
		if errors.Is(err, errFrameTooLarge) {
			// Answer structurally, then drop: the rest of the line is
			// still in flight and the stream cannot be resynchronised.
			enc.Encode(Response{
				OK:    false,
				Error: fmt.Sprintf("controlplane: request exceeds %d bytes", s.opt.MaxRequestBytes),
				Code:  CodeBadRequest,
			})
			return
		}
		if err != nil {
			return // EOF, idle timeout, or transport failure
		}
		if len(bytes.TrimSpace(frame)) == 0 {
			continue // tolerate blank keep-alive lines
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			enc.Encode(Response{OK: false, Error: err.Error(), Code: CodeBadRequest})
			return // malformed frame: the stream may be desynchronised
		}
		if err := enc.Encode(s.handle(connID, req)); err != nil {
			return
		}
	}
}

// acquire takes the simulation semaphore, bounded by RequestTimeout.
func (s *Server) acquire() bool {
	if s.opt.RequestTimeout <= 0 {
		s.sem <- struct{}{}
		return true
	}
	t := time.NewTimer(s.opt.RequestTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

func (s *Server) release() { <-s.sem }

// classOf maps an op to its admission priority class.
func classOf(op Op) admit.Class {
	switch op {
	case OpStatus, OpMetrics:
		return admit.ClassControl
	case OpOpen, OpClose:
		return admit.ClassLaunch
	default:
		return admit.ClassIO
	}
}

// busyResponse builds the structured load-shed reply.
func busyResponse(msg string, retryAfter time.Duration) Response {
	return Response{
		OK:          false,
		Error:       "controlplane: " + msg,
		Code:        CodeServerBusy,
		RetryAfterS: retryAfter.Seconds(),
	}
}

// handle executes one request: control reads through the snapshot path,
// everything else through admission and the simulation.
func (s *Server) handle(connID int64, req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{OK: false, Error: err.Error(), Code: CodeBadRequest}
	}
	if req.Op == OpStatus || req.Op == OpMetrics {
		return s.handleControl(req)
	}

	var tk *admit.Ticket
	if s.adm != nil {
		t, out := s.adm.Arrive(classOf(req.Op), connID, s.now())
		if !out.Admitted {
			return busyResponse("overloaded: "+out.Reason.String(), out.RetryAfter)
		}
		tk = t
	}
	if !s.acquire() {
		if tk != nil {
			s.adm.Abandon(tk)
		}
		return busyResponse(
			fmt.Sprintf("simulation busy for %v", s.opt.RequestTimeout),
			s.opt.RequestTimeout)
	}
	if tk != nil {
		s.adm.Started(tk, s.now())
	}
	resp := s.executeSim(req)
	s.refreshCache()
	s.release()
	if tk != nil {
		s.adm.Done(tk, s.now())
	}
	return resp
}

// handleControl answers status/metrics. Fast path: the simulation is
// free, serve fresh and refresh the cache. Saturated path: serve the
// cached snapshot (stale but answerable — graceful degradation). Only a
// cold cache falls back to waiting for the simulation.
func (s *Server) handleControl(req Request) Response {
	select {
	case s.sem <- struct{}{}:
		resp := s.freshControl(req)
		s.refreshCache()
		s.release()
		return resp
	default:
	}
	if resp, ok := s.cachedControl(req); ok {
		return resp
	}
	if !s.acquire() {
		return busyResponse(
			fmt.Sprintf("simulation busy for %v and no snapshot cached yet", s.opt.RequestTimeout),
			s.opt.RequestTimeout)
	}
	resp := s.freshControl(req)
	s.refreshCache()
	s.release()
	return resp
}

// freshControl builds a status/metrics response from the live
// simulation. Callers hold the simulation semaphore.
func (s *Server) freshControl(req Request) Response {
	if req.Op == OpMetrics {
		if s.sys.Telemetry() == nil {
			return Response{
				OK:      false,
				Error:   "controlplane: system has no telemetry set",
				Code:    CodeNoTelemetry,
				SimTime: float64(s.sys.Engine.Now()),
			}
		}
		return Response{
			OK:      true,
			SimTime: float64(s.sys.Engine.Now()),
			Text:    telemetry.PrometheusText(s.sys.MetricsSnapshot()),
		}
	}
	resp := Response{
		OK:      true,
		SimTime: float64(s.sys.Engine.Now()),
		Stats:   statsJSON(s.sys.Report()),
	}
	if s.sys.Telemetry() != nil {
		snap := s.sys.MetricsSnapshot()
		resp.Metrics = &snap
	}
	return resp
}

// refreshCache publishes the snapshot served to control reads during
// saturation. Callers hold the simulation semaphore.
func (s *Server) refreshCache() {
	st := statsJSON(s.sys.Report())
	var snap *telemetry.Snapshot
	if s.sys.Telemetry() != nil {
		m := s.sys.MetricsSnapshot()
		snap = &m
	}
	simT := float64(s.sys.Engine.Now())
	now := s.now()
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	s.cacheStats = st
	s.cacheMetrics = snap
	s.cacheSimTime = simT
	s.cacheAt = now
	s.cacheOK = true
}

// cachedControl serves a control read from the snapshot cache. The
// cached values are replaced wholesale by refreshCache and never mutated
// in place, so handing out shallow copies is safe.
func (s *Server) cachedControl(req Request) (Response, bool) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if !s.cacheOK {
		return Response{}, false
	}
	age := s.now().Sub(s.cacheAt).Seconds()
	if age < 0 {
		age = 0
	}
	if req.Op == OpMetrics {
		if s.cacheMetrics == nil {
			return Response{
				OK:      false,
				Error:   "controlplane: system has no telemetry set",
				Code:    CodeNoTelemetry,
				SimTime: s.cacheSimTime,
			}, true
		}
		return Response{
			OK:        true,
			SimTime:   s.cacheSimTime,
			Text:      telemetry.PrometheusText(*s.cacheMetrics),
			Stale:     true,
			CacheAgeS: age,
		}, true
	}
	st := *s.cacheStats
	resp := Response{
		OK:        true,
		SimTime:   s.cacheSimTime,
		Stats:     &st,
		Stale:     true,
		CacheAgeS: age,
	}
	if s.cacheMetrics != nil {
		m := *s.cacheMetrics
		resp.Metrics = &m
	}
	return resp, true
}

// executeSim runs one simulation op. Callers hold the simulation
// semaphore.
func (s *Server) executeSim(req Request) Response {
	start := s.sys.Engine.Now()
	var opErr error
	id := track.CartID(req.Cart)
	switch req.Op {
	case OpOpen:
		s.sys.Open(id, func(err error) { opErr = err })
	case OpClose:
		s.sys.Close(id, func(err error) { opErr = err })
	case OpRead:
		s.sys.Read(id, bytesOf(req), func(_ units.Seconds, err error) { opErr = err })
	case OpWrite:
		s.sys.Write(id, bytesOf(req), func(_ units.Seconds, err error) { opErr = err })
	}
	if _, err := s.sys.Run(); err != nil {
		return Response{OK: false, Error: err.Error(), Code: CodeInternal, SimTime: float64(s.sys.Engine.Now())}
	}
	resp := Response{
		OK:        opErr == nil,
		SimTime:   float64(s.sys.Engine.Now()),
		OpSeconds: float64(s.sys.Engine.Now() - start),
	}
	if opErr != nil {
		resp.Error = opErr.Error()
		resp.Code = CodeForError(opErr)
	}
	return resp
}

// Close stops the listener and drains in-flight requests: connections get
// DrainTimeout to finish their current exchange, then are forcibly closed.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	done := make(chan struct{})
	//dhllint:allow goroutine -- shutdown watchdog, not model code
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if s.opt.DrainTimeout > 0 {
		t := time.NewTimer(s.opt.DrainTimeout)
		defer t.Stop()
		select {
		case <-done:
			return err
		case <-t.C:
			// Drain expired: sever the stragglers so their handlers
			// unblock, then wait for the bookkeeping to finish.
			s.connMu.Lock()
			s.severConns()
			s.connMu.Unlock()
		}
	}
	<-done
	return err
}

// Error codes carried in Response.Code, derived from the fault taxonomy and
// API error set so clients can branch without parsing messages.
const (
	// CodeBadRequest: the request failed validation, was malformed, or
	// exceeded the frame cap.
	CodeBadRequest = "bad-request"
	// CodeServerBusy: the request was shed by admission control or could
	// not acquire the simulation in time; retry_after_s carries the
	// backoff hint.
	CodeServerBusy = "server-busy"
	// CodeInternal: the simulation engine itself failed.
	CodeInternal = "internal"
	// CodeUnknownCart, CodeCartBusy, CodeNotAtLibrary, CodeNotDocked: API
	// state errors.
	CodeUnknownCart  = "unknown-cart"
	CodeCartBusy     = "cart-busy"
	CodeNotAtLibrary = "not-at-library"
	CodeNotDocked    = "not-docked"
	// CodeCartFailed: SSD failure consumed the array (ssd-failure kind).
	CodeCartFailed = "cart-failed"
	// CodeDegradedRead: the read was served from surviving stripes only.
	CodeDegradedRead = "degraded-read"
	// CodeLaunchTimeout: a launch exceeded the recovery policy's budget.
	CodeLaunchTimeout = "launch-timeout"
	// CodeRailBlocked: a cart-stall fault blocks the rail.
	CodeRailBlocked = "rail-blocked"
	// CodeStationFailed: a dock-failure fault holds the station.
	CodeStationFailed = "station-failed"
	// CodeStorage: a storage-layer bounds error.
	CodeStorage = "storage"
	// CodeNoTelemetry: a metrics request against a system built without a
	// telemetry set.
	CodeNoTelemetry = "no-telemetry"
	// CodeError: unclassified failure.
	CodeError = "error"
)

// CodeForError maps an API error chain to its structured code.
func CodeForError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, dhlsys.ErrUnknownCart):
		return CodeUnknownCart
	case errors.Is(err, dhlsys.ErrCartBusy):
		return CodeCartBusy
	case errors.Is(err, dhlsys.ErrNotAtLibrary):
		return CodeNotAtLibrary
	case errors.Is(err, dhlsys.ErrNotDocked):
		return CodeNotDocked
	case errors.Is(err, dhlsys.ErrCartFailed):
		return CodeCartFailed
	case errors.Is(err, dhlsys.ErrDegradedRead):
		return CodeDegradedRead
	case errors.Is(err, dhlsys.ErrLaunchTimeout):
		return CodeLaunchTimeout
	case errors.Is(err, track.ErrRailBlocked):
		return CodeRailBlocked
	case errors.Is(err, track.ErrStationFailed):
		return CodeStationFailed
	case errors.Is(err, storage.ErrOutOfRange), errors.Is(err, storage.ErrOutOfSpace),
		errors.Is(err, storage.ErrNegativeLength), errors.Is(err, storage.ErrDegraded):
		return CodeStorage
	default:
		return CodeError
	}
}

// Client is a minimal API client for the wire protocol. For deadline
// propagation, retries, and retry budgets, use internal/cpclient.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: dial: %w", err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Do performs one request/response exchange.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("controlplane: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("controlplane: recv: %w", err)
	}
	return resp, nil
}

// Open shuttles a cart to the endpoint.
func (c *Client) Open(cart int) (Response, error) {
	return c.Do(Request{Op: OpOpen, Cart: cart})
}

// CloseCart returns a cart to the library.
func (c *Client) CloseCart(cart int) (Response, error) {
	return c.Do(Request{Op: OpClose, Cart: cart})
}

// Read reads bytes from a docked cart.
func (c *Client) Read(cart int, b units.Bytes) (Response, error) {
	return c.Do(Request{Op: OpRead, Cart: cart, Bytes: float64(b)})
}

// Write writes bytes to a docked cart.
func (c *Client) Write(cart int, b units.Bytes) (Response, error) {
	return c.Do(Request{Op: OpWrite, Cart: cart, Bytes: float64(b)})
}

// Status fetches the deployment counters.
func (c *Client) Status() (Response, error) {
	return c.Do(Request{Op: OpStatus})
}

// Metrics fetches the Prometheus text exposition of the deployment's
// telemetry registry.
func (c *Client) Metrics() (Response, error) {
	return c.Do(Request{Op: OpMetrics})
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
