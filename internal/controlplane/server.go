package controlplane

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/dhlsys"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// ServerOptions hardens the API server against misbehaving peers. All
// timeouts are wall-clock (the simulation clock is unaffected).
type ServerOptions struct {
	// ReadTimeout bounds how long a connection may sit idle between
	// requests before it is dropped; 0 disables the deadline.
	ReadTimeout time.Duration
	// RequestTimeout bounds how long one request may wait for the
	// simulation (which serialises all clients) plus execute; a request
	// that cannot acquire the simulation in time is answered with
	// CodeServerBusy instead of queueing unboundedly. 0 disables.
	RequestTimeout time.Duration
	// DrainTimeout bounds Close's graceful wait for in-flight
	// connections; connections still open when it expires are forcibly
	// closed. 0 waits forever.
	DrainTimeout time.Duration
}

// DefaultServerOptions is the hardened default: 30 s idle read deadline,
// 10 s request budget, 5 s shutdown drain.
func DefaultServerOptions() ServerOptions {
	return ServerOptions{
		ReadTimeout:    30 * time.Second,
		RequestTimeout: 10 * time.Second,
		DrainTimeout:   5 * time.Second,
	}
}

// Server serves the §III-D API over TCP for one DHL deployment. The
// underlying simulation is single-threaded; a capacity-1 semaphore
// serialises client operations (the DHL scheduler itself serialises
// physical resources) and lets waiting requests time out.
type Server struct {
	sys *dhlsys.System
	opt ServerOptions

	sem chan struct{} // capacity 1: holds the simulation

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	connMu sync.Mutex
	// conns tracks live connections so Close can sever stragglers.
	//dhllint:guardedby connMu
	conns map[net.Conn]struct{}
}

// NewServer wraps a system with the default hardening options. The system
// must not be driven elsewhere while the server owns it.
func NewServer(sys *dhlsys.System) (*Server, error) {
	return NewServerWithOptions(sys, DefaultServerOptions())
}

// NewServerWithOptions wraps a system with explicit hardening options.
func NewServerWithOptions(sys *dhlsys.System, opt ServerOptions) (*Server, error) {
	if sys == nil {
		return nil, errors.New("controlplane: nil system")
	}
	if opt.ReadTimeout < 0 || opt.RequestTimeout < 0 || opt.DrainTimeout < 0 {
		return nil, errors.New("controlplane: timeouts must be non-negative")
	}
	return &Server{
		sys:    sys,
		opt:    opt,
		sem:    make(chan struct{}, 1),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("controlplane: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	//dhllint:allow goroutine,goescape -- network accept loop, not model code; the conns map it reaches is lockcheck-verified under connMu
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				return // listener failed; nothing more to accept
			}
		}
		if !s.track(conn) {
			conn.Close() // shutting down; refuse new work
			continue
		}
		s.wg.Add(1)
		//dhllint:allow goroutine,goescape -- per-connection I/O handler; untrack's conns-map delete is lockcheck-verified under connMu
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track registers a live connection; it refuses (returns false) once
// shutdown has begun.
func (s *Server) track(conn net.Conn) bool {
	select {
	case <-s.closed:
		return false
	default:
	}
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	delete(s.conns, conn)
}

// severConns force-closes every tracked connection so blocked handlers
// unblock. Callers must hold connMu; lockcheck verifies that through the
// call graph rather than a runtime assertion.
func (s *Server) severConns() {
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		select {
		case <-s.closed:
			return // drain: finish between requests, never mid-request
		default:
		}
		if s.opt.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.opt.ReadTimeout)); err != nil {
				return
			}
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, idle timeout, or malformed stream: drop the connection
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// acquire takes the simulation semaphore, bounded by RequestTimeout.
func (s *Server) acquire() bool {
	if s.opt.RequestTimeout <= 0 {
		s.sem <- struct{}{}
		return true
	}
	t := time.NewTimer(s.opt.RequestTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

func (s *Server) release() { <-s.sem }

// handle executes one request against the simulation.
func (s *Server) handle(req Request) Response {
	if err := req.Validate(); err != nil {
		return Response{OK: false, Error: err.Error(), Code: CodeBadRequest}
	}
	if !s.acquire() {
		return Response{
			OK:    false,
			Error: fmt.Sprintf("controlplane: simulation busy for %v", s.opt.RequestTimeout),
			Code:  CodeServerBusy,
		}
	}
	defer s.release()

	if req.Op == OpStatus {
		resp := Response{
			OK:      true,
			SimTime: float64(s.sys.Engine.Now()),
			Stats:   statsJSON(s.sys.Report()),
		}
		if s.sys.Telemetry() != nil {
			snap := s.sys.MetricsSnapshot()
			resp.Metrics = &snap
		}
		return resp
	}

	if req.Op == OpMetrics {
		if s.sys.Telemetry() == nil {
			return Response{
				OK:      false,
				Error:   "controlplane: system has no telemetry set",
				Code:    CodeNoTelemetry,
				SimTime: float64(s.sys.Engine.Now()),
			}
		}
		return Response{
			OK:      true,
			SimTime: float64(s.sys.Engine.Now()),
			Text:    telemetry.PrometheusText(s.sys.MetricsSnapshot()),
		}
	}

	start := s.sys.Engine.Now()
	var opErr error
	id := track.CartID(req.Cart)
	switch req.Op {
	case OpOpen:
		s.sys.Open(id, func(err error) { opErr = err })
	case OpClose:
		s.sys.Close(id, func(err error) { opErr = err })
	case OpRead:
		s.sys.Read(id, bytesOf(req), func(_ units.Seconds, err error) { opErr = err })
	case OpWrite:
		s.sys.Write(id, bytesOf(req), func(_ units.Seconds, err error) { opErr = err })
	}
	if _, err := s.sys.Run(); err != nil {
		return Response{OK: false, Error: err.Error(), Code: CodeInternal, SimTime: float64(s.sys.Engine.Now())}
	}
	resp := Response{
		OK:        opErr == nil,
		SimTime:   float64(s.sys.Engine.Now()),
		OpSeconds: float64(s.sys.Engine.Now() - start),
	}
	if opErr != nil {
		resp.Error = opErr.Error()
		resp.Code = CodeForError(opErr)
	}
	return resp
}

// Close stops the listener and drains in-flight requests: connections get
// DrainTimeout to finish their current exchange, then are forcibly closed.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	done := make(chan struct{})
	//dhllint:allow goroutine -- shutdown watchdog, not model code
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if s.opt.DrainTimeout > 0 {
		t := time.NewTimer(s.opt.DrainTimeout)
		defer t.Stop()
		select {
		case <-done:
			return err
		case <-t.C:
			// Drain expired: sever the stragglers so their handlers
			// unblock, then wait for the bookkeeping to finish.
			s.connMu.Lock()
			s.severConns()
			s.connMu.Unlock()
		}
	}
	<-done
	return err
}

// Error codes carried in Response.Code, derived from the fault taxonomy and
// API error set so clients can branch without parsing messages.
const (
	// CodeBadRequest: the request failed validation.
	CodeBadRequest = "bad-request"
	// CodeServerBusy: the simulation could not be acquired in time.
	CodeServerBusy = "server-busy"
	// CodeInternal: the simulation engine itself failed.
	CodeInternal = "internal"
	// CodeUnknownCart, CodeCartBusy, CodeNotAtLibrary, CodeNotDocked: API
	// state errors.
	CodeUnknownCart  = "unknown-cart"
	CodeCartBusy     = "cart-busy"
	CodeNotAtLibrary = "not-at-library"
	CodeNotDocked    = "not-docked"
	// CodeCartFailed: SSD failure consumed the array (ssd-failure kind).
	CodeCartFailed = "cart-failed"
	// CodeDegradedRead: the read was served from surviving stripes only.
	CodeDegradedRead = "degraded-read"
	// CodeLaunchTimeout: a launch exceeded the recovery policy's budget.
	CodeLaunchTimeout = "launch-timeout"
	// CodeRailBlocked: a cart-stall fault blocks the rail.
	CodeRailBlocked = "rail-blocked"
	// CodeStationFailed: a dock-failure fault holds the station.
	CodeStationFailed = "station-failed"
	// CodeStorage: a storage-layer bounds error.
	CodeStorage = "storage"
	// CodeNoTelemetry: a metrics request against a system built without a
	// telemetry set.
	CodeNoTelemetry = "no-telemetry"
	// CodeError: unclassified failure.
	CodeError = "error"
)

// CodeForError maps an API error chain to its structured code.
func CodeForError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, dhlsys.ErrUnknownCart):
		return CodeUnknownCart
	case errors.Is(err, dhlsys.ErrCartBusy):
		return CodeCartBusy
	case errors.Is(err, dhlsys.ErrNotAtLibrary):
		return CodeNotAtLibrary
	case errors.Is(err, dhlsys.ErrNotDocked):
		return CodeNotDocked
	case errors.Is(err, dhlsys.ErrCartFailed):
		return CodeCartFailed
	case errors.Is(err, dhlsys.ErrDegradedRead):
		return CodeDegradedRead
	case errors.Is(err, dhlsys.ErrLaunchTimeout):
		return CodeLaunchTimeout
	case errors.Is(err, track.ErrRailBlocked):
		return CodeRailBlocked
	case errors.Is(err, track.ErrStationFailed):
		return CodeStationFailed
	case errors.Is(err, storage.ErrOutOfRange), errors.Is(err, storage.ErrOutOfSpace),
		errors.Is(err, storage.ErrNegativeLength), errors.Is(err, storage.ErrDegraded):
		return CodeStorage
	default:
		return CodeError
	}
}

// Client is a minimal API client for the wire protocol.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: dial: %w", err)
	}
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}, nil
}

// Do performs one request/response exchange.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("controlplane: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("controlplane: recv: %w", err)
	}
	return resp, nil
}

// Open shuttles a cart to the endpoint.
func (c *Client) Open(cart int) (Response, error) {
	return c.Do(Request{Op: OpOpen, Cart: cart})
}

// CloseCart returns a cart to the library.
func (c *Client) CloseCart(cart int) (Response, error) {
	return c.Do(Request{Op: OpClose, Cart: cart})
}

// Read reads bytes from a docked cart.
func (c *Client) Read(cart int, b units.Bytes) (Response, error) {
	return c.Do(Request{Op: OpRead, Cart: cart, Bytes: float64(b)})
}

// Write writes bytes to a docked cart.
func (c *Client) Write(cart int, b units.Bytes) (Response, error) {
	return c.Do(Request{Op: OpWrite, Cart: cart, Bytes: float64(b)})
}

// Status fetches the deployment counters.
func (c *Client) Status() (Response, error) {
	return c.Do(Request{Op: OpStatus})
}

// Metrics fetches the Prometheus text exposition of the deployment's
// telemetry registry.
func (c *Client) Metrics() (Response, error) {
	return c.Do(Request{Op: OpMetrics})
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
