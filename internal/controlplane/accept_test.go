package controlplane

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/dhlsys"
)

// jsonPipe wraps a raw connection in the wire codec.
func jsonPipe(c net.Conn) (*json.Encoder, *json.Decoder) {
	return json.NewEncoder(c), json.NewDecoder(bufio.NewReader(c))
}

// tempErr is a transient net.Error (ECONNABORTED, EMFILE, ...).
type tempErr struct{}

func (tempErr) Error() string   { return "fake: transient accept failure" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

// fakeListener scripts Accept behaviour: a run of errors, then real
// connections handed in through Inject.
type fakeListener struct {
	mu     sync.Mutex
	errs   []error
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newFakeListener(errs ...error) *fakeListener {
	return &fakeListener{
		errs:   errs,
		conns:  make(chan net.Conn, 8),
		closed: make(chan struct{}),
	}
}

func (l *fakeListener) nextErr() (error, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.errs) == 0 {
		return nil, false
	}
	err := l.errs[0]
	l.errs = l.errs[1:]
	return err, true
}

func (l *fakeListener) Accept() (net.Conn, error) {
	if err, ok := l.nextErr(); ok {
		return nil, err
	}
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *fakeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *fakeListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestAcceptLoopSurvivesTransientErrors is the regression for the
// listener dying on the first transient Accept error: after a burst of
// temporary failures the loop must still accept and serve connections.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	opt.ReadTimeout = 2 * time.Second
	opt.DrainTimeout = 100 * time.Millisecond
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	ln := newFakeListener(tempErr{}, tempErr{}, tempErr{})
	srv.Serve(ln)
	defer srv.Close()

	client, server := net.Pipe()
	defer client.Close()
	ln.conns <- server

	// The loop burned through three transient errors with backoff; the
	// piped connection must still get a real response.
	done := make(chan error, 1)
	go func() {
		enc, dec := jsonPipe(client)
		if err := enc.Encode(Request{Op: OpStatus}); err != nil {
			done <- err
			return
		}
		var resp Response
		if err := dec.Decode(&resp); err != nil {
			done <- err
			return
		}
		if !resp.OK {
			done <- errors.New("status over pipe failed: " + resp.Error)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("connection after transient accept errors: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop never served the connection (did a transient error kill it?)")
	}
}

// TestAcceptLoopExitsOnPermanentError pins the other side of the
// contract: a non-temporary listener failure ends the loop (no hot spin)
// and Close still drains cleanly.
func TestAcceptLoopExitsOnPermanentError(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	opt.DrainTimeout = 100 * time.Millisecond
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	ln := newFakeListener(errors.New("fake: permanent listener failure"))
	srv.Serve(ln)

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close wedged after permanent accept error")
	}
}
