package controlplane

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/dhlsys"
	"repro/internal/telemetry"
)

// vclock is a hand-cranked clock for deterministic admission tests.
type vclock struct {
	mu  sync.Mutex
	now time.Time
}

func newVclock() *vclock { return &vclock{now: time.Unix(0, 0)} }

func (v *vclock) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

func (v *vclock) Advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

func newOverloadServer(t *testing.T, opt ServerOptions) *Server {
	t.Helper()
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestOverloadShedsWithRetryAfter drives the handler directly: with the
// simulation held and the waiting room full, further requests are shed
// with CodeServerBusy plus a positive retry hint — launches first
// (brownout), then everything (queue full) — while status reads keep
// answering from the cached snapshot.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	opt := DefaultServerOptions()
	opt.RequestTimeout = 300 * time.Millisecond
	opt.Admission = &admit.Options{MaxInFlight: 1, MaxQueue: 2, BrownoutFrac: 0.5}
	srv := newOverloadServer(t, opt)

	// Prime the snapshot cache, then saturate the simulation.
	if resp := srv.handle(1, Request{Op: OpStatus}); !resp.OK || resp.Stale {
		t.Fatalf("priming status = %+v", resp)
	}
	srv.sem <- struct{}{} // hold the simulation like a long-running op

	// Two handlers occupy the executor slot and the first queue slot.
	var wg sync.WaitGroup
	results := make([]Response, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = srv.handle(int64(10+i), Request{Op: OpWrite, Cart: 0, Bytes: 1e9})
		}(i)
	}
	waitFor(t, func() bool {
		s := srv.adm.Snapshot()
		return s.InFlight+s.QueueDepth == 2
	})

	// Queue is at the brownout threshold: launches shed first.
	if resp := srv.handle(20, Request{Op: OpOpen, Cart: 0}); resp.Code != CodeServerBusy {
		t.Errorf("launch during brownout = %+v", resp)
	} else {
		if !strings.Contains(resp.Error, "brownout") {
			t.Errorf("want brownout reason, got %q", resp.Error)
		}
		if resp.RetryAfterS <= 0 {
			t.Errorf("shed response needs retry_after_s, got %v", resp.RetryAfterS)
		}
	}
	// IO still queues (slot 2 of 2)...
	wg.Add(1)
	var third Response
	go func() {
		defer wg.Done()
		third = srv.handle(21, Request{Op: OpRead, Cart: 0, Bytes: 1e9})
	}()
	waitFor(t, func() bool { return srv.adm.Snapshot().QueueDepth == 2 })
	// ...and the next IO request finds the room full.
	if resp := srv.handle(22, Request{Op: OpWrite, Cart: 0, Bytes: 1e9}); resp.Code != CodeServerBusy {
		t.Errorf("IO past queue cap = %+v", resp)
	} else if !strings.Contains(resp.Error, "queue-full") {
		t.Errorf("want queue-full reason, got %q", resp.Error)
	}

	// Status and metrics stay answerable from the cached snapshot.
	if resp := srv.handle(30, Request{Op: OpStatus}); !resp.OK || !resp.Stale {
		t.Errorf("status during saturation = %+v", resp)
	} else if resp.Stats == nil {
		t.Error("stale status must still carry stats")
	}

	// The parked handlers give up after RequestTimeout with busy + hint.
	wg.Wait()
	for i, r := range results {
		if r.Code != CodeServerBusy || r.RetryAfterS <= 0 {
			t.Errorf("parked handler %d = %+v", i, r)
		}
	}
	if third.Code != CodeServerBusy {
		t.Errorf("queued third handler = %+v", third)
	}
	<-srv.sem // release

	// Recovery: with the simulation free again, requests flow.
	if resp := srv.handle(40, Request{Op: OpOpen, Cart: 0}); !resp.OK {
		t.Errorf("post-overload open = %+v", resp)
	}
	st := srv.Admission()
	io := st.Classes[int(admit.ClassIO)]
	launch := st.Classes[int(admit.ClassLaunch)]
	if io.QueueFull == 0 || launch.Brownout == 0 {
		t.Errorf("admission ledger missing sheds: io=%+v launch=%+v", io, launch)
	}
	if io.Abandoned != 3 {
		t.Errorf("abandoned = %d, want 3 (two executor waiters + one queued)", io.Abandoned)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRateLimitDeterministicOnVirtualClock pins the token bucket to an
// injected clock: same arrival times, same decisions, and the
// retry-after hint prices the token shortfall.
func TestRateLimitDeterministicOnVirtualClock(t *testing.T) {
	run := func() []string {
		clk := newVclock()
		opt := DefaultServerOptions()
		opt.Clock = clk.Now
		opt.Admission = &admit.Options{MaxInFlight: 4, MaxQueue: 4, Rate: 1, Burst: 1}
		srv := newOverloadServer(t, opt)
		var codes []string
		for i := 0; i < 6; i++ {
			resp := srv.handle(1, Request{Op: OpWrite, Cart: 0, Bytes: 1e9})
			codes = append(codes, resp.Code)
			clk.Advance(400 * time.Millisecond)
		}
		return codes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic admission at %d: %v vs %v", i, a, b)
		}
	}
	// Burst 1 at t=0, then one token every second against 2.5 req/s
	// offered: the bucket must shed some and admit some.
	var shed, admitted int
	for _, c := range a {
		if c == CodeServerBusy {
			shed++
		} else {
			admitted++
		}
	}
	if shed == 0 || admitted < 2 {
		t.Errorf("want a mix of sheds and admits, got %v", a)
	}
}

// TestControlBypassesRateLimit: an empty token bucket must not take
// status/metrics down with it.
func TestControlBypassesRateLimit(t *testing.T) {
	opt := DefaultServerOptions()
	opt.Admission = &admit.Options{MaxInFlight: 4, MaxQueue: 4, Rate: 0.001, Burst: 1}
	srv := newOverloadServer(t, opt)
	if resp := srv.handle(1, Request{Op: OpWrite, Cart: 0, Bytes: 1e9}); resp.Code == CodeServerBusy {
		t.Fatalf("first write should consume the only token, got %+v", resp)
	}
	if resp := srv.handle(1, Request{Op: OpWrite, Cart: 0, Bytes: 1e9}); resp.Code != CodeServerBusy {
		t.Fatalf("second write should be rate-limited, got %+v", resp)
	}
	if resp := srv.handle(1, Request{Op: OpStatus}); !resp.OK {
		t.Errorf("status must bypass the bucket: %+v", resp)
	}
	if resp := srv.handle(1, Request{Op: OpMetrics}); resp.Code == CodeServerBusy {
		t.Errorf("metrics must bypass the bucket: %+v", resp)
	}
}

// TestStaleMetricsServedDuringSaturation: the metrics op degrades to the
// cached Prometheus exposition instead of queueing behind the sim.
func TestStaleMetricsServedDuringSaturation(t *testing.T) {
	sysOpt := dhlsys.DefaultOptions()
	sysOpt.Telemetry = telemetry.NewSet()
	sys, err := dhlsys.New(sysOpt)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultServerOptions()
	opt.RequestTimeout = 100 * time.Millisecond
	srv, err := NewServerWithOptions(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resp := srv.handle(1, Request{Op: OpMetrics}); !resp.OK || resp.Stale {
		t.Fatalf("fresh metrics = %+v", resp)
	}
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	resp := srv.handle(1, Request{Op: OpMetrics})
	if !resp.OK || !resp.Stale || resp.Text == "" {
		t.Errorf("saturated metrics = %+v", resp)
	}
	if resp := srv.handle(1, Request{Op: OpStatus}); !resp.OK || !resp.Stale {
		t.Errorf("saturated status = %+v", resp)
	}
}

// TestColdCacheFallsBackToWaiting: before any snapshot exists, a control
// read during saturation waits (bounded) rather than fabricating data.
func TestColdCacheFallsBackToWaiting(t *testing.T) {
	opt := DefaultServerOptions()
	opt.RequestTimeout = 80 * time.Millisecond
	srv := newOverloadServer(t, opt)
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()
	resp := srv.handle(1, Request{Op: OpStatus})
	if resp.OK || resp.Code != CodeServerBusy {
		t.Errorf("cold-cache saturated status = %+v", resp)
	}
}
