// Package lint is the repository's domain-specific static-analysis engine
// (`dhllint`). It loads every package in the module with go/parser + go/types
// — pure stdlib, no external analysis frameworks — and runs a suite of
// analyzers that enforce the invariants the reproduction's byte-identity
// guarantees silently depend on:
//
//   - determinism: no wall clock, global-source randomness, or environment
//     reads in model code (injected clocks and seeded *rand.Rand only);
//   - maporder: no map-iteration order leaking into output, returned slices,
//     or floating-point accumulations;
//   - unitsafety: no dimension-bending conversions or same-unit products
//     that bypass the internal/units typed quantities;
//   - floateq: no exact ==/!= between computed floats;
//   - goroutine: no goroutines outside the sweep worker pool, and no
//     WaitGroup.Add racing inside a spawned closure.
//
// False positives are silenced in place with a justified escape hatch:
//
//	//dhllint:allow <rule>[,<rule>...] -- <why this is safe>
//
// on the flagged line or the line directly above it. An allow comment with
// no justification is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressable as file:line:col.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config controls which analyzers run and where each rule applies.
type Config struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path (e.g. "repro").
	ModulePath string
	// Enabled restricts the rule set; nil enables every analyzer.
	Enabled map[string]bool
	// ModelPackages are the import-path prefixes subject to the
	// determinism rule (model code must not read clocks, global RNGs, or
	// the environment).
	ModelPackages []string
	// GoroutineAllowed lists import paths where `go` statements are
	// permitted (the sweep worker pool owns repository concurrency).
	GoroutineAllowed []string
	// UnitsPackage is the typed-quantities package; the unitsafety rule
	// is suspended inside it (it defines the legal conversions).
	UnitsPackage string
}

// DefaultConfig is the repository policy for a module rooted at root.
func DefaultConfig(root, modpath string) Config {
	model := []string{"physics", "core", "storage", "cart", "netmodel", "sim", "sweep", "fleet", "astra"}
	prefixes := make([]string, len(model))
	for i, m := range model {
		prefixes[i] = modpath + "/internal/" + m
	}
	return Config{
		ModuleRoot:       root,
		ModulePath:       modpath,
		ModelPackages:    prefixes,
		GoroutineAllowed: []string{modpath + "/internal/sweep"},
		UnitsPackage:     modpath + "/internal/units",
	}
}

func (c *Config) ruleEnabled(rule string) bool {
	if c.Enabled == nil {
		return true
	}
	return c.Enabled[rule]
}

func (c *Config) isModelPackage(path string) bool {
	for _, p := range c.ModelPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (c *Config) goroutineAllowed(path string) bool {
	for _, p := range c.GoroutineAllowed {
		if path == p {
			return true
		}
	}
	return false
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, flags, and
	// //dhllint:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects a type-checked package and reports through the pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, UnitSafety, FloatEq, Goroutine}
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Cfg *Config
	Pkg *Package

	rule   string
	allows *allowIndex
	out    *[]Diagnostic
}

// Report files a diagnostic at pos unless an in-scope //dhllint:allow
// comment suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allows.allowed(position.Filename, position.Line, p.rule) {
		return
	}
	*p.out = append(*p.out, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// LintPackage runs every enabled analyzer over one loaded package and
// returns its diagnostics sorted by position.
func LintPackage(cfg *Config, pkg *Package) []Diagnostic {
	var out []Diagnostic
	allows := buildAllowIndex(pkg, cfg, &out)
	for _, a := range All() {
		if !cfg.ruleEnabled(a.Name) {
			continue
		}
		a.Run(&Pass{Cfg: cfg, Pkg: pkg, rule: a.Name, allows: allows, out: &out})
	}
	sortDiagnostics(out)
	return out
}

// Run loads each import path with a shared loader, lints it, and returns
// all diagnostics sorted by position.
func Run(cfg Config, importPaths []string) ([]Diagnostic, error) {
	ld := NewLoader(cfg.ModuleRoot, cfg.ModulePath)
	var out []Diagnostic
	for _, ip := range importPaths {
		pkg, err := ld.Load(ip)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", ip, err)
		}
		out = append(out, LintPackage(&cfg, pkg)...)
	}
	sortDiagnostics(out)
	return out, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// allowIndex records, per file and line, which rules an escape-hatch
// comment suppresses. A diagnostic is suppressed by an allow on its own
// line or on the line directly above.
type allowIndex struct {
	byFile map[string]map[int]map[string]bool
}

const allowPrefix = "dhllint:allow"

func buildAllowIndex(pkg *Package, cfg *Config, out *[]Diagnostic) *allowIndex {
	idx := &allowIndex{byFile: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				rules, reason, _ := strings.Cut(rest, " ")
				position := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), "--")) == "" {
					if cfg.ruleEnabled("allow") {
						*out = append(*out, Diagnostic{
							File:    position.Filename,
							Line:    position.Line,
							Col:     position.Column,
							Rule:    "allow",
							Message: "dhllint:allow needs a justification: //dhllint:allow <rule> -- <why this is safe>",
						})
					}
					continue
				}
				lines := idx.byFile[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.byFile[position.Filename] = lines
				}
				set := lines[position.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[position.Line] = set
				}
				for _, r := range strings.Split(rules, ",") {
					if r = strings.TrimSpace(r); r != "" {
						set[r] = true
					}
				}
			}
		}
	}
	return idx
}

func (a *allowIndex) allowed(file string, line int, rule string) bool {
	lines := a.byFile[file]
	if lines == nil {
		return false
	}
	return lines[line][rule] || lines[line-1][rule]
}

// funcBodies yields every function body in the file together with its
// declaration context: FuncDecls and package-level FuncLits alike.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
