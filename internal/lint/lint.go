// Package lint is the repository's domain-specific static-analysis engine
// (`dhllint`). It loads every package in the module with go/parser + go/types
// — pure stdlib, no external analysis frameworks — and runs a suite of
// analyzers that enforce the invariants the reproduction's byte-identity
// guarantees silently depend on:
//
//   - determinism: no wall clock, global-source randomness, or environment
//     reads in model code (injected clocks and seeded *rand.Rand only);
//   - purity: the interprocedural extension of determinism — a module-wide
//     call graph propagates ambient-state taint transitively, so a model
//     function that reaches time.Now through two levels of helpers is
//     flagged with the full call chain;
//   - maporder: no map-iteration order leaking into output, returned slices,
//     or floating-point accumulations;
//   - unitsafety: no dimension-bending conversions or same-unit products
//     that bypass the internal/units typed quantities;
//   - dimflow: an intra-function dataflow pass that follows dimensions
//     through the raw-float64 escape hatch — locals born from unit
//     conversions carry a dimension vector through + - * / and are checked
//     at additions and at re-wraps into unit types;
//   - floateq: no exact ==/!= between computed floats;
//   - goroutine: no goroutines outside the sweep worker pool, and no
//     WaitGroup.Add racing inside a spawned closure;
//   - allocflow: the interprocedural allocation guard — functions annotated
//     //dhllint:hotpath must be allocation-free, transitively over the same
//     module call graph purity uses, with every violation reported as the
//     shortest chain from the hot root to the allocation site;
//   - lockcheck: fields annotated //dhllint:guardedby <mutexField> are only
//     accessed while that instance's mutex is held, with "caller must hold"
//     summaries propagated interprocedurally so helpers are verified through
//     their callers;
//   - lockorder: the lock-acquisition-order graph over type-level mutex
//     identities is acyclic — any cycle is a potential deadlock, reported
//     with the conflicting acquisition chains;
//   - goescape: no non-thread-safe value (maps, *rand.Rand, the simulation
//     engine, telemetry slabs, storage arrays) is captured by a spawned
//     goroutine or sweep task while still reachable from the spawning one.
//
// False positives are silenced in place with a justified escape hatch:
//
//	//dhllint:allow <rule>[,<rule>...] -- <why this is safe>
//
// on the flagged line or the line directly above it. An allow comment with
// no justification is itself a diagnostic, as is an allow that suppresses
// no finding (rule "unusedallow") — the hatch cannot silently rot.
package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/sweep"
)

// Diagnostic is one finding, addressable as file:line:col. Interprocedural
// findings (rules "purity" and "allocflow") carry the source→sink call
// chain in Chain.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Chain is the call path from the flagged call site to the ambient
	// source, one frame per element, innermost last. Empty for
	// intra-procedural rules.
	Chain []string `json:"chain,omitempty"`
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Config controls which analyzers run and where each rule applies.
type Config struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path (e.g. "repro").
	ModulePath string
	// Enabled restricts the rule set; nil enables every analyzer.
	Enabled map[string]bool
	// ModelPackages are the import-path prefixes subject to the
	// determinism and purity rules (model code must not read clocks,
	// global RNGs, or the environment — directly or transitively).
	ModelPackages []string
	// GoroutineAllowed lists import paths where `go` statements are
	// permitted (the sweep worker pool owns repository concurrency).
	GoroutineAllowed []string
	// UnitsPackage is the typed-quantities package; the unitsafety and
	// dimflow rules are suspended inside it (it defines the legal
	// conversions).
	UnitsPackage string
	// Workers bounds the per-package analysis pool. 0 selects
	// GOMAXPROCS; 1 is the sequential reference path. Diagnostics are
	// deterministic and input-ordered at any setting.
	Workers int
}

// DefaultConfig is the repository policy for a module rooted at root.
func DefaultConfig(root, modpath string) Config {
	model := []string{"physics", "core", "storage", "cart", "netmodel", "sim", "sweep", "fleet", "astra", "faults", "telemetry", "tubenet"}
	prefixes := make([]string, len(model))
	for i, m := range model {
		prefixes[i] = modpath + "/internal/" + m
	}
	return Config{
		ModuleRoot:       root,
		ModulePath:       modpath,
		ModelPackages:    prefixes,
		GoroutineAllowed: []string{modpath + "/internal/sweep"},
		UnitsPackage:     modpath + "/internal/units",
	}
}

func (c *Config) ruleEnabled(rule string) bool {
	if c.Enabled == nil {
		return true
	}
	return c.Enabled[rule]
}

func (c *Config) isModelPackage(path string) bool {
	for _, p := range c.ModelPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func (c *Config) goroutineAllowed(path string) bool {
	for _, p := range c.GoroutineAllowed {
		if path == p {
			return true
		}
	}
	return false
}

// Analyzer is one named intra-package rule.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, flags, and
	// //dhllint:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects a type-checked package and reports through the pass.
	Run func(*Pass)
}

// All returns the intra-package analyzer suite in reporting order. The
// module-level passes (purity, unusedallow) are listed by Rules.
func All() []*Analyzer {
	return []*Analyzer{Determinism, MapOrder, UnitSafety, DimFlow, FloatEq, Goroutine}
}

// RuleDoc names one rule for listing and flag validation.
type RuleDoc struct {
	Name string
	Doc  string
}

// Rules returns every rule the engine can report: the intra-package
// analyzers, the module-level call-graph passes, and the meta rules on the
// escape hatch itself.
func Rules() []RuleDoc {
	var out []RuleDoc
	for _, a := range All() {
		out = append(out, RuleDoc{a.Name, a.Doc})
	}
	out = append(out,
		RuleDoc{"purity", "no transitive path from model code to ambient state (call-graph pass)"},
		RuleDoc{"allocflow", "no allocation reachable from //dhllint:hotpath functions (call-graph pass)"},
		RuleDoc{"lockcheck", "//dhllint:guardedby fields accessed only under their mutex (call-graph pass)"},
		RuleDoc{"lockorder", "no lock-acquisition-order cycles (call-graph pass)"},
		RuleDoc{"goescape", "no non-thread-safe values escaping into goroutines (call-graph pass)"},
		RuleDoc{"unusedallow", "no //dhllint:allow comment that suppresses nothing"},
		RuleDoc{"allow", "every //dhllint:allow carries a -- justification"},
	)
	return out
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Cfg *Config
	Pkg *Package

	rule   string
	allows *allowIndex
	out    *[]Diagnostic
}

// Report files a diagnostic at pos unless an in-scope //dhllint:allow
// comment suppresses it; a suppressing allow is marked used.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.reportChain(pos, nil, format, args...)
}

func (p *Pass) reportChain(pos token.Pos, chain []string, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if e := p.allows.lookup(position.Filename, position.Line, p.rule); e != nil {
		e.used = true
		return
	}
	*p.out = append(*p.out, Diagnostic{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
		Chain:   chain,
	})
}

// LintPackage runs every enabled analyzer over one loaded package in
// isolation — including package-scoped unused-allow detection — and returns
// its diagnostics sorted by position. The module-level purity pass needs
// the whole call graph and only runs under Run.
func LintPackage(cfg *Config, pkg *Package) []Diagnostic {
	allows, out := buildAllowIndex([]*Package{pkg}, cfg)
	out = append(out, lintPackageWith(cfg, pkg, allows)...)
	out = append(out, unusedAllowFindings(cfg, allows)...)
	sortDiagnostics(out)
	return dedupe(out)
}

// lintPackageWith runs the intra-package analyzers against a shared allow
// index. Safe to call concurrently for distinct packages: every mutation
// (diagnostics, allow used-marking) touches only this package's state.
func lintPackageWith(cfg *Config, pkg *Package, allows *allowIndex) []Diagnostic {
	var out []Diagnostic
	for _, a := range All() {
		if !cfg.ruleEnabled(a.Name) {
			continue
		}
		a.Run(&Pass{Cfg: cfg, Pkg: pkg, rule: a.Name, allows: allows, out: &out})
	}
	return out
}

// Run loads each import path with a shared loader, lints the packages on a
// bounded worker pool, runs the module-level call-graph passes, and returns
// all diagnostics sorted by position and de-duplicated.
func Run(cfg Config, importPaths []string) ([]Diagnostic, error) {
	ld := NewLoader(cfg.ModuleRoot, cfg.ModulePath)
	return RunWithLoader(cfg, ld, importPaths)
}

// RunWithLoader is Run against a caller-owned (possibly pre-warmed) loader.
func RunWithLoader(cfg Config, ld *Loader, importPaths []string) ([]Diagnostic, error) {
	// Loading is sequential: the loader memoizes recursively and the
	// dependency graph forces most of the work anyway. Analysis — the
	// AST/type walks — is the parallel part.
	pkgs := make([]*Package, 0, len(importPaths))
	for _, ip := range importPaths {
		pkg, err := ld.Load(ip)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", ip, err)
		}
		pkgs = append(pkgs, pkg)
	}

	allows, out := buildAllowIndex(pkgs, &cfg)

	// Per-package analysis on the sweep worker pool. Results land at
	// their input index, so diagnostics are ordered and byte-identical
	// to the sequential path regardless of worker count.
	perPkg, err := sweep.Map(context.Background(), pkgs,
		func(_ context.Context, pkg *Package) ([]Diagnostic, error) {
			return lintPackageWith(&cfg, pkg, allows), nil
		}, sweep.Workers(cfg.Workers))
	if err != nil {
		return nil, err
	}
	for _, ds := range perPkg {
		out = append(out, ds...)
	}

	// Module-level passes run after the pool: purity, allocflow, and the
	// concurrency trio need the whole call graph (built once, shared —
	// each pass keeps its own traversal state), and unusedallow must
	// observe every used-mark, including those made by the graph passes
	// themselves.
	needGraph := cfg.ruleEnabled("purity") || cfg.ruleEnabled("allocflow") ||
		cfg.ruleEnabled("lockcheck") || cfg.ruleEnabled("lockorder") || cfg.ruleEnabled("goescape")
	if needGraph {
		graph := buildCallGraph(&cfg, pkgs)
		if cfg.ruleEnabled("purity") {
			out = append(out, runPurity(&cfg, graph, allows)...)
		}
		if cfg.ruleEnabled("allocflow") {
			out = append(out, runAllocFlow(&cfg, graph, allows)...)
		}
		if cfg.ruleEnabled("lockcheck") || cfg.ruleEnabled("lockorder") {
			lf := buildLockFacts(graph, pkgs)
			if cfg.ruleEnabled("lockcheck") {
				out = append(out, runLockCheck(&cfg, graph, lf, allows)...)
			}
			if cfg.ruleEnabled("lockorder") {
				out = append(out, runLockOrder(&cfg, graph, lf, allows)...)
			}
		}
		if cfg.ruleEnabled("goescape") {
			out = append(out, runGoEscape(&cfg, graph, allows)...)
		}
	}
	out = append(out, unusedAllowFindings(&cfg, allows)...)

	sortDiagnostics(out)
	return dedupe(out), nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// dedupe collapses diagnostics reported at an identical file:line:col by
// the same rule (e.g. two call chains through one call site), keeping the
// first. ds must already be sorted.
func dedupe(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 {
			p := out[len(out)-1]
			if p.File == d.File && p.Line == d.Line && p.Col == d.Col && p.Rule == d.Rule {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// allowEntry is one (line, rule) suppression granted by a //dhllint:allow
// comment. used flips when a diagnostic is actually suppressed by it.
type allowEntry struct {
	file string
	line int
	col  int
	rule string
	used bool
}

// allowIndex records, per file and line, which rules an escape-hatch
// comment suppresses. A diagnostic is suppressed by an allow on its own
// line or on the line directly above. The index is built once, before
// analysis; during the parallel per-package phase each entry is only
// touched by the worker owning its file's package.
type allowIndex struct {
	byFile  map[string]map[int]map[string]*allowEntry
	entries []*allowEntry
}

const allowPrefix = "dhllint:allow"

// buildAllowIndex scans every file of pkgs for allow comments, returning
// the index plus the meta diagnostics found while parsing them (missing
// justification, unknown rule name).
func buildAllowIndex(pkgs []*Package, cfg *Config) (*allowIndex, []Diagnostic) {
	known := map[string]bool{}
	for _, r := range Rules() {
		known[r.Name] = true
	}
	var out []Diagnostic
	idx := &allowIndex{byFile: make(map[string]map[int]map[string]*allowEntry)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
					rules, reason, _ := strings.Cut(rest, " ")
					position := pkg.Fset.Position(c.Pos())
					if strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), "--")) == "" {
						if cfg.ruleEnabled("allow") {
							out = append(out, Diagnostic{
								File:    position.Filename,
								Line:    position.Line,
								Col:     position.Column,
								Rule:    "allow",
								Message: "dhllint:allow needs a justification: //dhllint:allow <rule> -- <why this is safe>",
							})
						}
						continue
					}
					for _, r := range strings.Split(rules, ",") {
						r = strings.TrimSpace(r)
						if r == "" {
							continue
						}
						if !known[r] {
							if cfg.ruleEnabled("allow") {
								out = append(out, Diagnostic{
									File:    position.Filename,
									Line:    position.Line,
									Col:     position.Column,
									Rule:    "allow",
									Message: fmt.Sprintf("dhllint:allow names unknown rule %q", r),
								})
							}
							continue
						}
						idx.add(&allowEntry{file: position.Filename, line: position.Line, col: position.Column, rule: r})
					}
				}
			}
		}
	}
	return idx, out
}

func (a *allowIndex) add(e *allowEntry) {
	lines := a.byFile[e.file]
	if lines == nil {
		lines = make(map[int]map[string]*allowEntry)
		a.byFile[e.file] = lines
	}
	set := lines[e.line]
	if set == nil {
		set = make(map[string]*allowEntry)
		lines[e.line] = set
	}
	if set[e.rule] == nil {
		set[e.rule] = e
		a.entries = append(a.entries, e)
	}
}

// lookup returns the allow entry covering a diagnostic for rule at
// file:line — an allow on the same line wins over one on the line above —
// or nil if the diagnostic is not suppressed.
func (a *allowIndex) lookup(file string, line int, rule string) *allowEntry {
	lines := a.byFile[file]
	if lines == nil {
		return nil
	}
	if e := lines[line][rule]; e != nil {
		return e
	}
	return lines[line-1][rule]
}

// unusedAllowFindings reports every allow entry that suppressed nothing.
// Only rules that actually ran are considered, so `-rules floateq` does not
// condemn the determinism allows it never exercised. An unused allow can
// itself be kept alive with //dhllint:allow unusedallow -- <why>.
func unusedAllowFindings(cfg *Config, idx *allowIndex) []Diagnostic {
	if !cfg.ruleEnabled("unusedallow") {
		return nil
	}
	var out []Diagnostic
	report := func(e *allowEntry) {
		if cover := idx.lookup(e.file, e.line, "unusedallow"); cover != nil && cover != e {
			cover.used = true
			return
		}
		out = append(out, Diagnostic{
			File:    e.file,
			Line:    e.line,
			Col:     e.col,
			Rule:    "unusedallow",
			Message: fmt.Sprintf("//dhllint:allow %s suppresses no finding; delete it (or justify keeping it with //dhllint:allow unusedallow -- <why>)", e.rule),
		})
	}
	// Two passes: ordinary entries first (their reports may consume an
	// unusedallow entry), then any unusedallow entries still idle.
	for _, e := range idx.entries {
		if e.rule != "unusedallow" && !e.used && cfg.ruleEnabled(e.rule) {
			report(e)
		}
	}
	for _, e := range idx.entries {
		if e.rule == "unusedallow" && !e.used {
			report(e)
		}
	}
	return out
}

// funcDecls yields every function declaration with a body in the file.
func funcDecls(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
