package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The lockcheck pass proves lock discipline statically. A struct field
// opts in with a //dhllint:guardedby <mutexField> directive on its
// declaration (doc comment or trailing line comment); the pass then
// verifies that every access to the field happens while that *same
// instance's* mutex is held.
//
// The intraprocedural half computes locksets: a forward walk over each
// function body tracks which mutexes are held at every statement,
// recognising mu.Lock/Unlock/RLock/RUnlock on sync.Mutex and
// sync.RWMutex, the defer mu.Unlock() idiom (the lock stays held to every
// return), and early returns (the walk is syntactic, so a return under a
// held lock is simply a point where the lock is held). Mutexes are
// identified per instance: s.connMu and t.connMu are different locks, but
// two accesses through the same receiver variable share one. Branch
// bodies inherit the lockset at entry; acquisitions inside a branch do
// not leak past it (a deliberate under-approximation that keeps the walk
// flow-insensitive across joins). Function literals run later, so their
// bodies are walked with an empty lockset, as is the callee of a go
// statement.
//
// The interprocedural half makes helpers verifiable through their
// callers: an unguarded access whose lock is rooted at the receiver or a
// parameter becomes a "caller must hold" summary instead of an immediate
// finding. The requirement propagates backwards over the module call
// graph — translated through each call site's receiver/argument
// expressions — and is discharged wherever the caller holds the
// translated lock. What survives to a function with no module callers
// (or to a call site whose receiver cannot be resolved to a variable) is
// reported with the shortest call chain from the entry point down to the
// guarded access, in the message and the JSON chain field, exactly like
// purity and allocflow.
//
// Writes (assignment targets, map writes, delete, ++/--) require the
// mutex write-held; reads are satisfied by either mode of an RWMutex.
//
// Limitations, shared with the other call-graph passes: calls through
// interfaces and function values are invisible, promoted (embedded)
// mutexes and fields are not traced, and a lock acquired in both arms of
// a branch is not considered held after the join. The race detector in
// scripts/check.sh remains the dynamic backstop.

// guardedByDirective marks a struct field as protected by a sibling
// mutex field.
const guardedByDirective = "//dhllint:guardedby"

// lockMode distinguishes read-held (RLock) from write-held (Lock).
type lockMode int

const (
	modeRead  lockMode = 1
	modeWrite lockMode = 2
)

func (m lockMode) String() string {
	if m == modeRead {
		return "read"
	}
	return "write"
}

// lockKey identifies one mutex instance inside one function frame: the
// root variable the access path starts from (receiver, parameter, local,
// or package-level var) plus the dotted field path to the mutex.
type lockKey struct {
	root types.Object
	path string
}

// guardInfo is one parsed //dhllint:guardedby annotation.
type guardInfo struct {
	owner     string // declaring struct type name, for messages
	fieldName string // the guarded field
	mutexPath string // the sibling mutex field named by the directive
	rw        bool   // the mutex is an RWMutex
}

// guardedAccess is one access to a guarded field made without the mutex
// held in the required mode — a requirement seed.
type guardedAccess struct {
	pos  token.Pos
	key  lockKey
	mode lockMode
	info *guardInfo
}

// argRef is the (root, path) of a receiver or argument expression at a
// call site, used to translate a callee's lock requirement into the
// caller's frame. ok is false when the expression is not a variable
// access path (a call result, a literal, arithmetic...).
type argRef struct {
	root types.Object
	path string
	ok   bool
}

// lockCallSite is one static call into a module function, with the
// lockset held at the call and the argument paths needed for
// requirement translation.
type lockCallSite struct {
	pos    token.Pos
	callee *types.Func
	held   map[lockKey]lockMode
	recv   argRef
	args   []argRef
}

// acquireEvent is one Lock/RLock, with a snapshot of the locks already
// held — the raw material of the lockorder pass.
type acquireEvent struct {
	pos  token.Pos
	key  lockKey
	read bool
	held []lockKey
}

// fnLockFacts is everything the concurrency passes need to know about
// one function body.
type fnLockFacts struct {
	n        *cgNode
	accesses []guardedAccess
	calls    []lockCallSite
	acquires []acquireEvent
}

// lockFacts is the module-wide result of the lockset walk, shared by
// lockcheck and lockorder.
type lockFacts struct {
	guards map[*types.Var]*guardInfo
	perFn  map[*cgNode]*fnLockFacts
	// annotation errors found while parsing directives (unknown mutex
	// field, non-mutex target), reported under the lockcheck rule.
	parseDiags []parsedGuardError
}

type parsedGuardError struct {
	pkg *Package
	pos token.Pos
	msg string
}

// buildLockFacts parses every guardedby directive in the loaded packages
// and runs the lockset walker over every function on the call graph.
func buildLockFacts(g *CallGraph, pkgs []*Package) *lockFacts {
	lf := &lockFacts{
		guards: make(map[*types.Var]*guardInfo),
		perFn:  make(map[*cgNode]*fnLockFacts),
	}
	for _, pkg := range pkgs {
		lf.collectGuards(pkg)
	}
	for _, n := range g.order {
		w := &lockWalker{g: g, n: n, guards: lf.guards, facts: &fnLockFacts{n: n}}
		w.walkStmts(n.decl.Body.List, map[lockKey]lockMode{})
		lf.perFn[n] = w.facts
	}
	return lf
}

// collectGuards scans one package's struct declarations for guardedby
// directives, validating that the named mutex is a sibling field of
// sync.Mutex or sync.RWMutex type.
func (lf *lockFacts) collectGuards(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			ts, ok := node.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutexName, pos, ok := guardDirective(field)
				if !ok {
					continue
				}
				mvar, rw := findMutexField(pkg, st, mutexName)
				if mvar == nil {
					lf.parseDiags = append(lf.parseDiags, parsedGuardError{
						pkg: pkg, pos: pos,
						msg: fmt.Sprintf("//dhllint:guardedby %s: %s is not a sync.Mutex or sync.RWMutex field of %s", mutexName, mutexName, ts.Name.Name),
					})
					continue
				}
				for _, name := range field.Names {
					fv, ok := pkg.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					lf.guards[fv] = &guardInfo{
						owner:     ts.Name.Name,
						fieldName: name.Name,
						mutexPath: mutexName,
						rw:        rw,
					}
				}
			}
			return true
		})
	}
}

// guardDirective extracts the mutex field name from a field's doc or
// trailing comment.
func guardDirective(field *ast.Field) (mutex string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if rest, found := strings.CutPrefix(text, guardedByDirective); found {
				name := strings.TrimSpace(rest)
				if name != "" {
					return name, c.Pos(), true
				}
			}
		}
	}
	return "", token.NoPos, false
}

// findMutexField resolves name to a sync.Mutex/RWMutex field of st.
func findMutexField(pkg *Package, st *ast.StructType, name string) (*types.Var, bool) {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			v, ok := pkg.Info.Defs[n].(*types.Var)
			if !ok {
				return nil, false
			}
			if rw, isMutex := mutexType(v.Type()); isMutex {
				return v, rw
			}
			return nil, false
		}
	}
	return nil, false
}

// mutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer), and which.
func mutexType(t types.Type) (rw, ok bool) {
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// pathOf resolves an expression to (root variable, dotted field path):
// s → (s, ""), s.connMu → (s, "connMu"), s.state.mu → (s, "state.mu").
// &x and *x unwrap; anything that is not a variable access path fails.
func pathOf(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, "", true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			root, p, ok := pathOf(info, x.X)
			if !ok {
				return nil, "", false
			}
			return root, joinPath(p, x.Sel.Name), true
		}
		// Package-qualified variable: pkg.Var.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return v, "", true
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return pathOf(info, x.X)
		}
	case *ast.StarExpr:
		return pathOf(info, x.X)
	}
	return nil, "", false
}

func joinPath(base, field string) string {
	if base == "" {
		return field
	}
	return base + "." + field
}

// lockWalker carries the per-function walk state.
type lockWalker struct {
	g      *CallGraph
	n      *cgNode
	guards map[*types.Var]*guardInfo
	facts  *fnLockFacts
}

func cloneHeld(held map[lockKey]lockMode) map[lockKey]lockMode {
	out := make(map[lockKey]lockMode, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockOp classifies a call as a mutex operation, returning the kind and
// the mutex expression (the receiver of Lock/Unlock/...).
func (w *lockWalker) lockOp(call *ast.CallExpr) (lockOpKind, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind = opRUnlock
	default:
		return opNone, nil
	}
	tv, ok := w.n.pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return opNone, nil
	}
	if _, isMutex := mutexType(tv.Type); !isMutex {
		return opNone, nil
	}
	return kind, sel.X
}

func (w *lockWalker) applyLockOp(kind lockOpKind, mutexExpr ast.Expr, pos token.Pos, held map[lockKey]lockMode) {
	root, path, ok := pathOf(w.n.pkg.Info, mutexExpr)
	if !ok {
		return
	}
	key := lockKey{root, path}
	switch kind {
	case opLock, opRLock:
		snapshot := make([]lockKey, 0, len(held))
		for k := range held {
			snapshot = append(snapshot, k)
		}
		sort.Slice(snapshot, func(i, j int) bool {
			return w.g.lockID(snapshot[i]) < w.g.lockID(snapshot[j])
		})
		w.facts.acquires = append(w.facts.acquires, acquireEvent{
			pos: pos, key: key, read: kind == opRLock, held: snapshot,
		})
		if kind == opLock {
			held[key] = modeWrite
		} else if held[key] < modeRead {
			held[key] = modeRead
		}
	case opUnlock, opRUnlock:
		delete(held, key)
	}
}

// walkStmts is the sequential spine: lock operations mutate held in
// place so later statements see them.
func (w *lockWalker) walkStmts(list []ast.Stmt, held map[lockKey]lockMode) {
	for _, s := range list {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[lockKey]lockMode) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if kind, mexpr := w.lockOp(call); kind != opNone {
				w.applyLockOp(kind, mexpr, call.Pos(), held)
				return
			}
		}
		w.scanExpr(st.X, held)
	case *ast.DeferStmt:
		if kind, _ := w.lockOp(st.Call); kind == opUnlock || kind == opRUnlock {
			return // released at exit: the lock stays held for the walk
		}
		w.scanExpr(st.Call, held)
	case *ast.GoStmt:
		// The spawned call runs without the caller's locks: arguments
		// are evaluated now (current lockset), the callee is recorded
		// with an empty one. Function literals are handled by scanExpr,
		// which always walks their bodies lock-free.
		w.scanGoCall(st.Call, held)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.scanExpr(r, held)
		}
		for _, l := range st.Lhs {
			w.markWrite(l, held)
		}
	case *ast.IncDecStmt:
		w.markWrite(st.X, held)
	case *ast.SendStmt:
		w.scanExpr(st.Chan, held)
		w.scanExpr(st.Value, held)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.scanExpr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.scanExpr(st.Cond, held)
		w.walkStmts(st.Body.List, cloneHeld(held))
		if st.Else != nil {
			w.walkStmt(st.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.scanExpr(st.Cond, held)
		body := cloneHeld(held)
		w.walkStmts(st.Body.List, body)
		if st.Post != nil {
			w.walkStmt(st.Post, body)
		}
	case *ast.RangeStmt:
		w.scanExpr(st.X, held)
		if st.Key != nil {
			w.markWrite(st.Key, held)
		}
		if st.Value != nil {
			w.markWrite(st.Value, held)
		}
		w.walkStmts(st.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.scanExpr(st.Tag, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.scanExpr(e, held)
				}
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkStmt(st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := cloneHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, held)
					}
				}
			}
		}
	}
}

// scanGoCall records a go statement's callee with an empty lockset and
// its argument evaluation with the current one.
func (w *lockWalker) scanGoCall(call *ast.CallExpr, held map[lockKey]lockMode) {
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.scanExpr(call.Fun, held) // literal body walks lock-free inside scanExpr
	} else {
		w.recordCall(call, map[lockKey]lockMode{})
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			w.scanExpr(sel.X, held)
		}
	}
	for _, a := range call.Args {
		w.scanExpr(a, held)
	}
}

// scanExpr records guarded-field reads, call sites, and lock-free
// closure bodies inside one expression.
func (w *lockWalker) scanExpr(e ast.Expr, held map[lockKey]lockMode) {
	if e == nil {
		return
	}
	info := w.n.pkg.Info
	ast.Inspect(e, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			// Runs later, without the current locks.
			w.walkStmts(x.Body.List, map[lockKey]lockMode{})
			return false
		case *ast.CallExpr:
			if kind, mexpr := w.lockOp(x); kind != opNone {
				// Lock calls buried in expressions are rare and not
				// modelled; skip the receiver so the mutex field itself
				// is not misread as an access.
				_ = mexpr
				return false
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(x.Args) == 2 {
					w.markWrite(x.Args[0], held)
					w.scanExpr(x.Args[1], held)
					return false
				}
			}
			w.recordCall(x, held)
			return true
		case *ast.SelectorExpr:
			if w.checkSelector(x, held, modeRead) {
				w.scanExpr(x.X, held)
				return false
			}
			return true
		}
		return true
	})
}

// markWrite classifies the spine of an assignment target: the base
// guarded field (possibly behind index/star/paren wrappers) needs the
// mutex write-held; index expressions along the way are reads.
func (w *lockWalker) markWrite(e ast.Expr, held map[lockKey]lockMode) {
	switch x := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		w.scanExpr(x.Index, held)
		w.markWrite(x.X, held)
	case *ast.StarExpr:
		w.markWrite(x.X, held)
	case *ast.SelectorExpr:
		if w.checkSelector(x, held, modeWrite) {
			w.scanExpr(x.X, held)
			return
		}
		w.markWrite(x.X, held)
	case *ast.Ident:
		// Plain variable target: nothing guarded.
	default:
		w.scanExpr(e, held)
	}
}

// checkSelector resolves x against the guard table; a guarded access
// made without the mutex held (in at least the required mode) is
// recorded as a requirement seed. Returns whether x is a guarded field
// selection at all.
func (w *lockWalker) checkSelector(x *ast.SelectorExpr, held map[lockKey]lockMode, mode lockMode) bool {
	info := w.n.pkg.Info
	sel, ok := info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return false
	}
	fvar, ok := sel.Obj().(*types.Var)
	if !ok {
		return false
	}
	gi := w.guards[fvar]
	if gi == nil {
		return false
	}
	root, basePath, ok := pathOf(info, x.X)
	if !ok {
		return true // not a traceable instance; stay quiet
	}
	key := lockKey{root, joinPath(basePath, gi.mutexPath)}
	if held[key] >= mode {
		return true
	}
	w.facts.accesses = append(w.facts.accesses, guardedAccess{
		pos: x.Pos(), key: key, mode: mode, info: gi,
	})
	return true
}

// recordCall snapshots the lockset and argument paths at one static call
// into a module function.
func (w *lockWalker) recordCall(call *ast.CallExpr, held map[lockKey]lockMode) {
	info := w.n.pkg.Info
	fun := ast.Unparen(call.Fun)
	fn := calleeFunc(info, fun)
	if fn == nil || fn.Pkg() == nil || !w.g.isModuleFunc(fn) {
		return
	}
	cs := lockCallSite{pos: call.Pos(), callee: fn, held: cloneHeld(held)}
	if se, ok := fun.(*ast.SelectorExpr); ok {
		if sel, selOK := info.Selections[se]; selOK && sel.Kind() == types.MethodVal {
			r, p, ok := pathOf(info, se.X)
			cs.recv = argRef{root: r, path: p, ok: ok}
		}
	}
	for _, a := range call.Args {
		r, p, ok := pathOf(info, a)
		cs.args = append(cs.args, argRef{root: r, path: p, ok: ok})
	}
	w.facts.calls = append(w.facts.calls, cs)
}

// lockID renders a lock at type level — receiver type plus field path —
// so distinct instances of one struct share an identity. Plain mutex
// variables are qualified by package (or declaring type) and name.
func (g *CallGraph) lockID(key lockKey) string {
	if key.path != "" {
		t := key.root.Type()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return g.shortTypeName(named) + "." + key.path
		}
	}
	prefix := ""
	if pkg := key.root.Pkg(); pkg != nil {
		prefix = strings.TrimPrefix(pkg.Path(), g.cfg.ModulePath+"/") + "."
	}
	return prefix + joinPath(key.root.Name(), key.path)
}

func (g *CallGraph) shortTypeName(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return strings.TrimPrefix(obj.Pkg().Path(), g.cfg.ModulePath+"/") + "." + obj.Name()
}

// lockReq is one in-flight "caller must hold" requirement during the
// interprocedural BFS.
type lockReq struct {
	node *cgNode
	key  lockKey
	mode lockMode
	info *guardInfo
	// chain runs from the function the requirement currently sits in
	// down to the guarded access, outermost first; the access itself is
	// the final frame.
	chain []string
	// pos is where a report lands if the requirement cannot propagate
	// further: the access for seeds, the call site for inherited ones.
	pos token.Pos
}

type reqVisitKey struct {
	node *cgNode
	key  lockKey
	mode lockMode
}

// runLockCheck propagates unguarded-access requirements backwards over
// the call graph and reports what no caller discharges.
func runLockCheck(cfg *Config, g *CallGraph, lf *lockFacts, allows *allowIndex) []Diagnostic {
	var out []Diagnostic
	for _, pd := range lf.parseDiags {
		pass := &Pass{Cfg: cfg, Pkg: pd.pkg, rule: "lockcheck", allows: allows, out: &out}
		pass.Report(pd.pos, "%s", pd.msg)
	}

	// Call-site index: every static call targeting a function, in
	// deterministic graph order.
	type siteRef struct {
		owner *cgNode
		site  *lockCallSite
	}
	sitesOf := make(map[*types.Func][]siteRef)
	for _, n := range g.order {
		facts := lf.perFn[n]
		for i := range facts.calls {
			cs := &facts.calls[i]
			sitesOf[cs.callee] = append(sitesOf[cs.callee], siteRef{owner: n, site: cs})
		}
	}

	var queue []lockReq
	visited := make(map[reqVisitKey]bool)
	enqueue := func(r lockReq) {
		vk := reqVisitKey{r.node, r.key, r.mode}
		if visited[vk] {
			return
		}
		visited[vk] = true
		queue = append(queue, r)
	}

	// Seeds: unguarded accesses, minus those justified in place.
	for _, n := range g.order {
		facts := lf.perFn[n]
		accs := append([]guardedAccess(nil), facts.accesses...)
		sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
		for _, a := range accs {
			pos := g.fset.Position(a.pos)
			if e := allows.lookup(pos.Filename, pos.Line, "lockcheck"); e != nil {
				e.used = true
				continue
			}
			frame := fmt.Sprintf("%s.%s %s access (guarded by %s) (%s)",
				a.info.owner, a.info.fieldName, a.mode, a.info.mutexPath, g.relPos(a.pos))
			enqueue(lockReq{node: n, key: a.key, mode: a.mode, info: a.info,
				chain: []string{frame}, pos: a.pos})
		}
	}

	report := func(r lockReq) {
		pass := &Pass{Cfg: cfg, Pkg: r.node.pkg, rule: "lockcheck", allows: allows, out: &out}
		lock := g.lockID(r.key)
		if len(r.chain) == 1 {
			pass.reportChain(r.pos, r.chain,
				"%s.%s is annotated //dhllint:guardedby %s but is accessed (%s) without %s held",
				r.info.owner, r.info.fieldName, r.info.mutexPath, r.mode, lock)
			return
		}
		pass.reportChain(r.pos, r.chain,
			"call requires %s held (%s) for guarded field %s.%s, and no caller on this path holds it: %s",
			lock, r.mode, r.info.owner, r.info.fieldName, chainArrow(r.chain))
	}

	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		sites := sitesOf[r.node.fn]
		if !rootIsFormal(r.node, r.key.root) || len(sites) == 0 {
			report(r)
			continue
		}
		for _, sr := range sites {
			ref, ok := formalRef(r.node, r.key.root, sr.site)
			frame := fmt.Sprintf("%s (%s)", g.shortName(r.node.fn), g.relPos(r.node.decl.Pos()))
			if !ok || !ref.ok {
				// The instance is invisible at this call site; the
				// requirement cannot be checked further up.
				report(lockReq{node: sr.owner, key: r.key, mode: r.mode, info: r.info,
					chain: append([]string{frame}, r.chain...), pos: sr.site.pos})
				continue
			}
			ck := lockKey{root: ref.root, path: joinPath(ref.path, r.key.path)}
			if sr.site.held[ck] >= r.mode {
				continue // discharged: this caller holds the lock
			}
			enqueue(lockReq{node: sr.owner, key: ck, mode: r.mode, info: r.info,
				chain: append([]string{frame}, r.chain...), pos: sr.site.pos})
		}
	}
	return out
}

// rootIsFormal reports whether obj is n's receiver or one of its
// parameters — the only roots a caller can be asked to hold a lock for.
func rootIsFormal(n *cgNode, obj types.Object) bool {
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() != nil && sig.Recv() == obj {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	return false
}

// formalRef maps n's receiver/parameter object to the corresponding
// expression path at one call site.
func formalRef(n *cgNode, obj types.Object, site *lockCallSite) (argRef, bool) {
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok {
		return argRef{}, false
	}
	if sig.Recv() != nil && sig.Recv() == obj {
		return site.recv, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			if i < len(site.args) {
				return site.args[i], true
			}
			return argRef{}, false
		}
	}
	return argRef{}, false
}
