package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The goescape pass catches the race the goroutine rule cannot see:
// sharing a non-thread-safe value between the spawning goroutine and a
// spawned one. The curated unsafe set is the repository's actual
// single-threaded state: *rand.Rand (every draw mutates the source),
// maps (unsynchronised writes corrupt), *sim.Engine (the arena-backed
// event heap), *telemetry.SpanLog and *telemetry.Set (flat record slabs
// with intern tables), and *storage.Array (free-extent bookkeeping).
//
// Two spawn shapes are inspected:
//
//   - go statements — a closure (or method call) escaping onto a new
//     goroutine. A captured unsafe value is flagged only when it is
//     *also* used by the spawning function outside the closure:
//     transferring ownership into the goroutine (build, hand off, never
//     touch again) is the sanctioned idiom and stays silent.
//   - sweep task functions — the fn argument of sweep.Map / sweep.MapGrid.
//     The pool invokes the task from many workers concurrently, so a
//     captured unsafe value is flagged with no reachability condition:
//     the parallel invocations alone share it.
//
// Map captures are the exception to "any use counts": concurrent map
// reads are legal, so a captured map is flagged only when the closure
// writes it (index assignment or delete).
//
// Indirect sharing is traced through the call graph: a pointer-receiver
// method called on a captured variable is flagged when the method —
// transitively, over the same module call graph purity uses — touches a
// non-thread-safe value that is not local to the touching function
// (method calls on unsafe receivers, map operations on fields or
// globals). The diagnostic carries the shortest method→unsafe-touch
// chain, like every other interprocedural rule.
//
// Limitations: values smuggled through channels, struct fields, or
// function values are not traced; captured-variable analysis is lexical
// (aliasing through assignment is invisible); and the curated type set
// is deliberately small. go test -race remains the dynamic backstop.

// unsafeConcDesc classifies t as concurrency-unsafe, returning a short
// description or "".
func unsafeConcDesc(modpath string, t types.Type) string {
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if obj.Name() == "Rand" {
			return "*rand.Rand"
		}
	case modpath + "/internal/sim":
		if obj.Name() == "Engine" {
			return "*sim.Engine"
		}
	case modpath + "/internal/telemetry":
		if obj.Name() == "SpanLog" || obj.Name() == "Set" {
			return "*telemetry." + obj.Name()
		}
	case modpath + "/internal/storage":
		if obj.Name() == "Array" {
			return "*storage.Array"
		}
	}
	return ""
}

// unsafeTouch is one direct reach into non-thread-safe shared state.
type unsafeTouch struct {
	desc string
	pos  token.Pos
}

// unsafeTouches scans one function body for direct touches of
// concurrency-unsafe state that is not local to the function: method
// calls whose receiver type is in the curated set, and map index /
// delete / range operations. Purely local values (a map built and used
// inside the function) never count.
func (g *CallGraph) unsafeTouches(n *cgNode) []unsafeTouch {
	info := n.pkg.Info
	var out []unsafeTouch
	nonLocalRoot := func(e ast.Expr) bool {
		root, _, ok := pathOf(info, e)
		if !ok {
			return false
		}
		return !objLocalTo(root, n)
	}
	addMapOp := func(e ast.Expr, pos token.Pos, op string) {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		if !nonLocalRoot(e) {
			return
		}
		out = append(out, unsafeTouch{desc: fmt.Sprintf("map %s (%s)", op, types.ExprString(e)), pos: pos})
	}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if se, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if sel, selOK := info.Selections[se]; selOK && sel.Kind() == types.MethodVal {
					if tv, tvOK := info.Types[se.X]; tvOK {
						if desc := unsafeConcDesc(g.cfg.ModulePath, tv.Type); desc != "" && nonLocalRoot(se.X) {
							out = append(out, unsafeTouch{
								desc: fmt.Sprintf("%s.%s on %s", desc, se.Sel.Name, types.ExprString(se.X)),
								pos:  se.Pos(),
							})
						}
					}
				}
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 2 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					addMapOp(x.Args[0], x.Pos(), "delete")
				}
			}
		case *ast.IndexExpr:
			addMapOp(x.X, x.Pos(), "access")
		case *ast.RangeStmt:
			addMapOp(x.X, x.Pos(), "range")
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// objLocalTo reports whether obj is declared inside n's body — a purely
// function-local value. Parameters and the receiver sit before the body
// and so count as shared.
func objLocalTo(obj types.Object, n *cgNode) bool {
	return obj.Pos() >= n.decl.Body.Pos() && obj.Pos() < n.decl.Body.End()
}

// runGoEscape inspects every go statement and sweep-task closure for
// captured non-thread-safe values shared with the spawning goroutine.
func runGoEscape(cfg *Config, g *CallGraph, allows *allowIndex) []Diagnostic {
	// Backwards BFS from unsafe touches, mirroring allocflow: dist/via/
	// touchOf let a pointer-receiver method call render the shortest
	// chain to the state it reaches.
	callers := make(map[*cgNode][]*cgNode)
	for _, n := range g.order {
		for _, e := range n.calls {
			if callee := g.nodes[e.callee]; callee != nil {
				callers[callee] = append(callers[callee], n)
			}
		}
	}
	dist := make(map[*cgNode]int)
	via := make(map[*cgNode]*cgNode)
	touchOf := make(map[*cgNode]*unsafeTouch)
	touches := make(map[*cgNode][]unsafeTouch)
	var queue []*cgNode
	for _, n := range g.order {
		ts := g.unsafeTouches(n)
		touches[n] = ts
		if len(ts) > 0 {
			dist[n] = 0
			touchOf[n] = &ts[0]
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range callers[n] {
			if _, seen := dist[caller]; seen {
				continue
			}
			dist[caller] = dist[n] + 1
			via[caller] = n
			queue = append(queue, caller)
		}
	}

	var out []Diagnostic
	for _, n := range g.order {
		pass := &Pass{Cfg: cfg, Pkg: n.pkg, rule: "goescape", allows: allows, out: &out}
		g.scanSpawns(n, pass, dist, via, touchOf)
	}
	return out
}

// scanSpawns finds the spawn sites in one function and checks their
// captures.
func (g *CallGraph) scanSpawns(n *cgNode, pass *Pass, dist map[*cgNode]int, via map[*cgNode]*cgNode, touchOf map[*cgNode]*unsafeTouch) {
	info := n.pkg.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				g.checkClosure(n, pass, lit, x.Pos(), "goroutine closure", true, dist, via, touchOf)
			} else {
				g.checkSpawnedCall(n, pass, x.Call, x.Pos(), dist, via, touchOf)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, ast.Unparen(x.Fun)); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == g.cfg.ModulePath+"/internal/sweep" &&
				(fn.Name() == "Map" || fn.Name() == "MapGrid") && len(x.Args) > 2 {
				if lit, ok := ast.Unparen(x.Args[2]).(*ast.FuncLit); ok {
					g.checkClosure(n, pass, lit, x.Pos(), "sweep task", false, dist, via, touchOf)
				}
			}
		}
		return true
	})
}

// checkClosure examines the variables a spawn-site closure captures from
// its enclosing function. needOutsideUse distinguishes go statements
// (ownership handoff is fine) from sweep tasks (workers share the
// capture regardless).
func (g *CallGraph) checkClosure(n *cgNode, pass *Pass, lit *ast.FuncLit, reportPos token.Pos, what string, needOutsideUse bool, dist map[*cgNode]int, via map[*cgNode]*cgNode, touchOf map[*cgNode]*unsafeTouch) {
	info := n.pkg.Info
	type capture struct {
		v        *types.Var
		firstUse token.Pos
	}
	var caps []capture
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= n.decl.Pos() && v.Pos() < lit.Pos() {
			seen[v] = true
			caps = append(caps, capture{v: v, firstUse: id.Pos()})
		}
		return true
	})
	sort.Slice(caps, func(i, j int) bool { return caps[i].firstUse < caps[j].firstUse })

	for _, c := range caps {
		shared := !needOutsideUse || usedOutside(info, n, c.v, lit.Pos(), lit.End())
		if !shared {
			continue
		}
		if desc := unsafeConcDesc(g.cfg.ModulePath, c.v.Type()); desc != "" {
			if desc == "map" && !mapWrittenIn(info, lit, c.v) {
				continue // concurrent map reads are legal
			}
			racyWith := "is still used by the spawning goroutine"
			if !needOutsideUse {
				racyWith = "is shared across the pool's concurrent workers"
			}
			pass.reportChain(reportPos,
				[]string{fmt.Sprintf("%s captured by %s (%s)", c.v.Name(), what, g.relPos(c.firstUse))},
				"%s captures %s (%s), which is not thread-safe and %s; hand off ownership or guard it",
				what, c.v.Name(), desc, racyWith)
			continue
		}
		// Indirect: pointer-receiver module methods called on the
		// capture that transitively touch unsafe state.
		g.checkCapturedCalls(n, pass, lit, c.v, reportPos, what, dist, via, touchOf)
	}
}

// checkCapturedCalls flags pointer-receiver method calls on a captured
// variable whose callee transitively touches non-thread-safe state.
func (g *CallGraph) checkCapturedCalls(n *cgNode, pass *Pass, lit *ast.FuncLit, v *types.Var, reportPos token.Pos, what string, dist map[*cgNode]int, via map[*cgNode]*cgNode, touchOf map[*cgNode]*unsafeTouch) {
	info := n.pkg.Info
	reported := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if reported {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root, _, ok := pathOf(info, se.X)
		if !ok || root != v {
			return true
		}
		fn, ok := info.Uses[se.Sel].(*types.Func)
		if !ok {
			return true
		}
		fn = fn.Origin()
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if _, isPtr := sig.Recv().Type().Underlying().(*types.Pointer); !isPtr {
			return true
		}
		callee := g.nodes[fn]
		if callee == nil {
			return true
		}
		if _, touched := dist[callee]; !touched {
			return true
		}
		chain := g.touchChain(callee, via, touchOf)
		pass.reportChain(reportPos, chain,
			"%s calls %s on captured %s, which reaches non-thread-safe state shared with the spawning goroutine: %s",
			what, g.shortName(fn), v.Name(), chainArrow(chain))
		reported = true
		return false
	})
}

// checkSpawnedCall handles `go x.m(...)` and `go f(rng)`: a method value
// spawned directly, or unsafe values passed as arguments.
func (g *CallGraph) checkSpawnedCall(n *cgNode, pass *Pass, call *ast.CallExpr, reportPos token.Pos, dist map[*cgNode]int, via map[*cgNode]*cgNode, touchOf map[*cgNode]*unsafeTouch) {
	info := n.pkg.Info
	goEnd := call.End()
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if root, _, ok := pathOf(info, se.X); ok {
			if rv, isVar := root.(*types.Var); isVar && usedOutside(info, n, rv, call.Pos(), goEnd) {
				if fn, ok := info.Uses[se.Sel].(*types.Func); ok {
					if callee := g.nodes[fn.Origin()]; callee != nil {
						if _, touched := dist[callee]; touched {
							chain := g.touchChain(callee, via, touchOf)
							pass.reportChain(reportPos, chain,
								"goroutine runs %s on %s, which reaches non-thread-safe state shared with the spawning goroutine: %s",
								g.shortName(fn.Origin()), rv.Name(), chainArrow(chain))
						}
					}
				}
			}
		}
	}
	for _, a := range call.Args {
		root, _, ok := pathOf(info, a)
		if !ok {
			continue
		}
		rv, isVar := root.(*types.Var)
		if !isVar {
			continue
		}
		desc := unsafeConcDesc(g.cfg.ModulePath, rv.Type())
		if desc == "" || !usedOutside(info, n, rv, call.Pos(), goEnd) {
			continue
		}
		pass.reportChain(reportPos,
			[]string{fmt.Sprintf("%s passed to spawned call (%s)", rv.Name(), g.relPos(a.Pos()))},
			"goroutine receives %s (%s), which is not thread-safe and is still used by the spawning goroutine; hand off ownership or guard it",
			rv.Name(), desc)
	}
}

// touchChain renders the shortest call chain from a node down to the
// unsafe touch seeding it.
func (g *CallGraph) touchChain(n *cgNode, via map[*cgNode]*cgNode, touchOf map[*cgNode]*unsafeTouch) []string {
	var chain []string
	for hop := n; hop != nil; hop = via[hop] {
		chain = append(chain, fmt.Sprintf("%s (%s)", g.shortName(hop.fn), g.relPos(hop.decl.Pos())))
		if via[hop] == nil {
			if t := touchOf[hop]; t != nil {
				chain = append(chain, fmt.Sprintf("%s (%s)", t.desc, g.relPos(t.pos)))
			}
		}
	}
	return chain
}

// usedOutside reports whether v is referenced in n's body outside the
// [from, to] range — the spawning goroutine still reaching the value.
func usedOutside(info *types.Info, n *cgNode, v *types.Var, from, to token.Pos) bool {
	found := false
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		if id.Pos() >= from && id.Pos() <= to {
			return true
		}
		if info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// mapWrittenIn reports whether the closure writes the captured map:
// an index assignment, ++/--, or delete rooted at v.
func mapWrittenIn(info *types.Info, lit *ast.FuncLit, v *types.Var) bool {
	written := false
	rootedAtV := func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				root, _, ok := pathOf(info, e)
				return ok && root == v
			}
		}
	}
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if written {
			return false
		}
		switch x := node.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok && rootedAtV(ix.X) {
					written = true
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok && rootedAtV(ix.X) {
				written = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 2 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && rootedAtV(x.Args[0]) {
					written = true
				}
			}
		}
		return true
	})
	return written
}
