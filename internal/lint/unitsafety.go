package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitSafety guards the internal/units typed quantities that anchor the
// paper's physics. Go's type checker already rejects mixed-type
// arithmetic, but two dimension errors still compile:
//
//   - a direct conversion between two distinct units types
//     (units.Seconds(bytes) type-checks and is always wrong — convert
//     through float64 with the dimensional formula spelled out);
//   - a product of two non-constant values of the same units type
//     (Bytes × Bytes is bytes², which no variable in the model holds;
//     scaling by a count or factor belongs in float64).
//
// Quotients of a shared unit are dimensionless and stay legal, as does
// everything inside the units package itself, which defines the
// sanctioned conversions.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc:  "no cross-unit conversions or same-unit products outside internal/units",
	Run:  runUnitSafety,
}

func runUnitSafety(p *Pass) {
	if p.Pkg.ImportPath == p.Cfg.UnitsPackage {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkUnitConversion(n)
			case *ast.BinaryExpr:
				if n.Op != token.MUL {
					return true
				}
				tx, ty := info.Types[n.X], info.Types[n.Y]
				// Constant factors (2 * units.PB) carry no dimension.
				if tx.Value != nil || ty.Value != nil {
					return true
				}
				nx := p.namedUnitsType(tx.Type)
				ny := p.namedUnitsType(ty.Type)
				if nx != nil && ny != nil && nx.Obj() == ny.Obj() {
					p.Report(n.OpPos, "%s × %s is not a %s; do the arithmetic in float64 and convert the result",
						nx.Obj().Name(), ny.Obj().Name(), nx.Obj().Name())
				}
			}
			return true
		})
	}
}

// checkUnitConversion flags T2(x) where both T2 and x's type are distinct
// named types of the units package.
func (p *Pass) checkUnitConversion(call *ast.CallExpr) {
	info := p.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := p.namedUnitsType(tv.Type)
	if dst == nil {
		return
	}
	src := p.namedUnitsType(info.TypeOf(call.Args[0]))
	if src == nil || src.Obj() == dst.Obj() {
		return
	}
	// Ratio(a/b) over a shared unit is a legal dimensionless quotient.
	if dst.Obj().Name() == "Ratio" && isSameUnitQuotient(info, call.Args[0]) {
		return
	}
	p.Report(call.Pos(), "converting %s directly to %s changes dimension; convert through float64 with the formula spelled out",
		src.Obj().Name(), dst.Obj().Name())
}

// namedUnitsType returns t's named type if it is declared in the units
// package, else nil.
func (p *Pass) namedUnitsType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != p.Cfg.UnitsPackage {
		return nil
	}
	return named
}

// isSameUnitQuotient reports whether e is a division of two operands of
// the same type (possibly parenthesised).
func isSameUnitQuotient(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != token.QUO {
		return false
	}
	tx, ty := info.TypeOf(be.X), info.TypeOf(be.Y)
	return tx != nil && ty != nil && types.Identical(tx, ty)
}
