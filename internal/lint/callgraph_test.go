package lint

import (
	"reflect"
	"testing"
)

// TestCallGraphEdgeCases pins the substrate the interprocedural passes
// stand on: which call shapes produce edges, and which documented
// limitations deliberately do not. Future analyzers inherit exactly this
// behaviour.
func TestCallGraphEdgeCases(t *testing.T) {
	cfg := fixtureConfig(t)
	pkg, err := loader(t).Load(fixtureBase + "callgraph_edges")
	if err != nil {
		t.Fatal(err)
	}
	g := buildCallGraph(&cfg, []*Package{pkg})

	edges := map[string][]string{}
	for _, n := range g.order {
		var out []string
		for _, e := range n.calls {
			out = append(out, g.shortName(e.callee))
		}
		edges[g.shortName(n.fn)] = out
	}

	const p = "internal/lint/testdata/src/callgraph_edges."
	tests := []struct {
		name   string
		caller string
		want   []string
	}{
		{
			// f := t.M; f() — the selector's Uses entry yields the edge
			// even though the call itself goes through a variable.
			name:   "method-value binding",
			caller: p + "MethodValue",
			want:   []string{p + "T.M"},
		},
		{
			name:   "deferred call",
			caller: p + "DeferredCall",
			want:   []string{p + "Leaf"},
		},
		{
			// The reference sits two closure literals deep; the edge is
			// attributed to the enclosing declaration.
			name:   "nested closures",
			caller: p + "NestedClosures",
			want:   []string{p + "Leaf"},
		},
		{
			// Documented limitation: resolution stops at the interface
			// method object — never an edge to impl.Do.
			name:   "interface call stops at the interface",
			caller: p + "ThroughInterface",
			want:   []string{p + "Iface.Do"},
		},
		{
			// Documented limitation: a call through a function-value
			// parameter resolves to nothing.
			name:   "function-value call has no edge",
			caller: p + "FuncValueParam",
			want:   nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, present := edges[tt.caller]
			if !present {
				t.Fatalf("no node for %s; have %v", tt.caller, sortedCallers(edges))
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("edges of %s = %v, want %v", tt.caller, got, tt.want)
			}
		})
	}

	// The interface implementation must exist as its own node (it is a
	// declared function), just never be a callee of the interface call.
	if _, ok := edges[p+"impl.Do"]; !ok {
		t.Errorf("impl.Do should still be a node in its own right")
	}
	for caller, callees := range edges {
		for _, c := range callees {
			if c == p+"impl.Do" {
				t.Errorf("unexpected edge %s -> impl.Do: interface calls must not resolve to implementations", caller)
			}
		}
	}
}

func sortedCallers(edges map[string][]string) []string {
	out := make([]string, 0, len(edges))
	for k := range edges {
		out = append(out, k)
	}
	return out
}
