package lint

import (
	"go/ast"
	"go/types"
)

// Goroutine keeps concurrency where the determinism story can see it.
// The sweep worker pool is the one place the repository spawns
// goroutines on the model path; stray `go` statements elsewhere reorder
// float accumulations and interleave output. The rule also catches the
// classic WaitGroup race — calling Add inside the spawned closure, after
// Wait may already have returned.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no go statements outside the sweep pool; WaitGroup.Add before the go statement",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	allowedPkg := p.Cfg.goroutineAllowed(p.Pkg.ImportPath)
	for _, f := range p.Pkg.Files {
		bindings := funcLitBindings(p.Pkg.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !allowedPkg {
				p.Report(g.Pos(), "goroutine outside the sweep worker pool; route concurrency through internal/sweep or justify with an allow")
			}
			if lit := spawnedLit(p.Pkg.Info, g.Call, bindings); lit != nil {
				p.checkAddInClosure(lit)
			}
			return true
		})
	}
}

// spawnedLit resolves the closure a go statement runs: a literal spelled
// inline, or a single-assignment function-value binding (f := func(){...};
// go f()).
func spawnedLit(info *types.Info, call *ast.CallExpr, bindings map[*types.Var]*ast.FuncLit) *ast.FuncLit {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun
	case *ast.Ident:
		if v, ok := info.Uses[fun].(*types.Var); ok {
			return bindings[v]
		}
	}
	return nil
}

// funcLitBindings maps each function-typed variable assigned exactly once
// in the file to the literal it holds. A variable assigned twice is
// dropped: the binding is no longer statically known at the go statement.
func funcLitBindings(info *types.Info, f *ast.File) map[*types.Var]*ast.FuncLit {
	lits := make(map[*types.Var]*ast.FuncLit)
	assigns := make(map[*types.Var]int)
	bind := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		assigns[v]++
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			lits[v] = lit
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					bind(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					bind(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	for v, n := range assigns {
		if n > 1 {
			delete(lits, v)
		}
	}
	return lits
}

// checkAddInClosure flags sync.WaitGroup.Add calls lexically inside a
// goroutine's closure: Add must happen-before the go statement or Wait
// can return early.
func (p *Pass) checkAddInClosure(lit *ast.FuncLit) {
	info := p.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "Add" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if isWaitGroup(sig.Recv().Type()) {
			p.Report(call.Pos(), "WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
		}
		return true
	})
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
