package lint

import (
	"go/ast"
	"go/types"
)

// Goroutine keeps concurrency where the determinism story can see it.
// The sweep worker pool is the one place the repository spawns
// goroutines on the model path; stray `go` statements elsewhere reorder
// float accumulations and interleave output. The rule also catches the
// classic WaitGroup race — calling Add inside the spawned closure, after
// Wait may already have returned.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no go statements outside the sweep pool; WaitGroup.Add before the go statement",
	Run:  runGoroutine,
}

func runGoroutine(p *Pass) {
	allowedPkg := p.Cfg.goroutineAllowed(p.Pkg.ImportPath)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !allowedPkg {
				p.Report(g.Pos(), "goroutine outside the sweep worker pool; route concurrency through internal/sweep or justify with an allow")
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				p.checkAddInClosure(lit)
			}
			return true
		})
	}
}

// checkAddInClosure flags sync.WaitGroup.Add calls lexically inside a
// goroutine's closure: Add must happen-before the go statement or Wait
// can return early.
func (p *Pass) checkAddInClosure(lit *ast.FuncLit) {
	info := p.Pkg.Info
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Name() != "Add" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if isWaitGroup(sig.Recv().Type()) {
			p.Report(call.Pos(), "WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
		}
		return true
	})
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
