package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DimFlow restores dimensional checking across the raw-float64 escape
// hatch. The unitsafety rule stops at the `float64(...)` boundary: the
// moment a typed quantity is unwrapped, the type system — and unitsafety —
// can no longer see its dimension. This pass follows it. A float64 local
// born from a unit conversion (`float64(m)`) or a unit accessor
// (`t.Hours()`, `b.GBf()`) carries a dimension vector over the base axes
// (data, time, mass, length, money); energy and power are derived
// (J = g·m²·s⁻², W = J/s), so SI identities like ½mv² = kinetic energy
// hold. The vector propagates through + - * /, math.Abs/Min/Max/Sqrt, and
// assignments. Two findings:
//
//   - an addition or subtraction whose operands carry different known
//     dimensions (metres + seconds never means anything);
//   - a re-wrap into a unit type whose dimension disagrees with the
//     computed vector (units.Watts(joules × seconds)).
//
// Values of unknown provenance (parameters, struct fields, opaque calls)
// stay untagged and never flag, so the pass only speaks when both sides of
// a claim are traceable to typed quantities.
var DimFlow = &Analyzer{
	Name: "dimflow",
	Doc:  "no dimension-bending float64 arithmetic downstream of unit conversions",
	Run:  runDimFlow,
}

// dim is a dimension vector: exponents over the base axes. Scale is
// deliberately ignored (kg and g are both mass): the rule polices
// dimensions, not magnitudes.
type dim [5]int8

const (
	dimData = iota // bytes/bits
	dimTime
	dimMass
	dimLength
	dimMoney
)

var dimSymbols = [5]string{"B", "s", "g", "m", "$"}

// Derived dimensions, recognised on sight in diagnostics.
var (
	energyDim = dim{dimTime: -2, dimMass: 1, dimLength: 2} // J = g·m²·s⁻²
	powerDim  = dim{dimTime: -3, dimMass: 1, dimLength: 2} // W = J/s
)

func (d dim) String() string {
	switch d {
	case energyDim:
		return "J"
	case powerDim:
		return "W"
	}
	var parts []string
	for i, e := range d {
		switch {
		case e == 1:
			parts = append(parts, dimSymbols[i])
		case e != 0:
			parts = append(parts, fmt.Sprintf("%s^%d", dimSymbols[i], e))
		}
	}
	if len(parts) == 0 {
		return "dimensionless"
	}
	return strings.Join(parts, "·")
}

func (d dim) add(o dim) dim {
	for i := range d {
		d[i] += o[i]
	}
	return d
}

func (d dim) sub(o dim) dim {
	for i := range d {
		d[i] -= o[i]
	}
	return d
}

func (d dim) halve() (dim, bool) {
	for i := range d {
		if d[i]%2 != 0 {
			return dim{}, false
		}
		d[i] /= 2
	}
	return d, true
}

// unitDims maps each internal/units named type to its dimension vector.
var unitDims = map[string]dim{
	"Bytes":            {dimData: 1},
	"Seconds":          {dimTime: 1},
	"Joules":           energyDim,
	"Watts":            powerDim,
	"BitsPerSecond":    {dimData: 1, dimTime: -1},
	"BytesPerSecond":   {dimData: 1, dimTime: -1},
	"BytesPerGram":     {dimData: 1, dimMass: -1},
	"Grams":            {dimMass: 1},
	"GramsPerMetre":    {dimMass: 1, dimLength: -1},
	"Metres":           {dimLength: 1},
	"MetresPerSecond":  {dimLength: 1, dimTime: -1},
	"MetresPerSecond2": {dimLength: 1, dimTime: -2},
	"USD":              {dimMoney: 1},
	"USDPerKg":         {dimMoney: 1, dimMass: -1},
	"USDPerHour":       {dimMoney: 1, dimTime: -1},
	"USDPerKWh":        {dimMoney: 1, dimTime: 2, dimMass: -1, dimLength: -2}, // $/J
	"Ratio":            {},
}

// dimval is the abstract value of one float expression.
type dimval struct {
	state int // vUnknown, vFree, vKnown
	d     dim
}

const (
	vUnknown = iota // untraceable provenance; never flags
	vFree           // a bare constant: adapts to any dimension in + and -
	vKnown          // traceable to typed quantities; d is its dimension
)

var (
	unknownVal = dimval{state: vUnknown}
	freeVal    = dimval{state: vFree}
)

func known(d dim) dimval { return dimval{state: vKnown, d: d} }

func runDimFlow(p *Pass) {
	if p.Pkg.ImportPath == p.Cfg.UnitsPackage {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, fd := range funcDecls(f) {
			df := &dimFlow{p: p, info: p.Pkg.Info, env: make(map[types.Object]dimval)}
			df.block(fd.Body)
		}
	}
}

// dimFlow is the per-function walk state: an environment of tagged
// variables, threaded through the body in source order. Branches and loop
// bodies share the environment (a single forward pass), which matches how
// the model code is written; a variable that genuinely holds different
// dimensions on different paths is itself suspect.
type dimFlow struct {
	p    *Pass
	info *types.Info
	env  map[types.Object]dimval
}

func (df *dimFlow) unitDimOf(t types.Type) (dim, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return dim{}, false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != df.p.Cfg.UnitsPackage {
		return dim{}, false
	}
	d, ok := unitDims[named.Obj().Name()]
	return d, ok
}

func isFloatBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ---- statements ----

func (df *dimFlow) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		df.stmt(s)
	}
}

func (df *dimFlow) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		df.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) == len(vs.Names) {
					for i, name := range vs.Names {
						df.set(df.info.Defs[name], df.eval(vs.Values[i]))
					}
				} else {
					for _, v := range vs.Values {
						df.eval(v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		df.eval(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			df.eval(r)
		}
	case *ast.IfStmt:
		df.stmt2(s.Init)
		df.eval(s.Cond)
		df.block(s.Body)
		df.stmt2(s.Else)
	case *ast.ForStmt:
		df.stmt2(s.Init)
		df.eval(s.Cond)
		df.block(s.Body)
		df.stmt2(s.Post)
	case *ast.RangeStmt:
		df.eval(s.X)
		df.block(s.Body)
	case *ast.SwitchStmt:
		df.stmt2(s.Init)
		df.eval(s.Tag)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					df.eval(e)
				}
				for _, st := range cc.Body {
					df.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		df.stmt2(s.Init)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					df.stmt(st)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				df.stmt2(cc.Comm)
				for _, st := range cc.Body {
					df.stmt(st)
				}
			}
		}
	case *ast.BlockStmt:
		df.block(s)
	case *ast.GoStmt:
		df.eval(s.Call)
	case *ast.DeferStmt:
		df.eval(s.Call)
	case *ast.SendStmt:
		df.eval(s.Chan)
		df.eval(s.Value)
	case *ast.IncDecStmt:
		df.eval(s.X)
	case *ast.LabeledStmt:
		df.stmt(s.Stmt)
	}
}

// stmt2 is stmt for possibly-nil positions (if/for init, select comm).
func (df *dimFlow) stmt2(s ast.Stmt) {
	if s != nil {
		df.stmt(s)
	}
}

func (df *dimFlow) assign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(as.Lhs) == len(as.Rhs) {
			vals := make([]dimval, len(as.Rhs))
			for i, r := range as.Rhs {
				vals[i] = df.eval(r)
			}
			for i, l := range as.Lhs {
				df.setExpr(l, vals[i])
			}
		} else {
			for _, r := range as.Rhs {
				df.eval(r)
			}
			for _, l := range as.Lhs {
				df.setExpr(l, unknownVal)
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		lv, rv := df.eval(as.Lhs[0]), df.eval(as.Rhs[0])
		if lv.state == vKnown && rv.state == vKnown && lv.d != rv.d {
			df.p.Report(as.TokPos, "%s %s %s mixes dimensions; both sides of %s must agree",
				lv.d, as.Tok, rv.d, as.Tok)
		}
		if lv.state == vFree && rv.state == vKnown {
			df.setExpr(as.Lhs[0], rv)
		}
	case token.MUL_ASSIGN:
		lv, rv := df.eval(as.Lhs[0]), df.eval(as.Rhs[0])
		df.setExpr(as.Lhs[0], combineMul(lv, rv))
	case token.QUO_ASSIGN:
		lv, rv := df.eval(as.Lhs[0]), df.eval(as.Rhs[0])
		df.setExpr(as.Lhs[0], combineQuo(lv, rv))
	default:
		for _, r := range as.Rhs {
			df.eval(r)
		}
		for _, l := range as.Lhs {
			df.setExpr(l, unknownVal)
		}
	}
}

func (df *dimFlow) setExpr(l ast.Expr, v dimval) {
	if id, ok := l.(*ast.Ident); ok {
		obj := df.info.Defs[id]
		if obj == nil {
			obj = df.info.Uses[id]
		}
		df.set(obj, v)
		return
	}
	df.eval(l) // index/field lvalues: walk for nested findings, no tag
}

func (df *dimFlow) set(obj types.Object, v dimval) {
	if obj == nil {
		return
	}
	df.env[obj] = v
}

// ---- expressions ----

func (df *dimFlow) eval(e ast.Expr) dimval {
	switch e := e.(type) {
	case nil:
		return unknownVal
	case *ast.ParenExpr:
		return df.eval(e.X)
	case *ast.BinaryExpr:
		return df.binary(e)
	case *ast.CallExpr:
		return df.call(e)
	case *ast.UnaryExpr:
		v := df.eval(e.X)
		if e.Op == token.ADD || e.Op == token.SUB {
			return v
		}
		return unknownVal
	case *ast.FuncLit:
		df.block(e.Body)
		return unknownVal
	}

	// Leaves and containers. Constants first: a named unit constant
	// (units.PB, units.Hour) carries its dimension; a bare literal is free
	// even when context types it (the 2 in `2*fill` is a count, not two
	// seconds).
	if tv, ok := df.info.Types[e]; ok && tv.Value != nil {
		if _, isLit := e.(*ast.BasicLit); !isLit {
			if d, ok := df.unitDimOf(tv.Type); ok {
				return known(d)
			}
		}
		return freeVal
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := df.info.Uses[e]; obj != nil {
			if v, ok := df.env[obj]; ok {
				return v
			}
		}
	case *ast.SelectorExpr:
		df.eval(e.X)
	case *ast.IndexExpr:
		df.eval(e.X)
		df.eval(e.Index)
	case *ast.SliceExpr:
		df.eval(e.X)
		df.eval(e.Low)
		df.eval(e.High)
		df.eval(e.Max)
	case *ast.StarExpr:
		df.eval(e.X)
	case *ast.TypeAssertExpr:
		df.eval(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				df.eval(kv.Value)
			} else {
				df.eval(el)
			}
		}
	}
	return unknownVal
}

func (df *dimFlow) binary(be *ast.BinaryExpr) dimval {
	vx, vy := df.eval(be.X), df.eval(be.Y)
	switch be.Op {
	case token.ADD, token.SUB:
		// String concatenation and integer arithmetic never carry tags,
		// so only traceable float operands can disagree here.
		if vx.state == vKnown && vy.state == vKnown && vx.d != vy.d {
			df.p.Report(be.OpPos, "%s %s %s mixes dimensions; both sides of %s must share one",
				vx.d, be.Op, vy.d, be.Op)
			return unknownVal
		}
		switch {
		case vx.state == vKnown:
			return vx
		case vy.state == vKnown:
			return vy
		case vx.state == vFree && vy.state == vFree:
			return freeVal
		}
		return unknownVal
	case token.MUL:
		return combineMul(vx, vy)
	case token.QUO:
		return combineQuo(vx, vy)
	}
	return unknownVal
}

// grounded maps free (a bare constant) to a known dimensionless scalar for
// multiplicative contexts: 2 × metres is metres.
func grounded(v dimval) dimval {
	if v.state == vFree {
		return known(dim{})
	}
	return v
}

func combineMul(x, y dimval) dimval {
	if x.state == vFree && y.state == vFree {
		return freeVal
	}
	x, y = grounded(x), grounded(y)
	if x.state != vKnown || y.state != vKnown {
		return unknownVal
	}
	return known(x.d.add(y.d))
}

func combineQuo(x, y dimval) dimval {
	if x.state == vFree && y.state == vFree {
		return freeVal
	}
	x, y = grounded(x), grounded(y)
	if x.state != vKnown || y.state != vKnown {
		return unknownVal
	}
	return known(x.d.sub(y.d))
}

func (df *dimFlow) call(call *ast.CallExpr) dimval {
	// Evaluate arguments first: nested violations surface regardless of
	// what the call itself means.
	args := make([]dimval, len(call.Args))
	for i, a := range call.Args {
		args[i] = df.eval(a)
	}

	// Conversions.
	if tv, ok := df.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if d, ok := df.unitDimOf(tv.Type); ok {
			// Re-wrap into a unit type: the computed dimension must
			// match the target's.
			if args[0].state == vKnown && args[0].d != d {
				named := tv.Type.(*types.Named)
				df.p.Report(call.Pos(), "wrapping a %s value in units.%s (%s) bends dimensions; fix the formula or the target type",
					args[0].d, named.Obj().Name(), d)
			}
			return known(d)
		}
		if isFloatBasic(tv.Type) {
			// float64(x): a typed quantity donates its dimension; a
			// float-to-float conversion passes the tag through.
			if d, ok := df.unitDimOf(df.info.TypeOf(call.Args[0])); ok {
				return known(d)
			}
			return args[0]
		}
		return unknownVal
	}

	if fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		fn, ok := df.info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return df.resultDim(call)
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return df.resultDim(call)
		}
		// A no-arg float64 accessor on a unit type (t.Hours(), b.GBf(),
		// e.KJ()) yields the receiver's dimension at a different scale.
		if sig.Recv() != nil && len(call.Args) == 0 &&
			sig.Results().Len() == 1 && isFloatBasic(sig.Results().At(0).Type()) {
			recv := sig.Recv().Type()
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
			}
			if d, ok := df.unitDimOf(recv); ok {
				return known(d)
			}
			return unknownVal
		}
		switch fn.Pkg().Path() {
		case "math":
			switch fn.Name() {
			case "Abs":
				if len(args) == 1 {
					return args[0]
				}
			case "Min", "Max":
				if len(args) == 2 {
					x, y := grounded(args[0]), grounded(args[1])
					if x.state == vKnown && y.state == vKnown && x.d == y.d {
						return x
					}
				}
			case "Sqrt":
				if len(args) == 1 {
					if args[0].state == vFree {
						return freeVal
					}
					if args[0].state == vKnown {
						if half, ok := args[0].d.halve(); ok {
							return known(half)
						}
					}
				}
			}
		case df.p.Cfg.UnitsPackage:
			if fn.Name() == "GBPerJoule" {
				return known(dim{dimData: 1}.sub(energyDim))
			}
		}
	}
	return df.resultDim(call)
}

// resultDim tags a call by its static result type: a function whose single
// result is a unit type (units.Energy, a .Cost helper) delivers that
// dimension by construction, whatever its body does.
func (df *dimFlow) resultDim(call *ast.CallExpr) dimval {
	if d, ok := df.unitDimOf(df.info.TypeOf(call)); ok {
		return known(d)
	}
	return unknownVal
}
