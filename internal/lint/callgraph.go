package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// The call graph is the substrate for the module-level passes: every
// function declaration in the loaded packages is a node, every static call
// or reference from one module function to another is an edge, and every
// reach into ambient state (wall clock, global RNG, environment, an
// order-sensitive map range) is a taint source pinned to the node that
// contains it. Function literals are attributed to their enclosing
// declaration, so a source inside a closure taints the declaring function.
//
// Limitations, by construction: calls through interface methods and
// function values are not resolved (no edge), so taint does not propagate
// through them — the intra-package determinism rule still catches direct
// ambient reads wherever they occur.

// CallGraph is the module-wide static call graph over the loaded packages.
type CallGraph struct {
	cfg   *Config
	fset  *token.FileSet
	nodes map[*types.Func]*cgNode
	order []*cgNode // deterministic: package input order, then position
}

type cgNode struct {
	fn      *types.Func
	pkg     *Package
	decl    *ast.FuncDecl
	calls   []cgEdge
	sources []taintSource

	// BFS state filled in by runPurity: distance to the nearest ambient
	// source, the next hop toward it, and the source reached.
	dist   int
	via    *cgNode
	source *taintSource
}

// cgEdge is one static call (or function-value reference) site.
type cgEdge struct {
	callee *types.Func
	pos    token.Pos
}

// taintSource is one direct reach into ambient state.
type taintSource struct {
	desc string // e.g. "time.Now (wall clock)"
	rule string // the intra-package rule whose allow also silences this seed
	pos  token.Pos
}

// Graph loads the import paths and builds their call graph — the `-graph`
// debug entry point of cmd/dhllint.
func Graph(cfg Config, importPaths []string) (*CallGraph, error) {
	ld := NewLoader(cfg.ModuleRoot, cfg.ModulePath)
	pkgs := make([]*Package, 0, len(importPaths))
	for _, ip := range importPaths {
		pkg, err := ld.Load(ip)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", ip, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return buildCallGraph(&cfg, pkgs), nil
}

func buildCallGraph(cfg *Config, pkgs []*Package) *CallGraph {
	g := &CallGraph{cfg: cfg, nodes: make(map[*types.Func]*cgNode)}
	if len(pkgs) > 0 {
		g.fset = pkgs[0].Fset
	}
	// First pass: one node per function declaration.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, fd := range funcDecls(f) {
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{fn: fn, pkg: pkg, decl: fd, dist: -1}
				g.nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	// Second pass: edges and taint sources from each body.
	for _, n := range g.order {
		g.scanBody(n)
	}
	return g
}

// scanBody records, for one function declaration, every call/reference to
// another module function and every direct ambient-state reach.
func (g *CallGraph) scanBody(n *cgNode) {
	info := n.pkg.Info
	seenEdge := map[*types.Func]map[token.Pos]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		fn = fn.Origin()
		if g.isModuleFunc(fn) {
			if fn != n.fn { // ignore self-recursion edges
				if seenEdge[fn] == nil {
					seenEdge[fn] = map[token.Pos]bool{}
				}
				if !seenEdge[fn][id.Pos()] {
					seenEdge[fn][id.Pos()] = true
					n.calls = append(n.calls, cgEdge{callee: fn, pos: id.Pos()})
				}
			}
			return true
		}
		if desc := ambientSource(fn); desc != "" {
			n.sources = append(n.sources, taintSource{desc: desc, rule: "determinism", pos: id.Pos()})
		}
		return true
	})
	// Map ranges whose body is iteration-order-sensitive are ambient
	// state too: the traversal order changes run to run.
	for _, r := range orderSensitiveRanges(info, n.decl) {
		n.sources = append(n.sources, taintSource{
			desc: fmt.Sprintf("map iteration order (%s)", r.reason),
			rule: "maporder",
			pos:  r.pos,
		})
	}
	sort.Slice(n.sources, func(i, j int) bool { return n.sources[i].pos < n.sources[j].pos })
}

func (g *CallGraph) isModuleFunc(fn *types.Func) bool {
	path := fn.Pkg().Path()
	return path == g.cfg.ModulePath || strings.HasPrefix(path, g.cfg.ModulePath+"/")
}

// ambientSource classifies a non-module function as an ambient-state
// source, returning a human-readable description or "". The set mirrors
// the determinism analyzer: wall clock, global math/rand draws, and
// environment reads. Methods never qualify — a seeded *rand.Rand's Float64
// is the sanctioned idiom.
func ambientSource(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return fmt.Sprintf("time.%s (wall clock)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			return fmt.Sprintf("rand.%s (global random source)", fn.Name())
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return fmt.Sprintf("os.%s (environment read)", fn.Name())
		}
	}
	return ""
}

// shortName renders a function for chains and dumps: the package path with
// the module prefix trimmed, then the receiver (if any) and name.
func (g *CallGraph) shortName(fn *types.Func) string {
	pkgPath := strings.TrimPrefix(fn.Pkg().Path(), g.cfg.ModulePath+"/")
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return pkgPath + "." + name
}

// relPos renders pos relative to the module root.
func (g *CallGraph) relPos(pos token.Pos) string {
	p := g.fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(g.cfg.ModuleRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// Dump writes the graph in a stable text form: a summary line, one
// `caller -> callee (pos)` line per edge, and one `fn => source (pos)`
// line per ambient seed, all sorted.
func (g *CallGraph) Dump(w io.Writer) {
	edges, seeds := 0, 0
	var lines []string
	for _, n := range g.order {
		for _, e := range n.calls {
			edges++
			lines = append(lines, fmt.Sprintf("%s -> %s (%s)", g.shortName(n.fn), g.shortName(e.callee), g.relPos(e.pos)))
		}
		for _, s := range n.sources {
			seeds++
			lines = append(lines, fmt.Sprintf("%s => %s (%s)", g.shortName(n.fn), s.desc, g.relPos(s.pos)))
		}
	}
	sort.Strings(lines)
	fmt.Fprintf(w, "# call graph: %d functions, %d edges, %d ambient sources\n", len(g.order), edges, seeds)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
