package lint

import (
	"go/ast"
	"go/types"
)

// Determinism forbids ambient nondeterminism in model code. The sweep
// engine's byte-identity guarantee (parallel == sequential) holds only if
// every model evaluation is a pure function of its inputs: no wall clock,
// no global-source randomness, no environment reads. Randomness must come
// from a seeded *rand.Rand threaded through a constructor; time must come
// from the simulation engine's virtual clock.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no time.Now, global-source rand, or env reads in model packages",
	Run:  runDeterminism,
}

// seededConstructors are the math/rand entry points that take an explicit
// seed or source and are therefore deterministic.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded generators.
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	if !p.Cfg.isModelPackage(p.Pkg.ImportPath) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. a seeded rand.Rand's Float64) are fine; only
			// package-level functions reach ambient state.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					p.Report(id.Pos(), "time.%s reads the wall clock; model code must take time from the simulation engine or an injected clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					p.Report(id.Pos(), "rand.%s draws from the global source; thread a seeded *rand.Rand through the constructor instead", fn.Name())
				}
			case "os":
				switch fn.Name() {
				case "Getenv", "LookupEnv", "Environ":
					p.Report(id.Pos(), "os.%s makes model output depend on the environment; pass configuration explicitly", fn.Name())
				}
			}
			return true
		})
	}
}
