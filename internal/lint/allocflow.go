package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The allocflow pass statically guards the model's zero-allocation hot
// paths. A function opts in with a //dhllint:hotpath comment directive on
// its declaration; the pass then verifies that neither the function body
// nor anything it transitively calls (over the module call graph the
// purity pass also uses) can allocate in steady state.
//
// Allocation sites are classified from the go/types-resolved AST:
// make/new, growing append, escaping composite literals (&T{…}, slice and
// map literals), string concatenation, allocating conversions
// (string↔[]byte/[]rune, int→string), interface boxing of non-pointer-
// shaped concrete values, capturing closures, map writes, variadic
// ...interface{} argument slices, go statements, and calls into a curated
// set of stdlib functions that allocate by contract (fmt.*, errors.New,
// strconv formatters, …).
//
// Deliberate exemptions keep the pass aligned with what the compiler and
// runtime actually do: x = append(x, …) is the amortised-growth idiom
// (within capacity after warm-up, the invariant hotpath_allocs_test.go
// pins dynamically); constant-folded concatenations and conversions cost
// nothing; boxing a constant or a pointer-shaped value (pointer, map,
// chan, func) does not allocate; non-capturing closures are static; and
// variadic calls with a non-interface element type keep their argument
// slice on the caller's stack.
//
// Justified cold branches — error returns, lazy first-use growth — are
// silenced in place with //dhllint:allow allocflow; an allowed site
// neither reports nor seeds taint, so a hot function whose only
// allocations are justified stays callable from other hot paths.
//
// Limitations, shared with purity: calls through interface methods and
// function values are not resolved, and uncurated third-party functions
// are assumed allocation-free — the dynamic AllocsPerRun tests backstop
// both gaps.

// hotpathDirective marks a function whose steady-state execution must be
// allocation-free.
const hotpathDirective = "//dhllint:hotpath"

// allocSite is one reason a function may allocate.
type allocSite struct {
	desc string
	pos  token.Pos
}

// isHotpath reports whether fd carries the //dhllint:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// runAllocFlow verifies every //dhllint:hotpath function: classify each
// function's allocation sites, propagate "may allocate" backwards over the
// call graph, and report every surviving site or tainted call reachable
// from an annotated root, with the shortest site→root chain.
func runAllocFlow(cfg *Config, g *CallGraph, allows *allowIndex) []Diagnostic {
	// Classify sites, dropping those justified in place: an allowed site
	// is consumed immediately (so the allow never reads as unused) and
	// neither reports nor seeds taint.
	sites := make(map[*cgNode][]allocSite)
	for _, n := range g.order {
		for _, s := range g.allocSites(n) {
			pos := g.fset.Position(s.pos)
			if e := allows.lookup(pos.Filename, pos.Line, "allocflow"); e != nil {
				e.used = true
				continue
			}
			sites[n] = append(sites[n], s)
		}
	}

	// Shortest-path reverse BFS from the surviving sites. The cgNode
	// dist/via/source fields belong to the purity pass (both passes share
	// one graph), so this pass keeps its search state in local maps.
	callers := make(map[*cgNode][]*cgNode)
	for _, n := range g.order {
		for _, e := range n.calls {
			if callee := g.nodes[e.callee]; callee != nil {
				callers[callee] = append(callers[callee], n)
			}
		}
	}
	dist := make(map[*cgNode]int)
	via := make(map[*cgNode]*cgNode)
	siteOf := make(map[*cgNode]*allocSite)
	var queue []*cgNode
	for _, n := range g.order {
		if ss := sites[n]; len(ss) > 0 {
			dist[n] = 0
			siteOf[n] = &ss[0] // representative: first site by position
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range callers[n] {
			if _, seen := dist[caller]; seen {
				continue
			}
			dist[caller] = dist[n] + 1
			via[caller] = n
			queue = append(queue, caller)
		}
	}

	var out []Diagnostic
	for _, n := range g.order {
		if !isHotpath(n.decl) {
			continue
		}
		pass := &Pass{Cfg: cfg, Pkg: n.pkg, rule: "allocflow", allows: allows, out: &out}
		name := g.shortName(n.fn)
		for i := range sites[n] {
			s := &sites[n][i]
			chain := []string{fmt.Sprintf("%s (%s)", s.desc, g.relPos(s.pos))}
			pass.reportChain(s.pos, chain, "hot path %s allocates: %s", name, s.desc)
		}
		for _, e := range n.calls {
			callee := g.nodes[e.callee]
			if callee == nil {
				continue
			}
			if _, tainted := dist[callee]; !tainted {
				continue
			}
			chain := g.allocChain(callee, via, siteOf)
			pass.reportChain(e.pos, chain,
				"hot path %s calls %s, which allocates: %s",
				name, g.shortName(e.callee), chainArrow(chain))
		}
	}
	return out
}

// allocChain renders the shortest call chain from a tainted callee down to
// the allocation site seeding it, one "name (file:line)" frame per hop
// with the site itself as the final frame.
func (g *CallGraph) allocChain(n *cgNode, via map[*cgNode]*cgNode, siteOf map[*cgNode]*allocSite) []string {
	var chain []string
	for hop := n; hop != nil; hop = via[hop] {
		chain = append(chain, fmt.Sprintf("%s (%s)", g.shortName(hop.fn), g.relPos(hop.decl.Pos())))
		if via[hop] == nil {
			if s := siteOf[hop]; s != nil {
				chain = append(chain, fmt.Sprintf("%s (%s)", s.desc, g.relPos(s.pos)))
			}
		}
	}
	return chain
}

// allocSites classifies every potential allocation in one function body,
// in position order.
func (g *CallGraph) allocSites(n *cgNode) []allocSite {
	info := n.pkg.Info
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{desc: fmt.Sprintf(format, args...), pos: pos})
	}
	body := n.decl.Body
	selfAppend := selfAppendCalls(body)

	// Function literals in lexical (pre-order) entry order, so a return
	// statement can be matched to its innermost enclosing signature.
	type litScope struct {
		lit *ast.FuncLit
		sig *types.Signature
	}
	var lits []litScope
	enclosingSig := func(pos token.Pos) *types.Signature {
		for i := len(lits) - 1; i >= 0; i-- {
			if lits[i].lit.Pos() <= pos && pos <= lits[i].lit.End() {
				return lits[i].sig
			}
		}
		sig, _ := n.fn.Type().(*types.Signature)
		return sig
	}

	ast.Inspect(body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.CallExpr:
			g.scanCall(info, e, selfAppend, add)
		case *ast.BinaryExpr:
			// Non-constant string concatenation builds a new backing array.
			if e.Op == token.ADD {
				tv := info.Types[e]
				if tv.Value == nil && isStringType(tv.Type) {
					add(e.Pos(), "string concatenation")
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e.Pos(), "escaping composite literal &%s{}", compositeName(cl))
				}
			}
		case *ast.CompositeLit:
			// Plain struct/array values live in their enclosing frame;
			// slice and map literals always carry a backing allocation.
			if t := info.Types[e].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(e.Pos(), "slice literal")
				case *types.Map:
					add(e.Pos(), "map literal")
				}
			}
		case *ast.GoStmt:
			add(e.Pos(), "go statement (new goroutine)")
		case *ast.FuncLit:
			sig, _ := info.Types[e].Type.(*types.Signature)
			lits = append(lits, litScope{lit: e, sig: sig})
			if closureCaptures(info, e, n.decl) {
				add(e.Pos(), "capturing closure")
			}
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.Types[ix.X].Type; t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							add(lhs.Pos(), "map write")
						}
					}
				}
				if len(e.Lhs) == len(e.Rhs) {
					g.checkBoxing(info, e.Rhs[i], assignTargetType(info, lhs), add)
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				if t := info.Types[ix.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						add(e.Pos(), "map write")
					}
				}
			}
		case *ast.ValueSpec:
			// var x I = concrete — boxing at declared-type bindings. (With
			// no declared type the variable's type is the value's own, so
			// no conversion happens.)
			if e.Type != nil && len(e.Values) > 0 {
				if t := info.Types[e.Type].Type; t != nil {
					for _, v := range e.Values {
						g.checkBoxing(info, v, t, add)
					}
				}
			}
		case *ast.ReturnStmt:
			sig := enclosingSig(e.Pos())
			if sig != nil && len(e.Results) == sig.Results().Len() {
				for i, r := range e.Results {
					g.checkBoxing(info, r, sig.Results().At(i).Type(), add)
				}
			}
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// scanCall classifies one call expression: allocating builtins,
// allocating conversions, known-allocating stdlib calls, variadic
// interface argument slices, and interface boxing of fixed arguments.
func (g *CallGraph) scanCall(info *types.Info, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool, add func(token.Pos, string, ...any)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make(%s)", types.ExprString(call.Args[0]))
			case "new":
				add(call.Pos(), "new(%s)", types.ExprString(call.Args[0]))
			case "append":
				if !selfAppend[call] {
					add(call.Pos(), "growing append")
				}
			}
			return
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		// Conversion. Constant-folded ones (info records a value for the
		// whole expression) cost nothing.
		if len(call.Args) == 1 && info.Types[call].Value == nil {
			from := info.Types[call.Args[0]].Type
			if from != nil && conversionAllocates(tv.Type, from) {
				add(call.Pos(), "allocating conversion %s(%s)",
					types.ExprString(fun), typeString(from))
			}
		}
		return
	}
	if callee := calleeFunc(info, fun); callee != nil && callee.Pkg() != nil &&
		!g.isModuleFunc(callee) && knownAllocating(callee) {
		// One site per call: the callee's own formatting/allocation
		// subsumes the boxing of the arguments passed to it.
		add(call.Pos(), "%s.%s (allocates)", callee.Pkg().Name(), callee.Name())
		return
	}
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		elem := sig.Params().At(fixed).Type().(*types.Slice).Elem()
		// A variadic ...interface{} call materialises a boxed argument
		// slice (the fmt.* shape). Non-interface element types keep the
		// slice on the caller's stack; xs... forwards an existing slice.
		if types.IsInterface(elem) && !call.Ellipsis.IsValid() && len(call.Args) > fixed {
			add(call.Pos(), "variadic ...%s argument slice", typeString(elem))
		}
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break
		}
		g.checkBoxing(info, arg, sig.Params().At(i).Type(), add)
	}
}

// checkBoxing records an interface-boxing site when a concrete value
// flows into an interface-typed slot. Exempt: interface-to-interface
// assignment, nil, constants (the compiler materialises them statically),
// and pointer-shaped types (pointer, map, chan, func), which fit the
// interface word directly.
func (g *CallGraph) checkBoxing(info *types.Info, e ast.Expr, to types.Type, add func(token.Pos, string, ...any)) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return
	}
	from := tv.Type
	if types.IsInterface(from) || isUntypedNil(from) || pointerShaped(from) {
		return
	}
	add(e.Pos(), "interface boxing (%s → %s)", typeString(from), typeString(to))
}

// selfAppendCalls finds the append calls in `x = append(x, …)` form — the
// amortised-growth idiom, exempt because steady-state appends stay within
// capacity after warm-up (the dynamic AllocsPerRun tests pin that).
func selfAppendCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			out[call] = true
		}
		return true
	})
	return out
}

// closureCaptures reports whether lit references a variable declared in
// the enclosing function outside the literal itself — the case where the
// closure needs a heap-allocated environment. Non-capturing literals are
// static values.
func closureCaptures(info *types.Info, lit *ast.FuncLit, decl *ast.FuncDecl) bool {
	captured := false
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if captured {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}

// conversionAllocates reports whether converting from → to copies into a
// fresh backing array: []byte/[]rune/rune/int → string and
// string → []byte/[]rune. Same-representation conversions (string→string,
// numeric, named↔underlying) are free.
func conversionAllocates(to, from types.Type) bool {
	if isStringType(to) {
		return !isStringType(from)
	}
	if isStringType(from) {
		if sl, ok := to.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok {
				return b.Kind() == types.Uint8 || b.Kind() == types.Int32
			}
		}
	}
	return false
}

// knownAllocating classifies non-module stdlib functions that allocate by
// contract. Methods never qualify (mirroring ambientSource); the set is
// curated, not exhaustive — uncurated calls are assumed clean, with the
// dynamic hot-path tests as the backstop.
func knownAllocating(fn *types.Func) bool {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		// Every fmt entry point formats through an allocating printer.
		return true
	case "errors":
		return fn.Name() == "New" || fn.Name() == "Join"
	case "strconv":
		switch fn.Name() {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote":
			return true
		}
	case "strings":
		switch fn.Name() {
		case "Join", "Repeat", "Split", "SplitN", "Fields", "Replace", "ReplaceAll", "ToUpper", "ToLower":
			return true
		}
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Strings":
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function object, if the callee is a
// direct identifier or selector (method/package function).
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// callSignature returns the signature a call invokes, or nil for builtins
// and conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// assignTargetType resolves the static type of an assignment LHS: the
// declared type for := definitions, the expression type otherwise.
func assignTargetType(info *types.Info, lhs ast.Expr) types.Type {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[lhs]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit an interface's data word
// without a heap copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// compositeName renders a composite literal's type for diagnostics.
func compositeName(cl *ast.CompositeLit) string {
	if cl.Type == nil {
		return "composite"
	}
	return types.ExprString(cl.Type)
}

// typeString renders a type with package-name (not path) qualifiers, to
// keep diagnostics short.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
