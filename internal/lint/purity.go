package lint

import (
	"fmt"
	"strings"
)

// The purity pass is the interprocedural half of the determinism story.
// The intra-package determinism rule flags a model function that calls
// time.Now directly; this pass flags the model function that reaches it
// through any number of helpers — including helpers in non-model packages,
// where the determinism rule deliberately stays quiet. Taint seeds at the
// ambient sources recorded in the call graph (wall clock, global RNG,
// environment reads, order-sensitive map ranges) and propagates backwards
// over call edges; every call site in a model package whose callee is
// tainted is reported with the full source→sink chain.
//
// Seeds can be silenced at the source with //dhllint:allow purity (or the
// matching intra-package rule: determinism for ambient reads, maporder for
// map ranges) — a justified source does not taint its callers.

// runPurity computes taint over the call graph and reports tainted call
// sites in model packages. Runs after the per-package pool, sequentially.
func runPurity(cfg *Config, g *CallGraph, allows *allowIndex) []Diagnostic {
	// Seed the BFS at every node with an unsuppressed ambient source.
	// Reverse adjacency: who calls whom.
	callers := make(map[*cgNode][]*cgNode)
	for _, n := range g.order {
		for _, e := range n.calls {
			if callee := g.nodes[e.callee]; callee != nil {
				callers[callee] = append(callers[callee], n)
			}
		}
	}
	var queue []*cgNode
	for _, n := range g.order {
		for i := range n.sources {
			s := &n.sources[i]
			if g.seedSuppressed(n, s, allows) {
				continue
			}
			n.dist, n.source = 0, s
			queue = append(queue, n)
			break
		}
	}
	// Deterministic multi-source BFS: order[] is deterministic, and each
	// node's caller list is built in deterministic order, so dist/via
	// assignments are reproducible run to run.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range callers[n] {
			if caller.dist >= 0 {
				continue
			}
			caller.dist, caller.via = n.dist+1, n
			queue = append(queue, caller)
		}
	}

	var out []Diagnostic
	for _, n := range g.order {
		if !cfg.isModelPackage(n.pkg.ImportPath) {
			continue
		}
		for _, e := range n.calls {
			callee := g.nodes[e.callee]
			if callee == nil || callee.dist < 0 {
				continue
			}
			chain, src := g.chainFrom(callee)
			pass := &Pass{Cfg: cfg, Pkg: n.pkg, rule: "purity", allows: allows, out: &out}
			pass.reportChain(e.pos, chain,
				"%s transitively reaches %s: %s; model code must be a pure function of its inputs",
				g.shortName(e.callee), src, chainArrow(chain))
		}
	}
	return out
}

// seedSuppressed reports whether an ambient source is justified in place:
// an allow for "purity" at the source line, or for the intra-package rule
// that owns the construct (determinism in model packages, maporder for map
// ranges). A consumed allow is marked used.
func (g *CallGraph) seedSuppressed(n *cgNode, s *taintSource, allows *allowIndex) bool {
	pos := g.fset.Position(s.pos)
	if e := allows.lookup(pos.Filename, pos.Line, "purity"); e != nil {
		e.used = true
		return true
	}
	if s.rule == "maporder" {
		if e := allows.lookup(pos.Filename, pos.Line, "maporder"); e != nil {
			return true
		}
	}
	// An ambient read in a model package carries a determinism allow when
	// justified; honour it here too so the justification silences both
	// the direct report and the transitive ones.
	if s.rule == "determinism" && g.cfg.isModelPackage(n.pkg.ImportPath) {
		if e := allows.lookup(pos.Filename, pos.Line, "determinism"); e != nil {
			return true
		}
	}
	return false
}

// chainFrom renders the shortest call chain from a tainted node to its
// ambient source: one frame per function, innermost last, followed by the
// source itself. Returns the frames and the source description.
func (g *CallGraph) chainFrom(n *cgNode) (chain []string, src string) {
	for hop := n; hop != nil; hop = hop.via {
		chain = append(chain, fmt.Sprintf("%s (%s)", g.shortName(hop.fn), g.relPos(hop.decl.Pos())))
		if hop.via == nil && hop.source != nil {
			src = hop.source.desc
			chain = append(chain, fmt.Sprintf("%s (%s)", src, g.relPos(hop.source.pos)))
		}
	}
	return chain, src
}

// chainArrow compacts chain frames into "a → b → c" using just the names.
func chainArrow(chain []string) string {
	names := make([]string, len(chain))
	for i, frame := range chain {
		if j := strings.IndexByte(frame, '('); j > 0 {
			names[i] = strings.TrimSpace(frame[:j])
		} else {
			names[i] = frame
		}
	}
	return strings.Join(names, " → ")
}
