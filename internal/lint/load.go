package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, with the syntax and type
// information the analyzers consume.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks module packages on demand, resolving
// module-internal imports recursively and standard-library imports through
// the toolchain's export data (falling back to type-checking the stdlib
// from source). Pure stdlib: go/parser + go/types + go/importer.
type Loader struct {
	fset    *token.FileSet
	root    string
	modpath string
	gc      types.Importer
	src     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module at root with the given module
// path.
func NewLoader(root, modpath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		modpath: modpath,
		gc:      importer.ForCompiler(fset, "gc", nil),
		src:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

func (l *Loader) isModulePath(path string) bool {
	return path == l.modpath || strings.HasPrefix(path, l.modpath+"/")
}

func (l *Loader) dirFor(path string) string {
	if path == l.modpath {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
}

// Load returns the type-checked package for a module import path,
// memoized across calls.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.dirFor(importPath)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(l.importDep),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// importDep resolves one import for the type checker.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isModulePath(path) {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if pkg, err := l.gc.Import(path); err == nil {
		return pkg, nil
	}
	return l.src.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// parseDir parses the non-test Go files directly in dir (no recursion),
// keeping comments so the //dhllint:allow escape hatch is visible.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// A directory may legally hold one extra package (e.g. an
		// ignored tool); keep the first package seen and its files.
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// ModulePackages walks the module tree and returns the import path of
// every package directory, skipping testdata, hidden, and underscore
// directories. Paths come back sorted.
func ModulePackages(root, modpath string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, ".") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, modpath)
		} else {
			out = append(out, modpath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
