// Package allocflowbad is a lint fixture: //dhllint:hotpath functions
// whose bodies or callees allocate — one direct site per kind the
// allocflow pass classifies, plus a transitive violation visible only
// through the call graph.
package allocflowbad

import "fmt"

// format is the allocation leaf: fmt.Sprintf allocates by contract.
func format(n int) string {
	return fmt.Sprintf("cart-%d", n)
}

// describe is the middle hop: no sites of its own.
func describe(n int) string {
	return format(n)
}

// HotChain reaches the allocation through two levels of helpers:
// HotChain → describe → format → fmt.Sprintf.
//
//dhllint:hotpath
func HotChain(n int) string {
	return describe(n)
}

// HotDirect allocates in place, one site per kind on its own line.
//
//dhllint:hotpath
func HotDirect(xs []int, n int) int {
	buf := make([]int, 4)
	grown := append(xs, n)
	var boxed interface{} = n
	m := map[string]int{"a": 1}
	m["b"] = n
	_ = boxed
	return len(buf) + len(grown) + len(m)
}
