// Package goroutinebad is a lint fixture: stray concurrency and the
// classic WaitGroup race.
package goroutinebad

import "sync"

// FanOut spawns goroutines outside the sweep pool AND calls Add inside
// the spawned closure, after Wait may already have returned.
func FanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		go func() {
			wg.Add(1)
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}

// Background launches a plain goroutine.
func Background(f func()) {
	go f()
}

// Deferred spawns through a single-assignment function-value binding:
// the Add race must still be visible behind the indirection.
func Deferred(job func()) {
	var wg sync.WaitGroup
	f := func() {
		wg.Add(1)
		defer wg.Done()
		job()
	}
	go f()
	wg.Wait()
}
