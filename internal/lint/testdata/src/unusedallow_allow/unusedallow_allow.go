// Package unusedallowallow is a lint fixture: an unused allow kept alive
// deliberately with an unusedallow cover, next to one with no cover.
package unusedallowallow

// Kept documents a deliberately retained stale allow: the unusedallow
// cover on the line above suppresses the staleness report.
func Kept(a, b float64) float64 {
	//dhllint:allow unusedallow -- fixture: retired comparison documented on purpose
	//dhllint:allow floateq -- stale but deliberately retained
	return a + b
}

// Dangling is still reported: nothing covers the stale allow.
func Dangling(a, b float64) float64 {
	//dhllint:allow floateq -- stale with no unusedallow cover
	return a - b
}
