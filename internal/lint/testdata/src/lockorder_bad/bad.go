// Package lockorderbad is a lint fixture: two lock-acquisition cycles,
// one between sibling Lock calls and one visible only through a call —
// the classic AB/BA deadlock in both its direct and transitive shapes.
package lockorderbad

import "sync"

// pair is two locks acquired in inconsistent order by sibling methods.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// AB acquires a then b.
func (p *pair) AB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

// BA acquires b then a: the reverse edge closes the cycle.
func (p *pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}

// qr cycles transitively: Q holds q across a call that acquires r,
// while R holds r across a direct acquisition of q.
type qr struct {
	q sync.Mutex
	r sync.Mutex
}

// lockR acquires r on behalf of its callers.
func (x *qr) lockR() {
	x.r.Lock()
	x.r.Unlock()
}

// Q holds q across the call that acquires r: the q→r edge is only
// visible through the call graph.
func (x *qr) Q() {
	x.q.Lock()
	defer x.q.Unlock()
	x.lockR()
}

// R acquires q while holding r: the r→q edge.
func (x *qr) R() {
	x.r.Lock()
	defer x.r.Unlock()
	x.q.Lock()
	x.q.Unlock()
}
