// Package lockorderallow is a lint fixture for the escape hatch on the
// lockorder rule: a known, justified ordering inversion (the reverse
// path only runs single-threaded) silenced at the edge the cycle report
// anchors on, plus a stale allow for unusedallow to find.
package lockorderallow

import "sync"

// pair inverts its acquisition order between Forward and Reverse.
type pair struct {
	fwd sync.Mutex
	rev sync.Mutex
}

// Forward acquires fwd then rev; the cycle report anchors on this edge.
func (p *pair) Forward() {
	p.fwd.Lock()
	defer p.fwd.Unlock()
	//dhllint:allow lockorder -- fixture: Reverse only runs during single-threaded shutdown, so the inversion cannot deadlock
	p.rev.Lock()
	defer p.rev.Unlock()
}

// Reverse acquires rev then fwd.
func (p *pair) Reverse() {
	p.rev.Lock()
	defer p.rev.Unlock()
	p.fwd.Lock()
	p.fwd.Unlock()
}

// Stale carries an allow that suppresses nothing.
func (p *pair) Stale() {
	//dhllint:allow lockorder -- fixture: no acquisition cycle on this line
	p.fwd.Lock()
	p.fwd.Unlock()
}
