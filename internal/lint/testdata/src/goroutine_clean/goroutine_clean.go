// Package goroutineclean is a lint fixture: correct WaitGroup discipline
// in a package where goroutines are allowed (the test config whitelists
// this path, as the default config whitelists internal/sweep). Zero
// diagnostics expected under that config.
package goroutineclean

import "sync"

// Pool runs jobs with Add called before each go statement.
func Pool(jobs []func()) {
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job()
		}()
	}
	wg.Wait()
}
