// Package allocflowclean is a lint fixture: hot-path code written in the
// exempt idioms — amortised self-append, value composites, pointer-shaped
// and constant boxing, variadic non-interface arguments — that must
// produce no allocflow diagnostics.
package allocflowclean

// Ring is a reusable buffer.
type Ring struct {
	buf []int
}

// Push appends in x = append(x, …) form: the amortised-growth idiom,
// within capacity in steady state.
//
//dhllint:hotpath
func (r *Ring) Push(v int) {
	r.buf = append(r.buf, v)
}

// sum is a pure helper with no allocation sites.
func sum(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}

// Total only calls clean helpers.
//
//dhllint:hotpath
func Total(r *Ring) int {
	return sum(r.buf)
}

// point is a plain value composite: it lives in its frame.
type point struct{ x, y int }

// Shift builds value composites and boxes only pointer-shaped and
// constant values, none of which allocate.
//
//dhllint:hotpath
func Shift(p *point, dx int) point {
	q := point{x: p.x + dx, y: p.y}
	var viaPointer interface{} = p
	var viaConst interface{} = "tag"
	_, _ = viaPointer, viaConst
	return q
}

// kv mirrors the telemetry annotation shape.
type kv struct{ k, v string }

// record takes variadic non-interface arguments: the argument slice
// stays on the caller's stack.
func record(args ...kv) int { return len(args) }

// Annotate passes value composites through a non-interface variadic.
//
//dhllint:hotpath
func Annotate() int {
	return record(kv{k: "dir", v: "out"}, kv{k: "op", v: "open"})
}
