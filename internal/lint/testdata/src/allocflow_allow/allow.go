// Package allocflowallow is a lint fixture for the escape hatch on the
// allocflow rule: a justified in-place allow (the site stops seeding
// taint, so hot callers stay clean), a call-site allow over a tainted
// helper, and a stale allow that suppresses nothing — which unusedallow
// must report.
package allocflowallow

// lazy grows its table on first use; the in-place allow kills the seed.
type lazy struct {
	table []int
}

// get is hot despite the lazy branch: the growth is justified cold.
//
//dhllint:hotpath
func (l *lazy) get(i int) int {
	if l.table == nil {
		//dhllint:allow allocflow -- fixture: one-time lazy growth, not steady state
		l.table = make([]int, 16)
	}
	return l.table[i]
}

// ViaAllowed reaches only the allowed site: clean.
//
//dhllint:hotpath
func ViaAllowed(l *lazy) int {
	return l.get(0)
}

// build allocates with no allow: tainted.
func build(n int) []int {
	return make([]int, n)
}

// ColdCall justifies the tainted call at the call site; taint still
// flows through build, but this report is suppressed.
//
//dhllint:hotpath
func ColdCall(n int) []int {
	//dhllint:allow allocflow -- fixture: rebuild happens once per epoch, off the steady path
	return build(n)
}

// Stale carries an allow that suppresses nothing.
func Stale(x int) int {
	//dhllint:allow allocflow -- fixture: nothing here allocates
	return x + 1
}
