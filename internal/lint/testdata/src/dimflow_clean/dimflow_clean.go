// Package dimflowclean is a lint fixture: dimensionally sound float64
// arithmetic downstream of unit conversions. Zero diagnostics expected.
package dimflowclean

import (
	"math"

	"repro/internal/units"
)

// TransferPower divides energy by time: a power, wrapped as one.
func TransferPower(e units.Joules, t units.Seconds) units.Watts {
	return units.Watts(float64(e) / float64(t))
}

// BrakingDistance is v²/(2a): a length.
func BrakingDistance(v units.MetresPerSecond, a units.MetresPerSecond2) units.Metres {
	return units.Metres(float64(v) * float64(v) / (2 * float64(a)))
}

// TopSpeed is √(2·a·d): the square root halves the vector back to a
// speed.
func TopSpeed(a units.MetresPerSecond2, d units.Metres) units.MetresPerSecond {
	return units.MetresPerSecond(math.Sqrt(2 * float64(a) * float64(d)))
}

// Fill accumulates same-dimension floats and re-wraps the total: the
// accumulator is born free (a bare 0) and adopts the byte dimension at
// the first +=.
func Fill(chunks []units.Bytes) units.Bytes {
	total := 0.0
	for _, c := range chunks {
		total += float64(c)
	}
	return units.Bytes(total)
}

// Throughput scales a typed constant: constants of unit type carry their
// dimension, bare factors are free.
func Throughput(moved units.Bytes, t units.Seconds) units.BytesPerSecond {
	return units.BytesPerSecond(1.5 * float64(moved) / float64(t))
}
