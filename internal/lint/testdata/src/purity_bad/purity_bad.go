// Package puritybad is a lint fixture: model code that never touches
// ambient state directly — every violation is transitive, visible only to
// the call-graph purity pass.
package puritybad

import helpers "repro/internal/lint/testdata/src/purity_helpers"

// Evaluate reaches time.Now through two levels of helpers:
// Evaluate → Stamp → clock → time.Now.
func Evaluate(x float64) float64 {
	return x + float64(helpers.Stamp())
}

// Total reaches map-iteration order through a helper.
func Total(m map[string]float64) float64 {
	return helpers.SumValues(m)
}

// Smoothed only uses the pure helper: no diagnostic.
func Smoothed(x float64) float64 {
	return helpers.Scale(x)
}
