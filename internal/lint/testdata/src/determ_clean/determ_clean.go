// Package determclean is a lint fixture: model code doing randomness and
// time the approved way — a seeded generator threaded through the
// constructor and an injected clock value. Zero diagnostics expected.
package determclean

import "math/rand"

// Model carries its own seeded generator and virtual clock.
type Model struct {
	rng *rand.Rand
	now float64
}

// New seeds the generator explicitly; rand.New(rand.NewSource(seed)) is
// the sanctioned constructor form.
func New(seed int64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed))}
}

// Step advances the injected clock and draws from the owned generator.
func (m *Model) Step(dt float64) float64 {
	m.now += dt
	return m.now * m.rng.Float64()
}
