// Package goescapebad is a lint fixture: non-thread-safe values shared
// between the spawning goroutine and a spawned one — a *rand.Rand
// capture, a map written concurrently, a sweep task sharing a map
// across workers, and an escape visible only through a method call on
// the call graph.
package goescapebad

import (
	"context"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/sweep"
)

// Draw shares a *rand.Rand with the goroutine while still drawing from
// it on the spawning side: every draw mutates the source.
func Draw(rng *rand.Rand) float64 {
	go func() {
		_ = rng.Float64()
	}()
	return rng.Float64()
}

// Count writes a shared map from the goroutine while the caller reads
// it: unsynchronised map writes corrupt.
func Count(events []string) map[string]int {
	counts := make(map[string]int)
	go func() {
		for _, e := range events {
			counts[e]++
		}
	}()
	return counts
}

// Tally shares a map across sweep workers: the parallel task
// invocations alone make the capture racy, regardless of what the
// spawning goroutine does afterwards.
func Tally(ctx context.Context, keys []string) error {
	seen := make(map[string]bool)
	_, err := sweep.Map(ctx, keys, func(_ context.Context, k string) (int, error) {
		seen[k] = true
		return 0, nil
	})
	return err
}

// host wraps the single-threaded simulation engine.
type host struct {
	eng *sim.Engine
}

// now reaches the engine: the unsafe touch the call graph propagates.
func (h *host) now() float64 {
	return float64(h.eng.Now())
}

// Observe calls a method on the captured host that transitively reaches
// *sim.Engine while the spawning goroutine still queries it.
func Observe(h *host) float64 {
	go func() {
		_ = h.now()
	}()
	return h.now()
}
