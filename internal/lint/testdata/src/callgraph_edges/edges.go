// Package callgraphedges is a lint fixture for the call-graph substrate
// itself: the shapes that must produce edges (method-value bindings,
// deferred calls, nested closures) and the documented limitations that
// must not (calls through interfaces stop at the interface method; calls
// through function values resolve to nothing).
package callgraphedges

// Leaf is a plain callee.
func Leaf() int { return 1 }

// T carries a method callee.
type T struct{ n int }

// M is the method the bindings below reference.
func (t *T) M() int { return t.n }

// MethodValue binds t.M to a variable: the selector's Uses entry still
// yields an edge, recorded at the binding site.
func MethodValue(t *T) int {
	f := t.M
	return f()
}

// DeferredCall defers a module call: still an edge.
func DeferredCall() {
	defer Leaf()
}

// NestedClosures reference a module function two literals deep: the
// edge is attributed to the enclosing declaration.
func NestedClosures() func() func() int {
	return func() func() int {
		return func() int {
			return Leaf()
		}
	}
}

// Iface is the interface the limitation cases call through.
type Iface interface{ Do() int }

// impl implements Iface; no edge may ever point at it from
// ThroughInterface.
type impl struct{}

// Do satisfies Iface.
func (impl) Do() int { return 2 }

// ThroughInterface calls through the interface: resolution stops at the
// interface method — no edge to any implementation.
func ThroughInterface(i Iface) int {
	return i.Do()
}

// FuncValueParam calls a passed function value: no edge at all.
func FuncValueParam(f func() int) int {
	return f()
}
