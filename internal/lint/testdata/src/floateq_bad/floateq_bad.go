// Package floateqbad is a lint fixture: exact equality between computed
// floats.
package floateqbad

// Converged compares two computed values exactly.
func Converged(prev, next float64) bool {
	return prev == next
}

// Velocity is a named float type, like the units quantities.
type Velocity float64

// Changed compares named-float values exactly with !=.
func Changed(a, b Velocity) bool {
	return a != b
}
