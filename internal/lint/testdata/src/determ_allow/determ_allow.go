// Package determallow is a lint fixture for the escape hatch: one
// justified allow (suppressed), one bare allow (its own diagnostic), and
// one unsuppressed violation.
package determallow

import "time"

// WallClock is suppressed by a justified allow on the preceding line.
func WallClock() time.Time {
	//dhllint:allow determinism -- fixture: demonstrates the justified escape hatch
	return time.Now()
}

// BareAllow has an allow with no justification: the comment itself is an
// "allow" diagnostic and does NOT suppress the violation.
func BareAllow() time.Time {
	//dhllint:allow determinism
	return time.Now()
}

// Unsuppressed has no allow at all.
func Unsuppressed() time.Time {
	return time.Now()
}
