// Package determbad is a lint fixture: model code reaching ambient
// nondeterminism. Every call below is a determinism true positive.
package determbad

import (
	"math/rand"
	"os"
	"time"
)

// Jitter stamps a sample with the wall clock and a global-source draw.
func Jitter() (time.Time, float64) {
	now := time.Now()
	return now, rand.Float64()
}

// Elapsed uses the wall clock through time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Pick draws from the global source.
func Pick(n int) int {
	return rand.Intn(n)
}

// Tuning reads the environment.
func Tuning() string {
	return os.Getenv("DHL_TUNING")
}
