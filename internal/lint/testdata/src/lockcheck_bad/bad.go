// Package lockcheckbad is a lint fixture: guarded fields accessed
// without their mutex — directly, through a helper verified
// interprocedurally, in the wrong RWMutex mode, and one malformed
// annotation.
package lockcheckbad

import "sync"

// Counter guards count with mu.
type Counter struct {
	mu sync.Mutex
	//dhllint:guardedby mu
	count int
}

// Bump writes count with no lock at all: the direct finding.
func (c *Counter) Bump() {
	c.count++
}

// bump is the helper: its unguarded access becomes a caller-must-hold
// summary instead of an immediate finding.
func (c *Counter) bump() {
	c.count++
}

// BumpLocked discharges the requirement: clean.
func (c *Counter) BumpLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

// BumpUnlocked fails to discharge it: the interprocedural finding lands
// at this call site with the chain down to the access.
func (c *Counter) BumpUnlocked() {
	c.bump()
}

// Table guards entries with an RWMutex.
type Table struct {
	rw sync.RWMutex
	//dhllint:guardedby rw
	entries map[string]int
}

// Get reads under RLock: clean.
func (t *Table) Get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.entries[k]
}

// Put writes under RLock only: writes need the mutex write-held.
func (t *Table) Put(k string, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.entries[k] = v
}

// Wrong names a guard that is not a mutex: the annotation itself is the
// finding.
type Wrong struct {
	n int
	//dhllint:guardedby n
	v int
}
