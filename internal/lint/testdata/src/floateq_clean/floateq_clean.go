// Package floateqclean is a lint fixture: the approved float
// comparisons. Zero diagnostics expected.
package floateqclean

import "math"

// IsZero compares against a constant sentinel: deliberate and legal.
func IsZero(x float64) bool {
	return x == 0
}

// Near compares through a tolerance, the approved helper shape.
func Near(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// SameCount is integer equality: not a float comparison at all.
func SameCount(a, b int) bool {
	return a == b
}
