// Package unusedallowbad is a lint fixture: a justified allow whose
// finding was refactored away. The stale hatch is itself a diagnostic.
package unusedallowbad

// Stale carries an allow that suppresses nothing: the exact comparison it
// once guarded is gone.
func Stale(a, b float64) float64 {
	//dhllint:allow floateq -- stale: the comparison this guarded was refactored away
	return a + b
}
