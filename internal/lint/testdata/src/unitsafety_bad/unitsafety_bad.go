// Package unitsafetybad is a lint fixture: dimension errors that Go's
// type checker accepts but the unitsafety rule rejects.
package unitsafetybad

import "repro/internal/units"

// BytesAsSeconds converts bytes straight to seconds: type-checks, always
// dimensionally wrong (needs a rate).
func BytesAsSeconds(b units.Bytes) units.Seconds {
	return units.Seconds(b)
}

// SquaredTime multiplies two non-constant durations: seconds², not
// seconds.
func SquaredTime(a, b units.Seconds) units.Seconds {
	return a * b
}

// PowerFromRate relabels a line rate as power.
func PowerFromRate(r units.BitsPerSecond) units.Watts {
	return units.Watts(r)
}
