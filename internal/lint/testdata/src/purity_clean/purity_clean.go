// Package purityclean is a lint fixture: model code that composes pure
// helpers only. Zero purity diagnostics expected.
package purityclean

import helpers "repro/internal/lint/testdata/src/purity_helpers"

// Evaluate is a pure function of its inputs.
func Evaluate(x float64) float64 {
	return helpers.Scale(x) + 1
}

// Chain composes pure module calls.
func Chain(x float64) float64 {
	return helpers.Scale(helpers.Scale(x))
}
