// Package purityallow is a lint fixture for the escape hatch on the
// purity rule: one justified allow (suppressed), one bare allow (its own
// diagnostic, suppressing nothing), and one unsuppressed violation.
package purityallow

import helpers "repro/internal/lint/testdata/src/purity_helpers"

// Logged is suppressed by a justified allow on the preceding line.
func Logged() int64 {
	//dhllint:allow purity -- fixture: stamp feeds a log line, never model output
	return helpers.Stamp()
}

// BareAllow has an allow with no justification: the comment itself is an
// "allow" diagnostic and does NOT suppress the violation.
func BareAllow() int64 {
	//dhllint:allow purity
	return helpers.Stamp()
}

// Unsuppressed has no allow at all.
func Unsuppressed() int64 {
	return helpers.Stamp()
}
