// Package lockcheckallow is a lint fixture for the escape hatch on the
// lockcheck rule: a lock-free atomic needing no guard at all, a
// justified in-place allow on a write-once field, and a stale allow
// that suppresses nothing — which unusedallow must report.
package lockcheckallow

import (
	"sync"
	"sync/atomic"
)

// Gauge pairs a guarded field with an atomic one: the atomic counter
// needs no mutex, so it simply carries no annotation.
type Gauge struct {
	mu sync.Mutex
	//dhllint:guardedby mu
	name string
	hits atomic.Int64
}

// Hit is lock-free on the atomic: no annotation, no finding.
func (g *Gauge) Hit() { g.hits.Add(1) }

// Peek reads name without the lock, justified in place: the seed is
// consumed before it can propagate to callers.
func (g *Gauge) Peek() string {
	//dhllint:allow lockcheck -- fixture: name is written once before publication and never mutated after
	return g.name
}

// Rename mutates name under the lock: clean.
func (g *Gauge) Rename(n string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.name = n
}

// Stale carries an allow that suppresses nothing.
func (g *Gauge) Stale() int {
	//dhllint:allow lockcheck -- fixture: nothing guarded on this line
	return 1
}
