// Package unusedallowclean is a lint fixture: every allow earns its keep
// by suppressing a real finding. Zero diagnostics expected.
package unusedallowclean

// Guarded has a live allow: the exact comparison below would otherwise be
// a floateq finding.
func Guarded(a, b float64) bool {
	//dhllint:allow floateq -- fixture: exact match detects the sentinel duplicate
	return a == b
}
