// Package goescapeclean is a lint fixture: the sanctioned concurrency
// idioms — ownership handoff into the goroutine, read-only map sharing,
// and thread-safe captures — that must produce no goescape diagnostics.
package goescapeclean

import (
	"math/rand"
	"sync/atomic"
)

// Handoff transfers ownership: the spawning function never touches rng
// after the go statement, so the capture is a clean handoff.
func Handoff(seed int64, done chan<- float64) {
	rng := rand.New(rand.NewSource(seed))
	go func() {
		done <- rng.Float64()
	}()
}

// ReadShared only reads the captured map on both sides: concurrent map
// reads are legal.
func ReadShared(m map[string]int, out chan<- int) int {
	go func() {
		out <- m["a"]
	}()
	return m["b"]
}

// Atomic shares a counter built for concurrency.
func Atomic(n *atomic.Int64, done chan<- struct{}) int64 {
	go func() {
		n.Add(1)
		close(done)
	}()
	return n.Load()
}
