// Package maporderbad is a lint fixture: map iterations whose order
// leaks into output, returned slices, or float accumulations.
package maporderbad

import (
	"fmt"
	"strings"
)

// PrintAll emits one line per entry straight from map order.
func PrintAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Keys returns the keys in map order: callers see a different slice each
// run.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Total accumulates floats in map order; addition is not associative.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

// Render writes entries into a builder in map order.
func Render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
