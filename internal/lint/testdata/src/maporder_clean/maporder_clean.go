// Package maporderclean is a lint fixture: map iterations that are
// order-independent or follow the sorted-key idiom. Zero diagnostics
// expected.
package maporderclean

import (
	"fmt"
	"sort"
)

// SortedKeys appends from the map but sorts before returning — the
// approved deterministic idiom.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count is an integer accumulation: order-independent.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Max is a pure reduction: the result is the same in any order.
func Max(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// PrintSorted iterates the sorted key slice, not the map.
func PrintSorted(m map[string]int) {
	for _, k := range SortedKeys(m) {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}
