// Package lockcheckclean is a lint fixture: guarded fields accessed in
// the sanctioned shapes — defer unlock across early returns, explicit
// lock/unlock pairs, helpers verified through locked callers, RWMutex
// reads under RLock — that must produce no lockcheck diagnostics.
package lockcheckclean

import "sync"

// Box guards val with mu.
type Box struct {
	mu sync.Mutex
	//dhllint:guardedby mu
	val int
}

// Set holds the lock across both branches; the early return is covered
// by the deferred unlock.
func (b *Box) Set(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v < 0 {
		b.val = 0
		return
	}
	b.val = v
}

// Get uses an explicit lock/unlock pair.
func (b *Box) Get() int {
	b.mu.Lock()
	v := b.val
	b.mu.Unlock()
	return v
}

// addLocked requires the caller to hold mu; every caller does.
func (b *Box) addLocked(d int) {
	b.val += d
}

// Add discharges addLocked's requirement.
func (b *Box) Add(d int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.addLocked(d)
}

// RTable guards its map with an RWMutex; reads take RLock.
type RTable struct {
	rw sync.RWMutex
	//dhllint:guardedby rw
	m map[string]int
}

// Lookup reads under RLock: read mode suffices for reads.
func (t *RTable) Lookup(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// Store writes under the write lock.
func (t *RTable) Store(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}
