// Package dimflowbad is a lint fixture: dimension errors committed in raw
// float64, invisible to the type system and to unitsafety, caught by the
// dimensional-flow pass.
package dimflowbad

import "repro/internal/units"

// MixedAdd adds bytes to seconds through the float64 escape hatch.
func MixedAdd(b units.Bytes, t units.Seconds) float64 {
	return float64(b) + float64(t)
}

// WrongWrap computes a transfer time (B / (B/s) = s) but wraps it as
// power.
func WrongWrap(b units.Bytes, r units.BytesPerSecond) units.Watts {
	return units.Watts(float64(b) / float64(r))
}

// RatioOfBytes launders a dimensioned value into a dimensionless ratio
// through a local.
func RatioOfBytes(b units.Bytes) units.Ratio {
	raw := float64(b)
	return units.Ratio(raw)
}

// AccumulatorDrift tags values via unit accessors and trips on a compound
// assignment: kilojoules += hours.
func AccumulatorDrift(e units.Joules, t units.Seconds) float64 {
	total := e.KJ()
	total += t.Hours()
	return total
}
