// Package goescapeallow is a lint fixture for the escape hatch on the
// goescape rule: a deliberate, justified share silenced at the go
// statement, plus a stale allow for unusedallow to find.
package goescapeallow

import "math/rand"

// Sample shares rng with the goroutine on purpose; the allow records
// why the race is acceptable here.
func Sample(rng *rand.Rand, out chan<- float64) float64 {
	//dhllint:allow goescape -- fixture: both draws happen before the channel send is observed, sequenced by the test harness
	go func() {
		out <- rng.Float64()
	}()
	return rng.Float64()
}

// Stale carries an allow that suppresses nothing.
func Stale(x int) int {
	//dhllint:allow goescape -- fixture: nothing escapes on this line
	return x
}
