// Package unitsafetyclean is a lint fixture: dimensionally sound uses of
// the typed quantities. Zero diagnostics expected.
package unitsafetyclean

import "repro/internal/units"

// Scale multiplies by an untyped constant factor: no dimension change.
func Scale(b units.Bytes) units.Bytes {
	return 2 * b
}

// Speedup is the sanctioned dimensionless quotient of a shared unit.
func Speedup(network, dhl units.Seconds) units.Ratio {
	return units.Ratio(network / dhl)
}

// TotalTime does count × duration arithmetic explicitly in float64 with
// the formula spelled out, then converts the result once.
func TotalTime(trips int, per units.Seconds) units.Seconds {
	return units.Seconds(float64(trips) * float64(per))
}

// Energy uses the units package's own conversion helper.
func Energy(w units.Watts, t units.Seconds) units.Joules {
	return units.Energy(w, t)
}
