// Package lockorderclean is a lint fixture: every path acquires the two
// locks in the same order, so the acquisition graph has one direction
// and no cycle.
package lockorderclean

import "sync"

// pair is two locks with a fixed acquisition order: a before b, always.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// First acquires a then b with deferred unlocks.
func (p *pair) First() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

// Second acquires in the same order with explicit pairs.
func (p *pair) Second() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// lockB acquires b for callers already holding a: same direction, still
// no cycle once the call edge is expanded.
func (p *pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

// Third takes the a→b edge through the call graph.
func (p *pair) Third() {
	p.a.Lock()
	defer p.a.Unlock()
	p.lockB()
}
