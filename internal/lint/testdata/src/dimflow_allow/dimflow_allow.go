// Package dimflowallow is a lint fixture for the escape hatch on the
// dimflow rule: one justified allow (suppressed), one bare allow (its own
// diagnostic), and one unsuppressed violation.
package dimflowallow

import "repro/internal/units"

// Calibrated is suppressed by a justified allow: an empirical fit that
// knowingly absorbs the dimension gap into its constant.
func Calibrated(b units.Bytes, t units.Seconds) float64 {
	//dhllint:allow dimflow -- fixture: empirical fit constant absorbs the dimension gap
	return float64(b) + float64(t)
}

// BareAllow has an allow with no justification: the comment itself is an
// "allow" diagnostic and does NOT suppress the violation.
func BareAllow(b units.Bytes, t units.Seconds) float64 {
	//dhllint:allow dimflow
	return float64(b) + float64(t)
}

// Unsuppressed has no allow at all.
func Unsuppressed(b units.Bytes, t units.Seconds) float64 {
	return float64(b) + float64(t)
}
