// Package purityhelpers is a lint fixture: a NON-model utility package
// whose helpers reach ambient state. The intra-package determinism rule
// stays quiet here by design — the purity pass must catch model code that
// calls in.
package purityhelpers

import "time"

// Stamp returns a wall-clock nanosecond stamp through one more level of
// indirection, so a model caller is two calls away from time.Now.
func Stamp() int64 {
	return clock()
}

func clock() int64 {
	return time.Now().UnixNano()
}

// SumValues accumulates map values in iteration order: an ambient source
// of a different kind (the traversal order changes run to run).
func SumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

// Scale is pure: safe to call from model code.
func Scale(x float64) float64 {
	return 2 * x
}
