package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags exact ==/!= between two computed floating-point values.
// The models chain long float expressions (drag integrals, RAID
// geometry, launch kinematics); exact equality between two such results
// is almost always a latent bug. Comparisons against a constant (the
// zero sentinel, ±Inf) are deliberate and stay legal; everything else
// should go through a tolerance: math.Abs(a-b) <= eps.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no exact ==/!= between computed floats; compare with a tolerance",
	Run:  runFloatEq,
}

func runFloatEq(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := info.Types[be.X], info.Types[be.Y]
			// A constant operand (0, 1, math.MaxFloat64…) marks a
			// deliberate sentinel comparison.
			if tx.Value != nil || ty.Value != nil {
				return true
			}
			if isFloat(tx.Type) && isFloat(ty.Type) {
				p.Report(be.OpPos, "exact %s between computed floats; compare with a tolerance (math.Abs(a-b) <= eps)", be.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
