package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The lockorder pass hunts deadlocks by construction: it builds a
// deterministic lock-acquisition-order graph and reports every cycle.
//
// Nodes are type-level mutex identities — receiver type plus field path
// (controlplane.Server.connMu), or package-qualified name for plain
// mutex variables — so two instances of one struct map to the same node:
// if goroutine 1 locks a.mu then b.mu while goroutine 2 locks b.mu then
// a.mu, both instances collapse onto one self-inconsistent identity pair.
//
// Edges come from two places, both derived from the lockset walk the
// lockcheck pass performs:
//
//   - direct: a Lock/RLock executed while other locks are held adds one
//     edge from every held lock to the new one;
//   - transitive: a call made while locks are held adds edges from every
//     held lock to every lock the callee may acquire, where "may
//     acquire" is the fixed point of direct acquisitions over the module
//     call graph.
//
// Every edge keeps its first witness — the function, position, and (for
// transitive edges) the call chain down to the actual Lock — so a cycle
// is reported with the conflicting acquisition chains, one per edge, in
// the message and the JSON chain field. Cycles are canonicalised
// (rotated to their smallest identity) and reported once, anchored at
// the first edge's witness position, where a //dhllint:allow lockorder
// can silence a justified exception.

// loEdge is one acquisition-order edge with its first witness.
type loEdge struct {
	from, to string
	chain    []string // witness frames, outermost first, the Lock last
	pos      token.Pos
	pkg      *Package
}

// acqVia records how a function comes to acquire a lock identity: nil
// callee means a direct Lock at lockPos; otherwise the acquisition is
// inherited from callee through the call at callPos.
type acqVia struct {
	callee  *cgNode
	callPos token.Pos
	lockPos token.Pos
	read    bool
}

// runLockOrder builds the acquisition-order graph from the lockset facts
// and reports every cycle.
func runLockOrder(cfg *Config, g *CallGraph, lf *lockFacts, allows *allowIndex) []Diagnostic {
	// Transitive may-acquire sets: direct Locks seed, call edges
	// propagate to a fixed point. Deterministic: nodes in graph order,
	// callee sets merged in sorted identity order, first via kept.
	acquires := make(map[*cgNode]map[string]acqVia)
	for _, n := range g.order {
		set := make(map[string]acqVia)
		for _, a := range lf.perFn[n].acquires {
			id := g.lockID(a.key)
			if _, ok := set[id]; !ok {
				set[id] = acqVia{lockPos: a.pos, read: a.read}
			}
		}
		acquires[n] = set
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			for _, e := range n.calls {
				callee := g.nodes[e.callee]
				if callee == nil {
					continue
				}
				for _, id := range sortedKeys(acquires[callee]) {
					if _, ok := acquires[n][id]; !ok {
						acquires[n][id] = acqVia{callee: callee, callPos: e.pos}
						changed = true
					}
				}
			}
		}
	}

	// Edge set, first witness wins. Construction order is deterministic:
	// graph order, then event/site order, then sorted identities.
	edges := make(map[[2]string]*loEdge)
	var edgeOrder [][2]string
	addEdge := func(from, to string, chain []string, pos token.Pos, pkg *Package) {
		if from == to {
			return
		}
		k := [2]string{from, to}
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = &loEdge{from: from, to: to, chain: chain, pos: pos, pkg: pkg}
		edgeOrder = append(edgeOrder, k)
	}

	for _, n := range g.order {
		facts := lf.perFn[n]
		for _, a := range facts.acquires {
			newID := g.lockID(a.key)
			for _, h := range a.held {
				heldID := g.lockID(h)
				addEdge(heldID, newID, []string{fmt.Sprintf(
					"%s acquires %s while holding %s (%s)",
					g.shortName(n.fn), newID, heldID, g.relPos(a.pos))},
					a.pos, n.pkg)
			}
		}
		for i := range facts.calls {
			cs := &facts.calls[i]
			if len(cs.held) == 0 {
				continue
			}
			callee := g.nodes[cs.callee]
			if callee == nil {
				continue
			}
			heldIDs := make([]string, 0, len(cs.held))
			for k := range cs.held {
				heldIDs = append(heldIDs, g.lockID(k))
			}
			sort.Strings(heldIDs)
			for _, id := range sortedKeys(acquires[callee]) {
				for _, heldID := range heldIDs {
					chain := append([]string{fmt.Sprintf(
						"%s calls %s while holding %s (%s)",
						g.shortName(n.fn), g.shortName(cs.callee), heldID, g.relPos(cs.pos))},
						g.acquireChain(callee, id, acquires)...)
					addEdge(heldID, id, chain, cs.pos, n.pkg)
				}
			}
		}
	}

	// Cycle detection: DFS over sorted adjacency; every back edge yields
	// one cycle, canonicalised by rotating its smallest identity first.
	adj := make(map[string][]string)
	var nodeIDs []string
	seen := map[string]bool{}
	for _, k := range edgeOrder {
		adj[k[0]] = append(adj[k[0]], k[1])
		for _, id := range []string{k[0], k[1]} {
			if !seen[id] {
				seen[id] = true
				nodeIDs = append(nodeIDs, id)
			}
		}
	}
	sort.Strings(nodeIDs)
	for _, vs := range adj {
		sort.Strings(vs)
	}

	state := make(map[string]int) // 0 new, 1 on stack, 2 done
	var stack []string
	var cycles [][]string
	cycleSeen := map[string]bool{}
	var dfs func(u string)
	dfs = func(u string) {
		state[u] = 1
		stack = append(stack, u)
		for _, v := range adj[u] {
			switch state[v] {
			case 0:
				dfs(v)
			case 1:
				// Extract stack[v..u] as one cycle.
				start := len(stack) - 1
				for start >= 0 && stack[start] != v {
					start--
				}
				cyc := canonicalCycle(stack[start:])
				key := strings.Join(cyc, "→")
				if !cycleSeen[key] {
					cycleSeen[key] = true
					cycles = append(cycles, cyc)
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[u] = 2
	}
	for _, id := range nodeIDs {
		if state[id] == 0 {
			dfs(id)
		}
	}

	var out []Diagnostic
	for _, cyc := range cycles {
		var chain []string
		var summaries []string
		var first *loEdge
		for i := range cyc {
			from, to := cyc[i], cyc[(i+1)%len(cyc)]
			e := edges[[2]string{from, to}]
			if e == nil {
				continue
			}
			if first == nil {
				first = e
			}
			chain = append(chain, e.chain...)
			summaries = append(summaries, e.chain[0])
		}
		if first == nil {
			continue
		}
		pass := &Pass{Cfg: cfg, Pkg: first.pkg, rule: "lockorder", allows: allows, out: &out}
		pass.reportChain(first.pos, chain,
			"lock acquisition cycle %s → %s (potential deadlock): %s",
			strings.Join(cyc, " → "), cyc[0], strings.Join(summaries, "; "))
	}
	return out
}

// acquireChain renders how node came to acquire id: the call chain from
// node down to the function holding the direct Lock.
func (g *CallGraph) acquireChain(n *cgNode, id string, acquires map[*cgNode]map[string]acqVia) []string {
	var chain []string
	for hop := n; hop != nil; {
		via, ok := acquires[hop][id]
		if !ok {
			break
		}
		if via.callee == nil {
			op := "Lock"
			if via.read {
				op = "RLock"
			}
			chain = append(chain, fmt.Sprintf("%s %ss %s (%s)",
				g.shortName(hop.fn), op, id, g.relPos(via.lockPos)))
			break
		}
		chain = append(chain, fmt.Sprintf("%s (%s)", g.shortName(hop.fn), g.relPos(via.callPos)))
		hop = via.callee
	}
	return chain
}

// canonicalCycle rotates a cycle so its lexicographically smallest
// identity comes first.
func canonicalCycle(cyc []string) []string {
	out := append([]string(nil), cyc...)
	min := 0
	for i := range out {
		if out[i] < out[min] {
			min = i
		}
	}
	return append(out[min:], out[:min]...)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
