package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over a map when the loop body does something
// iteration-order-sensitive — exactly the bug class that breaks the
// sweep's byte-identity guarantee:
//
//   - writing output (fmt print family, Write*/Encode methods);
//   - appending to a slice the function returns, unless that slice is
//     passed through sort before use;
//   - accumulating into a floating-point variable (float addition is not
//     associative, so the low bits depend on iteration order).
//
// Order-insensitive map loops (integer counting, min/max, set
// membership) are untouched.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no map-iteration order leaking into output, returned slices, or float sums",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, fd := range funcDecls(f) {
			for _, r := range orderSensitiveRanges(p.Pkg.Info, fd) {
				p.Report(r.pos, "map iteration order %s; iterate a sorted key slice instead", r.reason)
			}
		}
	}
}

// rangeFinding is one order-sensitive map range: where it starts and why
// its body depends on iteration order.
type rangeFinding struct {
	pos    token.Pos
	reason string
}

// orderSensitiveRanges finds every map range in fd whose body is
// iteration-order-sensitive. Shared by the maporder analyzer and the call
// graph, which seeds purity taint at the same constructs.
func orderSensitiveRanges(info *types.Info, fd *ast.FuncDecl) []rangeFinding {
	returned := returnedObjects(info, fd)
	sorted := sortedObjects(info, fd.Body)

	var out []rangeFinding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if reason := orderSensitive(info, rs.Body, returned, sorted); reason != "" {
			out = append(out, rangeFinding{pos: rs.Pos(), reason: reason})
		}
		return true
	})
	return out
}

// returnedObjects collects the variables a function hands back: idents in
// return statements plus named result parameters.
func returnedObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// sortedObjects collects variables passed to the sort or slices packages
// anywhere in the body: appending map keys and sorting afterwards is the
// approved deterministic idiom.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// ioWriter is a structural io.Writer, built without importing io's type
// data: interface { Write([]byte) (int, error) }.
var ioWriter = types.NewInterfaceType([]*types.Func{
	types.NewFunc(token.NoPos, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil).Complete()

// outputStreamPkgs are stdlib packages whose Write*/Encode methods emit
// into a stream even when the receiver is not itself an io.Writer
// (e.g. *json.Encoder).
var outputStreamPkgs = map[string]bool{
	"fmt": true, "io": true, "bufio": true, "strings": true, "bytes": true,
	"encoding/json": true, "encoding/csv": true, "encoding/xml": true,
	"text/tabwriter": true, "text/template": true,
}

// isOutputMethod reports whether fn is a stream-writing method: named
// like a writer method AND either its receiver implements io.Writer or
// it belongs to a stdlib output package. A model type that merely calls
// its method "Write" (e.g. storage.Array.Write) is not output.
func isOutputMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !writeMethods[fn.Name()] {
		return false
	}
	recv := sig.Recv().Type()
	if types.Implements(recv, ioWriter) {
		return true
	}
	if _, isPtr := recv.Underlying().(*types.Pointer); !isPtr && types.Implements(types.NewPointer(recv), ioWriter) {
		return true
	}
	return fn.Pkg() != nil && outputStreamPkgs[fn.Pkg().Path()]
}

// orderSensitive reports why a map-range body depends on iteration order,
// or "" if it looks order-independent.
func orderSensitive(info *types.Info, body *ast.BlockStmt, returned, sorted map[types.Object]bool) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && printFuncs[fn.Name()] {
						reason = "reaches fmt output"
						return false
					}
					if isOutputMethod(fn) {
						reason = "reaches writer output"
						return false
					}
				}
			}
		case *ast.AssignStmt:
			if obj := appendTarget(info, n); obj != nil && returned[obj] && !sorted[obj] {
				reason = "flows into a returned slice"
				return false
			}
			if isFloatAccumulation(info, n) {
				reason = "accumulates a float sum (addition is not associative)"
				return false
			}
		}
		return true
	})
	return reason
}

// appendTarget returns the assigned variable of `x = append(x, ...)`, or
// nil if the statement is not an append.
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin || fun.Name != "append" {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// isFloatAccumulation reports compound arithmetic assignment into a
// float-typed lvalue (f += x and friends).
func isFloatAccumulation(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	t := info.TypeOf(as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
