package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const fixtureBase = "repro/internal/lint/testdata/src/"

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Clean(filepath.Join(wd, "..", ".."))
}

// sharedLoader memoizes stdlib type-checking across the whole test run.
var sharedLoader *Loader

func loader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		sharedLoader = NewLoader(moduleRoot(t), "repro")
	}
	return sharedLoader
}

// fixtureConfig is the repository policy extended so the determ_* and
// purity_* fixture packages count as model code (purity_helpers stays a
// plain utility package on purpose).
func fixtureConfig(t *testing.T) Config {
	cfg := DefaultConfig(moduleRoot(t), "repro")
	cfg.ModelPackages = append(cfg.ModelPackages,
		fixtureBase+"determ_bad", fixtureBase+"determ_clean", fixtureBase+"determ_allow",
		fixtureBase+"purity_bad", fixtureBase+"purity_clean", fixtureBase+"purity_allow")
	return cfg
}

type diagKey struct {
	Rule string
	Line int
}

func keysOf(ds []Diagnostic) []diagKey {
	out := make([]diagKey, len(ds))
	for i, d := range ds {
		out[i] = diagKey{d.Rule, d.Line}
	}
	return out
}

func sameKeys(a, b []diagKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAnalyzersOnFixtures(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
		mutate  func(*Config)
		want    []diagKey
	}{
		{
			name: "determinism true positives", fixture: "determ_bad",
			want: []diagKey{
				{"determinism", 13}, // time.Now
				{"determinism", 14}, // rand.Float64
				{"determinism", 19}, // time.Since
				{"determinism", 24}, // rand.Intn
				{"determinism", 29}, // os.Getenv
			},
		},
		{
			name: "determinism clean seeded rng", fixture: "determ_clean",
			want: nil,
		},
		{
			name: "determinism scope excludes non-model code", fixture: "determ_bad",
			mutate: func(c *Config) { c.ModelPackages = nil },
			want:   nil,
		},
		{
			name: "allow hatch suppresses with justification only", fixture: "determ_allow",
			want: []diagKey{
				{"allow", 17},       // bare allow, no reason
				{"determinism", 18}, // not suppressed by the bare allow
				{"determinism", 23}, // no allow at all
			},
		},
		{
			name: "maporder true positives", fixture: "maporder_bad",
			want: []diagKey{
				{"maporder", 12}, // fmt output in map order
				{"maporder", 21}, // returned slice in map order
				{"maporder", 30}, // float accumulation in map order
				{"maporder", 39}, // builder output in map order
			},
		},
		{
			name: "maporder clean idioms", fixture: "maporder_clean",
			want: nil,
		},
		{
			name: "unitsafety true positives", fixture: "unitsafety_bad",
			want: []diagKey{
				{"unitsafety", 10}, // Bytes → Seconds conversion
				{"unitsafety", 16}, // Seconds × Seconds
				{"unitsafety", 21}, // BitsPerSecond → Watts conversion
			},
		},
		{
			name: "unitsafety clean arithmetic", fixture: "unitsafety_clean",
			want: nil,
		},
		{
			name: "floateq true positives", fixture: "floateq_bad",
			want: []diagKey{
				{"floateq", 7},  // float64 ==
				{"floateq", 15}, // named float type !=
			},
		},
		{
			name: "floateq clean comparisons", fixture: "floateq_clean",
			want: nil,
		},
		{
			name: "goroutine true positives", fixture: "goroutine_bad",
			want: []diagKey{
				{"goroutine", 12}, // go outside sweep
				{"goroutine", 13}, // WaitGroup.Add inside closure
				{"goroutine", 23}, // plain go outside sweep
				{"goroutine", 31}, // Add inside closure behind f := func(){...}; go f()
				{"goroutine", 35}, // go through the binding, outside sweep
			},
		},
		{
			name: "goroutine Add race flagged even in allowed package", fixture: "goroutine_bad",
			mutate: func(c *Config) {
				c.GoroutineAllowed = append(c.GoroutineAllowed, fixtureBase+"goroutine_bad")
			},
			want: []diagKey{{"goroutine", 13}, {"goroutine", 31}},
		},
		{
			name: "goroutine clean pool in allowed package", fixture: "goroutine_clean",
			mutate: func(c *Config) {
				c.GoroutineAllowed = append(c.GoroutineAllowed, fixtureBase+"goroutine_clean")
			},
			want: nil,
		},
		{
			name: "goroutine clean pool still flagged outside allowed set", fixture: "goroutine_clean",
			want: []diagKey{{"goroutine", 14}},
		},
		{
			name: "dimflow true positives", fixture: "dimflow_bad",
			want: []diagKey{
				{"dimflow", 10}, // bytes + seconds
				{"dimflow", 16}, // seconds wrapped as power
				{"dimflow", 23}, // bytes laundered into Ratio
				{"dimflow", 30}, // kilojoules += hours
			},
		},
		{
			name: "dimflow clean formulas", fixture: "dimflow_clean",
			want: nil,
		},
		{
			name: "dimflow allow hatch", fixture: "dimflow_allow",
			want: []diagKey{
				{"allow", 18},   // bare allow, no reason
				{"dimflow", 19}, // not suppressed by the bare allow
				{"dimflow", 24}, // no allow at all
			},
		},
		{
			name: "unusedallow true positive", fixture: "unusedallow_bad",
			want: []diagKey{{"unusedallow", 8}},
		},
		{
			name: "unusedallow clean live allow", fixture: "unusedallow_clean",
			want: nil,
		},
		{
			name: "unusedallow cover keeps a stale allow alive", fixture: "unusedallow_allow",
			want: []diagKey{{"unusedallow", 15}}, // the uncovered one
		},
		{
			name: "rule filter disables analyzer", fixture: "floateq_bad",
			mutate: func(c *Config) { c.Enabled = map[string]bool{"determinism": true} },
			want:   nil,
		},
		{
			name: "rule filter keeps selected analyzer", fixture: "floateq_bad",
			mutate: func(c *Config) { c.Enabled = map[string]bool{"floateq": true} },
			want:   []diagKey{{"floateq", 7}, {"floateq", 15}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg, err := loader(t).Load(fixtureBase + tt.fixture)
			if err != nil {
				t.Fatalf("load %s: %v", tt.fixture, err)
			}
			cfg := fixtureConfig(t)
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			got := LintPackage(&cfg, pkg)
			if !sameKeys(keysOf(got), tt.want) {
				t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(got), tt.want, got)
			}
		})
	}
}

func TestRunAggregatesAndSorts(t *testing.T) {
	cfg := fixtureConfig(t)
	diags, err := Run(cfg, []string{fixtureBase + "unitsafety_bad", fixtureBase + "floateq_bad"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 5 {
		t.Fatalf("got %d diagnostics, want 5: %v", len(diags), diags)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
	for _, d := range diags {
		if d.Col < 1 || d.Line < 1 {
			t.Errorf("diagnostic missing position: %v", d)
		}
		if !strings.Contains(d.String(), d.Rule+":") {
			t.Errorf("String() misses rule: %q", d.String())
		}
	}
}

// TestPurityTransitiveChains is the interprocedural acceptance case: model
// code that reaches time.Now only through TWO levels of helpers in a
// non-model package is flagged, with the full call chain in the
// diagnostic.
func TestPurityTransitiveChains(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"purity": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{
		fixtureBase + "purity_helpers", fixtureBase + "purity_bad", fixtureBase + "purity_clean",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"purity", 11}, // Evaluate → Stamp → clock → time.Now
		{"purity", 16}, // Total → SumValues → map range
	}
	if !sameKeys(keysOf(diags), want) {
		t.Fatalf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
	clock := diags[0]
	if !strings.Contains(clock.Message, "time.Now (wall clock)") {
		t.Errorf("chain diagnostic misses the source: %q", clock.Message)
	}
	if !strings.Contains(clock.Message, "Stamp → ") || !strings.Contains(clock.Message, "clock → time.Now") {
		t.Errorf("message misses the rendered chain: %q", clock.Message)
	}
	if len(clock.Chain) != 3 {
		t.Fatalf("Chain = %v, want 3 frames (Stamp, clock, source)", clock.Chain)
	}
	for i, frag := range []string{"Stamp", "clock", "time.Now (wall clock)"} {
		if !strings.Contains(clock.Chain[i], frag) {
			t.Errorf("Chain[%d] = %q, want it to mention %q", i, clock.Chain[i], frag)
		}
	}
	if !strings.Contains(diags[1].Message, "map iteration order") {
		t.Errorf("map-order seed missing from %q", diags[1].Message)
	}
}

func TestPurityAllowHatch(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"purity": true, "allow": true, "unusedallow": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{
		fixtureBase + "purity_helpers", fixtureBase + "purity_allow",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"allow", 17},  // bare allow, no reason
		{"purity", 18}, // not suppressed by the bare allow
		{"purity", 23}, // no allow at all
	}
	if !sameKeys(keysOf(diags), want) {
		t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
}

// TestAllocFlowTransitiveChains is the allocation analogue of the purity
// acceptance case: a //dhllint:hotpath function that allocates only
// through two levels of helpers is flagged with the shortest site→root
// chain, and every direct site kind is classified in place.
func TestAllocFlowTransitiveChains(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"allocflow": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{
		fixtureBase + "allocflow_bad", fixtureBase + "allocflow_clean",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"allocflow", 24}, // HotChain → describe → format → fmt.Sprintf
		{"allocflow", 31}, // make
		{"allocflow", 32}, // growing append
		{"allocflow", 33}, // interface boxing
		{"allocflow", 34}, // map literal
		{"allocflow", 35}, // map write
	}
	if !sameKeys(keysOf(diags), want) {
		t.Fatalf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
	chain := diags[0]
	if !strings.Contains(chain.Message, "describe → ") || !strings.Contains(chain.Message, "format → fmt.Sprintf") {
		t.Errorf("message misses the rendered chain: %q", chain.Message)
	}
	if len(chain.Chain) != 3 {
		t.Fatalf("Chain = %v, want 3 frames (describe, format, site)", chain.Chain)
	}
	for i, frag := range []string{"describe", "format", "fmt.Sprintf (allocates)"} {
		if !strings.Contains(chain.Chain[i], frag) {
			t.Errorf("Chain[%d] = %q, want it to mention %q", i, chain.Chain[i], frag)
		}
	}
	for i, frag := range []string{"make([]int)", "growing append", "interface boxing", "map literal", "map write"} {
		d := diags[i+1]
		if !strings.Contains(d.Message, frag) {
			t.Errorf("direct site %d = %q, want it to mention %q", i, d.Message, frag)
		}
		if len(d.Chain) != 1 {
			t.Errorf("direct site %d Chain = %v, want the single site frame", i, d.Chain)
		}
	}
}

// TestAllocFlowAllowHatch covers the escape-hatch semantics: an in-place
// allow kills the seed (so hot callers of the lazy path stay clean), a
// call-site allow suppresses the edge report, and a stale allow is the
// unusedallow finding the satellite requires.
func TestAllocFlowAllowHatch(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"allocflow": true, "allow": true, "unusedallow": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{fixtureBase + "allocflow_allow"})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"unusedallow", 47}, // Stale's allow suppresses nothing
	}
	if !sameKeys(keysOf(diags), want) {
		t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
}

// TestLockCheckChains is the lock-discipline acceptance case: a direct
// unguarded access, a helper verified only through its callers (reported
// at the undischarged call site with the chain down to the access), an
// RWMutex mode violation, and a malformed annotation.
func TestLockCheckChains(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"lockcheck": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{
		fixtureBase + "lockcheck_bad", fixtureBase + "lockcheck_clean",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"lockcheck", 18}, // Bump: direct write without mu
		{"lockcheck", 37}, // BumpUnlocked → bump: undischarged caller-must-hold
		{"lockcheck", 58}, // Put: write under RLock only
		{"lockcheck", 65}, // Wrong: guardedby names a non-mutex field
	}
	if !sameKeys(keysOf(diags), want) {
		t.Fatalf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
	direct := diags[0]
	if !strings.Contains(direct.Message, "guardedby mu") || !strings.Contains(direct.Message, "accessed (write)") {
		t.Errorf("direct finding misses the annotation context: %q", direct.Message)
	}
	if len(direct.Chain) != 1 {
		t.Errorf("direct finding Chain = %v, want the single access frame", direct.Chain)
	}
	inter := diags[1]
	if !strings.Contains(inter.Message, "no caller on this path holds it") {
		t.Errorf("interprocedural finding misses the summary phrasing: %q", inter.Message)
	}
	if len(inter.Chain) != 2 {
		t.Fatalf("interprocedural Chain = %v, want 2 frames (bump, access)", inter.Chain)
	}
	for i, frag := range []string{"bump", "Counter.count write access"} {
		if !strings.Contains(inter.Chain[i], frag) {
			t.Errorf("Chain[%d] = %q, want it to mention %q", i, inter.Chain[i], frag)
		}
	}
	if !strings.Contains(diags[2].Message, "accessed (write)") {
		t.Errorf("mode violation should be a write finding: %q", diags[2].Message)
	}
	if !strings.Contains(diags[3].Message, "not a sync.Mutex or sync.RWMutex field") {
		t.Errorf("annotation error misses its phrasing: %q", diags[3].Message)
	}
}

func TestLockCheckAllowHatch(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"lockcheck": true, "allow": true, "unusedallow": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{fixtureBase + "lockcheck_allow"})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"unusedallow", 40}, // Stale's allow suppresses nothing
	}
	if !sameKeys(keysOf(diags), want) {
		t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
}

// TestLockOrderCycles pins both deadlock shapes: the direct AB/BA
// inversion between sibling methods, and the inversion visible only when
// a call edge is expanded into the locks the callee may acquire.
func TestLockOrderCycles(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"lockorder": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{
		fixtureBase + "lockorder_bad", fixtureBase + "lockorder_clean",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"lockorder", 18}, // pair.a → pair.b → pair.a, anchored at AB's second Lock
		{"lockorder", 48}, // qr.q → qr.r → qr.q, anchored at Q's call into lockR
	}
	if !sameKeys(keysOf(diags), want) {
		t.Fatalf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
	direct := diags[0]
	if !strings.Contains(direct.Message, "potential deadlock") {
		t.Errorf("cycle finding misses the deadlock phrasing: %q", direct.Message)
	}
	for _, frag := range []string{"pair.AB acquires", "pair.BA acquires"} {
		if !strings.Contains(direct.Message, frag) {
			t.Errorf("cycle message misses the witness %q: %q", frag, direct.Message)
		}
	}
	if len(direct.Chain) != 2 {
		t.Errorf("direct cycle Chain = %v, want one witness per edge", direct.Chain)
	}
	transitive := diags[1]
	if !strings.Contains(transitive.Message, "qr.Q calls") {
		t.Errorf("transitive cycle should witness the call edge: %q", transitive.Message)
	}
	if len(transitive.Chain) != 3 {
		t.Errorf("transitive Chain = %v, want call frame + Lock frame + reverse edge", transitive.Chain)
	}
}

func TestLockOrderAllowHatch(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"lockorder": true, "allow": true, "unusedallow": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{fixtureBase + "lockorder_allow"})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"unusedallow", 34}, // Stale's allow suppresses nothing
	}
	if !sameKeys(keysOf(diags), want) {
		t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
}

// TestGoEscapeFindings pins the four sharing shapes: a *rand.Rand
// capture, a concurrently written map, a map shared across sweep
// workers, and an escape visible only through a method call propagated
// over the call graph.
func TestGoEscapeFindings(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"goescape": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{
		fixtureBase + "goescape_bad", fixtureBase + "goescape_clean",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"goescape", 19}, // Draw: *rand.Rand captured and still drawn from
		{"goescape", 29}, // Count: map written inside the goroutine
		{"goescape", 42}, // Tally: map shared across sweep workers
		{"goescape", 62}, // Observe: *sim.Engine reached through h.now()
	}
	if !sameKeys(keysOf(diags), want) {
		t.Fatalf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
	if !strings.Contains(diags[0].Message, "*rand.Rand") {
		t.Errorf("rand capture misses the type: %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "(map)") {
		t.Errorf("map capture misses the type: %q", diags[1].Message)
	}
	if !strings.Contains(diags[2].Message, "sweep task") || !strings.Contains(diags[2].Message, "concurrent workers") {
		t.Errorf("sweep share misses the pool phrasing: %q", diags[2].Message)
	}
	chain := diags[3]
	if len(chain.Chain) != 2 {
		t.Fatalf("propagated Chain = %v, want 2 frames (host.now, engine touch)", chain.Chain)
	}
	for i, frag := range []string{"host.now", "*sim.Engine.Now"} {
		if !strings.Contains(chain.Chain[i], frag) {
			t.Errorf("Chain[%d] = %q, want it to mention %q", i, chain.Chain[i], frag)
		}
	}
}

func TestGoEscapeAllowHatch(t *testing.T) {
	cfg := fixtureConfig(t)
	cfg.Enabled = map[string]bool{"goescape": true, "allow": true, "unusedallow": true}
	diags, err := RunWithLoader(cfg, loader(t), []string{fixtureBase + "goescape_allow"})
	if err != nil {
		t.Fatal(err)
	}
	want := []diagKey{
		{"unusedallow", 20}, // Stale's allow suppresses nothing
	}
	if !sameKeys(keysOf(diags), want) {
		t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(diags), want, diags)
	}
}

func TestCallGraphDump(t *testing.T) {
	cfg := fixtureConfig(t)
	var pkgs []*Package
	for _, ip := range []string{fixtureBase + "purity_helpers", fixtureBase + "purity_bad"} {
		pkg, err := loader(t).Load(ip)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	var buf bytes.Buffer
	buildCallGraph(&cfg, pkgs).Dump(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "# call graph: ") {
		t.Errorf("dump misses the summary header:\n%s", out)
	}
	for _, frag := range []string{
		".Evaluate -> ", ".Stamp -> ", ".clock => time.Now (wall clock)",
		".SumValues => map iteration order",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("dump misses %q:\n%s", frag, out)
		}
	}
}

// TestParallelMatchesSequential pins the satellite guarantee: any worker
// count yields byte-identical, input-ordered diagnostics.
func TestParallelMatchesSequential(t *testing.T) {
	paths := []string{
		fixtureBase + "determ_bad", fixtureBase + "maporder_bad", fixtureBase + "unitsafety_bad",
		fixtureBase + "dimflow_bad", fixtureBase + "floateq_bad", fixtureBase + "goroutine_bad",
		fixtureBase + "purity_helpers", fixtureBase + "purity_bad", fixtureBase + "unusedallow_bad",
		fixtureBase + "allocflow_bad", fixtureBase + "allocflow_allow",
		fixtureBase + "lockcheck_bad", fixtureBase + "lockorder_bad", fixtureBase + "goescape_bad",
	}
	cfg := fixtureConfig(t)
	cfg.Workers = 1
	seq, err := RunWithLoader(cfg, loader(t), paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("expected findings from the bad fixtures")
	}
	for _, workers := range []int{2, 8} {
		cfg.Workers = workers
		par, err := RunWithLoader(cfg, loader(t), paths)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("workers=%d diverges from sequential:\nseq: %v\npar: %v", workers, seq, par)
		}
	}
}

func TestDedupeCollapsesSameSite(t *testing.T) {
	ds := []Diagnostic{
		{File: "a.go", Line: 4, Col: 2, Rule: "purity", Message: "second chain"},
		{File: "a.go", Line: 4, Col: 2, Rule: "purity", Message: "first chain"},
		{File: "a.go", Line: 4, Col: 2, Rule: "dimflow", Message: "different rule"},
	}
	sortDiagnostics(ds)
	got := dedupe(ds)
	if len(got) != 2 {
		t.Fatalf("dedupe kept %d diagnostics, want 2: %v", len(got), got)
	}
	if got[0].Rule != "dimflow" || got[1].Rule != "purity" {
		t.Errorf("unexpected survivors: %v", got)
	}
}

// TestDefaultConfigCoversModelPackages pins the model-package roster: every
// package whose outputs must be deterministic — telemetry included, since
// its exports are byte-diffable artefacts — is subject to the determinism
// and purity rules.
func TestDefaultConfigCoversModelPackages(t *testing.T) {
	cfg := DefaultConfig(moduleRoot(t), "repro")
	want := []string{
		"repro/internal/physics", "repro/internal/core", "repro/internal/sim",
		"repro/internal/faults", "repro/internal/telemetry", "repro/internal/tubenet",
	}
	have := map[string]bool{}
	for _, p := range cfg.ModelPackages {
		have[p] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("DefaultConfig model packages missing %s", w)
		}
	}
}

func TestModulePackages(t *testing.T) {
	pkgs, err := ModulePackages(moduleRoot(t), "repro")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"repro", "repro/internal/core", "repro/internal/lint", "repro/internal/units", "repro/cmd/dhllint"}
	have := map[string]bool{}
	for _, p := range pkgs {
		have[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into module walk: %s", p)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("ModulePackages missing %s", w)
		}
	}
}

// TestRepositoryIsLintClean is the self-hosting gate: the repository must
// pass its own linter (real violations fixed or justified with an
// explicit allow). This mirrors the scripts/check.sh tier-2 gate.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	cfg := DefaultConfig(root, "repro")
	pkgs, err := ModulePackages(root, "repro")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(cfg, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%v", d)
	}
}
