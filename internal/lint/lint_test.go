package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureBase = "repro/internal/lint/testdata/src/"

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Clean(filepath.Join(wd, "..", ".."))
}

// sharedLoader memoizes stdlib type-checking across the whole test run.
var sharedLoader *Loader

func loader(t *testing.T) *Loader {
	t.Helper()
	if sharedLoader == nil {
		sharedLoader = NewLoader(moduleRoot(t), "repro")
	}
	return sharedLoader
}

// fixtureConfig is the repository policy extended so the determ_*
// fixture packages count as model code.
func fixtureConfig(t *testing.T) Config {
	cfg := DefaultConfig(moduleRoot(t), "repro")
	cfg.ModelPackages = append(cfg.ModelPackages,
		fixtureBase+"determ_bad", fixtureBase+"determ_clean", fixtureBase+"determ_allow")
	return cfg
}

type diagKey struct {
	Rule string
	Line int
}

func keysOf(ds []Diagnostic) []diagKey {
	out := make([]diagKey, len(ds))
	for i, d := range ds {
		out[i] = diagKey{d.Rule, d.Line}
	}
	return out
}

func sameKeys(a, b []diagKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAnalyzersOnFixtures(t *testing.T) {
	tests := []struct {
		name    string
		fixture string
		mutate  func(*Config)
		want    []diagKey
	}{
		{
			name: "determinism true positives", fixture: "determ_bad",
			want: []diagKey{
				{"determinism", 13}, // time.Now
				{"determinism", 14}, // rand.Float64
				{"determinism", 19}, // time.Since
				{"determinism", 24}, // rand.Intn
				{"determinism", 29}, // os.Getenv
			},
		},
		{
			name: "determinism clean seeded rng", fixture: "determ_clean",
			want: nil,
		},
		{
			name: "determinism scope excludes non-model code", fixture: "determ_bad",
			mutate: func(c *Config) { c.ModelPackages = nil },
			want:   nil,
		},
		{
			name: "allow hatch suppresses with justification only", fixture: "determ_allow",
			want: []diagKey{
				{"allow", 17},       // bare allow, no reason
				{"determinism", 18}, // not suppressed by the bare allow
				{"determinism", 23}, // no allow at all
			},
		},
		{
			name: "maporder true positives", fixture: "maporder_bad",
			want: []diagKey{
				{"maporder", 12}, // fmt output in map order
				{"maporder", 21}, // returned slice in map order
				{"maporder", 30}, // float accumulation in map order
				{"maporder", 39}, // builder output in map order
			},
		},
		{
			name: "maporder clean idioms", fixture: "maporder_clean",
			want: nil,
		},
		{
			name: "unitsafety true positives", fixture: "unitsafety_bad",
			want: []diagKey{
				{"unitsafety", 10}, // Bytes → Seconds conversion
				{"unitsafety", 16}, // Seconds × Seconds
				{"unitsafety", 21}, // BitsPerSecond → Watts conversion
			},
		},
		{
			name: "unitsafety clean arithmetic", fixture: "unitsafety_clean",
			want: nil,
		},
		{
			name: "floateq true positives", fixture: "floateq_bad",
			want: []diagKey{
				{"floateq", 7},  // float64 ==
				{"floateq", 15}, // named float type !=
			},
		},
		{
			name: "floateq clean comparisons", fixture: "floateq_clean",
			want: nil,
		},
		{
			name: "goroutine true positives", fixture: "goroutine_bad",
			want: []diagKey{
				{"goroutine", 12}, // go outside sweep
				{"goroutine", 13}, // WaitGroup.Add inside closure
				{"goroutine", 23}, // plain go outside sweep
			},
		},
		{
			name: "goroutine Add race flagged even in allowed package", fixture: "goroutine_bad",
			mutate: func(c *Config) {
				c.GoroutineAllowed = append(c.GoroutineAllowed, fixtureBase+"goroutine_bad")
			},
			want: []diagKey{{"goroutine", 13}},
		},
		{
			name: "goroutine clean pool in allowed package", fixture: "goroutine_clean",
			mutate: func(c *Config) {
				c.GoroutineAllowed = append(c.GoroutineAllowed, fixtureBase+"goroutine_clean")
			},
			want: nil,
		},
		{
			name: "goroutine clean pool still flagged outside allowed set", fixture: "goroutine_clean",
			want: []diagKey{{"goroutine", 14}},
		},
		{
			name: "rule filter disables analyzer", fixture: "floateq_bad",
			mutate: func(c *Config) { c.Enabled = map[string]bool{"determinism": true} },
			want:   nil,
		},
		{
			name: "rule filter keeps selected analyzer", fixture: "floateq_bad",
			mutate: func(c *Config) { c.Enabled = map[string]bool{"floateq": true} },
			want:   []diagKey{{"floateq", 7}, {"floateq", 15}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg, err := loader(t).Load(fixtureBase + tt.fixture)
			if err != nil {
				t.Fatalf("load %s: %v", tt.fixture, err)
			}
			cfg := fixtureConfig(t)
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			got := LintPackage(&cfg, pkg)
			if !sameKeys(keysOf(got), tt.want) {
				t.Errorf("diagnostics = %v, want %v\nfull: %v", keysOf(got), tt.want, got)
			}
		})
	}
}

func TestRunAggregatesAndSorts(t *testing.T) {
	cfg := fixtureConfig(t)
	diags, err := Run(cfg, []string{fixtureBase + "unitsafety_bad", fixtureBase + "floateq_bad"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 5 {
		t.Fatalf("got %d diagnostics, want 5: %v", len(diags), diags)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
	for _, d := range diags {
		if d.Col < 1 || d.Line < 1 {
			t.Errorf("diagnostic missing position: %v", d)
		}
		if !strings.Contains(d.String(), d.Rule+":") {
			t.Errorf("String() misses rule: %q", d.String())
		}
	}
}

func TestModulePackages(t *testing.T) {
	pkgs, err := ModulePackages(moduleRoot(t), "repro")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"repro", "repro/internal/core", "repro/internal/lint", "repro/internal/units", "repro/cmd/dhllint"}
	have := map[string]bool{}
	for _, p := range pkgs {
		have[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into module walk: %s", p)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("ModulePackages missing %s", w)
		}
	}
}

// TestRepositoryIsLintClean is the self-hosting gate: the repository must
// pass its own linter (real violations fixed or justified with an
// explicit allow). This mirrors the scripts/check.sh tier-2 gate.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	cfg := DefaultConfig(root, "repro")
	pkgs, err := ModulePackages(root, "repro")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(cfg, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%v", d)
	}
}
