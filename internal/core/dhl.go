// Package core implements the paper's primary contribution: the analytical
// Data Centre Hyperloop (DHL) model of §IV and §V — single-launch metrics
// (Table VI left block), bulk-transfer comparisons against optical
// networking (Table VI right block), the design-space sweep, and the
// minimum-specification crossover analysis (§V-E).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cart"
	"repro/internal/netmodel"
	"repro/internal/physics"
	"repro/internal/units"
)

// Paper defaults (Table V, bold entries).
const (
	// DefaultDockTime is the pessimistic per-operation docking time: 3 s to
	// dock, 3 s to undock.
	DefaultDockTime units.Seconds = 3
	// DefaultAcceleration is 1000 m/s².
	DefaultAcceleration units.MetresPerSecond2 = 1000
	// DefaultLength is 500 m.
	DefaultLength units.Metres = 500
	// DefaultMaxSpeed is 200 m/s.
	DefaultMaxSpeed units.MetresPerSecond = 200
)

// Config is a DHL deployment configuration.
type Config struct {
	// Cart is the payload vehicle.
	Cart *cart.Cart
	// Length of the track between the two endpoints.
	Length units.Metres
	// MaxSpeed of the cart.
	MaxSpeed units.MetresPerSecond
	// Acceleration of the LIM ramps.
	Acceleration units.MetresPerSecond2
	// LIM is the accelerator/brake model.
	LIM physics.LIM
	// DockTime and UndockTime are the endpoint handling times.
	DockTime, UndockTime units.Seconds
	// TimeModel selects paper vs exact ramp accounting.
	TimeModel physics.TimeModel
}

// DefaultConfig is the paper's bold configuration: 256 TB cart, 500 m,
// 200 m/s, 1000 m/s², 75 % LIM, 3 s dock + 3 s undock.
func DefaultConfig() Config {
	return Config{
		Cart:         cart.MustNew(cart.DefaultConfig()),
		Length:       DefaultLength,
		MaxSpeed:     DefaultMaxSpeed,
		Acceleration: DefaultAcceleration,
		LIM:          physics.DefaultLIM(),
		DockTime:     DefaultDockTime,
		UndockTime:   DefaultDockTime,
		TimeModel:    physics.TimeModelPaper,
	}
}

// With returns a copy with the given speed, length, and cart SSD count.
func (c Config) With(speed units.MetresPerSecond, length units.Metres, numSSDs int) Config {
	c.MaxSpeed = speed
	c.Length = length
	c.Cart = cart.MustNew(cart.DefaultConfig().WithSSDs(numSSDs))
	return c
}

// Errors returned by validation.
var (
	ErrNoCart = errors.New("core: config needs a cart")
)

// Validate checks the configuration is physically realisable.
func (c Config) Validate() error {
	if c.Cart == nil {
		return ErrNoCart
	}
	if c.DockTime < 0 || c.UndockTime < 0 {
		return fmt.Errorf("core: docking times must be non-negative (dock=%v undock=%v)",
			c.DockTime, c.UndockTime)
	}
	if c.LIM.Efficiency <= 0 || c.LIM.Efficiency > 1 {
		return fmt.Errorf("core: %w", physics.ErrBadEfficiency)
	}
	_, err := physics.NewProfile(c.Length, c.MaxSpeed, c.Acceleration)
	return err
}

// profile returns the validated motion profile.
func (c Config) profile() (physics.Profile, error) {
	if err := c.Validate(); err != nil {
		return physics.Profile{}, err
	}
	return physics.NewProfile(c.Length, c.MaxSpeed, c.Acceleration)
}

// String summarises the configuration in the paper's DHL-X-Y-Z notation.
func (c Config) String() string {
	capTB := 0.0
	if c.Cart != nil {
		capTB = c.Cart.Capacity().TBf()
	}
	return fmt.Sprintf("DHL-%g-%g-%g", float64(c.MaxSpeed), float64(c.Length), capTB)
}

// LaunchMetrics are the paper's five single-launch metrics (§IV-D, Table VI
// middle block).
type LaunchMetrics struct {
	Config Config

	// Energy to launch and brake one cart between the endpoints.
	Energy units.Joules
	// Time to undock, accelerate, cruise, brake, and dock.
	Time units.Seconds
	// Bandwidth is the embodied bandwidth: cart capacity / Time (no
	// pipelining, conservative).
	Bandwidth units.BytesPerSecond
	// PeakPower during acceleration.
	PeakPower units.Watts
	// Efficiency is data moved per energy, in GB/J.
	Efficiency float64
}

// Launch computes the single-launch metrics.
func Launch(c Config) (LaunchMetrics, error) {
	p, err := c.profile()
	if err != nil {
		return LaunchMetrics{}, err
	}
	m := c.Cart.TotalMass
	energy := c.LIM.LaunchEnergy(m, c.MaxSpeed)
	t := c.UndockTime + p.TransitTime(c.TimeModel) + c.DockTime
	cap := c.Cart.Capacity()
	return LaunchMetrics{
		Config:     c,
		Energy:     energy,
		Time:       t,
		Bandwidth:  units.BytesPerSecond(float64(cap) / float64(t)),
		PeakPower:  c.LIM.PeakPower(m, c.Acceleration, c.MaxSpeed),
		Efficiency: units.GBPerJoule(cap, energy),
	}, nil
}

// AveragePower is the launch energy spread over the launch time — the
// quantity the paper's simulation budget (1.75 kW for the default config) is
// built from.
func (l LaunchMetrics) AveragePower() units.Watts {
	return units.Power(l.Energy, l.Time)
}

// String renders the metrics like a Table VI row.
func (l LaunchMetrics) String() string {
	return fmt.Sprintf("%v: E=%v t=%v BW=%v P=%v eff=%.1fGB/J",
		l.Config, l.Energy, l.Time, l.Bandwidth, l.PeakPower, l.Efficiency)
}

// BulkTransfer is the analytical cost of moving a dataset with repeated cart
// trips (§V-B).
type BulkTransfer struct {
	Launch LaunchMetrics
	// Dataset moved.
	Dataset units.Bytes
	// DeliveryTrips is the number of loaded cart deliveries
	// (ceil(dataset / cart)). For 29 PB this is 227/114/57 for
	// 128/256/512 TB carts.
	DeliveryTrips int
	// TotalTrips includes the paper's return-trip doubling: the endpoint's
	// limited dock capacity forces carts back to the library, so
	// TotalTrips = ceil(2 × dataset / cart).
	TotalTrips int
	// Time and Energy for the whole transfer.
	Time   units.Seconds
	Energy units.Joules
}

// Transfer computes the bulk-transfer cost of moving dataset bytes.
func Transfer(c Config, dataset units.Bytes) (BulkTransfer, error) {
	l, err := Launch(c)
	if err != nil {
		return BulkTransfer{}, err
	}
	return transferFromLaunch(l, dataset)
}

// transferFromLaunch derives the bulk-transfer cost from already-computed
// launch metrics (shared by Transfer and LaunchCache.Transfer).
func transferFromLaunch(l LaunchMetrics, dataset units.Bytes) (BulkTransfer, error) {
	if dataset <= 0 {
		return BulkTransfer{}, fmt.Errorf("core: dataset must be positive, got %v", dataset)
	}
	capB := float64(l.Config.Cart.Capacity())
	deliveries := int(math.Ceil(float64(dataset) / capB))
	total := int(math.Ceil(2 * float64(dataset) / capB))
	return BulkTransfer{
		Launch:        l,
		Dataset:       dataset,
		DeliveryTrips: deliveries,
		TotalTrips:    total,
		Time:          units.Seconds(float64(total) * float64(l.Time)),
		Energy:        units.Joules(float64(total) * float64(l.Energy)),
	}, nil
}

// Comparison relates a DHL bulk transfer to an optical-network scenario.
type Comparison struct {
	Transfer BulkTransfer
	Scenario netmodel.Scenario
	// NetworkTime and NetworkEnergy of the optical transfer.
	NetworkTime   units.Seconds
	NetworkEnergy units.Joules
	// TimeSpeedup = NetworkTime / DHL time.
	TimeSpeedup units.Ratio
	// EnergyReduction = NetworkEnergy / DHL energy.
	EnergyReduction units.Ratio
}

// Compare evaluates a DHL transfer against one network scenario.
func Compare(tr BulkTransfer, s netmodel.Scenario) Comparison {
	nt := netmodel.TransferTime(tr.Dataset)
	ne := s.Power().Energy(tr.Dataset)
	return Comparison{
		Transfer:        tr,
		Scenario:        s,
		NetworkTime:     nt,
		NetworkEnergy:   ne,
		TimeSpeedup:     units.Ratio(float64(nt) / float64(tr.Time)),
		EnergyReduction: units.Ratio(float64(ne) / float64(tr.Energy)),
	}
}

// CompareAll evaluates the transfer against every scenario, in paper order.
func CompareAll(tr BulkTransfer) []Comparison {
	out := make([]Comparison, 0, 5)
	for _, s := range netmodel.Scenarios() {
		out = append(out, Compare(tr, s))
	}
	return out
}

// PaperDataset is the paper's running example: Meta's 29 PB ML dataset.
const PaperDataset = 29 * units.PB
