package core

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cart"
	"repro/internal/sweep"
	"repro/internal/units"
)

// renderRows flattens Table VI rows through their string formatting, so a
// comparison catches any byte-level divergence a reader of the tables would
// see (reflect.DeepEqual separately catches structural divergence).
func renderRows(rows []TableVIRow) string {
	s := ""
	for _, r := range rows {
		s += r.Launch.String() + "\n"
		s += fmt.Sprintf("%v %d %d %v %v\n", r.Transfer.Dataset,
			r.Transfer.DeliveryTrips, r.Transfer.TotalTrips, r.Transfer.Time, r.Transfer.Energy)
		for _, c := range r.Comparisons {
			s += fmt.Sprintf("%v %v %v %v %v\n", c.Scenario, c.NetworkTime, c.NetworkEnergy,
				c.TimeSpeedup, c.EnergyReduction)
		}
	}
	return s
}

// TestDesignSpaceMatchesPlainLoop is the acceptance gate for the sweep
// engine: the parallel DesignSpace must be byte-identical to a plain
// sequential loop over the same configurations.
func TestDesignSpaceMatchesPlainLoop(t *testing.T) {
	var want []TableVIRow
	for _, c := range DesignSpaceConfigs() {
		tr, err := Transfer(c, PaperDataset)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, TableVIRow{Launch: tr.Launch, Transfer: tr, Comparisons: CompareAll(tr)})
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := DesignSpace(sweep.Workers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel design space diverges from the plain loop", workers)
		}
		if g, w := renderRows(got), renderRows(want); g != w {
			t.Fatalf("workers=%d: rendered rows differ:\n%s\nvs\n%s", workers, g, w)
		}
	}
}

// TestAblationsMatchPlainLoop checks the three rewired ablations against
// handwritten sequential loops.
func TestAblationsMatchPlainLoop(t *testing.T) {
	base := DefaultConfig()

	dockTimes := []units.Seconds{0, 1, 2, 3, 4, 5}
	var wantDock []DockSensitivityRow
	for _, d := range dockTimes {
		c := base
		c.DockTime, c.UndockTime = d, d
		l, err := Launch(c)
		if err != nil {
			t.Fatal(err)
		}
		wantDock = append(wantDock, DockSensitivityRow{DockTime: d, Launch: l, DockShare: float64(2*d) / float64(l.Time)})
	}

	accels := []units.MetresPerSecond2{250, 500, 1000, 2000}
	var wantAccel []AccelerationRow
	fastest := units.Seconds(0)
	for i, a := range accels {
		c := base
		c.Acceleration = a
		l, err := Launch(c)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || l.Time < fastest {
			fastest = l.Time
		}
		wantAccel = append(wantAccel, AccelerationRow{Acceleration: a, Launch: l, LIMLength: c.LIM.RequiredLength(c.MaxSpeed, a)})
	}
	for i := range wantAccel {
		wantAccel[i].ExtraTime = wantAccel[i].Launch.Time - fastest
	}

	regens := []float64{0, 0.16, 0.3, 0.5, 0.7}
	baseline, err := Launch(base)
	if err != nil {
		t.Fatal(err)
	}
	var wantRegen []RegenRow
	for _, g := range regens {
		c := base
		c.LIM.RegenEfficiency = g
		l, err := Launch(c)
		if err != nil {
			t.Fatal(err)
		}
		wantRegen = append(wantRegen, RegenRow{Regen: g, Energy: l.Energy,
			Saving: units.Ratio(float64(baseline.Energy) / float64(l.Energy))})
	}

	for _, workers := range []int{1, 8} {
		opt := sweep.Workers(workers)
		gotDock, err := DockTimeSensitivity(base, dockTimes, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotDock, wantDock) {
			t.Fatalf("workers=%d: dock ablation diverges from the plain loop", workers)
		}
		gotAccel, err := AccelerationTradeoff(base, accels, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotAccel, wantAccel) {
			t.Fatalf("workers=%d: acceleration ablation diverges from the plain loop", workers)
		}
		gotRegen, err := RegenerativeBrakingSavings(base, regens, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRegen, wantRegen) {
			t.Fatalf("workers=%d: regen ablation diverges from the plain loop", workers)
		}
	}
}

func TestDockTimeSensitivityRejectsNegative(t *testing.T) {
	if _, err := DockTimeSensitivity(DefaultConfig(), []units.Seconds{3, -1}); err == nil {
		t.Fatal("negative dock time: want error")
	}
}

// TestFineDesignSpaceContainsTableVI pins the "special case" claim: every
// one of the 13 Table VI rows appears, identically evaluated, among the 27
// points of the paper-resolution grid.
func TestFineDesignSpaceContainsTableVI(t *testing.T) {
	fine, err := FineDesignSpace(context.Background(), PaperResolutionGrid(), PaperDataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) != 27 {
		t.Fatalf("paper-resolution grid has %d rows, want 27", len(fine))
	}
	paper, err := DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range paper {
		found := false
		for _, f := range fine {
			if f.Launch.Config.String() == row.Launch.Config.String() {
				found = true
				if f.Launch.String() != row.Launch.String() {
					t.Fatalf("row %d (%v): grid evaluation differs: %v vs %v",
						i, row.Launch.Config, f.Launch, row.Launch)
				}
				break
			}
		}
		if !found {
			t.Fatalf("Table VI row %d (%v) missing from the paper-resolution grid", i, row.Launch.Config)
		}
	}
}

// TestFineDesignSpaceDeterministic runs a 200-point grid twice in parallel
// and once sequentially; all three must render to identical bytes.
func TestFineDesignSpaceDeterministic(t *testing.T) {
	g, err := UniformFineGrid(8, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 200 {
		t.Fatalf("grid size = %d, want 200", g.Size())
	}
	ctx := context.Background()
	seq, err := FineDesignSpace(ctx, g, PaperDataset, sweep.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		par, err := FineDesignSpace(ctx, g, PaperDataset, sweep.Workers(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("run %d: parallel fine grid diverges from sequential", run)
		}
		if renderRows(par) != renderRows(seq) {
			t.Fatalf("run %d: rendered fine grids differ", run)
		}
	}
}

func TestUniformFineGridResolution(t *testing.T) {
	g, err := UniformFineGrid(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Configs(DefaultConfig())[0]
	if cfg.String() != "DHL-200-500-256" {
		t.Fatalf("resolution-1 grid = %v, want the paper default", cfg)
	}
	if _, err := UniformFineGrid(0, 3, 3); err == nil {
		t.Fatal("zero resolution: want error")
	}
	// Multi-point axes span the Table V ranges endpoint to endpoint.
	g3, err := UniformFineGrid(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g3.Speeds[0] != 100 || g3.Speeds[2] != 300 {
		t.Fatalf("speed axis %v does not span [100, 300]", g3.Speeds)
	}
	if g3.Lengths[0] != 100 || g3.Lengths[3] != 1000 {
		t.Fatalf("length axis %v does not span [100, 1000]", g3.Lengths)
	}
	if g3.SSDs[0] != 16 || g3.SSDs[1] != 64 {
		t.Fatalf("SSD axis %v does not span [16, 64]", g3.SSDs)
	}
}

func TestLaunchCache(t *testing.T) {
	cache := NewLaunchCache()
	base := DefaultConfig()
	direct, err := Launch(base)
	if err != nil {
		t.Fatal(err)
	}
	// Two Configs describing the same deployment through different cart
	// instances share one evaluation.
	twin := base
	twin.Cart = cart.MustNew(cart.DefaultConfig())
	for _, c := range []Config{base, twin, base} {
		got, err := cache.Launch(c)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != direct.String() {
			t.Fatalf("cached launch %v differs from direct %v", got, direct)
		}
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d keys, want 1", cache.Len())
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
	// A nil cache degrades to direct evaluation.
	var nilCache *LaunchCache
	got, err := nilCache.Launch(base)
	if err != nil || got.String() != direct.String() {
		t.Fatalf("nil cache: %v, %v", got, err)
	}
}

// TestParallelSweepSpeedup asserts the ≥2× speedup of the parallel fine-grid
// sweep over the sequential path. It needs real hardware parallelism, so it
// skips below 4 cores (BenchmarkFineDesignSpace* measures the same thing as
// a benchmark pair).
func TestParallelSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 cores for the speedup assertion, have %d", runtime.GOMAXPROCS(0))
	}
	g, err := UniformFineGrid(10, 5, 5) // 250 points
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	measure := func(workers int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := FineDesignSpace(ctx, g, PaperDataset, sweep.Workers(workers)); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	seq := measure(1)
	par := measure(0)
	if par*2 > seq {
		t.Errorf("parallel sweep %v not ≥2× faster than sequential %v on %d cores",
			par, seq, runtime.GOMAXPROCS(0))
	}
}
