package core

import (
	"testing"

	"repro/internal/units"
)

func TestTransferPipelinedValidation(t *testing.T) {
	if _, err := TransferPipelined(DefaultConfig(), units.PB, PipelineOptions{DockStations: 0}); err == nil {
		t.Error("zero stations must error")
	}
	if _, err := TransferPipelined(DefaultConfig(), units.PB,
		PipelineOptions{DockStations: 1, ReadRate: -1}); err == nil {
		t.Error("negative read rate must error")
	}
	if _, err := TransferPipelined(DefaultConfig(), 0, PipelineOptions{DockStations: 1}); err == nil {
		t.Error("zero dataset must error")
	}
}

func TestPipelinedDeliveryOnlySingleRail(t *testing.T) {
	// Single rail, no reads: cadence is a full round trip — exactly the
	// Table VI accounting, so time matches the conservative model to within
	// the final return leg.
	pt, err := TransferPipelined(DefaultConfig(), PaperDataset, PipelineOptions{DockStations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Cadence != 2*pt.Base.Launch.Time {
		t.Errorf("cadence = %v, want round trip", pt.Cadence)
	}
	ratio := float64(pt.Time) / float64(pt.Base.Time)
	if ratio < 0.98 || ratio > 1.01 {
		t.Errorf("single-rail pipelined/%v conservative ratio = %v, want ≈1", pt.Base.Time, ratio)
	}
}

func TestDualRailHalvesDeliveryTime(t *testing.T) {
	// §V-B / §VI: dual rails avoid the return expense → cadence one-way.
	single, err := TransferPipelined(DefaultConfig(), PaperDataset, PipelineOptions{DockStations: 1})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := TransferPipelined(DefaultConfig(), PaperDataset,
		PipelineOptions{DualRail: true, DockStations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Cadence != single.Cadence/2 {
		t.Errorf("dual cadence = %v, want half of %v", dual.Cadence, single.Cadence)
	}
	speedup := float64(single.Time) / float64(dual.Time)
	if speedup < 1.9 || speedup > 2.05 {
		t.Errorf("dual-rail speedup = %v, want ≈2", speedup)
	}
	if dual.Speedup < 1.9 {
		t.Errorf("speedup vs Table VI accounting = %v, want ≈2", dual.Speedup)
	}
}

func TestReadLimitedPipelineAndStations(t *testing.T) {
	// With endpoint reads at 227.2 GB/s, a 256 TB cart takes ~1127 s to
	// read — far beyond the 8.6 s rail cadence, so reads dominate and
	// stations divide the cadence.
	readRate := 227.2 * units.GBps
	one, err := TransferPipelined(DefaultConfig(), 10*256*units.TB,
		PipelineOptions{DualRail: true, DockStations: 1, ReadRate: readRate})
	if err != nil {
		t.Fatal(err)
	}
	four, err := TransferPipelined(DefaultConfig(), 10*256*units.TB,
		PipelineOptions{DualRail: true, DockStations: 4, ReadRate: readRate})
	if err != nil {
		t.Fatal(err)
	}
	if one.Cadence <= four.Cadence {
		t.Error("more stations must shorten the read-limited cadence")
	}
	speedup := float64(one.Time) / float64(four.Time)
	if speedup < 3 || speedup > 4.05 {
		t.Errorf("4-station speedup = %v, want ≈4 on a read-limited pipeline", speedup)
	}
	// Fleet sizing: a read-limited single-station pipeline needs few carts;
	// more stations need more carts in flight.
	if one.CartsInFlight() >= four.CartsInFlight() {
		t.Errorf("carts in flight: %d (1 station) vs %d (4 stations)",
			one.CartsInFlight(), four.CartsInFlight())
	}
}

func TestPipelineBandwidthConsistency(t *testing.T) {
	pt, err := TransferPipelined(DefaultConfig(), PaperDataset,
		PipelineOptions{DualRail: true, DockStations: 4})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "bandwidth", float64(pt.Bandwidth),
		float64(PaperDataset)/float64(pt.Time), 1e-12)
	// Dual-rail delivery-only: steady-state BW approaches cart/oneWay ≈
	// 29.8 TB/s.
	if pt.Bandwidth < 28*units.TBps {
		t.Errorf("pipelined BW = %v, want ≈29.8 TB/s", pt.Bandwidth)
	}
}
