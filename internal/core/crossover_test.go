package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sweep"
	"repro/internal/units"
)

// TestDHLWinsAtExactBreakEven pins the boundary semantics of DHLWins: the
// DHL wins at exactly the break-even dataset size (the comparison is ≥, not
// >), loses one byte below it, and loses just past the cart's capacity.
func TestDHLWinsAtExactBreakEven(t *testing.T) {
	r, err := Crossover(MinimumSpecConfig(), netmodel.ScenarioA0)
	if err != nil {
		t.Fatal(err)
	}
	if r.BreakEvenDataset <= 0 {
		t.Fatalf("break-even = %v, want positive", r.BreakEvenDataset)
	}
	cap := r.Config.Cart.Capacity()
	if r.BreakEvenDataset > cap {
		t.Fatalf("minimum-spec break-even %v exceeds the cart capacity %v", r.BreakEvenDataset, cap)
	}
	cases := []struct {
		name    string
		dataset units.Bytes
		want    bool
	}{
		{"exactly break-even", r.BreakEvenDataset, true},
		{"one byte below", r.BreakEvenDataset - 1, false},
		{"exactly capacity", cap, true},
		{"one byte over capacity", cap + 1, false},
	}
	for _, tc := range cases {
		if got := r.DHLWins(tc.dataset); got != tc.want {
			t.Errorf("%s (%v): DHLWins = %v, want %v", tc.name, tc.dataset, got, tc.want)
		}
	}
}

func TestCrossoverAllMatchesPlainLoop(t *testing.T) {
	cfg := MinimumSpecConfig()
	var want []CrossoverResult
	for _, s := range netmodel.Scenarios() {
		r, err := Crossover(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	for _, workers := range []int{1, 8} {
		got, err := CrossoverAll(context.Background(), cfg, sweep.Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: CrossoverAll diverges from the plain loop", workers)
		}
	}
}

func TestMinimumSpecSearch(t *testing.T) {
	base := MinimumSpecConfig()
	// A small grid around the paper's §V-E operating point. The 200 m/s
	// points are unrealisable on a 10 m track (the ramps alone need 40 m),
	// so the search must mark them invalid rather than fail.
	g := FineGrid{
		Speeds:  []units.MetresPerSecond{10, 20, 200},
		Lengths: []units.Metres{10, 50},
		SSDs:    []int{1, 2, 4},
	}
	dataset := 360 * units.GB
	res, err := MinimumSpecSearch(context.Background(), base, g, dataset, netmodel.ScenarioA0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != g.Size() {
		t.Fatalf("points = %d, want %d", len(res.Points), g.Size())
	}
	var invalid, wins int
	for _, p := range res.Points {
		if !p.Valid {
			invalid++
			if p.Wins {
				t.Fatalf("invalid point %v marked as winning", p.Config)
			}
			continue
		}
		if p.Wins != p.Crossover.DHLWins(dataset) {
			t.Fatalf("point %v: Wins inconsistent with DHLWins", p.Config)
		}
		if p.Wins {
			wins++
		}
	}
	if invalid == 0 {
		t.Fatal("expected the 100 m/s × 10 m points to be unrealisable")
	}
	if wins == 0 || res.Best == nil {
		t.Fatalf("no winning point (invalid=%d)", invalid)
	}
	// §V-E: a slow, short, one-SSD DHL already beats the single optical
	// link around 360 GB — the minimum spec must be a one-SSD cart.
	if n := res.Best.Config.Cart.Config.NumSSDs; n != 1 {
		t.Errorf("best spec uses %d SSDs, want 1 (%v)", n, res.Best.Config)
	}
	// Determinism: the same search in parallel picks the same best point.
	par, err := MinimumSpecSearch(context.Background(), base, g, dataset, netmodel.ScenarioA0, sweep.Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.Points, res.Points) || par.Best.Config.String() != res.Best.Config.String() {
		t.Fatal("parallel search diverges from sequential")
	}

	if _, err := MinimumSpecSearch(context.Background(), base, g, 0, netmodel.ScenarioA0); err == nil {
		t.Fatal("zero dataset: want error")
	}
	if _, err := MinimumSpecSearch(context.Background(), base, FineGrid{}, dataset, netmodel.ScenarioA0); err == nil {
		t.Fatal("empty grid: want error")
	}
}
