package core

import (
	"repro/internal/cart"
	"repro/internal/physics"
	"repro/internal/sweep"
	"repro/internal/units"
)

// launchKey is the value identity of a Config for memoization: every field
// that Launch reads, with the cart pointer replaced by its value-type build
// configuration, so two Configs describing the same physical deployment
// share a key even when their *cart.Cart instances differ.
type launchKey struct {
	HasCart      bool
	Cart         cart.Config
	Length       units.Metres
	MaxSpeed     units.MetresPerSecond
	Acceleration units.MetresPerSecond2
	LIM          physics.LIM
	DockTime     units.Seconds
	UndockTime   units.Seconds
	TimeModel    physics.TimeModel
}

func keyOf(c Config) launchKey {
	k := launchKey{
		Length:       c.Length,
		MaxSpeed:     c.MaxSpeed,
		Acceleration: c.Acceleration,
		LIM:          c.LIM,
		DockTime:     c.DockTime,
		UndockTime:   c.UndockTime,
		TimeModel:    c.TimeModel,
	}
	if c.Cart != nil {
		k.HasCart = true
		k.Cart = c.Cart.Config
	}
	return k
}

// LaunchCache memoizes Launch evaluations across a sweep, keyed by the
// configuration's value identity. Fine design grids and the Figure 6 track
// sweeps evaluate the same Config at many points; the cache makes each
// distinct physical configuration cost one Launch. It is safe for
// concurrent use by sweep workers, and a nil *LaunchCache degrades to
// uncached evaluation.
type LaunchCache struct {
	cache sweep.Cache[launchKey, LaunchMetrics]
}

// NewLaunchCache returns an empty cache.
func NewLaunchCache() *LaunchCache { return &LaunchCache{} }

// Launch is a memoized core.Launch.
func (lc *LaunchCache) Launch(c Config) (LaunchMetrics, error) {
	if lc == nil {
		return Launch(c)
	}
	return lc.cache.Do(keyOf(c), func() (LaunchMetrics, error) {
		return Launch(c)
	})
}

// Transfer is a memoized-launch core.Transfer.
func (lc *LaunchCache) Transfer(c Config, dataset units.Bytes) (BulkTransfer, error) {
	l, err := lc.Launch(c)
	if err != nil {
		return BulkTransfer{}, err
	}
	return transferFromLaunch(l, dataset)
}

// Len is the number of distinct configurations evaluated.
func (lc *LaunchCache) Len() int {
	if lc == nil {
		return 0
	}
	return lc.cache.Len()
}

// Stats reports cache hits (launches avoided) and misses (launches run).
func (lc *LaunchCache) Stats() (hits, misses int64) {
	if lc == nil {
		return 0, 0
	}
	return lc.cache.Stats()
}
