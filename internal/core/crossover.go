package core

import (
	"fmt"

	"repro/internal/cart"
	"repro/internal/netmodel"
	"repro/internal/storage"
	"repro/internal/units"
)

// §V-E: minimum specifications for a DHL to outperform optical networking.
// The 6 s dock/undock overhead is unavoidable even for tiny transfers, but
// carts can be launched slowly, so the break-even dataset for a short, slow
// DHL is small: the paper's example (10 m/s, 10 m, 360 GB cart) breaks even
// against a single A0 optical link at roughly 360 GB, with the optical link
// additionally paying ~144 J that the DHL launch does not.

// MinimumSpecConfig is the paper's §V-E operating point: a one-SSD cart
// capped at 360 GB usable, 10 m/s, 10 m track.
func MinimumSpecConfig() Config {
	c := DefaultConfig()
	c.MaxSpeed = 10
	c.Length = 10
	c.Cart = cart.MustNew(cart.Config{
		SSD:            storage.SabrentRocket4Plus,
		NumSSDs:        1,
		FrameMass:      cart.DefaultFrameMass,
		MagnetFraction: cart.MagnetMassFraction,
		FinFraction:    cart.FinMassFraction,
	})
	return c
}

// CrossoverResult describes the break-even point between one DHL launch and
// a single optical link.
type CrossoverResult struct {
	Config Config
	// LaunchTime of one DHL trip (the optical link must beat this).
	LaunchTime units.Seconds
	// BreakEvenDataset: the dataset size at which the optical link takes
	// exactly LaunchTime. Larger transfers favour the DHL.
	BreakEvenDataset units.Bytes
	// OpticalEnergy the link spends over LaunchTime (scenario-dependent).
	OpticalEnergy units.Joules
	// DHLEnergy of the single launch.
	DHLEnergy units.Joules
}

// Crossover computes the break-even dataset for one DHL launch versus a
// single link of the given scenario.
func Crossover(c Config, s netmodel.Scenario) (CrossoverResult, error) {
	l, err := Launch(c)
	if err != nil {
		return CrossoverResult{}, err
	}
	breakEven := units.Bytes(float64(netmodel.LinkBandwidth()) * float64(l.Time))
	return CrossoverResult{
		Config:           c,
		LaunchTime:       l.Time,
		BreakEvenDataset: breakEven,
		OpticalEnergy:    units.Energy(s.Power().Total(), l.Time),
		DHLEnergy:        l.Energy,
	}, nil
}

// DHLWins reports whether a DHL single launch beats the optical link for the
// given dataset: it must fit on the cart and exceed the break-even size.
func (r CrossoverResult) DHLWins(dataset units.Bytes) bool {
	return dataset >= r.BreakEvenDataset && dataset <= r.Config.Cart.Capacity()
}

// EnergyAdvantage is optical energy divided by DHL energy at the break-even
// point (>1 means the DHL also wins on energy).
func (r CrossoverResult) EnergyAdvantage() units.Ratio {
	if r.DHLEnergy <= 0 {
		return units.Ratio(0)
	}
	return units.Ratio(float64(r.OpticalEnergy) / float64(r.DHLEnergy))
}

// String summarises the crossover.
func (r CrossoverResult) String() string {
	return fmt.Sprintf("crossover{%v: break-even %v in %v; optical %v vs DHL %v}",
		r.Config, r.BreakEvenDataset, r.LaunchTime, r.OpticalEnergy, r.DHLEnergy)
}

// MinimumTrackLength returns the shortest track on which the configuration's
// profile is realisable (twice the LIM ramp length).
func MinimumTrackLength(c Config) units.Metres {
	return units.Metres(2 * float64(c.MaxSpeed) * float64(c.MaxSpeed) / (2 * float64(c.Acceleration)))
}
