package core

import (
	"context"
	"fmt"

	"repro/internal/cart"
	"repro/internal/netmodel"
	"repro/internal/storage"
	"repro/internal/sweep"
	"repro/internal/units"
)

// §V-E: minimum specifications for a DHL to outperform optical networking.
// The 6 s dock/undock overhead is unavoidable even for tiny transfers, but
// carts can be launched slowly, so the break-even dataset for a short, slow
// DHL is small: the paper's example (10 m/s, 10 m, 360 GB cart) breaks even
// against a single A0 optical link at roughly 360 GB, with the optical link
// additionally paying ~144 J that the DHL launch does not.

// MinimumSpecConfig is the paper's §V-E operating point: a one-SSD cart
// capped at 360 GB usable, 10 m/s, 10 m track.
func MinimumSpecConfig() Config {
	c := DefaultConfig()
	c.MaxSpeed = 10
	c.Length = 10
	c.Cart = cart.MustNew(cart.Config{
		SSD:            storage.SabrentRocket4Plus,
		NumSSDs:        1,
		FrameMass:      cart.DefaultFrameMass,
		MagnetFraction: cart.MagnetMassFraction,
		FinFraction:    cart.FinMassFraction,
	})
	return c
}

// CrossoverResult describes the break-even point between one DHL launch and
// a single optical link.
type CrossoverResult struct {
	Config Config
	// LaunchTime of one DHL trip (the optical link must beat this).
	LaunchTime units.Seconds
	// BreakEvenDataset: the dataset size at which the optical link takes
	// exactly LaunchTime. Larger transfers favour the DHL.
	BreakEvenDataset units.Bytes
	// OpticalEnergy the link spends over LaunchTime (scenario-dependent).
	OpticalEnergy units.Joules
	// DHLEnergy of the single launch.
	DHLEnergy units.Joules
}

// Crossover computes the break-even dataset for one DHL launch versus a
// single link of the given scenario.
func Crossover(c Config, s netmodel.Scenario) (CrossoverResult, error) {
	l, err := Launch(c)
	if err != nil {
		return CrossoverResult{}, err
	}
	breakEven := units.Bytes(float64(netmodel.LinkBandwidth()) * float64(l.Time))
	return CrossoverResult{
		Config:           c,
		LaunchTime:       l.Time,
		BreakEvenDataset: breakEven,
		OpticalEnergy:    units.Energy(s.Power().Total(), l.Time),
		DHLEnergy:        l.Energy,
	}, nil
}

// DHLWins reports whether a DHL single launch beats the optical link for the
// given dataset: it must fit on the cart and exceed the break-even size.
func (r CrossoverResult) DHLWins(dataset units.Bytes) bool {
	return dataset >= r.BreakEvenDataset && dataset <= r.Config.Cart.Capacity()
}

// EnergyAdvantage is optical energy divided by DHL energy at the break-even
// point (>1 means the DHL also wins on energy).
func (r CrossoverResult) EnergyAdvantage() units.Ratio {
	if r.DHLEnergy <= 0 {
		return units.Ratio(0)
	}
	return units.Ratio(float64(r.OpticalEnergy) / float64(r.DHLEnergy))
}

// String summarises the crossover.
func (r CrossoverResult) String() string {
	return fmt.Sprintf("crossover{%v: break-even %v in %v; optical %v vs DHL %v}",
		r.Config, r.BreakEvenDataset, r.LaunchTime, r.OpticalEnergy, r.DHLEnergy)
}

// MinimumTrackLength returns the shortest track on which the configuration's
// profile is realisable (twice the LIM ramp length).
func MinimumTrackLength(c Config) units.Metres {
	return units.Metres(2 * float64(c.MaxSpeed) * float64(c.MaxSpeed) / (2 * float64(c.Acceleration)))
}

// CrossoverAll computes the break-even point of one configuration against
// every network scenario in paper order, on the parallel sweep engine.
func CrossoverAll(ctx context.Context, c Config, opts ...sweep.Option) ([]CrossoverResult, error) {
	return sweep.Map(ctx, netmodel.Scenarios(),
		func(_ context.Context, s netmodel.Scenario) (CrossoverResult, error) {
			return Crossover(c, s)
		}, opts...)
}

// SpecSearchPoint is one evaluated point of a minimum-specification search.
type SpecSearchPoint struct {
	Config Config
	// Valid is false for grid points that are not physically realisable
	// (e.g. a track too short to reach the speed); such points carry a zero
	// Crossover and never win.
	Valid     bool
	Crossover CrossoverResult
	// Wins reports whether the DHL beats the optical link at the search
	// dataset size (the dataset exceeds break-even and fits on the cart).
	Wins bool
}

// SpecSearchResult is the outcome of MinimumSpecSearch.
type SpecSearchResult struct {
	Dataset  units.Bytes
	Scenario netmodel.Scenario
	// Points holds every grid point in row-major grid order.
	Points []SpecSearchPoint
	// Best is the minimum specification among winning points — smallest
	// cart, then slowest speed, then shortest track — or nil if no point
	// wins. It indexes into Points.
	Best *SpecSearchPoint
}

// MinimumSpecSearch generalises the paper's §V-E argument to a grid: it
// sweeps speed × length × capacity points around base in parallel, computes
// each point's break-even against the scenario, and selects the minimum
// specification whose single launch beats the optical link for the given
// dataset. Unrealisable grid points are marked invalid rather than aborting
// the search. The selection scans points in input order, so the result is
// deterministic regardless of evaluation order.
func MinimumSpecSearch(ctx context.Context, base Config, g FineGrid, dataset units.Bytes, s netmodel.Scenario, opts ...sweep.Option) (SpecSearchResult, error) {
	if dataset <= 0 {
		return SpecSearchResult{}, fmt.Errorf("core: search dataset must be positive, got %v", dataset)
	}
	if g.Size() == 0 {
		return SpecSearchResult{}, fmt.Errorf("core: empty search grid")
	}
	points, err := sweep.Map(ctx, g.Configs(base),
		func(_ context.Context, c Config) (SpecSearchPoint, error) {
			if c.Validate() != nil {
				return SpecSearchPoint{Config: c}, nil
			}
			r, err := Crossover(c, s)
			if err != nil {
				return SpecSearchPoint{}, err
			}
			return SpecSearchPoint{
				Config:    c,
				Valid:     true,
				Crossover: r,
				Wins:      r.DHLWins(dataset),
			}, nil
		}, opts...)
	if err != nil {
		return SpecSearchResult{}, err
	}
	res := SpecSearchResult{Dataset: dataset, Scenario: s, Points: points}
	for i := range points {
		p := &points[i]
		if !p.Wins {
			continue
		}
		if res.Best == nil || lighterSpec(p.Config, res.Best.Config) {
			res.Best = p
		}
	}
	return res, nil
}

// lighterSpec orders configurations by how little they demand: smaller cart
// first, then lower speed, then shorter track.
func lighterSpec(a, b Config) bool {
	if ca, cb := a.Cart.Capacity(), b.Cart.Capacity(); ca < cb || cb < ca {
		return ca < cb
	}
	if a.MaxSpeed < b.MaxSpeed || b.MaxSpeed < a.MaxSpeed {
		return a.MaxSpeed < b.MaxSpeed
	}
	return a.Length < b.Length
}
