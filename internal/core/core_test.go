package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/netmodel"
	"repro/internal/physics"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestConfigValidation(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c.Cart = nil
	if err := c.Validate(); !errors.Is(err, ErrNoCart) {
		t.Errorf("err = %v", err)
	}
	c = DefaultConfig()
	c.DockTime = -1
	if err := c.Validate(); err == nil {
		t.Error("negative dock time must be rejected")
	}
	c = DefaultConfig()
	c.LIM.Efficiency = 0
	if err := c.Validate(); err == nil {
		t.Error("zero efficiency must be rejected")
	}
	c = DefaultConfig()
	c.Length = 30 // < 2×20 m ramps at 200 m/s
	if err := c.Validate(); !errors.Is(err, physics.ErrTrackTooShort) {
		t.Errorf("err = %v", err)
	}
}

func TestConfigString(t *testing.T) {
	if got := DefaultConfig().String(); got != "DHL-200-500-256" {
		t.Errorf("config string = %q", got)
	}
	c := DefaultConfig()
	c.Cart = nil
	if got := c.String(); got != "DHL-200-500-0" {
		t.Errorf("cartless config string = %q", got)
	}
}

// tableVIRowWant captures a printed row of the paper's Table VI.
type tableVIRowWant struct {
	speed, length float64
	ssds          int
	energyKJ      float64
	effGBJ        float64
	timeS         float64
	bwTBs         float64
	peakKW        float64
	speedup       float64
	energyRed     [5]float64 // A0, A1, A2, B, C
}

var tableVI = []tableVIRowWant{
	{100, 500, 32, 3.7, 68, 11, 23, 38, 229.6, [5]float64{16.3, 26.9, 58.7, 204.8, 350.9}},
	{200, 500, 32, 15, 17, 8.6, 30, 75, 295.1, [5]float64{4.1, 6.7, 14.7, 51.2, 87.7}},
	{300, 500, 32, 34, 7.6, 7.8, 33, 113, 324.6, [5]float64{1.8, 3.0, 6.5, 22.8, 39}},
	{200, 100, 32, 15, 17, 6.6, 39, 75, 384.5, [5]float64{4.1, 6.7, 14.7, 51.2, 87.7}},
	{200, 1000, 32, 15, 17, 11, 23, 75, 228.6, [5]float64{4.1, 6.7, 14.7, 51.2, 87.7}},
	{200, 500, 16, 8.6, 15, 8.6, 15, 43, 147.5, [5]float64{3.6, 5.9, 12.8, 44.8, 76.8}},
	{200, 500, 64, 28, 18, 8.6, 60, 140, 587.5, [5]float64{4.4, 7.2, 15.7, 54.9, 94.0}},
	{100, 500, 16, 2.1, 60, 11, 12, 22, 114.8, [5]float64{14.3, 23.6, 51.4, 179.4, 307.3}},
	{100, 500, 64, 7, 73, 11, 46, 70, 457.3, [5]float64{17.5, 28.8, 62.9, 219.5, 376.1}},
	{300, 500, 16, 19, 6.6, 7.8, 16, 64, 162.3, [5]float64{1.6, 2.6, 5.7, 19.9, 34.1}},
	{300, 500, 64, 63, 8, 7.8, 66, 210, 646.4, [5]float64{1.9, 3.2, 7.0, 24.4, 41.8}},
}

func rowConfig(w tableVIRowWant) Config {
	return DefaultConfig().With(units.MetresPerSecond(w.speed), units.Metres(w.length), w.ssds)
}

func TestReproTableVISingleLaunch(t *testing.T) {
	for _, w := range tableVI {
		l, err := Launch(rowConfig(w))
		if err != nil {
			t.Fatalf("%+v: %v", w, err)
		}
		approx(t, l.Config.String()+" energy", l.Energy.KJ(), w.energyKJ, 0.03)
		approx(t, l.Config.String()+" efficiency", l.Efficiency, w.effGBJ, 0.03)
		approx(t, l.Config.String()+" time", float64(l.Time), w.timeS, 0.01)
		approx(t, l.Config.String()+" bandwidth", float64(l.Bandwidth)/1e12, w.bwTBs, 0.035)
		approx(t, l.Config.String()+" peak power", l.PeakPower.KW(), w.peakKW, 0.03)
	}
}

func TestReproTableVI29PB(t *testing.T) {
	for _, w := range tableVI {
		tr, err := Transfer(rowConfig(w), PaperDataset)
		if err != nil {
			t.Fatal(err)
		}
		cmp := CompareAll(tr)
		approx(t, tr.Launch.Config.String()+" speedup",
			float64(cmp[0].TimeSpeedup), w.speedup, 0.015)
		for i, s := range netmodel.Scenarios() {
			approx(t, tr.Launch.Config.String()+" energy reduction "+s.String(),
				float64(cmp[i].EnergyReduction), w.energyRed[i], 0.03)
		}
		// Speedup must be identical across scenarios (network time is
		// scenario-independent).
		for i := 1; i < len(cmp); i++ {
			if cmp[i].TimeSpeedup != cmp[0].TimeSpeedup {
				t.Errorf("speedup differs across scenarios: %v vs %v",
					cmp[i].TimeSpeedup, cmp[0].TimeSpeedup)
			}
		}
	}
}

func TestReproTripCounts(t *testing.T) {
	// §V-B: "DHL needs 227, 114 or 57 trips ... this limitation doubles the
	// number of total trips".
	want := map[int]struct{ deliveries, total int }{
		16: {227, 454},
		32: {114, 227},
		64: {57, 114},
	}
	for ssds, w := range want {
		tr, err := Transfer(DefaultConfig().With(200, 500, ssds), PaperDataset)
		if err != nil {
			t.Fatal(err)
		}
		if tr.DeliveryTrips != w.deliveries {
			t.Errorf("%d SSDs deliveries = %d, want %d", ssds, tr.DeliveryTrips, w.deliveries)
		}
		if tr.TotalTrips != w.total {
			t.Errorf("%d SSDs total trips = %d, want %d", ssds, tr.TotalTrips, w.total)
		}
	}
}

func TestDefaultAveragePower(t *testing.T) {
	// The paper's simulation power budget: the default DHL averages 1.75 kW.
	l, err := Launch(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "average power", l.AveragePower().KW(), 1.75, 0.01)
}

func TestLaunchEmbodiedBandwidthRange(t *testing.T) {
	// §V-A: embodied bandwidth 15–60 TB/s across the sweep at 500 m,
	// i.e. 300–1200× a 50 GB/s optical link.
	lo, err := Launch(DefaultConfig().With(200, 500, 16))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Launch(DefaultConfig().With(200, 500, 64))
	if err != nil {
		t.Fatal(err)
	}
	ratioLo := float64(lo.Bandwidth) / float64(netmodel.LinkBandwidth())
	ratioHi := float64(hi.Bandwidth) / float64(netmodel.LinkBandwidth())
	if ratioLo < 295 || ratioHi > 1210 {
		t.Errorf("embodied BW ratios = %.0f–%.0f, want ≈300–1200", ratioLo, ratioHi)
	}
}

func TestExactTimeModelSlightlySlower(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimeModel = physics.TimeModelExact
	exact, err := Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Launch(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delta := float64(exact.Time - paper.Time)
	if delta <= 0 || delta > 0.2 {
		t.Errorf("exact−paper time = %v, want (0, 0.2]", delta)
	}
	if exact.Energy != paper.Energy {
		t.Error("time model must not change energy")
	}
}

func TestTransferErrors(t *testing.T) {
	if _, err := Transfer(DefaultConfig(), 0); err == nil {
		t.Error("zero dataset must error")
	}
	if _, err := Transfer(DefaultConfig(), -units.PB); err == nil {
		t.Error("negative dataset must error")
	}
	bad := DefaultConfig()
	bad.Cart = nil
	if _, err := Transfer(bad, units.PB); err == nil {
		t.Error("invalid config must error")
	}
	if _, err := Launch(bad); err == nil {
		t.Error("invalid config must error in Launch")
	}
}

func TestTransferTimeEnergyScaleWithTrips(t *testing.T) {
	tr, err := Transfer(DefaultConfig(), PaperDataset)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "transfer time", float64(tr.Time),
		float64(tr.TotalTrips)*float64(tr.Launch.Time), 1e-12)
	approx(t, "transfer energy", float64(tr.Energy),
		float64(tr.TotalTrips)*float64(tr.Launch.Energy), 1e-12)
}

func TestEnergyMonotonicInSpeedProperty(t *testing.T) {
	f := func(raw float64) bool {
		v := 50 + math.Abs(math.Mod(raw, 200))
		l1, err1 := Launch(DefaultConfig().With(units.MetresPerSecond(v), 500, 32))
		l2, err2 := Launch(DefaultConfig().With(units.MetresPerSecond(v+10), 500, 32))
		if err1 != nil || err2 != nil {
			return false
		}
		// Faster is more expensive but quicker.
		return l2.Energy > l1.Energy && l2.Time < l1.Time
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBiggerCartMoreEfficientProperty(t *testing.T) {
	// §V-A observation (b): increasing cart storage improves GB/J.
	prev := -1.0
	for _, n := range []int{8, 16, 32, 64, 128} {
		l, err := Launch(DefaultConfig().With(200, 500, n))
		if err != nil {
			t.Fatal(err)
		}
		if l.Efficiency <= prev {
			t.Errorf("efficiency not increasing at %d SSDs: %v ≤ %v", n, l.Efficiency, prev)
		}
		prev = l.Efficiency
	}
}

func TestDesignSpaceRowCount(t *testing.T) {
	rows, err := DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("design space rows = %d, want 13 (Table VI)", len(rows))
	}
	for _, r := range rows {
		if len(r.Comparisons) != 5 {
			t.Fatalf("row %v has %d comparisons", r.Launch.Config, len(r.Comparisons))
		}
	}
	// Paper headline: energy reductions from 1.6× to 376.1×, speedups from
	// 114.8× to 646.4×.
	minRed, maxRed := math.Inf(1), math.Inf(-1)
	minSp, maxSp := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		for _, c := range r.Comparisons {
			minRed = math.Min(minRed, float64(c.EnergyReduction))
			maxRed = math.Max(maxRed, float64(c.EnergyReduction))
		}
		minSp = math.Min(minSp, float64(r.Comparisons[0].TimeSpeedup))
		maxSp = math.Max(maxSp, float64(r.Comparisons[0].TimeSpeedup))
	}
	approx(t, "min energy reduction", minRed, 1.6, 0.02)
	approx(t, "max energy reduction", maxRed, 376.1, 0.02)
	approx(t, "min speedup", minSp, 114.8, 0.015)
	approx(t, "max speedup", maxSp, 646.4, 0.015)
}

func TestFullFactorialSweep(t *testing.T) {
	rows, err := FullFactorialSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("factorial rows = %d, want 27", len(rows))
	}
	// DHL must beat every network scenario on time in every configuration.
	for _, r := range rows {
		for _, c := range r.Comparisons {
			if c.TimeSpeedup <= 1 {
				t.Errorf("%v vs %v: speedup %v ≤ 1", r.Launch.Config, c.Scenario, c.TimeSpeedup)
			}
		}
	}
}

func TestReproMinimumSpec(t *testing.T) {
	// §V-E: 360 GB carts, 10 m/s, 10 m → one-way ≈ 7 s; a single A0 link
	// moves the break-even ~350–360 GB in the same time while spending
	// ~150 J versus the DHL's few joules.
	r, err := Crossover(MinimumSpecConfig(), netmodel.ScenarioA0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "launch time", float64(r.LaunchTime), 7.0, 0.03)
	approx(t, "break-even dataset", r.BreakEvenDataset.GBf(), 360, 0.05)
	if r.DHLEnergy.KJ() > 0.05 {
		t.Errorf("minimum-spec launch energy = %v, want minuscule", r.DHLEnergy)
	}
	if ea := r.EnergyAdvantage(); ea < 10 {
		t.Errorf("energy advantage = %v, want ≫1", ea)
	}
	if r.OpticalEnergy.KJ() < 0.1 || r.OpticalEnergy.KJ() > 0.2 {
		t.Errorf("optical energy = %v, want ~144–170 J", r.OpticalEnergy)
	}
	if !r.DHLWins(500 * units.GB) {
		t.Error("500 GB should favour DHL")
	}
	if r.DHLWins(100 * units.GB) {
		t.Error("100 GB should favour optical")
	}
	if r.DHLWins(9 * units.TB) {
		t.Error("datasets beyond cart capacity can't be a single launch")
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestCrossoverDegenerate(t *testing.T) {
	bad := DefaultConfig()
	bad.Cart = nil
	if _, err := Crossover(bad, netmodel.ScenarioA0); err == nil {
		t.Error("invalid config must error")
	}
	r := CrossoverResult{}
	if r.EnergyAdvantage() != 0 {
		t.Error("zero DHL energy advantage must be 0")
	}
}

func TestMinimumTrackLength(t *testing.T) {
	got := float64(MinimumTrackLength(DefaultConfig()))
	approx(t, "min track", got, 40, 1e-12) // 2 × 20 m ramps at 200 m/s
}

func TestLaunchMetricsString(t *testing.T) {
	l, err := Launch(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if l.String() == "" {
		t.Error("empty String()")
	}
}
