package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestDockTimeSensitivity(t *testing.T) {
	rows, err := DockTimeSensitivity(DefaultConfig(), []units.Seconds{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §V-A observation (a): docking dominates. At the paper's 3 s it is
	// ~70 % of the 8.6 s launch.
	at3 := rows[3]
	approx(t, "dock share at 3s", at3.DockShare, 6.0/8.6, 1e-9)
	// Zero-dock launch is just the transit: 2.6 s → BW jumps ~3.3×.
	approx(t, "zero-dock time", float64(rows[0].Launch.Time), 2.6, 1e-9)
	if rows[0].Launch.Bandwidth <= 3*at3.Launch.Bandwidth {
		t.Errorf("removing docking should >3x bandwidth: %v vs %v",
			rows[0].Launch.Bandwidth, at3.Launch.Bandwidth)
	}
	// Energy is unaffected by docking time.
	for _, r := range rows {
		if r.Launch.Energy != rows[0].Launch.Energy {
			t.Error("dock time must not change launch energy")
		}
	}
	if _, err := DockTimeSensitivity(DefaultConfig(), []units.Seconds{-1}); err == nil {
		t.Error("negative dock time must error")
	}
}

func TestAccelerationTradeoff(t *testing.T) {
	accels := []units.MetresPerSecond2{250, 500, 1000, 2000}
	rows, err := AccelerationTradeoff(DefaultConfig(), accels)
	if err != nil {
		t.Fatal(err)
	}
	// Peak power scales linearly with acceleration (P = M·a·v/η).
	approx(t, "peak ratio", float64(rows[3].Launch.PeakPower)/float64(rows[0].Launch.PeakPower), 8, 1e-9)
	// Energy is acceleration-independent.
	for _, r := range rows {
		if r.Launch.Energy != rows[0].Launch.Energy {
			t.Error("acceleration must not change launch energy")
		}
	}
	// Halving acceleration from the default costs only a fraction of a
	// second (§V-A: "slightly increasing acceleration time").
	var at500, at1000 AccelerationRow
	for _, r := range rows {
		switch r.Acceleration {
		case 500:
			at500 = r
		case 1000:
			at1000 = r
		}
	}
	slowdown := float64(at500.Launch.Time - at1000.Launch.Time)
	if slowdown <= 0 || slowdown > 0.5 {
		t.Errorf("500 vs 1000 m/s² adds %v s, want (0, 0.5]", slowdown)
	}
	if at500.Launch.PeakPower >= at1000.Launch.PeakPower {
		t.Error("lower acceleration must lower peak power")
	}
	// LIM length doubles when acceleration halves.
	approx(t, "LIM length", float64(at500.LIMLength), 2*float64(at1000.LIMLength), 1e-9)
	// ExtraTime is relative to the fastest row.
	if rows[3].ExtraTime != 0 {
		t.Errorf("fastest row extra time = %v", rows[3].ExtraTime)
	}
	if _, err := AccelerationTradeoff(DefaultConfig(), nil); err == nil {
		t.Error("empty sweep must error")
	}
	// Too-low acceleration can't fit the track: 200 m/s at 10 m/s² needs
	// 2×2000 m of ramps on a 500 m track.
	if _, err := AccelerationTradeoff(DefaultConfig(), []units.MetresPerSecond2{10}); err == nil {
		t.Error("infeasible acceleration must error")
	}
}

func TestRegenerativeBrakingSavings(t *testing.T) {
	// §VI: implementations range 16–70 %.
	rows, err := RegenerativeBrakingSavings(DefaultConfig(), []float64{0, 0.16, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Saving != 1 {
		t.Errorf("no-regen saving = %v, want 1", rows[0].Saving)
	}
	prev := units.Joules(math.Inf(1))
	for _, r := range rows {
		if r.Energy >= prev {
			t.Errorf("energy must fall with regen: %v at %v", r.Energy, r.Regen)
		}
		prev = r.Energy
	}
	// At 70 % regen the braking leg recovers 0.7·½mv²: launch energy
	// = ½mv²/η + (½mv²/η − 0.7·½mv²) = 15040 − 3947 ≈ 11.09 kJ → 1.36×.
	approx(t, "70% regen saving", float64(rows[3].Saving), 15040.0/11092.5, 0.001)
	if _, err := RegenerativeBrakingSavings(DefaultConfig(), []float64{1.5}); err == nil {
		t.Error("regen > 1 must error")
	}
}

func TestPassiveBrakeSavings(t *testing.T) {
	active, passive, saving, err := PassiveBrakeSavings(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// §VI: "essentially halving DHL's power consumption".
	approx(t, "halving", float64(saving), 2, 1e-9)
	approx(t, "passive energy", float64(passive), float64(active)/2, 1e-9)
	bad := DefaultConfig()
	bad.Cart = nil
	if _, _, _, err := PassiveBrakeSavings(bad); err == nil {
		t.Error("invalid config must error")
	}
}

func TestSSDDensityScaling(t *testing.T) {
	rows, err := DefaultDensityScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Year != 2024 || rows[0].CartCapacity != 256*units.TB {
		t.Errorf("base year row wrong: %+v", rows[0])
	}
	// Three doublings in 10 years with a 3-year period: 2024→256, 2033→2048 TB.
	last := rows[len(rows)-1]
	if last.CartCapacity != 2048*units.TB {
		t.Errorf("2033 cart = %v, want 2048TB", last.CartCapacity)
	}
	// §II-A: the hyperloop itself is unchanged — launch time constant,
	// embodied bandwidth and efficiency scale with capacity.
	if last.Launch.Time != rows[0].Launch.Time {
		t.Error("track upgrade-free: launch time must not change")
	}
	approx(t, "bandwidth scaling",
		float64(last.Launch.Bandwidth)/float64(rows[0].Launch.Bandwidth), 8, 1e-9)
	approx(t, "efficiency scaling",
		last.Launch.Efficiency/rows[0].Launch.Efficiency, 8, 1e-9)
	// Energy unchanged (same stick mass: density, not mass, grows).
	if last.Launch.Energy != rows[0].Launch.Energy {
		t.Error("launch energy must not change with density scaling")
	}
}

func TestSSDDensityScalingErrors(t *testing.T) {
	if _, err := SSDDensityScaling(DefaultConfig(), 2024, 0, 3); err == nil {
		t.Error("zero years must error")
	}
	if _, err := SSDDensityScaling(DefaultConfig(), 2024, 5, 0); err == nil {
		t.Error("zero doubling period must error")
	}
	bad := DefaultConfig()
	bad.Cart = nil
	if _, err := SSDDensityScaling(bad, 2024, 5, 3); err == nil {
		t.Error("cartless config must error")
	}
}
