package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/netmodel"
)

// ExampleLaunch models a single cart launch with the paper's default
// configuration.
func ExampleLaunch() {
	launch, err := core.Launch(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(launch.Config)
	fmt.Println(launch.Energy, launch.Time, launch.Bandwidth)
	fmt.Printf("%.1f GB/J, peak %s\n", launch.Efficiency, launch.PeakPower)
	// Output:
	// DHL-200-500-256
	// 15kJ 8.6s 29.8TB/s
	// 17.0 GB/J, peak 75.2kW
}

// ExampleTransfer moves the paper's 29 PB dataset and compares against the
// cross-aisle optical route.
func ExampleTransfer() {
	tr, err := core.Transfer(core.DefaultConfig(), core.PaperDataset)
	if err != nil {
		log.Fatal(err)
	}
	cmp := core.Compare(tr, netmodel.ScenarioC)
	fmt.Printf("%d deliveries, %d one-way trips\n", tr.DeliveryTrips, tr.TotalTrips)
	fmt.Printf("vs %s: %s less energy\n", cmp.Scenario, cmp.EnergyReduction)
	// Output:
	// 114 deliveries, 227 one-way trips
	// vs C: 87.7x less energy
}
