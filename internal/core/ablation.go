package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cart"
	"repro/internal/physics"
	"repro/internal/storage"
	"repro/internal/sweep"
	"repro/internal/units"
)

// Ablation studies for the design choices the paper calls out:
//
//   - docking time dominates launch time (§V-A "Time" observation a);
//   - acceleration rate trades peak power against trip time (§V-A note);
//   - regenerative braking recovers 16–70 % of braking energy (§VI);
//   - passive brakes on a dual-rail design "essentially halve" power (§VI);
//   - SSD density scaling upgrades the DHL without touching the track
//     (§II-A), unlike optical networking upgrades.

// DockSensitivityRow is one point of the docking-time ablation.
type DockSensitivityRow struct {
	DockTime  units.Seconds // per operation (applied to both dock and undock)
	Launch    LaunchMetrics
	DockShare float64 // fraction of launch time spent docking
}

// DockTimeSensitivity sweeps the per-operation docking time on the parallel
// sweep engine; rows come back in input order.
func DockTimeSensitivity(base Config, dockTimes []units.Seconds, opts ...sweep.Option) ([]DockSensitivityRow, error) {
	for _, d := range dockTimes {
		if d < 0 {
			return nil, fmt.Errorf("core: negative dock time %v", d)
		}
	}
	return sweep.Map(context.Background(), dockTimes,
		func(_ context.Context, d units.Seconds) (DockSensitivityRow, error) {
			c := base
			c.DockTime = d
			c.UndockTime = d
			l, err := Launch(c)
			if err != nil {
				return DockSensitivityRow{}, err
			}
			return DockSensitivityRow{
				DockTime:  d,
				Launch:    l,
				DockShare: float64(2*d) / float64(l.Time),
			}, nil
		}, opts...)
}

// AccelerationRow is one point of the acceleration-rate ablation.
type AccelerationRow struct {
	Acceleration units.MetresPerSecond2
	Launch       LaunchMetrics
	// LIMLength required to reach the max speed at this acceleration.
	LIMLength units.Metres
	// ExtraTime versus the fastest (highest-acceleration) configuration.
	ExtraTime units.Seconds
}

// AccelerationTradeoff sweeps the LIM acceleration on the parallel sweep
// engine. Peak power falls linearly with acceleration while the trip
// lengthens only slightly — the §V-A note on reducing peak power.
func AccelerationTradeoff(base Config, accels []units.MetresPerSecond2, opts ...sweep.Option) ([]AccelerationRow, error) {
	if len(accels) == 0 {
		return nil, errors.New("core: need at least one acceleration")
	}
	rows, err := sweep.Map(context.Background(), accels,
		func(_ context.Context, a units.MetresPerSecond2) (AccelerationRow, error) {
			c := base
			c.Acceleration = a
			l, err := Launch(c)
			if err != nil {
				return AccelerationRow{}, err
			}
			return AccelerationRow{
				Acceleration: a,
				Launch:       l,
				LIMLength:    c.LIM.RequiredLength(c.MaxSpeed, a),
			}, nil
		}, opts...)
	if err != nil {
		return nil, err
	}
	// ExtraTime needs the whole sweep: a sequential post-pass over the
	// ordered rows.
	fastest := rows[0].Launch.Time
	for _, r := range rows[1:] {
		if r.Launch.Time < fastest {
			fastest = r.Launch.Time
		}
	}
	for i := range rows {
		rows[i].ExtraTime = rows[i].Launch.Time - fastest
	}
	return rows, nil
}

// RegenRow is one point of the regenerative-braking ablation.
type RegenRow struct {
	Regen  float64
	Energy units.Joules
	// Saving versus no regeneration.
	Saving units.Ratio
}

// RegenerativeBrakingSavings sweeps the §VI regeneration efficiency range on
// the parallel sweep engine.
func RegenerativeBrakingSavings(base Config, regens []float64, opts ...sweep.Option) ([]RegenRow, error) {
	baseline, err := Launch(base)
	if err != nil {
		return nil, err
	}
	return sweep.Map(context.Background(), regens,
		func(_ context.Context, g float64) (RegenRow, error) {
			lim, err := physics.NewLIM(base.LIM.Efficiency, g)
			if err != nil {
				return RegenRow{}, err
			}
			c := base
			c.LIM = lim
			l, err := Launch(c)
			if err != nil {
				return RegenRow{}, err
			}
			return RegenRow{
				Regen:  g,
				Energy: l.Energy,
				Saving: units.Ratio(float64(baseline.Energy) / float64(l.Energy)),
			}, nil
		}, opts...)
}

// PassiveBrakeSavings compares the primary design (LIM braking at both
// ends) against the §VI dual-rail design with passive eddy-current brakes:
// braking costs nothing, so launch energy is exactly the acceleration half.
func PassiveBrakeSavings(base Config) (active, passive units.Joules, saving units.Ratio, err error) {
	l, err := Launch(base)
	if err != nil {
		return 0, 0, 0, err
	}
	active = l.Energy
	passive = base.LIM.AccelerationEnergy(base.Cart.TotalMass, base.MaxSpeed)
	return active, passive, units.Ratio(float64(active) / float64(passive)), nil
}

// DensityScalingRow is one point of the SSD-density projection.
type DensityScalingRow struct {
	Year int
	// SSDCapacity of the M.2 stick that year.
	SSDCapacity units.Bytes
	// CartCapacity with the same 32-stick cart.
	CartCapacity units.Bytes
	// Launch metrics with the upgraded cart on the *unchanged* track.
	Launch LaunchMetrics
}

// SSDDensityScaling projects the §II-A observation forward: NAND density
// doubles roughly every doublingYears; the cart is re-stuffed with the new
// sticks (same count, same per-stick mass) while the hyperloop itself is
// untouched. Embodied bandwidth and GB/J scale with capacity.
func SSDDensityScaling(base Config, startYear, years, doublingYears int) ([]DensityScalingRow, error) {
	if years < 1 || doublingYears < 1 {
		return nil, errors.New("core: years and doubling period must be positive")
	}
	if base.Cart == nil {
		return nil, ErrNoCart
	}
	rows := make([]DensityScalingRow, 0, years)
	for y := 0; y < years; y++ {
		factor := 1.0
		for i := 0; i < y/doublingYears; i++ {
			factor *= 2
		}
		spec := base.Cart.Config.SSD
		spec.Capacity = units.Bytes(float64(spec.Capacity) * factor)
		cfg := base.Cart.Config
		cfg.SSD = spec
		upgraded, err := cart.New(cfg)
		if err != nil {
			return nil, err
		}
		c := base
		c.Cart = upgraded
		l, err := Launch(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DensityScalingRow{
			Year:         startYear + y,
			SSDCapacity:  spec.Capacity,
			CartCapacity: upgraded.Capacity(),
			Launch:       l,
		})
	}
	return rows, nil
}

// DefaultDensityScaling projects the default DHL ten years out from 2024
// with a 3-year density doubling, starting from the Table II 8 TB M.2.
func DefaultDensityScaling() ([]DensityScalingRow, error) {
	base := DefaultConfig()
	base.Cart = cart.MustNew(cart.Config{
		SSD:            storage.SabrentRocket4Plus,
		NumSSDs:        32,
		FrameMass:      cart.DefaultFrameMass,
		MagnetFraction: cart.MagnetMassFraction,
		FinFraction:    cart.FinMassFraction,
	})
	return SSDDensityScaling(base, 2024, 10, 3)
}
