package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/sweep"
	"repro/internal/units"
)

// TableVIRow is one evaluated configuration of the paper's Table VI: the
// single-launch metrics plus the 29 PB comparison columns.
type TableVIRow struct {
	Launch      LaunchMetrics
	Transfer    BulkTransfer
	Comparisons []Comparison // A0, A1, A2, B, C in order
}

// DesignSpaceConfigs returns the 13 configurations of Table VI in paper
// order: a speed sweep, a length sweep, a capacity sweep (all around the
// default), and the four speed×capacity corners.
func DesignSpaceConfigs() []Config {
	base := DefaultConfig()
	return []Config{
		// Speed sweep at 500 m / 256 TB.
		base.With(100, 500, 32),
		base.With(200, 500, 32),
		base.With(300, 500, 32),
		// Length sweep at 200 m/s / 256 TB.
		base.With(200, 100, 32),
		base.With(200, 500, 32),
		base.With(200, 1000, 32),
		// Capacity sweep at 200 m/s / 500 m.
		base.With(200, 500, 16),
		base.With(200, 500, 32),
		base.With(200, 500, 64),
		// Corners.
		base.With(100, 500, 16),
		base.With(100, 500, 64),
		base.With(300, 500, 16),
		base.With(300, 500, 64),
	}
}

// DesignSpace returns the 13 rows of Table VI in paper order, evaluated on
// the parallel sweep engine (results are identical to a sequential loop).
func DesignSpace(opts ...sweep.Option) ([]TableVIRow, error) {
	return EvalConfigs(context.Background(), DesignSpaceConfigs(), PaperDataset, opts...)
}

// EvalConfigs evaluates each configuration into a Table VI row — single
// launch, bulk transfer of dataset, and the five network comparisons — on
// the bounded worker pool. Rows land in input order; repeated
// configurations share one launch evaluation through a per-sweep cache.
func EvalConfigs(ctx context.Context, configs []Config, dataset units.Bytes, opts ...sweep.Option) ([]TableVIRow, error) {
	cache := NewLaunchCache()
	return sweep.Map(ctx, configs, func(_ context.Context, c Config) (TableVIRow, error) {
		tr, err := cache.Transfer(c, dataset)
		if err != nil {
			return TableVIRow{}, err
		}
		return TableVIRow{
			Launch:      tr.Launch,
			Transfer:    tr,
			Comparisons: CompareAll(tr),
		}, nil
	}, opts...)
}

// SweepRanges are the parameter ranges of Table V for custom sweeps.
var (
	SweepSpeeds  = []units.MetresPerSecond{100, 200, 300}
	SweepLengths = []units.Metres{100, 500, 1000}
	SweepSSDs    = []int{16, 32, 64}
)

// FullFactorialSweep evaluates every speed × length × cart combination of
// Table V (27 configurations) against the paper dataset.
func FullFactorialSweep(opts ...sweep.Option) ([]TableVIRow, error) {
	return FineDesignSpace(context.Background(), PaperResolutionGrid(), PaperDataset, opts...)
}

// FineGrid is a user-chosen speed × length × capacity design grid. Configs
// enumerates it in row-major order (speed outermost, SSD count innermost),
// so the paper's Table V factorial — and, point for point, every
// configuration of the 13-row Table VI — is the special case
// PaperResolutionGrid.
type FineGrid struct {
	Speeds  []units.MetresPerSecond
	Lengths []units.Metres
	SSDs    []int
}

// PaperResolutionGrid is the Table V resolution: 3 speeds × 3 lengths × 3
// cart sizes. Its 27 points are a superset of the 13 Table VI rows.
func PaperResolutionGrid() FineGrid {
	return FineGrid{Speeds: SweepSpeeds, Lengths: SweepLengths, SSDs: SweepSSDs}
}

// UniformFineGrid samples the Table V parameter ranges uniformly at the
// requested resolution: nSpeeds points in [100, 300] m/s, nLengths in
// [100, 1000] m, and nSSDs cart sizes in [16, 64]. An axis of resolution 1
// collapses to the paper's bold default (200 m/s, 500 m, 32 SSDs).
func UniformFineGrid(nSpeeds, nLengths, nSSDs int) (FineGrid, error) {
	if nSpeeds < 1 || nLengths < 1 || nSSDs < 1 {
		return FineGrid{}, fmt.Errorf("core: grid resolution must be ≥ 1 per axis, got %d×%d×%d",
			nSpeeds, nLengths, nSSDs)
	}
	g := FineGrid{
		Speeds:  make([]units.MetresPerSecond, nSpeeds),
		Lengths: make([]units.Metres, nLengths),
		SSDs:    make([]int, nSSDs),
	}
	for i := range g.Speeds {
		g.Speeds[i] = units.MetresPerSecond(linPoint(100, 300, i, nSpeeds, float64(DefaultMaxSpeed)))
	}
	for i := range g.Lengths {
		g.Lengths[i] = units.Metres(linPoint(100, 1000, i, nLengths, float64(DefaultLength)))
	}
	for i := range g.SSDs {
		g.SSDs[i] = int(math.Round(linPoint(16, 64, i, nSSDs, 32)))
	}
	return g, nil
}

// linPoint is the i-th of n points spanning [lo, hi] inclusive; a
// single-point axis takes the given default.
func linPoint(lo, hi float64, i, n int, single float64) float64 {
	if n == 1 {
		return single
	}
	return lo + (hi-lo)*float64(i)/float64(n-1)
}

// Size is the number of grid points.
func (g FineGrid) Size() int { return len(g.Speeds) * len(g.Lengths) * len(g.SSDs) }

// Configs enumerates the grid's configurations around base in row-major
// order.
func (g FineGrid) Configs(base Config) []Config {
	out := make([]Config, 0, g.Size())
	for _, v := range g.Speeds {
		for _, l := range g.Lengths {
			for _, n := range g.SSDs {
				out = append(out, base.With(v, l, n))
			}
		}
	}
	return out
}

// FineDesignSpace evaluates the grid against dataset on the parallel sweep
// engine, returning one Table VI row per point in row-major grid order.
func FineDesignSpace(ctx context.Context, g FineGrid, dataset units.Bytes, opts ...sweep.Option) ([]TableVIRow, error) {
	if g.Size() == 0 {
		return nil, fmt.Errorf("core: empty fine grid (%d speeds × %d lengths × %d cart sizes)",
			len(g.Speeds), len(g.Lengths), len(g.SSDs))
	}
	return EvalConfigs(ctx, g.Configs(DefaultConfig()), dataset, opts...)
}
