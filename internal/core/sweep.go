package core

import (
	"repro/internal/units"
)

// TableVIRow is one evaluated configuration of the paper's Table VI: the
// single-launch metrics plus the 29 PB comparison columns.
type TableVIRow struct {
	Launch      LaunchMetrics
	Transfer    BulkTransfer
	Comparisons []Comparison // A0, A1, A2, B, C in order
}

// DesignSpace returns the 13 rows of Table VI in paper order:
// a speed sweep, a length sweep, a capacity sweep (all around the default),
// and the four speed×capacity corners.
func DesignSpace() ([]TableVIRow, error) {
	base := DefaultConfig()
	configs := []Config{
		// Speed sweep at 500 m / 256 TB.
		base.With(100, 500, 32),
		base.With(200, 500, 32),
		base.With(300, 500, 32),
		// Length sweep at 200 m/s / 256 TB.
		base.With(200, 100, 32),
		base.With(200, 500, 32),
		base.With(200, 1000, 32),
		// Capacity sweep at 200 m/s / 500 m.
		base.With(200, 500, 16),
		base.With(200, 500, 32),
		base.With(200, 500, 64),
		// Corners.
		base.With(100, 500, 16),
		base.With(100, 500, 64),
		base.With(300, 500, 16),
		base.With(300, 500, 64),
	}
	rows := make([]TableVIRow, 0, len(configs))
	for _, c := range configs {
		tr, err := Transfer(c, PaperDataset)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVIRow{
			Launch:      tr.Launch,
			Transfer:    tr,
			Comparisons: CompareAll(tr),
		})
	}
	return rows, nil
}

// SweepRanges are the parameter ranges of Table V for custom sweeps.
var (
	SweepSpeeds  = []units.MetresPerSecond{100, 200, 300}
	SweepLengths = []units.Metres{100, 500, 1000}
	SweepSSDs    = []int{16, 32, 64}
)

// FullFactorialSweep evaluates every speed × length × cart combination of
// Table V (27 configurations) against the paper dataset.
func FullFactorialSweep() ([]TableVIRow, error) {
	base := DefaultConfig()
	var rows []TableVIRow
	for _, v := range SweepSpeeds {
		for _, l := range SweepLengths {
			for _, n := range SweepSSDs {
				tr, err := Transfer(base.With(v, l, n), PaperDataset)
				if err != nil {
					return nil, err
				}
				rows = append(rows, TableVIRow{
					Launch:      tr.Launch,
					Transfer:    tr,
					Comparisons: CompareAll(tr),
				})
			}
		}
	}
	return rows, nil
}
