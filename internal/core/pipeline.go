package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// Pipelined bulk transfers (§V-B): the headline Table VI numbers
// conservatively serialise trips and double them for returns. The paper
// notes both limits can be lifted — "while processing a cart, launch
// different ones" and "with two unidirectional rails, we could avoid the
// return travel expense". This file provides the closed form for those
// refinements; the event-driven simulation (internal/dhlsys) reproduces the
// same behaviour dynamically.

// PipelineOptions configures the refined transfer model.
type PipelineOptions struct {
	// DualRail: dedicated outbound and inbound rails (§VI). With a single
	// rail, a cart's return blocks the next launch, so the delivery cadence
	// is a full round trip; with dual rails it is one one-way trip.
	DualRail bool
	// DockStations at the endpoint, for overlapping endpoint reads.
	DockStations int
	// ReadRate is the endpoint's per-cart read bandwidth; 0 skips reading
	// (pure delivery, as in Table VI).
	ReadRate units.BytesPerSecond
}

// PipelinedTransfer is the refined transfer cost.
type PipelinedTransfer struct {
	Base BulkTransfer
	Opts PipelineOptions
	// Cadence between successive cart deliveries in steady state.
	Cadence units.Seconds
	// Time for the whole transfer (first-cart latency + pipelined
	// deliveries + trailing read).
	Time units.Seconds
	// Bandwidth delivered.
	Bandwidth units.BytesPerSecond
	// Speedup over the conservative Table VI accounting.
	Speedup units.Ratio
}

// TransferPipelined computes the §V-B refined transfer.
func TransferPipelined(c Config, dataset units.Bytes, opts PipelineOptions) (PipelinedTransfer, error) {
	if opts.DockStations < 1 {
		return PipelinedTransfer{}, errors.New("core: need at least one docking station")
	}
	if opts.ReadRate < 0 {
		return PipelinedTransfer{}, fmt.Errorf("core: negative read rate %v", opts.ReadRate)
	}
	base, err := Transfer(c, dataset)
	if err != nil {
		return PipelinedTransfer{}, err
	}
	oneWay := base.Launch.Time
	railCadence := oneWay
	if !opts.DualRail {
		railCadence = 2 * oneWay
	}
	var readTime units.Seconds
	if opts.ReadRate > 0 {
		readTime = opts.ReadRate.TransferTime(c.Cart.Capacity())
	}
	// Reads overlap across stations: S stations serve batches of S carts in
	// parallel, so the read-side cadence is readTime / stations.
	readCadence := units.Seconds(float64(readTime) / float64(opts.DockStations))
	cadence := railCadence
	if readCadence > cadence {
		cadence = readCadence
	}
	n := float64(base.DeliveryTrips)
	// Completion: after the first cart lands, either the rail drains the
	// deliveries (last read trailing) or the stations batch the reads —
	// whichever binds.
	railBound := units.Seconds((n-1)*float64(railCadence)) + readTime
	batches := math.Ceil(n / float64(opts.DockStations))
	readBound := units.Seconds(batches * float64(readTime))
	tail := railBound
	if readBound > tail {
		tail = readBound
	}
	total := oneWay + tail
	pt := PipelinedTransfer{
		Base:      base,
		Opts:      opts,
		Cadence:   cadence,
		Time:      total,
		Bandwidth: units.BytesPerSecond(float64(dataset) / float64(total)),
		Speedup:   units.Ratio(float64(base.Time) / float64(total)),
	}
	return pt, nil
}

// CartsInFlight is the fleet size needed to sustain the pipeline: one cart
// per cadence slot over a full cart cycle (out, read, back).
func (p PipelinedTransfer) CartsInFlight() int {
	oneWay := float64(p.Base.Launch.Time)
	var readTime float64
	if p.Opts.ReadRate > 0 {
		readTime = float64(p.Opts.ReadRate.TransferTime(p.Base.Launch.Config.Cart.Capacity()))
	}
	cycle := 2*oneWay + readTime
	return int(math.Ceil(cycle / float64(p.Cadence)))
}
