package tubenet

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/sweep"
	"repro/internal/units"
)

// A campus study runs many independent replicas — (scenario, seed) pairs,
// each with its own engine, router, and fleet — in parallel on the sweep
// pool, and aggregates fleet-level counters across them. Replica results
// come back input-ordered (sweep.Map), so the study output is
// byte-identical at any worker count; the running aggregate is updated
// concurrently by the workers, so its totals live behind a mutex with the
// lockcheck annotation proving every access holds it. Only commutative
// integer counters are aggregated concurrently — float sums are folded
// from the ordered results afterwards, keeping them order-independent.

// Replica identifies one study run and its outcome.
type Replica struct {
	Scenario string
	Seed     int64
	Result   Result
}

// StudyTotals is the cross-replica aggregate.
type StudyTotals struct {
	Replicas       int
	TripsCompleted int
	TripsPending   int
	Reroutes       int
	Loiters        int
	Stalls         int
	// TotalTransit is folded from the ordered replica results, not the
	// concurrent aggregate, so float addition order is fixed.
	TotalTransit units.Seconds
}

// studyAgg is the concurrent aggregate the sweep workers update.
type studyAgg struct {
	mu sync.Mutex
	// totals accumulates the commutative integer counters.
	//
	//dhllint:guardedby mu
	totals StudyTotals
}

// add folds one replica's counters into the aggregate.
func (a *studyAgg) add(r Result) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.totals.Replicas++
	a.totals.TripsCompleted += r.TripsCompleted
	a.totals.TripsPending += r.TripsPending
	a.totals.Reroutes += r.Reroutes
	a.totals.Loiters += r.Loiters
	a.totals.Stalls += r.Stalls
}

// snapshot returns the aggregate under the lock.
func (a *studyAgg) snapshot() StudyTotals {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totals
}

// RunStudy executes one campus replica per seed under the named chaos
// scenario ("" disables chaos), fanned out on the sweep pool with the
// given worker bound. Every replica builds its own Campus from opt with
// its seed; horizon scales the generated fault script. Results are
// returned in seed order.
func RunStudy(ctx context.Context, opt Options, scenario string, horizon units.Seconds, seeds []int64, workers int) ([]Replica, StudyTotals, error) {
	if len(seeds) == 0 {
		return nil, StudyTotals{}, fmt.Errorf("%w: study needs at least one seed", ErrBadOptions)
	}
	agg := &studyAgg{}
	results, err := sweep.Map(ctx, seeds, func(_ context.Context, seed int64) (Replica, error) {
		o := opt
		o.Seed = seed
		o.Telemetry = nil // replicas run concurrently; span logs are not shareable
		c, err := New(o)
		if err != nil {
			return Replica{}, err
		}
		if scenario != "" {
			script, err := faults.ScenarioDims(scenario, seed, horizon, c.Dims())
			if err != nil {
				return Replica{}, err
			}
			inj, err := faults.NewInjector(c.Engine(), c, script)
			if err != nil {
				return Replica{}, err
			}
			if err := inj.Arm(); err != nil {
				return Replica{}, err
			}
		}
		res, err := c.Run()
		if err != nil {
			return Replica{}, err
		}
		agg.add(res)
		return Replica{Scenario: scenario, Seed: seed, Result: res}, nil
	}, sweep.Workers(workers))
	if err != nil {
		return nil, StudyTotals{}, err
	}
	totals := agg.snapshot()
	for _, r := range results {
		totals.TotalTransit += r.Result.TotalTransit
	}
	return results, totals, nil
}
