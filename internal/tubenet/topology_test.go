package tubenet

import (
	"errors"
	"testing"

	"repro/internal/multistop"
	"repro/internal/netmodel"
	"repro/internal/physics"
	"repro/internal/units"
)

// testEdge is a valid 500 m segment between two nodes.
func testEdge(from, to NodeID) Edge {
	return Edge{
		From: from, To: to,
		Length: 500, MaxSpeed: 200, Acceleration: 1000,
		Tube: physics.DefaultTube(), LIM: physics.DefaultLIM(),
		Capacity: 1, Line: NoLine,
	}
}

func TestNewTopologyValidation(t *testing.T) {
	nodes := []Node{{Name: "A", Docks: 2}, {Name: "B", Docks: 2}}
	if _, err := NewTopology(nil, nil); !errors.Is(err, ErrBadTopology) {
		t.Errorf("no nodes: %v", err)
	}
	if _, err := NewTopology([]Node{{Name: "A", Docks: 0}}, nil); !errors.Is(err, ErrBadTopology) {
		t.Errorf("dockless station: %v", err)
	}
	bad := testEdge(0, 2)
	if _, err := NewTopology(nodes, []Edge{bad}); !errors.Is(err, ErrBadTopology) {
		t.Errorf("out-of-range endpoint: %v", err)
	}
	loop := testEdge(0, 0)
	if _, err := NewTopology(nodes, []Edge{loop}); !errors.Is(err, ErrBadTopology) {
		t.Errorf("self-loop: %v", err)
	}
	short := testEdge(0, 1)
	short.Length = 10 // shorter than the 40 m ramp distance at 200 m/s
	if _, err := NewTopology(nodes, []Edge{short}); !errors.Is(err, ErrBadTopology) {
		t.Errorf("track shorter than ramps: %v", err)
	}
	ok, err := NewTopology(nodes, []Edge{testEdge(0, 1), testEdge(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if ok.NumNodes() != 2 || ok.NumEdges() != 2 {
		t.Errorf("sizes: %d nodes, %d edges", ok.NumNodes(), ok.NumEdges())
	}
	if got := ok.Out(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("Out(0) = %v", got)
	}
}

func TestDefaultCampusShape(t *testing.T) {
	topo, err := NewCampus(DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 junctions + 4×5 spur stations; 8 trunk edges + 4×5×2 spur edges.
	if topo.NumNodes() != 24 {
		t.Errorf("NumNodes = %d, want 24", topo.NumNodes())
	}
	if topo.NumEdges() != 48 {
		t.Errorf("NumEdges = %d, want 48", topo.NumEdges())
	}
	if topo.NumLines() != 4 {
		t.Errorf("NumLines = %d, want 4", topo.NumLines())
	}
	if got := len(topo.Stations()); got != 20 {
		t.Errorf("Stations = %d, want 20 (junctions excluded)", got)
	}
	for j := 0; j < 4; j++ {
		if !topo.Node(NodeID(j)).Junction {
			t.Errorf("node %d should be a junction", j)
		}
		if len(topo.LineEdges(j)) != 10 {
			t.Errorf("line %d has %d edges, want 10", j, len(topo.LineEdges(j)))
		}
	}
	// Opposite directions of one rail segment carry the same span.
	for _, l := range []int{0, 1, 2, 3} {
		edges := topo.LineEdges(l)
		fwd, rev := topo.Edge(edges[0]), topo.Edge(edges[1])
		if fwd.Span != rev.Span {
			t.Errorf("line %d: paired directions carry spans %+v vs %+v", l, fwd.Span, rev.Span)
		}
		if !fwd.Span.Overlaps(rev.Span) {
			t.Errorf("line %d: paired spans must conflict", l)
		}
	}
}

func TestCampusSpanSemanticsMatchMultistop(t *testing.T) {
	topo, err := NewCampus(DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent chain segments share a station index, so their inclusive
	// spans overlap — multistop's conflict rule.
	line := topo.LineEdges(0)
	var spans []multistop.Span
	for _, e := range line {
		spans = append(spans, topo.Edge(e).Span)
	}
	if !spans[0].Overlaps(spans[2]) {
		t.Errorf("adjacent segments %+v and %+v must conflict at the shared station", spans[0], spans[2])
	}
	if spans[0].Overlaps(spans[4]) {
		t.Errorf("segments %+v and %+v share no station and must not conflict", spans[0], spans[4])
	}
}

func TestTransitTimes(t *testing.T) {
	topo, err := NewCampus(DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := topo.TransitTimes(DefaultCartMass, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != topo.NumEdges() {
		t.Fatalf("got %d transit times for %d edges", len(base), topo.NumEdges())
	}
	for i, b := range base {
		if b <= 0 {
			t.Errorf("edge %d transit %v must be positive", i, b)
		}
	}
	// A leaky tube slows the segment down.
	cfg := DefaultCampusConfig()
	cfg.Tube.Pressure = 10 * physics.RoughVacuumPascal
	leaky, err := NewCampus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := leaky.TransitTimes(DefaultCartMass, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(degraded[0] > base[0]) {
		t.Errorf("degraded vacuum transit %v should exceed nominal %v", degraded[0], base[0])
	}
}

func TestFromFatTree(t *testing.T) {
	ft := netmodel.DefaultFatTree()
	topo, err := FromFatTree(ft, DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 aisles → 2 junctions; 4 racks/aisle → 4 spur stations each.
	if got, want := topo.NumNodes(), ft.Aisles+ft.Aisles*ft.RacksPerAisle; got != want {
		t.Errorf("NumNodes = %d, want %d", got, want)
	}
	bad := ft
	bad.Aisles = 0
	if _, err := FromFatTree(bad, DefaultCampusConfig()); err == nil {
		t.Error("invalid fat tree must be rejected")
	}
}

func TestCampusTransitTimesAreSane(t *testing.T) {
	topo, err := NewCampus(DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := topo.TransitTimes(DefaultCartMass, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 500 m at 200 m/s with 0.2 s ramps ≈ 2.7 s; 2000 m trunk ≈ 10.2 s.
	spurT := base[8] // first spur edge (after 8 trunk edges)
	trunkT := base[0]
	if spurT < units.Seconds(2) || spurT > units.Seconds(4) {
		t.Errorf("spur transit %v outside sanity window", spurT)
	}
	if trunkT < units.Seconds(9) || trunkT > units.Seconds(12) {
		t.Errorf("trunk transit %v outside sanity window", trunkT)
	}
}
