package tubenet

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/units"
)

// diamond builds the four-node tie-break fixture:
//
//	  A(0)
//	 /    \
//	B(1)  C(2)
//	 \    /
//	  D(3)
//
// Both A→B→D and A→C→D cost exactly two identical segments, so the route
// choice is purely the tie-break rule.
func diamond(t *testing.T) (*Topology, []units.Seconds) {
	t.Helper()
	nodes := []Node{
		{Name: "A", Docks: 1}, {Name: "B", Docks: 1},
		{Name: "C", Docks: 1}, {Name: "D", Docks: 1},
	}
	edges := []Edge{
		testEdge(0, 1), // e0: A→B
		testEdge(0, 2), // e1: A→C
		testEdge(1, 3), // e2: B→D
		testEdge(2, 3), // e3: C→D
	}
	topo, err := NewTopology(nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	base, err := topo.TransitTimes(DefaultCartMass, 0)
	if err != nil {
		t.Fatal(err)
	}
	return topo, base
}

func allUp(topo *Topology) Liveness {
	nu := make([]bool, topo.NumNodes())
	eu := make([]bool, topo.NumEdges())
	for i := range nu {
		nu[i] = true
	}
	for i := range eu {
		eu[i] = true
	}
	return Liveness{NodeUp: nu, EdgeUp: eu}
}

func TestEqualCostTieBreakIsDeterministic(t *testing.T) {
	topo, base := diamond(t)
	r, err := NewRouter(topo, base, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	live := allUp(topo)
	if err := r.Recompute(context.Background(), live, nil); err != nil {
		t.Fatal(err)
	}
	// Equal-cost paths A→B→D and A→C→D: the smaller first-hop EdgeID (e0,
	// via B) must win, on every recompute, at any worker count.
	if got := r.NextHop(0, 3); got != 0 {
		t.Errorf("NextHop(A,D) = e%d, want e0 (smaller first-hop wins ties)", got)
	}
	for workers := 1; workers <= 4; workers++ {
		r2, err := NewRouter(topo, base, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := r2.Recompute(context.Background(), live, nil); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r2.next, r.next) {
				t.Fatalf("workers=%d recompute %d diverged from sequential table", workers, i)
			}
		}
	}
}

func TestRouterSkipsZeroCapacityEdge(t *testing.T) {
	topo, base := diamond(t)
	// Kill the preferred path's first hop by capacity: e0 (A→B) becomes a
	// commissioned-but-closed tube.
	edges := make([]Edge, topo.NumEdges())
	for i := range edges {
		edges[i] = topo.Edge(EdgeID(i))
	}
	edges[0].Capacity = 0
	topo2, err := NewTopology([]Node{
		topo.Node(0), topo.Node(1), topo.Node(2), topo.Node(3),
	}, edges)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(topo2, base, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Recompute(context.Background(), allUp(topo2), nil); err != nil {
		t.Fatal(err)
	}
	if got := r.NextHop(0, 3); got != 1 {
		t.Errorf("NextHop(A,D) = e%d, want e1: zero-capacity e0 must never route", got)
	}
	if got := r.NextHop(0, 1); got != NoEdge {
		t.Errorf("NextHop(A,B) = e%d, want NoEdge: B is only reachable over the closed tube", got)
	}
}

func TestCongestionWeightShiftsRoute(t *testing.T) {
	topo, base := diamond(t)
	r, err := NewRouter(topo, base, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A deep queue on e0 makes the B path expensive; the router must shift
	// to e1 even though the tie-break would prefer e0.
	queues := make([]int, topo.NumEdges())
	queues[0] = 5
	if err := r.Recompute(context.Background(), allUp(topo), queues); err != nil {
		t.Fatal(err)
	}
	if got := r.NextHop(0, 3); got != 1 {
		t.Errorf("NextHop(A,D) = e%d, want e1 under congestion on e0", got)
	}
	if got := r.Epochs(); got != 1 {
		t.Errorf("Epochs = %d, want 1", got)
	}
}

func TestRouterExcludesDeadNodesAndEdges(t *testing.T) {
	topo, base := diamond(t)
	r, err := NewRouter(topo, base, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	live := allUp(topo)
	live.NodeUp[1] = false // junction B dead
	if err := r.Recompute(context.Background(), live, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.NextHop(0, 3); got != 1 {
		t.Errorf("NextHop(A,D) = e%d, want e1 around dead node B", got)
	}
	if got := r.NextHop(0, 1); got != NoEdge {
		t.Errorf("NextHop(A,B) = e%d, want NoEdge to a dead node", got)
	}
	live = allUp(topo)
	live.EdgeUp[0] = false
	live.EdgeUp[1] = false // both first hops dead: full partition from A
	if err := r.Recompute(context.Background(), live, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.NextHop(0, 3); got != NoEdge {
		t.Errorf("NextHop(A,D) = e%d, want NoEdge under full partition", got)
	}
	// A dead source routes nowhere at all.
	live = allUp(topo)
	live.NodeUp[0] = false
	if err := r.Recompute(context.Background(), live, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.NextHop(0, 3); got != NoEdge {
		t.Errorf("NextHop from dead node = e%d, want NoEdge", got)
	}
}

func TestNewRouterValidation(t *testing.T) {
	topo, base := diamond(t)
	if _, err := NewRouter(nil, nil, 0, 1); err == nil {
		t.Error("nil topology must be rejected")
	}
	if _, err := NewRouter(topo, base[:2], 0, 1); err == nil {
		t.Error("cost/edge length mismatch must be rejected")
	}
	bad := append([]units.Seconds(nil), base...)
	bad[1] = 0
	if _, err := NewRouter(topo, bad, 0, 1); err == nil {
		t.Error("non-positive base cost must be rejected")
	}
	// Unrecomputed router answers NoEdge rather than panicking.
	r, err := NewRouter(topo, base, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.NextHop(0, 3); got != NoEdge {
		t.Errorf("NextHop before Recompute = %d, want NoEdge", got)
	}
}

func TestRouterOnDefaultCampusReachesEverywhere(t *testing.T) {
	topo, err := NewCampus(DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := topo.TransitTimes(DefaultCartMass, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(topo, base, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Recompute(context.Background(), allUp(topo), nil); err != nil {
		t.Fatal(err)
	}
	n := topo.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if r.NextHop(NodeID(s), NodeID(d)) == NoEdge {
				t.Errorf("campus must be fully connected: no route %d→%d", s, d)
			}
		}
	}
}
