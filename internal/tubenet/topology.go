// Package tubenet models a campus-scale network of data-centre hyperloop
// tubes: a directed graph whose nodes are stations and junctions with
// finite dock capacity and whose edges are tube segments carrying their own
// LIM, vacuum, and length properties (internal/physics). A deterministic
// router dispatches carts over shortest paths with congestion-aware edge
// costs — queue-depth-weighted, recomputed at seeded epochs — and reroutes
// across tubes when internal/faults kills a junction or segment.
//
// The paper models one point-to-point tube between two halls; ROADMAP
// item 2 asks whether a *campus* of interconnected tubes can feed
// fleet-scale data movement. This package composes the existing pieces:
// per-edge physics from internal/physics, single-rail conflict domains from
// internal/multistop span-reservation semantics, chaos from
// internal/faults, and the sweep pool (internal/sweep) parallelising the
// per-source routing recompute — while every simulation stays
// byte-identical given a seed.
package tubenet

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/multistop"
	"repro/internal/netmodel"
	"repro/internal/physics"
	"repro/internal/units"
)

// NodeID indexes a station or junction in a Topology.
type NodeID int32

// EdgeID indexes a directed tube segment in a Topology.
type EdgeID int32

// NoEdge marks the absence of a route.
const NoEdge EdgeID = -1

// NoLine marks a trunk edge outside any single-rail conflict domain.
const NoLine = -1

// Node is one station or junction. Junctions relay carts between tubes;
// stations additionally terminate trips at their docks.
type Node struct {
	// Name is a stable human-readable label ("J2", "J2.S3").
	Name string
	// Docks is the number of dock slots; a cart occupies one from docking
	// until its next departure.
	Docks int
	// Junction marks pure relay nodes. Trip destinations are drawn from
	// non-junction nodes only.
	Junction bool
}

// Edge is one directed tube segment.
type Edge struct {
	From, To NodeID
	// Length of the segment.
	Length units.Metres
	// MaxSpeed is the design cruise speed; vacuum degradation may cap the
	// effective speed below it (physics.DegradedCruiseSpeed).
	MaxSpeed units.MetresPerSecond
	// Acceleration of the segment's LIMs.
	Acceleration units.MetresPerSecond2
	// Tube is the segment's vacuum state.
	Tube physics.Tube
	// LIM drives launches into this segment.
	LIM physics.LIM
	// Capacity is the number of carts the segment holds concurrently. A
	// zero-capacity edge is permanently unusable and the router never
	// selects it (a construction artefact, e.g. a tube awaiting
	// commissioning).
	Capacity int
	// Line groups single-rail edges into a conflict domain: edges of the
	// same line whose Spans overlap (multistop inclusive-range semantics)
	// may not be occupied simultaneously — both directions of one physical
	// rail share a span. NoLine marks dual-rail trunk edges.
	Line int
	// Span is the edge's position on its line, meaningful when Line is not
	// NoLine.
	Span multistop.Span
}

// Topology is an immutable directed graph of tube segments. Build one with
// NewTopology, NewCampus, or FromFatTree; it is safe to share read-only
// across sweep workers.
type Topology struct {
	nodes []Node
	edges []Edge
	// out[n] lists the edges leaving node n in ascending EdgeID order —
	// the deterministic relaxation order of the router.
	out [][]EdgeID
	// lines[l] lists the edges of conflict domain l in ascending EdgeID
	// order.
	lines [][]EdgeID
}

// ErrBadTopology reports a malformed graph.
var ErrBadTopology = errors.New("tubenet: invalid topology")

// NewTopology validates nodes and edges and builds the adjacency
// structure.
func NewTopology(nodes []Node, edges []Edge) (*Topology, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrBadTopology)
	}
	for i, n := range nodes {
		if n.Docks < 0 {
			return nil, fmt.Errorf("%w: node %d (%s) has negative docks", ErrBadTopology, i, n.Name)
		}
		if !n.Junction && n.Docks == 0 {
			return nil, fmt.Errorf("%w: station %d (%s) needs at least one dock", ErrBadTopology, i, n.Name)
		}
	}
	maxLine := -1
	for i, e := range edges {
		if e.From < 0 || int(e.From) >= len(nodes) || e.To < 0 || int(e.To) >= len(nodes) {
			return nil, fmt.Errorf("%w: edge %d endpoints (%d→%d) outside %d nodes", ErrBadTopology, i, e.From, e.To, len(nodes))
		}
		if e.From == e.To {
			return nil, fmt.Errorf("%w: edge %d is a self-loop at node %d", ErrBadTopology, i, e.From)
		}
		if e.Capacity < 0 {
			return nil, fmt.Errorf("%w: edge %d has negative capacity", ErrBadTopology, i)
		}
		if e.Line != NoLine {
			if e.Line < 0 {
				return nil, fmt.Errorf("%w: edge %d has line %d (want ≥ 0 or NoLine)", ErrBadTopology, i, e.Line)
			}
			if e.Span.Lo > e.Span.Hi {
				return nil, fmt.Errorf("%w: edge %d span not normalised (%d > %d)", ErrBadTopology, i, e.Span.Lo, e.Span.Hi)
			}
			if e.Line > maxLine {
				maxLine = e.Line
			}
		}
		// Per-edge kinematics must be realisable; NewProfile rejects tracks
		// shorter than the acceleration + braking ramps.
		if _, err := physics.NewProfile(e.Length, e.MaxSpeed, e.Acceleration); err != nil {
			return nil, fmt.Errorf("%w: edge %d (%d→%d): %v", ErrBadTopology, i, e.From, e.To, err)
		}
	}
	t := &Topology{
		nodes: append([]Node(nil), nodes...),
		edges: append([]Edge(nil), edges...),
		out:   make([][]EdgeID, len(nodes)),
		lines: make([][]EdgeID, maxLine+1),
	}
	for i, e := range t.edges {
		t.out[e.From] = append(t.out[e.From], EdgeID(i))
		if e.Line != NoLine {
			t.lines[e.Line] = append(t.lines[e.Line], EdgeID(i))
		}
	}
	return t, nil
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumEdges returns the directed-edge count.
func (t *Topology) NumEdges() int { return len(t.edges) }

// NumLines returns the number of single-rail conflict domains.
func (t *Topology) NumLines() int { return len(t.lines) }

// Node returns node n.
func (t *Topology) Node(n NodeID) Node { return t.nodes[n] }

// Edge returns edge e.
func (t *Topology) Edge(e EdgeID) Edge { return t.edges[e] }

// Out returns the edges leaving n in ascending EdgeID order. The slice is
// owned by the topology; callers must not mutate it.
func (t *Topology) Out(n NodeID) []EdgeID { return t.out[n] }

// LineEdges returns the edges of conflict domain l in ascending EdgeID
// order. The slice is owned by the topology; callers must not mutate it.
func (t *Topology) LineEdges(l int) []EdgeID { return t.lines[l] }

// Stations returns the IDs of all non-junction nodes in ascending order —
// the trip-destination pool.
func (t *Topology) Stations() []NodeID {
	var out []NodeID
	for i, n := range t.nodes {
		if !n.Junction {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// TransitTimes computes each edge's base transit time for a cart of the
// given mass: the trapezoidal profile over the segment at the
// vacuum-degraded cruise speed (physics.DegradedCruiseSpeed with the given
// drag margin; ≤ 0 selects physics.DefaultDragMargin). The result is the
// congestion-free cost vector of the router.
func (t *Topology) TransitTimes(mass units.Grams, margin float64) ([]units.Seconds, error) {
	out := make([]units.Seconds, len(t.edges))
	for i, e := range t.edges {
		v := physics.DegradedCruiseSpeed(e.Tube, mass, e.Acceleration, e.MaxSpeed, margin)
		p, err := physics.NewProfile(e.Length, v, e.Acceleration)
		if err != nil {
			return nil, fmt.Errorf("tubenet: edge %d: %w", i, err)
		}
		out[i] = p.TransitTime(physics.TimeModelExact)
	}
	return out, nil
}

// CampusConfig parameterises the canonical campus generator: a ring of
// junctions joined by dual-rail trunk tubes, each junction serving a linear
// single-rail spur line of stations.
type CampusConfig struct {
	// Junctions on the trunk ring.
	Junctions int
	// SpurStations per junction.
	SpurStations int
	// DocksPerStation at every node.
	DocksPerStation int
	// TrunkCapacity is the cart capacity of each directed trunk edge.
	TrunkCapacity int
	// TrunkLength and SpurLength are the segment lengths.
	TrunkLength units.Metres
	SpurLength  units.Metres
	// MaxSpeed and Acceleration apply to every segment.
	MaxSpeed     units.MetresPerSecond
	Acceleration units.MetresPerSecond2
	// Tube and LIM apply to every segment.
	Tube physics.Tube
	LIM  physics.LIM
}

// DefaultCampusConfig is a 4-junction ring with 5-station spurs — 24 nodes,
// 48 directed segments — using the paper's per-tube physics defaults.
func DefaultCampusConfig() CampusConfig {
	return CampusConfig{
		Junctions:       4,
		SpurStations:    5,
		DocksPerStation: 4,
		TrunkCapacity:   8,
		TrunkLength:     2000,
		SpurLength:      core.DefaultLength,
		MaxSpeed:        core.DefaultMaxSpeed,
		Acceleration:    core.DefaultAcceleration,
		Tube:            physics.DefaultTube(),
		LIM:             physics.DefaultLIM(),
	}
}

// NewCampus builds the ring-of-spurs campus topology. Junctions occupy node
// IDs [0, Junctions); station (j, k) is Junctions + j·SpurStations + k.
// Each spur line is one single-rail conflict domain: the edge between chain
// positions p and p+1 (junction at position 0) carries span [p, p+1] in
// both directions, so opposite directions of one rail segment — and
// adjacent segments sharing a station — exclude each other, exactly the
// multistop reservation semantics.
func NewCampus(cfg CampusConfig) (*Topology, error) {
	if cfg.Junctions < 1 || cfg.SpurStations < 1 {
		return nil, fmt.Errorf("%w: campus needs ≥ 1 junction and ≥ 1 spur station", ErrBadTopology)
	}
	J, S := cfg.Junctions, cfg.SpurStations
	nodes := make([]Node, 0, J+J*S)
	for j := 0; j < J; j++ {
		nodes = append(nodes, Node{Name: fmt.Sprintf("J%d", j), Docks: cfg.DocksPerStation, Junction: true})
	}
	for j := 0; j < J; j++ {
		for k := 0; k < S; k++ {
			nodes = append(nodes, Node{Name: fmt.Sprintf("J%d.S%d", j, k), Docks: cfg.DocksPerStation})
		}
	}
	trunk := func(from, to NodeID) Edge {
		return Edge{
			From: from, To: to,
			Length: cfg.TrunkLength, MaxSpeed: cfg.MaxSpeed, Acceleration: cfg.Acceleration,
			Tube: cfg.Tube, LIM: cfg.LIM,
			Capacity: cfg.TrunkCapacity, Line: NoLine,
		}
	}
	spur := func(from, to NodeID, line, pos int) Edge {
		return Edge{
			From: from, To: to,
			Length: cfg.SpurLength, MaxSpeed: cfg.MaxSpeed, Acceleration: cfg.Acceleration,
			Tube: cfg.Tube, LIM: cfg.LIM,
			Capacity: 1, Line: line, Span: multistop.NewSpan(pos, pos+1),
		}
	}
	var edges []Edge
	// Trunk ring, both directions. A 2-junction ring would duplicate the
	// pair; a single junction has no trunk at all.
	for j := 0; j < J && J > 1; j++ {
		next := (j + 1) % J
		edges = append(edges, trunk(NodeID(j), NodeID(next)))
		edges = append(edges, trunk(NodeID(next), NodeID(j)))
		if J == 2 {
			break
		}
	}
	// Spur chains: junction (chain position 0) → S0 → S1 → …, both
	// directions over the shared rail.
	for j := 0; j < J; j++ {
		chain := func(pos int) NodeID {
			if pos == 0 {
				return NodeID(j)
			}
			return NodeID(J + j*S + pos - 1)
		}
		for p := 0; p < S; p++ {
			edges = append(edges, spur(chain(p), chain(p+1), j, p))
			edges = append(edges, spur(chain(p+1), chain(p), j, p))
		}
	}
	return NewTopology(nodes, edges)
}

// FromFatTree maps the paper's Figure 2 fat tree onto a campus: aisles
// become trunk-ring junctions and each aisle's racks become the stations of
// that junction's spur line, so the tube network mirrors the electrical
// topology it would relieve (netmodel computes the optical baseline over
// the same shape).
func FromFatTree(f netmodel.FatTree, cfg CampusConfig) (*Topology, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("tubenet: %w", err)
	}
	cfg.Junctions = f.Aisles
	cfg.SpurStations = f.RacksPerAisle
	return NewCampus(cfg)
}
