package tubenet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/multistop"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Options configures a campus simulation. The zero value is completed by
// DefaultOptions-style defaults inside New.
type Options struct {
	// Topo is the tube network; nil selects NewCampus(DefaultCampusConfig()).
	Topo *Topology
	// Carts in the fleet. Each runs TripsPerCart station-to-station trips.
	Carts        int
	TripsPerCart int
	// Seed drives every random choice (start stations, destination chains,
	// launch stagger). Same seed, same byte-identical run.
	Seed int64
	// CartMass and DragMargin feed the per-edge degraded-physics transit
	// times (Topology.TransitTimes).
	CartMass   units.Grams
	DragMargin float64
	// DwellTime is the docked turnaround between trips.
	DwellTime units.Seconds
	// LaunchSpread staggers initial departures uniformly over [0, spread).
	LaunchSpread units.Seconds
	// EpochEvery is the congestion-recompute period; 0 means the 30 s
	// default and negative disables epochs entirely
	// (routes still recompute on every fault transition).
	EpochEvery units.Seconds
	// Alpha weights entry-queue depth into edge cost (Router).
	Alpha float64
	// RouterWorkers bounds the per-source Dijkstra fan-out on the sweep
	// pool; results are byte-identical at any worker count.
	RouterWorkers int
	// MaxEvents bounds the event budget (sim.Engine.Run); ≤ 0 is unbounded.
	MaxEvents int
	// Telemetry enables metrics and span recording when non-nil.
	Telemetry *telemetry.Set
}

// DefaultCartMass is the paper's 282 g cart.
const DefaultCartMass units.Grams = 282

func (o Options) withDefaults() Options {
	if o.Carts == 0 {
		o.Carts = 64
	}
	if o.TripsPerCart == 0 {
		o.TripsPerCart = 2
	}
	if o.CartMass == 0 {
		o.CartMass = DefaultCartMass
	}
	if o.DwellTime == 0 {
		o.DwellTime = 3
	}
	if o.LaunchSpread == 0 {
		o.LaunchSpread = 30
	}
	if o.EpochEvery == 0 {
		o.EpochEvery = 30
	}
	if o.Alpha == 0 {
		o.Alpha = 0.25
	}
	if o.RouterWorkers == 0 {
		o.RouterWorkers = 1
	}
	return o
}

// tripBuckets is the trip-duration histogram layout, in seconds.
var tripBuckets = []float64{5, 10, 20, 50, 100, 200, 500, 1000, 2000}

// campusCart is one cart's state plus its pre-bound step closures — bound
// once at construction so the dispatch hot loop schedules without building
// a single closure.
type campusCart struct {
	at  NodeID // current node when not in transit
	dst NodeID
	// edge is the occupied segment while in transit, NoEdge otherwise.
	edge EdgeID
	trip int
	// planned is the committed next hop at the current node; hasPlan
	// distinguishes a commitment (even a later-invalidated one) from none.
	// Entering a different edge than planned counts as a reroute.
	planned   EdgeID
	hasPlan   bool
	loitering bool
	stalled   bool
	parked    bool
	arriveAt  units.Seconds
	remaining units.Seconds
	arriveH   sim.Handle
	tripStart units.Seconds
	entryT    units.Seconds
	dockStart units.Seconds
	trackID   telemetry.StrID

	departFn func()
	arriveFn func()
	dwellFn  func()
}

// lineHold is one active span reservation on a single-rail line.
type lineHold struct {
	e  EdgeID
	sp multistop.Span
}

// EdgeStats is the per-segment utilisation summary.
type EdgeStats struct {
	// Entries counts carts admitted into the segment.
	Entries int
	// MaxQueue is the deepest entry queue observed.
	MaxQueue int
	// Busy is the accumulated cart-seconds of occupancy (base transit per
	// entry; stall extensions excluded).
	Busy units.Seconds
}

// Result summarises one campus run.
type Result struct {
	Carts          int
	TripsCompleted int
	TripsPending   int
	Parked         int
	Reroutes       int
	Loiters        int
	Stalls         int
	LoiteringAtEnd int
	StalledAtEnd   int
	MaxQueue       int
	RouteEpochs    int
	Events         int
	Elapsed        units.Seconds
	TotalTransit   units.Seconds
	TransitP50     units.Seconds
	TransitP99     units.Seconds
	PerEdge        []EdgeStats
}

// Availability is the fraction of scheduled trips that completed.
func (r Result) Availability() float64 {
	total := r.TripsCompleted + r.TripsPending
	if total == 0 {
		return 1
	}
	return float64(r.TripsCompleted) / float64(total)
}

// String renders a stable multi-line report — the byte-identity unit of
// the determinism tests.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campus: %d carts, %d/%d trips, availability %.4f\n",
		r.Carts, r.TripsCompleted, r.TripsCompleted+r.TripsPending, r.Availability())
	fmt.Fprintf(&b, "  reroutes=%d loiters=%d stalls=%d parked=%d loitering-at-end=%d stalled-at-end=%d\n",
		r.Reroutes, r.Loiters, r.Stalls, r.Parked, r.LoiteringAtEnd, r.StalledAtEnd)
	fmt.Fprintf(&b, "  transit p50=%.3fs p99=%.3fs total=%.3fs elapsed=%.3fs\n",
		float64(r.TransitP50), float64(r.TransitP99), float64(r.TotalTransit), float64(r.Elapsed))
	fmt.Fprintf(&b, "  max-queue=%d route-epochs=%d events=%d\n", r.MaxQueue, r.RouteEpochs, r.Events)
	for e, s := range r.PerEdge {
		if s.Entries == 0 && s.MaxQueue == 0 {
			continue
		}
		fmt.Fprintf(&b, "  edge %03d: entries=%d max-queue=%d busy=%.3fs\n", e, s.Entries, s.MaxQueue, float64(s.Busy))
	}
	return b.String()
}

// campusTel holds the precomputed telemetry handles; the zero value is the
// disabled state (every record site is nil-safe).
type campusTel struct {
	spans    *telemetry.SpanLog
	trips    *telemetry.Counter
	reroutes *telemetry.Counter
	loiters  *telemetry.Counter
	stalls   *telemetry.Counter
	entries  *telemetry.Counter

	tripSeconds *telemetry.Histogram

	idTransit telemetry.StrID
	idDock    telemetry.StrID
	idDwell   telemetry.StrID
	idReroute telemetry.StrID
	idLoiter  telemetry.StrID
	idStall   telemetry.StrID
	idResume  telemetry.StrID
}

// Campus is one deterministic campus simulation: a fleet of carts running
// station-to-station trips over a Topology, dispatched by a congestion-
// aware Router on the shared event kernel, with junction/segment chaos
// applied through the faults.Target interface.
type Campus struct {
	opt    Options
	topo   *Topology
	eng    *sim.Engine
	router *Router
	ctx    context.Context

	baseTransit []units.Seconds

	// Liveness: down-counters tolerate overlapping fault windows; the
	// boolean views feed the router and the admission checks.
	nodeDown []int
	edgeDown []int
	nodeUp   []bool
	edgeUp   []bool

	dockFree  []int
	dockQueue [][]int32

	edgeOcc       []int
	edgeQueue     [][]int32
	edgeOccupants [][]int32
	lineOcc       [][]lineHold
	queueScratch  []int

	carts     []campusCart
	dests     []NodeID
	loiterers []int32
	retrySet  []int32

	transits     []units.Seconds
	totalTransit units.Seconds
	tripsDone    int
	nReroutes    int
	nLoiters     int
	nStalls      int
	parked       int
	maxQueue     int
	perEdge      []EdgeStats

	tel campusTel
	ran bool
}

// ErrBadOptions reports an invalid campus configuration.
var ErrBadOptions = errors.New("tubenet: invalid options")

// New builds a campus simulation. All randomness (start stations,
// destination chains, launch stagger) is drawn here from a rand.Rand
// seeded with opt.Seed; the run itself is pure replay.
func New(opt Options) (*Campus, error) {
	opt = opt.withDefaults()
	if opt.Carts < 1 || opt.TripsPerCart < 1 {
		return nil, fmt.Errorf("%w: need ≥ 1 cart and ≥ 1 trip", ErrBadOptions)
	}
	topo := opt.Topo
	if topo == nil {
		var err error
		topo, err = NewCampus(DefaultCampusConfig())
		if err != nil {
			return nil, err
		}
	}
	stations := topo.Stations()
	if len(stations) < 2 {
		return nil, fmt.Errorf("%w: topology needs ≥ 2 stations for trips", ErrBadOptions)
	}
	base, err := topo.TransitTimes(opt.CartMass, opt.DragMargin)
	if err != nil {
		return nil, err
	}
	router, err := NewRouter(topo, base, opt.Alpha, opt.RouterWorkers)
	if err != nil {
		return nil, err
	}
	n, m := topo.NumNodes(), topo.NumEdges()
	c := &Campus{
		opt:         opt,
		topo:        topo,
		eng:         sim.New(),
		router:      router,
		ctx:         context.Background(),
		baseTransit: base,

		nodeDown: make([]int, n),
		edgeDown: make([]int, m),
		nodeUp:   make([]bool, n),
		edgeUp:   make([]bool, m),

		dockFree:  make([]int, n),
		dockQueue: make([][]int32, n),

		edgeOcc:       make([]int, m),
		edgeQueue:     make([][]int32, m),
		edgeOccupants: make([][]int32, m),
		lineOcc:       make([][]lineHold, topo.NumLines()),
		queueScratch:  make([]int, m),

		carts:     make([]campusCart, opt.Carts),
		dests:     make([]NodeID, opt.Carts*opt.TripsPerCart),
		loiterers: make([]int32, 0, opt.Carts),
		retrySet:  make([]int32, 0, opt.Carts),
		transits:  make([]units.Seconds, 0, opt.Carts*opt.TripsPerCart),
		perEdge:   make([]EdgeStats, m),
	}
	for i := range c.nodeUp {
		c.nodeUp[i] = true
		c.dockFree[i] = topo.Node(NodeID(i)).Docks
	}
	for i := range c.edgeUp {
		c.edgeUp[i] = true
	}
	c.initTelemetry(opt.Telemetry)

	rng := rand.New(rand.NewSource(opt.Seed))
	pick := func(not NodeID) NodeID {
		j := rng.Intn(len(stations) - 1)
		if stations[j] == not {
			j = len(stations) - 1
		}
		return stations[j]
	}
	for i := range c.carts {
		ct := &c.carts[i]
		start := stations[rng.Intn(len(stations))]
		prev := start
		for t := 0; t < opt.TripsPerCart; t++ {
			d := pick(prev)
			c.dests[i*opt.TripsPerCart+t] = d
			prev = d
		}
		ct.at = start
		ct.dst = c.dests[i*opt.TripsPerCart]
		ct.edge = NoEdge
		ct.planned = NoEdge
		ci := int32(i)
		ct.departFn = func() { c.tryDepart(ci) }
		ct.arriveFn = func() { c.arrive(ci) }
		ct.dwellFn = func() { c.endDwell(ci) }
		if c.tel.spans != nil {
			ct.trackID = c.tel.spans.Intern(fmt.Sprintf("cart-%04d", i))
		}
		t0 := units.Seconds(rng.Float64() * float64(opt.LaunchSpread))
		ct.tripStart = t0
		if _, err := c.eng.At(t0, evDepart, ct.departFn); err != nil {
			return nil, err
		}
	}
	if opt.EpochEvery > 0 {
		c.eng.MustAfter(opt.EpochEvery, evEpoch, c.epoch)
	}
	return c, nil
}

// initTelemetry binds the metric handles and interns the span vocabulary.
func (c *Campus) initTelemetry(set *telemetry.Set) {
	reg := set.MetricsOf()
	c.tel = campusTel{
		spans:       set.SpansOf(),
		trips:       reg.Counter("tubenet_trips_total"),
		reroutes:    reg.Counter("tubenet_reroutes_total"),
		loiters:     reg.Counter("tubenet_loiters_total"),
		stalls:      reg.Counter("tubenet_stalls_total"),
		entries:     reg.Counter("tubenet_edge_entries_total"),
		tripSeconds: reg.Histogram("tubenet_trip_seconds", tripBuckets),
	}
	if sp := c.tel.spans; sp != nil {
		c.tel.idTransit = sp.Intern(spanTransit)
		c.tel.idDock = sp.Intern(spanDock)
		c.tel.idDwell = sp.Intern(spanDwell)
		c.tel.idReroute = sp.Intern(markReroute)
		c.tel.idLoiter = sp.Intern(markLoiter)
		c.tel.idStall = sp.Intern(markStall)
		c.tel.idResume = sp.Intern(markResume)
	}
}

// Engine exposes the simulation clock, e.g. to arm a faults.Injector.
func (c *Campus) Engine() *sim.Engine { return c.eng }

// Topology returns the network the campus runs over.
func (c *Campus) Topology() *Topology { return c.topo }

// Dims describes the deployment for faults.ScenarioDims: every node can
// suffer a JunctionFailure and every directed segment a TubeSegmentFailure.
func (c *Campus) Dims() faults.Dims {
	return faults.Dims{
		Carts:          c.opt.Carts,
		Stations:       c.topo.NumNodes(),
		DevicesPerCart: 1,
		Segments:       c.topo.NumEdges(),
	}
}

// Start computes the initial route tables without draining the event
// queue, so callers can drive the engine step-by-step (benchmarks and the
// hot-path allocation tests). Run calls it implicitly.
func (c *Campus) Start() error {
	if c.ran {
		return errors.New("tubenet: campus already ran")
	}
	c.ran = true
	return c.recomputeRoutes()
}

// Run executes the simulation to quiescence and returns the summary. A
// Campus runs once.
func (c *Campus) Run() (Result, error) {
	if err := c.Start(); err != nil {
		return Result{}, err
	}
	if _, err := c.eng.Run(c.opt.MaxEvents); err != nil {
		return Result{}, err
	}
	return c.result(), nil
}

// result assembles the Result and exports the per-edge telemetry gauges.
func (c *Campus) result() Result {
	r := Result{
		Carts:          c.opt.Carts,
		TripsCompleted: c.tripsDone,
		TripsPending:   c.opt.Carts*c.opt.TripsPerCart - c.tripsDone,
		Parked:         c.parked,
		Reroutes:       c.nReroutes,
		Loiters:        c.nLoiters,
		Stalls:         c.nStalls,
		MaxQueue:       c.maxQueue,
		RouteEpochs:    c.router.Epochs(),
		Events:         c.eng.Processed(),
		Elapsed:        c.eng.Now(),
		TotalTransit:   c.totalTransit,
		PerEdge:        append([]EdgeStats(nil), c.perEdge...),
	}
	r.LoiteringAtEnd = len(c.loiterers)
	for i := range c.carts {
		if c.carts[i].stalled {
			r.StalledAtEnd++
		}
	}
	if len(c.transits) > 0 {
		sorted := append([]units.Seconds(nil), c.transits...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.TransitP50 = quantileSeconds(sorted, 0.50)
		r.TransitP99 = quantileSeconds(sorted, 0.99)
	}
	if reg := c.opt.Telemetry.MetricsOf(); reg != nil && c.eng.Now() > 0 {
		for e := range c.perEdge {
			util := float64(c.perEdge[e].Busy) / float64(c.eng.Now())
			reg.Gauge(fmt.Sprintf("tubenet_edge_%03d_util", e)).Set(util)
			reg.Gauge(fmt.Sprintf("tubenet_edge_%03d_max_queue", e)).Set(float64(c.perEdge[e].MaxQueue))
		}
	}
	return r
}

// quantileSeconds is the nearest-rank quantile of a sorted sample.
func quantileSeconds(sorted []units.Seconds, q float64) units.Seconds {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// recomputeRoutes rebuilds the routing tables from current liveness and
// queue depths. Called at epochs and on every fault transition — never
// from the dispatch hot loop.
func (c *Campus) recomputeRoutes() error {
	for e := range c.queueScratch {
		c.queueScratch[e] = len(c.edgeQueue[e])
	}
	return c.router.Recompute(c.ctx, Liveness{NodeUp: c.nodeUp, EdgeUp: c.edgeUp}, c.queueScratch)
}

// mustRecompute is recomputeRoutes for event context, where the only
// failure mode (a cancelled context) cannot occur.
func (c *Campus) mustRecompute() {
	if err := c.recomputeRoutes(); err != nil {
		panic(err)
	}
}

// epoch is the periodic congestion recompute. It reschedules itself only
// while other events are pending, so a fully partitioned simulation drains
// instead of ticking forever over immovable carts.
func (c *Campus) epoch() {
	c.mustRecompute()
	c.retryLoiterers()
	if c.eng.Pending() > 0 {
		c.eng.MustAfter(c.opt.EpochEvery, evEpoch, c.epoch)
	}
}

// ---- dispatch hot loop ----------------------------------------------------

// tryDepart routes the cart out of its current node: committing (and
// reroute-accounting) the next hop, then entering the edge, queueing on
// it, or loitering when no live path exists.
//
//dhllint:hotpath
func (c *Campus) tryDepart(ci int32) {
	ct := &c.carts[ci]
	if !c.nodeUp[ct.at] {
		c.loiterCart(ci)
		return
	}
	h := c.router.NextHop(ct.at, ct.dst)
	if h == NoEdge {
		c.loiterCart(ci)
		return
	}
	if ct.hasPlan && ct.planned != h {
		c.nReroutes++
		c.tel.reroutes.Inc()
		c.tel.spans.RecordInstant(ct.trackID, c.tel.idReroute, c.eng.Now())
	}
	ct.planned = h
	ct.hasPlan = true
	if !c.admissible(h) {
		c.enqueueEdge(h, ci)
		return
	}
	c.enterEdge(ci, h)
}

// admissible reports whether a cart may enter edge e now: the edge is
// live, has a free capacity slot, and (for single-rail edges) no
// overlapping span of its line is held.
//
//dhllint:hotpath
func (c *Campus) admissible(e EdgeID) bool {
	if !c.edgeUp[e] {
		return false
	}
	ed := c.topo.Edge(e)
	if ed.Capacity <= 0 || c.edgeOcc[e] >= ed.Capacity {
		return false
	}
	if ed.Line != NoLine && !c.lineFree(ed) {
		return false
	}
	return true
}

// lineFree reports whether ed's span is clear on its line.
//
//dhllint:hotpath
func (c *Campus) lineFree(ed Edge) bool {
	for _, h := range c.lineOcc[ed.Line] {
		if h.sp.Overlaps(ed.Span) {
			return false
		}
	}
	return true
}

// enqueueEdge parks the cart in e's FIFO entry queue.
//
//dhllint:hotpath
func (c *Campus) enqueueEdge(e EdgeID, ci int32) {
	c.edgeQueue[e] = append(c.edgeQueue[e], ci)
	if n := len(c.edgeQueue[e]); n > c.perEdge[e].MaxQueue {
		c.perEdge[e].MaxQueue = n
		if n > c.maxQueue {
			c.maxQueue = n
		}
	}
}

// enterEdge admits the cart into segment e and schedules its arrival.
//
//dhllint:hotpath
func (c *Campus) enterEdge(ci int32, e EdgeID) {
	ct := &c.carts[ci]
	ed := c.topo.Edge(e)
	c.edgeOcc[e]++
	c.edgeOccupants[e] = append(c.edgeOccupants[e], ci)
	if ed.Line != NoLine {
		c.lineOcc[ed.Line] = append(c.lineOcc[ed.Line], lineHold{e: e, sp: ed.Span})
	}
	c.perEdge[e].Entries++
	c.perEdge[e].Busy += c.baseTransit[e]
	c.tel.entries.Inc()
	ct.edge = e
	ct.entryT = c.eng.Now()
	ct.arriveAt = ct.entryT + c.baseTransit[e]
	ct.arriveH = c.eng.MustAfter(c.baseTransit[e], evArrive, ct.arriveFn)
	ct.stalled = false
	// Commit the onward hop the cart expects from the far end under the
	// current tables. If an epoch or fault recompute changes it before the
	// cart gets there, the divergence at the junction counts as a reroute.
	if ed.To != ct.dst {
		ct.planned = c.router.NextHop(ed.To, ct.dst)
		ct.hasPlan = ct.planned != NoEdge
	}
}

// arrive completes a segment transit: the cart releases the segment (and
// its line span), then docks at its destination or relays onward.
//
//dhllint:hotpath
func (c *Campus) arrive(ci int32) {
	ct := &c.carts[ci]
	e := ct.edge
	v := c.topo.Edge(e).To
	c.tel.spans.RecordSpan(ct.trackID, c.tel.idTransit, ct.entryT, c.eng.Now())
	c.releaseEdge(e, ci)
	ct.edge = NoEdge
	ct.at = v
	// The plan committed at entry survives to tryDepart so mid-flight
	// route changes are reroute-accounted; a dock clears it implicitly
	// (dockCart recommits for the next trip).
	if v == ct.dst {
		c.tryDock(ci)
		return
	}
	c.tryDepart(ci)
}

// releaseEdge frees the cart's capacity slot and span, then retries the
// entry queues the release may have unblocked: the whole line for
// single-rail edges (a freed span can admit waiters on any of its edges),
// or just this edge's queue for trunks.
//
//dhllint:hotpath
func (c *Campus) releaseEdge(e EdgeID, ci int32) {
	c.edgeOcc[e]--
	c.removeOccupant(e, ci)
	if l := c.topo.Edge(e).Line; l != NoLine {
		c.releaseLine(l, e)
		c.retryLine(l)
		return
	}
	c.retryEdgeQueue(e)
}

// removeOccupant drops ci from e's occupant list, preserving order so
// stall processing stays deterministic.
//
//dhllint:hotpath
func (c *Campus) removeOccupant(e EdgeID, ci int32) {
	occ := c.edgeOccupants[e]
	for i, o := range occ {
		if o == ci {
			copy(occ[i:], occ[i+1:])
			c.edgeOccupants[e] = occ[:len(occ)-1]
			return
		}
	}
}

// releaseLine drops the first hold for edge e on line l.
//
//dhllint:hotpath
func (c *Campus) releaseLine(l int, e EdgeID) {
	holds := c.lineOcc[l]
	for i, h := range holds {
		if h.e == e {
			copy(holds[i:], holds[i+1:])
			c.lineOcc[l] = holds[:len(holds)-1]
			return
		}
	}
}

// retryLine retries the entry queue of every edge on line l in ascending
// EdgeID order.
//
//dhllint:hotpath
func (c *Campus) retryLine(l int) {
	for _, e := range c.topo.LineEdges(l) {
		c.retryEdgeQueue(e)
	}
}

// retryEdgeQueue admits queued carts into e in FIFO order while it stays
// admissible.
//
//dhllint:hotpath
func (c *Campus) retryEdgeQueue(e EdgeID) {
	for len(c.edgeQueue[e]) > 0 && c.admissible(e) {
		q := c.edgeQueue[e]
		ci := q[0]
		copy(q, q[1:])
		c.edgeQueue[e] = q[:len(q)-1]
		c.enterEdge(ci, e)
	}
}

// tryDock claims a dock slot at the cart's destination or joins the
// station's dock FIFO (the cart waits in a siding, holding no tube
// resources).
//
//dhllint:hotpath
func (c *Campus) tryDock(ci int32) {
	ct := &c.carts[ci]
	if c.dockFree[ct.at] > 0 {
		c.dockCart(ci)
		return
	}
	c.dockQueue[ct.at] = append(c.dockQueue[ct.at], ci)
}

// dockCart completes the trip: claims the dock, accounts trip time, lines
// up the next trip's destination (committing its planned hop, so chaos
// during the dwell shows up as a reroute), and schedules the dwell.
//
//dhllint:hotpath
func (c *Campus) dockCart(ci int32) {
	ct := &c.carts[ci]
	now := c.eng.Now()
	c.dockFree[ct.at]--
	ct.dockStart = now
	d := now - ct.tripStart
	c.transits = append(c.transits, d)
	c.totalTransit += d
	c.tripsDone++
	c.tel.trips.Inc()
	c.tel.tripSeconds.Observe(float64(d))
	c.tel.spans.RecordSpan(ct.trackID, c.tel.idDock, ct.tripStart, now)
	ct.trip++
	if ct.trip < c.opt.TripsPerCart {
		ct.dst = c.dests[int(ci)*c.opt.TripsPerCart+ct.trip]
		h := c.router.NextHop(ct.at, ct.dst)
		ct.planned = h
		ct.hasPlan = h != NoEdge
	}
	c.eng.MustAfter(c.opt.DwellTime, evDwell, ct.dwellFn)
}

// endDwell releases the dock slot and either parks the cart (all trips
// done) or starts its next trip.
//
//dhllint:hotpath
func (c *Campus) endDwell(ci int32) {
	ct := &c.carts[ci]
	now := c.eng.Now()
	c.tel.spans.RecordSpan(ct.trackID, c.tel.idDwell, ct.dockStart, now)
	c.dockFree[ct.at]++
	c.retryDockQueue(ct.at)
	if ct.trip >= c.opt.TripsPerCart {
		ct.parked = true
		c.parked++
		return
	}
	ct.tripStart = now
	c.tryDepart(ci)
}

// retryDockQueue admits dock waiters in FIFO order while slots remain.
//
//dhllint:hotpath
func (c *Campus) retryDockQueue(v NodeID) {
	for len(c.dockQueue[v]) > 0 && c.dockFree[v] > 0 {
		q := c.dockQueue[v]
		ci := q[0]
		copy(q, q[1:])
		c.dockQueue[v] = q[:len(q)-1]
		c.dockCart(ci)
	}
}

// loiterCart records that the cart has no live route and parks it on the
// loiter list, retried after every heal and epoch recompute.
//
//dhllint:hotpath
func (c *Campus) loiterCart(ci int32) {
	ct := &c.carts[ci]
	c.nLoiters++
	c.tel.loiters.Inc()
	c.tel.spans.RecordInstant(ct.trackID, c.tel.idLoiter, c.eng.Now())
	if !ct.loitering {
		ct.loitering = true
		c.loiterers = append(c.loiterers, ci)
	}
}

// retryLoiterers re-attempts departure for every loitering cart (the
// copy-then-clear idiom: a retry may legitimately re-loiter the cart).
func (c *Campus) retryLoiterers() {
	if len(c.loiterers) == 0 {
		return
	}
	c.retrySet = append(c.retrySet[:0], c.loiterers...)
	c.loiterers = c.loiterers[:0]
	for _, ci := range c.retrySet {
		c.carts[ci].loitering = false
		c.tryDepart(ci)
	}
}

// ---- fault handling (faults.Target) ---------------------------------------

// Inject applies a campus fault. Kinds outside the campus taxonomy are
// ignored — a shared chaos script may carry point-to-point faults too.
func (c *Campus) Inject(f faults.Fault) {
	switch f.Kind {
	case faults.JunctionFailure:
		c.killNode(NodeID(f.Station))
	case faults.TubeSegmentFailure:
		c.killEdge(EdgeID(f.Segment))
	}
}

// Recover repairs a campus fault.
func (c *Campus) Recover(f faults.Fault) {
	switch f.Kind {
	case faults.JunctionFailure:
		c.healNode(NodeID(f.Station))
	case faults.TubeSegmentFailure:
		c.healEdge(EdgeID(f.Segment))
	}
}

// killNode takes a junction/station out of service: no departures, the
// router excludes it, and carts queued on its out-edges fall back to
// loitering. Inbound carts still arrive — the tube physically ends there.
func (c *Campus) killNode(v NodeID) {
	c.nodeDown[v]++
	if c.nodeDown[v] > 1 {
		return // already down under an overlapping fault window
	}
	c.nodeUp[v] = false
	for _, e := range c.topo.Out(v) {
		c.drainQueueToLoiter(e)
	}
	c.mustRecompute()
}

// healNode returns a node to service once every overlapping fault window
// has closed, then reroutes and retries the loiterers.
func (c *Campus) healNode(v NodeID) {
	c.nodeDown[v]--
	if c.nodeDown[v] > 0 {
		return
	}
	c.nodeUp[v] = true
	c.mustRecompute()
	c.retryLoiterers()
}

// killEdge kills a tube segment: queued carts reroute (via loiter), and
// carts mid-segment coast to a protected stop — their arrivals are
// cancelled and rescheduled with the remaining transit when the segment
// heals.
func (c *Campus) killEdge(e EdgeID) {
	c.edgeDown[e]++
	if c.edgeDown[e] > 1 {
		return
	}
	c.edgeUp[e] = false
	c.drainQueueToLoiter(e)
	now := c.eng.Now()
	for _, ci := range c.edgeOccupants[e] {
		ct := &c.carts[ci]
		if ct.stalled {
			continue
		}
		c.eng.Cancel(ct.arriveH)
		ct.remaining = ct.arriveAt - now
		ct.stalled = true
		c.nStalls++
		c.tel.stalls.Inc()
		c.tel.spans.RecordInstant(ct.trackID, c.tel.idStall, now)
	}
	c.mustRecompute()
}

// healEdge restores a segment: stalled carts resume with their remaining
// transit time, then the network reroutes and retries the loiterers.
func (c *Campus) healEdge(e EdgeID) {
	c.edgeDown[e]--
	if c.edgeDown[e] > 0 {
		return
	}
	c.edgeUp[e] = true
	now := c.eng.Now()
	for _, ci := range c.edgeOccupants[e] {
		ct := &c.carts[ci]
		if !ct.stalled {
			continue
		}
		ct.stalled = false
		ct.arriveAt = now + ct.remaining
		ct.arriveH = c.eng.MustAfter(ct.remaining, evArrive, ct.arriveFn)
		c.tel.spans.RecordInstant(ct.trackID, c.tel.idResume, now)
	}
	c.mustRecompute()
	c.retryLoiterers()
	c.retryEdgeQueue(e)
}

// drainQueueToLoiter moves every cart queued on e to the loiter list; each
// keeps its committed (now dead) plan, so its eventual escape over a
// different edge is counted as a reroute.
func (c *Campus) drainQueueToLoiter(e EdgeID) {
	q := c.edgeQueue[e]
	for _, ci := range q {
		c.loiterCart(ci)
	}
	c.edgeQueue[e] = q[:0]
}
