package tubenet

import (
	"context"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func TestCampusRunCompletesAllTrips(t *testing.T) {
	c, err := New(Options{Carts: 40, TripsPerCart: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TripsCompleted != 80 || res.TripsPending != 0 {
		t.Errorf("trips = %d completed, %d pending, want 80/0", res.TripsCompleted, res.TripsPending)
	}
	if res.Parked != 40 {
		t.Errorf("parked = %d, want 40", res.Parked)
	}
	if res.Availability() != 1 {
		t.Errorf("availability = %v, want 1", res.Availability())
	}
	if res.TransitP50 <= 0 || res.TransitP99 < res.TransitP50 {
		t.Errorf("quantiles p50=%v p99=%v look wrong", res.TransitP50, res.TransitP99)
	}
	var entries int
	for _, s := range res.PerEdge {
		entries += s.Entries
	}
	if entries < res.TripsCompleted {
		t.Errorf("only %d edge entries for %d trips", entries, res.TripsCompleted)
	}
	if _, err := c.Run(); err == nil {
		t.Error("a campus must refuse to run twice")
	}
}

func TestCampusRunIsByteIdentical(t *testing.T) {
	run := func() string {
		c, err := New(Options{Carts: 60, TripsPerCart: 3, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different runs:\n%s\nvs\n%s", a, b)
	}
}

func TestCampusByteIdenticalAcrossRouterWorkers(t *testing.T) {
	run := func(workers int) string {
		c, err := New(Options{Carts: 50, TripsPerCart: 2, Seed: 7, RouterWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	seq := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); got != seq {
			t.Errorf("workers=%d diverged from sequential:\n%s\nvs\n%s", w, got, seq)
		}
	}
}

// partitionCampus kills every edge touching the trunk ring, isolating all
// four spur lines from each other, with no recovery scheduled.
func partitionCampus(c *Campus) {
	for e := 0; e < c.Topology().NumEdges(); e++ {
		ed := c.Topology().Edge(EdgeID(e))
		if ed.Line == NoLine {
			c.Inject(faults.Fault{Kind: faults.TubeSegmentFailure, Segment: e, Duration: 1})
		}
	}
}

func TestAllPathsDeadPartitionLoitersAndDrains(t *testing.T) {
	c, err := New(Options{Carts: 30, TripsPerCart: 1, Seed: 3, LaunchSpread: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Sever the trunk ring before any cart moves: carts whose destination
	// sits on another spur can never route and must loiter; the simulation
	// still drains (no periodic retry spins forever).
	if _, err := c.eng.At(0, "test-partition", func() { partitionCampus(c) }); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TripsPending == 0 {
		t.Fatal("a severed trunk ring should strand at least one cross-spur trip")
	}
	if res.Loiters == 0 || res.LoiteringAtEnd == 0 {
		t.Errorf("stranded carts must loiter: loiters=%d at-end=%d", res.Loiters, res.LoiteringAtEnd)
	}
	if res.Availability() >= 1 {
		t.Errorf("availability = %v, want < 1 under partition", res.Availability())
	}
	if !strings.Contains(res.String(), "loitering-at-end") {
		t.Errorf("report must surface loitering carts:\n%s", res.String())
	}
	// Same-spur trips still complete.
	if res.TripsCompleted == 0 {
		t.Errorf("same-spur trips should still run: %+v", res)
	}
}

func TestChaosRerouteAroundDeadTrunk(t *testing.T) {
	// One cart, forced onto a known trunk route; kill its planned first
	// trunk segment mid-dwell so the depart reroutes the long way around
	// the ring.
	topo, err := NewCampus(DefaultCampusConfig())
	if err != nil {
		t.Fatal(err)
	}
	set := telemetry.NewSet()
	c, err := New(Options{Topo: topo, Carts: 12, TripsPerCart: 2, Seed: 9, Telemetry: set})
	if err != nil {
		t.Fatal(err)
	}
	// Kill trunk segments in a window long enough to overlap departures.
	kill := func(seg int, at, dur units.Seconds) {
		f := faults.Fault{Kind: faults.TubeSegmentFailure, Segment: seg, At: at, Duration: dur}
		if _, err := c.eng.At(at, "test-kill", func() { c.Inject(f) }); err != nil {
			t.Fatal(err)
		}
		if _, err := c.eng.At(at+dur, "test-heal", func() { c.Recover(f) }); err != nil {
			t.Fatal(err)
		}
	}
	for seg := 0; seg < 8; seg++ { // all trunk edges, staggered windows
		kill(seg, units.Seconds(5+seg*7), 40)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TripsPending != 0 {
		t.Errorf("all trips should finish after heals: %d pending", res.TripsPending)
	}
	if res.Reroutes == 0 && res.Loiters == 0 {
		t.Errorf("trunk chaos should visibly reroute or loiter: %+v", res)
	}
	// Reroutes/loiters must be visible in telemetry, not just the Result.
	snap := set.Metrics.Snapshot()
	var reroutes, loiters float64
	for _, m := range snap.Counters {
		switch m.Name {
		case "tubenet_reroutes_total":
			reroutes = m.Value
		case "tubenet_loiters_total":
			loiters = m.Value
		}
	}
	if int(reroutes) != res.Reroutes || int(loiters) != res.Loiters {
		t.Errorf("telemetry counters (%v, %v) disagree with result (%d, %d)",
			reroutes, loiters, res.Reroutes, res.Loiters)
	}
}

func TestSegmentStallResumesWithRemainingTime(t *testing.T) {
	c, err := New(Options{Carts: 8, TripsPerCart: 1, Seed: 21, LaunchSpread: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Kill every segment at t=1.5: all carts launch in [0,1) and a spur hop
	// takes ~2.7 s, so whoever won its rail span is mid-transit. Heal at 500.
	m := c.Topology().NumEdges()
	if _, err := c.eng.At(1.5, "test-kill-all", func() {
		for e := 0; e < m; e++ {
			c.Inject(faults.Fault{Kind: faults.TubeSegmentFailure, Segment: e, Duration: 1})
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.eng.At(500, "test-heal-all", func() {
		for e := 0; e < m; e++ {
			c.Recover(faults.Fault{Kind: faults.TubeSegmentFailure, Segment: e, Duration: 1})
		}
	}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TripsPending != 0 {
		t.Errorf("%d trips pending after heal", res.TripsPending)
	}
	if res.Stalls == 0 {
		t.Error("carts in transit at t=1 should have stalled")
	}
	if res.Elapsed < 500 {
		t.Errorf("elapsed %v: stalled carts must resume only after the heal", res.Elapsed)
	}
}

func TestJunctionFailureBlocksDeparturesButNotArrivals(t *testing.T) {
	c, err := New(Options{Carts: 20, TripsPerCart: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	// Take junction 0 down for a long window early on.
	f := faults.Fault{Kind: faults.JunctionFailure, Station: 0, At: 2, Duration: 300}
	if _, err := c.eng.At(2, "test-kill-j0", func() { c.Inject(f) }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.eng.At(302, "test-heal-j0", func() { c.Recover(f) }); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TripsPending != 0 {
		t.Errorf("%d trips pending after junction heal", res.TripsPending)
	}
	if res.Loiters == 0 && res.Reroutes == 0 {
		t.Errorf("a 300 s junction outage should strand or reroute someone: %+v", res)
	}
}

func TestCampusPartitionScenarioReplaysByteIdentically(t *testing.T) {
	run := func() string {
		c, err := New(Options{Carts: 40, TripsPerCart: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		script, err := faults.ScenarioDims(faults.ScenarioCampusPartition, 5, 400, c.Dims())
		if err != nil {
			t.Fatal(err)
		}
		inj, err := faults.NewInjector(c.Engine(), c, script)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Arm(); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(inj.LogLines(), "\n") + "\n" + res.String()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("campus-partition replay diverged:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "tube-segment-failure") || !strings.Contains(a, "junction-failure") {
		t.Errorf("scenario should inject both campus kinds:\n%s", a)
	}
}

func TestCampusTelemetryExportIsByteIdentical(t *testing.T) {
	run := func() string {
		set := telemetry.NewSet()
		c, err := New(Options{Carts: 25, TripsPerCart: 2, Seed: 13, Telemetry: set})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return telemetry.PrometheusText(set.Metrics.Snapshot())
	}
	a, b := run(), run()
	if a != b {
		t.Error("telemetry exports diverged across identical runs")
	}
	if !strings.Contains(a, "tubenet_trips_total") || !strings.Contains(a, "tubenet_edge_000_util") {
		t.Errorf("export missing tubenet series:\n%.400s", a)
	}
}

func TestRunStudyDeterministicAcrossWorkers(t *testing.T) {
	opt := Options{Carts: 20, TripsPerCart: 2}
	seeds := []int64{1, 2, 3, 4}
	reps1, tot1, err := RunStudy(context.Background(), opt, faults.ScenarioCampusPartition, 300, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	reps4, tot4, err := RunStudy(context.Background(), opt, faults.ScenarioCampusPartition, 300, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tot1 != tot4 {
		t.Errorf("study totals diverged across workers: %+v vs %+v", tot1, tot4)
	}
	if len(reps1) != len(seeds) {
		t.Fatalf("got %d replicas", len(reps1))
	}
	for i := range reps1 {
		if reps1[i].Result.String() != reps4[i].Result.String() {
			t.Errorf("replica %d diverged across worker counts", i)
		}
	}
	if tot1.Replicas != len(seeds) {
		t.Errorf("aggregate saw %d replicas, want %d", tot1.Replicas, len(seeds))
	}
	// Chaos-free control run for contrast: no loiters, no stalls.
	_, calm, err := RunStudy(context.Background(), opt, "", 300, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if calm.Loiters != 0 || calm.Stalls != 0 || calm.TripsPending != 0 {
		t.Errorf("chaos-free study should be clean: %+v", calm)
	}
}

func TestNewRejectsBadOptions(t *testing.T) {
	if _, err := New(Options{Carts: -1}); err == nil {
		t.Error("negative carts must be rejected")
	}
	two := []Node{{Name: "A", Docks: 1}, {Name: "B", Docks: 1}}
	topo, err := NewTopology(two, []Edge{testEdge(0, 1), testEdge(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Topo: topo, Carts: 2}); err != nil {
		t.Errorf("two-station topology should be accepted: %v", err)
	}
	one, err := NewTopology([]Node{{Name: "A", Docks: 1}, {Name: "J", Junction: true}},
		[]Edge{testEdge(0, 1), testEdge(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Topo: one, Carts: 2}); err == nil {
		t.Error("single-station topology must be rejected (no trips possible)")
	}
}
