package tubenet

// The campus simulation's event and span names form a small fixed
// vocabulary, interned here as constants. The dispatch hot loop never
// builds a name at run time (per-cart track names are precomputed at
// construction), so scheduling and recording stay free of string garbage
// and trace consumers can rely on the exact byte strings below.
const (
	// Event-kernel event names (sim.Engine schedule sites).
	evDepart = "campus-depart"
	evArrive = "campus-arrive"
	evDwell  = "campus-dwell"
	evEpoch  = "route-epoch"
	evPark   = "campus-park"

	// Span and instant names on cart telemetry tracks.
	spanTransit = "transit"
	spanDock    = "dock"
	spanDwell   = "dwell"
	markReroute = "reroute"
	markLoiter  = "loiter"
	markStall   = "stall"
	markResume  = "resume"
)
