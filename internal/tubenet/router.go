package tubenet

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/sweep"
	"repro/internal/units"
)

// Router computes and serves next-hop routing tables over a Topology.
//
// Edge costs are congestion-aware: cost(e) = base(e) · (1 + α·queue(e)),
// where base(e) is the congestion-free transit time and queue(e) the entry
// queue depth at recompute time. Tables are recomputed at seeded epochs and
// immediately on fault inject/recover, never incrementally, so the routing
// state is always a pure function of (topology, liveness, queue snapshot) —
// the determinism contract.
//
// Recompute runs one Dijkstra per source node, fanned out on the sweep pool
// (input-ordered results, so the table is byte-identical at any worker
// count). Workers borrow per-source scratch buffers from a mutex-guarded
// free pool — the one piece of genuinely shared mutable state, annotated
// for the lockcheck analyzer.
type Router struct {
	topo *Topology
	// base is the congestion-free cost of each edge, in seconds.
	base []float64
	// alpha weights queue depth into edge cost.
	alpha float64
	// workers bounds the recompute fan-out (sweep.Workers semantics).
	workers int

	// next[src][dst] is the first-hop edge from src toward dst, NoEdge
	// when unreachable. Swapped wholesale by Recompute; read by the
	// single-threaded dispatch loop, so it needs no lock.
	next [][]EdgeID
	// epochs counts completed recomputes.
	epochs int

	mu sync.Mutex
	// free pools dijkstra scratch buffers across recompute workers.
	//
	//dhllint:guardedby mu
	free []*dijkstraScratch
}

// dijkstraScratch is one worker's per-source working set.
type dijkstraScratch struct {
	dist []float64
	hop  []EdgeID
	done []bool
}

// Liveness is the fault-state view the router plans against: dead nodes
// are excluded as waypoints and destinations, dead edges are never
// selected.
type Liveness struct {
	NodeUp []bool
	EdgeUp []bool
}

// NewRouter builds a router over topo with the given congestion-free edge
// costs (seconds; from Topology.TransitTimes). alpha ≤ 0 disables
// congestion weighting; workers ≤ 0 selects one worker.
func NewRouter(topo *Topology, base []units.Seconds, alpha float64, workers int) (*Router, error) {
	if topo == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrBadTopology)
	}
	if len(base) != topo.NumEdges() {
		return nil, fmt.Errorf("%w: %d base costs for %d edges", ErrBadTopology, len(base), topo.NumEdges())
	}
	if alpha < 0 {
		alpha = 0
	}
	if workers < 1 {
		workers = 1
	}
	r := &Router{topo: topo, base: make([]float64, len(base)), alpha: alpha, workers: workers}
	for i, b := range base {
		if b <= 0 {
			return nil, fmt.Errorf("%w: edge %d has non-positive base cost %v", ErrBadTopology, i, b)
		}
		r.base[i] = float64(b)
	}
	return r, nil
}

// Epochs returns the number of completed recomputes.
func (r *Router) Epochs() int { return r.epochs }

// NextHop returns the first-hop edge from src toward dst, or NoEdge when
// dst is unreachable under the last recompute's liveness. Call Recompute
// at least once first.
//
//dhllint:hotpath
func (r *Router) NextHop(src, dst NodeID) EdgeID {
	if r.next == nil {
		return NoEdge
	}
	return r.next[src][dst]
}

// getScratch borrows a scratch buffer from the shared pool, growing the
// pool when all buffers are in flight.
func (r *Router) getScratch() *dijkstraScratch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.free); n > 0 {
		s := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return s
	}
	n := r.topo.NumNodes()
	return &dijkstraScratch{dist: make([]float64, n), hop: make([]EdgeID, n), done: make([]bool, n)}
}

// putScratch returns a borrowed scratch buffer to the pool.
func (r *Router) putScratch(s *dijkstraScratch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.free = append(r.free, s)
}

// Recompute rebuilds the full next-hop table from the current liveness and
// entry-queue snapshot. queues[e] is the number of carts waiting to enter
// edge e; nil means no congestion. One Dijkstra runs per source node,
// mapped over the sweep pool.
func (r *Router) Recompute(ctx context.Context, live Liveness, queues []int) error {
	n := r.topo.NumNodes()
	cost := make([]float64, r.topo.NumEdges())
	for e := range cost {
		q := 0.0
		if queues != nil {
			q = float64(queues[e])
		}
		cost[e] = r.base[e] * (1 + r.alpha*q)
	}
	srcs := make([]NodeID, n)
	for i := range srcs {
		srcs[i] = NodeID(i)
	}
	rows, err := sweep.Map(ctx, srcs, func(_ context.Context, src NodeID) ([]EdgeID, error) {
		s := r.getScratch()
		defer r.putScratch(s)
		r.dijkstra(s, src, live, cost)
		return append([]EdgeID(nil), s.hop...), nil
	}, sweep.Workers(r.workers))
	if err != nil {
		return err
	}
	r.next = rows
	r.epochs++
	return nil
}

// usable reports whether edge e may carry traffic under live: the edge is
// up, has capacity at all, and its destination node is up. (The source
// node's liveness gates departures in the dispatch layer; a dead node's
// table row is cleared in dijkstra.)
func (r *Router) usable(e EdgeID, live Liveness) bool {
	if r.topo.Edge(e).Capacity <= 0 {
		return false
	}
	if live.EdgeUp != nil && !live.EdgeUp[e] {
		return false
	}
	if live.NodeUp != nil && !live.NodeUp[r.topo.Edge(e).To] {
		return false
	}
	return true
}

// dijkstra fills s.hop with the first-hop edge from src to every node.
// The scan-based variant (O(N²)) keeps the selection order trivially
// deterministic: the next settled node is the unfinished node with the
// smallest (dist, NodeID); edges relax in ascending EdgeID order; and an
// exactly-equal-cost alternative wins only when its first-hop EdgeID is
// smaller — the explicit tie-break the equal-cost determinism test pins.
func (r *Router) dijkstra(s *dijkstraScratch, src NodeID, live Liveness, cost []float64) {
	n := r.topo.NumNodes()
	for i := 0; i < n; i++ {
		s.dist[i] = math.Inf(1)
		s.hop[i] = NoEdge
		s.done[i] = false
	}
	if live.NodeUp != nil && !live.NodeUp[src] {
		return // a dead node routes nowhere
	}
	s.dist[src] = 0
	for {
		u := NodeID(-1)
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !s.done[i] && s.dist[i] < best {
				best = s.dist[i]
				u = NodeID(i)
			}
		}
		if u < 0 {
			return
		}
		s.done[u] = true
		for _, e := range r.topo.Out(u) {
			if !r.usable(e, live) {
				continue
			}
			v := r.topo.Edge(e).To
			if s.done[v] {
				continue
			}
			nd := s.dist[u] + cost[e]
			fh := s.hop[u]
			if u == src {
				fh = e
			}
			//dhllint:allow floateq -- exact-equality tie-break: both sides are sums of the identical cost terms, and the smaller-first-hop rule only needs to fire on bit-equal ties to stay deterministic
			tie := nd == s.dist[v] && fh < s.hop[v]
			if nd < s.dist[v] || tie {
				s.dist[v] = nd
				s.hop[v] = fh
			}
		}
	}
}
