// Package cpclient is the overload-aware control-plane client: the
// counterpart of the server's admission layer (internal/admit). Where the
// server sheds with CodeServerBusy plus a retry_after_s hint, this client
// honours the hint, backs off with seeded jittered-exponential delays,
// and spends from a retry budget so a degraded server is never buried
// under synchronised retry storms.
//
// Three pieces compose, and are exported separately so cmd/dhlload can
// drive them on a virtual clock:
//
//   - Policy prices the wait before retry attempt N: jittered exponential
//     backoff with the server's retry-after hint as a floor. The jitter
//     RNG is seeded, so a fixed seed yields a byte-identical delay
//     sequence.
//   - Budget is a token-bucket circuit breaker over retries: each retry
//     spends one token, each success earns a fraction back. When the
//     budget is dry the client fails fast instead of amplifying overload
//     (the classic retry-budget rule: retry rate is bounded by a fraction
//     of the success rate).
//   - Client is the blocking TCP client: lazy dial, per-attempt deadlines
//     clipped to the caller's overall deadline, automatic re-dial after
//     transport failures, and retryable-vs-terminal error classification.
package cpclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/controlplane"
)

// RetryOptions shapes the backoff policy and retry budget. Zero fields
// take the documented defaults.
type RetryOptions struct {
	// MaxAttempts is the total number of tries including the first;
	// default 4. 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; default 50ms.
	BaseDelay time.Duration
	// Multiplier grows the delay per attempt; default 2.
	Multiplier float64
	// MaxDelay caps the un-jittered backoff; default 5s.
	MaxDelay time.Duration
	// Jitter is the half-width of the multiplicative jitter band: a delay
	// d becomes uniform in [d*(1-Jitter), d*(1+Jitter)]. Default 0.2;
	// negative disables jitter.
	Jitter float64
	// Seed seeds the jitter RNG; the same seed replays the same delay
	// sequence. Default 1.
	Seed int64
	// BudgetBurst is the retry-token reserve a fresh client may burn
	// before any success; default 10. Each retry spends one token.
	BudgetBurst float64
	// BudgetPerSuccess is the fraction of a token earned back per
	// successful request (bounding steady-state retry rate to that
	// fraction of the success rate); default 0.1.
	BudgetPerSuccess float64
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.Multiplier <= 1 {
		o.Multiplier = 2
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 5 * time.Second
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BudgetBurst <= 0 {
		o.BudgetBurst = 10
	}
	if o.BudgetPerSuccess <= 0 {
		o.BudgetPerSuccess = 0.1
	}
	return o
}

// Policy prices retry delays. Not safe for concurrent use; each
// connection (or simulated client) owns one.
type Policy struct {
	opt RetryOptions
	rng *rand.Rand
}

// NewPolicy builds a policy; zero option fields take defaults.
func NewPolicy(opt RetryOptions) *Policy {
	opt = opt.withDefaults()
	return &Policy{opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Attempts reports the effective attempt cap.
func (p *Policy) Attempts() int { return p.opt.MaxAttempts }

// Backoff returns the wait before retry number retry (1-based: 1 follows
// the first failure). hint is the server's retry-after suggestion and
// acts as a floor — the server knows its backlog better than the client's
// exponential guess — while jitter desynchronises the herd around it.
func (p *Policy) Backoff(retry int, hint time.Duration) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := float64(p.opt.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.opt.Multiplier
		if d >= float64(p.opt.MaxDelay) {
			break
		}
	}
	if d > float64(p.opt.MaxDelay) {
		d = float64(p.opt.MaxDelay)
	}
	if h := float64(hint); h > d {
		d = h
	}
	if j := p.opt.Jitter; j > 0 {
		d *= 1 - j + 2*j*p.rng.Float64()
	}
	return time.Duration(d)
}

// Budget is the retry circuit breaker. Safe for concurrent use so one
// budget can be shared by every connection talking to one server — which
// is exactly how retry budgets are meant to be scoped.
type Budget struct {
	mu sync.Mutex
	//dhllint:guardedby mu
	tokens float64

	burst      float64
	perSuccess float64
}

// NewBudget builds a budget with the given burst reserve and per-success
// earn rate (non-positive values take the RetryOptions defaults).
func NewBudget(burst, perSuccess float64) *Budget {
	if burst <= 0 {
		burst = 10
	}
	if perSuccess <= 0 {
		perSuccess = 0.1
	}
	return &Budget{tokens: burst, burst: burst, perSuccess: perSuccess}
}

// Withdraw takes one retry token; false means the budget is exhausted and
// the caller must fail fast rather than retry.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Success earns back the per-success fraction, capped at the burst.
func (b *Budget) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.perSuccess
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Tokens reports the current reserve.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// RetryableCode reports whether a structured server error code marks a
// transient condition worth retrying. Overload sheds and busy physical
// resources clear with time; validation and state errors do not.
func RetryableCode(code string) bool {
	switch code {
	case controlplane.CodeServerBusy,
		controlplane.CodeCartBusy,
		controlplane.CodeRailBlocked,
		controlplane.CodeStationFailed,
		controlplane.CodeLaunchTimeout:
		return true
	default:
		return false
	}
}

// Retryable classifies one attempt's outcome: transport errors are always
// retryable (the exchange may not have reached the server — note the API's
// ops are idempotent-safe to repeat: open/close converge, read/write
// re-simulate), server responses retry only on transient codes.
func Retryable(resp controlplane.Response, err error) bool {
	if err != nil {
		return true
	}
	if resp.OK {
		return false
	}
	return RetryableCode(resp.Code)
}

// ErrBudgetExhausted marks a retry suppressed by the budget breaker.
var ErrBudgetExhausted = errors.New("cpclient: retry budget exhausted")

// Options configures a Client.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// DialTimeout bounds each (re)connect; default 2s.
	DialTimeout time.Duration
	// AttemptTimeout bounds one request/response exchange; default 10s.
	// The effective per-attempt deadline is clipped to the caller's
	// overall deadline (deadline propagation).
	AttemptTimeout time.Duration
	// Retry shapes backoff and the retry budget.
	Retry RetryOptions
	// Budget, when non-nil, replaces the client's private budget —
	// share one across clients to scope the breaker per server.
	Budget *Budget
	// Dial, Sleep, Clock are injection points for tests and the
	// deterministic harness; nil means net.DialTimeout, time.Sleep,
	// time.Now.
	Dial  func(addr string, timeout time.Duration) (net.Conn, error)
	Sleep func(time.Duration)
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 10 * time.Second
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Stats counts client-side outcomes. All counters are cumulative.
type Stats struct {
	Requests        uint64 `json:"requests"`
	Attempts        uint64 `json:"attempts"`
	Retries         uint64 `json:"retries"`
	Redials         uint64 `json:"redials"`
	TransportErrors uint64 `json:"transport_errors"`
	BusyResponses   uint64 `json:"busy_responses"`
	BudgetDenied    uint64 `json:"budget_denied"`
	DeadlineDenied  uint64 `json:"deadline_denied"`
}

// Client is a blocking control-plane client with retries. Safe for
// concurrent use; requests are serialised over one connection (the wire
// protocol is strictly request/response). Close from another goroutine
// severs an in-flight exchange.
type Client struct {
	opt    Options
	policy *Policy
	budget *Budget

	// exMu serialises request/response exchanges (held across I/O).
	exMu sync.Mutex

	mu sync.Mutex
	//dhllint:guardedby mu
	conn net.Conn
	//dhllint:guardedby mu
	br *bufio.Reader
	//dhllint:guardedby mu
	closed bool
	//dhllint:guardedby mu
	stats Stats
}

// New builds a client; it does not connect until the first request.
func New(opt Options) *Client {
	opt = opt.withDefaults()
	c := &Client{opt: opt, policy: NewPolicy(opt.Retry)}
	if opt.Budget != nil {
		c.budget = opt.Budget
	} else {
		r := opt.Retry.withDefaults()
		c.budget = NewBudget(r.BudgetBurst, r.BudgetPerSuccess)
	}
	return c
}

// Budget exposes the client's (possibly shared) retry budget.
func (c *Client) Budget() *Budget { return c.budget }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close severs the connection; in-flight exchanges fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		c.br = nil
		return err
	}
	return nil
}

// ErrClosed reports a request on a closed client.
var ErrClosed = errors.New("cpclient: client closed")

// Do performs one request with retries, bounded only by AttemptTimeout
// per attempt and the retry policy overall.
func (c *Client) Do(req controlplane.Request) (controlplane.Response, error) {
	return c.DoDeadline(req, time.Time{})
}

// DoDeadline performs one request with retries, never exceeding the
// overall deadline (zero means none): each attempt's I/O deadline is the
// earlier of AttemptTimeout and the overall deadline, and a retry whose
// backoff would overshoot the deadline is abandoned immediately — the
// deadline propagates rather than being discovered by timing out.
func (c *Client) DoDeadline(req controlplane.Request, deadline time.Time) (controlplane.Response, error) {
	var (
		lastResp controlplane.Response
		lastErr  error
	)
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()
	for attempt := 1; ; attempt++ {
		resp, err := c.attempt(req, deadline)
		c.note(func(s *Stats) {
			s.Attempts++
			if err != nil {
				s.TransportErrors++
			} else if resp.Code == controlplane.CodeServerBusy {
				s.BusyResponses++
			}
		})
		if err == nil && !Retryable(resp, nil) {
			if resp.OK {
				c.budget.Success()
			}
			return resp, nil
		}
		lastResp, lastErr = resp, err

		if attempt >= c.policy.Attempts() {
			break
		}
		if !c.budget.Withdraw() {
			c.note(func(s *Stats) { s.BudgetDenied++ })
			if lastErr == nil {
				lastErr = ErrBudgetExhausted
			} else {
				lastErr = fmt.Errorf("%w (after %v)", ErrBudgetExhausted, lastErr)
			}
			break
		}
		var hint time.Duration
		if err == nil && resp.RetryAfterS > 0 {
			hint = time.Duration(resp.RetryAfterS * float64(time.Second))
		}
		wait := c.policy.Backoff(attempt, hint)
		if !deadline.IsZero() && c.opt.Clock().Add(wait).After(deadline) {
			// The backoff would outlive the caller's deadline: give the
			// token back conceptually by failing fast instead of sleeping
			// into certain failure.
			c.note(func(s *Stats) { s.DeadlineDenied++ })
			if lastErr == nil {
				lastErr = fmt.Errorf("cpclient: deadline would expire during %v backoff", wait)
			}
			break
		}
		c.note(func(s *Stats) { s.Retries++ })
		c.opt.Sleep(wait)
	}
	if lastErr != nil {
		return lastResp, lastErr
	}
	return lastResp, nil
}

func (c *Client) note(f func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f(&c.stats)
}

// ensureConn returns the live connection and reader, dialling if needed.
func (c *Client) ensureConn(deadline time.Time) (net.Conn, *bufio.Reader, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if c.conn != nil {
		conn, br := c.conn, c.br
		c.mu.Unlock()
		return conn, br, nil
	}
	c.mu.Unlock()

	dialTO := c.opt.DialTimeout
	if !deadline.IsZero() {
		if rem := deadline.Sub(c.opt.Clock()); rem <= 0 {
			return nil, nil, fmt.Errorf("cpclient: deadline exceeded before dial")
		} else if rem < dialTO {
			dialTO = rem
		}
	}
	conn, err := c.opt.Dial(c.opt.Addr, dialTO)
	if err != nil {
		return nil, nil, fmt.Errorf("cpclient: dial: %w", err)
	}
	br := bufio.NewReader(conn)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		conn.Close()
		return nil, nil, ErrClosed
	}
	c.conn = conn
	c.br = br
	c.stats.Redials++
	return conn, br, nil
}

// attempt performs one exchange, (re)dialling as needed. exMu serialises
// exchanges; the state mutex is held only for pointer swaps so Close can
// sever an in-flight exchange.
func (c *Client) attempt(req controlplane.Request, deadline time.Time) (controlplane.Response, error) {
	c.exMu.Lock()
	defer c.exMu.Unlock()
	conn, br, err := c.ensureConn(deadline)
	if err != nil {
		return controlplane.Response{}, err
	}

	attemptDL := c.opt.Clock().Add(c.opt.AttemptTimeout)
	if !deadline.IsZero() && deadline.Before(attemptDL) {
		attemptDL = deadline
	}
	if err := conn.SetDeadline(attemptDL); err != nil {
		c.drop()
		return controlplane.Response{}, fmt.Errorf("cpclient: set deadline: %w", err)
	}

	frame, err := json.Marshal(req)
	if err != nil {
		return controlplane.Response{}, fmt.Errorf("cpclient: encode: %w", err)
	}
	frame = append(frame, '\n')
	if _, err := conn.Write(frame); err != nil {
		c.drop()
		return controlplane.Response{}, fmt.Errorf("cpclient: send: %w", err)
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		c.drop()
		return controlplane.Response{}, fmt.Errorf("cpclient: recv: %w", err)
	}
	var resp controlplane.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		c.drop()
		return controlplane.Response{}, fmt.Errorf("cpclient: decode: %w", err)
	}
	if !resp.OK && resp.Code == controlplane.CodeBadRequest {
		// The server drops the connection after a bad-request reply; don't
		// reuse a stream the server has abandoned.
		c.drop()
	}
	return resp, nil
}

// drop discards the connection so the next attempt re-dials.
func (c *Client) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// Convenience wrappers mirroring the §III-D API.

// Open shuttles a cart to the endpoint.
func (c *Client) Open(cart int) (controlplane.Response, error) {
	return c.Do(controlplane.Request{Op: controlplane.OpOpen, Cart: cart})
}

// CloseCart returns a cart to the library.
func (c *Client) CloseCart(cart int) (controlplane.Response, error) {
	return c.Do(controlplane.Request{Op: controlplane.OpClose, Cart: cart})
}

// Read reads bytes from a docked cart.
func (c *Client) Read(cart int, bytes float64) (controlplane.Response, error) {
	return c.Do(controlplane.Request{Op: controlplane.OpRead, Cart: cart, Bytes: bytes})
}

// Write writes bytes to a docked cart.
func (c *Client) Write(cart int, bytes float64) (controlplane.Response, error) {
	return c.Do(controlplane.Request{Op: controlplane.OpWrite, Cart: cart, Bytes: bytes})
}

// Status fetches the deployment counters.
func (c *Client) Status() (controlplane.Response, error) {
	return c.Do(controlplane.Request{Op: controlplane.OpStatus})
}

// Metrics fetches the Prometheus exposition.
func (c *Client) Metrics() (controlplane.Response, error) {
	return c.Do(controlplane.Request{Op: controlplane.OpMetrics})
}
