package cpclient

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/dhlsys"
)

func TestPolicyDeterministicSequences(t *testing.T) {
	opt := RetryOptions{Seed: 42}
	a, b := NewPolicy(opt), NewPolicy(opt)
	for i := 1; i <= 8; i++ {
		da, db := a.Backoff(i, 0), b.Backoff(i, 0)
		if da != db {
			t.Fatalf("retry %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
	other := NewPolicy(RetryOptions{Seed: 43})
	same := true
	x, y := NewPolicy(opt), other
	for i := 1; i <= 8; i++ {
		if x.Backoff(i, 0) != y.Backoff(i, 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter — RNG not wired")
	}
}

func TestPolicyBackoffShape(t *testing.T) {
	p := NewPolicy(RetryOptions{
		BaseDelay: 100 * time.Millisecond, Multiplier: 2,
		MaxDelay: 400 * time.Millisecond, Jitter: -1, // disable jitter
	})
	for i, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, // capped
	} {
		if got := p.Backoff(i+1, 0); got != want {
			t.Errorf("retry %d: backoff = %v, want %v", i+1, got, want)
		}
	}
	// The server hint floors the exponential guess.
	if got := p.Backoff(1, 3*time.Second); got != 3*time.Second {
		t.Errorf("hinted backoff = %v, want the 3s hint", got)
	}
	// A hint below the exponential delay does not shrink it.
	if got := p.Backoff(3, time.Millisecond); got != 400*time.Millisecond {
		t.Errorf("small hint shrank backoff to %v", got)
	}
	// Jitter keeps the delay inside the ±J band around the target.
	pj := NewPolicy(RetryOptions{BaseDelay: 100 * time.Millisecond, Jitter: 0.2, Seed: 7})
	for i := 0; i < 100; i++ {
		d := pj.Backoff(1, 0)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered delay %v outside [80ms,120ms]", d)
		}
	}
}

func TestBudgetBreaker(t *testing.T) {
	b := NewBudget(2, 0.5)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("burst of 2 should allow two retries")
	}
	if b.Withdraw() {
		t.Fatal("third retry should be denied")
	}
	b.Success() // 0.5 tokens: still under the 1-token price
	if b.Withdraw() {
		t.Fatal("half a token must not buy a retry")
	}
	b.Success() // 1.0
	if !b.Withdraw() {
		t.Fatal("earned tokens should re-enable retries")
	}
	for i := 0; i < 100; i++ {
		b.Success()
	}
	if got := b.Tokens(); got != 2 {
		t.Errorf("tokens cap at burst: got %v, want 2", got)
	}
}

func TestRetryableClassification(t *testing.T) {
	retryable := []string{
		controlplane.CodeServerBusy, controlplane.CodeCartBusy,
		controlplane.CodeRailBlocked, controlplane.CodeStationFailed,
		controlplane.CodeLaunchTimeout,
	}
	terminal := []string{
		controlplane.CodeBadRequest, controlplane.CodeUnknownCart,
		controlplane.CodeNotAtLibrary, controlplane.CodeNotDocked,
		controlplane.CodeCartFailed, controlplane.CodeDegradedRead,
		controlplane.CodeStorage, controlplane.CodeNoTelemetry,
		controlplane.CodeInternal, controlplane.CodeError,
	}
	for _, code := range retryable {
		if !Retryable(controlplane.Response{OK: false, Code: code}, nil) {
			t.Errorf("code %q should be retryable", code)
		}
	}
	for _, code := range terminal {
		if Retryable(controlplane.Response{OK: false, Code: code}, nil) {
			t.Errorf("code %q should be terminal", code)
		}
	}
	if Retryable(controlplane.Response{OK: true}, nil) {
		t.Error("success is not retryable")
	}
	if !Retryable(controlplane.Response{}, errors.New("conn reset")) {
		t.Error("transport errors are retryable")
	}
}

// scriptServer serves canned responses over an in-memory pipe: each Dial
// yields a fresh connection whose server side answers from the shared
// script (one entry per request; nil severs the connection instead of
// answering).
type scriptServer struct {
	t      *testing.T
	script chan *controlplane.Response
}

func newScriptServer(t *testing.T, script ...*controlplane.Response) *scriptServer {
	ch := make(chan *controlplane.Response, len(script))
	for _, r := range script {
		ch <- r
	}
	return &scriptServer{t: t, script: ch}
}

func (s *scriptServer) dial(string, time.Duration) (net.Conn, error) {
	client, server := net.Pipe()
	go func() {
		defer server.Close()
		br := bufio.NewReader(server)
		enc := json.NewEncoder(server)
		for {
			line, err := br.ReadBytes('\n')
			if err != nil {
				return
			}
			var req controlplane.Request
			if err := json.Unmarshal(line, &req); err != nil {
				s.t.Errorf("script server got malformed frame %q: %v", line, err)
				return
			}
			select {
			case resp := <-s.script:
				if resp == nil {
					return // scripted transport failure: hang up
				}
				if err := enc.Encode(resp); err != nil {
					return
				}
			default:
				s.t.Error("script exhausted; unexpected extra request")
				return
			}
		}
	}()
	return client, nil
}

func newTestClient(srv *scriptServer, tweak func(*Options)) (*Client, *[]time.Duration) {
	var slept []time.Duration
	opt := Options{
		Addr:           "script",
		AttemptTimeout: 2 * time.Second,
		Dial:           srv.dial,
		Sleep:          func(d time.Duration) { slept = append(slept, d) },
		Retry:          RetryOptions{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Seed: 5},
	}
	if tweak != nil {
		tweak(&opt)
	}
	return New(opt), &slept
}

func TestClientRetriesBusyThenSucceeds(t *testing.T) {
	srv := newScriptServer(t,
		&controlplane.Response{OK: false, Code: controlplane.CodeServerBusy, RetryAfterS: 0.5},
		&controlplane.Response{OK: true, SimTime: 1},
	)
	c, slept := newTestClient(srv, nil)
	defer c.Close()
	resp, err := c.Status()
	if err != nil || !resp.OK {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	st := c.Stats()
	if st.Attempts != 2 || st.Retries != 1 || st.BusyResponses != 1 {
		t.Errorf("stats = %+v, want 2 attempts / 1 retry / 1 busy", st)
	}
	// The 0.5s server hint floors the 10ms base backoff (±20% jitter).
	if len(*slept) != 1 || (*slept)[0] < 400*time.Millisecond {
		t.Errorf("slept %v; want one wait honouring the 0.5s hint", *slept)
	}
}

func TestClientRedialsAfterTransportFailure(t *testing.T) {
	srv := newScriptServer(t,
		nil, // first exchange: server hangs up without answering
		&controlplane.Response{OK: true},
	)
	c, _ := newTestClient(srv, nil)
	defer c.Close()
	resp, err := c.Status()
	if err != nil || !resp.OK {
		t.Fatalf("Do = %+v, %v", resp, err)
	}
	st := c.Stats()
	if st.TransportErrors != 1 || st.Redials != 2 {
		t.Errorf("stats = %+v, want 1 transport error and 2 dials", st)
	}
}

func TestClientBudgetExhaustionFailsFast(t *testing.T) {
	busy := &controlplane.Response{OK: false, Code: controlplane.CodeServerBusy}
	srv := newScriptServer(t, busy, busy, busy, busy)
	c, _ := newTestClient(srv, func(o *Options) {
		o.Budget = NewBudget(1, 0.001)
	})
	defer c.Close()
	resp, err := c.Status()
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %+v, %v", resp, err)
	}
	st := c.Stats()
	// First attempt free, one budgeted retry, then the breaker opens —
	// well short of the 4-attempt policy cap.
	if st.Attempts != 2 || st.BudgetDenied != 1 {
		t.Errorf("stats = %+v, want 2 attempts / 1 budget denial", st)
	}
}

func TestClientDeadlineStopsBackoff(t *testing.T) {
	busy := &controlplane.Response{OK: false, Code: controlplane.CodeServerBusy, RetryAfterS: 30}
	srv := newScriptServer(t, busy, busy, busy, busy)
	c, slept := newTestClient(srv, nil)
	defer c.Close()
	start := time.Now()
	resp, err := c.DoDeadline(controlplane.Request{Op: controlplane.OpStatus}, start.Add(time.Second))
	if err == nil {
		t.Fatalf("want deadline error, got %+v", resp)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v into a deadline it could never make", *slept)
	}
	if resp.Code != controlplane.CodeServerBusy {
		t.Errorf("last response should surface the shed: %+v", resp)
	}
	if st := c.Stats(); st.DeadlineDenied != 1 {
		t.Errorf("stats = %+v, want 1 deadline denial", st)
	}
}

func TestClientTerminalErrorNotRetried(t *testing.T) {
	srv := newScriptServer(t,
		&controlplane.Response{OK: false, Code: controlplane.CodeUnknownCart, Error: "no such cart"},
	)
	c, slept := newTestClient(srv, nil)
	defer c.Close()
	resp, err := c.Open(99)
	if err != nil {
		t.Fatalf("terminal server error is not a client error: %v", err)
	}
	if resp.OK || resp.Code != controlplane.CodeUnknownCart {
		t.Fatalf("resp = %+v", resp)
	}
	if st := c.Stats(); st.Attempts != 1 || len(*slept) != 0 {
		t.Errorf("terminal error retried: %+v slept=%v", st, *slept)
	}
}

func TestClientSuccessEarnsBudget(t *testing.T) {
	ok := &controlplane.Response{OK: true}
	srv := newScriptServer(t, ok, ok, ok)
	budget := NewBudget(10, 0.1)
	for i := 0; i < 3; i++ {
		budget.Withdraw()
	}
	c, _ := newTestClient(srv, func(o *Options) { o.Budget = budget })
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Status(); err != nil {
			t.Fatal(err)
		}
	}
	want := 7 + 3*0.1
	if got := budget.Tokens(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("budget after successes = %v, want %v", got, want)
	}
}

// TestClientAgainstRealServer runs the full loop against a live TCP
// control-plane server: API cycle, busy handling under a saturated
// simulation, and re-dial after the server severs the connection.
func TestClientAgainstRealServer(t *testing.T) {
	sys, err := dhlsys.New(dhlsys.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := controlplane.NewServer(sys)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := New(Options{Addr: addr, Retry: RetryOptions{Seed: 11}})
	defer c.Close()
	if resp, err := c.Open(0); err != nil || !resp.OK {
		t.Fatalf("open = %+v, %v", resp, err)
	}
	if resp, err := c.Write(0, 1<<20); err != nil || !resp.OK {
		t.Fatalf("write = %+v, %v", resp, err)
	}
	if resp, err := c.Read(0, 1<<20); err != nil || !resp.OK {
		t.Fatalf("read = %+v, %v", resp, err)
	}
	if resp, err := c.CloseCart(0); err != nil || !resp.OK {
		t.Fatalf("close = %+v, %v", resp, err)
	}
	if resp, err := c.Status(); err != nil || !resp.OK || resp.Stats == nil {
		t.Fatalf("status = %+v, %v", resp, err)
	}
	if resp, err := c.Open(-1); err != nil || resp.OK ||
		resp.Code != controlplane.CodeUnknownCart {
		t.Fatalf("bad open = %+v, %v", resp, err)
	}
}
