package sim

// Index-based 4-ary heap over the slot arena. The heap stores arena
// indices; ordering is (slot.time, slot.seq), so ties in simulated time
// break in scheduling order — the kernel's determinism contract. A 4-ary
// layout halves the tree depth of a binary heap and keeps the four
// children of a node on one cache line of int32s, which is where an
// event kernel spends its time once events no longer allocate.
//
// Each queued slot records its heap position (slot.pos), so Cancel is
// O(log₄ n) by sift from the vacated position rather than a linear scan.

const heapArity = 4

// heapLess orders two arena slots: earlier time first, scheduling order
// breaking ties.
//
//dhllint:hotpath
func (e *Engine) heapLess(a, b int32) bool {
	sa, sb := &e.arena[a], &e.arena[b]
	if sa.time < sb.time {
		return true
	}
	if sb.time < sa.time {
		return false
	}
	return sa.seq < sb.seq
}

// heapPush enqueues arena slot i.
//
//dhllint:hotpath
func (e *Engine) heapPush(i int32) {
	e.arena[i].pos = int32(len(e.heap))
	e.heap = append(e.heap, i)
	e.siftUp(len(e.heap) - 1)
}

// heapPop dequeues and returns the root (earliest) slot index. The slot's
// pos is left stale; callers free or re-push it immediately.
//
//dhllint:hotpath
func (e *Engine) heapPop() int32 {
	root := e.heap[0]
	last := len(e.heap) - 1
	if last > 0 {
		e.heap[0] = e.heap[last]
		e.arena[e.heap[0]].pos = 0
	}
	e.heap = e.heap[:last]
	if last > 1 {
		e.siftDown(0)
	}
	return root
}

// heapRemove deletes the entry at heap position pos (Cancel's path).
//
//dhllint:hotpath
func (e *Engine) heapRemove(pos int32) {
	last := int32(len(e.heap) - 1)
	if pos != last {
		e.heap[pos] = e.heap[last]
		e.arena[e.heap[pos]].pos = pos
	}
	e.heap = e.heap[:last]
	if pos < last {
		if !e.siftDown(int(pos)) {
			e.siftUp(int(pos))
		}
	}
}

// siftUp restores the heap invariant upward from position i.
//
//dhllint:hotpath
func (e *Engine) siftUp(i int) {
	item := e.heap[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.heapLess(item, e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		e.arena[e.heap[i]].pos = int32(i)
		i = parent
	}
	e.heap[i] = item
	e.arena[item].pos = int32(i)
}

// siftDown restores the heap invariant downward from position i,
// reporting whether the item moved.
//
//dhllint:hotpath
func (e *Engine) siftDown(i int) bool {
	item := e.heap[i]
	n := len(e.heap)
	start := i
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.heapLess(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		if !e.heapLess(e.heap[best], item) {
			break
		}
		e.heap[i] = e.heap[best]
		e.arena[e.heap[i]].pos = int32(i)
		i = best
	}
	e.heap[i] = item
	e.arena[item].pos = int32(i)
	return i > start
}
