// Package sim is a minimal deterministic discrete-event simulation kernel
// shared by the DHL system simulation (internal/dhlsys) and the astra-lite
// training simulator (internal/astra).
//
// Events are executed in timestamp order; ties break in scheduling order, so
// runs are fully deterministic. Simulated time is units.Seconds and never
// reads the wall clock.
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"repro/internal/units"
)

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	Time units.Seconds
	Name string

	fn        func()
	seq       uint64
	index     int // heap index, -1 when not queued
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time < h[j].Time {
		return true
	}
	if h[j].Time < h[i].Time {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// tracerEntry is one registered tracer. The legacy flag marks the single
// slot the deprecated SetTracer shim manages.
type tracerEntry struct {
	fn     func(Event)
	legacy bool
}

// Engine is the simulation clock and event queue.
type Engine struct {
	now       units.Seconds
	queue     eventHeap
	seq       uint64
	processed int
	tracers   []tracerEntry
}

// New returns an engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() units.Seconds { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.processed }

// AddTracer appends a hook called before each event fires. Tracers are
// additive and fire in registration order, so independent consumers —
// fault logging, telemetry, debug prints — can observe the same engine
// without clobbering each other. A nil fn is ignored.
func (e *Engine) AddTracer(fn func(Event)) {
	if fn == nil {
		return
	}
	e.tracers = append(e.tracers, tracerEntry{fn: fn})
}

// SetTracer installs a hook called before each event fires (nil disables).
//
// Deprecated: SetTracer manages a single legacy slot — calling it again
// replaces only the tracer it installed previously, at that tracer's
// position in the chain; tracers registered with AddTracer are never
// affected. New code should use AddTracer.
func (e *Engine) SetTracer(fn func(Event)) {
	for i := range e.tracers {
		if !e.tracers[i].legacy {
			continue
		}
		if fn == nil {
			e.tracers = append(e.tracers[:i], e.tracers[i+1:]...)
		} else {
			e.tracers[i].fn = fn
		}
		return
	}
	if fn != nil {
		e.tracers = append(e.tracers, tracerEntry{fn: fn, legacy: true})
	}
}

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// At schedules fn at absolute time t and returns a cancellable handle.
func (e *Engine) At(t units.Seconds, name string, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: t=%v now=%v (%s)", ErrPastEvent, t, e.now, name)
	}
	if fn == nil {
		return nil, errors.New("sim: nil event callback")
	}
	ev := &Event{Time: t, Name: name, fn: fn, seq: e.seq, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After schedules fn after delay d.
func (e *Engine) After(d units.Seconds, name string, fn func()) (*Event, error) {
	if d < 0 {
		return nil, fmt.Errorf("%w: negative delay %v (%s)", ErrPastEvent, d, name)
	}
	return e.At(e.now+d, name, fn)
}

// MustAfter is After for delays known to be valid; it panics on error.
func (e *Engine) MustAfter(d units.Seconds, name string, fn func()) *Event {
	ev, err := e.After(d, name, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op returning false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.cancelled || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.cancelled = true
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.Time
	for i := range e.tracers {
		e.tracers[i].fn(*ev)
	}
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue drains, returning the count executed.
// maxEvents bounds runaway simulations; ≤0 means no bound.
func (e *Engine) Run(maxEvents int) (int, error) {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			if len(e.queue) > 0 {
				return n, fmt.Errorf("sim: event budget %d exhausted with %d pending", maxEvents, len(e.queue))
			}
			break
		}
	}
	return n, nil
}

// RunUntil executes events with Time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t units.Seconds) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].Time <= t {
		e.Step()
		n++
	}
	if t > e.now {
		e.now = t
	}
	return n
}
