// Package sim is a minimal deterministic discrete-event simulation kernel
// shared by the DHL system simulation (internal/dhlsys) and the astra-lite
// training simulator (internal/astra).
//
// Events are executed in timestamp order; ties break in scheduling order, so
// runs are fully deterministic. Simulated time is units.Seconds and never
// reads the wall clock.
//
// The kernel is allocation-flat: events live in a slot arena owned by the
// engine, ordered by an index-based 4-ary heap, with freed slots recycled
// through a free list. Steady-state schedule/fire cycles therefore allocate
// nothing — the arena grows only when the peak queue depth does. Callers
// hold generation-counted Handles rather than pointers, so Cancel and
// reschedule stay safe after a slot is reused (see DESIGN.md §10).
package sim

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Handle is a cancellable reference to a scheduled event. The zero Handle
// is inert: it refers to no event and Cancel on it returns false. A Handle
// goes stale the moment its event fires or is cancelled — the slot's
// generation counter advances, so a stale Handle can never touch whatever
// event is recycled into the same slot.
type Handle struct {
	idx int32  // arena index + 1; 0 marks the zero Handle
	gen uint32 // slot generation the handle was minted against
}

// Event is the immutable view of a firing event handed to tracers.
type Event struct {
	Time units.Seconds
	Name string
}

// slot is one arena entry: either a queued event (pos ≥ 0) or a free-list
// node (pos < 0, nextFree chaining to the next free slot).
type slot struct {
	time     units.Seconds
	name     string
	fn       func()
	seq      uint64 // scheduling order, the deterministic tie-break
	gen      uint32 // bumped on every free; invalidates outstanding Handles
	pos      int32  // heap position, -1 when not queued
	nextFree int32  // next free slot, -1 at the list tail
}

// tracerEntry is one registered tracer. The legacy flag marks the single
// slot the deprecated SetTracer shim manages.
type tracerEntry struct {
	fn     func(Event)
	legacy bool
}

// Engine is the simulation clock and event queue.
type Engine struct {
	now units.Seconds
	// arena owns every event slot; heap orders the queued ones by index.
	arena     []slot
	heap      []int32
	freeHead  int32 // head of the free-slot list, -1 when empty
	seq       uint64
	processed int
	tracers   []tracerEntry
}

// New returns an engine at time 0.
func New() *Engine { return &Engine{freeHead: -1} }

// Now returns the current simulated time.
func (e *Engine) Now() units.Seconds { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int { return e.processed }

// AddTracer appends a hook called before each event fires. Tracers are
// additive and fire in registration order, so independent consumers —
// fault logging, telemetry, debug prints — can observe the same engine
// without clobbering each other. A nil fn is ignored.
func (e *Engine) AddTracer(fn func(Event)) {
	if fn == nil {
		return
	}
	e.tracers = append(e.tracers, tracerEntry{fn: fn})
}

// SetTracer installs a hook called before each event fires (nil disables).
//
// Deprecated: SetTracer manages a single legacy slot — calling it again
// replaces only the tracer it installed previously, at that tracer's
// position in the chain; tracers registered with AddTracer are never
// affected. New code should use AddTracer.
func (e *Engine) SetTracer(fn func(Event)) {
	for i := range e.tracers {
		if !e.tracers[i].legacy {
			continue
		}
		if fn == nil {
			n := len(e.tracers) - 1
			copy(e.tracers[i:], e.tracers[i+1:])
			// Zero the vacated tail slot so the backing array does not pin
			// the dropped tracer's closure (and whatever it captured).
			e.tracers[n] = tracerEntry{}
			e.tracers = e.tracers[:n]
		} else {
			e.tracers[i].fn = fn
		}
		return
	}
	if fn != nil {
		e.tracers = append(e.tracers, tracerEntry{fn: fn, legacy: true})
	}
}

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("sim: cannot schedule event in the past")

// allocSlot returns a free arena index, recycling the free list before
// growing the arena.
//
//dhllint:hotpath
func (e *Engine) allocSlot() int32 {
	if i := e.freeHead; i >= 0 {
		e.freeHead = e.arena[i].nextFree
		return i
	}
	e.arena = append(e.arena, slot{pos: -1, nextFree: -1})
	return int32(len(e.arena) - 1)
}

// freeSlot returns a dequeued slot to the free list. The generation bump
// is the handle-safety invariant: every Handle minted for the old tenancy
// now mismatches and can never cancel the slot's next tenant.
//
//dhllint:hotpath
func (e *Engine) freeSlot(i int32) {
	s := &e.arena[i]
	s.fn = nil // drop the closure so the arena does not pin captured state
	s.name = ""
	s.gen++
	s.pos = -1
	s.nextFree = e.freeHead
	e.freeHead = i
}

// At schedules fn at absolute time t and returns a cancellable handle.
//
//dhllint:hotpath
func (e *Engine) At(t units.Seconds, name string, fn func()) (Handle, error) {
	if t < e.now {
		//dhllint:allow allocflow -- scheduling-in-the-past is a caller bug, never the steady state
		return Handle{}, fmt.Errorf("%w: t=%v now=%v (%s)", ErrPastEvent, t, e.now, name)
	}
	if fn == nil {
		//dhllint:allow allocflow -- nil-callback rejection is a caller bug, never the steady state
		return Handle{}, errors.New("sim: nil event callback")
	}
	i := e.allocSlot()
	s := &e.arena[i]
	s.time, s.name, s.fn, s.seq = t, name, fn, e.seq
	e.seq++
	e.heapPush(i)
	return Handle{idx: i + 1, gen: s.gen}, nil
}

// After schedules fn after delay d.
//
//dhllint:hotpath
func (e *Engine) After(d units.Seconds, name string, fn func()) (Handle, error) {
	if d < 0 {
		//dhllint:allow allocflow -- negative-delay rejection is a caller bug, never the steady state
		return Handle{}, fmt.Errorf("%w: negative delay %v (%s)", ErrPastEvent, d, name)
	}
	return e.At(e.now+d, name, fn)
}

// MustAfter is After for delays known to be valid; it panics on error.
//
//dhllint:hotpath
func (e *Engine) MustAfter(d units.Seconds, name string, fn func()) Handle {
	h, err := e.After(d, name, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// lookup resolves a handle to its arena index if it still refers to a
// queued event; ok is false for the zero Handle, fired or cancelled
// events, and recycled slots.
//
//dhllint:hotpath
func (e *Engine) lookup(h Handle) (int32, bool) {
	i := h.idx - 1
	if i < 0 || int(i) >= len(e.arena) {
		return 0, false
	}
	s := &e.arena[i]
	if s.gen != h.gen || s.pos < 0 {
		return 0, false
	}
	return i, true
}

// EventTime returns the scheduled time of a still-pending event; ok is
// false if the handle is stale (fired, cancelled, or recycled).
//
//dhllint:hotpath
func (e *Engine) EventTime(h Handle) (units.Seconds, bool) {
	i, ok := e.lookup(h)
	if !ok {
		return 0, false
	}
	return e.arena[i].time, true
}

// Cancel removes a pending event. Cancelling a fired, already-cancelled,
// or zero handle is a no-op returning false.
//
//dhllint:hotpath
func (e *Engine) Cancel(h Handle) bool {
	i, ok := e.lookup(h)
	if !ok {
		return false
	}
	e.heapRemove(e.arena[i].pos)
	e.freeSlot(i)
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Step executes the next event, if any, and reports whether one ran.
//
//dhllint:hotpath
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	i := e.heapPop()
	s := &e.arena[i]
	e.now = s.time
	fn := s.fn
	if len(e.tracers) > 0 {
		ev := Event{Time: s.time, Name: s.name}
		for j := range e.tracers {
			e.tracers[j].fn(ev)
		}
	}
	// Free before firing: the callback may schedule into (and recycle) this
	// slot, and a stale Handle to the fired event must already be dead.
	e.freeSlot(i)
	e.processed++
	fn()
	return true
}

// Run executes events until the queue drains, returning the count executed.
// maxEvents bounds runaway simulations; ≤0 means no bound.
func (e *Engine) Run(maxEvents int) (int, error) {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			if len(e.heap) > 0 {
				return n, fmt.Errorf("sim: event budget %d exhausted with %d pending", maxEvents, len(e.heap))
			}
			break
		}
	}
	return n, nil
}

// RunUntil executes events with Time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t units.Seconds) int {
	n := 0
	for len(e.heap) > 0 && e.arena[e.heap[0]].time <= t {
		e.Step()
		n++
	}
	if t > e.now {
		e.now = t
	}
	return n
}
