package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []string
	add := func(at float64, name string) {
		if _, err := e.At(units.Seconds(at), name, func() { order = append(order, name) }); err != nil {
			t.Fatal(err)
		}
	}
	add(5, "c")
	add(1, "a")
	add(5, "d") // same time as c: scheduling order breaks the tie
	add(3, "b")
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 5 {
		t.Errorf("final time = %v", e.Now())
	}
	if e.Processed() != 4 {
		t.Errorf("processed = %d", e.Processed())
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := New()
	var fired []float64
	e.MustAfter(2, "outer", func() {
		fired = append(fired, float64(e.Now()))
		e.MustAfter(3, "inner", func() {
			fired = append(fired, float64(e.Now()))
		})
	})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired = %v, want [2 5]", fired)
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	e := New()
	e.MustAfter(5, "advance", func() {})
	e.Step()
	if _, err := e.At(3, "past", func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.After(-1, "negative", func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.At(10, "nilfn", nil); err == nil {
		t.Error("nil callback must be rejected")
	}
}

func TestCancel(t *testing.T) {
	e := New()
	ran := false
	h := e.MustAfter(1, "x", func() { ran = true })
	if !e.Cancel(h) {
		t.Fatal("first cancel must succeed")
	}
	if e.Cancel(h) {
		t.Fatal("second cancel must fail")
	}
	if _, ok := e.EventTime(h); ok {
		t.Error("cancelled handle still resolves")
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cancelled event fired")
	}
	if e.Cancel(Handle{}) {
		t.Error("cancelling the zero Handle must fail")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	e := New()
	fired := e.MustAfter(0, "fired", func() {})
	e.Step()
	if e.Cancel(fired) {
		t.Error("cancelling a fired event must fail")
	}
	if e.Cancel(fired) {
		t.Error("double-cancelling a fired event must fail")
	}
	if _, ok := e.EventTime(fired); ok {
		t.Error("fired handle still resolves")
	}
}

// TestStaleHandleCannotTouchRecycledSlot is the generation-counter
// invariant: a handle to a cancelled (or fired) event must not cancel
// whatever event is recycled into the same arena slot.
func TestStaleHandleCannotTouchRecycledSlot(t *testing.T) {
	e := New()
	old := e.MustAfter(1, "old", func() {})
	if !e.Cancel(old) {
		t.Fatal("cancel failed")
	}
	ran := false
	// With the slot freed, the next schedule recycles it.
	fresh := e.MustAfter(2, "fresh", func() { ran = true })
	if e.Cancel(old) {
		t.Fatal("stale handle cancelled the recycled slot's new event")
	}
	if _, ok := e.EventTime(old); ok {
		t.Error("stale handle resolves against the recycled slot")
	}
	if tm, ok := e.EventTime(fresh); !ok || tm != 2 {
		t.Fatalf("fresh handle EventTime = %v, %v; want 2, true", tm, ok)
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("recycled event did not fire")
	}
}

// TestRescheduleIntoRecycledSlot exercises the stall-fault pattern:
// read the pending time, cancel, and reschedule later — repeatedly, so
// the replacement keeps landing in the recycled slot.
func TestRescheduleIntoRecycledSlot(t *testing.T) {
	e := New()
	fires := 0
	h := e.MustAfter(10, "transit", func() { fires++ })
	for i := 0; i < 5; i++ {
		tm, ok := e.EventTime(h)
		if !ok {
			t.Fatalf("iteration %d: handle stale", i)
		}
		if !e.Cancel(h) {
			t.Fatalf("iteration %d: cancel failed", i)
		}
		var err error
		h, err = e.At(tm+5, "transit", func() { fires++ })
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("fires = %d, want exactly 1", fires)
	}
	if e.Now() != 35 {
		t.Fatalf("final time = %v, want 35 (10 + 5×5)", e.Now())
	}
}

// TestArenaRecyclesSlots pins the allocation-flatness mechanism: a
// self-rescheduling chain reuses one slot forever, so the arena never
// grows past the peak queue depth.
func TestArenaRecyclesSlots(t *testing.T) {
	e := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10_000 {
			e.MustAfter(1, "tick", tick)
		}
	}
	e.MustAfter(1, "tick", tick)
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 10_000 {
		t.Fatalf("fired %d events", n)
	}
	if got := len(e.arena); got != 1 {
		t.Fatalf("arena holds %d slots after 10k chained events, want 1", got)
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var order []int
	hs := make([]Handle, 10)
	for i := 0; i < 10; i++ {
		i := i
		hs[i] = e.MustAfter(units.Seconds(i), "n", func() { order = append(order, i) })
	}
	e.Cancel(hs[4])
	e.Cancel(hs[7])
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("order = %v", order)
	}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("order not sorted: %v", order)
	}
}

// TestCancelRandomSubsetKeepsOrdering hammers heapRemove from arbitrary
// positions: survivors must still fire in (time, seq) order.
func TestCancelRandomSubsetKeepsOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		const total = 300
		hs := make([]Handle, total)
		fired := make([]int, 0, total)
		for i := 0; i < total; i++ {
			i := i
			at := units.Seconds(rng.Intn(40)) // heavy ties
			hs[i] = e.MustAfter(at, "r", func() { fired = append(fired, i) })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < total/3; i++ {
			j := rng.Intn(total)
			if e.Cancel(hs[j]) {
				cancelled[j] = true
			}
		}
		if _, err := e.Run(0); err != nil {
			return false
		}
		if len(fired)+len(cancelled) != total {
			return false
		}
		last := units.Seconds(math.Inf(-1))
		for _, i := range fired {
			if cancelled[i] {
				return false
			}
			_ = last
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.MustAfter(units.Seconds(i), "tick", func() { count++ })
	}
	n := e.RunUntil(5.5)
	if n != 5 || count != 5 {
		t.Fatalf("ran %d events, count %d; want 5", n, count)
	}
	if e.Now() != 5.5 {
		t.Errorf("clock = %v, want 5.5", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	// RunUntil a past time only advances nothing.
	if n := e.RunUntil(2); n != 0 {
		t.Errorf("RunUntil(past) ran %d events", n)
	}
	if e.Now() != 5.5 {
		t.Errorf("clock moved backwards to %v", e.Now())
	}
}

func TestRunBudget(t *testing.T) {
	e := New()
	// Self-perpetuating event chain.
	var tick func()
	tick = func() { e.MustAfter(1, "tick", tick) }
	e.MustAfter(1, "tick", tick)
	n, err := e.Run(100)
	if err == nil {
		t.Fatal("budget exhaustion must error")
	}
	if n != 100 {
		t.Errorf("ran %d, want 100", n)
	}
}

func TestRunBudgetExactFinish(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.MustAfter(units.Seconds(i), "x", func() {})
	}
	n, err := e.Run(5)
	if err != nil || n != 5 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTracer(t *testing.T) {
	e := New()
	var traced []string
	e.AddTracer(func(ev Event) { traced = append(traced, ev.Name) })
	e.MustAfter(1, "a", func() {})
	e.MustAfter(2, "b", func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(traced) != 2 || traced[0] != "a" || traced[1] != "b" {
		t.Fatalf("traced = %v", traced)
	}
}

func TestMultipleTracersFireInRegistrationOrder(t *testing.T) {
	// The coexistence contract behind fault logging + telemetry: a legacy
	// SetTracer consumer and any number of AddTracer consumers all observe
	// every event, in the order they registered.
	e := New()
	var fired []string
	e.SetTracer(func(ev Event) { fired = append(fired, "legacy:"+ev.Name) })
	e.AddTracer(func(ev Event) { fired = append(fired, "first:"+ev.Name) })
	e.AddTracer(func(ev Event) { fired = append(fired, "second:"+ev.Name) })
	e.AddTracer(nil) // ignored
	e.MustAfter(1, "a", func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"legacy:a", "first:a", "second:a"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("fired[%d] = %q, want %q", i, fired[i], want[i])
		}
	}
}

func TestSetTracerShimReplacesOnlyItsSlot(t *testing.T) {
	e := New()
	var fired []string
	e.SetTracer(func(ev Event) { fired = append(fired, "old") })
	e.AddTracer(func(ev Event) { fired = append(fired, "added") })
	// Replacing the legacy tracer keeps its position and the added tracer.
	e.SetTracer(func(ev Event) { fired = append(fired, "new") })
	e.MustAfter(1, "a", func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "new" || fired[1] != "added" {
		t.Fatalf("fired = %v, want [new added]", fired)
	}
	// nil removes the legacy slot only.
	fired = nil
	e.SetTracer(nil)
	e.MustAfter(1, "b", func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "added" {
		t.Fatalf("after SetTracer(nil): fired = %v, want [added]", fired)
	}
}

// TestSetTracerRemovalClearsTailSlot pins the un-pinning fix: after the
// legacy slot is removed, the backing array's vacated tail entry must be
// zeroed so the dropped closure (and anything it captured) is collectable.
func TestSetTracerRemovalClearsTailSlot(t *testing.T) {
	e := New()
	e.SetTracer(func(Event) {})
	e.AddTracer(func(Event) {})
	e.AddTracer(func(Event) {})
	// Interleave: remove the legacy slot from the front of a longer chain.
	e.SetTracer(nil)
	if n := len(e.tracers); n != 2 {
		t.Fatalf("tracer chain length = %d, want 2", n)
	}
	tail := e.tracers[:cap(e.tracers)]
	for i := len(e.tracers); i < len(tail); i++ {
		if tail[i].fn != nil {
			t.Errorf("vacated tracer slot %d still pins a closure", i)
		}
	}
	// Re-registering after removal still works and fires last.
	var fired []string
	e.SetTracer(func(Event) { fired = append(fired, "legacy2") })
	e.MustAfter(1, "a", func() {})
	if _, err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "legacy2" {
		t.Fatalf("fired = %v, want [legacy2]", fired)
	}
}

func TestMustAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAfter with negative delay must panic")
		}
	}()
	New().MustAfter(-1, "bad", func() {})
}

func TestOrderingProperty(t *testing.T) {
	// Randomly scheduled events always fire in non-decreasing time order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		last := math.Inf(-1)
		ok := true
		for i := 0; i < 200; i++ {
			at := units.Seconds(rng.Float64() * 100)
			e.MustAfter(at, "r", func() {
				now := float64(e.Now())
				if now < last {
					ok = false
				}
				last = now
			})
		}
		if _, err := e.Run(0); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
