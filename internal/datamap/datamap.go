// Package datamap is the software layer of §III-D that "abstracts ... their
// data mapping": a catalogue mapping named datasets onto cart SSD extents,
// with first-fit striped placement, append support (the paper's ML datasets
// are "regularly reused (and mainly appended)"), and epoch-based staleness —
// the §III-E standalone-consistency model where DHL data "operate[s] freely
// ... without requiring costly global synchronisation".
package datamap

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/track"
	"repro/internal/units"
)

// DatasetID names a dataset.
type DatasetID string

// Extent is a contiguous byte range on one SSD of one cart.
type Extent struct {
	Cart   track.CartID
	SSD    int
	Offset units.Bytes
	Length units.Bytes
}

// String renders the extent.
func (e Extent) String() string {
	return fmt.Sprintf("cart%d/ssd%d[%v+%v]", e.Cart, e.SSD, e.Offset, e.Length)
}

// cartSpace tracks per-SSD allocation watermarks on one cart.
type cartSpace struct {
	ssdCap units.Bytes
	used   []units.Bytes // per SSD
}

func (c *cartSpace) free() units.Bytes {
	var f units.Bytes
	for _, u := range c.used {
		f += c.ssdCap - u
	}
	return f
}

// Catalog is the dataset → extent mapping.
type Catalog struct {
	carts    map[track.CartID]*cartSpace
	cartIDs  []track.CartID // stable placement order
	datasets map[DatasetID][]Extent
	epochs   map[DatasetID]uint64
}

// NewCatalog returns an empty catalogue.
func NewCatalog() *Catalog {
	return &Catalog{
		carts:    make(map[track.CartID]*cartSpace),
		datasets: make(map[DatasetID][]Extent),
		epochs:   make(map[DatasetID]uint64),
	}
}

// Errors returned by the catalogue.
var (
	ErrCartExists     = errors.New("datamap: cart already registered")
	ErrUnknownDataset = errors.New("datamap: unknown dataset")
	ErrDatasetExists  = errors.New("datamap: dataset already placed")
	ErrNoSpace        = errors.New("datamap: insufficient free space")
)

// AddCart registers a cart's storage with the catalogue.
func (c *Catalog) AddCart(id track.CartID, numSSDs int, ssdCap units.Bytes) error {
	if numSSDs < 1 || ssdCap <= 0 {
		return errors.New("datamap: cart needs ≥1 SSD of positive capacity")
	}
	if _, ok := c.carts[id]; ok {
		return fmt.Errorf("%w: %d", ErrCartExists, id)
	}
	c.carts[id] = &cartSpace{ssdCap: ssdCap, used: make([]units.Bytes, numSSDs)}
	c.cartIDs = append(c.cartIDs, id)
	sort.Slice(c.cartIDs, func(i, j int) bool { return c.cartIDs[i] < c.cartIDs[j] })
	return nil
}

// FreeBytes is the total unallocated capacity. Summation walks carts in
// ID order: float addition is not associative, so iterating the map
// directly would let Go's randomized map order perturb the low bits from
// run to run.
func (c *Catalog) FreeBytes() units.Bytes {
	var f units.Bytes
	for _, id := range c.cartIDs {
		f += c.carts[id].free()
	}
	return f
}

// allocate carves size bytes as extents, filling carts in ID order and
// striping evenly across each cart's SSDs.
func (c *Catalog) allocate(size units.Bytes) ([]Extent, error) {
	if size <= 0 {
		return nil, errors.New("datamap: size must be positive")
	}
	if c.FreeBytes() < size {
		return nil, fmt.Errorf("%w: need %v, have %v", ErrNoSpace, size, c.FreeBytes())
	}
	var out []Extent
	remaining := size
	for _, id := range c.cartIDs {
		if remaining <= 0 {
			break
		}
		cs := c.carts[id]
		cartFree := cs.free()
		if cartFree <= 0 {
			continue
		}
		take := remaining
		if take > cartFree {
			take = cartFree
		}
		// Stripe the take across SSDs proportionally to their free space.
		left := take
		for ssd := range cs.used {
			if left <= 0 {
				break
			}
			ssdFree := cs.ssdCap - cs.used[ssd]
			if ssdFree <= 0 {
				continue
			}
			chunk := units.Bytes(float64(take) / float64(len(cs.used)))
			if chunk > ssdFree {
				chunk = ssdFree
			}
			if chunk > left {
				chunk = left
			}
			if chunk <= 0 {
				continue
			}
			out = append(out, Extent{Cart: id, SSD: ssd, Offset: cs.used[ssd], Length: chunk})
			cs.used[ssd] += chunk
			left -= chunk
		}
		// Sweep up any rounding residue onto SSDs with space.
		for ssd := range cs.used {
			if left <= 0 {
				break
			}
			ssdFree := cs.ssdCap - cs.used[ssd]
			if ssdFree <= 0 {
				continue
			}
			chunk := left
			if chunk > ssdFree {
				chunk = ssdFree
			}
			out = append(out, Extent{Cart: id, SSD: ssd, Offset: cs.used[ssd], Length: chunk})
			cs.used[ssd] += chunk
			left -= chunk
		}
		remaining -= take - left
	}
	if remaining > 1e-6 {
		return nil, fmt.Errorf("%w: %v unplaced after sweep", ErrNoSpace, remaining)
	}
	return out, nil
}

// Place allocates a new dataset.
func (c *Catalog) Place(ds DatasetID, size units.Bytes) ([]Extent, error) {
	if _, ok := c.datasets[ds]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDatasetExists, ds)
	}
	ext, err := c.allocate(size)
	if err != nil {
		return nil, err
	}
	c.datasets[ds] = ext
	c.epochs[ds] = 1
	return ext, nil
}

// Append grows a dataset and bumps its epoch (readers holding the old epoch
// become stale).
func (c *Catalog) Append(ds DatasetID, size units.Bytes) ([]Extent, error) {
	if _, ok := c.datasets[ds]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, ds)
	}
	ext, err := c.allocate(size)
	if err != nil {
		return nil, err
	}
	c.datasets[ds] = append(c.datasets[ds], ext...)
	c.epochs[ds]++
	return ext, nil
}

// Locate returns a dataset's extents and current epoch.
func (c *Catalog) Locate(ds DatasetID) ([]Extent, uint64, error) {
	ext, ok := c.datasets[ds]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownDataset, ds)
	}
	return append([]Extent(nil), ext...), c.epochs[ds], nil
}

// Size is the dataset's total bytes.
func (c *Catalog) Size(ds DatasetID) (units.Bytes, error) {
	ext, ok := c.datasets[ds]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownDataset, ds)
	}
	var s units.Bytes
	for _, e := range ext {
		s += e.Length
	}
	return s, nil
}

// CartsFor lists the carts that must be shuttled to deliver the dataset, in
// ID order.
func (c *Catalog) CartsFor(ds DatasetID) ([]track.CartID, error) {
	ext, ok := c.datasets[ds]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, ds)
	}
	seen := map[track.CartID]bool{}
	var out []track.CartID
	for _, e := range ext {
		if !seen[e.Cart] {
			seen[e.Cart] = true
			out = append(out, e.Cart)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Stale reports whether a snapshot taken at the given epoch has been
// superseded by appends — the §III-E check a reader makes instead of global
// synchronisation.
func (c *Catalog) Stale(ds DatasetID, epoch uint64) (bool, error) {
	cur, ok := c.epochs[ds]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownDataset, ds)
	}
	return epoch < cur, nil
}

// Delete removes a dataset; its space is NOT reclaimed (extents are
// append-only watermarks, matching flash-friendly bulk layouts). Returns
// the bytes released from the namespace.
func (c *Catalog) Delete(ds DatasetID) (units.Bytes, error) {
	s, err := c.Size(ds)
	if err != nil {
		return 0, err
	}
	delete(c.datasets, ds)
	delete(c.epochs, ds)
	return s, nil
}
