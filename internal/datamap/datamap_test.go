package datamap

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/track"
	"repro/internal/units"
)

func newCatalog(t *testing.T, carts int) *Catalog {
	t.Helper()
	c := NewCatalog()
	for i := 0; i < carts; i++ {
		if err := c.AddCart(track.CartID(i), 32, 8*units.TB); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddCartValidation(t *testing.T) {
	c := NewCatalog()
	if err := c.AddCart(0, 0, units.TB); err == nil {
		t.Error("zero SSDs must be rejected")
	}
	if err := c.AddCart(0, 4, 0); err == nil {
		t.Error("zero capacity must be rejected")
	}
	if err := c.AddCart(0, 32, 8*units.TB); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCart(0, 32, 8*units.TB); !errors.Is(err, ErrCartExists) {
		t.Errorf("err = %v", err)
	}
}

func TestPlaceSingleCart(t *testing.T) {
	c := newCatalog(t, 1)
	ext, err := c.Place("laion", 128*units.TB)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Bytes
	for _, e := range ext {
		if e.Cart != 0 {
			t.Errorf("extent on cart %d", e.Cart)
		}
		sum += e.Length
		if e.String() == "" {
			t.Error("empty extent string")
		}
	}
	if math.Abs(float64(sum-128*units.TB)) > 1 {
		t.Errorf("placed %v, want 128TB", sum)
	}
	// Evenly striped: each of 32 SSDs holds 4 TB.
	perSSD := map[int]units.Bytes{}
	for _, e := range ext {
		perSSD[e.SSD] += e.Length
	}
	if len(perSSD) != 32 {
		t.Errorf("striped over %d SSDs, want 32", len(perSSD))
	}
	for ssd, b := range perSSD {
		if math.Abs(float64(b-4*units.TB)) > 1 {
			t.Errorf("ssd %d holds %v, want 4TB", ssd, b)
		}
	}
	if c.FreeBytes() != 128*units.TB {
		t.Errorf("free = %v, want 128TB", c.FreeBytes())
	}
}

func TestPlaceSpansCarts(t *testing.T) {
	c := newCatalog(t, 3) // 3 × 256 TB
	ext, err := c.Place("meta", 600*units.TB)
	if err != nil {
		t.Fatal(err)
	}
	carts, err := c.CartsFor("meta")
	if err != nil {
		t.Fatal(err)
	}
	if len(carts) != 3 {
		t.Errorf("carts = %v, want 3", carts)
	}
	// Carts fill in ID order: cart 0 and 1 full, cart 2 partial.
	var onCart2 units.Bytes
	for _, e := range ext {
		if e.Cart == 2 {
			onCart2 += e.Length
		}
	}
	if math.Abs(float64(onCart2-88*units.TB)) > 1 {
		t.Errorf("cart 2 holds %v, want 88TB", onCart2)
	}
	sz, err := c.Size("meta")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(sz-600*units.TB)) > 1 {
		t.Errorf("size = %v", sz)
	}
}

func TestPlaceErrors(t *testing.T) {
	c := newCatalog(t, 1)
	if _, err := c.Place("x", 0); err == nil {
		t.Error("zero size must error")
	}
	if _, err := c.Place("big", units.PB); !errors.Is(err, ErrNoSpace) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Place("a", units.TB); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("a", units.TB); !errors.Is(err, ErrDatasetExists) {
		t.Errorf("err = %v", err)
	}
}

func TestAppendBumpsEpoch(t *testing.T) {
	c := newCatalog(t, 2)
	if _, err := c.Place("ds", 100*units.TB); err != nil {
		t.Fatal(err)
	}
	_, epoch0, err := c.Locate("ds")
	if err != nil {
		t.Fatal(err)
	}
	if epoch0 != 1 {
		t.Errorf("initial epoch = %d", epoch0)
	}
	stale, err := c.Stale("ds", epoch0)
	if err != nil || stale {
		t.Errorf("fresh snapshot reported stale: %v %v", stale, err)
	}
	if _, err := c.Append("ds", 50*units.TB); err != nil {
		t.Fatal(err)
	}
	stale, err = c.Stale("ds", epoch0)
	if err != nil || !stale {
		t.Error("snapshot must be stale after append")
	}
	sz, _ := c.Size("ds")
	if math.Abs(float64(sz-150*units.TB)) > 1 {
		t.Errorf("size after append = %v", sz)
	}
	if _, err := c.Append("nope", units.TB); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("err = %v", err)
	}
}

func TestLocateReturnsCopy(t *testing.T) {
	c := newCatalog(t, 1)
	c.Place("ds", units.TB)
	ext, _, err := c.Locate("ds")
	if err != nil {
		t.Fatal(err)
	}
	ext[0].Length = 0 // mutate the copy
	ext2, _, _ := c.Locate("ds")
	if ext2[0].Length == 0 {
		t.Error("Locate must return a defensive copy")
	}
	if _, _, err := c.Locate("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	c := newCatalog(t, 1)
	c.Place("ds", units.TB)
	released, err := c.Delete("ds")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(released-units.TB)) > 1 {
		t.Errorf("released = %v", released)
	}
	if _, _, err := c.Locate("ds"); !errors.Is(err, ErrUnknownDataset) {
		t.Error("deleted dataset must be gone")
	}
	if _, err := c.Delete("ds"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Stale("ds", 1); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.CartsFor("ds"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("err = %v", err)
	}
	if _, err := c.Size("ds"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("err = %v", err)
	}
}

// TestNoOverlapProperty places random datasets and checks extents never
// overlap and sizes are conserved.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCatalog()
		for i := 0; i < 4; i++ {
			if err := c.AddCart(track.CartID(i), 8, 8*units.TB); err != nil {
				return false
			}
		}
		type key struct {
			cart track.CartID
			ssd  int
		}
		watermark := map[key]units.Bytes{}
		for i := 0; i < 20; i++ {
			size := units.Bytes(1+rng.Intn(20)) * units.TB
			ext, err := c.Place(DatasetID(rune('a'+i)), size)
			if err != nil {
				// Only acceptable failure is running out of space.
				return errors.Is(err, ErrNoSpace)
			}
			var sum units.Bytes
			for _, e := range ext {
				k := key{e.Cart, e.SSD}
				if e.Offset < watermark[k] {
					return false // overlap with previous allocation
				}
				watermark[k] = e.Offset + e.Length
				if watermark[k] > 8*units.TB+1 {
					return false // beyond device capacity
				}
				sum += e.Length
			}
			if math.Abs(float64(sum-size)) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCartsForOrder(t *testing.T) {
	c := newCatalog(t, 3)
	c.Place("ds", 700*units.TB)
	carts, err := c.CartsFor("ds")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(carts); i++ {
		if carts[i] <= carts[i-1] {
			t.Errorf("carts not sorted: %v", carts)
		}
	}
}
