// Package astra is "astra-lite": a distributed-ML training-iteration
// simulator standing in for the paper's ASTRA-sim study (§IV-E, §V-C). It
// models one DLRM gradient-descent iteration — ingesting the training
// dataset over a communication substrate, computing, and allreducing
// gradients — and accounts the average power of the substrate, reproducing
// Figure 6 and Table VII.
//
// Two substrates are modelled, exactly as in the paper:
//
//   - Optical networks (scenarios A0–C): parallel 400 Gb/s links. The number
//     of links is treated as continuous ("assuming a continuous, not
//     quantised number of links for simplicity").
//   - DHLs: quantised tracks. As in the paper, the DHL is modelled as a
//     high-bandwidth, high-latency layer whose parameters come from the
//     design-space exploration; deliveries arrive in cart quanta.
//
// Calibration (inverted from Table VII; see DESIGN.md §2): the DHL transport
// assumes the §VI dual-track refinement — regenerative braking (50 %,
// mid-range of the paper's quoted 16–70 %) on the loaded leg and a passive
// eddy-current brake on the return leg — giving a steady-state delivery
// cadence of one-way time + unloaded return transit and an average power of
// 1.762 kW for the default DHL versus the paper's 1.75 kW.
package astra

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/physics"
	"repro/internal/units"
)

// Transport is a communication substrate feeding the training cluster.
type Transport interface {
	// Name of the scheme (e.g. "A0", "DHL-200-500-256").
	Name() string
	// DeliverTime is the time to deliver the given volume.
	DeliverTime(b units.Bytes) units.Seconds
	// AveragePower drawn while delivering.
	AveragePower() units.Watts
}

// Optical is n parallel links of one network scenario. Links may be
// fractional (the paper's continuous simplification).
type Optical struct {
	Scenario netmodel.Scenario
	Links    float64
}

// NewOptical validates and builds an optical transport.
func NewOptical(s netmodel.Scenario, links float64) (Optical, error) {
	if links <= 0 {
		return Optical{}, fmt.Errorf("astra: links must be positive, got %v", links)
	}
	return Optical{Scenario: s, Links: links}, nil
}

// OpticalForBudget sizes the link count to a power budget.
func OpticalForBudget(s netmodel.Scenario, budget units.Watts) (Optical, error) {
	per := s.Power().Total()
	if per <= 0 {
		return Optical{}, fmt.Errorf("astra: scenario %v has no per-link power", s)
	}
	return NewOptical(s, float64(budget)/float64(per))
}

// Name implements Transport.
func (o Optical) Name() string { return o.Scenario.String() }

// Bandwidth is the aggregate byte rate.
func (o Optical) Bandwidth() units.BytesPerSecond {
	return units.BytesPerSecond(o.Links * float64(netmodel.LinkBandwidth()))
}

// DeliverTime implements Transport.
func (o Optical) DeliverTime(b units.Bytes) units.Seconds {
	return o.Bandwidth().TransferTime(b)
}

// AveragePower implements Transport.
func (o Optical) AveragePower() units.Watts {
	return units.Watts(o.Links * float64(o.Scenario.Power().Total()))
}

// DefaultRegen is the regenerative-braking efficiency used for the DHL
// transport calibration (§VI: "16%-70%"; we take the middle of the range,
// which also lands the default DHL's average power within 1 % of the
// paper's 1.75 kW budget).
const DefaultRegen = 0.50

// DHL is k parallel DHL tracks in steady-state pipelined operation.
type DHL struct {
	Config core.Config
	Tracks int
	// Regen is the regenerative-braking efficiency on the loaded leg; the
	// unloaded return leg brakes passively (eddy current, §VI).
	Regen float64

	launch core.LaunchMetrics
}

// NewDHL validates and builds a DHL transport.
func NewDHL(cfg core.Config, tracks int, regen float64) (DHL, error) {
	if tracks < 1 {
		return DHL{}, errors.New("astra: need at least one DHL track")
	}
	if regen < 0 || regen > 1 {
		return DHL{}, fmt.Errorf("astra: regen must be in [0,1], got %v", regen)
	}
	l, err := core.Launch(cfg)
	if err != nil {
		return DHL{}, err
	}
	return DHL{Config: cfg, Tracks: tracks, Regen: regen, launch: l}, nil
}

// DefaultDHL is the paper's simulated configuration: one default track,
// 50 % regeneration.
func DefaultDHL() DHL {
	d, err := NewDHL(core.DefaultConfig(), 1, DefaultRegen)
	if err != nil {
		panic(err)
	}
	return d
}

// DHLForBudget fits as many tracks as the power budget allows (≥0; callers
// decide how to treat an unaffordable budget).
func DHLForBudget(cfg core.Config, budget units.Watts, regen float64) (DHL, error) {
	one, err := NewDHL(cfg, 1, regen)
	if err != nil {
		return DHL{}, err
	}
	n := int(float64(budget) / float64(one.AveragePower()))
	if n < 1 {
		return DHL{}, fmt.Errorf("astra: budget %v below one track's %v",
			budget, one.AveragePower())
	}
	one.Tracks = n
	return one, nil
}

// Name implements Transport, using the paper's DHL-X-Y-Z notation.
func (d DHL) Name() string { return d.Config.String() }

// CycleTime is the steady-state delivery period of one track: a loaded
// one-way trip (undock + transit + dock) plus the unloaded return transit.
func (d DHL) CycleTime() units.Seconds {
	p, err := physics.NewProfile(d.Config.Length, d.Config.MaxSpeed, d.Config.Acceleration)
	if err != nil {
		// NewDHL validated the config; unreachable.
		panic(err)
	}
	return d.launch.Time + p.TransitTime(d.Config.TimeModel)
}

// CycleEnergy is the electrical energy per delivery cycle: the loaded leg
// with regenerative braking plus the return-leg acceleration (passive eddy
// braking is free).
func (d DHL) CycleEnergy() units.Joules {
	lim := d.Config.LIM
	lim.RegenEfficiency = d.Regen
	m, v := d.Config.Cart.TotalMass, d.Config.MaxSpeed
	loaded := lim.AccelerationEnergy(m, v) + lim.BrakingEnergy(m, v)
	returnLeg := lim.AccelerationEnergy(m, v)
	return loaded + returnLeg
}

// Bandwidth is the aggregate steady-state delivery rate.
func (d DHL) Bandwidth() units.BytesPerSecond {
	perTrack := float64(d.Config.Cart.Capacity()) / float64(d.CycleTime())
	return units.BytesPerSecond(perTrack * float64(d.Tracks))
}

// DeliverTime implements Transport: deliveries are quantised to whole carts,
// spread round-robin over the tracks, with the pipeline's fill latency (the
// first cart's one-way time) included.
func (d DHL) DeliverTime(b units.Bytes) units.Seconds {
	if b <= 0 {
		return 0
	}
	cap := float64(d.Config.Cart.Capacity())
	carts := int(math.Ceil(float64(b) / cap))
	perTrack := int(math.Ceil(float64(carts) / float64(d.Tracks)))
	// First delivery lands after one one-way trip; subsequent deliveries
	// every cycle.
	return d.launch.Time + units.Seconds(float64(perTrack-1)*float64(d.CycleTime()))
}

// AveragePower implements Transport.
func (d DHL) AveragePower() units.Watts {
	per := units.Power(d.CycleEnergy(), d.CycleTime())
	return units.Watts(float64(per) * float64(d.Tracks))
}
