package astra

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Collective communication models for the gradient-synchronisation phase of
// a training iteration. ASTRA-sim models these in detail; astra-lite uses
// the standard bandwidth-optimal cost formulas, which is all the paper's
// iteration-time observable needs.

// Cluster describes the training cluster's internal interconnect (the
// intra-rack fabric of the ML supercomputer at the DHL endpoint, §III-C).
type Cluster struct {
	// Nodes participating in data-parallel training.
	Nodes int
	// LinkBandwidth is the per-node interconnect bandwidth.
	LinkBandwidth units.BytesPerSecond
}

// DefaultCluster is a 16-node NVLink-class cluster (900 GB/s per node),
// matching the DGX-class supercomputers the paper cites (§II-D.3).
func DefaultCluster() Cluster {
	return Cluster{Nodes: 16, LinkBandwidth: 900 * units.GBps}
}

// Validate checks the cluster is usable.
func (c Cluster) Validate() error {
	if c.Nodes < 1 {
		return errors.New("astra: cluster needs ≥1 node")
	}
	if c.LinkBandwidth <= 0 {
		return fmt.Errorf("astra: node link bandwidth must be positive, got %v", c.LinkBandwidth)
	}
	return nil
}

// AllReduce is the ring-allreduce completion time for payload b:
// 2(N−1)/N × b / link. Single-node clusters need no communication.
func (c Cluster) AllReduce(b units.Bytes) units.Seconds {
	if err := c.Validate(); err != nil || b <= 0 {
		return 0
	}
	if c.Nodes == 1 {
		return 0
	}
	n := float64(c.Nodes)
	return units.Seconds(2 * (n - 1) / n * float64(b) / float64(c.LinkBandwidth))
}

// AllGather is the ring all-gather completion time for per-node shard b:
// (N−1) × b / link.
func (c Cluster) AllGather(b units.Bytes) units.Seconds {
	if err := c.Validate(); err != nil || b <= 0 {
		return 0
	}
	if c.Nodes == 1 {
		return 0
	}
	return units.Seconds(float64(c.Nodes-1) * float64(b) / float64(c.LinkBandwidth))
}

// ReduceScatter is the ring reduce-scatter completion time for payload b:
// (N−1)/N × b / link.
func (c Cluster) ReduceScatter(b units.Bytes) units.Seconds {
	if err := c.Validate(); err != nil || b <= 0 {
		return 0
	}
	if c.Nodes == 1 {
		return 0
	}
	n := float64(c.Nodes)
	return units.Seconds((n - 1) / n * float64(b) / float64(c.LinkBandwidth))
}
