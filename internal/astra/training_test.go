package astra

import (
	"testing"

	"repro/internal/netmodel"
)

func TestTrainingRunValidation(t *testing.T) {
	run := TrainingRun{Workload: DefaultDLRM(), Iterations: 0}
	if _, err := run.Evaluate(DefaultDHL()); err == nil {
		t.Error("zero iterations must error")
	}
	run = TrainingRun{Workload: DLRM{}, Iterations: 1}
	if _, err := run.Evaluate(DefaultDHL()); err == nil {
		t.Error("invalid workload must error")
	}
}

func TestTrainingRunDHL(t *testing.T) {
	run := TrainingRun{Workload: DefaultDLRM(), Iterations: 10}
	rc, err := run.Evaluate(DefaultDHL())
	if err != nil {
		t.Fatal(err)
	}
	if rc.Transport != "DHL-200-500-256" {
		t.Errorf("transport = %q", rc.Transport)
	}
	// 10 iterations of ~1374 s.
	approx(t, "duration", float64(rc.Duration), 10*1374, 0.01)
	if rc.CommEnergy <= 0 || rc.ComputeEnergy <= 0 {
		t.Fatal("energies must be positive")
	}
	// On a DHL, ingest energy is a rounding error next to compute: the
	// paper's pitch in §II-D.3.
	if rc.IngestDominates {
		t.Error("DHL ingest must not dominate compute energy")
	}
	if rc.TotalDollars() != rc.CommDollars+rc.ComputeDollars {
		t.Error("dollar sum mismatch")
	}
	if rc.TotalEnergy() != rc.CommEnergy+rc.ComputeEnergy {
		t.Error("energy sum mismatch")
	}
}

func TestIngestDominatesOnSlowNetwork(t *testing.T) {
	// Meta's observation ([106], §II-D.3): on network-fed training, data
	// ingestion energy can exceed computation. Route C at the DHL's budget
	// stretches iterations ~117× — its comm energy beats the cluster's
	// during-ingest share in the comparison below.
	run := TrainingRun{Workload: DefaultDLRM(), Iterations: 5}
	rows, err := run.CompareRuns(DefaultDHL())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Transport != "DHL-200-500-256" {
		t.Errorf("first row = %q", rows[0].Transport)
	}
	// All network runs are slower and burn more communication energy.
	for _, r := range rows[1:] {
		if r.Duration <= rows[0].Duration {
			t.Errorf("%s duration %v should exceed DHL %v", r.Transport, r.Duration, rows[0].Duration)
		}
		if r.CommEnergy <= rows[0].CommEnergy {
			t.Errorf("%s comm energy %v should exceed DHL %v", r.Transport, r.CommEnergy, rows[0].CommEnergy)
		}
	}
	// The paper's "several million dollars" scale: a long DLRM campaign
	// (thousands of iterations) on network substrates reaches millions.
	big := TrainingRun{Workload: DefaultDLRM(), Iterations: 2000}
	c, err := big.Evaluate(mustOptical(t, netmodel.ScenarioC, 3.4))
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalDollars() < 1_000_000 {
		t.Errorf("2000-iteration network campaign = %v, want ≥ $1M", c.TotalDollars())
	}
}

func TestOpticalByName(t *testing.T) {
	if _, err := opticalByName("A2", 1750); err != nil {
		t.Fatal(err)
	}
	if _, err := opticalByName("Z9", 1750); err == nil {
		t.Error("unknown scheme must error")
	}
}
