package astra

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/units"
)

// This file implements the paper's two Table VII experiments and the
// Figure 6 sweep.

// SchemeResult is one row of Table VII.
type SchemeResult struct {
	Scheme string
	// Power is the scheme's average communication power.
	Power units.Watts
	// TimePerIter is the iteration time.
	TimePerIter units.Seconds
	// Factor is the paper's last column: slowdown w.r.t. DHL (iso-power) or
	// power increase w.r.t. DHL (iso-time). 1.0 for the DHL row.
	Factor units.Ratio
}

// IsoPower reproduces Table VII(a): every scheme gets the DHL's average
// power budget; networks parallelise links continuously; iteration times and
// slowdowns are reported. Rows are DHL, A0, A1, A2, B, C.
func IsoPower(w DLRM, dhl DHL) ([]SchemeResult, error) {
	budget := dhl.AveragePower()
	dhlIter, err := w.Iteration(dhl)
	if err != nil {
		return nil, err
	}
	rows := []SchemeResult{{
		Scheme:      "DHL",
		Power:       dhl.AveragePower(),
		TimePerIter: dhlIter.Total(),
		Factor:      1,
	}}
	for _, s := range netmodel.Scenarios() {
		opt, err := OpticalForBudget(s, budget)
		if err != nil {
			return nil, err
		}
		it, err := w.Iteration(opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchemeResult{
			Scheme:      s.String(),
			Power:       opt.AveragePower(),
			TimePerIter: it.Total(),
			Factor:      units.Ratio(float64(it.Total()) / float64(dhlIter.Total())),
		})
	}
	return rows, nil
}

// IsoTime reproduces Table VII(b): every network is given exactly enough
// parallel links to match the DHL's iteration time; the resulting powers and
// power increases are reported.
func IsoTime(w DLRM, dhl DHL) ([]SchemeResult, error) {
	dhlIter, err := w.Iteration(dhl)
	if err != nil {
		return nil, err
	}
	target := dhlIter.Total()
	ingestBudget := target - w.NonIngestTime()
	if ingestBudget <= 0 {
		return nil, fmt.Errorf("astra: target time %v below the non-ingest floor %v",
			target, w.NonIngestTime())
	}
	neededBW := float64(w.IngestBytes()) / float64(ingestBudget)
	rows := []SchemeResult{{
		Scheme:      "DHL",
		Power:       dhl.AveragePower(),
		TimePerIter: target,
		Factor:      1,
	}}
	for _, s := range netmodel.Scenarios() {
		links := neededBW / float64(netmodel.LinkBandwidth())
		opt, err := NewOptical(s, links)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchemeResult{
			Scheme:      s.String(),
			Power:       opt.AveragePower(),
			TimePerIter: target,
			Factor:      units.Ratio(float64(opt.AveragePower()) / float64(dhl.AveragePower())),
		})
	}
	return rows, nil
}

// CurvePoint is one (power, time) sample of a Figure 6 series.
type CurvePoint struct {
	Power units.Watts
	Time  units.Seconds
}

// Curve is one Figure 6 series.
type Curve struct {
	Name string
	// Quantised marks DHL curves, whose points are discrete track counts.
	Quantised bool
	Points    []CurvePoint
}

// Figure6Options controls the sweep.
type Figure6Options struct {
	// DHLConfigs are the DHL-X-Y-Z variants to plot.
	DHLConfigs []core.Config
	// MaxPower bounds the sweep's x-axis.
	MaxPower units.Watts
	// NetPoints is the number of samples per continuous network curve.
	NetPoints int
	// Regen for the DHL transports.
	Regen float64
}

// DefaultFigure6Options plots the paper's DHL variants (speed sweep and
// capacity sweep around the default) against all five network scenarios up
// to 250 kW.
func DefaultFigure6Options() Figure6Options {
	base := core.DefaultConfig()
	return Figure6Options{
		DHLConfigs: []core.Config{
			base.With(100, 500, 32),
			base.With(200, 500, 32),
			base.With(300, 500, 32),
			base.With(200, 500, 16),
			base.With(200, 500, 64),
		},
		MaxPower:  250 * units.Kilowatt,
		NetPoints: 40,
		Regen:     DefaultRegen,
	}
}

// Figure6 generates the full figure: time per iteration (log-scale in the
// paper) as a function of the communication power budget, one quantised
// curve per DHL variant and one continuous curve per network scenario.
func Figure6(w DLRM, opt Figure6Options) ([]Curve, error) {
	if opt.MaxPower <= 0 {
		return nil, fmt.Errorf("astra: max power must be positive, got %v", opt.MaxPower)
	}
	if opt.NetPoints < 2 {
		return nil, fmt.Errorf("astra: need ≥2 network points, got %d", opt.NetPoints)
	}
	var curves []Curve
	for _, cfg := range opt.DHLConfigs {
		one, err := NewDHL(cfg, 1, opt.Regen)
		if err != nil {
			return nil, err
		}
		maxTracks := int(float64(opt.MaxPower) / float64(one.AveragePower()))
		c := Curve{Name: cfg.String(), Quantised: true}
		for k := 1; k <= maxTracks; k++ {
			d, err := NewDHL(cfg, k, opt.Regen)
			if err != nil {
				return nil, err
			}
			it, err := w.Iteration(d)
			if err != nil {
				return nil, err
			}
			c.Points = append(c.Points, CurvePoint{Power: d.AveragePower(), Time: it.Total()})
		}
		if len(c.Points) == 0 {
			return nil, fmt.Errorf("astra: budget %v affords no %v track", opt.MaxPower, cfg)
		}
		curves = append(curves, c)
	}
	for _, s := range netmodel.Scenarios() {
		c := Curve{Name: s.String()}
		minP := float64(s.Power().Total()) // at least one link
		// Log-spaced budgets from one link to MaxPower.
		for i := 0; i < opt.NetPoints; i++ {
			frac := float64(i) / float64(opt.NetPoints-1)
			p := minP * math.Pow(float64(opt.MaxPower)/minP, frac)
			optTr, err := OpticalForBudget(s, units.Watts(p))
			if err != nil {
				return nil, err
			}
			it, err := w.Iteration(optTr)
			if err != nil {
				return nil, err
			}
			c.Points = append(c.Points, CurvePoint{Power: units.Watts(p), Time: it.Total()})
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// TimeAtPower interpolates a curve's iteration time at a power budget,
// using the best (largest affordable) point for quantised curves and linear
// interpolation in log-power for continuous ones. Returns false if the
// budget is below the curve's cheapest point.
func (c Curve) TimeAtPower(p units.Watts) (units.Seconds, bool) {
	if len(c.Points) == 0 || p < c.Points[0].Power {
		return 0, false
	}
	if c.Quantised {
		best := c.Points[0]
		for _, pt := range c.Points {
			if pt.Power <= p {
				best = pt
			}
		}
		return best.Time, true
	}
	for i := 1; i < len(c.Points); i++ {
		if p <= c.Points[i].Power {
			a, b := c.Points[i-1], c.Points[i]
			frac := math.Log(float64(p)/float64(a.Power)) / math.Log(float64(b.Power)/float64(a.Power))
			return units.Seconds(float64(a.Time) + frac*(float64(b.Time)-float64(a.Time))), true
		}
	}
	return c.Points[len(c.Points)-1].Time, true
}
