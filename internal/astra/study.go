package astra

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/sweep"
	"repro/internal/units"
)

// This file implements the paper's two Table VII experiments and the
// Figure 6 sweep.

// SchemeResult is one row of Table VII.
type SchemeResult struct {
	Scheme string
	// Power is the scheme's average communication power.
	Power units.Watts
	// TimePerIter is the iteration time.
	TimePerIter units.Seconds
	// Factor is the paper's last column: slowdown w.r.t. DHL (iso-power) or
	// power increase w.r.t. DHL (iso-time). 1.0 for the DHL row.
	Factor units.Ratio
}

// IsoPower reproduces Table VII(a): every scheme gets the DHL's average
// power budget; networks parallelise links continuously; iteration times and
// slowdowns are reported. Rows are DHL, A0, A1, A2, B, C. The five network
// scenarios are evaluated on the parallel sweep engine.
func IsoPower(w DLRM, dhl DHL, opts ...sweep.Option) ([]SchemeResult, error) {
	budget := dhl.AveragePower()
	dhlIter, err := w.Iteration(dhl)
	if err != nil {
		return nil, err
	}
	netRows, err := sweep.Map(context.Background(), netmodel.Scenarios(),
		func(_ context.Context, s netmodel.Scenario) (SchemeResult, error) {
			opt, err := OpticalForBudget(s, budget)
			if err != nil {
				return SchemeResult{}, err
			}
			it, err := w.Iteration(opt)
			if err != nil {
				return SchemeResult{}, err
			}
			return SchemeResult{
				Scheme:      s.String(),
				Power:       opt.AveragePower(),
				TimePerIter: it.Total(),
				Factor:      units.Ratio(float64(it.Total()) / float64(dhlIter.Total())),
			}, nil
		}, opts...)
	if err != nil {
		return nil, err
	}
	rows := []SchemeResult{{
		Scheme:      "DHL",
		Power:       dhl.AveragePower(),
		TimePerIter: dhlIter.Total(),
		Factor:      1,
	}}
	return append(rows, netRows...), nil
}

// IsoTime reproduces Table VII(b): every network is given exactly enough
// parallel links to match the DHL's iteration time; the resulting powers and
// power increases are reported. The five network scenarios are evaluated on
// the parallel sweep engine.
func IsoTime(w DLRM, dhl DHL, opts ...sweep.Option) ([]SchemeResult, error) {
	dhlIter, err := w.Iteration(dhl)
	if err != nil {
		return nil, err
	}
	target := dhlIter.Total()
	ingestBudget := target - w.NonIngestTime()
	if ingestBudget <= 0 {
		return nil, fmt.Errorf("astra: target time %v below the non-ingest floor %v",
			target, w.NonIngestTime())
	}
	neededBW := float64(w.IngestBytes()) / float64(ingestBudget)
	netRows, err := sweep.Map(context.Background(), netmodel.Scenarios(),
		func(_ context.Context, s netmodel.Scenario) (SchemeResult, error) {
			links := neededBW / float64(netmodel.LinkBandwidth())
			opt, err := NewOptical(s, links)
			if err != nil {
				return SchemeResult{}, err
			}
			return SchemeResult{
				Scheme:      s.String(),
				Power:       opt.AveragePower(),
				TimePerIter: target,
				Factor:      units.Ratio(float64(opt.AveragePower()) / float64(dhl.AveragePower())),
			}, nil
		}, opts...)
	if err != nil {
		return nil, err
	}
	rows := []SchemeResult{{
		Scheme:      "DHL",
		Power:       dhl.AveragePower(),
		TimePerIter: target,
		Factor:      1,
	}}
	return append(rows, netRows...), nil
}

// CurvePoint is one (power, time) sample of a Figure 6 series.
type CurvePoint struct {
	Power units.Watts
	Time  units.Seconds
}

// Curve is one Figure 6 series.
type Curve struct {
	Name string
	// Quantised marks DHL curves, whose points are discrete track counts.
	Quantised bool
	Points    []CurvePoint
}

// Figure6Options controls the sweep.
type Figure6Options struct {
	// DHLConfigs are the DHL-X-Y-Z variants to plot.
	DHLConfigs []core.Config
	// MaxPower bounds the sweep's x-axis.
	MaxPower units.Watts
	// NetPoints is the number of samples per continuous network curve.
	NetPoints int
	// Regen for the DHL transports.
	Regen float64
	// Workers bounds the sweep worker pool; 0 selects GOMAXPROCS, 1 runs
	// sequentially. Results are identical at any setting.
	Workers int
}

// DefaultFigure6Options plots the paper's DHL variants (speed sweep and
// capacity sweep around the default) against all five network scenarios up
// to 250 kW.
func DefaultFigure6Options() Figure6Options {
	base := core.DefaultConfig()
	return Figure6Options{
		DHLConfigs: []core.Config{
			base.With(100, 500, 32),
			base.With(200, 500, 32),
			base.With(300, 500, 32),
			base.With(200, 500, 16),
			base.With(200, 500, 64),
		},
		MaxPower:  250 * units.Kilowatt,
		NetPoints: 40,
		Regen:     DefaultRegen,
	}
}

// Figure6 generates the full figure: time per iteration (log-scale in the
// paper) as a function of the communication power budget, one quantised
// curve per DHL variant and one continuous curve per network scenario.
// Curves are evaluated concurrently on the parallel sweep engine — one
// worker per curve — and returned in the same order as the sequential
// implementation: DHL variants first, then the network scenarios.
func Figure6(w DLRM, opt Figure6Options) ([]Curve, error) {
	if opt.MaxPower <= 0 {
		return nil, fmt.Errorf("astra: max power must be positive, got %v", opt.MaxPower)
	}
	if opt.NetPoints < 2 {
		return nil, fmt.Errorf("astra: need ≥2 network points, got %d", opt.NetPoints)
	}
	type job struct {
		cfg      core.Config // DHL curve when scenario is nil
		scenario *netmodel.Scenario
	}
	var jobs []job
	for _, cfg := range opt.DHLConfigs {
		jobs = append(jobs, job{cfg: cfg})
	}
	for _, s := range netmodel.Scenarios() {
		s := s
		jobs = append(jobs, job{scenario: &s})
	}
	return sweep.Map(context.Background(), jobs, func(_ context.Context, j job) (Curve, error) {
		if j.scenario == nil {
			return dhlCurve(w, j.cfg, opt)
		}
		return networkCurve(w, *j.scenario, opt)
	}, sweep.Workers(opt.Workers))
}

// dhlCurve sweeps track counts for one DHL variant. The launch metrics are
// computed once and shared across every track count (NewDHL would
// recompute them per point).
func dhlCurve(w DLRM, cfg core.Config, opt Figure6Options) (Curve, error) {
	one, err := NewDHL(cfg, 1, opt.Regen)
	if err != nil {
		return Curve{}, err
	}
	maxTracks := int(float64(opt.MaxPower) / float64(one.AveragePower()))
	c := Curve{Name: cfg.String(), Quantised: true}
	for k := 1; k <= maxTracks; k++ {
		d := one
		d.Tracks = k
		it, err := w.Iteration(d)
		if err != nil {
			return Curve{}, err
		}
		c.Points = append(c.Points, CurvePoint{Power: d.AveragePower(), Time: it.Total()})
	}
	if len(c.Points) == 0 {
		return Curve{}, fmt.Errorf("astra: budget %v affords no %v track", opt.MaxPower, cfg)
	}
	return c, nil
}

// networkCurve samples one continuous optical-scenario curve.
func networkCurve(w DLRM, s netmodel.Scenario, opt Figure6Options) (Curve, error) {
	c := Curve{Name: s.String()}
	minP := float64(s.Power().Total()) // at least one link
	// Log-spaced budgets from one link to MaxPower.
	for i := 0; i < opt.NetPoints; i++ {
		frac := float64(i) / float64(opt.NetPoints-1)
		p := minP * math.Pow(float64(opt.MaxPower)/minP, frac)
		optTr, err := OpticalForBudget(s, units.Watts(p))
		if err != nil {
			return Curve{}, err
		}
		it, err := w.Iteration(optTr)
		if err != nil {
			return Curve{}, err
		}
		c.Points = append(c.Points, CurvePoint{Power: units.Watts(p), Time: it.Total()})
	}
	return c, nil
}

// TimeAtPower interpolates a curve's iteration time at a power budget,
// using the best (largest affordable) point for quantised curves and linear
// interpolation in log-power for continuous ones. Returns false if the
// budget is below the curve's cheapest point.
func (c Curve) TimeAtPower(p units.Watts) (units.Seconds, bool) {
	if len(c.Points) == 0 || p < c.Points[0].Power {
		return 0, false
	}
	if c.Quantised {
		best := c.Points[0]
		for _, pt := range c.Points {
			if pt.Power <= p {
				best = pt
			}
		}
		return best.Time, true
	}
	for i := 1; i < len(c.Points); i++ {
		if p <= c.Points[i].Power {
			a, b := c.Points[i-1], c.Points[i]
			frac := math.Log(float64(p)/float64(a.Power)) / math.Log(float64(b.Power)/float64(a.Power))
			return units.Seconds(float64(a.Time) + frac*(float64(b.Time)-float64(a.Time))), true
		}
	}
	return c.Points[len(c.Points)-1].Time, true
}
