package astra_test

import (
	"fmt"
	"log"

	"repro/internal/astra"
)

// ExampleDHL shows the calibrated DHL transport of the §V-C study.
func ExampleDHL() {
	dhl := astra.DefaultDHL()
	fmt.Println(dhl.Name())
	fmt.Printf("cycle %.1f s, avg power %.2f kW\n",
		float64(dhl.CycleTime()), dhl.AveragePower().KW())
	// Output:
	// DHL-200-500-256
	// cycle 11.2 s, avg power 1.76 kW
}

// ExampleDLRM_Iteration runs one DLRM training iteration analytically.
func ExampleDLRM_Iteration() {
	w := astra.DefaultDLRM()
	it, err := w.Iteration(astra.DefaultDHL())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compute %.0f s + allreduce %.0f s + ingest dominates\n",
		float64(it.Compute), float64(it.AllReduce))
	fmt.Printf("ingest > 1000 s: %v\n", it.Ingest > 1000)
	// Output:
	// compute 86 s + allreduce 92 s + ingest dominates
	// ingest > 1000 s: true
}
