package astra

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestOpticalTransport(t *testing.T) {
	o, err := NewOptical(netmodel.ScenarioA0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "A0" {
		t.Errorf("name = %q", o.Name())
	}
	approx(t, "bandwidth", float64(o.Bandwidth()), 100e9, 1e-12)
	approx(t, "deliver 1PB", float64(o.DeliverTime(units.PB)), 1e4, 1e-12)
	approx(t, "power", float64(o.AveragePower()), 48, 1e-12)
	if _, err := NewOptical(netmodel.ScenarioA0, 0); err == nil {
		t.Error("zero links must be rejected")
	}
	if _, err := OpticalForBudget(netmodel.ScenarioA0, 240); err != nil {
		t.Fatal(err)
	}
	b, _ := OpticalForBudget(netmodel.ScenarioA0, 240)
	approx(t, "links for 240W", b.Links, 10, 1e-12)
}

func TestDHLTransportValidation(t *testing.T) {
	if _, err := NewDHL(core.DefaultConfig(), 0, 0.7); err == nil {
		t.Error("zero tracks must be rejected")
	}
	if _, err := NewDHL(core.DefaultConfig(), 1, -0.1); err == nil {
		t.Error("negative regen must be rejected")
	}
	if _, err := NewDHL(core.DefaultConfig(), 1, 1.1); err == nil {
		t.Error("regen > 1 must be rejected")
	}
	bad := core.DefaultConfig()
	bad.Cart = nil
	if _, err := NewDHL(bad, 1, 0.7); err == nil {
		t.Error("invalid core config must be rejected")
	}
}

func TestDHLTransportModel(t *testing.T) {
	d := DefaultDHL()
	if d.Name() != "DHL-200-500-256" {
		t.Errorf("name = %q", d.Name())
	}
	// Cycle = one-way (8.6 s) + return transit (2.6 s).
	approx(t, "cycle", float64(d.CycleTime()), 11.2, 1e-9)
	// Cycle energy: loaded leg with 50% regen + unloaded accel.
	approx(t, "cycle energy", float64(d.CycleEnergy()), 12216.5+7517.9, 0.001)
	// Average power lands within 1% of the paper's 1.75 kW budget.
	approx(t, "avg power", d.AveragePower().KW(), 1.75, 0.01)
	// Effective bandwidth ≈ 22.9 TB/s.
	approx(t, "bandwidth", float64(d.Bandwidth())/1e12, 256.0/11.2, 0.001)
}

func TestDHLDeliverTimeQuantised(t *testing.T) {
	d := DefaultDHL()
	// One cart: just the one-way time.
	approx(t, "1 cart", float64(d.DeliverTime(100*units.TB)), 8.6, 1e-9)
	// Exactly 2 carts: one-way + one cycle.
	approx(t, "2 carts", float64(d.DeliverTime(512*units.TB)), 8.6+11.2, 1e-9)
	if d.DeliverTime(0) != 0 {
		t.Error("zero bytes must take zero time")
	}
	// Two tracks halve the steady-state cadence.
	d2, err := NewDHL(core.DefaultConfig(), 2, DefaultRegen)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "2 tracks 4 carts", float64(d2.DeliverTime(4*256*units.TB)), 8.6+11.2, 1e-9)
	approx(t, "2 tracks power", float64(d2.AveragePower()), 2*float64(d.AveragePower()), 1e-12)
}

func TestDeliverTimeLinearity(t *testing.T) {
	// The paper's justification for the 1e7 downscale: iteration time is
	// linear in dataset size. At many-cart volumes the quantised DHL
	// delivery is linear within one cycle.
	d := DefaultDHL()
	base := d.DeliverTime(29 * units.PB)
	double := d.DeliverTime(58 * units.PB)
	if math.Abs(float64(double)-2*float64(base)) > float64(d.CycleTime())+1 {
		t.Errorf("nonlinear: T(2D)=%v, 2T(D)=%v", double, 2*base)
	}
	f := func(raw uint8) bool {
		k := float64(raw%20) + 5
		tk := float64(d.DeliverTime(units.Bytes(k) * units.PB))
		t1 := float64(d.DeliverTime(units.PB))
		// Within quantisation error (one cycle per cart count ceil).
		return math.Abs(tk-k*t1) <= k*float64(d.CycleTime())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDHLForBudget(t *testing.T) {
	d, err := DHLForBudget(core.DefaultConfig(), 5*units.Kilowatt, DefaultRegen)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tracks != 2 {
		t.Errorf("tracks at 5 kW = %d, want 2 (1.762 kW each)", d.Tracks)
	}
	d6, err := DHLForBudget(core.DefaultConfig(), 6*units.Kilowatt, DefaultRegen)
	if err != nil {
		t.Fatal(err)
	}
	if d6.Tracks != 3 {
		t.Errorf("tracks at 6 kW = %d, want 3", d6.Tracks)
	}
	if _, err := DHLForBudget(core.DefaultConfig(), 500, DefaultRegen); err == nil {
		t.Error("budget below one track must error")
	}
}

func TestClusterCollectives(t *testing.T) {
	c := DefaultCluster()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ring allreduce of the 44 TB DLRM gradient: 2×15/16×44e12/900e9.
	approx(t, "allreduce", float64(c.AllReduce(44*units.TB)), 91.666, 0.001)
	approx(t, "allgather", float64(c.AllGather(units.TB)), 15*1e12/900e9, 1e-9)
	approx(t, "reducescatter", float64(c.ReduceScatter(units.TB)), 15.0/16*1e12/900e9, 1e-9)
	// Single node needs no communication.
	solo := Cluster{Nodes: 1, LinkBandwidth: units.GBps}
	if solo.AllReduce(units.TB) != 0 || solo.AllGather(units.TB) != 0 || solo.ReduceScatter(units.TB) != 0 {
		t.Error("single-node collectives must be free")
	}
	// Degenerate inputs.
	if c.AllReduce(0) != 0 || c.AllReduce(-5) != 0 {
		t.Error("non-positive payloads must be free")
	}
	bad := Cluster{}
	if bad.Validate() == nil {
		t.Error("zero cluster must be invalid")
	}
	if (Cluster{Nodes: 2}).Validate() == nil {
		t.Error("zero bandwidth must be invalid")
	}
}

func TestDLRMValidation(t *testing.T) {
	w := DefaultDLRM()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	w.Dataset = 0
	if w.Validate() == nil {
		t.Error("zero dataset must be invalid")
	}
	w = DefaultDLRM()
	w.IngestScale = 0
	if w.Validate() == nil {
		t.Error("zero ingest scale must be invalid")
	}
	w = DefaultDLRM()
	w.IngestScale = 1.5
	if w.Validate() == nil {
		t.Error("ingest scale > 1 must be invalid")
	}
	w = DefaultDLRM()
	w.RawCompute = -1
	if w.Validate() == nil {
		t.Error("negative compute must be invalid")
	}
}

func TestDLRMNonIngestFloor(t *testing.T) {
	// Calibrated to the paper's ≈178 s compute+allreduce floor.
	approx(t, "non-ingest floor", float64(DefaultDLRM().NonIngestTime()), 178, 0.005)
}

func TestReproTableVIIIsoPower(t *testing.T) {
	// Table VII(a): fixed power ≈ one DHL's average; slowdowns 5.7–118×.
	rows, err := IsoPower(DefaultDLRM(), DefaultDHL())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []struct {
		scheme   string
		timeIter float64
		factor   float64
	}{
		{"DHL", 1350, 1},
		{"A0", 7680, 5.7},
		{"A1", 12500, 9.3},
		{"A2", 26900, 19.9},
		{"B", 93300, 69.1},
		{"C", 159000, 118},
	}
	for i, w := range want {
		if rows[i].Scheme != w.scheme {
			t.Fatalf("row %d scheme = %q, want %q", i, rows[i].Scheme, w.scheme)
		}
		approx(t, w.scheme+" time/iter", float64(rows[i].TimePerIter), w.timeIter, 0.06)
		approx(t, w.scheme+" slowdown", float64(rows[i].Factor), w.factor, 0.06)
	}
	// DHL power near the paper's 1.75 kW budget.
	approx(t, "DHL power", rows[0].Power.KW(), 1.75, 0.06)
}

func TestReproTableVIIIsoTime(t *testing.T) {
	// Table VII(b): fixed iteration time; power increases 6.4–135×.
	rows, err := IsoTime(DefaultDLRM(), DefaultDHL())
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		scheme  string
		powerKW float64
		factor  float64
	}{
		{"DHL", 1.75, 1},
		{"A0", 11.2, 6.4},
		{"A1", 18.3, 10.5},
		{"A2", 39.9, 22.8},
		{"B", 139, 79.4},
		{"C", 237, 135},
	}
	for i, w := range want {
		if rows[i].Scheme != w.scheme {
			t.Fatalf("row %d scheme = %q, want %q", i, rows[i].Scheme, w.scheme)
		}
		approx(t, w.scheme+" power", rows[i].Power.KW(), w.powerKW, 0.06)
		approx(t, w.scheme+" factor", float64(rows[i].Factor), w.factor, 0.06)
		// Iso-time: all rows share the DHL's iteration time.
		if rows[i].TimePerIter != rows[0].TimePerIter {
			t.Errorf("%s iteration time differs", w.scheme)
		}
	}
}

func TestIsoTimeInfeasibleTarget(t *testing.T) {
	// A workload whose floor exceeds any ingest budget must error.
	w := DefaultDLRM()
	w.RawCompute = 1e9
	d, err := NewDHL(core.DefaultConfig(), 1, DefaultRegen)
	if err != nil {
		t.Fatal(err)
	}
	// Iteration time = floor + ingest; target − floor = ingest > 0, so make
	// ingest zero-ish by using an absurd fleet… instead check error path by
	// directly giving a floor above the DHL time via zero dataset scale:
	w2 := DefaultDLRM()
	w2.Dataset = units.Bytes(1) // ingest ≈ one cart → 8.6 s, floor 178 s
	if _, err := IsoTime(w2, d); err != nil {
		t.Fatalf("small dataset should still be feasible: %v", err)
	}
	_ = w
}

func TestReproFigure6Curves(t *testing.T) {
	curves, err := Figure6(DefaultDLRM(), DefaultFigure6Options())
	if err != nil {
		t.Fatal(err)
	}
	// 5 DHL variants + 5 network scenarios.
	if len(curves) != 10 {
		t.Fatalf("curves = %d, want 10", len(curves))
	}
	byName := map[string]Curve{}
	for _, c := range curves {
		byName[c.Name] = c
		if len(c.Points) == 0 {
			t.Fatalf("curve %s empty", c.Name)
		}
		// Time must be non-increasing in power along every curve.
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Time > c.Points[i-1].Time+1e-9 {
				t.Errorf("curve %s not monotone at point %d", c.Name, i)
			}
			if c.Points[i].Power <= c.Points[i-1].Power {
				t.Errorf("curve %s power not increasing at %d", c.Name, i)
			}
		}
	}
	// Paper's headline observation: "for a fixed power budget, DHL
	// consistently outperforms the different network scenarios". Check at
	// several budgets where both are defined.
	dhl := byName["DHL-200-500-256"]
	for _, pKW := range []float64{2, 10, 50, 200} {
		p := units.Watts(pKW * 1000)
		dt, ok := dhl.TimeAtPower(p)
		if !ok {
			continue
		}
		for _, n := range []string{"A0", "A1", "A2", "B", "C"} {
			nt, ok := byName[n].TimeAtPower(p)
			if !ok {
				continue
			}
			if nt <= dt {
				t.Errorf("at %v kW, network %s (%v) beats DHL (%v)", pKW, n, nt, dt)
			}
		}
	}
	// DHL curves are quantised; network curves are not.
	if !dhl.Quantised || byName["A0"].Quantised {
		t.Error("quantisation flags wrong")
	}
}

func TestFigure6Validation(t *testing.T) {
	w := DefaultDLRM()
	opt := DefaultFigure6Options()
	opt.MaxPower = 0
	if _, err := Figure6(w, opt); err == nil {
		t.Error("zero max power must error")
	}
	opt = DefaultFigure6Options()
	opt.NetPoints = 1
	if _, err := Figure6(w, opt); err == nil {
		t.Error("one net point must error")
	}
	opt = DefaultFigure6Options()
	opt.MaxPower = 100 // below one track
	if _, err := Figure6(w, opt); err == nil {
		t.Error("budget below one track must error")
	}
}

func TestTimeAtPower(t *testing.T) {
	c := Curve{Name: "x", Points: []CurvePoint{{Power: 10, Time: 100}, {Power: 100, Time: 10}}}
	if _, ok := c.TimeAtPower(5); ok {
		t.Error("below cheapest point must be unavailable")
	}
	mid, ok := c.TimeAtPower(31.62) // sqrt(10×100): halfway in log space
	if !ok {
		t.Fatal("mid lookup failed")
	}
	approx(t, "log interpolation", float64(mid), 55, 0.01)
	end, ok := c.TimeAtPower(1000)
	if !ok || end != 10 {
		t.Errorf("beyond last point = %v, %v", end, ok)
	}
	q := Curve{Quantised: true, Points: []CurvePoint{{Power: 10, Time: 100}, {Power: 20, Time: 50}}}
	if v, ok := q.TimeAtPower(15); !ok || v != 100 {
		t.Errorf("quantised lookup = %v, %v", v, ok)
	}
	empty := Curve{}
	if _, ok := empty.TimeAtPower(10); ok {
		t.Error("empty curve must be unavailable")
	}
}

func TestSimulateIterationMatchesAnalytical(t *testing.T) {
	w := DefaultDLRM()
	for _, tr := range []Transport{DefaultDHL(), mustOptical(t, netmodel.ScenarioA0, 70)} {
		an, err := w.Iteration(tr)
		if err != nil {
			t.Fatal(err)
		}
		simmed, err := w.SimulateIteration(tr, PaperDownscale)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, tr.Name()+" ingest", float64(simmed.Ingest), float64(an.Ingest), 1e-6)
		approx(t, tr.Name()+" total", float64(simmed.Total()), float64(an.Total()), 1e-6)
		if simmed.Power != an.Power {
			t.Errorf("power mismatch: %v vs %v", simmed.Power, an.Power)
		}
	}
}

func TestSimulateIterationValidation(t *testing.T) {
	w := DefaultDLRM()
	if _, err := w.SimulateIteration(DefaultDHL(), 0.5); err == nil {
		t.Error("downscale < 1 must error")
	}
	w.Dataset = -1
	if _, err := w.SimulateIteration(DefaultDHL(), 1); err == nil {
		t.Error("invalid workload must error")
	}
	if _, err := w.Iteration(DefaultDHL()); err == nil {
		t.Error("invalid workload must error in Iteration")
	}
}

func mustOptical(t *testing.T, s netmodel.Scenario, links float64) Optical {
	t.Helper()
	o, err := NewOptical(s, links)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestIterationBreakdown(t *testing.T) {
	w := DefaultDLRM()
	it, err := w.Iteration(DefaultDHL())
	if err != nil {
		t.Fatal(err)
	}
	if it.Transport != "DHL-200-500-256" {
		t.Errorf("transport = %q", it.Transport)
	}
	approx(t, "total = sum", float64(it.Total()),
		float64(it.Ingest+it.Compute+it.AllReduce), 1e-12)
	// Ingest dominates for the 29 PB workload on one track.
	if it.Ingest < 5*it.Compute {
		t.Errorf("ingest %v should dominate compute %v", it.Ingest, it.Compute)
	}
}
