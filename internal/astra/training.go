package astra

import (
	"errors"
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/units"
)

// Training-run economics (§II-D.3): the paper motivates DHLs with the
// energy bill of large-model training — "we can estimate the ML training
// energy bill at several million dollars" — and Meta's observation that
// "the energy required for data ingestion and pre-processing can be larger
// than that of computation for model training". This file extends the
// per-iteration model to whole training runs and dollar costs.

// ElectricityUSDPerKWh is a typical industrial electricity price.
const ElectricityUSDPerKWh units.USDPerKWh = 0.10

// ComputeClusterPower is the power draw of the training supercomputer
// itself (independent of the communication substrate). A DGX-class 16-node
// cluster draws on the order of 10 kW per node.
const ComputeClusterPower units.Watts = 160 * units.Kilowatt

// TrainingRun is a whole training job: many gradient-descent iterations,
// each re-ingesting the dataset over the communication substrate (the
// paper's DLRM setting where the dataset is streamed from storage per
// pass).
type TrainingRun struct {
	Workload   DLRM
	Iterations int
}

// RunCost summarises a training run on one substrate.
type RunCost struct {
	Transport string
	// Duration of the whole run.
	Duration units.Seconds
	// CommEnergy spent by the communication substrate.
	CommEnergy units.Joules
	// ComputeEnergy spent by the cluster.
	ComputeEnergy units.Joules
	// CommDollars and ComputeDollars at the electricity price.
	CommDollars, ComputeDollars units.USD
	// IngestDominates reports whether communication energy exceeds compute
	// energy — Meta's observation, which DHLs reverse.
	IngestDominates bool
}

// TotalEnergy is communication plus compute energy.
func (r RunCost) TotalEnergy() units.Joules { return r.CommEnergy + r.ComputeEnergy }

// TotalDollars is the whole electricity bill.
func (r RunCost) TotalDollars() units.USD { return r.CommDollars + r.ComputeDollars }

// Evaluate runs the training job on a transport.
func (t TrainingRun) Evaluate(tr Transport) (RunCost, error) {
	if t.Iterations < 1 {
		return RunCost{}, errors.New("astra: need at least one iteration")
	}
	it, err := t.Workload.Iteration(tr)
	if err != nil {
		return RunCost{}, err
	}
	n := float64(t.Iterations)
	dur := units.Seconds(n * float64(it.Total()))
	// The substrate draws its average power during ingest; the cluster
	// draws its power for the whole iteration.
	commE := units.Energy(it.Power, units.Seconds(n*float64(it.Ingest)))
	compE := units.Energy(ComputeClusterPower, dur)
	toUSD := ElectricityUSDPerKWh.Cost
	return RunCost{
		Transport:       tr.Name(),
		Duration:        dur,
		CommEnergy:      commE,
		ComputeEnergy:   compE,
		CommDollars:     toUSD(commE),
		ComputeDollars:  toUSD(compE),
		IngestDominates: commE > compE,
	}, nil
}

// CompareRuns evaluates the run on a DHL and every optical scenario at the
// DHL's power budget, returning the DHL row first.
func (t TrainingRun) CompareRuns(dhl DHL) ([]RunCost, error) {
	rows := make([]RunCost, 0, 6)
	d, err := t.Evaluate(dhl)
	if err != nil {
		return nil, err
	}
	rows = append(rows, d)
	iso, err := IsoPower(t.Workload, dhl)
	if err != nil {
		return nil, err
	}
	for _, r := range iso[1:] {
		// Rebuild the optical transport the iso-power row used.
		opt, err := opticalByName(r.Scheme, dhl.AveragePower())
		if err != nil {
			return nil, err
		}
		rc, err := t.Evaluate(opt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, rc)
	}
	return rows, nil
}

// opticalByName resolves a scenario name back to a budgeted transport.
func opticalByName(name string, budget units.Watts) (Optical, error) {
	for _, s := range netmodel.Scenarios() {
		if s.String() == name {
			return OpticalForBudget(s, budget)
		}
	}
	return Optical{}, fmt.Errorf("astra: unknown scheme %q", name)
}
