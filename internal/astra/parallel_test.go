package astra

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sweep"
)

// renderCurves flattens Figure 6 output to bytes so any divergence between
// the sequential and parallel sweeps is caught at the rendered level too.
func renderCurves(curves []Curve) string {
	s := ""
	for _, c := range curves {
		s += fmt.Sprintf("%s quantised=%v\n", c.Name, c.Quantised)
		for _, p := range c.Points {
			s += fmt.Sprintf("%v %v\n", float64(p.Power), float64(p.Time))
		}
	}
	return s
}

// TestFigure6ParallelMatchesSequential is the acceptance gate for the
// Figure 6 rewiring: the concurrent sweep must be byte-identical to the
// sequential path at every worker count.
func TestFigure6ParallelMatchesSequential(t *testing.T) {
	w := DefaultDLRM()
	opt := DefaultFigure6Options()
	opt.Workers = 1
	seq, err := Figure6(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 10 {
		t.Fatalf("curves = %d, want 10", len(seq))
	}
	for _, workers := range []int{0, 2, 8} {
		opt.Workers = workers
		got, err := Figure6(w, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("workers=%d: parallel Figure 6 diverges from sequential", workers)
		}
		if renderCurves(got) != renderCurves(seq) {
			t.Fatalf("workers=%d: rendered curves differ", workers)
		}
	}
}

func TestTableVIIParallelMatchesSequential(t *testing.T) {
	w := DefaultDLRM()
	dhl := DefaultDHL()
	seqPower, err := IsoPower(w, dhl, sweep.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	seqTime, err := IsoTime(w, dhl, sweep.Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 8} {
		gotPower, err := IsoPower(w, dhl, sweep.Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotPower, seqPower) {
			t.Fatalf("workers=%d: IsoPower diverges from sequential", workers)
		}
		gotTime, err := IsoTime(w, dhl, sweep.Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotTime, seqTime) {
			t.Fatalf("workers=%d: IsoTime diverges from sequential", workers)
		}
	}
}
