package astra

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// DLRM is the representative deep-learning recommendation workload of §V-C:
// one gradient-descent iteration ingests the training dataset over the
// evaluated transport, computes, and allreduces the gradient across the
// cluster.
type DLRM struct {
	// Dataset ingested per iteration (the paper's 29 PB Meta dataset).
	Dataset units.Bytes
	// IngestScale is the effective fraction of the dataset that traverses
	// the bottleneck transport per iteration; ASTRA-sim overlaps a small
	// part of ingest with compute. Calibrated to 0.943 by inverting
	// Table VII (see DESIGN.md §2).
	IngestScale float64
	// ModelSize is the parameter/gradient payload (Table IV: DLRM 2022 is
	// 12 T params ≈ 44 TB at 32-bit).
	ModelSize units.Bytes
	// Cluster is the training cluster for the collective phase.
	Cluster Cluster
	// RawCompute is the forward+backward compute time per iteration,
	// excluding communication. Calibrated so that compute + allreduce
	// matches the paper's ≈178 s non-ingest floor.
	RawCompute units.Seconds
}

// DefaultDLRM is the calibrated paper workload.
func DefaultDLRM() DLRM {
	return DLRM{
		Dataset:     29 * units.PB,
		IngestScale: 0.943,
		ModelSize:   44 * units.TB,
		Cluster:     DefaultCluster(),
		RawCompute:  86.33,
	}
}

// Validate checks the workload parameters.
func (w DLRM) Validate() error {
	if w.Dataset <= 0 {
		return errors.New("astra: dataset must be positive")
	}
	if w.IngestScale <= 0 || w.IngestScale > 1 {
		return fmt.Errorf("astra: ingest scale must be in (0,1], got %v", w.IngestScale)
	}
	if w.ModelSize < 0 || w.RawCompute < 0 {
		return errors.New("astra: model size and compute must be non-negative")
	}
	return w.Cluster.Validate()
}

// IngestBytes is the volume charged to the transport per iteration.
func (w DLRM) IngestBytes() units.Bytes {
	return units.Bytes(float64(w.Dataset) * w.IngestScale)
}

// NonIngestTime is the iteration-time floor independent of the transport:
// compute plus gradient allreduce.
func (w DLRM) NonIngestTime() units.Seconds {
	return w.RawCompute + w.Cluster.AllReduce(w.ModelSize)
}

// IterationBreakdown decomposes one iteration's time.
type IterationBreakdown struct {
	Transport string
	Ingest    units.Seconds
	Compute   units.Seconds
	AllReduce units.Seconds
	// Power is the transport's average power.
	Power units.Watts
}

// Total iteration time.
func (b IterationBreakdown) Total() units.Seconds { return b.Ingest + b.Compute + b.AllReduce }

// Iteration computes one training iteration analytically.
func (w DLRM) Iteration(tr Transport) (IterationBreakdown, error) {
	if err := w.Validate(); err != nil {
		return IterationBreakdown{}, err
	}
	return IterationBreakdown{
		Transport: tr.Name(),
		Ingest:    tr.DeliverTime(w.IngestBytes()),
		Compute:   w.RawCompute,
		AllReduce: w.Cluster.AllReduce(w.ModelSize),
		Power:     tr.AveragePower(),
	}, nil
}

// PaperDownscale is the paper's numerical-stability trick: "we linearly
// downscale the dataset size and the latency for DHL by a factor of 10^7,
// perform the simulation, and then upscale the resulting times by the same
// amount. We justified this by verifying that the time per GD iteration is
// in fact linear in the dataset size."
const PaperDownscale = 1e7

// SimulateIteration runs one iteration on the discrete-event kernel,
// mirroring the paper's numerical-stability methodology: every phase
// duration is downscaled, the phases are sequenced as events (ingest →
// compute → allreduce), and the resulting times are upscaled back. The
// downscale is sound because DeliverTime is linear in dataset size at fixed
// quantisation — the property the paper states it verified, and which
// TestDeliverTimeLinearity checks here.
func (w DLRM) SimulateIteration(tr Transport, downscale float64) (IterationBreakdown, error) {
	if err := w.Validate(); err != nil {
		return IterationBreakdown{}, err
	}
	if downscale < 1 {
		return IterationBreakdown{}, fmt.Errorf("astra: downscale must be ≥1, got %v", downscale)
	}
	eng := sim.New()
	b := IterationBreakdown{Transport: tr.Name(), Power: tr.AveragePower()}
	scale := func(s units.Seconds) units.Seconds {
		return units.Seconds(float64(s) / downscale)
	}

	var ingestEnd, computeEnd, allreduceEnd units.Seconds
	eng.MustAfter(scale(tr.DeliverTime(w.IngestBytes())), "ingest", func() {
		ingestEnd = eng.Now()
		eng.MustAfter(scale(w.RawCompute), "compute", func() {
			computeEnd = eng.Now()
			eng.MustAfter(scale(w.Cluster.AllReduce(w.ModelSize)), "allreduce", func() {
				allreduceEnd = eng.Now()
			})
		})
	})
	if _, err := eng.Run(1000); err != nil {
		return IterationBreakdown{}, err
	}
	b.Ingest = units.Seconds(float64(ingestEnd) * downscale)
	b.Compute = units.Seconds(float64(computeEnd-ingestEnd) * downscale)
	b.AllReduce = units.Seconds(float64(allreduceEnd-computeEnd) * downscale)
	return b, nil
}
