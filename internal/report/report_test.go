package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table VI", "Speed", "Energy (kJ)", "Speedup")
	tb.AddRow(200, 15.04, "295.1x")
	tb.AddRow(100, 3.76, "229.6x")
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table VI", "Speed", "Energy (kJ)", "15.04", "295.1x", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header line and first data line have same prefix
	// width before second column.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(42.0)
	tb.AddRow(3.14159)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "42\n") && !strings.Contains(b.String(), "42 ") {
		t.Errorf("integral float should render without decimals:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "3.142") {
		t.Errorf("float should render with 4 significant digits:\n%s", b.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"power_w", "time_s"}, [][]string{
		{"1750", "1350"},
		{"3500", "700"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "power_w,time_s\n1750,1350\n3500,700\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestPlotRender(t *testing.T) {
	p := Plot{Title: "Figure 6", XLabel: "power (W)", YLabel: "time (s)", Width: 40, Height: 10}
	p.Add(Series{Name: "DHL", X: []float64{1750, 3500, 7000}, Y: []float64{1350, 700, 360}})
	p.Add(Series{Name: "A0", X: []float64{24, 240, 2400}, Y: []float64{580000, 58000, 5800}})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 6", "power (W)", "time (s)", "DHL", "A0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q", want)
		}
	}
	// Markers assigned automatically and present in the grid.
	if !strings.ContainsRune(out, 'o') || !strings.ContainsRune(out, 'x') {
		t.Error("plot markers missing")
	}
}

func TestPlotErrors(t *testing.T) {
	empty := Plot{}
	var b strings.Builder
	if err := empty.Render(&b); err == nil {
		t.Error("empty plot must error")
	}
	neg := Plot{}
	neg.Add(Series{Name: "bad", X: []float64{-1}, Y: []float64{5}})
	if err := neg.Render(&b); err == nil {
		t.Error("non-positive data must error on log plot")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := Plot{Width: 30, Height: 8}
	p.Add(Series{Name: "point", X: []float64{10}, Y: []float64{10}})
	var b strings.Builder
	if err := p.Render(&b); err != nil {
		t.Fatalf("single point plot should render: %v", err)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("Table VII", "scheme", "slowdown")
	tb.AddRow("DHL", 1.0)
	tb.AddRow("A0|B", 5.7)
	var b strings.Builder
	if err := tb.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Table VII**", "| scheme | slowdown |", "|---|---|", "| DHL | 1 |", `A0\|B`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
