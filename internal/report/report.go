// Package report renders the reproduction's tables and figures: aligned
// ASCII tables for the paper's tables, CSV series for external plotting, and
// a log-log ASCII plot for Figure 6.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// trimFloat renders floats with up to 4 significant decimals, no exponent
// for table-scale magnitudes.
func trimFloat(v float64) string {
	//dhllint:allow floateq -- exact integrality test against Trunc(v) is the point: it picks the %.0f rendering
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return strconv4(v)
}

func strconv4(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, wd := range widths {
		total += wd
	}
	total += len(widths) - 1 // double spacing
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes headers and rows as CSV.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is a named sequence of (x, y) points for plotting.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot renders a log-log ASCII scatter of the series onto a width×height
// character grid — the reproduction's stand-in for the paper's Figure 6
// rendering.
type Plot struct {
	Title          string
	XLabel, YLabel string
	Width, Height  int
	Series         []Series
}

// Add appends a series, assigning a marker if none set.
func (p *Plot) Add(s Series) {
	if s.Marker == 0 {
		markers := []rune("ox+*#@%&^~")
		s.Marker = markers[len(p.Series)%len(markers)]
	}
	p.Series = append(p.Series, s)
}

// Render draws the plot.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.Width, p.Height
	if width < 20 {
		width = 72
	}
	if height < 8 {
		height = 24
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				return fmt.Errorf("report: log-log plot needs positive data (series %q)", s.Name)
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: plot %q has no data", p.Title)
	}
	//dhllint:allow floateq -- min==max detects a degenerate axis where both came from the same single value
	if minX == maxX {
		maxX = minX * 10
	}
	//dhllint:allow floateq -- min==max detects a degenerate axis where both came from the same single value
	if minY == maxY {
		maxY = minY * 10
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	lx := func(v float64) float64 { return math.Log(v) }
	for _, s := range p.Series {
		for i := range s.X {
			col := int(math.Round((lx(s.X[i]) - lx(minX)) / (lx(maxX) - lx(minX)) * float64(width-1)))
			row := int(math.Round((lx(s.Y[i]) - lx(minY)) / (lx(maxY) - lx(minY)) * float64(height-1)))
			row = height - 1 - row // y grows upward
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = s.Marker
			}
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	fmt.Fprintf(&b, "%s (log scale) ↑\n", p.YLabel)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s→ %s (log scale)\n", strings.Repeat("-", width), p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", s.Marker, s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
