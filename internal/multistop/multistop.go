// Package multistop implements the §VI "Multi-stops" track design: a DHL
// with more than two endpoints, carts stopping at any station, and
// management of concurrent movements on the shared rail. The paper notes
// the primary design "is designed to extend to this use case without
// significant modifications" and that multi-stop operation "would motivate
// higher speeds to ameliorate potential contention from different users" —
// a claim the simulation here makes measurable.
//
// Movement rules:
//
//   - A move from stop A to stop B reserves the rail span [A, B] (stops
//     inclusive — a cart mid-dock blocks through traffic at its stop).
//   - Moves whose spans do not overlap proceed concurrently on the single
//     rail; conflicting moves queue FIFO.
//   - Short hops that cannot reach full speed follow a triangular velocity
//     profile; long hops follow the usual trapezoid.
package multistop

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// Stop is one station on the line.
type Stop struct {
	Name     string
	Position units.Metres
}

// Line is a multi-stop DHL.
type Line struct {
	Engine *sim.Engine

	cfg   core.Config
	stops []Stop
	// cartAt maps cart → stop index; carts in transit are absent.
	cartAt map[track.CartID]int
	busy   map[track.CartID]bool
	// trackName builds each cart's telemetry track ("cart-N") at Place
	// time, keeping the per-move completion path free of string building;
	// trackID holds the corresponding span-log intern IDs once telemetry
	// is wired (SetTelemetry backfills carts placed before it ran).
	trackName map[track.CartID]string
	trackID   map[track.CartID]telemetry.StrID
	// active spans: [lo, hi] stop-index ranges currently reserved.
	active []Span
	// blocked spans: segments out of service (derailment, maintenance);
	// moves overlapping a blocked span queue until it clears.
	blocked []Span
	waiting []func() bool
	stats   Stats

	// Telemetry (optional, nil-safe): move accounting and per-move spans on
	// "cart-N" tracks.
	telMoves   *telemetry.Counter
	telQueued  *telemetry.Counter
	telBlocked *telemetry.Counter
	telWait    *telemetry.Histogram
	telSpans   *telemetry.SpanLog
	moveID     telemetry.StrID // interned "move" span name
}

// moveWaitBuckets is the queue-wait histogram layout, in seconds.
var moveWaitBuckets = []float64{0.1, 1, 5, 10, 50, 100, 500, 1000}

// SetTelemetry instruments the line: dhl_line_moves_total,
// dhl_line_queued_moves_total, dhl_line_blocked_moves_total, the
// dhl_line_move_wait_seconds histogram, and one span per completed move on
// the cart's track. A nil set disables instrumentation.
func (l *Line) SetTelemetry(set *telemetry.Set) {
	reg := set.MetricsOf()
	l.telMoves = reg.Counter("dhl_line_moves_total")
	l.telQueued = reg.Counter("dhl_line_queued_moves_total")
	l.telBlocked = reg.Counter("dhl_line_blocked_moves_total")
	l.telWait = reg.Histogram("dhl_line_move_wait_seconds", moveWaitBuckets)
	l.telSpans = set.SpansOf()
	if l.telSpans != nil {
		l.moveID = l.telSpans.Intern("move")
		for id, name := range l.trackName {
			l.trackID[id] = l.telSpans.Intern(name)
		}
	}
}

// Span is an inclusive [Lo, Hi] stop-index range on a shared rail. It is
// the unit of rail reservation: a move from stop A to stop B holds the span
// [min(A,B), max(A,B)], endpoints included — a cart mid-dock blocks through
// traffic at its stop. The type is exported because the semantics outlive
// this package: internal/tubenet reuses Span as the conflict domain for
// spur lines in a campus tube network, so "two moves conflict iff their
// spans overlap" means the same thing on a two-stop line and a 20-station
// campus.
type Span struct{ Lo, Hi int }

// NewSpan returns the span covering both stop indices, in either order.
func NewSpan(a, b int) Span {
	if a > b {
		a, b = b, a
	}
	return Span{Lo: a, Hi: b}
}

// Overlaps reports whether the two inclusive ranges share any stop.
func (s Span) Overlaps(o Span) bool { return s.Lo <= o.Hi && o.Lo <= s.Hi }

// Stats accumulates line-wide accounting.
type Stats struct {
	Moves  int
	Energy units.Joules
	// QueuedMoves had to wait for a conflicting span to clear.
	QueuedMoves int
	// BlockedMoves had to wait specifically for an out-of-service segment.
	BlockedMoves int
	// TotalWait is the cumulative time moves spent queued.
	TotalWait units.Seconds
}

// Errors returned by the line.
var (
	ErrUnknownStop = errors.New("multistop: unknown stop")
	ErrUnknownCart = errors.New("multistop: unknown cart")
	ErrCartBusy    = errors.New("multistop: cart is moving")
	ErrSameStop    = errors.New("multistop: origin equals destination")
)

// New builds a line from a DHL configuration and a set of stops. Stops are
// sorted by position; at least two are required and positions must be
// distinct. Carts are placed via Place before moves are issued.
func New(cfg core.Config, stops []Stop) (*Line, error) {
	// Validate everything except track length (the core config's Length is
	// irrelevant here — hops define their own distances).
	if cfg.Cart == nil {
		return nil, core.ErrNoCart
	}
	if cfg.MaxSpeed <= 0 || cfg.Acceleration <= 0 {
		return nil, errors.New("multistop: speed and acceleration must be positive")
	}
	if cfg.DockTime < 0 || cfg.UndockTime < 0 {
		return nil, errors.New("multistop: docking times must be non-negative")
	}
	if cfg.LIM.Efficiency <= 0 || cfg.LIM.Efficiency > 1 {
		return nil, errors.New("multistop: LIM efficiency must be in (0,1]")
	}
	if len(stops) < 2 {
		return nil, errors.New("multistop: need at least two stops")
	}
	ss := make([]Stop, len(stops))
	copy(ss, stops)
	sort.Slice(ss, func(i, j int) bool { return ss[i].Position < ss[j].Position })
	for i := 1; i < len(ss); i++ {
		//dhllint:allow floateq -- positions are exact user-specified config values; duplicates mean the same physical stop
		if ss[i].Position == ss[i-1].Position {
			return nil, fmt.Errorf("multistop: stops %q and %q share position %v",
				ss[i-1].Name, ss[i].Name, ss[i].Position)
		}
	}
	return &Line{
		Engine:    sim.New(),
		cfg:       cfg,
		stops:     ss,
		cartAt:    make(map[track.CartID]int),
		busy:      make(map[track.CartID]bool),
		trackName: make(map[track.CartID]string),
		trackID:   make(map[track.CartID]telemetry.StrID),
	}, nil
}

// Stops returns the line's stops in position order.
func (l *Line) Stops() []Stop { return append([]Stop(nil), l.stops...) }

// StopIndex resolves a stop name.
func (l *Line) StopIndex(name string) (int, error) {
	for i, s := range l.stops {
		if s.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownStop, name)
}

// Place puts a cart at a stop (initial fleet placement).
func (l *Line) Place(id track.CartID, stop int) error {
	if stop < 0 || stop >= len(l.stops) {
		return fmt.Errorf("%w: index %d", ErrUnknownStop, stop)
	}
	if _, ok := l.cartAt[id]; ok {
		return fmt.Errorf("multistop: cart %d already placed", id)
	}
	l.cartAt[id] = stop
	l.trackName[id] = "cart-" + strconv.Itoa(int(id))
	if l.telSpans != nil {
		l.trackID[id] = l.telSpans.Intern(l.trackName[id])
	}
	return nil
}

// CartAt returns the stop a cart is docked at, or false if in transit or
// unknown.
func (l *Line) CartAt(id track.CartID) (int, bool) {
	s, ok := l.cartAt[id]
	return s, ok
}

// Stats returns a snapshot.
func (l *Line) Stats() Stats { return l.stats }

// Hop describes one inter-stop movement's physics.
type Hop struct {
	Distance units.Metres
	// PeakSpeed reached (maxSpeed, or lower on a triangular short hop).
	PeakSpeed units.MetresPerSecond
	// TransitTime on the rail (no docking).
	TransitTime units.Seconds
	// MoveTime including undock and dock.
	MoveTime units.Seconds
	// Energy of the accelerate/brake pair.
	Energy units.Joules
	// Triangular marks a hop too short to reach full speed.
	Triangular bool
}

// HopBetween computes the movement physics between two stop indices.
func (l *Line) HopBetween(from, to int) (Hop, error) {
	if from < 0 || from >= len(l.stops) || to < 0 || to >= len(l.stops) {
		return Hop{}, fmt.Errorf("%w: %d→%d", ErrUnknownStop, from, to)
	}
	if from == to {
		return Hop{}, ErrSameStop
	}
	d := math.Abs(float64(l.stops[to].Position - l.stops[from].Position))
	a := float64(l.cfg.Acceleration)
	vmax := float64(l.cfg.MaxSpeed)
	ramps := vmax * vmax / a // 2 × v²/2a
	h := Hop{Distance: units.Metres(d)}
	if d < ramps {
		// Triangular: accelerate over d/2, brake over d/2.
		peak := math.Sqrt(a * d)
		h.PeakSpeed = units.MetresPerSecond(peak)
		h.TransitTime = units.Seconds(2 * math.Sqrt(d/a))
		h.Triangular = true
	} else {
		h.PeakSpeed = l.cfg.MaxSpeed
		// Paper ramp accounting, consistent with internal/core.
		h.TransitTime = units.Seconds(d/vmax + vmax/(2*a))
	}
	h.MoveTime = l.cfg.UndockTime + h.TransitTime + l.cfg.DockTime
	h.Energy = l.cfg.LIM.LaunchEnergy(l.cfg.Cart.TotalMass, h.PeakSpeed)
	return h, nil
}

// Move schedules cart id from its current stop to stop index `to`. done is
// called on completion (or immediately with a validation error). Moves with
// conflicting rail spans queue FIFO.
func (l *Line) Move(id track.CartID, to int, done func(error)) {
	from, ok := l.cartAt[id]
	if !ok {
		if l.busy[id] {
			done(fmt.Errorf("%w: %d", ErrCartBusy, id))
			return
		}
		done(fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	hop, err := l.HopBetween(from, to)
	if err != nil {
		done(err)
		return
	}
	sp := NewSpan(from, to)
	requested := l.Engine.Now()
	blockedOnce := false
	tryStart := func() bool {
		for _, b := range l.blocked {
			if sp.Overlaps(b) {
				if !blockedOnce {
					blockedOnce = true
					l.stats.BlockedMoves++
					l.telBlocked.Inc()
				}
				return false
			}
		}
		for _, a := range l.active {
			if sp.Overlaps(a) {
				return false
			}
		}
		l.active = append(l.active, sp)
		delete(l.cartAt, id)
		l.busy[id] = true
		wait := l.Engine.Now() - requested
		l.stats.TotalWait += wait
		l.telWait.Observe(float64(wait))
		start := l.Engine.Now()
		l.Engine.MustAfter(hop.MoveTime, "move", func() {
			l.release(sp)
			l.cartAt[id] = to
			l.busy[id] = false
			l.stats.Moves++
			l.stats.Energy += hop.Energy
			l.telMoves.Inc()
			if l.telSpans != nil {
				l.telSpans.RecordSpan(l.trackID[id], l.moveID, start, l.Engine.Now(),
					telemetry.KV{Key: "from", Value: l.stops[from].Name},
					telemetry.KV{Key: "to", Value: l.stops[to].Name})
			}
			l.retryWaiting()
			done(nil)
		})
		return true
	}
	if tryStart() {
		return
	}
	l.stats.QueuedMoves++
	l.telQueued.Inc()
	l.waiting = append(l.waiting, tryStart)
}

// Block takes the rail segment spanning stop indices [lo, hi] out of
// service (fault injection: derailed cart, tube maintenance). Moves whose
// spans overlap it queue FIFO until Unblock. Blockades nest; each Block
// needs a matching Unblock.
func (l *Line) Block(lo, hi int) error {
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo < 0 || hi >= len(l.stops) {
		return fmt.Errorf("%w: segment [%d,%d]", ErrUnknownStop, lo, hi)
	}
	l.blocked = append(l.blocked, Span{Lo: lo, Hi: hi})
	return nil
}

// Unblock returns the segment [lo, hi] to service and retries queued
// moves. It removes one matching blockade; unknown segments error.
func (l *Line) Unblock(lo, hi int) error {
	if lo > hi {
		lo, hi = hi, lo
	}
	want := Span{Lo: lo, Hi: hi}
	for i, b := range l.blocked {
		if b == want {
			l.blocked = append(l.blocked[:i], l.blocked[i+1:]...)
			l.retryWaiting()
			return nil
		}
	}
	return fmt.Errorf("%w: segment [%d,%d] not blocked", ErrUnknownStop, lo, hi)
}

// BlockedSegments returns the number of active blockades.
func (l *Line) BlockedSegments() int { return len(l.blocked) }

func (l *Line) release(sp Span) {
	for i, a := range l.active {
		if a == sp {
			l.active = append(l.active[:i], l.active[i+1:]...)
			return
		}
	}
}

func (l *Line) retryWaiting() {
	remaining := l.waiting[:0]
	for _, try := range l.waiting {
		if !try() {
			remaining = append(remaining, try)
		}
	}
	l.waiting = remaining
}

// Run drains the event queue and returns the end time.
func (l *Line) Run() (units.Seconds, error) {
	if _, err := l.Engine.Run(10_000_000); err != nil {
		return l.Engine.Now(), err
	}
	return l.Engine.Now(), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
