package multistop

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/track"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func fourStops() []Stop {
	return []Stop{
		{Name: "library", Position: 0},
		{Name: "rack-A", Position: 200},
		{Name: "rack-B", Position: 350},
		{Name: "rack-C", Position: 500},
	}
}

func mustLine(t *testing.T) *Line {
	t.Helper()
	l, err := New(core.DefaultConfig(), fourStops())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	cfg := core.DefaultConfig()
	if _, err := New(cfg, fourStops()[:1]); err == nil {
		t.Error("one stop must be rejected")
	}
	dup := []Stop{{Name: "a", Position: 5}, {Name: "b", Position: 5}}
	if _, err := New(cfg, dup); err == nil {
		t.Error("duplicate positions must be rejected")
	}
	bad := cfg
	bad.Cart = nil
	if _, err := New(bad, fourStops()); !errors.Is(err, core.ErrNoCart) {
		t.Errorf("err = %v", err)
	}
	bad = cfg
	bad.MaxSpeed = 0
	if _, err := New(bad, fourStops()); err == nil {
		t.Error("zero speed must be rejected")
	}
	bad = cfg
	bad.DockTime = -1
	if _, err := New(bad, fourStops()); err == nil {
		t.Error("negative dock time must be rejected")
	}
	bad = cfg
	bad.LIM.Efficiency = 0
	if _, err := New(bad, fourStops()); err == nil {
		t.Error("zero efficiency must be rejected")
	}
}

func TestStopsSortedAndIndexed(t *testing.T) {
	// Stops given out of order are sorted by position.
	l, err := New(core.DefaultConfig(), []Stop{
		{Name: "far", Position: 500},
		{Name: "near", Position: 0},
		{Name: "mid", Position: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := l.Stops()
	if ss[0].Name != "near" || ss[1].Name != "mid" || ss[2].Name != "far" {
		t.Errorf("stops = %v", ss)
	}
	i, err := l.StopIndex("mid")
	if err != nil || i != 1 {
		t.Errorf("StopIndex(mid) = %d, %v", i, err)
	}
	if _, err := l.StopIndex("nope"); !errors.Is(err, ErrUnknownStop) {
		t.Errorf("err = %v", err)
	}
}

func TestHopPhysicsLongAndShort(t *testing.T) {
	l := mustLine(t)
	// library → rack-C: 500 m, reaches full speed; matches the two-endpoint
	// model: transit 2.6 s, move 8.6 s, energy 15.04 kJ.
	long, err := l.HopBetween(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if long.Triangular {
		t.Error("500 m hop should be trapezoidal")
	}
	approx(t, "long transit", float64(long.TransitTime), 2.6, 1e-9)
	approx(t, "long move", float64(long.MoveTime), 8.6, 1e-9)
	approx(t, "long energy", long.Energy.KJ(), 15.04, 0.001)
	if long.PeakSpeed != 200 {
		t.Errorf("peak = %v", long.PeakSpeed)
	}

	// A 40 m-minus hop never reaches 200 m/s: rack-B → rack-C is 150 m ≥
	// 40 m ramps, so use closer stops. Build a line with a 30 m hop.
	short, err := New(core.DefaultConfig(), []Stop{
		{Name: "x", Position: 0}, {Name: "y", Position: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := short.HopBetween(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Triangular {
		t.Error("30 m hop must be triangular")
	}
	// Peak = sqrt(a·d) = sqrt(30000) ≈ 173.2 m/s; transit = 2·sqrt(d/a).
	approx(t, "short peak", float64(h.PeakSpeed), math.Sqrt(30000), 1e-9)
	approx(t, "short transit", float64(h.TransitTime), 2*math.Sqrt(0.03), 1e-9)
	// Energy: 2×½M·peak²/η = M·a·d/η.
	approx(t, "short energy", float64(h.Energy), 0.28192*1000*30/0.75, 0.001)
	// Short hops cost less energy than full-speed ones.
	if h.Energy >= long.Energy {
		t.Error("triangular hop must cost less than full-speed hop")
	}
}

func TestHopErrors(t *testing.T) {
	l := mustLine(t)
	if _, err := l.HopBetween(0, 0); !errors.Is(err, ErrSameStop) {
		t.Errorf("err = %v", err)
	}
	if _, err := l.HopBetween(-1, 2); !errors.Is(err, ErrUnknownStop) {
		t.Errorf("err = %v", err)
	}
	if _, err := l.HopBetween(0, 9); !errors.Is(err, ErrUnknownStop) {
		t.Errorf("err = %v", err)
	}
}

func TestPlaceAndMove(t *testing.T) {
	l := mustLine(t)
	if err := l.Place(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(1, 0); err == nil {
		t.Error("double placement must error")
	}
	if err := l.Place(2, 9); !errors.Is(err, ErrUnknownStop) {
		t.Errorf("err = %v", err)
	}
	var moveErr error
	l.Move(1, 3, func(err error) { moveErr = err })
	end, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if moveErr != nil {
		t.Fatal(moveErr)
	}
	approx(t, "move duration", float64(end), 8.6, 1e-9)
	if at, ok := l.CartAt(1); !ok || at != 3 {
		t.Errorf("cart at %d, %v; want 3", at, ok)
	}
	st := l.Stats()
	if st.Moves != 1 || st.QueuedMoves != 0 {
		t.Errorf("stats = %+v", st)
	}
	approx(t, "move energy", float64(st.Energy), 15040, 0.001)
}

func TestMoveErrors(t *testing.T) {
	l := mustLine(t)
	l.Place(1, 0)
	var errs []error
	l.Move(9, 1, func(err error) { errs = append(errs, err) })
	l.Move(1, 0, func(err error) { errs = append(errs, err) })
	if !errors.Is(errs[0], ErrUnknownCart) {
		t.Errorf("err = %v", errs[0])
	}
	if !errors.Is(errs[1], ErrSameStop) {
		t.Errorf("err = %v", errs[1])
	}
	// Moving a cart already in motion reports busy.
	l.Move(1, 3, func(err error) {
		if err != nil {
			t.Errorf("move: %v", err)
		}
	})
	l.Move(1, 2, func(err error) { errs = append(errs, err) })
	if len(errs) != 3 || !errors.Is(errs[2], ErrCartBusy) {
		t.Errorf("busy err = %v", errs)
	}
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointSpansRunConcurrently(t *testing.T) {
	l := mustLine(t)
	l.Place(1, 0) // library → rack-A: span [0,1]
	l.Place(2, 2) // rack-B → rack-C: span [2,3]
	done := 0
	l.Move(1, 1, func(err error) {
		if err != nil {
			t.Error(err)
		}
		done++
	})
	l.Move(2, 3, func(err error) {
		if err != nil {
			t.Error(err)
		}
		done++
	})
	end, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	// Concurrent: total time is the slower single move, not the sum.
	hop1, _ := l.HopBetween(0, 1)
	hop2, _ := l.HopBetween(2, 3)
	slower := math.Max(float64(hop1.MoveTime), float64(hop2.MoveTime))
	approx(t, "concurrent duration", float64(end), slower, 1e-9)
	if l.Stats().QueuedMoves != 0 {
		t.Errorf("queued = %d, want 0", l.Stats().QueuedMoves)
	}
}

func TestOverlappingSpansQueue(t *testing.T) {
	l := mustLine(t)
	l.Place(1, 0) // library → rack-C: whole line
	l.Place(2, 1) // rack-A → rack-B: inside it
	l.Move(1, 3, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	l.Move(2, 2, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	end, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	hop1, _ := l.HopBetween(0, 3)
	hop2, _ := l.HopBetween(1, 2)
	approx(t, "serialised duration", float64(end),
		float64(hop1.MoveTime)+float64(hop2.MoveTime), 1e-9)
	st := l.Stats()
	if st.QueuedMoves != 1 {
		t.Errorf("queued = %d, want 1", st.QueuedMoves)
	}
	approx(t, "wait time", float64(st.TotalWait), float64(hop1.MoveTime), 1e-9)
}

// TestHigherSpeedAmelioratesContention checks §VI's claim: under contention
// from different users, raising the max speed cuts queueing delay.
func TestHigherSpeedAmelioratesContention(t *testing.T) {
	run := func(speed units.MetresPerSecond) units.Seconds {
		cfg := core.DefaultConfig()
		cfg.MaxSpeed = speed
		l, err := New(cfg, fourStops())
		if err != nil {
			t.Fatal(err)
		}
		// Four users ping-ponging carts over overlapping spans.
		for i := 0; i < 4; i++ {
			l.Place(track.CartID(i), 0)
		}
		for i := 0; i < 4; i++ {
			id := track.CartID(i)
			dst := 1 + i%3
			l.Move(id, dst, func(err error) {
				if err != nil {
					t.Error(err)
				}
			})
		}
		if _, err := l.Run(); err != nil {
			t.Fatal(err)
		}
		return l.Stats().TotalWait
	}
	slow := run(100)
	fast := run(300)
	if fast >= slow {
		t.Errorf("total wait at 300 m/s (%v) should undercut 100 m/s (%v)", fast, slow)
	}
}

func TestCartAtUnknown(t *testing.T) {
	l := mustLine(t)
	if _, ok := l.CartAt(5); ok {
		t.Error("unknown cart must not resolve")
	}
}

func TestBlockQueuesMovesUntilUnblock(t *testing.T) {
	l := mustLine(t)
	if err := l.Place(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Block(1, 2); err != nil {
		t.Fatal(err)
	}
	if l.BlockedSegments() != 1 {
		t.Fatalf("BlockedSegments = %d, want 1", l.BlockedSegments())
	}
	// The move spans [0,3] and overlaps the blockade: it must queue, not
	// fail, and complete only after the segment is returned to service.
	var doneAt units.Seconds
	moveErr := errors.New("not called")
	l.Move(0, 3, func(err error) {
		moveErr = err
		doneAt = l.Engine.Now()
	})
	const clearAt = units.Seconds(30)
	l.Engine.MustAfter(clearAt, "clear-debris", func() {
		if err := l.Unblock(1, 2); err != nil {
			t.Errorf("Unblock: %v", err)
		}
	})
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if moveErr != nil {
		t.Fatalf("queued move failed: %v", moveErr)
	}
	if doneAt < clearAt {
		t.Errorf("move completed at %v, before the blockade cleared at %v", doneAt, clearAt)
	}
	if at, ok := l.CartAt(0); !ok || at != 3 {
		t.Errorf("cart at %d (ok=%v), want 3", at, ok)
	}
	st := l.Stats()
	if st.BlockedMoves != 1 || st.QueuedMoves != 1 || st.Moves != 1 {
		t.Errorf("stats = %+v, want 1 blocked, 1 queued, 1 move", st)
	}
	if l.BlockedSegments() != 0 {
		t.Errorf("BlockedSegments after Unblock = %d", l.BlockedSegments())
	}
}

func TestBlockadesNest(t *testing.T) {
	l := mustLine(t)
	if err := l.Block(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Block(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Unblock(0, 1); err != nil {
		t.Fatal(err)
	}
	if l.BlockedSegments() != 1 {
		t.Errorf("one Unblock cleared both nested blockades: %d left", l.BlockedSegments())
	}
	if err := l.Unblock(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Unblock(0, 1); err == nil {
		t.Error("Unblock of an unblocked segment must error")
	}
	if err := l.Block(-1, 2); err == nil {
		t.Error("out-of-range Block must error")
	}
	if err := l.Block(0, 4); err == nil {
		t.Error("out-of-range Block must error")
	}
}

// TestSpanOverlapSemantics pins the exported reservation primitive: spans
// are inclusive ranges, endpoint-sharing counts as conflict (a cart
// mid-dock blocks through traffic at its stop), and NewSpan normalises
// argument order. internal/tubenet builds its spur-line conflict domains
// on exactly these semantics.
func TestSpanOverlapSemantics(t *testing.T) {
	cases := []struct {
		a, b Span
		want bool
	}{
		{Span{0, 1}, Span{1, 2}, true},  // shared endpoint stop
		{Span{0, 1}, Span{2, 3}, false}, // disjoint
		{Span{0, 5}, Span{2, 3}, true},  // containment
		{Span{2, 2}, Span{2, 2}, true},  // degenerate single-stop spans
		{Span{3, 4}, Span{0, 2}, false}, // disjoint, other order
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlap must be symmetric: %v vs %v", c.b, c.a)
		}
	}
	if got := NewSpan(4, 1); got != (Span{Lo: 1, Hi: 4}) {
		t.Errorf("NewSpan(4, 1) = %+v, want normalised {1 4}", got)
	}
}
