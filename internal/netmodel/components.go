// Package netmodel implements the paper's optical data-centre network energy
// model (§II-B/C, Figure 2, Table III): a component power catalogue, a
// three-tier fat-tree topology with routing, and the five evaluated transfer
// scenarios A0, A1, A2, B and C.
package netmodel

import (
	"fmt"

	"repro/internal/units"
)

// LineRate is the evaluated link speed (400 Gb/s throughout the paper).
const LineRate units.BitsPerSecond = 400 * units.Gbps

// LinkBandwidth is the byte throughput of one 400 Gb/s link (50 GB/s).
func LinkBandwidth() units.BytesPerSecond { return LineRate.BytesPerSecond() }

// Component power catalogue (Table III; bold rows are the ones the paper's
// energy numbers are built from — see DESIGN.md §2 for the inversion).
const (
	// TransceiverPower: Broadcom 400G QSFP-DD optical transceiver, 12 W.
	TransceiverPower units.Watts = 12
	// NICPower: the bold 2×200 GbE NIC, operated at 400 Gb/s. The paper's
	// route energies invert to 19.8 W per NIC (within the 17–23.3 W range).
	NICPower units.Watts = 19.8
	// SwitchPowerPassive / SwitchPowerActive: NVIDIA QM9700 chassis power at
	// 32 ports, divided per port. Passive cabling 747 W, active 1720 W.
	SwitchPowerPassive units.Watts = 747.0 / 32
	SwitchPowerActive  units.Watts = 1720.0 / 32
)

// SwitchSpec is a Table III switch row.
type SwitchSpec struct {
	Name         string
	PortRate     units.BitsPerSecond
	Ports        int
	PowerPassive units.Watts // chassis, all-passive cabling
	PowerActive  units.Watts // chassis, all-active cabling
}

// PerPortPassive is the per-port power with passive cables.
func (s SwitchSpec) PerPortPassive() units.Watts {
	return units.Watts(float64(s.PowerPassive) / float64(s.Ports))
}

// PerPortActive is the per-port power with active cables.
func (s SwitchSpec) PerPortActive() units.Watts {
	return units.Watts(float64(s.PowerActive) / float64(s.Ports))
}

// Switch catalogue from Table III.
var (
	// QM9700 is the bold NVIDIA 32×400G switch used by the evaluation.
	QM9700 = SwitchSpec{Name: "NVIDIA QM9700", PortRate: LineRate, Ports: 32,
		PowerPassive: 747, PowerActive: 1720}
	// Cisco9364D is the Cisco Nexus 9364D-GX2A 64×400G switch.
	Cisco9364D = SwitchSpec{Name: "Cisco 9364D-GX2A", PortRate: LineRate, Ports: 64,
		PowerPassive: 1324, PowerActive: 3000}
)

// PortKind classifies a traversed switch port by its cabling.
type PortKind int

const (
	// PortPassive is a port on a passive copper link (node ↔ ToR).
	PortPassive PortKind = iota
	// PortActive is a port on an active optical link (switch ↔ switch).
	PortActive
)

// String implements fmt.Stringer.
func (k PortKind) String() string {
	if k == PortPassive {
		return "passive"
	}
	return "active"
}

// RoutePower is the decomposed steady-state power of a route.
type RoutePower struct {
	Transceivers int
	NICs         int
	PassivePorts int
	ActivePorts  int
}

// Total is the route's power draw while a transfer is in flight.
func (r RoutePower) Total() units.Watts {
	return units.Watts(float64(r.Transceivers))*TransceiverPower +
		units.Watts(float64(r.NICs))*NICPower +
		units.Watts(float64(r.PassivePorts))*SwitchPowerPassive +
		units.Watts(float64(r.ActivePorts))*SwitchPowerActive
}

// Energy is the energy to move data over the route at the line rate.
func (r RoutePower) Energy(data units.Bytes) units.Joules {
	return units.Energy(r.Total(), TransferTime(data))
}

// String summarises the decomposition.
func (r RoutePower) String() string {
	return fmt.Sprintf("route{%d xcvr, %d NIC, %d passive, %d active = %v}",
		r.Transceivers, r.NICs, r.PassivePorts, r.ActivePorts, r.Total())
}

// TransferTime is the serial transfer time of data over one 400 Gb/s link.
func TransferTime(data units.Bytes) units.Seconds {
	return LinkBandwidth().TransferTime(data)
}

// Efficiency is the route's data-movement efficiency in GB/J for the given
// transfer size.
func (r RoutePower) Efficiency(data units.Bytes) float64 {
	return units.GBPerJoule(data, r.Energy(data))
}
