package netmodel

import "fmt"

// Scenario identifies one of the paper's five evaluated network routes
// (Figure 2 right-hand table).
type Scenario int

const (
	// ScenarioA0: direct minimal connection — two transceivers only.
	ScenarioA0 Scenario = iota
	// ScenarioA1: direct passive connection with regular NICs.
	ScenarioA1
	// ScenarioA2: passive connection through one ToR switch.
	ScenarioA2
	// ScenarioB: different racks, storage → NIC → 3 switches → NIC.
	ScenarioB
	// ScenarioC: different aisles, storage → NIC → 1A-2A-3-2C-1C → NIC.
	ScenarioC
)

// Scenarios lists all five in paper order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioA0, ScenarioA1, ScenarioA2, ScenarioB, ScenarioC}
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	switch s {
	case ScenarioA0:
		return "A0"
	case ScenarioA1:
		return "A1"
	case ScenarioA2:
		return "A2"
	case ScenarioB:
		return "B"
	case ScenarioC:
		return "C"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Describe returns the paper's route description.
func (s Scenario) Describe() string {
	switch s {
	case ScenarioA0:
		return "storage → transceiver → transceiver → A (direct minimal)"
	case ScenarioA1:
		return "storage → NIC → NIC → A (direct, passive)"
	case ScenarioA2:
		return "storage → NIC → switch → NIC → A (same rack, passive)"
	case ScenarioB:
		return "storage → NIC → 1A → 2A → 1B → NIC → B (different rack)"
	case ScenarioC:
		return "storage → NIC → 1A → 2A → 3 → 2C → 1C → NIC → C (different aisle)"
	default:
		return "unknown"
	}
}

// Power returns the route's power decomposition. Node↔ToR links are passive;
// switch↔switch links are active with the transceiver cost folded into the
// active port rating (see DESIGN.md §2).
func (s Scenario) Power() RoutePower {
	switch s {
	case ScenarioA0:
		return RoutePower{Transceivers: 2}
	case ScenarioA1:
		return RoutePower{NICs: 2}
	case ScenarioA2:
		return RoutePower{NICs: 2, PassivePorts: 2}
	case ScenarioB:
		// 3 switches: ToR(passive in, active out), aggregation (2 active),
		// ToR (active in, passive out).
		return RoutePower{NICs: 2, PassivePorts: 2, ActivePorts: 4}
	case ScenarioC:
		// 5 switches: 1A-2A-3-2C-1C.
		return RoutePower{NICs: 2, PassivePorts: 2, ActivePorts: 8}
	default:
		return RoutePower{}
	}
}

// SwitchCount returns the number of switches the route traverses.
func (s Scenario) SwitchCount() int {
	switch s {
	case ScenarioA2:
		return 1
	case ScenarioB:
		return 3
	case ScenarioC:
		return 5
	default:
		return 0
	}
}
