package netmodel

import (
	"errors"
	"fmt"

	"repro/internal/units"
)

// Energy-proportional networking (§VII-D): the paper surveys proposals that
// power network links on/off with demand (ElasticTree, energy-efficient
// Ethernet, per-fibre switching). This file models them so the optical
// baseline gets its best case — and so the DHL's complementary benefit is
// quantifiable: moving bulk transfers onto the DHL lets the network links
// that would have carried them sleep.

// ProportionalModel describes how a route's power scales with utilisation.
type ProportionalModel struct {
	// IdleFraction of full power drawn at zero utilisation. Today's optical
	// gear idles near full power (≈0.9); ideal proportionality is 0.
	IdleFraction float64
}

// Typical models.
var (
	// TodayProportional: conventional gear, ~90 % of peak when idle.
	TodayProportional = ProportionalModel{IdleFraction: 0.9}
	// IdealProportional: power tracks utilisation perfectly.
	IdealProportional = ProportionalModel{IdleFraction: 0}
	// OnOff: links power fully off when unused (ElasticTree-style), drawing
	// nothing idle but full power at any non-zero use.
	OnOff = ProportionalModel{IdleFraction: 0}
)

// Validate checks the model.
func (m ProportionalModel) Validate() error {
	if m.IdleFraction < 0 || m.IdleFraction > 1 {
		return fmt.Errorf("netmodel: idle fraction must be in [0,1], got %v", m.IdleFraction)
	}
	return nil
}

// Power is the route's draw at the given utilisation ∈ [0,1].
func (m ProportionalModel) Power(s Scenario, utilisation float64) (units.Watts, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if utilisation < 0 || utilisation > 1 {
		return 0, fmt.Errorf("netmodel: utilisation must be in [0,1], got %v", utilisation)
	}
	full := float64(s.Power().Total())
	return units.Watts(full * (m.IdleFraction + (1-m.IdleFraction)*utilisation)), nil
}

// DailySavings quantifies what offloading a daily bulk transfer to a DHL
// saves the network: the route would have run at full power for the
// transfer time and at idle power for the rest of the day; after
// offloading, an on/off-capable route sleeps entirely.
type DailySavings struct {
	Scenario Scenario
	// TransferTime the bulk volume would occupy the route.
	TransferTime units.Seconds
	// BusyEnergy + IdleEnergy: the day's energy with the bulk on the net.
	BusyEnergy, IdleEnergy units.Joules
	// Saved energy per day once the bulk moves to the DHL (the route
	// powers off; background traffic assumed rerouted).
	Saved units.Joules
}

// OffloadSavings computes the daily savings of moving bulkPerDay off route
// s, for a given proportionality model governing idle power.
func OffloadSavings(s Scenario, bulkPerDay units.Bytes, m ProportionalModel) (DailySavings, error) {
	if bulkPerDay <= 0 {
		return DailySavings{}, errors.New("netmodel: bulk volume must be positive")
	}
	if err := m.Validate(); err != nil {
		return DailySavings{}, err
	}
	t := TransferTime(bulkPerDay)
	if float64(t) > 86400 {
		return DailySavings{}, fmt.Errorf("netmodel: %v does not fit in a day on one link (%v)",
			bulkPerDay, t)
	}
	full := s.Power().Total()
	idlePower := units.Watts(float64(full) * m.IdleFraction)
	busy := units.Energy(full, t)
	idle := units.Energy(idlePower, units.Seconds(86400)-t)
	return DailySavings{
		Scenario:     s,
		TransferTime: t,
		BusyEnergy:   busy,
		IdleEnergy:   idle,
		Saved:        busy + idle,
	}, nil
}
