package netmodel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestLinkBandwidth(t *testing.T) {
	if LinkBandwidth() != 50*units.GBps {
		t.Fatalf("400Gb/s = %v, want 50GB/s", LinkBandwidth())
	}
	// §II-C: 29 PB takes 580k seconds (6.71 days).
	if got := TransferTime(29 * units.PB); got != 580000 {
		t.Fatalf("transfer time = %v, want 580000", float64(got))
	}
}

func TestReproFig2RouteEnergies(t *testing.T) {
	// Figure 2 (right): energy to move 29 PB over each route, in MJ.
	want := map[Scenario]float64{
		ScenarioA0: 13.92,
		ScenarioA1: 22.97,
		ScenarioA2: 50.05,
		ScenarioB:  174.75,
		ScenarioC:  299.45,
	}
	for s, mj := range want {
		got := s.Power().Energy(29 * units.PB).MJ()
		approx(t, "energy "+s.String(), got, mj, 0.001)
	}
}

func TestScenarioPowers(t *testing.T) {
	// The underlying powers that produce the Figure 2 energies.
	want := map[Scenario]float64{
		ScenarioA0: 24,
		ScenarioA1: 39.6,
		ScenarioA2: 86.29,
		ScenarioB:  301.29,
		ScenarioC:  516.29,
	}
	for s, w := range want {
		approx(t, "power "+s.String(), float64(s.Power().Total()), w, 0.001)
	}
}

func TestScenarioOrderingAndMetadata(t *testing.T) {
	list := Scenarios()
	if len(list) != 5 {
		t.Fatalf("scenario count = %d", len(list))
	}
	var prev units.Watts
	for _, s := range list {
		p := s.Power().Total()
		if p <= prev {
			t.Errorf("powers must strictly increase A0→C; %v ≤ %v at %v", p, prev, s)
		}
		prev = p
		if s.String() == "" || s.Describe() == "unknown" {
			t.Errorf("missing metadata for %v", s)
		}
	}
	if Scenario(99).String() != "Scenario(99)" || Scenario(99).Describe() != "unknown" {
		t.Error("unknown scenario metadata wrong")
	}
	if Scenario(99).Power().Total() != 0 {
		t.Error("unknown scenario power must be 0")
	}
	counts := map[Scenario]int{ScenarioA0: 0, ScenarioA1: 0, ScenarioA2: 1, ScenarioB: 3, ScenarioC: 5}
	for s, n := range counts {
		if s.SwitchCount() != n {
			t.Errorf("%v switch count = %d, want %d", s, s.SwitchCount(), n)
		}
	}
}

func TestSwitchPerPortPowers(t *testing.T) {
	approx(t, "QM9700 passive/port", float64(QM9700.PerPortPassive()), 23.34375, 1e-9)
	approx(t, "QM9700 active/port", float64(QM9700.PerPortActive()), 53.75, 1e-9)
	approx(t, "Cisco passive/port", float64(Cisco9364D.PerPortPassive()), 1324.0/64, 1e-9)
	approx(t, "Cisco active/port", float64(Cisco9364D.PerPortActive()), 3000.0/64, 1e-9)
}

func TestRoutePowerDecomposition(t *testing.T) {
	p := RoutePower{Transceivers: 2, NICs: 2, PassivePorts: 2, ActivePorts: 4}
	want := 2*12 + 2*19.8 + 2*747.0/32 + 4*1720.0/32
	approx(t, "total", float64(p.Total()), want, 1e-12)
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestRouteEfficiency(t *testing.T) {
	// A0 moving 29 PB: 29e6 GB / 13.92e6 J ≈ 2.08 GB/J — the number DHL's
	// ~70 GB/J embodied efficiency is compared against.
	eff := ScenarioA0.Power().Efficiency(29 * units.PB)
	approx(t, "A0 efficiency", eff, 29e6/13.92e6, 0.001)
}

func TestFatTreeValidation(t *testing.T) {
	if err := DefaultFatTree().Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	bad := FatTree{Aisles: 0, RacksPerAisle: 1, NodesPerRack: 1, Switch: QM9700}
	if err := bad.Validate(); err == nil {
		t.Error("zero aisles must be invalid")
	}
	tooWide := FatTree{Aisles: 1, RacksPerAisle: 1, NodesPerRack: 40, Switch: QM9700}
	if err := tooWide.Validate(); err == nil {
		t.Error("rack wider than switch radix must be invalid")
	}
	tooManyRacks := FatTree{Aisles: 1, RacksPerAisle: 40, NodesPerRack: 4, Switch: QM9700}
	if err := tooManyRacks.Validate(); err == nil {
		t.Error("aisle wider than switch radix must be invalid")
	}
}

func TestRouting(t *testing.T) {
	f := DefaultFatTree()
	src := NodeID{0, 0, 0}

	sameRack, err := f.RouteBetween(src, NodeID{0, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sameRack.SwitchCount() != 1 {
		t.Errorf("same-rack switches = %d, want 1", sameRack.SwitchCount())
	}

	sameAisle, err := f.RouteBetween(src, NodeID{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sameAisle.SwitchCount() != 3 {
		t.Errorf("same-aisle switches = %d, want 3", sameAisle.SwitchCount())
	}

	crossAisle, err := f.RouteBetween(src, NodeID{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if crossAisle.SwitchCount() != 5 {
		t.Errorf("cross-aisle switches = %d, want 5", crossAisle.SwitchCount())
	}
	// Core hop present only on cross-aisle routes.
	foundCore := false
	for _, h := range crossAisle.Hops {
		if h.Tier == TierCore {
			foundCore = true
			if h.Aisle != -1 {
				t.Error("core switch must not belong to an aisle")
			}
		}
	}
	if !foundCore {
		t.Error("cross-aisle route must traverse the core")
	}
}

func TestRoutingErrors(t *testing.T) {
	f := DefaultFatTree()
	if _, err := f.RouteBetween(NodeID{0, 0, 0}, NodeID{0, 0, 0}); err == nil {
		t.Error("same node must error")
	}
	if _, err := f.RouteBetween(NodeID{0, 0, 0}, NodeID{9, 0, 0}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.RouteBetween(NodeID{-1, 0, 0}, NodeID{0, 0, 1}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("err = %v", err)
	}
	bad := FatTree{}
	if _, err := bad.RouteBetween(NodeID{0, 0, 0}, NodeID{0, 0, 1}); err == nil {
		t.Error("invalid topology must error")
	}
}

func TestDerivedScenarioRoutesMatchHardcoded(t *testing.T) {
	// The port decompositions derived by actual fat-tree routing must agree
	// with Scenario.Power() — i.e. the Figure 2 energies are routing output,
	// not constants.
	derived := ScenarioRoutes()
	for _, s := range Scenarios() {
		if got, want := derived[s], s.Power(); got != want {
			t.Errorf("%v: derived %+v != scenario %+v", s, got, want)
		}
	}
}

func TestRoutePowerSymmetry(t *testing.T) {
	// Routing is symmetric in power terms.
	f := DefaultFatTree()
	a, b := NodeID{0, 1, 2}, NodeID{1, 3, 4}
	r1, err := f.RouteBetween(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.RouteBetween(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Power(false) != r2.Power(false) {
		t.Errorf("asymmetric route power: %+v vs %+v", r1.Power(false), r2.Power(false))
	}
}

func TestPortKindAndNodeStrings(t *testing.T) {
	if PortPassive.String() != "passive" || PortActive.String() != "active" {
		t.Error("port kind strings wrong")
	}
	if (NodeID{1, 2, 3}).String() != "n1.2.3" {
		t.Errorf("node string = %q", NodeID{1, 2, 3}.String())
	}
}

func TestDirectRoutePower(t *testing.T) {
	f := DefaultFatTree()
	d := f.DirectRoute(NodeID{0, 0, 0}, NodeID{0, 0, 1})
	if !d.Direct {
		t.Fatal("DirectRoute must mark Direct")
	}
	if got := d.Power(true); got != (RoutePower{Transceivers: 2}) {
		t.Errorf("minimal direct = %+v", got)
	}
	if got := d.Power(false); got != (RoutePower{NICs: 2}) {
		t.Errorf("NIC direct = %+v", got)
	}
}
