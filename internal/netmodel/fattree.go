package netmodel

import (
	"errors"
	"fmt"
)

// The paper's Figure 2 sketches a three-tier fat tree: nodes attach to
// tier-1 (top-of-rack) switches, racks aggregate through tier-2 switches per
// aisle, and a tier-3 core switch joins aisles. This file builds that
// topology explicitly and derives route power decompositions from it, so the
// scenario energies are the output of actual routing rather than hard-coded
// port counts.

// Tier identifies a switch layer.
type Tier int

const (
	TierToR  Tier = 1
	TierAgg  Tier = 2
	TierCore Tier = 3
)

// NodeID addresses a compute/storage node as (aisle, rack, slot).
type NodeID struct {
	Aisle, Rack, Slot int
}

// String implements fmt.Stringer.
func (n NodeID) String() string {
	return fmt.Sprintf("n%d.%d.%d", n.Aisle, n.Rack, n.Slot)
}

// FatTree is the Figure 2 topology.
type FatTree struct {
	Aisles        int // aisles joined by the core switch
	RacksPerAisle int // ToR switches per aisle
	NodesPerRack  int
	Switch        SwitchSpec
}

// DefaultFatTree matches Figure 2: 2 aisles × 4 racks × a handful of nodes.
func DefaultFatTree() FatTree {
	return FatTree{Aisles: 2, RacksPerAisle: 4, NodesPerRack: 8, Switch: QM9700}
}

// Validate checks the topology is well formed and the racks fit the switch
// radix (each ToR needs NodesPerRack downlinks + 1 uplink).
func (f FatTree) Validate() error {
	if f.Aisles < 1 || f.RacksPerAisle < 1 || f.NodesPerRack < 1 {
		return errors.New("netmodel: fat tree dimensions must be positive")
	}
	if f.NodesPerRack+1 > f.Switch.Ports {
		return fmt.Errorf("netmodel: %d nodes/rack exceeds %s radix %d",
			f.NodesPerRack, f.Switch.Name, f.Switch.Ports)
	}
	if f.RacksPerAisle+1 > f.Switch.Ports {
		return fmt.Errorf("netmodel: %d racks/aisle exceeds %s radix %d",
			f.RacksPerAisle, f.Switch.Name, f.Switch.Ports)
	}
	return nil
}

// Contains reports whether the node address exists in the topology.
func (f FatTree) Contains(n NodeID) bool {
	return n.Aisle >= 0 && n.Aisle < f.Aisles &&
		n.Rack >= 0 && n.Rack < f.RacksPerAisle &&
		n.Slot >= 0 && n.Slot < f.NodesPerRack
}

// Hop is one switch traversal on a route.
type Hop struct {
	Tier    Tier
	Aisle   int // -1 for the core switch
	Index   int // switch index within its tier
	In, Out PortKind
}

// Route is a path between two nodes through the tree.
type Route struct {
	Src, Dst NodeID
	Hops     []Hop
	Direct   bool // node-to-node cable, no switches
}

// ErrUnknownNode is returned for addresses outside the topology.
var ErrUnknownNode = errors.New("netmodel: node not in topology")

// RouteBetween computes the minimal route between two distinct nodes:
// same rack → via the shared ToR; same aisle → ToR/agg/ToR; different
// aisles → ToR/agg/core/agg/ToR. Node↔ToR links are passive, everything
// above is active.
func (f FatTree) RouteBetween(src, dst NodeID) (Route, error) {
	if err := f.Validate(); err != nil {
		return Route{}, err
	}
	if !f.Contains(src) {
		return Route{}, fmt.Errorf("%w: %v", ErrUnknownNode, src)
	}
	if !f.Contains(dst) {
		return Route{}, fmt.Errorf("%w: %v", ErrUnknownNode, dst)
	}
	if src == dst {
		return Route{}, errors.New("netmodel: src and dst are the same node")
	}
	r := Route{Src: src, Dst: dst}
	switch {
	case src.Aisle == dst.Aisle && src.Rack == dst.Rack:
		// One ToR, both links passive.
		r.Hops = []Hop{{Tier: TierToR, Aisle: src.Aisle, Index: src.Rack,
			In: PortPassive, Out: PortPassive}}
	case src.Aisle == dst.Aisle:
		// ToR up (passive in, active out), aisle aggregation (active), ToR
		// down (active in, passive out).
		r.Hops = []Hop{
			{Tier: TierToR, Aisle: src.Aisle, Index: src.Rack, In: PortPassive, Out: PortActive},
			{Tier: TierAgg, Aisle: src.Aisle, Index: 0, In: PortActive, Out: PortActive},
			{Tier: TierToR, Aisle: dst.Aisle, Index: dst.Rack, In: PortActive, Out: PortPassive},
		}
	default:
		r.Hops = []Hop{
			{Tier: TierToR, Aisle: src.Aisle, Index: src.Rack, In: PortPassive, Out: PortActive},
			{Tier: TierAgg, Aisle: src.Aisle, Index: 0, In: PortActive, Out: PortActive},
			{Tier: TierCore, Aisle: -1, Index: 0, In: PortActive, Out: PortActive},
			{Tier: TierAgg, Aisle: dst.Aisle, Index: 0, In: PortActive, Out: PortActive},
			{Tier: TierToR, Aisle: dst.Aisle, Index: dst.Rack, In: PortActive, Out: PortPassive},
		}
	}
	return r, nil
}

// DirectRoute returns a switchless point-to-point route (scenarios A0/A1).
func (f FatTree) DirectRoute(src, dst NodeID) Route {
	return Route{Src: src, Dst: dst, Direct: true}
}

// Power derives the route's power decomposition. Direct routes are charged
// either bare transceivers (minimal=true, scenario A0) or NIC pairs
// (scenario A1); switched routes are charged NIC pairs plus each traversed
// port at its cabling class.
func (r Route) Power(minimal bool) RoutePower {
	if r.Direct {
		if minimal {
			return RoutePower{Transceivers: 2}
		}
		return RoutePower{NICs: 2}
	}
	p := RoutePower{NICs: 2}
	for _, h := range r.Hops {
		for _, k := range [2]PortKind{h.In, h.Out} {
			if k == PortPassive {
				p.PassivePorts++
			} else {
				p.ActivePorts++
			}
		}
	}
	return p
}

// SwitchCount is the number of switches on the route.
func (r Route) SwitchCount() int { return len(r.Hops) }

// ScenarioRoutes derives the paper's five scenarios from the default
// topology: A0/A1 direct, A2 same-rack, B same-aisle different-rack,
// C different-aisle. It panics only on programming error (the default
// topology is valid by construction).
func ScenarioRoutes() map[Scenario]RoutePower {
	f := DefaultFatTree()
	storageNode := NodeID{Aisle: 0, Rack: 0, Slot: 0}
	sameRack := NodeID{Aisle: 0, Rack: 0, Slot: 1}
	otherRack := NodeID{Aisle: 0, Rack: 2, Slot: 0}
	otherAisle := NodeID{Aisle: 1, Rack: 1, Slot: 0}

	mustRoute := func(dst NodeID) Route {
		r, err := f.RouteBetween(storageNode, dst)
		if err != nil {
			panic(err)
		}
		return r
	}
	return map[Scenario]RoutePower{
		ScenarioA0: f.DirectRoute(storageNode, sameRack).Power(true),
		ScenarioA1: f.DirectRoute(storageNode, sameRack).Power(false),
		ScenarioA2: mustRoute(sameRack).Power(false),
		ScenarioB:  mustRoute(otherRack).Power(false),
		ScenarioC:  mustRoute(otherAisle).Power(false),
	}
}
