package netmodel

import (
	"testing"

	"repro/internal/units"
)

func TestProportionalModelValidate(t *testing.T) {
	if (ProportionalModel{IdleFraction: -0.1}).Validate() == nil {
		t.Error("negative idle fraction must be invalid")
	}
	if (ProportionalModel{IdleFraction: 1.1}).Validate() == nil {
		t.Error("idle fraction > 1 must be invalid")
	}
	if TodayProportional.Validate() != nil || IdealProportional.Validate() != nil {
		t.Error("catalogue models must validate")
	}
}

func TestProportionalPower(t *testing.T) {
	full := ScenarioC.Power().Total()
	// At full utilisation every model draws full power.
	for _, m := range []ProportionalModel{TodayProportional, IdealProportional} {
		p, err := m.Power(ScenarioC, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p != full {
			t.Errorf("full-util power = %v, want %v", p, full)
		}
	}
	// Idle: today's gear burns 90 %, ideal burns nothing.
	p, err := TodayProportional.Power(ScenarioC, 0)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "today idle", float64(p), 0.9*float64(full), 1e-9)
	p, err = IdealProportional.Power(ScenarioC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("ideal idle = %v", p)
	}
	// Half utilisation interpolates linearly.
	p, err = IdealProportional.Power(ScenarioC, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "ideal half", float64(p), 0.5*float64(full), 1e-9)
	if _, err := IdealProportional.Power(ScenarioC, 1.5); err == nil {
		t.Error("utilisation > 1 must error")
	}
	if _, err := (ProportionalModel{IdleFraction: 2}).Power(ScenarioC, 0.5); err == nil {
		t.Error("invalid model must error")
	}
}

func TestOffloadSavings(t *testing.T) {
	// Meta's 4 PB/day of new data (Table I) over route C: 80 000 s busy.
	sv, err := OffloadSavings(ScenarioC, 4*units.PB, TodayProportional)
	if err != nil {
		t.Fatal(err)
	}
	if float64(sv.TransferTime) != 80000 {
		t.Errorf("transfer time = %v, want 80000 s", sv.TransferTime)
	}
	if sv.BusyEnergy <= 0 || sv.IdleEnergy <= 0 {
		t.Error("energies must be positive")
	}
	// Conventional gear: the idle 6400 s still burn 90 % power.
	approx(t, "idle energy", float64(sv.IdleEnergy), 0.9*516.2875*6400, 0.001)
	approx(t, "busy energy", float64(sv.BusyEnergy), 516.2875*80000, 0.001)
	if sv.Saved != sv.BusyEnergy+sv.IdleEnergy {
		t.Error("saved must equal the whole day's energy")
	}
	// With ideal proportionality the idle penalty vanishes, so offloading
	// saves strictly less.
	ideal, err := OffloadSavings(ScenarioC, 4*units.PB, IdealProportional)
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Saved >= sv.Saved {
		t.Error("ideal proportionality must shrink the offload savings")
	}
	if ideal.IdleEnergy != 0 {
		t.Errorf("ideal idle energy = %v", ideal.IdleEnergy)
	}
}

func TestOffloadSavingsErrors(t *testing.T) {
	if _, err := OffloadSavings(ScenarioC, 0, TodayProportional); err == nil {
		t.Error("zero volume must error")
	}
	// 29 PB takes 6.7 days on one link: does not fit in a day.
	if _, err := OffloadSavings(ScenarioC, 29*units.PB, TodayProportional); err == nil {
		t.Error("over-capacity volume must error")
	}
	if _, err := OffloadSavings(ScenarioC, units.PB, ProportionalModel{IdleFraction: 5}); err == nil {
		t.Error("invalid model must error")
	}
}
