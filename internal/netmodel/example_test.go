package netmodel_test

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/units"
)

// ExampleScenario_Power reproduces the §II-C route energies for 29 PB.
func ExampleScenario_Power() {
	for _, s := range netmodel.Scenarios() {
		p := s.Power()
		fmt.Printf("%-2s %6.2f W %7.2f MJ\n", s, float64(p.Total()),
			p.Energy(29*units.PB).MJ())
	}
	// Output:
	// A0  24.00 W   13.92 MJ
	// A1  39.60 W   22.97 MJ
	// A2  86.29 W   50.05 MJ
	// B  301.29 W  174.75 MJ
	// C  516.29 W  299.45 MJ
}

// ExampleTransferTime shows the paper's week-long 29 PB baseline.
func ExampleTransferTime() {
	t := netmodel.TransferTime(29 * units.PB)
	fmt.Printf("%.0f s (%.2f days)\n", float64(t), t.Days())
	// Output:
	// 580000 s (6.71 days)
}
