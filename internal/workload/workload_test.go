package workload

import (
	"math"
	"testing"

	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestTableICatalogue(t *testing.T) {
	ds := Datasets()
	if len(ds) != 11 {
		t.Fatalf("catalogue size = %d", len(ds))
	}
	if LAION5B.Size != 250*units.TB {
		t.Errorf("LAION size = %v", LAION5B.Size)
	}
	if MetaML29PB.Size != 29*units.PB || MetaML13PB.Size != 13*units.PB || MetaML3PB.Size != 3*units.PB {
		t.Error("Meta ML dataset sizes wrong")
	}
	if !LHCCMSDetector.Streaming() || LHCCMSDetector.Rate != 150*units.TBps {
		t.Errorf("LHC rate = %v", LHCCMSDetector.Rate)
	}
	if LAION5B.Streaming() {
		t.Error("LAION must not be streaming")
	}
	// Meta: 4 PB/day ≈ 46.3 GB/s.
	approx(t, "Meta daily rate", float64(MetaDaily.Rate), 4e15/86400, 1e-9)
	// YouTube-8M: 350k hours at 1 GiB/hour.
	approx(t, "YouTube-8M", float64(YouTube8M.Size), 350000*math.Pow(2, 30), 1e-9)
	for _, d := range ds {
		if d.String() == "" {
			t.Errorf("%s: empty String()", d.Name)
		}
		if d.Streaming() == (d.Size > 0) {
			t.Errorf("%s: exactly one of Size/Rate must be set", d.Name)
		}
	}
}

func TestTableIVModels(t *testing.T) {
	ms := Models()
	if len(ms) != 6 {
		t.Fatalf("model count = %d", len(ms))
	}
	// Table IV sizes at 32-bit params.
	approx(t, "GPT-3", float64(GPT3.Size()), 700e9, 1e-12)
	approx(t, "Jurassic-1", float64(Jurassic1.Size()), 712e9, 1e-12)
	approx(t, "Gopher", float64(Gopher.Size()), 1.12e12, 1e-12)
	approx(t, "M6-10T", float64(M610T.Size()), 40e12, 1e-12)
	approx(t, "Megatron-Turing", float64(MegatronNLG.Size()), 4e12, 1e-12)
	approx(t, "DLRM 2022", float64(DLRM2022.Size()), 48e12, 1e-12)
	for _, m := range ms {
		if m.String() == "" {
			t.Errorf("%s: empty String()", m.Name)
		}
	}
}

func TestPhysicsBurst(t *testing.T) {
	tr, err := DefaultPhysicsBurst().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 10 {
		t.Fatalf("bursts = %d", len(tr))
	}
	// 2 s of 150 TB/s = 300 TB per burst.
	if tr[0].Size != 300*units.TB {
		t.Errorf("burst size = %v", tr[0].Size)
	}
	if tr.TotalBytes() != 3*units.PB {
		t.Errorf("total = %v", tr.TotalBytes())
	}
	if tr[3].At != 1800 {
		t.Errorf("arrival = %v", tr[3].At)
	}
	bad := DefaultPhysicsBurst()
	bad.Bursts = 0
	if _, err := bad.Generate(); err == nil {
		t.Error("zero bursts must error")
	}
}

func TestBulkBackup(t *testing.T) {
	tr, err := DefaultBulkBackup().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 7 {
		t.Fatalf("backups = %d", len(tr))
	}
	for _, x := range tr {
		if x.Size < 3.2*units.PB || x.Size > 4.8*units.PB {
			t.Errorf("backup size %v outside ±20%% of 4PB", x.Size)
		}
	}
	// Deterministic for a fixed seed.
	tr2, _ := DefaultBulkBackup().Generate()
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatal("backup trace not deterministic")
		}
	}
	bad := DefaultBulkBackup()
	bad.Jitter = 1
	if _, err := bad.Generate(); err == nil {
		t.Error("jitter ≥ 1 must error")
	}
	bad = DefaultBulkBackup()
	bad.MeanSize = 0
	if _, err := bad.Generate(); err == nil {
		t.Error("zero size must error")
	}
}

func TestMLEpochs(t *testing.T) {
	tr, err := DefaultMLEpochs().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) != 5 {
		t.Fatalf("epochs = %d", len(tr))
	}
	if tr.TotalBytes() != 5*29*units.PB {
		t.Errorf("total = %v", tr.TotalBytes())
	}
	bad := DefaultMLEpochs()
	bad.Models = 0
	if _, err := bad.Generate(); err == nil {
		t.Error("zero models must error")
	}
}

func TestTraceValidate(t *testing.T) {
	good := Trace{{At: 0, Size: units.GB}, {At: 5, Size: units.GB}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	outOfOrder := Trace{{At: 5, Size: units.GB}, {At: 0, Size: units.GB}}
	if err := outOfOrder.Validate(); err == nil {
		t.Error("out-of-order trace must be invalid")
	}
	zeroSize := Trace{{At: 0, Size: 0}}
	if err := zeroSize.Validate(); err == nil {
		t.Error("zero-size transfer must be invalid")
	}
}
