package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/units"
)

// Transfer is one bulk data-movement demand presented to a DHL or network.
type Transfer struct {
	// At is the arrival time of the demand.
	At units.Seconds
	// Size of the transfer.
	Size units.Bytes
	// Label describes the source (for reporting).
	Label string
}

// Trace is a time-ordered sequence of transfer demands.
type Trace []Transfer

// TotalBytes sums the trace's demand.
func (t Trace) TotalBytes() units.Bytes {
	var s units.Bytes
	for _, x := range t {
		s += x.Size
	}
	return s
}

// Validate checks time ordering and positive sizes.
func (t Trace) Validate() error {
	var prev units.Seconds
	for i, x := range t {
		if x.Size <= 0 {
			return fmt.Errorf("workload: transfer %d has non-positive size %v", i, x.Size)
		}
		if x.At < prev {
			return fmt.Errorf("workload: transfer %d out of order (%v after %v)", i, x.At, prev)
		}
		prev = x.At
	}
	return nil
}

// PhysicsBurst models the §II-D.1 experimental-physics setting: a detector
// producing Rate for BurstLen per experiment, with experiments every Period.
// Each burst becomes one bulk transfer of Rate × BurstLen (the unfiltered
// sensor capture the paper proposes to ship off-site).
type PhysicsBurst struct {
	Rate     units.BytesPerSecond
	BurstLen units.Seconds
	Period   units.Seconds
	Bursts   int
}

// DefaultPhysicsBurst captures 2 s of the CMS detector's 150 TB/s every
// 10 minutes, ten times.
func DefaultPhysicsBurst() PhysicsBurst {
	return PhysicsBurst{Rate: LHCCMSDetector.Rate, BurstLen: 2, Period: 600, Bursts: 10}
}

// Generate builds the trace.
func (p PhysicsBurst) Generate() (Trace, error) {
	if p.Rate <= 0 || p.BurstLen <= 0 || p.Period <= 0 || p.Bursts < 1 {
		return nil, errors.New("workload: physics burst parameters must be positive")
	}
	size := units.Bytes(float64(p.Rate) * float64(p.BurstLen))
	tr := make(Trace, p.Bursts)
	for i := range tr {
		tr[i] = Transfer{
			At:    units.Seconds(float64(i) * float64(p.Period)),
			Size:  size,
			Label: fmt.Sprintf("experiment-%d", i),
		}
	}
	return tr, nil
}

// BulkBackup models §II-D.2: periodic multi-PB backups in discrete chunks,
// with sizes jittered around a mean (backups grow with the live dataset).
type BulkBackup struct {
	MeanSize units.Bytes
	// Jitter is the ± fractional size variation.
	Jitter float64
	Period units.Seconds
	Count  int
	Seed   int64
}

// DefaultBulkBackup is a nightly 4 PB backup (Meta's daily creation rate,
// Table I) over a week, ±20 %.
func DefaultBulkBackup() BulkBackup {
	return BulkBackup{MeanSize: 4 * units.PB, Jitter: 0.2, Period: 86400, Count: 7, Seed: 1}
}

// Generate builds the trace deterministically from the seed.
func (b BulkBackup) Generate() (Trace, error) {
	return b.GenerateWith(rand.New(rand.NewSource(b.Seed)))
}

// GenerateWith builds the trace drawing jitter from an injected generator,
// for callers that thread one seeded *rand.Rand through a whole scenario.
// Passing rand.New(rand.NewSource(b.Seed)) reproduces Generate exactly.
func (b BulkBackup) GenerateWith(rng *rand.Rand) (Trace, error) {
	if rng == nil {
		return nil, errors.New("workload: nil random generator")
	}
	if b.MeanSize <= 0 || b.Period <= 0 || b.Count < 1 {
		return nil, errors.New("workload: backup parameters must be positive")
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		return nil, fmt.Errorf("workload: jitter must be in [0,1), got %v", b.Jitter)
	}
	tr := make(Trace, b.Count)
	for i := range tr {
		f := 1 + b.Jitter*(2*rng.Float64()-1)
		tr[i] = Transfer{
			At:    units.Seconds(float64(i) * float64(b.Period)),
			Size:  units.Bytes(float64(b.MeanSize) * f),
			Label: fmt.Sprintf("backup-%d", i),
		}
	}
	return tr, nil
}

// MLEpochs models §II-D.3: the same training dataset re-shipped once per
// model trained on it ("these same datasets must be used again and again to
// train a variety of different models").
type MLEpochs struct {
	Dataset units.Bytes
	// Models trained back-to-back.
	Models int
	// Gap between training runs.
	Gap units.Seconds
}

// DefaultMLEpochs ships the 29 PB dataset to 5 successive model trainings a
// day apart.
func DefaultMLEpochs() MLEpochs {
	return MLEpochs{Dataset: MetaML29PB.Size, Models: 5, Gap: 86400}
}

// Generate builds the trace.
func (m MLEpochs) Generate() (Trace, error) {
	if m.Dataset <= 0 || m.Models < 1 || m.Gap < 0 {
		return nil, errors.New("workload: ML epoch parameters must be positive")
	}
	tr := make(Trace, m.Models)
	for i := range tr {
		tr[i] = Transfer{
			At:    units.Seconds(float64(i) * float64(m.Gap)),
			Size:  m.Dataset,
			Label: fmt.Sprintf("model-%d", i),
		}
	}
	return tr, nil
}
