// Package workload provides the paper's dataset catalogue (Table I), its
// large-ML-model catalogue (Table IV), and synthetic workload generators for
// the three DHL application settings of §II-D: experimental physics bursts,
// data-centre bulk backups, and ML training ingest.
package workload

import (
	"fmt"

	"repro/internal/units"
)

// DatasetKind categorises Table I rows.
type DatasetKind string

// Dataset kinds from Table I.
const (
	KindImages   DatasetKind = "Images"
	KindVideos   DatasetKind = "Videos"
	KindNLP      DatasetKind = "NLP"
	KindWebCrawl DatasetKind = "Web Crawl"
	KindML       DatasetKind = "ML"
	KindGenomics DatasetKind = "Genomics"
	KindPhysics  DatasetKind = "Physics"
	KindBigData  DatasetKind = "BigData"
)

// Dataset is one Table I row: either a static dataset (Size > 0) or a data
// creation rate (Rate > 0).
type Dataset struct {
	Name string
	Kind DatasetKind
	// Size of a static dataset.
	Size units.Bytes
	// Rate of a data-creation source (bytes/second).
	Rate units.BytesPerSecond
}

// Streaming reports whether this entry is a creation-rate source.
func (d Dataset) Streaming() bool { return d.Rate > 0 }

// String summarises the entry.
func (d Dataset) String() string {
	if d.Streaming() {
		return fmt.Sprintf("%s (%s, %v)", d.Name, d.Kind, d.Rate)
	}
	return fmt.Sprintf("%s (%s, %v)", d.Name, d.Kind, d.Size)
}

// Table I catalogue. Rates given per day in the paper are converted to
// bytes/second; YouTube's daily videos use the paper's 1 h ≈ 1 GiB
// conversion (0.7–1.44 PB/day; we carry the midpoint).
var (
	LAION5B        = Dataset{Name: "LAION-5B", Kind: KindImages, Size: 250 * units.TB}
	YouTube8M      = Dataset{Name: "YouTube-8M", Kind: KindVideos, Size: units.Bytes(350_000) * units.GiB}
	MassiveText    = Dataset{Name: "Massive Text", Kind: KindNLP, Size: 10.25 * units.TB}
	CommonCrawl    = Dataset{Name: "Common Crawl", Kind: KindWebCrawl, Size: 9 * units.PB}
	MetaML29PB     = Dataset{Name: "Meta ML (largest)", Kind: KindML, Size: 29 * units.PB}
	MetaML13PB     = Dataset{Name: "Meta ML (mid)", Kind: KindML, Size: 13 * units.PB}
	MetaML3PB      = Dataset{Name: "Meta ML (small)", Kind: KindML, Size: 3 * units.PB}
	NIHGenomes     = Dataset{Name: "NIH 100k Genomes", Kind: KindGenomics, Size: 17 * units.PB}
	LHCCMSDetector = Dataset{Name: "LHC CMS Detector", Kind: KindPhysics, Rate: 150 * units.TBps}
	MetaDaily      = Dataset{Name: "Meta new daily data", Kind: KindBigData, Rate: units.BytesPerSecond(float64(4*units.PB) / 86400)}
	YouTubeDaily   = Dataset{Name: "YouTube new daily videos", Kind: KindVideos, Rate: units.BytesPerSecond(float64(1.07*units.PB) / 86400)}
)

// Datasets returns the Table I catalogue.
func Datasets() []Dataset {
	return []Dataset{LAION5B, YouTube8M, MassiveText, CommonCrawl, MetaML29PB,
		MetaML13PB, MetaML3PB, NIHGenomes, LHCCMSDetector, MetaDaily, YouTubeDaily}
}

// BytesPerParam is the paper's Table IV conversion: one parameter = 32 bits.
const BytesPerParam = 4

// Model is one Table IV row.
type Model struct {
	Name   string
	Params float64 // parameter count
	From   string
	Year   int
}

// Size is the model's storage footprint at 32-bit parameters.
func (m Model) Size() units.Bytes { return units.Bytes(m.Params * BytesPerParam) }

// String summarises the model.
func (m Model) String() string {
	return fmt.Sprintf("%s (%s %d, %.3g params, %v)", m.Name, m.From, m.Year, m.Params, m.Size())
}

// Table IV catalogue.
var (
	GPT3        = Model{Name: "GPT-3", Params: 175e9, From: "OpenAI", Year: 2020}
	Jurassic1   = Model{Name: "Jurassic-1", Params: 178e9, From: "A21 labs", Year: 2021}
	Gopher      = Model{Name: "Gopher", Params: 280e9, From: "Google", Year: 2021}
	M610T       = Model{Name: "M6-10T", Params: 10e12, From: "Alibaba", Year: 2021}
	MegatronNLG = Model{Name: "Megatron-Turing NLG", Params: 1e12, From: "MSFT&NVDA", Year: 2022}
	DLRM2022    = Model{Name: "DLRM 2022", Params: 12e12, From: "Meta", Year: 2022}
)

// Models returns the Table IV catalogue.
func Models() []Model {
	return []Model{GPT3, Jurassic1, Gopher, M610T, MegatronNLG, DLRM2022}
}
