package track

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirection(t *testing.T) {
	if Outbound.String() != "outbound" || Inbound.String() != "inbound" {
		t.Error("direction strings wrong")
	}
	if Outbound.Opposite() != Inbound || Inbound.Opposite() != Outbound {
		t.Error("Opposite wrong")
	}
}

func TestRailModeString(t *testing.T) {
	if SingleRail.String() != "single-rail" || DualRail.String() != "dual-rail" {
		t.Error("mode strings wrong")
	}
}

func TestSingleRailExclusive(t *testing.T) {
	r := NewRail(SingleRail)
	if !r.Free(Outbound) || !r.Free(Inbound) {
		t.Fatal("fresh rail must be free")
	}
	if err := r.Reserve(1, Outbound); err != nil {
		t.Fatal(err)
	}
	// Single rail: the inbound direction is blocked too.
	if err := r.Reserve(2, Inbound); !errors.Is(err, ErrRailBusy) {
		t.Errorf("err = %v, want ErrRailBusy", err)
	}
	if r.Occupant(Inbound) != 1 {
		t.Errorf("occupant = %v", r.Occupant(Inbound))
	}
	if err := r.Release(2, Outbound); !errors.Is(err, ErrRailIdle) {
		t.Errorf("wrong-cart release err = %v", err)
	}
	if err := r.Release(1, Outbound); err != nil {
		t.Fatal(err)
	}
	if !r.Free(Inbound) {
		t.Error("released rail must be free")
	}
}

func TestDualRailConcurrent(t *testing.T) {
	r := NewRail(DualRail)
	if err := r.Reserve(1, Outbound); err != nil {
		t.Fatal(err)
	}
	// Dual rail: inbound proceeds concurrently.
	if err := r.Reserve(2, Inbound); err != nil {
		t.Fatalf("dual rail inbound blocked: %v", err)
	}
	if err := r.Reserve(3, Outbound); !errors.Is(err, ErrRailBusy) {
		t.Errorf("second outbound err = %v", err)
	}
	if err := r.Release(1, Outbound); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(2, Inbound); err != nil {
		t.Fatal(err)
	}
}

func TestDockBankValidation(t *testing.T) {
	if _, err := NewDockBank(0); err == nil {
		t.Error("zero stations must be rejected")
	}
}

func TestDockLifecycle(t *testing.T) {
	b, err := NewDockBank(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stations() != 2 || b.FreeStations() != 2 {
		t.Fatalf("stations=%d free=%d", b.Stations(), b.FreeStations())
	}
	st, err := b.BeginDock(1)
	if err != nil {
		t.Fatal(err)
	}
	if st != 0 {
		t.Errorf("station = %d, want 0", st)
	}
	if !b.Blocked() {
		t.Error("mid-dock must block the rail")
	}
	if b.Docked(1) {
		t.Error("cart mid-dock is not yet docked")
	}
	// A second dock while blocked fails (paper: no shuttling past mid-dock).
	if _, err := b.BeginDock(2); !errors.Is(err, ErrDockBlocked) {
		t.Errorf("err = %v", err)
	}
	if err := b.EndDock(1); err != nil {
		t.Fatal(err)
	}
	if b.Blocked() || !b.Docked(1) {
		t.Error("EndDock must unblock and mark docked")
	}
	if b.FreeStations() != 1 {
		t.Errorf("free = %d", b.FreeStations())
	}
	// Fill the second station, then the bank is full.
	if _, err := b.BeginDock(2); err != nil {
		t.Fatal(err)
	}
	if err := b.EndDock(2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.BeginDock(3); !errors.Is(err, ErrDockFull) {
		t.Errorf("err = %v", err)
	}
	if got := b.Occupants(); len(got) != 2 {
		t.Errorf("occupants = %v", got)
	}
}

func TestDockErrors(t *testing.T) {
	b, _ := NewDockBank(2)
	if err := b.EndDock(1); !errors.Is(err, ErrNotDocked) {
		t.Errorf("err = %v", err)
	}
	if err := b.BeginUndock(1); !errors.Is(err, ErrNotDocked) {
		t.Errorf("err = %v", err)
	}
	if err := b.EndUndock(1); !errors.Is(err, ErrNotDocked) {
		t.Errorf("err = %v", err)
	}
	b.BeginDock(1)
	// Duplicate dock of the same cart.
	if err := b.EndDock(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.BeginDock(1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
	// EndDock with wrong cart.
	b.BeginDock(2)
	if err := b.EndDock(3); !errors.Is(err, ErrNotDocked) {
		t.Errorf("err = %v", err)
	}
	b.EndDock(2)
}

func TestUndockLifecycle(t *testing.T) {
	b, _ := NewDockBank(1)
	b.BeginDock(7)
	b.EndDock(7)
	if err := b.BeginUndock(7); err != nil {
		t.Fatal(err)
	}
	if !b.Blocked() {
		t.Error("mid-undock must block")
	}
	// Undock while mid-undock fails.
	if err := b.BeginUndock(7); !errors.Is(err, ErrDockBlocked) {
		t.Errorf("err = %v", err)
	}
	if err := b.EndUndock(8); !errors.Is(err, ErrNotDocked) {
		t.Errorf("err = %v", err)
	}
	if err := b.EndUndock(7); err != nil {
		t.Fatal(err)
	}
	if b.Blocked() || b.FreeStations() != 1 {
		t.Error("EndUndock must free the station")
	}
}

func TestLibrary(t *testing.T) {
	l := NewLibrary(2)
	if err := l.Store(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Store(1); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
	if err := l.Store(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Store(3); !errors.Is(err, ErrLibraryFull) {
		t.Errorf("err = %v", err)
	}
	if !l.Holds(1) || l.Holds(3) {
		t.Error("Holds wrong")
	}
	if l.Count() != 2 {
		t.Errorf("count = %d", l.Count())
	}
	if err := l.Remove(3); !errors.Is(err, ErrNotInLibrary) {
		t.Errorf("err = %v", err)
	}
	if err := l.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Store(3); err != nil {
		t.Fatalf("slot should be free after removal: %v", err)
	}
}

func TestUnboundedLibrary(t *testing.T) {
	l := NewLibrary(0)
	for i := 0; i < 1000; i++ {
		if err := l.Store(CartID(i)); err != nil {
			t.Fatalf("unbounded library rejected cart %d: %v", i, err)
		}
	}
	if l.Count() != 1000 {
		t.Errorf("count = %d", l.Count())
	}
}

// TestDockInvariantProperty drives a random legal operation sequence and
// checks structural invariants: never more occupants than stations, blocked
// iff a mid-dock cart exists, and every docked cart is unique.
func TestDockInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewDockBank(3)
		if err != nil {
			return false
		}
		next := CartID(0)
		var docked []CartID
		var mid CartID = NoCart
		var midIsDocking bool
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0: // begin dock
				if _, err := b.BeginDock(next); err == nil {
					if mid != NoCart {
						return false // must have been blocked
					}
					mid = next
					midIsDocking = true
					next++
				}
			case 1: // end dock
				if mid != NoCart && midIsDocking && b.EndDock(mid) == nil {
					docked = append(docked, mid)
					mid = NoCart
				}
			case 2: // begin undock
				if len(docked) > 0 && mid == NoCart {
					id := docked[rng.Intn(len(docked))]
					if err := b.BeginUndock(id); err != nil {
						return false
					}
					mid = id
					midIsDocking = false
				}
			case 3: // end undock
				if mid != NoCart && !midIsDocking && b.EndUndock(mid) == nil {
					for i, d := range docked {
						if d == mid {
							docked = append(docked[:i], docked[i+1:]...)
							break
						}
					}
					mid = NoCart
				}
			}
			if len(b.Occupants()) > b.Stations() {
				return false
			}
			if b.Blocked() != (mid != NoCart) {
				return false
			}
			seen := map[CartID]bool{}
			for _, id := range b.Occupants() {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
