// Package track models the physical DHL plant of §III-B as guarded state
// machines: the rail(s) between the library and an endpoint, the endpoint's
// bank of vertically-stacked docking stations, and the library's storage
// slots. The event-driven system simulation (internal/dhlsys) drives these
// resources; they enforce the paper's structural rules — one cart in transit
// per rail direction, one cart per docking station, and no shuttling past a
// station while a cart is mid-dock.
package track

import (
	"errors"
	"fmt"

	"repro/internal/telemetry"
)

// CartID identifies a cart within a DHL deployment.
type CartID int

// NoCart is the absent-cart sentinel.
const NoCart CartID = -1

// Direction of travel on the DHL.
type Direction int

const (
	// Outbound: library → endpoint.
	Outbound Direction = iota
	// Inbound: endpoint → library.
	Inbound
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Outbound {
		return "outbound"
	}
	return "inbound"
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	if d == Outbound {
		return Inbound
	}
	return Outbound
}

// RailMode selects the §VI track design alternatives.
type RailMode int

const (
	// SingleRail is the paper's primary design: one bidirectional rail with
	// LIMs at each end.
	SingleRail RailMode = iota
	// DualRail is the §VI alternative: one outbound and one inbound rail,
	// enabling simultaneous shuttling in both directions.
	DualRail
)

// String implements fmt.Stringer.
func (m RailMode) String() string {
	if m == SingleRail {
		return "single-rail"
	}
	return "dual-rail"
}

// Errors returned by resource operations.
var (
	ErrRailBusy      = errors.New("track: rail occupied")
	ErrRailBlocked   = errors.New("track: rail direction blocked by a fault")
	ErrRailIdle      = errors.New("track: rail not occupied by that cart")
	ErrDockFull      = errors.New("track: all docking stations occupied")
	ErrDockBlocked   = errors.New("track: a cart is mid-dock, rail blocked")
	ErrNotDocked     = errors.New("track: cart not docked here")
	ErrStationFailed = errors.New("track: docking station out of service")
	ErrBadStation    = errors.New("track: no such docking station")
	ErrLibraryFull   = errors.New("track: library has no free slot")
	ErrNotInLibrary  = errors.New("track: cart not stored in library")
	ErrDuplicate     = errors.New("track: cart already present")
)

// Rail is the transit resource. In SingleRail mode both directions share one
// reservation; in DualRail mode each direction has its own. A rail
// direction can additionally be blocked by a fault (derailed cart, debris
// on the segment): blocked directions refuse new reservations until
// unblocked, independent of occupancy.
type Rail struct {
	Mode     RailMode
	occupant [2]CartID // per direction; SingleRail uses index 0 only
	blocked  [2]int    // active blockage count per direction slot

	// Telemetry counters (nil by default — uninstrumented rails pay only
	// nil checks).
	telReservations *telemetry.Counter
	telBlocks       *telemetry.Counter
}

// NewRail builds an empty rail.
func NewRail(mode RailMode) *Rail {
	return &Rail{Mode: mode, occupant: [2]CartID{NoCart, NoCart}}
}

// Instrument attaches plant-level counters to the rail:
// dhl_rail_reservations_total (successful Reserve calls) and
// dhl_rail_blocks_total (fault blockages). A nil registry is a no-op.
func (r *Rail) Instrument(reg *telemetry.Registry) {
	r.telReservations = reg.Counter("dhl_rail_reservations_total")
	r.telBlocks = reg.Counter("dhl_rail_blocks_total")
}

func (r *Rail) slot(d Direction) *CartID {
	if r.Mode == SingleRail {
		return &r.occupant[0]
	}
	return &r.occupant[int(d)]
}

func (r *Rail) blockSlot(d Direction) *int {
	if r.Mode == SingleRail {
		return &r.blocked[0]
	}
	return &r.blocked[int(d)]
}

// Block marks direction d out of service (fault injection). Blockages
// nest: each Block needs a matching Unblock. On a single rail, blocking
// either direction blocks the whole rail — there is only one track.
func (r *Rail) Block(d Direction) {
	*r.blockSlot(d)++
	r.telBlocks.Inc()
}

// Unblock clears one blockage on direction d.
func (r *Rail) Unblock(d Direction) {
	if s := r.blockSlot(d); *s > 0 {
		*s--
	}
}

// Blocked reports whether direction d is out of service.
func (r *Rail) Blocked(d Direction) bool { return *r.blockSlot(d) > 0 }

// Reserve claims the rail for a cart travelling in direction d. Blocked
// directions cannot be reserved.
func (r *Rail) Reserve(id CartID, d Direction) error {
	if r.Blocked(d) {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: %v rail blocked by a fault", ErrRailBlocked, d)
	}
	s := r.slot(d)
	if *s != NoCart {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d holds the %v rail", ErrRailBusy, *s, d)
	}
	*s = id
	r.telReservations.Inc()
	return nil
}

// Release frees the rail after cart id completes its transit.
func (r *Rail) Release(id CartID, d Direction) error {
	s := r.slot(d)
	if *s != id {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d (holder %d)", ErrRailIdle, id, *s)
	}
	*s = NoCart
	return nil
}

// Free reports whether direction d can be reserved.
func (r *Rail) Free(d Direction) bool { return *r.slot(d) == NoCart && !r.Blocked(d) }

// Occupant returns the cart holding direction d, or NoCart.
func (r *Rail) Occupant(d Direction) CartID { return *r.slot(d) }

// DockBank is the endpoint's set of vertically-stacked docking stations
// (§III-B.5). While a cart is in the middle of docking or undocking, the
// rail past the bank is blocked ("it is not possible to shuttle another cart
// past the cart being docked").
type DockBank struct {
	stations []CartID
	// failed marks stations out of service (connector damage, fault
	// injection); a failed station accepts no new docks until repaired.
	failed []bool
	// midDock is the cart currently transitioning (docking or undocking),
	// blocking the rail through the bank; NoCart when clear.
	midDock CartID

	// Telemetry counters (nil by default).
	telDocks    *telemetry.Counter
	telUndocks  *telemetry.Counter
	telFailures *telemetry.Counter
	telRepairs  *telemetry.Counter
}

// NewDockBank builds a bank of n empty stations.
func NewDockBank(n int) (*DockBank, error) {
	if n < 1 {
		return nil, errors.New("track: dock bank needs ≥1 station")
	}
	s := make([]CartID, n)
	for i := range s {
		s[i] = NoCart
	}
	return &DockBank{stations: s, failed: make([]bool, n), midDock: NoCart}, nil
}

// Instrument attaches plant-level counters to the bank:
// dhl_dock_docks_total / dhl_dock_undocks_total (completed operations) and
// dhl_dock_station_failures_total / dhl_dock_station_repairs_total (fault
// injection). A nil registry is a no-op.
func (b *DockBank) Instrument(reg *telemetry.Registry) {
	b.telDocks = reg.Counter("dhl_dock_docks_total")
	b.telUndocks = reg.Counter("dhl_dock_undocks_total")
	b.telFailures = reg.Counter("dhl_dock_station_failures_total")
	b.telRepairs = reg.Counter("dhl_dock_station_repairs_total")
}

// Stations returns the number of docking stations.
func (b *DockBank) Stations() int { return len(b.stations) }

// HasFree reports whether at least one in-service station is unoccupied —
// the hot-path form of FreeStations() > 0, exiting at the first free slot
// instead of counting the whole bank on every queue retry.
func (b *DockBank) HasFree() bool {
	for i, s := range b.stations {
		if s == NoCart && !b.failed[i] {
			return true
		}
	}
	return false
}

// FreeStations returns how many in-service stations are unoccupied.
func (b *DockBank) FreeStations() int {
	n := 0
	for i, s := range b.stations {
		if s == NoCart && !b.failed[i] {
			n++
		}
	}
	return n
}

// FailStation takes station i out of service (fault injection). An
// occupant, if any, remains docked — it can still undock, but the station
// accepts no new carts until RepairStation. The occupant (or NoCart) is
// returned so the caller can flag its connector for service.
func (b *DockBank) FailStation(i int) (CartID, error) {
	if i < 0 || i >= len(b.stations) {
		return NoCart, fmt.Errorf("%w: %d of %d", ErrBadStation, i, len(b.stations))
	}
	b.failed[i] = true
	b.telFailures.Inc()
	return b.stations[i], nil
}

// RepairStation returns station i to service.
func (b *DockBank) RepairStation(i int) error {
	if i < 0 || i >= len(b.stations) {
		return fmt.Errorf("%w: %d of %d", ErrBadStation, i, len(b.stations))
	}
	b.failed[i] = false
	b.telRepairs.Inc()
	return nil
}

// StationFailed reports whether station i is out of service.
func (b *DockBank) StationFailed(i int) bool {
	return i >= 0 && i < len(b.stations) && b.failed[i]
}

// FailedStations returns how many stations are out of service.
func (b *DockBank) FailedStations() int {
	n := 0
	for _, f := range b.failed {
		if f {
			n++
		}
	}
	return n
}

// Blocked reports whether a mid-dock cart is blocking through traffic.
func (b *DockBank) Blocked() bool { return b.midDock != NoCart }

// BeginDock starts docking cart id into a free station. The station index is
// returned; the rail through the bank is blocked until EndDock.
func (b *DockBank) BeginDock(id CartID) (int, error) {
	if b.midDock != NoCart {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return 0, fmt.Errorf("%w: cart %d mid-dock", ErrDockBlocked, b.midDock)
	}
	for _, s := range b.stations {
		if s == id {
			//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
			return 0, fmt.Errorf("%w: cart %d", ErrDuplicate, id)
		}
	}
	for i, s := range b.stations {
		if s == NoCart && !b.failed[i] {
			b.stations[i] = id
			b.midDock = id
			return i, nil
		}
	}
	if b.FailedStations() > 0 {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return 0, fmt.Errorf("%w: %d in-service stations occupied, %d failed",
			ErrDockFull, len(b.stations)-b.FailedStations(), b.FailedStations())
	}
	return 0, ErrDockFull
}

// EndDock completes the docking of cart id, unblocking the rail.
func (b *DockBank) EndDock(id CartID) error {
	if b.midDock != id {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d (mid-dock %d)", ErrNotDocked, id, b.midDock)
	}
	b.midDock = NoCart
	b.telDocks.Inc()
	return nil
}

// BeginUndock starts ejecting cart id from its station; the rail is blocked
// until EndUndock.
func (b *DockBank) BeginUndock(id CartID) error {
	if b.midDock != NoCart {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d mid-dock", ErrDockBlocked, b.midDock)
	}
	for _, s := range b.stations {
		if s == id {
			b.midDock = id
			return nil
		}
	}
	//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
	return fmt.Errorf("%w: cart %d", ErrNotDocked, id)
}

// EndUndock completes the ejection, freeing the station and the rail.
func (b *DockBank) EndUndock(id CartID) error {
	if b.midDock != id {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d (mid-dock %d)", ErrNotDocked, id, b.midDock)
	}
	for i, s := range b.stations {
		if s == id {
			b.stations[i] = NoCart
			b.midDock = NoCart
			b.telUndocks.Inc()
			return nil
		}
	}
	//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
	return fmt.Errorf("%w: cart %d vanished mid-undock", ErrNotDocked, id)
}

// Docked reports whether cart id is fully docked (present and not mid-dock).
func (b *DockBank) Docked(id CartID) bool {
	if b.midDock == id {
		return false
	}
	for _, s := range b.stations {
		if s == id {
			return true
		}
	}
	return false
}

// Occupants returns the carts currently in stations (including mid-dock).
func (b *DockBank) Occupants() []CartID {
	var out []CartID
	for _, s := range b.stations {
		if s != NoCart {
			out = append(out, s)
		}
	}
	return out
}

// Library is the cold-storage endpoint (§III-B.6): docking stations that
// lift carts off the main track, not connected to servers.
type Library struct {
	slots map[CartID]bool
	cap   int // 0 = unbounded
}

// NewLibrary builds a library with the given slot capacity (0 = unbounded,
// matching the paper's "easy expansion" property).
func NewLibrary(capacity int) *Library {
	return &Library{slots: make(map[CartID]bool), cap: capacity}
}

// Store parks a cart in the library.
func (l *Library) Store(id CartID) error {
	if l.slots[id] {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d", ErrDuplicate, id)
	}
	if l.cap > 0 && len(l.slots) >= l.cap {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: %d slots", ErrLibraryFull, l.cap)
	}
	//dhllint:allow allocflow -- bounded occupancy set: the fleet's cart IDs cycle through existing buckets after warm-up
	l.slots[id] = true
	return nil
}

// Remove takes a cart out of the library for launch.
func (l *Library) Remove(id CartID) error {
	if !l.slots[id] {
		//dhllint:allow allocflow -- state-machine guard: error returns fire on contract violations, never on the steady launch loop
		return fmt.Errorf("%w: cart %d", ErrNotInLibrary, id)
	}
	delete(l.slots, id)
	return nil
}

// Holds reports whether the cart is parked here.
func (l *Library) Holds(id CartID) bool { return l.slots[id] }

// Count returns the number of stored carts.
func (l *Library) Count() int { return len(l.slots) }
