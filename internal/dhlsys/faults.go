package dhlsys

import (
	"fmt"
	"strconv"

	"repro/internal/faults"
	"repro/internal/physics"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// This file applies the fault taxonomy (internal/faults) to the running
// plant and implements the degraded-mode physics the recovery policies rely
// on. Faults arrive on the event loop in deterministic order; every handler
// mutates only simulation state, so a fixed script replays byte-identically.

// faultTarget adapts System to faults.Target without exporting the
// mutation entry points.
type faultTarget struct{ s *System }

// Inject implements faults.Target.
func (t faultTarget) Inject(f faults.Fault) { t.s.injectFault(f) }

// Recover implements faults.Target.
func (t faultTarget) Recover(f faults.Fault) { t.s.recoverFault(f) }

// injectFault strikes one fault against the plant.
func (s *System) injectFault(f faults.Fault) {
	switch f.Kind {
	case faults.SSDFailure:
		c, ok := s.carts[f.Cart]
		if !ok || f.Device < 0 || f.Device >= len(c.Array.Devices) {
			return
		}
		if !c.Array.Devices[f.Device].Failed() {
			c.Array.Devices[f.Device].Fail()
			s.stats.FailuresSeen++
		}
	case faults.CartStall:
		if f.Cart == track.NoCart {
			// Debris on the segment: the direction refuses new
			// reservations until cleared, and any cart mid-transit that
			// way is delayed by the clearing time.
			s.rail.Block(f.Direction)
			if occ := s.rail.Occupant(f.Direction); occ != track.NoCart {
				s.stallCart(s.carts[occ], f.Duration)
			}
			return
		}
		// A specific cart stalls: its arrival slips by the clearing time.
		// The rail reservation it already holds keeps the segment closed
		// to followers, so no extra blocking is needed.
		s.stallCart(s.carts[f.Cart], f.Duration)
	case faults.VacuumLeak:
		s.leaks = append(s.leaks, f.Pressure)
	case faults.DockFailure:
		occ, err := s.dock.FailStation(f.Station)
		if err != nil {
			return
		}
		if occ != track.NoCart {
			// The occupant's connector mated with a now-failed station;
			// flag it for forced service at the library.
			s.needsService[occ] = true
		}
	case faults.LIMPowerLoss:
		s.limDown[int(f.Direction)]++
	}
}

// recoverFault repairs one fault's outage.
func (s *System) recoverFault(f faults.Fault) {
	switch f.Kind {
	case faults.SSDFailure:
		// Scripted SSD faults with a repair window restore the device;
		// window-less ones stay dead until library service.
		if c, ok := s.carts[f.Cart]; ok && f.Device >= 0 && f.Device < len(c.Array.Devices) {
			if c.Array.Devices[f.Device].Failed() {
				c.Array.Devices[f.Device].Repair()
			}
		}
	case faults.CartStall:
		if f.Cart == track.NoCart {
			s.rail.Unblock(f.Direction)
		}
	case faults.VacuumLeak:
		for i, p := range s.leaks {
			//dhllint:allow floateq -- removing the exact value this fault's injection appended
			if p == f.Pressure {
				s.leaks = append(s.leaks[:i], s.leaks[i+1:]...)
				break
			}
		}
	case faults.DockFailure:
		if err := s.dock.RepairStation(f.Station); err != nil {
			return
		}
	case faults.LIMPowerLoss:
		if s.limDown[int(f.Direction)] > 0 {
			s.limDown[int(f.Direction)]--
		}
	}
	// Any repair may unblock queued Open/Close requests.
	s.retryWaiting()
}

// limUp reports whether the LIM serving launch direction d is energised.
func (s *System) limUp(d track.Direction) bool { return s.limDown[int(d)] == 0 }

// effectiveTube is the tube at the worst currently-open leak pressure (or
// nominal with no leaks open).
func (s *System) effectiveTube() physics.Tube {
	t := s.tube
	for _, p := range s.leaks {
		if p > t.Pressure {
			t.Pressure = p
		}
	}
	return t
}

// launchDynamics is one launch's physics, possibly degraded by a vacuum
// leak: cruise capped so drag stays within the recovery policy's margin of
// LIM thrust (internal/physics.DegradedCruiseSpeed).
type launchDynamics struct {
	transit  units.Seconds
	energy   units.Joules
	degraded bool
	// ramp is the time to accelerate from rest to cruise speed (= braking
	// time), used by telemetry to decompose the transit span into
	// accel/cruise/brake phases.
	ramp units.Seconds
}

// dynamics computes the current launch physics. With no leak open the
// launch charges exactly the analytical model's time and energy — the paper
// neglects drag at nominal rough vacuum (§IV-B), and the simulation must
// agree with the closed form. While a vacuum leak is open, that assumption
// breaks: cruise speed is capped by the drag margin at the leak pressure.
func (s *System) dynamics() launchDynamics {
	cfg := s.opt.Core
	base := launchDynamics{
		transit: s.transitTime(),
		energy:  s.launch.Energy,
		ramp:    units.Seconds(float64(cfg.MaxSpeed) / float64(cfg.Acceleration)),
	}
	if len(s.leaks) == 0 {
		return base
	}
	v := physics.DegradedCruiseSpeed(s.effectiveTube(), cfg.Cart.TotalMass,
		cfg.Acceleration, cfg.MaxSpeed, s.opt.Recovery.VacuumMargin)
	if v >= cfg.MaxSpeed {
		return base
	}
	p, err := physics.NewProfile(cfg.Length, v, cfg.Acceleration)
	if err != nil {
		// Unreachable for v < MaxSpeed (the ramp only shrinks), but fail
		// safe to nominal physics rather than panic mid-simulation.
		return base
	}
	d := launchDynamics{
		transit:  p.TransitTime(cfg.TimeModel),
		energy:   cfg.LIM.LaunchEnergy(cfg.Cart.TotalMass, v),
		degraded: true,
		ramp:     units.Seconds(float64(v) / float64(cfg.Acceleration)),
	}
	if d.transit < base.transit {
		d.transit = base.transit
	}
	return d
}

// scheduleTransit schedules a cart's rail transit with stall bookkeeping:
// the pending event, its callback, and the held direction are recorded on
// the cart so a CartStall fault can push the arrival out. fn is one of the
// cart's pre-bound arrival steps (scratch.go) and must clear
// c.transitEv/c.transitFn itself on entry — keeping the wrapper out of
// this path makes a transit allocation-free.
func (s *System) scheduleTransit(c *Cart, d units.Seconds, name string, dir track.Direction, fn func()) {
	c.transitFn = fn
	c.transitName = name
	c.transitDir = dir
	c.transitEv = s.Engine.MustAfter(d, name, fn)
}

// stallCart pushes a mid-transit cart's arrival out by delay. Carts not on
// the rail are unaffected (a stall needs a moving cart).
func (s *System) stallCart(c *Cart, delay units.Seconds) {
	if c == nil || delay <= 0 {
		return
	}
	t, ok := s.Engine.EventTime(c.transitEv)
	if !ok {
		return
	}
	t += delay
	if !s.Engine.Cancel(c.transitEv) {
		return
	}
	ev, err := s.Engine.At(t, c.transitName, c.transitFn)
	if err != nil {
		panic(fmt.Sprintf("dhlsys: rescheduling stalled transit: %v", err))
	}
	c.transitEv = ev
	s.stats.Stalls++
	s.stats.StallTime += delay
	s.tel.stalls.Inc()
	s.tel.spans.RecordInstant(c.trackID, s.tel.ids.stall, s.Engine.Now(),
		telemetry.KV{Key: "delay_s", Value: strconv.FormatFloat(float64(delay), 'g', -1, 64)})
}

// FaultLog returns the run's fault event log in simulation-time order —
// the byte-identity artefact chaos replays compare.
func (s *System) FaultLog() []string { return s.inj.LogLines() }

// FaultSummary returns the per-kind fault accounting.
func (s *System) FaultSummary() faults.Summary { return s.inj.Summary() }

// AvailabilityReport summarises a run's health: the outage-union downtime,
// the availability fraction, and goodput-relevant degraded counters.
type AvailabilityReport struct {
	// Elapsed simulation time the report covers.
	Elapsed units.Seconds
	// Downtime is the union of all fault outage windows (overlaps counted
	// once, instantaneous SSD deaths excluded).
	Downtime units.Seconds
	// Availability = 1 − Downtime/Elapsed (1 for an empty run).
	Availability float64
	// Faults injected, total and per kind.
	Faults faults.Summary
	// Stats snapshot at report time.
	Stats Stats
}

// String renders the report as stable lines.
func (r AvailabilityReport) String() string {
	return fmt.Sprintf("elapsed=%.3fs downtime=%.3fs availability=%.6f faults=[%v]",
		float64(r.Elapsed), float64(r.Downtime), r.Availability, r.Faults)
}

// Report builds the availability report at the engine's current time.
func (s *System) Report() AvailabilityReport {
	elapsed := s.Engine.Now()
	down := s.inj.Downtime()
	avail := 1.0
	if elapsed > 0 {
		avail = 1 - float64(down)/float64(elapsed)
	}
	return AvailabilityReport{
		Elapsed:      elapsed,
		Downtime:     down,
		Availability: avail,
		Faults:       s.inj.Summary(),
		Stats:        s.stats,
	}
}
