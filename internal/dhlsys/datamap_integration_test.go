package dhlsys

// Integration: the data-mapping catalogue (§III-D) decides which carts hold
// a dataset; the system simulation shuttles exactly those carts; the
// delivered capacity covers the dataset.

import (
	"testing"

	"repro/internal/datamap"
	"repro/internal/track"
	"repro/internal/units"
)

func TestDeliverDatasetByCatalog(t *testing.T) {
	opt := DefaultOptions()
	opt.NumCarts = 6
	opt.DockStations = 6
	s := mustSystem(t, opt)

	// Register the fleet's storage with the catalogue and place a dataset.
	cat := datamap.NewCatalog()
	for i := 0; i < opt.NumCarts; i++ {
		if err := cat.AddCart(track.CartID(i), 32, 8*units.TB); err != nil {
			t.Fatal(err)
		}
	}
	const ds = datamap.DatasetID("training-set")
	dataset := 700 * units.TB // spans 3 of the 256 TB carts
	if _, err := cat.Place(ds, dataset); err != nil {
		t.Fatal(err)
	}
	carts, err := cat.CartsFor(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(carts) != 3 {
		t.Fatalf("catalog spread %v over %d carts, want 3", dataset, len(carts))
	}

	// Shuttle exactly the catalogue's carts to the endpoint.
	delivered := 0
	for _, id := range carts {
		id := id
		s.Open(id, func(err error) {
			if err != nil {
				t.Errorf("open cart %d: %v", id, err)
				return
			}
			delivered++
		})
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != len(carts) {
		t.Fatalf("delivered %d of %d carts", delivered, len(carts))
	}
	// The docked capacity covers the dataset.
	var capacity units.Bytes
	for _, id := range carts {
		c, err := s.Cart(id)
		if err != nil {
			t.Fatal(err)
		}
		if c.Loc != AtDock {
			t.Fatalf("cart %d at %v, want dock", id, c.Loc)
		}
		capacity += opt.Core.Cart.Capacity()
	}
	if capacity < dataset {
		t.Errorf("docked capacity %v < dataset %v", capacity, dataset)
	}
	// Carts the catalogue did not name stayed in the library.
	for i := 0; i < opt.NumCarts; i++ {
		id := track.CartID(i)
		named := false
		for _, c := range carts {
			if c == id {
				named = true
			}
		}
		c, _ := s.Cart(id)
		if !named && c.Loc != AtLibrary {
			t.Errorf("unnamed cart %d left the library", id)
		}
	}
	// Appending to the dataset bumps the epoch, signalling the docked
	// snapshot is stale (§III-E consistency model).
	_, epoch, err := cat.Locate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Append(ds, 10*units.TB); err != nil {
		t.Fatal(err)
	}
	stale, err := cat.Stale(ds, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Error("docked snapshot must be stale after an append")
	}
}
