package dhlsys

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// shuttleWith runs a small instrumented bulk transfer and returns the
// result and the telemetry set (nil set → uninstrumented). The returned
// system has had MetricsSnapshot called, so derived metrics (sim time,
// event count) are synced.
func shuttleWith(t *testing.T, set *telemetry.Set, script *faults.Script) (ShuttleResult, Stats) {
	t.Helper()
	opt := DefaultOptions()
	opt.NumCarts = 2
	opt.Telemetry = set
	opt.Faults = script
	sys, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Shuttle(ShuttleOptions{
		Dataset:        4 * opt.Core.Cart.Capacity(),
		ReadAtEndpoint: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if set != nil {
		sys.MetricsSnapshot()
	}
	return res, sys.Stats()
}

func TestTelemetryRecordsLifecycle(t *testing.T) {
	set := telemetry.NewSet()
	res, stats := shuttleWith(t, set, nil)
	if res.Deliveries != 4 {
		t.Fatalf("deliveries = %d, want 4", res.Deliveries)
	}
	snap := set.Metrics.Snapshot()
	get := func(name string) float64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %q missing from snapshot", name)
		return 0
	}
	if got := get("dhl_launches_total"); int(got) != stats.Launches {
		t.Errorf("dhl_launches_total = %v, stats.Launches = %d", got, stats.Launches)
	}
	if got := get("dhl_deliveries_total"); got != 4 {
		t.Errorf("dhl_deliveries_total = %v, want 4", got)
	}
	if got := get("dhl_dock_ops_total"); int(got) != stats.DockOps {
		t.Errorf("dhl_dock_ops_total = %v, stats.DockOps = %d", got, stats.DockOps)
	}
	if got := get("dhl_launch_energy_joules_total"); units.Joules(got) != stats.Energy {
		t.Errorf("dhl_launch_energy_joules_total = %v, stats.Energy = %v", got, stats.Energy)
	}
	if got := get("dhl_sim_events_total"); got == 0 {
		t.Error("dhl_sim_events_total = 0: engine tracer not wired")
	}
	// Every lifecycle phase appears on the span log.
	names := make(map[string]bool)
	for _, sp := range set.Spans.Spans() {
		names[sp.Name] = true
	}
	for _, want := range []string{"undock", "transit", "accel", "cruise", "brake", "dock", "io-read"} {
		if !names[want] {
			t.Errorf("span %q missing from the log (have %v)", want, names)
		}
	}
}

func TestTelemetryDisabledIsEquivalent(t *testing.T) {
	// The simulation's outcome must not depend on whether it is observed.
	resOn, statsOn := shuttleWith(t, telemetry.NewSet(), nil)
	resOff, statsOff := shuttleWith(t, nil, nil)
	if resOn.Deliveries != resOff.Deliveries || resOn.Duration != resOff.Duration ||
		resOn.Energy != resOff.Energy || resOn.Retries != resOff.Retries {
		t.Errorf("instrumented run diverged: %+v vs %+v", resOn, resOff)
	}
	if statsOn != statsOff {
		t.Errorf("stats diverged: %+v vs %+v", statsOn, statsOff)
	}
}

func TestTelemetryFaultInstrumentation(t *testing.T) {
	set := telemetry.NewSet()
	script := faults.Script{Faults: []faults.Fault{
		{At: 1, Kind: faults.VacuumLeak, Pressure: 40_000, Duration: 200},
	}}
	_, stats := shuttleWith(t, set, &script)
	if stats.DegradedLaunches == 0 {
		t.Fatal("scenario produced no degraded launches; test is vacuous")
	}
	snap := set.Metrics.Snapshot()
	var inj, degraded float64
	for _, c := range snap.Counters {
		switch c.Name {
		case "dhl_faults_injected_total":
			inj = c.Value
		case "dhl_degraded_launches_total":
			degraded = c.Value
		}
	}
	if inj != 1 {
		t.Errorf("dhl_faults_injected_total = %v, want 1", inj)
	}
	if int(degraded) != stats.DegradedLaunches {
		t.Errorf("dhl_degraded_launches_total = %v, stats = %d", degraded, stats.DegradedLaunches)
	}
	// The outage span lands on the faults track.
	found := false
	for _, sp := range set.Spans.Spans() {
		if sp.Track == faults.FaultTrack && sp.Name == "outage:vacuum-leak" {
			found = true
			if sp.End-sp.Start != 200 {
				t.Errorf("outage span duration = %v, want 200", sp.End-sp.Start)
			}
		}
	}
	if !found {
		t.Error("outage span missing from the faults track")
	}
}

func TestMetricsSnapshotSetsSimTime(t *testing.T) {
	set := telemetry.NewSet()
	opt := DefaultOptions()
	opt.Telemetry = set
	sys, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Shuttle(ShuttleOptions{Dataset: opt.Core.Cart.Capacity()}); err != nil {
		t.Fatal(err)
	}
	snap := sys.MetricsSnapshot()
	for _, g := range snap.Gauges {
		if g.Name == "dhl_sim_time_seconds" {
			if units.Seconds(g.Value) != sys.Engine.Now() {
				t.Errorf("sim-time gauge = %v, engine at %v", g.Value, sys.Engine.Now())
			}
			return
		}
	}
	t.Error("dhl_sim_time_seconds gauge missing")
}

func TestMetricsSnapshotDisabledIsZero(t *testing.T) {
	opt := DefaultOptions()
	sys, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.MetricsSnapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("disabled snapshot not empty: %+v", snap)
	}
	if sys.Telemetry() != nil {
		t.Error("Telemetry() must be nil when disabled")
	}
}
