// Package dhlsys is the event-driven simulation of a full DHL deployment:
// carts, a library, an endpoint dock bank, the rail(s), the cart scheduler,
// and the software API of §III-D (Open / Close / Read / Write). It composes
// the physics and analytical models (internal/core) with the plant state
// machines (internal/track) on the shared event kernel (internal/sim).
//
// The simulation charges exactly the analytical model's launch time and
// energy per one-way trip, so sequential bulk transfers agree with
// internal/core's closed-form answers; its value is everything the closed
// form cannot express — multi-dock pipelining, dual-rail concurrency,
// contention, queueing, and in-flight SSD failures.
package dhlsys

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/track"
	"repro/internal/units"
)

// Options configures a simulated deployment.
type Options struct {
	// Core is the physical DHL configuration (cart, track, LIM, docking).
	Core core.Config
	// RailMode selects single or dual rail (§VI alternative track designs).
	RailMode track.RailMode
	// DockStations at the endpoint (vertically stacked, §III-B.5).
	DockStations int
	// LibrarySlots (0 = unbounded).
	LibrarySlots int
	// NumCarts in the fleet.
	NumCarts int
	// RAID level of each cart's array and the docking PCIe interface.
	RAID        storage.RAIDLevel
	PCIeGen     int
	LanesPerSSD int
	// FailureRate is the per-launch probability that one SSD on the cart
	// fails in flight (§III-D failure amelioration).
	FailureRate float64
	// Seed drives the failure-injection RNG; simulations are deterministic
	// for a fixed seed.
	Seed int64
	// RNG, when non-nil, overrides Seed with an injected generator so a
	// caller can thread one seeded *rand.Rand through a whole scenario.
	// The system owns the generator for its lifetime; it must not be
	// shared with concurrent users.
	RNG *rand.Rand
	// Wear, if non-nil, tracks connector mating cycles per cart (§VI
	// connector longevity); carts due for service are re-connectored at
	// the library, paying the connector's replacement downtime.
	Wear *fleet.Fleet
}

// DefaultOptions is the paper's primary setup: default DHL, single rail,
// 4 docking stations, 2-cart fleet, RAID0, PCIe 6 ×1/SSD, no failures.
func DefaultOptions() Options {
	return Options{
		Core:         core.DefaultConfig(),
		RailMode:     track.SingleRail,
		DockStations: 4,
		NumCarts:     2,
		RAID:         storage.RAID0,
		PCIeGen:      6,
		LanesPerSSD:  1,
	}
}

// Location of a cart.
type Location int

const (
	// AtLibrary: parked in cold storage.
	AtLibrary Location = iota
	// InTransit: on the rail.
	InTransit
	// AtDock: docked at the endpoint (or mid-dock).
	AtDock
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case AtLibrary:
		return "library"
	case InTransit:
		return "transit"
	case AtDock:
		return "dock"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Cart is a simulated cart: identity, storage array, and position.
type Cart struct {
	ID    track.CartID
	Array *storage.Array
	Loc   Location
	// Busy marks a cart with an in-flight operation (launch, return, IO).
	Busy bool
}

// Stats accumulates simulation-wide accounting.
type Stats struct {
	Launches     int // one-way trips completed
	DockOps      int // dock + undock operations
	Energy       units.Joules
	BytesRead    units.Bytes
	BytesWritten units.Bytes
	FailuresSeen int // SSDs failed in flight
	Denied       int // API requests failed immediately
	Queued       int // API requests that had to wait for resources
	// Connector-wear accounting (only populated when Options.Wear is set).
	ConnectorServices int
	MaintenanceTime   units.Seconds
	MaintenanceCost   units.USD
}

// API errors (§III-D: "the endpoint's DHL API will report the error").
var (
	ErrUnknownCart  = errors.New("dhlsys: unknown cart")
	ErrCartBusy     = errors.New("dhlsys: cart has an operation in flight")
	ErrNotAtLibrary = errors.New("dhlsys: cart not at the library")
	ErrNotDocked    = errors.New("dhlsys: cart not docked at the endpoint")
	ErrCartFailed   = errors.New("dhlsys: cart storage failed in flight")
)

// System is a running deployment simulation.
type System struct {
	Engine *sim.Engine

	opt    Options
	launch core.LaunchMetrics
	rail   *track.Rail
	dock   *track.DockBank
	lib    *track.Library
	carts  map[track.CartID]*Cart
	rng    *rand.Rand
	stats  Stats

	// waiting holds deferred Open requests (FIFO).
	waiting []func() bool

	// autoReload refills cart arrays on return to the library (the dataset
	// resides in the library; reload time is not charged, per §V-B). Enabled
	// by Shuttle when endpoint reads are requested, so that carts whose
	// failed SSDs were serviced leave fully loaded again.
	autoReload bool
}

// New builds a system with the fleet parked at the library.
func New(opt Options) (*System, error) {
	if opt.NumCarts < 1 {
		return nil, errors.New("dhlsys: need at least one cart")
	}
	if opt.FailureRate < 0 || opt.FailureRate > 1 {
		return nil, fmt.Errorf("dhlsys: failure rate must be in [0,1], got %v", opt.FailureRate)
	}
	l, err := core.Launch(opt.Core)
	if err != nil {
		return nil, err
	}
	dock, err := track.NewDockBank(opt.DockStations)
	if err != nil {
		return nil, err
	}
	if opt.LibrarySlots > 0 && opt.LibrarySlots < opt.NumCarts {
		return nil, fmt.Errorf("dhlsys: %d library slots cannot hold %d carts",
			opt.LibrarySlots, opt.NumCarts)
	}
	rng := opt.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	s := &System{
		Engine: sim.New(),
		opt:    opt,
		launch: l,
		rail:   track.NewRail(opt.RailMode),
		dock:   dock,
		lib:    track.NewLibrary(opt.LibrarySlots),
		carts:  make(map[track.CartID]*Cart),
		rng:    rng,
	}
	for i := 0; i < opt.NumCarts; i++ {
		id := track.CartID(i)
		arr, err := opt.Core.Cart.NewArray(opt.RAID, opt.PCIeGen, opt.LanesPerSSD)
		if err != nil {
			return nil, err
		}
		s.carts[id] = &Cart{ID: id, Array: arr, Loc: AtLibrary}
		if err := s.lib.Store(id); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Stats returns a snapshot of the accounting counters.
func (s *System) Stats() Stats { return s.stats }

// Launch returns the per-trip analytical metrics the simulation charges.
func (s *System) Launch() core.LaunchMetrics { return s.launch }

// Cart returns the cart state for inspection.
func (s *System) Cart(id track.CartID) (*Cart, error) {
	c, ok := s.carts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCart, id)
	}
	return c, nil
}

// oneWayTime decomposes the launch into undock + transit + dock.
func (s *System) transitTime() units.Seconds {
	return s.launch.Time - s.opt.Core.DockTime - s.opt.Core.UndockTime
}

// retryWaiting re-attempts queued requests after any resource release.
func (s *System) retryWaiting() {
	remaining := s.waiting[:0]
	for _, try := range s.waiting {
		if !try() {
			remaining = append(remaining, try)
		}
	}
	s.waiting = remaining
}

func (s *System) enqueue(try func() bool) {
	if try() {
		return
	}
	s.stats.Queued++
	s.waiting = append(s.waiting, try)
}

// maybeFailSSD rolls the in-flight failure dice for one launch.
func (s *System) maybeFailSSD(c *Cart) {
	if s.opt.FailureRate <= 0 {
		return
	}
	if s.rng.Float64() < s.opt.FailureRate {
		idx := s.rng.Intn(len(c.Array.Devices))
		c.Array.Devices[idx].Fail()
		s.stats.FailuresSeen++
	}
}

// Open requests cart id be shuttled from the library to an endpoint docking
// station (§III-D command 1). done is invoked at completion (or with the
// reason the request was denied outright). Requests that only lack resources
// (rail busy, docks full) wait in FIFO order rather than failing.
func (s *System) Open(id track.CartID, done func(error)) {
	c, ok := s.carts[id]
	if !ok {
		s.stats.Denied++
		done(fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	if c.Busy {
		s.stats.Denied++
		done(fmt.Errorf("%w: cart %d", ErrCartBusy, id))
		return
	}
	if c.Loc != AtLibrary {
		s.stats.Denied++
		done(fmt.Errorf("%w: cart %d at %v", ErrNotAtLibrary, id, c.Loc))
		return
	}
	c.Busy = true
	s.enqueue(func() bool {
		// Need: outbound rail free and a free station with no mid-dock cart.
		if !s.rail.Free(track.Outbound) || s.dock.Blocked() || s.dock.FreeStations() == 0 {
			return false
		}
		if err := s.rail.Reserve(id, track.Outbound); err != nil {
			return false
		}
		if err := s.lib.Remove(id); err != nil {
			// Programming error; surface it.
			s.rail.Release(id, track.Outbound)
			c.Busy = false
			done(err)
			return true
		}
		s.runOutbound(c, done)
		return true
	})
}

// runOutbound performs library undock → transit → endpoint dock.
func (s *System) runOutbound(c *Cart, done func(error)) {
	c.Loc = InTransit
	s.Engine.MustAfter(s.opt.Core.UndockTime, "undock@library", func() {
		s.stats.DockOps++
		s.maybeFailSSD(c)
		s.Engine.MustAfter(s.transitTime(), "transit-out", func() {
			if _, err := s.dock.BeginDock(c.ID); err != nil {
				// Station stolen between reservation and arrival cannot
				// happen (rail reservation covers the window); treat as bug.
				panic(fmt.Sprintf("dhlsys: dock reservation violated: %v", err))
			}
			s.Engine.MustAfter(s.opt.Core.DockTime, "dock@endpoint", func() {
				if err := s.dock.EndDock(c.ID); err != nil {
					panic(err)
				}
				s.stats.DockOps++
				if s.opt.Wear != nil {
					// Endpoint mating cycle; service is deferred to the
					// library (§III-B.6).
					if _, err := s.opt.Wear.RecordDock(c.ID); err != nil {
						panic(err)
					}
				}
				s.stats.Launches++
				s.stats.Energy += s.launch.Energy
				if err := s.rail.Release(c.ID, track.Outbound); err != nil {
					panic(err)
				}
				c.Loc = AtDock
				c.Busy = false
				s.retryWaiting()
				done(nil)
			})
		})
	})
}

// Close requests cart id be undocked and returned to the library (§III-D
// command 2).
func (s *System) Close(id track.CartID, done func(error)) {
	c, ok := s.carts[id]
	if !ok {
		s.stats.Denied++
		done(fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	if c.Busy {
		s.stats.Denied++
		done(fmt.Errorf("%w: cart %d", ErrCartBusy, id))
		return
	}
	if c.Loc != AtDock || !s.dock.Docked(id) {
		s.stats.Denied++
		done(fmt.Errorf("%w: cart %d at %v", ErrNotDocked, id, c.Loc))
		return
	}
	c.Busy = true
	s.enqueue(func() bool {
		if !s.rail.Free(track.Inbound) || s.dock.Blocked() {
			return false
		}
		if err := s.rail.Reserve(id, track.Inbound); err != nil {
			return false
		}
		if err := s.dock.BeginUndock(id); err != nil {
			s.rail.Release(id, track.Inbound)
			c.Busy = false
			done(err)
			return true
		}
		s.runInbound(c, done)
		return true
	})
}

// runInbound performs endpoint undock → transit → library dock.
func (s *System) runInbound(c *Cart, done func(error)) {
	s.Engine.MustAfter(s.opt.Core.UndockTime, "undock@endpoint", func() {
		if err := s.dock.EndUndock(c.ID); err != nil {
			panic(err)
		}
		s.stats.DockOps++
		c.Loc = InTransit
		s.maybeFailSSD(c)
		s.Engine.MustAfter(s.transitTime(), "transit-in", func() {
			s.Engine.MustAfter(s.opt.Core.DockTime, "dock@library", func() {
				s.stats.DockOps++
				s.stats.Launches++
				s.stats.Energy += s.launch.Energy
				if err := s.rail.Release(c.ID, track.Inbound); err != nil {
					panic(err)
				}
				if err := s.lib.Store(c.ID); err != nil {
					c.Busy = false
					done(err)
					return
				}
				c.Loc = AtLibrary
				c.Busy = false
				// Failed SSDs are serviced at the library (§III-B.6).
				for _, d := range c.Array.Devices {
					if d.Failed() {
						d.Repair()
					}
				}
				if s.autoReload {
					// Top up each device: only serviced (emptied) SSDs need
					// reloading; the rest are already full.
					for _, d := range c.Array.Devices {
						if free := d.Free(); free > 0 {
							if _, err := d.Write(free); err != nil {
								done(fmt.Errorf("dhlsys: reload cart %d: %w", c.ID, err))
								return
							}
						}
					}
				}
				if s.opt.Wear != nil {
					due, err := s.opt.Wear.RecordDock(c.ID)
					if err != nil {
						done(err)
						return
					}
					if due {
						// Preventive connector replacement at the library:
						// the cart stays busy for the service downtime.
						cost, downtime, err := s.opt.Wear.Service(c.ID)
						if err != nil {
							done(err)
							return
						}
						s.stats.ConnectorServices++
						s.stats.MaintenanceTime += downtime
						s.stats.MaintenanceCost += cost
						c.Busy = true
						s.Engine.MustAfter(downtime, "connector-service", func() {
							c.Busy = false
							s.retryWaiting()
							done(nil)
						})
						return
					}
				}
				s.retryWaiting()
				done(nil)
			})
		})
	})
}

// Read reads n bytes from a docked cart (§III-D command 3). done receives
// the transfer duration. Reads of carts whose array lost redundancy in
// flight report the error, per the paper's failure model.
func (s *System) Read(id track.CartID, n units.Bytes, done func(units.Seconds, error)) {
	s.transferOp(id, n, done, func(c *Cart) (units.Seconds, error) { return c.Array.Read(n) }, &s.stats.BytesRead)
}

// Write writes n bytes to a docked cart (§III-D command 4).
func (s *System) Write(id track.CartID, n units.Bytes, done func(units.Seconds, error)) {
	s.transferOp(id, n, done, func(c *Cart) (units.Seconds, error) { return c.Array.Write(n) }, &s.stats.BytesWritten)
}

func (s *System) transferOp(id track.CartID, n units.Bytes, done func(units.Seconds, error),
	op func(*Cart) (units.Seconds, error), counter *units.Bytes) {
	c, ok := s.carts[id]
	if !ok {
		s.stats.Denied++
		done(0, fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	if c.Busy {
		s.stats.Denied++
		done(0, fmt.Errorf("%w: cart %d", ErrCartBusy, id))
		return
	}
	if c.Loc != AtDock || !s.dock.Docked(id) {
		s.stats.Denied++
		done(0, fmt.Errorf("%w: cart %d at %v", ErrNotDocked, id, c.Loc))
		return
	}
	if !c.Array.Healthy() {
		s.stats.Denied++
		done(0, fmt.Errorf("%w: cart %d", ErrCartFailed, id))
		return
	}
	d, err := op(c)
	if err != nil {
		s.stats.Denied++
		done(0, err)
		return
	}
	c.Busy = true
	*counter += n
	s.Engine.MustAfter(d, "io", func() {
		c.Busy = false
		done(d, nil)
	})
}

// Run drains the event queue (bounded) and returns the simulated end time.
func (s *System) Run() (units.Seconds, error) {
	if _, err := s.Engine.Run(50_000_000); err != nil {
		return s.Engine.Now(), err
	}
	return s.Engine.Now(), nil
}
