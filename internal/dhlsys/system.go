// Package dhlsys is the event-driven simulation of a full DHL deployment:
// carts, a library, an endpoint dock bank, the rail(s), the cart scheduler,
// and the software API of §III-D (Open / Close / Read / Write). It composes
// the physics and analytical models (internal/core) with the plant state
// machines (internal/track) on the shared event kernel (internal/sim).
//
// The simulation charges exactly the analytical model's launch time and
// energy per one-way trip, so sequential bulk transfers agree with
// internal/core's closed-form answers; its value is everything the closed
// form cannot express — multi-dock pipelining, dual-rail concurrency,
// contention, queueing, and in-flight SSD failures.
package dhlsys

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/physics"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// Options configures a simulated deployment.
type Options struct {
	// Core is the physical DHL configuration (cart, track, LIM, docking).
	Core core.Config
	// RailMode selects single or dual rail (§VI alternative track designs).
	RailMode track.RailMode
	// DockStations at the endpoint (vertically stacked, §III-B.5).
	DockStations int
	// LibrarySlots (0 = unbounded).
	LibrarySlots int
	// NumCarts in the fleet.
	NumCarts int
	// RAID level of each cart's array and the docking PCIe interface.
	RAID        storage.RAIDLevel
	PCIeGen     int
	LanesPerSSD int
	// FailureRate is the per-launch probability that one SSD on the cart
	// fails in flight (§III-D failure amelioration).
	FailureRate float64
	// Seed drives the failure-injection RNG; simulations are deterministic
	// for a fixed seed.
	Seed int64
	// RNG, when non-nil, overrides Seed with an injected generator so a
	// caller can thread one seeded *rand.Rand through a whole scenario.
	// The system owns the generator for its lifetime; it must not be
	// shared with concurrent users.
	RNG *rand.Rand
	// Wear, if non-nil, tracks connector mating cycles per cart (§VI
	// connector longevity); carts due for service are re-connectored at
	// the library, paying the connector's replacement downtime.
	Wear *fleet.Fleet
	// Faults, if non-nil, is a deterministic fault script armed on the
	// event kernel at construction (chaos scenarios, §III-D failure
	// amelioration). The per-launch FailureRate dice roll feeds the same
	// injector, so scripted and stochastic faults share one log and
	// taxonomy.
	Faults *faults.Script
	// Recovery configures the failure-amelioration policies.
	Recovery RecoveryPolicy
	// Tube overrides the vacuum tube model (zero value = physics
	// DefaultTube at rough vacuum). Vacuum-leak faults raise its pressure.
	Tube physics.Tube
	// Telemetry, if non-nil, instruments the whole deployment: metrics on
	// the set's registry, cart lifecycle spans and fault marks on its span
	// log. Nil (the default) disables instrumentation entirely — the hot
	// paths then pay only nil checks.
	Telemetry *telemetry.Set
}

// RecoveryPolicy configures how the system ameliorates faults (§III-D:
// "RAID and backups can ameliorate the issue").
type RecoveryPolicy struct {
	// StrictSSD restores the pre-amelioration behaviour: any SSD failure
	// on a non-redundant array fails the whole cart (ErrCartFailed) even
	// though surviving stripes are readable. Off by default — degraded
	// RAID0 arrays serve the surviving fraction.
	StrictSSD bool
	// LaunchTimeout, when positive, makes a launch whose undock-to-dock
	// time exceeds it report ErrLaunchTimeout to the caller. The cart
	// still arrives (the plant cannot abort mid-tube); the timeout is the
	// management layer's signal to redeliver.
	LaunchTimeout units.Seconds
	// RetryBackoff is the initial delay before a failed delivery is
	// retried by the bulk-transfer driver; it doubles per consecutive
	// failure. Zero retries immediately (the pre-policy behaviour).
	RetryBackoff units.Seconds
	// MaxBackoff caps the doubled backoff (0 = 16× RetryBackoff).
	MaxBackoff units.Seconds
	// VacuumMargin is the drag/thrust fraction defining degraded-mode
	// cruise speed under partial vacuum (0 = physics.DefaultDragMargin).
	VacuumMargin float64
}

// DefaultRecovery returns the default amelioration policy: degraded RAID
// reads on, no launch timeout, immediate retries, default drag margin.
func DefaultRecovery() RecoveryPolicy { return RecoveryPolicy{} }

// DefaultOptions is the paper's primary setup: default DHL, single rail,
// 4 docking stations, 2-cart fleet, RAID0, PCIe 6 ×1/SSD, no failures.
func DefaultOptions() Options {
	return Options{
		Core:         core.DefaultConfig(),
		RailMode:     track.SingleRail,
		DockStations: 4,
		NumCarts:     2,
		RAID:         storage.RAID0,
		PCIeGen:      6,
		LanesPerSSD:  1,
	}
}

// Location of a cart.
type Location int

const (
	// AtLibrary: parked in cold storage.
	AtLibrary Location = iota
	// InTransit: on the rail.
	InTransit
	// AtDock: docked at the endpoint (or mid-dock).
	AtDock
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case AtLibrary:
		return "library"
	case InTransit:
		return "transit"
	case AtDock:
		return "dock"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Cart is a simulated cart: identity, storage array, and position.
type Cart struct {
	ID    track.CartID
	Array *storage.Array
	Loc   Location
	// Busy marks a cart with an in-flight operation (launch, return, IO).
	Busy bool

	// In-flight transit bookkeeping, used by stall faults to push the
	// arrival event out: the pending rail-transit event, its callback,
	// and the rail direction slot the cart holds.
	transitEv   sim.Handle
	transitFn   func()
	transitName string
	transitDir  track.Direction
	// launchStart is when the current launch acquired its resources
	// (launch-timeout accounting).
	launchStart units.Seconds
	// spanTrack is the cart's telemetry track name ("cart-N"); trackID is
	// its interned span-log ID, bound in initTelemetry (zero when
	// telemetry is disabled — harmless, records on a nil log are no-ops).
	spanTrack string
	trackID   telemetry.StrID
	// scratch is the cart's reusable operation state and pre-bound launch
	// steps (see scratch.go); valid while Busy.
	scratch launchScratch
}

// Stats accumulates simulation-wide accounting.
type Stats struct {
	Launches     int // one-way trips completed
	DockOps      int // dock + undock operations
	Energy       units.Joules
	BytesRead    units.Bytes
	BytesWritten units.Bytes
	FailuresSeen int // SSDs failed in flight
	Denied       int // API requests failed immediately
	Queued       int // API requests that had to wait for resources
	// Connector-wear accounting (only populated when Options.Wear is set).
	ConnectorServices int
	MaintenanceTime   units.Seconds
	MaintenanceCost   units.USD
	// Fault-recovery accounting (§III-D amelioration).
	DegradedLaunches int           // launches flown at reduced speed under partial vacuum
	DegradedReads    int           // reads served from a degraded array's surviving stripes
	DegradedBytes    units.Bytes   // bytes those reads served
	Stalls           int           // in-flight carts stalled by track faults
	StallTime        units.Seconds // cumulative arrival delay stalls added
	Reroutes         int           // launches reverse-run over the opposite rail
	Timeouts         int           // launches that exceeded Recovery.LaunchTimeout
	Backoffs         int           // delivery retries delayed by backoff
	BackoffWait      units.Seconds // cumulative backoff delay
}

// API errors (§III-D: "the endpoint's DHL API will report the error").
var (
	ErrUnknownCart   = errors.New("dhlsys: unknown cart")
	ErrCartBusy      = errors.New("dhlsys: cart has an operation in flight")
	ErrNotAtLibrary  = errors.New("dhlsys: cart not at the library")
	ErrNotDocked     = errors.New("dhlsys: cart not docked at the endpoint")
	ErrCartFailed    = errors.New("dhlsys: cart storage failed in flight")
	ErrDegradedRead  = errors.New("dhlsys: degraded read served only surviving stripes")
	ErrLaunchTimeout = errors.New("dhlsys: launch exceeded the configured timeout")
)

// System is a running deployment simulation.
type System struct {
	Engine *sim.Engine

	opt    Options
	launch core.LaunchMetrics
	rail   *track.Rail
	dock   *track.DockBank
	lib    *track.Library
	carts  map[track.CartID]*Cart
	rng    *rand.Rand
	stats  Stats

	// Fault-injection state.
	inj   *faults.Injector
	tube  physics.Tube
	leaks []float64 // active leak pressures, Pa (max governs)
	// limDown counts active power-loss faults per launch direction
	// (index 0 = outbound LIM at the library, 1 = inbound at the endpoint).
	limDown [2]int
	// needsService marks carts whose connector was damaged by a
	// dock-station failure; they are force-serviced at the library.
	needsService map[track.CartID]bool

	// waiting holds deferred Open requests (FIFO).
	waiting []func() bool

	// autoReload refills cart arrays on return to the library (the dataset
	// resides in the library; reload time is not charged, per §V-B). Enabled
	// by Shuttle when endpoint reads are requested, so that carts whose
	// failed SSDs were serviced leave fully loaded again.
	autoReload bool

	// Telemetry (optional): the set handed in via Options and the
	// precomputed handles the hot paths touch (all nil when disabled).
	telSet *telemetry.Set
	tel    telemetryHooks
}

// New builds a system with the fleet parked at the library.
func New(opt Options) (*System, error) {
	if opt.NumCarts < 1 {
		return nil, errors.New("dhlsys: need at least one cart")
	}
	if opt.FailureRate < 0 || opt.FailureRate > 1 {
		return nil, fmt.Errorf("dhlsys: failure rate must be in [0,1], got %v", opt.FailureRate)
	}
	l, err := core.Launch(opt.Core)
	if err != nil {
		return nil, err
	}
	dock, err := track.NewDockBank(opt.DockStations)
	if err != nil {
		return nil, err
	}
	if opt.LibrarySlots > 0 && opt.LibrarySlots < opt.NumCarts {
		return nil, fmt.Errorf("dhlsys: %d library slots cannot hold %d carts",
			opt.LibrarySlots, opt.NumCarts)
	}
	rng := opt.RNG
	if rng == nil {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	tube := opt.Tube
	if tube.CrossSectionArea <= 0 {
		tube = physics.DefaultTube()
	}
	s := &System{
		Engine:       sim.New(),
		opt:          opt,
		launch:       l,
		rail:         track.NewRail(opt.RailMode),
		dock:         dock,
		lib:          track.NewLibrary(opt.LibrarySlots),
		carts:        make(map[track.CartID]*Cart),
		rng:          rng,
		tube:         tube,
		needsService: make(map[track.CartID]bool),
	}
	for i := 0; i < opt.NumCarts; i++ {
		id := track.CartID(i)
		arr, err := opt.Core.Cart.NewArray(opt.RAID, opt.PCIeGen, opt.LanesPerSSD)
		if err != nil {
			return nil, err
		}
		c := &Cart{ID: id, Array: arr, Loc: AtLibrary, spanTrack: cartTrack(id)}
		s.bindLaunchSteps(c)
		s.carts[id] = c
		if err := s.lib.Store(id); err != nil {
			return nil, err
		}
	}
	script := faults.Script{}
	if opt.Faults != nil {
		script = *opt.Faults
		if err := script.Validate(opt.NumCarts, opt.DockStations, opt.Core.Cart.Config.NumSSDs); err != nil {
			return nil, err
		}
	}
	inj, err := faults.NewInjector(s.Engine, faultTarget{s}, script)
	if err != nil {
		return nil, err
	}
	s.inj = inj
	if err := inj.Arm(); err != nil {
		return nil, err
	}
	s.initTelemetry(opt.Telemetry)
	return s, nil
}

// Stats returns a snapshot of the accounting counters.
func (s *System) Stats() Stats { return s.stats }

// Launch returns the per-trip analytical metrics the simulation charges.
func (s *System) Launch() core.LaunchMetrics { return s.launch }

// Cart returns the cart state for inspection.
func (s *System) Cart(id track.CartID) (*Cart, error) {
	c, ok := s.carts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownCart, id)
	}
	return c, nil
}

// oneWayTime decomposes the launch into undock + transit + dock.
func (s *System) transitTime() units.Seconds {
	return s.launch.Time - s.opt.Core.DockTime - s.opt.Core.UndockTime
}

// retryWaiting re-attempts queued requests after any resource release.
func (s *System) retryWaiting() {
	remaining := s.waiting[:0]
	for _, try := range s.waiting {
		if !try() {
			remaining = append(remaining, try)
		}
	}
	s.waiting = remaining
}

func (s *System) enqueue(try func() bool) {
	if try() {
		return
	}
	s.stats.Queued++
	s.tel.queued.Inc()
	s.waiting = append(s.waiting, try)
}

// maybeFailSSD rolls the in-flight failure dice for one launch. The draw
// order (Float64 then Intn) is part of the determinism contract — runs with
// a fixed seed replay identically. The hit routes through the injector so
// stochastic and scripted SSD deaths share one log and taxonomy.
func (s *System) maybeFailSSD(c *Cart) {
	if s.opt.FailureRate <= 0 {
		return
	}
	if s.rng.Float64() < s.opt.FailureRate {
		idx := s.rng.Intn(len(c.Array.Devices))
		s.inj.InjectNow(faults.Fault{Kind: faults.SSDFailure, Cart: c.ID, Device: idx})
	}
}

// launchDirection picks the rail direction for a journey whose natural
// direction is natural: normally natural itself, but when that direction is
// fault-blocked on a dual-rail track the cart can reverse-run over the
// opposite rail if it is free (§VI alternative track designs give each
// direction its own rail, so the hardware permits it). Returns the chosen
// direction and whether this is a reroute; ok=false means no direction is
// currently usable and the request should stay queued.
func (s *System) launchDirection(natural track.Direction) (dir track.Direction, reroute, ok bool) {
	if s.rail.Free(natural) {
		return natural, false, true
	}
	if s.opt.RailMode == track.DualRail && s.rail.Blocked(natural) && s.rail.Free(natural.Opposite()) {
		return natural.Opposite(), true, true
	}
	return natural, false, false
}

// Open requests cart id be shuttled from the library to an endpoint docking
// station (§III-D command 1). done is invoked at completion (or with the
// reason the request was denied outright). Requests that only lack resources
// (rail busy, docks full) wait in FIFO order rather than failing.
func (s *System) Open(id track.CartID, done func(error)) {
	c, ok := s.carts[id]
	if !ok {
		s.deny()
		done(fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	if c.Busy {
		s.deny()
		done(fmt.Errorf("%w: cart %d", ErrCartBusy, id))
		return
	}
	if c.Loc != AtLibrary {
		s.deny()
		done(fmt.Errorf("%w: cart %d at %v", ErrNotAtLibrary, id, c.Loc))
		return
	}
	c.Busy = true
	c.scratch.done = done
	c.scratch.reqAt = s.Engine.Now()
	// Resource acquisition and the undock→transit→dock chain run on the
	// cart's pre-bound steps (scratch.go) — no per-launch closures.
	s.enqueue(c.scratch.tryOpen)
}

// runOutbound performs library undock → transit → endpoint dock. dir is the
// rail slot the cart reserved (normally Outbound; Inbound when rerouted
// around a blocked rail on a dual-rail track).
func (s *System) runOutbound(c *Cart, dir track.Direction, done func(error)) {
	c.scratch.dir, c.scratch.done = dir, done
	c.Loc = InTransit
	c.launchStart = s.Engine.Now()
	s.Engine.MustAfter(s.opt.Core.UndockTime, evUndockLibrary, c.scratch.outUndock)
}

// checkLaunchTimeout applies the recovery policy's launch timeout to the
// journey that started at c.launchStart: nil inside the budget, a wrapped
// ErrLaunchTimeout past it. The cart has already arrived either way — the
// plant cannot abort mid-tube — so the error is purely the management
// layer's redelivery signal.
func (s *System) checkLaunchTimeout(c *Cart) error {
	limit := s.opt.Recovery.LaunchTimeout
	if limit <= 0 {
		return nil
	}
	elapsed := s.Engine.Now() - c.launchStart
	if elapsed <= limit {
		return nil
	}
	s.stats.Timeouts++
	s.tel.timeouts.Inc()
	s.tel.spans.RecordInstant(c.trackID, s.tel.ids.timeout, s.Engine.Now())
	//dhllint:allow allocflow -- timeout breach is a failed run's terminal report, not the steady loop
	return fmt.Errorf("%w: cart %d took %.3fs (budget %.3fs)",
		ErrLaunchTimeout, c.ID, float64(elapsed), float64(limit))
}

// Close requests cart id be undocked and returned to the library (§III-D
// command 2).
func (s *System) Close(id track.CartID, done func(error)) {
	c, ok := s.carts[id]
	if !ok {
		s.deny()
		done(fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	if c.Busy {
		s.deny()
		done(fmt.Errorf("%w: cart %d", ErrCartBusy, id))
		return
	}
	if c.Loc != AtDock || !s.dock.Docked(id) {
		s.deny()
		done(fmt.Errorf("%w: cart %d at %v", ErrNotDocked, id, c.Loc))
		return
	}
	c.Busy = true
	c.scratch.done = done
	c.scratch.reqAt = s.Engine.Now()
	s.enqueue(c.scratch.tryClose)
}

// runInbound performs endpoint undock → transit → library dock. dir is the
// reserved rail slot (normally Inbound; Outbound when rerouted).
func (s *System) runInbound(c *Cart, dir track.Direction, done func(error)) {
	c.scratch.dir, c.scratch.done = dir, done
	c.launchStart = s.Engine.Now()
	s.Engine.MustAfter(s.opt.Core.UndockTime, evUndockEndpoint, c.scratch.inUndock)
}

// errServiceScheduled is the sentinel maybeServiceConnector uses internally
// to signal that completion was handed to the service event.
var errServiceScheduled = errors.New("dhlsys: connector service scheduled")

// maybeServiceConnector runs the library-side connector checks on a cart
// that just returned: wear-policy preventive replacement, plus forced
// replacement when a dock-station failure damaged the cart's connector
// (needsService). A non-nil return other than errServiceScheduled is a hard
// error; errServiceScheduled means done will be invoked later.
func (s *System) maybeServiceConnector(c *Cart, done func(error)) error {
	forced := s.needsService[c.ID]
	if s.opt.Wear == nil {
		// No wear model to service against; a damaged connector is swapped
		// notionally for free (nothing tracks its cost).
		delete(s.needsService, c.ID)
		return nil
	}
	due, err := s.opt.Wear.RecordDock(c.ID)
	if err != nil {
		return err
	}
	if !due && !forced {
		return nil
	}
	// Connector replacement at the library: the cart stays busy for the
	// service downtime.
	cost, downtime, err := s.opt.Wear.Service(c.ID)
	if err != nil {
		return err
	}
	delete(s.needsService, c.ID)
	s.stats.ConnectorServices++
	s.stats.MaintenanceTime += downtime
	s.stats.MaintenanceCost += cost
	c.Busy = true
	s.Engine.MustAfter(downtime, evService, func() {
		c.Busy = false
		s.retryWaiting()
		done(nil)
	})
	return errServiceScheduled
}

// Read reads n bytes from a docked cart (§III-D command 3). done receives
// the transfer duration. When the cart's array lost redundancy in flight,
// behaviour follows the recovery policy: under the default policy the read
// is served from the surviving stripes at their reduced bandwidth and done
// receives a wrapped ErrDegradedRead naming the shortfall (§III-D: "RAID
// and backups can ameliorate the issue"); with Recovery.StrictSSD the
// pre-amelioration ErrCartFailed is reported instead.
func (s *System) Read(id track.CartID, n units.Bytes, done func(units.Seconds, error)) {
	s.transferOp(id, n, done, true)
}

// Write writes n bytes to a docked cart (§III-D command 4). Writes to a
// degraded array always fail — there is no redundancy to absorb them.
func (s *System) Write(id track.CartID, n units.Bytes, done func(units.Seconds, error)) {
	s.transferOp(id, n, done, false)
}

func (s *System) transferOp(id track.CartID, n units.Bytes, done func(units.Seconds, error), isRead bool) {
	c, ok := s.carts[id]
	if !ok {
		s.deny()
		done(0, fmt.Errorf("%w: %d", ErrUnknownCart, id))
		return
	}
	if c.Busy {
		s.deny()
		done(0, fmt.Errorf("%w: cart %d", ErrCartBusy, id))
		return
	}
	if c.Loc != AtDock || !s.dock.Docked(id) {
		s.deny()
		done(0, fmt.Errorf("%w: cart %d at %v", ErrNotDocked, id, c.Loc))
		return
	}
	if !c.Array.Healthy() {
		if !isRead || s.opt.Recovery.StrictSSD {
			s.deny()
			done(0, fmt.Errorf("%w: cart %d", ErrCartFailed, id))
			return
		}
		s.degradedRead(c, n, done)
		return
	}
	var d units.Seconds
	var err error
	if isRead {
		d, err = c.Array.Read(n)
	} else {
		d, err = c.Array.Write(n)
	}
	if err != nil {
		s.deny()
		done(0, err)
		return
	}
	c.Busy = true
	name := s.tel.ids.ioWrite
	if isRead {
		s.stats.BytesRead += n
		s.tel.bytesRead.Add(float64(n))
		name = s.tel.ids.ioRead
	} else {
		s.stats.BytesWritten += n
		s.tel.bytesWritten.Add(float64(n))
	}
	c.scratch.ioDone = done
	c.scratch.ioDur = d
	c.scratch.ioStart = s.Engine.Now()
	c.scratch.ioName = name
	s.Engine.MustAfter(d, evIO, c.scratch.ioFinish)
}

// degradedRead serves what survives of an n-byte read on an array past its
// redundancy: the stripes on failed devices are gone, so only the surviving
// fraction of the requested range is returned, at the survivors' aggregate
// bandwidth. done receives the transfer time and a wrapped ErrDegradedRead
// reporting the shortfall.
func (s *System) degradedRead(c *Cart, n units.Bytes, done func(units.Seconds, error)) {
	used := c.Array.Used()
	if n > used {
		s.deny()
		done(0, fmt.Errorf("%w: cart %d holds %v, %v requested", storage.ErrOutOfRange, c.ID, used, n))
		return
	}
	avail := c.Array.AvailablePayload()
	serve := n
	if used > 0 {
		serve = units.Bytes(float64(n) * float64(avail) / float64(used))
	}
	d, err := c.Array.DegradedRead(serve)
	if err != nil {
		s.deny()
		done(0, err)
		return
	}
	c.Busy = true
	s.stats.DegradedReads++
	s.stats.DegradedBytes += serve
	s.stats.BytesRead += serve
	s.tel.degradedReads.Inc()
	s.tel.bytesRead.Add(float64(serve))
	ioStart := s.Engine.Now()
	s.Engine.MustAfter(d, evIODegraded, func() {
		c.Busy = false
		s.tel.ioSeconds.Observe(float64(d))
		s.tel.spans.RecordSpan(c.trackID, s.tel.ids.ioDegr, ioStart, s.Engine.Now(),
			telemetry.KV{Key: "degraded", Value: "true"})
		done(d, fmt.Errorf("%w: cart %d served %v of %v", ErrDegradedRead, c.ID, serve, n))
	})
}

// Run drains the event queue (bounded) and returns the simulated end time.
func (s *System) Run() (units.Seconds, error) {
	if _, err := s.Engine.Run(50_000_000); err != nil {
		return s.Engine.Now(), err
	}
	return s.Engine.Now(), nil
}
