package dhlsys

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/track"
	"repro/internal/units"
)

// This file implements the bulk-transfer orchestrator used by the paper's
// target workloads (§II-D): move a dataset resident in the library to the
// endpoint with repeated, optionally pipelined, cart deliveries.
//
// Per the paper's methodology, data load/unload time at the library is not
// charged ("we assume the whole dataset resides in the library"; "we do not
// account for the time or energy of reading the data, which must be done in
// both the traditional and DHL settings"). The endpoint-side SSD read *can*
// be enabled to study pipelining, which is exactly the case where multiple
// docking stations pay off.

// ShuttleOptions configures a bulk transfer.
type ShuttleOptions struct {
	// Dataset to deliver to the endpoint.
	Dataset units.Bytes
	// ReadAtEndpoint makes each delivery read the full cart contents through
	// the docking PCIe interface before releasing the cart. While one cart
	// is being read, others can be in flight (§V-B pipelining).
	ReadAtEndpoint bool
	// MaxRetries bounds redelivery attempts after in-flight failures;
	// 0 means deliveries × 10.
	MaxRetries int
}

// ShuttleResult summarises a completed bulk transfer.
type ShuttleResult struct {
	// Deliveries completed (each one cart-capacity of data).
	Deliveries int
	// Retries due to in-flight storage failures.
	Retries int
	// DegradedDeliveries completed with only the surviving stripes of a
	// degraded array (counted inside Deliveries).
	DegradedDeliveries int
	// Timeouts is the number of launches that exceeded the recovery
	// policy's launch timeout.
	Timeouts int
	// Duration of the whole transfer, including final cart returns.
	Duration units.Seconds
	// Energy charged for all launches.
	Energy units.Joules
	// BytesDelivered to the endpoint (deliveries × cart capacity, the last
	// delivery counted in full as in the analytical model).
	BytesDelivered units.Bytes
	// FailureErrors reported by the API during the run (§III-D).
	FailureErrors []error
}

// EffectiveBandwidth is delivered data over duration.
func (r ShuttleResult) EffectiveBandwidth() units.BytesPerSecond {
	if r.Duration <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(r.BytesDelivered) / float64(r.Duration))
}

// ErrRetriesExhausted is returned when failures prevent completing delivery.
var ErrRetriesExhausted = errors.New("dhlsys: delivery retries exhausted")

// backoffDelay returns the delay before a retry after consecFails
// consecutive failures: RetryBackoff doubling per failure, capped at
// MaxBackoff (which defaults to 16 × RetryBackoff). A zero RetryBackoff
// retries immediately, the pre-policy behaviour.
func (s *System) backoffDelay(consecFails int) units.Seconds {
	b := s.opt.Recovery.RetryBackoff
	if b <= 0 {
		return 0
	}
	maxB := s.opt.Recovery.MaxBackoff
	if maxB <= 0 {
		maxB = 16 * b
	}
	for i := 0; i < consecFails && b < maxB; i++ {
		b *= 2
	}
	if b > maxB {
		b = maxB
	}
	return b
}

// PreloadFleet fills every cart's array to capacity instantly, modelling the
// dataset already residing on library carts.
func (s *System) PreloadFleet() error {
	for _, c := range s.carts {
		if free := c.Array.Capacity() - c.Array.Used(); free > 0 {
			if _, err := c.Array.Write(free); err != nil {
				return fmt.Errorf("dhlsys: preload cart %d: %w", c.ID, err)
			}
		}
	}
	return nil
}

// Shuttle runs a bulk transfer to completion and returns its result. It
// drives the simulation engine itself; the system must be otherwise idle.
func (s *System) Shuttle(opt ShuttleOptions) (ShuttleResult, error) {
	if opt.Dataset <= 0 {
		return ShuttleResult{}, fmt.Errorf("dhlsys: dataset must be positive, got %v", opt.Dataset)
	}
	capB := s.opt.Core.Cart.Capacity()
	deliveries := int(math.Ceil(float64(opt.Dataset) / float64(capB)))
	maxRetries := opt.MaxRetries
	if maxRetries <= 0 {
		maxRetries = deliveries * 10
	}
	// Endpoint reads move the array's usable payload, which is slightly
	// below the nominal cart capacity for parity RAID levels.
	readB := capB
	if opt.ReadAtEndpoint {
		if err := s.PreloadFleet(); err != nil {
			return ShuttleResult{}, err
		}
		s.autoReload = true
		defer func() { s.autoReload = false }()
		for _, c := range s.carts {
			if ac := c.Array.Capacity(); ac < readB {
				readB = ac
			}
		}
	}

	startEnergy := s.stats.Energy
	start := s.Engine.Now()
	run := &shuttleRun{
		s:          s,
		deliveries: deliveries,
		maxRetries: maxRetries,
		readAtEnd:  opt.ReadAtEndpoint,
		readB:      readB,
	}

	// Each cart runs an independent worker loop: claim a slot, Open,
	// optionally Read, Close, repeat. The System's internal FIFO queue
	// serialises resource contention. Failed deliveries retry with the
	// recovery policy's exponential backoff (deterministic: delays are
	// simulated time, scheduled on the event kernel). Workers pre-bind
	// their callbacks once, so steady-state deliveries allocate nothing
	// in this driver.
	workers := make([]*shuttleWorker, s.opt.NumCarts)
	for i := range workers {
		workers[i] = newShuttleWorker(run, track.CartID(i))
	}
	for _, w := range workers {
		w.loop()
	}
	if _, err := s.Run(); err != nil {
		return run.res, err
	}
	if run.fatal != nil {
		return run.res, run.fatal
	}
	res := run.res
	if res.Deliveries != deliveries {
		return res, fmt.Errorf("dhlsys: delivered %d of %d", res.Deliveries, deliveries)
	}
	res.Duration = s.Engine.Now() - start
	res.Energy = s.stats.Energy - startEnergy
	res.BytesDelivered = units.Bytes(float64(deliveries) * float64(capB))
	return res, nil
}

// shuttleRun is one bulk transfer's shared state across its per-cart
// workers.
type shuttleRun struct {
	s          *System
	res        ShuttleResult
	deliveries int
	maxRetries int
	claimed    int // delivery slots handed to workers
	readAtEnd  bool
	readB      units.Bytes
	fatal      error
}

// shuttleWorker drives one cart through claim → Open → (Read) → Close
// cycles. Its callbacks are bound once at construction; per-delivery
// state lives in the fields below, so the steady-state loop is free of
// closure allocations.
type shuttleWorker struct {
	run         *shuttleRun
	id          track.CartID
	consecFails int
	// backoff, when positive, delays the next loop entry after Close —
	// set by finish for failed deliveries under the recovery policy.
	backoff units.Seconds

	loopFn      func()
	openDoneFn  func(error)
	readDoneFn  func(units.Seconds, error)
	closeDoneFn func(error)
}

func newShuttleWorker(run *shuttleRun, id track.CartID) *shuttleWorker {
	w := &shuttleWorker{run: run, id: id}
	w.loopFn = w.loop
	w.openDoneFn = w.openDone
	w.readDoneFn = w.readDone
	w.closeDoneFn = w.closeDone
	return w
}

// loop claims the next delivery slot and launches the cart.
func (w *shuttleWorker) loop() {
	r := w.run
	if r.fatal != nil || r.claimed >= r.deliveries {
		return
	}
	r.claimed++
	r.s.Open(w.id, w.openDoneFn)
}

// openDone handles launch completion at the endpoint.
func (w *shuttleWorker) openDone(err error) {
	r := w.run
	timedOut := errors.Is(err, ErrLaunchTimeout)
	if err != nil && !timedOut {
		r.fatal = fmt.Errorf("dhlsys: open cart %d: %w", w.id, err)
		return
	}
	if timedOut {
		// The cart is docked but the delivery blew its budget: the
		// management layer redelivers (§III-D).
		r.res.Timeouts++
		r.res.FailureErrors = append(r.res.FailureErrors, err)
		w.finish(false)
		return
	}
	if !r.readAtEnd {
		// Delivery = cart physically present; §V-B accounting.
		w.finish(true)
		return
	}
	r.s.Read(w.id, r.readB, w.readDoneFn)
}

// readDone handles the endpoint-side cart read.
func (w *shuttleWorker) readDone(_ units.Seconds, err error) {
	r := w.run
	if err != nil {
		r.res.FailureErrors = append(r.res.FailureErrors, err)
		if errors.Is(err, ErrDegradedRead) {
			// Amelioration: the surviving stripes were served; the
			// delivery stands, degraded.
			r.res.DegradedDeliveries++
			w.finish(true)
			return
		}
		// Hard in-flight failure surfaced by the API; redeliver.
		w.finish(false)
		return
	}
	w.finish(true)
}

// finish settles one delivery attempt's accounting and sends the cart
// home.
func (w *shuttleWorker) finish(delivered bool) {
	r := w.run
	w.backoff = 0
	if delivered {
		r.res.Deliveries++
		r.s.tel.deliveries.Inc()
		w.consecFails = 0
	} else {
		r.claimed-- // slot back for redelivery
		r.res.Retries++
		r.s.tel.retries.Inc()
		if r.res.Retries > r.maxRetries {
			r.fatal = fmt.Errorf("%w: %d retries", ErrRetriesExhausted, r.res.Retries)
			return
		}
		if b := r.s.backoffDelay(w.consecFails); b > 0 {
			r.s.stats.Backoffs++
			r.s.stats.BackoffWait += b
			r.s.tel.backoffs.Inc()
			w.backoff = b
		}
		w.consecFails++
	}
	r.s.Close(w.id, w.closeDoneFn)
}

// closeDone handles the cart's return to the library and re-enters the
// loop, via the retry backoff when one is pending.
func (w *shuttleWorker) closeDone(err error) {
	r := w.run
	if err != nil {
		if !errors.Is(err, ErrLaunchTimeout) {
			r.fatal = fmt.Errorf("dhlsys: close cart %d: %w", w.id, err)
			return
		}
		// The cart made it home regardless; record and keep going.
		r.res.Timeouts++
		r.res.FailureErrors = append(r.res.FailureErrors, err)
	}
	if w.backoff > 0 {
		r.s.Engine.MustAfter(w.backoff, evRetryBackoff, w.loopFn)
		return
	}
	w.loop()
}
