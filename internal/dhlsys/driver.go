package dhlsys

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/track"
	"repro/internal/units"
)

// This file implements the bulk-transfer orchestrator used by the paper's
// target workloads (§II-D): move a dataset resident in the library to the
// endpoint with repeated, optionally pipelined, cart deliveries.
//
// Per the paper's methodology, data load/unload time at the library is not
// charged ("we assume the whole dataset resides in the library"; "we do not
// account for the time or energy of reading the data, which must be done in
// both the traditional and DHL settings"). The endpoint-side SSD read *can*
// be enabled to study pipelining, which is exactly the case where multiple
// docking stations pay off.

// ShuttleOptions configures a bulk transfer.
type ShuttleOptions struct {
	// Dataset to deliver to the endpoint.
	Dataset units.Bytes
	// ReadAtEndpoint makes each delivery read the full cart contents through
	// the docking PCIe interface before releasing the cart. While one cart
	// is being read, others can be in flight (§V-B pipelining).
	ReadAtEndpoint bool
	// MaxRetries bounds redelivery attempts after in-flight failures;
	// 0 means deliveries × 10.
	MaxRetries int
}

// ShuttleResult summarises a completed bulk transfer.
type ShuttleResult struct {
	// Deliveries completed (each one cart-capacity of data).
	Deliveries int
	// Retries due to in-flight storage failures.
	Retries int
	// DegradedDeliveries completed with only the surviving stripes of a
	// degraded array (counted inside Deliveries).
	DegradedDeliveries int
	// Timeouts is the number of launches that exceeded the recovery
	// policy's launch timeout.
	Timeouts int
	// Duration of the whole transfer, including final cart returns.
	Duration units.Seconds
	// Energy charged for all launches.
	Energy units.Joules
	// BytesDelivered to the endpoint (deliveries × cart capacity, the last
	// delivery counted in full as in the analytical model).
	BytesDelivered units.Bytes
	// FailureErrors reported by the API during the run (§III-D).
	FailureErrors []error
}

// EffectiveBandwidth is delivered data over duration.
func (r ShuttleResult) EffectiveBandwidth() units.BytesPerSecond {
	if r.Duration <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(r.BytesDelivered) / float64(r.Duration))
}

// ErrRetriesExhausted is returned when failures prevent completing delivery.
var ErrRetriesExhausted = errors.New("dhlsys: delivery retries exhausted")

// backoffDelay returns the delay before a retry after consecFails
// consecutive failures: RetryBackoff doubling per failure, capped at
// MaxBackoff (which defaults to 16 × RetryBackoff). A zero RetryBackoff
// retries immediately, the pre-policy behaviour.
func (s *System) backoffDelay(consecFails int) units.Seconds {
	b := s.opt.Recovery.RetryBackoff
	if b <= 0 {
		return 0
	}
	maxB := s.opt.Recovery.MaxBackoff
	if maxB <= 0 {
		maxB = 16 * b
	}
	for i := 0; i < consecFails && b < maxB; i++ {
		b *= 2
	}
	if b > maxB {
		b = maxB
	}
	return b
}

// PreloadFleet fills every cart's array to capacity instantly, modelling the
// dataset already residing on library carts.
func (s *System) PreloadFleet() error {
	for _, c := range s.carts {
		if free := c.Array.Capacity() - c.Array.Used(); free > 0 {
			if _, err := c.Array.Write(free); err != nil {
				return fmt.Errorf("dhlsys: preload cart %d: %w", c.ID, err)
			}
		}
	}
	return nil
}

// Shuttle runs a bulk transfer to completion and returns its result. It
// drives the simulation engine itself; the system must be otherwise idle.
func (s *System) Shuttle(opt ShuttleOptions) (ShuttleResult, error) {
	if opt.Dataset <= 0 {
		return ShuttleResult{}, fmt.Errorf("dhlsys: dataset must be positive, got %v", opt.Dataset)
	}
	capB := s.opt.Core.Cart.Capacity()
	deliveries := int(math.Ceil(float64(opt.Dataset) / float64(capB)))
	maxRetries := opt.MaxRetries
	if maxRetries <= 0 {
		maxRetries = deliveries * 10
	}
	// Endpoint reads move the array's usable payload, which is slightly
	// below the nominal cart capacity for parity RAID levels.
	readB := capB
	if opt.ReadAtEndpoint {
		if err := s.PreloadFleet(); err != nil {
			return ShuttleResult{}, err
		}
		s.autoReload = true
		defer func() { s.autoReload = false }()
		for _, c := range s.carts {
			if ac := c.Array.Capacity(); ac < readB {
				readB = ac
			}
		}
	}

	startEnergy := s.stats.Energy
	start := s.Engine.Now()
	res := ShuttleResult{}
	claimed := 0 // delivery slots handed to workers
	var fatal error

	// Each cart runs an independent worker loop: claim a slot, Open,
	// optionally Read, Close, repeat. The System's internal FIFO queue
	// serialises resource contention. Failed deliveries retry with the
	// recovery policy's exponential backoff (deterministic: delays are
	// simulated time, scheduled on the event kernel).
	var workers []func()
	for i := 0; i < s.opt.NumCarts; i++ {
		id := track.CartID(i)
		consecFails := 0
		var loop func()
		loop = func() {
			if fatal != nil || claimed >= deliveries {
				return
			}
			claimed++
			s.Open(id, func(err error) {
				timedOut := errors.Is(err, ErrLaunchTimeout)
				if err != nil && !timedOut {
					fatal = fmt.Errorf("dhlsys: open cart %d: %w", id, err)
					return
				}
				finish := func(delivered bool) {
					next := loop
					if delivered {
						res.Deliveries++
						s.tel.deliveries.Inc()
						consecFails = 0
					} else {
						claimed-- // slot back for redelivery
						res.Retries++
						s.tel.retries.Inc()
						if res.Retries > maxRetries {
							fatal = fmt.Errorf("%w: %d retries", ErrRetriesExhausted, res.Retries)
							return
						}
						if b := s.backoffDelay(consecFails); b > 0 {
							s.stats.Backoffs++
							s.stats.BackoffWait += b
							s.tel.backoffs.Inc()
							next = func() { s.Engine.MustAfter(b, "retry-backoff", loop) }
						}
						consecFails++
					}
					s.Close(id, func(err error) {
						if err != nil {
							if !errors.Is(err, ErrLaunchTimeout) {
								fatal = fmt.Errorf("dhlsys: close cart %d: %w", id, err)
								return
							}
							// The cart made it home regardless; record and
							// keep going.
							res.Timeouts++
							res.FailureErrors = append(res.FailureErrors, err)
						}
						next()
					})
				}
				if timedOut {
					// The cart is docked but the delivery blew its budget:
					// the management layer redelivers (§III-D).
					res.Timeouts++
					res.FailureErrors = append(res.FailureErrors, err)
					finish(false)
					return
				}
				if !opt.ReadAtEndpoint {
					// Delivery = cart physically present; §V-B accounting.
					finish(true)
					return
				}
				s.Read(id, readB, func(_ units.Seconds, err error) {
					if err != nil {
						res.FailureErrors = append(res.FailureErrors, err)
						if errors.Is(err, ErrDegradedRead) {
							// Amelioration: the surviving stripes were
							// served; the delivery stands, degraded.
							res.DegradedDeliveries++
							finish(true)
							return
						}
						// Hard in-flight failure surfaced by the API;
						// redeliver.
						finish(false)
						return
					}
					finish(true)
				})
			})
		}
		workers = append(workers, loop)
	}
	for _, w := range workers {
		w()
	}
	if _, err := s.Run(); err != nil {
		return res, err
	}
	if fatal != nil {
		return res, fatal
	}
	if res.Deliveries != deliveries {
		return res, fmt.Errorf("dhlsys: delivered %d of %d", res.Deliveries, deliveries)
	}
	res.Duration = s.Engine.Now() - start
	res.Energy = s.stats.Energy - startEnergy
	res.BytesDelivered = units.Bytes(float64(deliveries) * float64(capB))
	return res, nil
}
