package dhlsys

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/workload"
)

// Trace replay: feed a workload.Trace (bulk backups, physics bursts, ML
// epochs — §II-D) through the system and measure queueing. Transfers are
// served in arrival order; a transfer whose predecessor is still moving
// waits, which is exactly the §VI contention the multi-stop and dual-rail
// refinements target.

// TraceEntryResult is the outcome of one replayed transfer.
type TraceEntryResult struct {
	Label   string
	Size    units.Bytes
	Arrival units.Seconds
	// Start is when the DHL began serving the transfer (≥ Arrival).
	Start units.Seconds
	// Wait is Start − Arrival.
	Wait units.Seconds
	// Duration of the transfer itself.
	Duration units.Seconds
	// Done is Start + Duration.
	Done units.Seconds
	// Deliveries and Energy for this transfer.
	Deliveries int
	Energy     units.Joules
}

// TraceResult summarises a replay.
type TraceResult struct {
	Entries []TraceEntryResult
	// MakeSpan is when the last transfer finished.
	MakeSpan units.Seconds
	// TotalWait across transfers.
	TotalWait units.Seconds
	// TotalEnergy across transfers.
	TotalEnergy units.Joules
	// Utilisation is busy time / makespan.
	Utilisation float64
}

// ReplayTrace serves each transfer of the trace in order, respecting
// arrival times. ReadAtEndpoint applies to every transfer.
func (s *System) ReplayTrace(tr workload.Trace, readAtEndpoint bool) (TraceResult, error) {
	if err := tr.Validate(); err != nil {
		return TraceResult{}, err
	}
	if len(tr) == 0 {
		return TraceResult{}, fmt.Errorf("dhlsys: empty trace")
	}
	var res TraceResult
	var busy units.Seconds
	clock := s.Engine.Now()
	for _, x := range tr {
		start := x.At
		if clock > start {
			start = clock
		}
		// Idle the engine forward to the start time.
		s.Engine.RunUntil(start)
		sh, err := s.Shuttle(ShuttleOptions{Dataset: x.Size, ReadAtEndpoint: readAtEndpoint})
		if err != nil {
			return res, fmt.Errorf("dhlsys: transfer %q: %w", x.Label, err)
		}
		e := TraceEntryResult{
			Label:      x.Label,
			Size:       x.Size,
			Arrival:    x.At,
			Start:      start,
			Wait:       start - x.At,
			Duration:   sh.Duration,
			Done:       start + sh.Duration,
			Deliveries: sh.Deliveries,
			Energy:     sh.Energy,
		}
		res.Entries = append(res.Entries, e)
		res.TotalWait += e.Wait
		res.TotalEnergy += e.Energy
		busy += e.Duration
		clock = e.Done
	}
	res.MakeSpan = clock
	if clock > 0 {
		res.Utilisation = float64(busy) / float64(clock)
	}
	return res, nil
}
