package dhlsys

// Cross-check: the closed-form pipelined transfer model (internal/core)
// against the event-driven simulation. The two are independent
// implementations of §V-B pipelining; they must agree.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/track"
	"repro/internal/units"
)

func TestPipelinedClosedFormMatchesSimulation(t *testing.T) {
	dataset := 12 * 256 * units.TB
	readRate := 227.2 * units.GBps // the 32×7.1 GB/s cart array

	pt, err := core.TransferPipelined(core.DefaultConfig(), dataset, core.PipelineOptions{
		DualRail:     true,
		DockStations: 4,
		ReadRate:     readRate,
	})
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.RailMode = track.DualRail
	opt.DockStations = 4
	opt.NumCarts = pt.CartsInFlight() + 1
	sys := mustSystem(t, opt)
	res, err := sys.Shuttle(ShuttleOptions{Dataset: dataset, ReadAtEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}

	// The simulation additionally waits for the final cart's return leg and
	// schedules with imperfect lookahead; agreement within 10 % validates
	// both models.
	ratio := float64(res.Duration) / float64(pt.Time)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("simulated %v vs closed-form %v (ratio %.3f), want within 10%%",
			res.Duration, pt.Time, ratio)
	}
}
