package dhlsys

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/track"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func mustSystem(t *testing.T, opt Options) *System {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	opt := DefaultOptions()
	opt.NumCarts = 0
	if _, err := New(opt); err == nil {
		t.Error("zero carts must be rejected")
	}
	opt = DefaultOptions()
	opt.FailureRate = 1.5
	if _, err := New(opt); err == nil {
		t.Error("bad failure rate must be rejected")
	}
	opt = DefaultOptions()
	opt.DockStations = 0
	if _, err := New(opt); err == nil {
		t.Error("zero docks must be rejected")
	}
	opt = DefaultOptions()
	opt.LibrarySlots = 1
	opt.NumCarts = 2
	if _, err := New(opt); err == nil {
		t.Error("fleet larger than library must be rejected")
	}
	opt = DefaultOptions()
	opt.Core.Cart = nil
	if _, err := New(opt); err == nil {
		t.Error("invalid core config must be rejected")
	}
}

func TestOpenCloseSingleRoundTrip(t *testing.T) {
	opt := DefaultOptions()
	opt.NumCarts = 1
	s := mustSystem(t, opt)
	var openErr, closeErr error
	opened := false
	s.Open(0, func(err error) {
		openErr = err
		opened = true
		c, _ := s.Cart(0)
		if c.Loc != AtDock {
			t.Errorf("after open, loc = %v", c.Loc)
		}
		s.Close(0, func(err error) { closeErr = err })
	})
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if openErr != nil || closeErr != nil {
		t.Fatalf("open=%v close=%v", openErr, closeErr)
	}
	if !opened {
		t.Fatal("open never completed")
	}
	// One round trip = 2 × analytical launch time (8.6 s each way).
	approx(t, "round trip", float64(end), 2*float64(s.Launch().Time), 1e-9)
	st := s.Stats()
	if st.Launches != 2 {
		t.Errorf("launches = %d, want 2", st.Launches)
	}
	if st.DockOps != 4 {
		t.Errorf("dock ops = %d, want 4", st.DockOps)
	}
	approx(t, "energy", float64(st.Energy), 2*float64(s.Launch().Energy), 1e-9)
	c, _ := s.Cart(0)
	if c.Loc != AtLibrary || c.Busy {
		t.Errorf("cart end state: loc=%v busy=%v", c.Loc, c.Busy)
	}
}

func TestAPIErrorPaths(t *testing.T) {
	s := mustSystem(t, DefaultOptions())
	check := func(name string, want error, got error) {
		t.Helper()
		if !errors.Is(got, want) {
			t.Errorf("%s err = %v, want %v", name, got, want)
		}
	}
	s.Open(99, func(err error) { check("open unknown", ErrUnknownCart, err) })
	s.Close(99, func(err error) { check("close unknown", ErrUnknownCart, err) })
	s.Read(99, units.GB, func(_ units.Seconds, err error) { check("read unknown", ErrUnknownCart, err) })
	s.Close(0, func(err error) { check("close at library", ErrNotDocked, err) })
	s.Read(0, units.GB, func(_ units.Seconds, err error) { check("read at library", ErrNotDocked, err) })
	s.Write(0, units.GB, func(_ units.Seconds, err error) { check("write at library", ErrNotDocked, err) })

	// Open the cart twice: the second is denied because it is busy.
	s.Open(0, func(err error) {
		if err != nil {
			t.Errorf("first open: %v", err)
		}
	})
	s.Open(0, func(err error) { check("open busy", ErrCartBusy, err) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Now docked: a second Open is denied (not at library).
	s.Open(0, func(err error) { check("open docked", ErrNotAtLibrary, err) })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Denied == 0 {
		t.Error("denied counter must increase")
	}
	if _, err := s.Cart(42); !errors.Is(err, ErrUnknownCart) {
		t.Errorf("Cart() err = %v", err)
	}
}

func TestReadWriteWhileDocked(t *testing.T) {
	opt := DefaultOptions()
	opt.NumCarts = 1
	s := mustSystem(t, opt)
	var wrote, read units.Seconds
	s.Open(0, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		s.Write(0, 256*units.TB, func(d units.Seconds, err error) {
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			wrote = d
			s.Read(0, 256*units.TB, func(d units.Seconds, err error) {
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				read = d
			})
		})
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 TB per device at 6 / 7.1 GB/s.
	approx(t, "write time", float64(wrote), 8e12/6e9, 1e-9)
	approx(t, "read time", float64(read), 8e12/7.1e9, 1e-9)
	st := s.Stats()
	if st.BytesWritten != 256*units.TB || st.BytesRead != 256*units.TB {
		t.Errorf("io counters: w=%v r=%v", st.BytesWritten, st.BytesRead)
	}
}

// TestShuttleMatchesAnalyticalModel is the cross-check promised in DESIGN.md:
// a strictly sequential simulated bulk transfer must agree exactly with the
// closed-form model of internal/core.
func TestShuttleMatchesAnalyticalModel(t *testing.T) {
	opt := DefaultOptions()
	opt.NumCarts = 1
	opt.DockStations = 1
	s := mustSystem(t, opt)
	dataset := 10 * s.opt.Core.Cart.Capacity() // exact multiple: 2.56 PB
	res, err := s.Shuttle(ShuttleOptions{Dataset: dataset})
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Transfer(opt.Core, dataset)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries != an.DeliveryTrips {
		t.Errorf("deliveries = %d, want %d", res.Deliveries, an.DeliveryTrips)
	}
	approx(t, "duration vs analytical", float64(res.Duration), float64(an.Time), 1e-9)
	approx(t, "energy vs analytical", float64(res.Energy), float64(an.Energy), 1e-9)
	if res.EffectiveBandwidth() <= 0 {
		t.Error("effective bandwidth must be positive")
	}
}

func TestShuttleValidation(t *testing.T) {
	s := mustSystem(t, DefaultOptions())
	if _, err := s.Shuttle(ShuttleOptions{Dataset: 0}); err == nil {
		t.Error("zero dataset must error")
	}
}

func TestSystemPipelining(t *testing.T) {
	// §V-B: "while processing a cart, launch different ones". With endpoint
	// reads enabled, a 2-cart dual-rail deployment must beat the 1-cart
	// sequential one.
	dataset := 8 * 256 * units.TB

	seq := mustSystem(t, func() Options {
		o := DefaultOptions()
		o.NumCarts = 1
		o.DockStations = 1
		return o
	}())
	seqRes, err := seq.Shuttle(ShuttleOptions{Dataset: dataset, ReadAtEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}

	pipe := mustSystem(t, func() Options {
		o := DefaultOptions()
		o.NumCarts = 4
		o.DockStations = 4
		o.RailMode = track.DualRail
		return o
	}())
	pipeRes, err := pipe.Shuttle(ShuttleOptions{Dataset: dataset, ReadAtEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if pipeRes.Duration >= seqRes.Duration {
		t.Fatalf("pipelined %v not faster than sequential %v", pipeRes.Duration, seqRes.Duration)
	}
	// Reading 256 TB at ~227 GB/s takes ~1127 s ≫ trip time, so with 4 carts
	// the reads should overlap almost completely: expect ≥2.5× speedup.
	speedup := float64(seqRes.Duration) / float64(pipeRes.Duration)
	if speedup < 2.5 {
		t.Errorf("pipelining speedup = %.2f, want ≥2.5", speedup)
	}
	// Same energy per launch either way.
	if pipeRes.Deliveries != seqRes.Deliveries {
		t.Errorf("deliveries differ: %d vs %d", pipeRes.Deliveries, seqRes.Deliveries)
	}
}

func TestDualRailFasterThanSingleWithoutReads(t *testing.T) {
	dataset := 6 * 256 * units.TB
	mk := func(mode track.RailMode) ShuttleResult {
		o := DefaultOptions()
		o.NumCarts = 2
		o.DockStations = 2
		o.RailMode = mode
		s := mustSystem(t, o)
		r, err := s.Shuttle(ShuttleOptions{Dataset: dataset})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	single := mk(track.SingleRail)
	dual := mk(track.DualRail)
	if dual.Duration >= single.Duration {
		t.Errorf("dual rail %v not faster than single %v", dual.Duration, single.Duration)
	}
}

func TestFailureInjectionRAID0Strict(t *testing.T) {
	// Recovery.StrictSSD restores the pre-amelioration failure model: any
	// SSD death on a RAID0 cart fails the whole cart and forces redelivery.
	o := DefaultOptions()
	o.NumCarts = 2
	o.FailureRate = 0.35
	o.Seed = 7
	o.Recovery.StrictSSD = true
	s := mustSystem(t, o)
	res, err := s.Shuttle(ShuttleOptions{Dataset: 12 * 256 * units.TB, ReadAtEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().FailuresSeen == 0 {
		t.Fatal("expected injected failures at 35% rate over ≥24 launches")
	}
	// Strict RAID0 cannot hide failures: the API must have reported errors
	// and the driver must have redelivered.
	if len(res.FailureErrors) == 0 || res.Retries == 0 {
		t.Errorf("failures=%d retries=%d errors=%d: strict RAID0 failures must surface",
			s.Stats().FailuresSeen, res.Retries, len(res.FailureErrors))
	}
	for _, e := range res.FailureErrors {
		if !errors.Is(e, ErrCartFailed) {
			t.Errorf("unexpected failure error: %v", e)
		}
	}
	if res.Deliveries != 12 {
		t.Errorf("deliveries = %d, want 12 despite failures", res.Deliveries)
	}
}

func TestFailureInjectionRAID0DegradedReads(t *testing.T) {
	// Default policy (§III-D amelioration): a failed SSD on a RAID0 cart
	// degrades capacity and bandwidth — the surviving stripes are served
	// and the delivery stands — instead of failing the whole cart.
	o := DefaultOptions()
	o.NumCarts = 2
	o.FailureRate = 0.35
	o.Seed = 7
	s := mustSystem(t, o)
	res, err := s.Shuttle(ShuttleOptions{Dataset: 12 * 256 * units.TB, ReadAtEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FailuresSeen == 0 {
		t.Fatal("expected injected failures at 35% rate over ≥24 launches")
	}
	if res.DegradedDeliveries == 0 || st.DegradedReads == 0 || st.DegradedBytes == 0 {
		t.Errorf("degraded deliveries=%d reads=%d bytes=%v: amelioration should have engaged",
			res.DegradedDeliveries, st.DegradedReads, st.DegradedBytes)
	}
	// Degraded reads replace redeliveries entirely for this workload.
	if res.Retries != 0 {
		t.Errorf("retries = %d, want 0 (degraded reads stand as deliveries)", res.Retries)
	}
	for _, e := range res.FailureErrors {
		if !errors.Is(e, ErrDegradedRead) {
			t.Errorf("unexpected failure error: %v", e)
		}
	}
	if res.Deliveries != 12 {
		t.Errorf("deliveries = %d, want 12", res.Deliveries)
	}
	// The degraded path must serve strictly less than the nominal payload.
	nominal := 12 * 256 * units.TB
	if st.BytesRead >= nominal {
		t.Errorf("bytes read = %v, want < %v (failed stripes are gone)", st.BytesRead, nominal)
	}
}

func TestFailureInjectionRAID5Ameliorates(t *testing.T) {
	// §III-D: "RAID and backups can ameliorate the issue" — with RAID5
	// arrays, single in-flight SSD failures do not cost redeliveries.
	o := DefaultOptions()
	o.NumCarts = 2
	o.FailureRate = 0.35
	o.Seed = 7
	o.RAID = storage.RAID5
	s := mustSystem(t, o)
	res, err := s.Shuttle(ShuttleOptions{Dataset: 12 * 256 * units.TB, ReadAtEndpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats().FailuresSeen == 0 {
		t.Fatal("expected injected failures")
	}
	if res.Retries != 0 || len(res.FailureErrors) != 0 {
		t.Errorf("RAID5 should ameliorate single failures: retries=%d errors=%d",
			res.Retries, len(res.FailureErrors))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (units.Seconds, Stats) {
		o := DefaultOptions()
		o.NumCarts = 3
		o.DockStations = 2
		o.FailureRate = 0.2
		o.Seed = 42
		s := mustSystem(t, o)
		res, err := s.Shuttle(ShuttleOptions{Dataset: 9 * 256 * units.TB, ReadAtEndpoint: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration, s.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Errorf("simulation not deterministic: %v/%+v vs %v/%+v", d1, s1, d2, s2)
	}
}

func TestLocationString(t *testing.T) {
	if AtLibrary.String() != "library" || InTransit.String() != "transit" || AtDock.String() != "dock" {
		t.Error("location strings wrong")
	}
	if Location(9).String() != "Location(9)" {
		t.Errorf("got %q", Location(9).String())
	}
}

func TestQueueingCounters(t *testing.T) {
	// Two carts, one rail: the second Open must queue.
	o := DefaultOptions()
	o.NumCarts = 2
	s := mustSystem(t, o)
	s.Open(0, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	s.Open(1, func(err error) {
		if err != nil {
			t.Error(err)
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Queued == 0 {
		t.Error("second open should have queued on the busy rail")
	}
	// Both docked in the end.
	for id := track.CartID(0); id < 2; id++ {
		c, _ := s.Cart(id)
		if c.Loc != AtDock {
			t.Errorf("cart %d at %v, want dock", id, c.Loc)
		}
	}
}
