package dhlsys

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/units"
)

func wearOptions(t *testing.T, conn fleet.Connector) Options {
	t.Helper()
	opt := DefaultOptions()
	opt.NumCarts = 1
	f, err := fleet.New(conn, fleet.DefaultPolicy(), opt.NumCarts)
	if err != nil {
		t.Fatal(err)
	}
	opt.Wear = f
	return opt
}

func TestWearTriggersConnectorService(t *testing.T) {
	// A tiny rated life forces services during a modest transfer: with 10
	// rated cycles and service at 80 %, every 8 mating cycles (= 4 round
	// trips) the cart is re-connectored at the library.
	conn := fleet.Connector{Name: "fragile", RatedCycles: 10, ReplaceCost: 5, ReplaceTime: 100}
	opt := wearOptions(t, conn)
	s := mustSystem(t, opt)
	res, err := s.Shuttle(ShuttleOptions{Dataset: 12 * 256 * units.TB})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// 12 deliveries = 24 mating cycles → 3 services.
	if st.ConnectorServices != 3 {
		t.Errorf("services = %d, want 3", st.ConnectorServices)
	}
	if st.MaintenanceTime != 300 || st.MaintenanceCost != 15 {
		t.Errorf("maintenance = %v / %v", st.MaintenanceTime, st.MaintenanceCost)
	}
	// The downtime appears in the makespan: baseline 12 round trips of
	// 17.2 s plus 3 × 100 s of service.
	base := 12 * 2 * float64(s.Launch().Time)
	want := base + 300
	got := float64(res.Duration)
	if got < want-1 || got > want+1 {
		t.Errorf("duration = %v, want ≈%v", got, want)
	}
}

func TestUSBCConnectorNeedsNoServiceAtCampaignScale(t *testing.T) {
	// §VI: USB-C's 10k-cycle rating survives a whole 29 PB-scale campaign
	// untouched (the M.2 edge connector would have been serviced dozens of
	// times).
	opt := wearOptions(t, fleet.USBC)
	s := mustSystem(t, opt)
	if _, err := s.Shuttle(ShuttleOptions{Dataset: 100 * 256 * units.TB}); err != nil {
		t.Fatal(err)
	}
	if s.Stats().ConnectorServices != 0 {
		t.Errorf("USB-C services = %d, want 0", s.Stats().ConnectorServices)
	}
	cycles, err := opt.Wear.Cycles(0)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 200 {
		t.Errorf("cycles = %d, want 200 (100 round trips × 2)", cycles)
	}
}

func TestM2EdgeConnectorServicedDuringCampaign(t *testing.T) {
	opt := wearOptions(t, fleet.M2Edge) // 300 cycles, service at 240
	s := mustSystem(t, opt)
	if _, err := s.Shuttle(ShuttleOptions{Dataset: 150 * 256 * units.TB}); err != nil {
		t.Fatal(err)
	}
	// 150 deliveries = 300 cycles → one service at cycle 240.
	if s.Stats().ConnectorServices != 1 {
		t.Errorf("services = %d, want 1", s.Stats().ConnectorServices)
	}
}
