package dhlsys

// The simulation's event and span names form a small fixed vocabulary,
// interned here as constants: the hot path never builds a name at run
// time (the lone per-cart name, Cart.spanTrack, is precomputed at
// construction), so scheduling and recording are free of string garbage,
// and trace consumers (cmd/dhltracecheck, the chaos scenarios' golden
// logs) can rely on the exact byte strings below.
const (
	// Event-kernel event names (sim.Engine schedule sites).
	evUndockLibrary  = "undock@library"
	evUndockEndpoint = "undock@endpoint"
	evDockLibrary    = "dock@library"
	evDockEndpoint   = "dock@endpoint"
	evTransitOut     = "transit-out"
	evTransitIn      = "transit-in"
	evIO             = "io"
	evIODegraded     = "io-degraded"
	evService        = "connector-service"
	evRetryBackoff   = "retry-backoff"

	// Span and instant names on cart telemetry tracks.
	spanUndock  = "undock"
	spanDock    = "dock"
	spanTransit = "transit"
	spanAccel   = "accel"
	spanCruise  = "cruise"
	spanBrake   = "brake"
	spanLoiter  = "loiter"
	spanEnqueue = "enqueue"
	spanIORead  = "io-read"
	spanIOWrite = "io-write"
	spanIODegr  = "io-degraded"
	markStall   = "stall"
	markReroute = "reroute"
	markTimeout = "timeout"
)
