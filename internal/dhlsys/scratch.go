package dhlsys

import (
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// launchScratch is a cart's reusable in-flight operation state plus the
// launch chain's pre-bound step closures. A cart runs at most one
// operation at a time (Cart.Busy), so one scratch per cart replaces the
// per-launch closure chain Open/Close/Read/Write used to allocate: the
// steps below are bound once at construction and the per-launch state
// they need travels through these fields instead of closure captures.
//
// Re-entrancy rule: a step that invokes a caller callback (done/ioDone)
// must copy the field to a local and clear it first — the callback may
// immediately start the cart's next operation, which rewrites the
// scratch (the bulk-transfer driver chains Open→Read→Close this way).
type launchScratch struct {
	// Per-operation state (valid while Cart.Busy).
	dir       track.Direction
	done      func(error)
	dyn       launchDynamics
	reqAt     units.Seconds
	depart    units.Seconds
	arrive    units.Seconds
	dockStart units.Seconds
	// IO-operation state (an IO never overlaps a launch on one cart).
	ioDone  func(units.Seconds, error)
	ioDur   units.Seconds
	ioStart units.Seconds
	ioName  telemetry.StrID // interned io-read/io-write span name

	// Pre-bound steps, allocated once per cart.
	tryOpen    func() bool
	tryClose   func() bool
	outUndock  func()
	outArrive  func()
	outTryDock func() bool
	outDock    func()
	inUndock   func()
	inArrive   func()
	inDock     func()
	ioFinish   func()
}

// bindLaunchSteps allocates the cart's step closures; called once per
// cart at system construction.
func (s *System) bindLaunchSteps(c *Cart) {
	sc := &c.scratch
	sc.tryOpen = func() bool { return s.tryOpenStep(c) }
	sc.tryClose = func() bool { return s.tryCloseStep(c) }
	sc.outUndock = func() { s.outUndockStep(c) }
	sc.outArrive = func() { s.outArriveStep(c) }
	sc.outTryDock = func() bool { return s.outTryDockStep(c) }
	sc.outDock = func() { s.outDockStep(c) }
	sc.inUndock = func() { s.inUndockStep(c) }
	sc.inArrive = func() { s.inArriveStep(c) }
	sc.inDock = func() { s.inDockStep(c) }
	sc.ioFinish = func() { s.ioFinishStep(c) }
}

// tryOpenStep acquires the outbound launch resources: the outbound LIM
// energised, a usable rail direction, and a free in-service station with
// no mid-dock cart.
//
//dhllint:hotpath
func (s *System) tryOpenStep(c *Cart) bool {
	sc := &c.scratch
	if !s.limUp(track.Outbound) || s.dock.Blocked() || !s.dock.HasFree() {
		return false
	}
	dir, reroute, ok := s.launchDirection(track.Outbound)
	if !ok {
		return false
	}
	if err := s.rail.Reserve(c.ID, dir); err != nil {
		return false
	}
	if reroute {
		s.markReroute(c, dir)
	}
	if err := s.lib.Remove(c.ID); err != nil {
		// Programming error; surface it.
		s.rail.Release(c.ID, dir)
		c.Busy = false
		done := sc.done
		sc.done = nil
		done(err)
		return true
	}
	s.recordQueueWait(c, "open", sc.reqAt)
	s.runOutbound(c, dir, sc.done)
	return true
}

// outUndockStep completes the library-side undock of an outbound launch.
//
//dhllint:hotpath
func (s *System) outUndockStep(c *Cart) {
	sc := &c.scratch
	s.stats.DockOps++
	s.tel.dockOps.Inc()
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.undock, c.launchStart, s.Engine.Now(),
		telemetry.KV{Key: "site", Value: "library"})
	//dhllint:allow allocflow -- fault injection schedules a repair closure; faults are off the steady path by definition
	s.maybeFailSSD(c)
	sc.dyn = s.dynamics()
	if sc.dyn.degraded {
		s.stats.DegradedLaunches++
		s.tel.degradedLaunches.Inc()
	}
	sc.depart = s.Engine.Now()
	s.scheduleTransit(c, sc.dyn.transit, evTransitOut, sc.dir, sc.outArrive)
}

// outArriveStep fires at the endpoint end of the outbound transit. A
// station free at reservation time may have failed in flight; the cart
// loiters at the bank (holding its rail slot) until a station is repaired
// or freed.
//
//dhllint:hotpath
func (s *System) outArriveStep(c *Cart) {
	sc := &c.scratch
	c.transitEv, c.transitFn = sim.Handle{}, nil
	s.recordTransit(c, sc.depart, s.Engine.Now(), sc.dyn, sc.dir)
	sc.arrive = s.Engine.Now()
	s.enqueue(sc.outTryDock)
}

// outTryDockStep claims a docking station for an arrived outbound cart.
//
//dhllint:hotpath
func (s *System) outTryDockStep(c *Cart) bool {
	sc := &c.scratch
	if s.dock.Blocked() || !s.dock.HasFree() {
		return false
	}
	if _, err := s.dock.BeginDock(c.ID); err != nil {
		return false
	}
	if s.tel.spans != nil && sc.arrive < s.Engine.Now() {
		s.tel.spans.RecordSpan(c.trackID, s.tel.ids.loiter, sc.arrive, s.Engine.Now())
	}
	sc.dockStart = s.Engine.Now()
	s.Engine.MustAfter(s.opt.Core.DockTime, evDockEndpoint, sc.outDock)
	return true
}

// outDockStep completes the endpoint dock and the outbound launch.
//
//dhllint:hotpath
func (s *System) outDockStep(c *Cart) {
	sc := &c.scratch
	if err := s.dock.EndDock(c.ID); err != nil {
		panic(err)
	}
	s.stats.DockOps++
	s.tel.dockOps.Inc()
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.dock, sc.dockStart, s.Engine.Now(),
		telemetry.KV{Key: "site", Value: "endpoint"})
	if s.opt.Wear != nil {
		// Endpoint mating cycle; service is deferred to the library
		// (§III-B.6).
		if _, err := s.opt.Wear.RecordDock(c.ID); err != nil {
			panic(err)
		}
	}
	s.recordLaunch(c, sc.dyn)
	if err := s.rail.Release(c.ID, sc.dir); err != nil {
		panic(err)
	}
	c.Loc = AtDock
	c.Busy = false
	done := sc.done
	sc.done = nil
	s.retryWaiting()
	done(s.checkLaunchTimeout(c))
}

// tryCloseStep acquires the inbound return resources.
//
//dhllint:hotpath
func (s *System) tryCloseStep(c *Cart) bool {
	sc := &c.scratch
	if !s.limUp(track.Inbound) || s.dock.Blocked() {
		return false
	}
	dir, reroute, ok := s.launchDirection(track.Inbound)
	if !ok {
		return false
	}
	if err := s.rail.Reserve(c.ID, dir); err != nil {
		return false
	}
	if reroute {
		s.markReroute(c, dir)
	}
	if err := s.dock.BeginUndock(c.ID); err != nil {
		s.rail.Release(c.ID, dir)
		c.Busy = false
		done := sc.done
		sc.done = nil
		done(err)
		return true
	}
	s.recordQueueWait(c, "close", sc.reqAt)
	s.runInbound(c, dir, sc.done)
	return true
}

// inUndockStep completes the endpoint-side undock of an inbound return.
//
//dhllint:hotpath
func (s *System) inUndockStep(c *Cart) {
	sc := &c.scratch
	if err := s.dock.EndUndock(c.ID); err != nil {
		panic(err)
	}
	s.stats.DockOps++
	s.tel.dockOps.Inc()
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.undock, c.launchStart, s.Engine.Now(),
		telemetry.KV{Key: "site", Value: "endpoint"})
	c.Loc = InTransit
	//dhllint:allow allocflow -- fault injection schedules a repair closure; faults are off the steady path by definition
	s.maybeFailSSD(c)
	sc.dyn = s.dynamics()
	if sc.dyn.degraded {
		s.stats.DegradedLaunches++
		s.tel.degradedLaunches.Inc()
	}
	sc.depart = s.Engine.Now()
	s.scheduleTransit(c, sc.dyn.transit, evTransitIn, sc.dir, sc.inArrive)
}

// inArriveStep fires at the library end of the inbound transit.
//
//dhllint:hotpath
func (s *System) inArriveStep(c *Cart) {
	sc := &c.scratch
	c.transitEv, c.transitFn = sim.Handle{}, nil
	s.recordTransit(c, sc.depart, s.Engine.Now(), sc.dyn, sc.dir)
	sc.dockStart = s.Engine.Now()
	s.Engine.MustAfter(s.opt.Core.DockTime, evDockLibrary, sc.inDock)
}

// inDockStep completes the library dock, services the cart, and finishes
// the inbound return.
//
//dhllint:hotpath
func (s *System) inDockStep(c *Cart) {
	sc := &c.scratch
	s.stats.DockOps++
	s.tel.dockOps.Inc()
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.dock, sc.dockStart, s.Engine.Now(),
		telemetry.KV{Key: "site", Value: "library"})
	s.recordLaunch(c, sc.dyn)
	if err := s.rail.Release(c.ID, sc.dir); err != nil {
		panic(err)
	}
	done := sc.done
	sc.done = nil
	if err := s.lib.Store(c.ID); err != nil {
		c.Busy = false
		done(err)
		return
	}
	c.Loc = AtLibrary
	c.Busy = false
	// Failed SSDs are serviced at the library (§III-B.6).
	for _, d := range c.Array.Devices {
		if d.Failed() {
			d.Repair()
		}
	}
	if s.autoReload {
		// Top up each device: only serviced (emptied) SSDs need reloading;
		// the rest are already full.
		for _, d := range c.Array.Devices {
			if free := d.Free(); free > 0 {
				if _, err := d.Write(free); err != nil {
					//dhllint:allow allocflow -- reload failure aborts the cycle; the wrap only fires on a broken device
					done(fmt.Errorf("dhlsys: reload cart %d: %w", c.ID, err))
					return
				}
			}
		}
	}
	//dhllint:allow allocflow -- connector service is scheduled maintenance: a deferred-completion closure, off the steady loop
	switch err := s.maybeServiceConnector(c, done); {
	case errors.Is(err, errServiceScheduled):
		return // done fires when the service completes
	case err != nil:
		done(err)
		return
	}
	s.retryWaiting()
	done(s.checkLaunchTimeout(c))
}

// ioFinishStep completes a healthy-array Read/Write transfer.
//
//dhllint:hotpath
func (s *System) ioFinishStep(c *Cart) {
	sc := &c.scratch
	c.Busy = false
	d := sc.ioDur
	s.tel.ioSeconds.Observe(float64(d))
	s.tel.spans.RecordSpan(c.trackID, sc.ioName, sc.ioStart, s.Engine.Now())
	done := sc.ioDone
	sc.ioDone = nil
	done(d, nil)
}
