package dhlsys

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

func TestReplayTraceValidation(t *testing.T) {
	s := mustSystem(t, DefaultOptions())
	if _, err := s.ReplayTrace(nil, false); err == nil {
		t.Error("empty trace must error")
	}
	bad := workload.Trace{{At: 5, Size: units.GB}, {At: 0, Size: units.GB}}
	if _, err := s.ReplayTrace(bad, false); err == nil {
		t.Error("unordered trace must error")
	}
}

func TestReplayTraceIdleSystem(t *testing.T) {
	// Widely spaced arrivals: no queueing, waits are zero, utilisation low.
	s := mustSystem(t, DefaultOptions())
	tr := workload.Trace{
		{At: 0, Size: 512 * units.TB, Label: "a"},
		{At: 10000, Size: 512 * units.TB, Label: "b"},
	}
	res, err := s.ReplayTrace(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 2 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if res.TotalWait != 0 {
		t.Errorf("wait = %v, want 0", res.TotalWait)
	}
	if res.Entries[1].Start != 10000 {
		t.Errorf("second start = %v", res.Entries[1].Start)
	}
	if res.Utilisation <= 0 || res.Utilisation > 0.05 {
		t.Errorf("utilisation = %v, want small", res.Utilisation)
	}
	for _, e := range res.Entries {
		if e.Deliveries != 2 {
			t.Errorf("%s deliveries = %d, want 2", e.Label, e.Deliveries)
		}
		if e.Done != e.Start+e.Duration {
			t.Error("done must be start+duration")
		}
	}
}

func TestReplayTraceBackToBackQueues(t *testing.T) {
	// Burst arrivals: later transfers wait for earlier ones.
	s := mustSystem(t, DefaultOptions())
	tr := workload.Trace{
		{At: 0, Size: 10 * 256 * units.TB, Label: "x"},
		{At: 1, Size: 10 * 256 * units.TB, Label: "y"},
		{At: 2, Size: 10 * 256 * units.TB, Label: "z"},
	}
	res, err := s.ReplayTrace(tr, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWait <= 0 {
		t.Error("burst arrivals must queue")
	}
	if res.Entries[1].Start < res.Entries[0].Done {
		t.Error("second transfer started before first finished")
	}
	if res.Entries[2].Wait <= res.Entries[1].Wait {
		t.Error("waits must grow down a backlog")
	}
	// Utilisation approaches 1 under backlog.
	if res.Utilisation < 0.95 {
		t.Errorf("utilisation = %v, want ≈1 under backlog", res.Utilisation)
	}
	// Energy adds up.
	var sum units.Joules
	for _, e := range res.Entries {
		sum += e.Energy
	}
	if math.Abs(float64(sum-res.TotalEnergy)) > 1e-9 {
		t.Error("energy sum mismatch")
	}
}

func TestReplayPhysicsBurstTraceKeepsUp(t *testing.T) {
	// §II-D.1: 300 TB bursts every 10 minutes are easy work for a default
	// DHL — no queueing.
	trace, err := workload.DefaultPhysicsBurst().Generate()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.NumCarts = 2
	s := mustSystem(t, opt)
	res, err := s.ReplayTrace(trace, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWait != 0 {
		t.Errorf("physics bursts should never queue on a DHL: wait = %v", res.TotalWait)
	}
}
