package dhlsys

import (
	"strconv"

	"repro/internal/telemetry"
	"repro/internal/track"
	"repro/internal/units"
)

// This file wires the simulation to internal/telemetry. Instrumentation is
// strictly optional: with Options.Telemetry nil every handle below is nil
// and every hook is a no-op, so an uninstrumented run pays one nil check
// per site (the budget BENCH_telemetry.json tracks).

// Histogram bucket layouts, in seconds. Fixed at construction so every run
// of a configuration shares one schema.
var (
	launchBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
	ioBuckets     = []float64{0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000}
	waitBuckets   = []float64{0.1, 1, 5, 10, 50, 100, 500, 1000, 5000}
)

// telemetryHooks are the precomputed metric handles the hot paths touch.
// The zero value (all nil) is the disabled state.
type telemetryHooks struct {
	spans *telemetry.SpanLog

	launches         *telemetry.Counter
	degradedLaunches *telemetry.Counter
	dockOps          *telemetry.Counter
	deliveries       *telemetry.Counter
	retries          *telemetry.Counter
	timeouts         *telemetry.Counter
	backoffs         *telemetry.Counter
	stalls           *telemetry.Counter
	reroutes         *telemetry.Counter
	denied           *telemetry.Counter
	queued           *telemetry.Counter
	degradedReads    *telemetry.Counter
	energyJ          *telemetry.Counter
	bytesRead        *telemetry.Counter
	bytesWritten     *telemetry.Counter

	launchSeconds *telemetry.Histogram
	ioSeconds     *telemetry.Histogram
	waitSeconds   *telemetry.Histogram

	simTime   *telemetry.Gauge
	simEvents *telemetry.Counter

	// ids are the span-log string IDs for the fixed name vocabulary
	// (names.go), interned once here so every record site is an ID-based
	// RecordSpan/RecordInstant — no per-record intern lookup. Zero-valued
	// when telemetry is disabled, which is harmless: records on a nil log
	// are no-ops.
	ids spanIDs

	// kvScratch is reused backing for hot-path span annotations; SpanLog
	// copies args on record, so handing out views of this array is safe.
	kvScratch [2]telemetry.KV
}

// spanIDs holds the interned IDs of the dhlsys span/instant vocabulary.
type spanIDs struct {
	undock, dock, transit   telemetry.StrID
	accel, cruise, brake    telemetry.StrID
	loiter, enqueue         telemetry.StrID
	ioRead, ioWrite, ioDegr telemetry.StrID
	stall, reroute, timeout telemetry.StrID
}

// initTelemetry binds the system (and its plant, injector, and engine) to
// the telemetry set. A nil set leaves every hook nil — the disabled state.
func (s *System) initTelemetry(set *telemetry.Set) {
	s.telSet = set
	reg := set.MetricsOf()
	s.tel = telemetryHooks{
		spans:            set.SpansOf(),
		launches:         reg.Counter("dhl_launches_total"),
		degradedLaunches: reg.Counter("dhl_degraded_launches_total"),
		dockOps:          reg.Counter("dhl_dock_ops_total"),
		deliveries:       reg.Counter("dhl_deliveries_total"),
		retries:          reg.Counter("dhl_retries_total"),
		timeouts:         reg.Counter("dhl_launch_timeouts_total"),
		backoffs:         reg.Counter("dhl_backoffs_total"),
		stalls:           reg.Counter("dhl_stalls_total"),
		reroutes:         reg.Counter("dhl_reroutes_total"),
		denied:           reg.Counter("dhl_api_denied_total"),
		queued:           reg.Counter("dhl_api_queued_total"),
		degradedReads:    reg.Counter("dhl_degraded_reads_total"),
		energyJ:          reg.Counter("dhl_launch_energy_joules_total"),
		bytesRead:        reg.Counter("dhl_bytes_read_total"),
		bytesWritten:     reg.Counter("dhl_bytes_written_total"),
		launchSeconds:    reg.Histogram("dhl_launch_seconds", launchBuckets),
		ioSeconds:        reg.Histogram("dhl_io_seconds", ioBuckets),
		waitSeconds:      reg.Histogram("dhl_queue_wait_seconds", waitBuckets),
		simTime:          reg.Gauge("dhl_sim_time_seconds"),
		simEvents:        reg.Counter("dhl_sim_events_total"),
	}
	if set == nil {
		return
	}
	sp := s.tel.spans
	s.tel.ids = spanIDs{
		undock: sp.Intern(spanUndock), dock: sp.Intern(spanDock),
		transit: sp.Intern(spanTransit), accel: sp.Intern(spanAccel),
		cruise: sp.Intern(spanCruise), brake: sp.Intern(spanBrake),
		loiter: sp.Intern(spanLoiter), enqueue: sp.Intern(spanEnqueue),
		ioRead: sp.Intern(spanIORead), ioWrite: sp.Intern(spanIOWrite),
		ioDegr: sp.Intern(spanIODegr), stall: sp.Intern(markStall),
		reroute: sp.Intern(markReroute), timeout: sp.Intern(markTimeout),
	}
	for _, c := range s.carts {
		c.trackID = sp.Intern(c.spanTrack)
	}
	s.rail.Instrument(reg)
	s.dock.Instrument(reg)
	s.inj.SetTelemetry(set)
}

// Telemetry returns the system's telemetry set (nil when disabled).
func (s *System) Telemetry() *telemetry.Set { return s.telSet }

// MetricsSnapshot refreshes the derived metrics — the sim-time gauge and
// the event counter, which syncs from the engine's processed count here
// rather than paying a tracer callback per event — and snapshots the
// registry. The zero snapshot is returned when telemetry is disabled.
// Direct Registry.Snapshot calls bypass this refresh and see the derived
// metrics as of the previous MetricsSnapshot.
func (s *System) MetricsSnapshot() telemetry.Snapshot {
	s.tel.simTime.Set(float64(s.Engine.Now()))
	s.tel.simEvents.Add(float64(s.Engine.Processed()) - s.tel.simEvents.Value())
	return s.telSet.MetricsOf().Snapshot()
}

// deny accounts one immediately-failed API request.
func (s *System) deny() {
	s.stats.Denied++
	s.tel.denied.Inc()
}

// cartTrack names a cart's span track.
func cartTrack(id track.CartID) string { return "cart-" + strconv.Itoa(int(id)) }

// recordLaunch accounts one completed one-way trip: the Stats counters,
// the telemetry counters, and the undock-to-dock duration histogram.
func (s *System) recordLaunch(c *Cart, dyn launchDynamics) {
	s.stats.Launches++
	s.stats.Energy += dyn.energy
	s.tel.launches.Inc()
	s.tel.energyJ.Add(float64(dyn.energy))
	s.tel.launchSeconds.Observe(float64(s.Engine.Now() - c.launchStart))
}

// markReroute accounts a launch reverse-running over the opposite rail of
// a dual-rail track around a blocked direction.
func (s *System) markReroute(c *Cart, dir track.Direction) {
	s.stats.Reroutes++
	s.tel.reroutes.Inc()
	s.tel.spans.RecordInstant(c.trackID, s.tel.ids.reroute, s.Engine.Now(),
		telemetry.KV{Key: "dir", Value: dir.String()})
}

// recordQueueWait observes how long a request sat in the FIFO between
// arrival and resource acquisition, and logs the wait as a span when it was
// non-zero.
func (s *System) recordQueueWait(c *Cart, op string, since units.Seconds) {
	now := s.Engine.Now()
	s.tel.waitSeconds.Observe(float64(now - since))
	if s.tel.spans != nil && since < now {
		s.tel.spans.RecordSpan(c.trackID, s.tel.ids.enqueue, since, now,
			telemetry.KV{Key: "op", Value: op})
	}
}

// recordTransit logs a completed rail transit and its accel/cruise/brake
// phase decomposition. The ramps are the launch physics (dyn.ramp); any
// stall delay stretches the cruise, since the plant cannot re-accelerate a
// cart mid-tube.
func (s *System) recordTransit(c *Cart, start, end units.Seconds, dyn launchDynamics, dir track.Direction) {
	if s.tel.spans == nil {
		return
	}
	// Annotations reuse the hooks' scratch array: the append below stays
	// within its capacity and SpanLog copies on record, so this path
	// allocates nothing.
	args := s.tel.kvScratch[:0]
	args = append(args, telemetry.KV{Key: "dir", Value: dir.String()})
	if dyn.degraded {
		args = append(args, telemetry.KV{Key: "degraded", Value: "true"})
	}
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.transit, start, end, args...)
	ramp := dyn.ramp
	if 2*ramp > end-start {
		// Triangular profile (or a clamp from degraded physics): the cart
		// never cruises.
		ramp = (end - start) / 2
	}
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.accel, start, start+ramp)
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.cruise, start+ramp, end-ramp)
	s.tel.spans.RecordSpan(c.trackID, s.tel.ids.brake, end-ramp, end)
}
