package dhlsys

// Cross-model property: for random valid configurations, the sequential
// event-driven simulation must agree exactly with the closed-form
// analytical model — the two are independent derivations from the same
// physics.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/units"
)

func TestSimMatchesAnalyticAcrossConfigsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		speeds := []units.MetresPerSecond{100, 150, 200, 250, 300}
		lengths := []units.Metres{100, 300, 500, 1000}
		ssds := []int{8, 16, 32, 64}
		cfg := core.DefaultConfig().With(
			speeds[rng.Intn(len(speeds))],
			lengths[rng.Intn(len(lengths))],
			ssds[rng.Intn(len(ssds))],
		)
		if cfg.Validate() != nil {
			return true // infeasible combos (ramps > track) are out of scope
		}
		opt := DefaultOptions()
		opt.Core = cfg
		opt.NumCarts = 1
		opt.DockStations = 1
		sys, err := New(opt)
		if err != nil {
			return false
		}
		trips := 2 + rng.Intn(5)
		dataset := units.Bytes(float64(trips)) * cfg.Cart.Capacity()
		res, err := sys.Shuttle(ShuttleOptions{Dataset: dataset})
		if err != nil {
			return false
		}
		an, err := core.Transfer(cfg, dataset)
		if err != nil {
			return false
		}
		dt := float64(res.Duration) - float64(an.Time)
		de := float64(res.Energy) - float64(an.Energy)
		return dt < 1e-6 && dt > -1e-6 && de < 1e-6 && de > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
