package fleet

import (
	"errors"
	"math"
	"testing"

	"repro/internal/track"
)

func newFleet(t *testing.T, c Connector) *Fleet {
	t.Helper()
	f, err := New(c, DefaultPolicy(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidation(t *testing.T) {
	if _, err := New(Connector{Name: "bad"}, DefaultPolicy(), 4); err == nil {
		t.Error("unrated connector must be rejected")
	}
	if _, err := New(USBC, Policy{ServiceFraction: 0}, 4); err == nil {
		t.Error("zero service fraction must be rejected")
	}
	if _, err := New(USBC, Policy{ServiceFraction: 1.5}, 4); err == nil {
		t.Error("service fraction > 1 must be rejected")
	}
	if _, err := New(USBC, DefaultPolicy(), 0); err == nil {
		t.Error("empty fleet must be rejected")
	}
}

func TestWearAccumulatesToService(t *testing.T) {
	f := newFleet(t, M2Edge) // 300 cycles, service at 240
	for i := 1; i < 240; i++ {
		due, err := f.RecordDock(0)
		if err != nil {
			t.Fatal(err)
		}
		if due {
			t.Fatalf("due at cycle %d, threshold is 240", i)
		}
	}
	due, err := f.RecordDock(0)
	if err != nil {
		t.Fatal(err)
	}
	if !due {
		t.Fatal("cycle 240 must trigger service")
	}
	c, _ := f.Cycles(0)
	if c != 240 {
		t.Errorf("cycles = %d", c)
	}
	cost, down, err := f.Service(0)
	if err != nil {
		t.Fatal(err)
	}
	if cost != M2Edge.ReplaceCost || down != M2Edge.ReplaceTime {
		t.Errorf("service = %v, %v", cost, down)
	}
	if c, _ := f.Cycles(0); c != 0 {
		t.Errorf("cycles after service = %d", c)
	}
	if f.Replacements(0) != 1 {
		t.Errorf("replacements = %d", f.Replacements(0))
	}
	// Other carts are untouched.
	if c, _ := f.Cycles(1); c != 0 {
		t.Errorf("cart 1 cycles = %d", c)
	}
}

func TestUnknownCartErrors(t *testing.T) {
	f := newFleet(t, USBC)
	if _, err := f.RecordDock(99); !errors.Is(err, ErrUnknownCart) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := f.Service(99); !errors.Is(err, ErrUnknownCart) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.Cycles(99); !errors.Is(err, ErrUnknownCart) {
		t.Errorf("err = %v", err)
	}
	ids := f.CartIDs()
	if len(ids) != 4 || ids[0] != 0 || ids[3] != 3 {
		t.Errorf("ids = %v", ids)
	}
}

func TestConnectorChoiceDominatesServiceInterval(t *testing.T) {
	// §VI: USB-C's 10k cycles vs M.2's 100s. At the bulk-transfer duty
	// cycle of the 29 PB job (227 one-way trips ≈ 454 docks per campaign),
	// an M.2-edge fleet needs servicing mid-campaign; USB-C runs for weeks.
	usb := newFleet(t, USBC)
	m2 := newFleet(t, M2Edge)
	const docksPerDay = 454 // one 29 PB campaign per day per cart
	pu, err := usb.Project(docksPerDay)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := m2.Project(docksPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if pm.DaysBetweenService >= 1 {
		t.Errorf("M.2 service interval = %v days, should not survive a daily campaign", pm.DaysBetweenService)
	}
	if pu.DaysBetweenService < 15 {
		t.Errorf("USB-C service interval = %v days, want ≥ 15", pu.DaysBetweenService)
	}
	ratio := pu.DaysBetweenService / pm.DaysBetweenService
	if math.Abs(ratio-float64(USBC.RatedCycles)/float64(M2Edge.RatedCycles)) > 1e-9 {
		t.Errorf("interval ratio = %v, want rated-cycle ratio", ratio)
	}
	// Availability: both near 1, USB-C strictly better.
	if pu.Availability <= pm.Availability {
		t.Error("USB-C availability must beat M.2")
	}
	if pu.Availability < 0.998 {
		t.Errorf("USB-C availability = %v, want ≥ 0.998", pu.Availability)
	}
	if pm.AnnualCost <= pu.AnnualCost {
		t.Error("M.2 annual maintenance must cost more at this duty cycle")
	}
}

func TestProjectValidation(t *testing.T) {
	f := newFleet(t, USBC)
	if _, err := f.Project(0); err == nil {
		t.Error("zero rate must error")
	}
}

func TestFleetIntegrationWithDeviceWear(t *testing.T) {
	// The storage layer's per-device plug counter and the fleet tracker
	// agree on when the M.2 rating is exceeded.
	f := newFleet(t, M2Edge)
	due := false
	for i := 0; i < 300 && !due; i++ {
		var err error
		due, err = f.RecordDock(2)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !due {
		t.Fatal("service must come due within the rated life")
	}
	c, _ := f.Cycles(2)
	if c > M2Edge.RatedCycles {
		t.Errorf("policy let wear (%d) exceed the rating (%d)", c, M2Edge.RatedCycles)
	}
	_ = track.CartID(2)
}

func TestZeroCartFleetRejected(t *testing.T) {
	// A fleet cannot be empty: zero and negative cart counts both fail, and
	// the constructor returns no half-built tracker alongside the error.
	for _, n := range []int{0, -3} {
		f, err := New(USBC, DefaultPolicy(), n)
		if err == nil {
			t.Errorf("New with %d carts: want error", n)
		}
		if f != nil {
			t.Errorf("New with %d carts returned a fleet alongside the error", n)
		}
	}
}

func TestProjectZeroAndNegativeDockRate(t *testing.T) {
	f := newFleet(t, USBC)
	for _, rate := range []float64{0, -1} {
		p, err := f.Project(rate)
		if err == nil {
			t.Errorf("Project(%v): want error", rate)
		}
		if p != (Projection{}) {
			t.Errorf("Project(%v) returned a non-zero projection alongside the error: %+v", rate, p)
		}
	}
}

func TestProjectAvailabilityBounds(t *testing.T) {
	// Even at an absurd duty cycle (a dock every few seconds, around the
	// clock) the projection stays internally consistent: availability in
	// [0, 1], a positive service interval, and replacement counts that
	// scale linearly with the docking rate.
	f := newFleet(t, USBC)
	slow, err := f.Project(4)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := f.Project(40_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Projection{slow, fast} {
		if p.Availability < 0 || p.Availability > 1 {
			t.Errorf("availability %v outside [0, 1]", p.Availability)
		}
		if p.DaysBetweenService <= 0 {
			t.Errorf("service interval %v not positive", p.DaysBetweenService)
		}
	}
	if fast.Availability >= slow.Availability {
		t.Errorf("availability must fall with duty cycle: %v vs %v",
			fast.Availability, slow.Availability)
	}
	ratio := fast.ReplacementsPerCartYear / slow.ReplacementsPerCartYear
	if math.Abs(ratio-10_000) > 1e-6 {
		t.Errorf("replacements do not scale linearly with dock rate: ratio = %v", ratio)
	}
}
