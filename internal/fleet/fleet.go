// Package fleet manages a DHL cart fleet's wear and maintenance: the
// §III-B.6 library "offers an easy solution to remove the carts for repair
// in the case of maintenance or failure", and §VI observes that connector
// choice dominates service life — "USB-C connectors (which can physically
// carry PCIe) are designed for 10K-20k plug/unplug cycles, making them a
// good choice for repeated docking and undocking, compared to M.2's 100s of
// cycles."
//
// The model tracks per-cart docking cycles against the connector rating,
// schedules preventive connector replacement at a service threshold, and
// reports fleet availability for a given duty cycle.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/track"
	"repro/internal/units"
)

// Connector is a docking connector technology.
type Connector struct {
	Name string
	// RatedCycles is the designed mating-cycle life.
	RatedCycles int
	// ReplaceCost per cart, USD.
	ReplaceCost units.USD
	// ReplaceTime the cart spends out of service per replacement.
	ReplaceTime units.Seconds
}

// §VI connector catalogue.
var (
	// USBC is the paper's recommendation: 10k–20k cycles (we carry the
	// conservative end).
	USBC = Connector{Name: "USB-C", RatedCycles: 10000, ReplaceCost: 40, ReplaceTime: 1800}
	// M2Edge is the raw M.2 edge connector: "100s of cycles".
	M2Edge = Connector{Name: "M.2 edge", RatedCycles: 300, ReplaceCost: 25, ReplaceTime: 3600}
)

// Validate checks the connector.
func (c Connector) Validate() error {
	if c.RatedCycles < 1 || c.ReplaceCost < 0 || c.ReplaceTime < 0 {
		return fmt.Errorf("fleet: connector %q parameters invalid", c.Name)
	}
	return nil
}

// Policy is the preventive-maintenance policy.
type Policy struct {
	// ServiceFraction of rated cycles at which the connector is replaced
	// (e.g. 0.8 → replace at 80 % of rated life).
	ServiceFraction float64
}

// DefaultPolicy services at 80 % of rated life.
func DefaultPolicy() Policy { return Policy{ServiceFraction: 0.8} }

// Fleet tracks wear for a set of carts.
type Fleet struct {
	Connector Connector
	Policy    Policy

	cycles       map[track.CartID]int
	replacements map[track.CartID]int
}

// New builds a fleet tracker for n carts.
func New(connector Connector, policy Policy, n int) (*Fleet, error) {
	if err := connector.Validate(); err != nil {
		return nil, err
	}
	if policy.ServiceFraction <= 0 || policy.ServiceFraction > 1 {
		return nil, errors.New("fleet: service fraction must be in (0,1]")
	}
	if n < 1 {
		return nil, errors.New("fleet: need at least one cart")
	}
	f := &Fleet{
		Connector:    connector,
		Policy:       policy,
		cycles:       make(map[track.CartID]int, n),
		replacements: make(map[track.CartID]int, n),
	}
	for i := 0; i < n; i++ {
		f.cycles[track.CartID(i)] = 0
	}
	return f, nil
}

// ErrUnknownCart is returned for carts outside the fleet.
var ErrUnknownCart = errors.New("fleet: unknown cart")

// serviceThreshold is the cycle count triggering replacement.
func (f *Fleet) serviceThreshold() int {
	return int(math.Ceil(f.Policy.ServiceFraction * float64(f.Connector.RatedCycles)))
}

// RecordDock counts one mating cycle for a cart and reports whether the
// cart is now due for connector service.
func (f *Fleet) RecordDock(id track.CartID) (dueForService bool, err error) {
	if _, ok := f.cycles[id]; !ok {
		//dhllint:allow allocflow -- unknown-cart rejection is a caller bug, never the steady dock loop
		return false, fmt.Errorf("%w: %d", ErrUnknownCart, id)
	}
	//dhllint:allow allocflow -- key pre-registered at construction; the increment rewrites an existing bucket
	f.cycles[id]++
	return f.cycles[id] >= f.serviceThreshold(), nil
}

// Service replaces a cart's connector, resetting its cycle count, and
// returns the cost and downtime incurred.
func (f *Fleet) Service(id track.CartID) (units.USD, units.Seconds, error) {
	if _, ok := f.cycles[id]; !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownCart, id)
	}
	f.cycles[id] = 0
	f.replacements[id]++
	return f.Connector.ReplaceCost, f.Connector.ReplaceTime, nil
}

// Cycles returns a cart's mating cycles since last service.
func (f *Fleet) Cycles(id track.CartID) (int, error) {
	c, ok := f.cycles[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownCart, id)
	}
	return c, nil
}

// Replacements returns a cart's lifetime connector replacements.
func (f *Fleet) Replacements(id track.CartID) int { return f.replacements[id] }

// CartIDs returns the fleet members in order.
func (f *Fleet) CartIDs() []track.CartID {
	ids := make([]track.CartID, 0, len(f.cycles))
	for id := range f.cycles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Projection is the long-run maintenance forecast for a duty cycle.
type Projection struct {
	// DocksPerDay per cart.
	DocksPerDay float64
	// DaysBetweenService per cart.
	DaysBetweenService float64
	// ReplacementsPerCartYear of connectors.
	ReplacementsPerCartYear float64
	// AnnualCost for the whole fleet.
	AnnualCost units.USD
	// Availability is the fraction of time a cart is in service (not being
	// re-connectored).
	Availability float64
}

// Project forecasts maintenance for the fleet at a docking rate. A cart
// doing round trips docks twice per trip (endpoint and library).
func (f *Fleet) Project(docksPerCartPerDay float64) (Projection, error) {
	if docksPerCartPerDay <= 0 {
		return Projection{}, errors.New("fleet: docking rate must be positive")
	}
	days := float64(f.serviceThreshold()) / docksPerCartPerDay
	perYear := 365.0 / days
	downPerYear := perYear * float64(f.Connector.ReplaceTime)
	yearSeconds := 365.0 * 86400
	return Projection{
		DocksPerDay:             docksPerCartPerDay,
		DaysBetweenService:      days,
		ReplacementsPerCartYear: perYear,
		AnnualCost:              units.USD(perYear * float64(f.Connector.ReplaceCost) * float64(len(f.cycles))),
		Availability:            1 - downPerYear/yearSeconds,
	}, nil
}
