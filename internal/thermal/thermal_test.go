package thermal

import (
	"math"
	"testing"

	"repro/internal/storage"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestSinkValidation(t *testing.T) {
	if (Sink{Name: "bad", Resistance: 0, Capacitance: 1}).Validate() == nil {
		t.Error("zero resistance must be invalid")
	}
	if (Sink{Name: "bad", Resistance: 1, Capacitance: 0}).Validate() == nil {
		t.Error("zero capacitance must be invalid")
	}
	if BareM2.Validate() != nil || ConductiveFins.Validate() != nil {
		t.Error("catalogue sinks must validate")
	}
}

func TestSteadyState(t *testing.T) {
	// Fins: 30 + 10×3 = 60 °C — under the 70 °C ceiling.
	approx(t, "fins steady", ConductiveFins.SteadyTemp(10, DefaultAmbient), 60, 1e-12)
	// Bare: 30 + 10×12 = 150 °C — far over.
	approx(t, "bare steady", BareM2.SteadyTemp(10, DefaultAmbient), 150, 1e-12)
}

func TestTransientResponse(t *testing.T) {
	s := ConductiveFins
	// At t = 0 the junction is at ambient; at t = τ it has covered 63 %.
	approx(t, "t=0", s.TempAfter(10, DefaultAmbient, 0), DefaultAmbient, 1e-9)
	tau := s.TimeConstant()
	want := DefaultAmbient + (60-DefaultAmbient)*(1-math.Exp(-1))
	approx(t, "t=tau", s.TempAfter(10, DefaultAmbient, tau), want, 1e-9)
	// Long after, it reaches steady state.
	approx(t, "t→∞", s.TempAfter(10, DefaultAmbient, 100*tau), 60, 1e-6)
}

func TestTimeToThrottle(t *testing.T) {
	// Fins never throttle at 10 W.
	if !math.IsInf(float64(ConductiveFins.TimeToThrottle(10, DefaultAmbient)), 1) {
		t.Error("fins must sustain 10 W indefinitely")
	}
	// Bare sticks throttle in finite time; the temperature at that moment
	// is the ceiling.
	tt := BareM2.TimeToThrottle(10, DefaultAmbient)
	if math.IsInf(float64(tt), 1) || tt <= 0 {
		t.Fatalf("bare throttle time = %v", tt)
	}
	approx(t, "temp at throttle", BareM2.TempAfter(10, DefaultAmbient, tt), ThrottleTemp, 1e-6)
}

func TestSustainablePower(t *testing.T) {
	// Fins sustain (70−30)/3 ≈ 13.3 W — full M.2 load fits.
	approx(t, "fins sustainable", float64(ConductiveFins.SustainablePower(DefaultAmbient)), 40.0/3, 1e-9)
	// Bare sustains only 3.3 W.
	approx(t, "bare sustainable", float64(BareM2.SustainablePower(DefaultAmbient)), 40.0/12, 1e-9)
}

func TestAnalyzeCart(t *testing.T) {
	fins := CartThermals{Sink: ConductiveFins, NumSSDs: 32, Ambient: DefaultAmbient}
	a, err := Analyze(fins)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalHeat != 320 {
		t.Errorf("total heat = %v, want 320 W", a.TotalHeat)
	}
	if !a.SustainedFullLoad || a.SustainableReadFraction != 1 {
		t.Errorf("fins must sustain full load: %+v", a)
	}

	bare := CartThermals{Sink: BareM2, NumSSDs: 32, Ambient: DefaultAmbient}
	b, err := Analyze(bare)
	if err != nil {
		t.Fatal(err)
	}
	if b.SustainedFullLoad {
		t.Error("bare sticks must not sustain full load")
	}
	if b.SustainableReadFraction >= 0.5 {
		t.Errorf("bare sustainable fraction = %v, want < 0.5", b.SustainableReadFraction)
	}
	if math.IsInf(float64(b.TimeToThrottle), 1) {
		t.Error("bare sticks must throttle eventually")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(CartThermals{Sink: ConductiveFins, NumSSDs: 0}); err == nil {
		t.Error("zero SSDs must error")
	}
	if _, err := Analyze(CartThermals{Sink: Sink{}, NumSSDs: 4}); err == nil {
		t.Error("invalid sink must error")
	}
}

func TestSustainableReadBandwidth(t *testing.T) {
	fins := CartThermals{Sink: ConductiveFins, NumSSDs: 32, Ambient: DefaultAmbient}
	bw, err := SustainableReadBandwidth(fins, storage.SabrentRocket4Plus)
	if err != nil {
		t.Fatal(err)
	}
	// Unthrottled: 32 × 7.1 GB/s.
	approx(t, "fins bandwidth", float64(bw), 32*7.1e9, 1e-9)

	bare := CartThermals{Sink: BareM2, NumSSDs: 32, Ambient: DefaultAmbient}
	bbw, err := SustainableReadBandwidth(bare, storage.SabrentRocket4Plus)
	if err != nil {
		t.Fatal(err)
	}
	if bbw >= bw/2 {
		t.Errorf("bare bandwidth %v should be under half of finned %v", bbw, bw)
	}
	if _, err := SustainableReadBandwidth(CartThermals{Sink: ConductiveFins}, storage.SabrentRocket4Plus); err == nil {
		t.Error("invalid cart must error")
	}
}

func TestHotterAisleShrinksBudget(t *testing.T) {
	cool := ConductiveFins.SustainablePower(25)
	hot := ConductiveFins.SustainablePower(45)
	if hot >= cool {
		t.Error("hotter ambient must shrink the power budget")
	}
	cart := CartThermals{Sink: ConductiveFins, NumSSDs: 32, Ambient: 45}
	a, err := Analyze(cart)
	if err != nil {
		t.Fatal(err)
	}
	if a.SustainableReadFraction >= 1 {
		t.Error("45 °C ambient should force some throttling on 3 K/W fins")
	}
}
