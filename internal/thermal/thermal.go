// Package thermal models the §VI heat-dissipation concern: "An M.2 SSD can
// consume up to 10W under load, hence using many at the same time can
// potentially create a heat dissipation problem. It can be solved by placing
// heat sinks between M.2 connectors to conductively cool them."
//
// The model is a per-SSD lumped RC thermal node: junction temperature rises
// over ambient by P·Rθ in steady state with time constant Rθ·C. A throttle
// ceiling caps sustained power, from which the cart's thermally sustainable
// read bandwidth follows.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/storage"
	"repro/internal/units"
)

// Temperatures in °C.
const (
	// DefaultAmbient is the under-floor air temperature.
	DefaultAmbient = 30.0
	// ThrottleTemp is the junction temperature at which NVMe controllers
	// throttle.
	ThrottleTemp = 70.0
)

// Sink is a per-SSD cooling solution.
type Sink struct {
	Name string
	// Resistance Rθ junction→ambient, K/W.
	Resistance float64
	// Capacitance C of SSD + sink, J/K.
	Capacitance float64
}

// The two §VI alternatives: a bare M.2 stick versus conductive fins between
// connectors.
var (
	// BareM2: a naked stick in still tube air — poor convection, high Rθ.
	BareM2 = Sink{Name: "bare M.2", Resistance: 12, Capacitance: 12}
	// ConductiveFins: the paper's proposal — metal fins between the M.2
	// connectors spreading into the docking station chassis.
	ConductiveFins = Sink{Name: "conductive fins", Resistance: 3, Capacitance: 60}
)

// Validate checks the sink parameters.
func (s Sink) Validate() error {
	if s.Resistance <= 0 || s.Capacitance <= 0 {
		return fmt.Errorf("thermal: sink %q needs positive R and C", s.Name)
	}
	return nil
}

// SteadyTemp is the junction temperature at sustained power p and ambient.
func (s Sink) SteadyTemp(p units.Watts, ambient float64) float64 {
	return ambient + float64(p)*s.Resistance
}

// TimeConstant is Rθ·C.
func (s Sink) TimeConstant() units.Seconds {
	return units.Seconds(s.Resistance * s.Capacitance)
}

// TempAfter is the junction temperature after running at power p for t,
// starting from ambient.
func (s Sink) TempAfter(p units.Watts, ambient float64, t units.Seconds) float64 {
	steady := s.SteadyTemp(p, ambient)
	return steady + (ambient-steady)*math.Exp(-float64(t)/float64(s.TimeConstant()))
}

// TimeToThrottle is how long the SSD can run at power p before reaching the
// throttle temperature. Returns +Inf if it never throttles at that power.
func (s Sink) TimeToThrottle(p units.Watts, ambient float64) units.Seconds {
	steady := s.SteadyTemp(p, ambient)
	if steady <= ThrottleTemp {
		return units.Seconds(math.Inf(1))
	}
	// ambient + (steady−ambient)(1−e^{−t/τ}) = throttle.
	frac := (ThrottleTemp - ambient) / (steady - ambient)
	return units.Seconds(-float64(s.TimeConstant()) * math.Log(1-frac))
}

// SustainablePower is the largest continuous per-SSD power that stays below
// the throttle ceiling.
func (s Sink) SustainablePower(ambient float64) units.Watts {
	return units.Watts((ThrottleTemp - ambient) / s.Resistance)
}

// CartThermals evaluates a docked cart's thermal budget.
type CartThermals struct {
	Sink    Sink
	NumSSDs int
	Ambient float64
}

// Errors returned by analysis.
var ErrNoSSDs = errors.New("thermal: need at least one SSD")

// Analysis is the thermal verdict for a docked cart under full load.
type Analysis struct {
	// TotalHeat dissipated by the cart at full load.
	TotalHeat units.Watts
	// SteadyTemp per SSD at full 10 W load.
	SteadyTemp float64
	// SustainedFullLoad reports whether full-rate reads run indefinitely.
	SustainedFullLoad bool
	// TimeToThrottle at full load (∞ if SustainedFullLoad).
	TimeToThrottle units.Seconds
	// SustainableReadFraction is the fraction of peak read bandwidth
	// maintainable indefinitely (1 if unthrottled; power ∝ bandwidth).
	SustainableReadFraction float64
}

// Analyze runs the §VI check for a cart.
func Analyze(c CartThermals) (Analysis, error) {
	if err := c.Sink.Validate(); err != nil {
		return Analysis{}, err
	}
	if c.NumSSDs < 1 {
		return Analysis{}, ErrNoSSDs
	}
	full := storage.MaxPowerM2
	a := Analysis{
		TotalHeat:      units.Watts(float64(c.NumSSDs) * float64(full)),
		SteadyTemp:     c.Sink.SteadyTemp(full, c.Ambient),
		TimeToThrottle: c.Sink.TimeToThrottle(full, c.Ambient),
	}
	a.SustainedFullLoad = a.SteadyTemp <= ThrottleTemp
	sustainable := c.Sink.SustainablePower(c.Ambient)
	frac := float64(sustainable) / float64(full)
	if frac > 1 {
		frac = 1
	}
	a.SustainableReadFraction = frac
	return a, nil
}

// SustainableReadBandwidth is the cart-wide read bandwidth maintainable
// indefinitely given the sink (device rate × thermal fraction × count).
func SustainableReadBandwidth(c CartThermals, spec storage.DeviceSpec) (units.BytesPerSecond, error) {
	a, err := Analyze(c)
	if err != nil {
		return 0, err
	}
	per := float64(spec.ReadRate) * a.SustainableReadFraction
	return units.BytesPerSecond(per * float64(c.NumSSDs)), nil
}
