// Package units defines the physical and information quantities used
// throughout the DHL reproduction, together with parsing and formatting
// helpers.
//
// The paper uses decimal (SI) data units throughout: 1 TB = 10^12 bytes,
// 1 PB = 10^15 bytes, and a 400 Gb/s link moves 50 GB/s. This package makes
// that convention explicit so that numbers like "29 PB over 400 Gb/s =
// 580,000 s" fall out exactly.
package units

import (
	"fmt"
	"math"
)

// Bytes is an information quantity in bytes. Values are float64 because the
// models routinely scale datasets by non-integral factors (the paper itself
// downscales by 1e7 for simulation).
type Bytes float64

// Decimal (SI) data units, as used by the paper.
const (
	Byte Bytes = 1
	KB   Bytes = 1e3
	MB   Bytes = 1e6
	GB   Bytes = 1e9
	TB   Bytes = 1e12
	PB   Bytes = 1e15
)

// Binary data units, provided for workloads specified in GiB (the paper
// converts 1 hour of video to 1 GiB).
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40
	PiB Bytes = 1 << 50
)

// TBf returns the quantity in decimal terabytes.
func (b Bytes) TBf() float64 { return float64(b / TB) }

// GBf returns the quantity in decimal gigabytes.
func (b Bytes) GBf() float64 { return float64(b / GB) }

// PBf returns the quantity in decimal petabytes.
func (b Bytes) PBf() float64 { return float64(b / PB) }

// Bits returns the quantity in bits.
func (b Bytes) Bits() float64 { return float64(b) * 8 }

// String renders the quantity with an auto-selected SI prefix.
func (b Bytes) String() string {
	abs := math.Abs(float64(b))
	switch {
	case abs >= float64(PB):
		return fmt.Sprintf("%.3gPB", float64(b/PB))
	case abs >= float64(TB):
		return fmt.Sprintf("%.3gTB", float64(b/TB))
	case abs >= float64(GB):
		return fmt.Sprintf("%.3gGB", float64(b/GB))
	case abs >= float64(MB):
		return fmt.Sprintf("%.3gMB", float64(b/MB))
	case abs >= float64(KB):
		return fmt.Sprintf("%.3gKB", float64(b/KB))
	default:
		return fmt.Sprintf("%.3gB", float64(b))
	}
}

// Seconds is a duration in seconds. The simulations model tens of hours at
// sub-millisecond resolution; float64 seconds keep the arithmetic exact
// enough (2^53 µs ≈ 285 years) while matching the paper's units.
type Seconds float64

const (
	Second Seconds = 1
	Minute Seconds = 60
	Hour   Seconds = 3600
	Day    Seconds = 86400
)

// Hours returns the duration in hours.
func (s Seconds) Hours() float64 { return float64(s / Hour) }

// Days returns the duration in days.
func (s Seconds) Days() float64 { return float64(s / Day) }

// String renders the duration with an auto-selected unit.
func (s Seconds) String() string {
	abs := math.Abs(float64(s))
	switch {
	case abs >= float64(Day):
		return fmt.Sprintf("%.3gd", float64(s/Day))
	case abs >= float64(Hour):
		return fmt.Sprintf("%.3gh", float64(s/Hour))
	case abs >= float64(Minute):
		return fmt.Sprintf("%.3gmin", float64(s/Minute))
	default:
		return fmt.Sprintf("%.3gs", float64(s))
	}
}

// Joules is an energy quantity.
type Joules float64

const (
	Joule     Joules = 1
	Kilojoule Joules = 1e3
	Megajoule Joules = 1e6
	Gigajoule Joules = 1e9
	KWh       Joules = 3.6e6
)

// KJ returns the energy in kilojoules.
func (j Joules) KJ() float64 { return float64(j / Kilojoule) }

// MJ returns the energy in megajoules.
func (j Joules) MJ() float64 { return float64(j / Megajoule) }

// String renders the energy with an auto-selected unit.
func (j Joules) String() string {
	abs := math.Abs(float64(j))
	switch {
	case abs >= float64(Gigajoule):
		return fmt.Sprintf("%.3gGJ", float64(j/Gigajoule))
	case abs >= float64(Megajoule):
		return fmt.Sprintf("%.3gMJ", float64(j/Megajoule))
	case abs >= float64(Kilojoule):
		return fmt.Sprintf("%.3gkJ", float64(j/Kilojoule))
	default:
		return fmt.Sprintf("%.3gJ", float64(j))
	}
}

// Watts is a power quantity.
type Watts float64

const (
	Watt     Watts = 1
	Kilowatt Watts = 1e3
	Megawatt Watts = 1e6
)

// KW returns the power in kilowatts.
func (w Watts) KW() float64 { return float64(w / Kilowatt) }

// String renders the power with an auto-selected unit.
func (w Watts) String() string {
	abs := math.Abs(float64(w))
	switch {
	case abs >= float64(Megawatt):
		return fmt.Sprintf("%.3gMW", float64(w/Megawatt))
	case abs >= float64(Kilowatt):
		return fmt.Sprintf("%.3gkW", float64(w/Kilowatt))
	default:
		return fmt.Sprintf("%.3gW", float64(w))
	}
}

// Energy returns the energy delivered by power w over duration t.
func Energy(w Watts, t Seconds) Joules { return Joules(float64(w) * float64(t)) }

// Power returns the average power of energy j spread over duration t.
// It returns 0 for non-positive durations.
func Power(j Joules, t Seconds) Watts {
	if t <= 0 {
		return 0
	}
	return Watts(float64(j) / float64(t))
}

// BitsPerSecond is a network line rate.
type BitsPerSecond float64

const (
	Gbps BitsPerSecond = 1e9
	Tbps BitsPerSecond = 1e12
)

// BytesPerSecond converts a line rate to a byte rate.
func (r BitsPerSecond) BytesPerSecond() BytesPerSecond { return BytesPerSecond(r / 8) }

// String renders the rate.
func (r BitsPerSecond) String() string {
	if math.Abs(float64(r)) >= float64(Tbps) {
		return fmt.Sprintf("%.3gTb/s", float64(r/Tbps))
	}
	return fmt.Sprintf("%.3gGb/s", float64(r/Gbps))
}

// BytesPerSecond is a data throughput.
type BytesPerSecond float64

const (
	MBps BytesPerSecond = 1e6
	GBps BytesPerSecond = 1e9
	TBps BytesPerSecond = 1e12
)

// TransferTime returns how long moving b bytes takes at rate r.
// It returns +Inf for non-positive rates and positive sizes, and 0 for
// non-positive sizes.
func (r BytesPerSecond) TransferTime(b Bytes) Seconds {
	if b <= 0 {
		return 0
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(r))
}

// String renders the throughput.
func (r BytesPerSecond) String() string {
	abs := math.Abs(float64(r))
	switch {
	case abs >= float64(TBps):
		return fmt.Sprintf("%.3gTB/s", float64(r/TBps))
	case abs >= float64(GBps):
		return fmt.Sprintf("%.3gGB/s", float64(r/GBps))
	default:
		return fmt.Sprintf("%.3gMB/s", float64(r/MBps))
	}
}

// Grams is a mass quantity. The paper discusses cart masses in grams.
type Grams float64

const (
	Gram     Grams = 1
	Kilogram Grams = 1e3
)

// Kg returns the mass in kilograms.
func (g Grams) Kg() float64 { return float64(g / Kilogram) }

// String renders the mass.
func (g Grams) String() string {
	if math.Abs(float64(g)) >= float64(Kilogram) {
		return fmt.Sprintf("%.3gkg", float64(g/Kilogram))
	}
	return fmt.Sprintf("%.3gg", float64(g))
}

// Metres is a length quantity.
type Metres float64

// MetresPerSecond is a speed quantity.
type MetresPerSecond float64

// MetresPerSecond2 is an acceleration quantity.
type MetresPerSecond2 float64

// USD is a monetary amount in US dollars.
type USD float64

// String renders the amount with a dollar sign and thousands grouping.
func (u USD) String() string {
	neg := u < 0
	v := math.Abs(float64(u))
	whole := int64(math.Round(v))
	s := groupThousands(whole)
	if neg {
		return "-$" + s
	}
	return "$" + s
}

func groupThousands(v int64) string {
	s := fmt.Sprintf("%d", v)
	n := len(s)
	if n <= 3 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (n-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}

// BytesPerGram is a storage density — the quantity the paper observes has
// been "quietly skyrocketing" for M.2 SSDs.
type BytesPerGram float64

// GramsPerMetre is a linear mass intensity (rail material per metre of
// track, Table VIII).
type GramsPerMetre float64

// Mass returns the mass of a length l of material at intensity i.
func (i GramsPerMetre) Mass(l Metres) Grams { return Grams(float64(i) * float64(l)) }

// USDPerKg is a commodity price rate (Table VIII quotes $/kg).
type USDPerKg float64

// Cost returns the price of mass m at rate p.
func (p USDPerKg) Cost(m Grams) USD { return USD(m.Kg() * float64(p)) }

// USDPerHour is a labor price rate.
type USDPerHour float64

// Cost returns the price of duration t at rate p.
func (p USDPerHour) Cost(t Seconds) USD { return USD(t.Hours() * float64(p)) }

// USDPerKWh is an electricity price rate.
type USDPerKWh float64

// Cost returns the price of energy e at rate p.
func (p USDPerKWh) Cost(e Joules) USD { return USD(float64(e/KWh) * float64(p)) }

// GBPerJoule expresses data-movement efficiency as the paper does (GB/J).
func GBPerJoule(moved Bytes, spent Joules) float64 {
	if spent <= 0 {
		return math.Inf(1)
	}
	return moved.GBf() / float64(spent)
}

// Ratio is a dimensionless improvement factor (e.g. "376.1x").
type Ratio float64

// String renders the ratio in the paper's "N.Nx" style.
func (r Ratio) String() string { return fmt.Sprintf("%.1fx", float64(r)) }
