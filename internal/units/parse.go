package units

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses a human-readable data size like "29PB", "256 TB",
// "360GB", "512GiB" or "1e15" (bare numbers are bytes). Decimal prefixes
// are powers of 1000; binary prefixes (KiB…PiB) are powers of 1024.
func ParseBytes(s string) (Bytes, error) {
	in := strings.TrimSpace(s)
	if in == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	suffixes := []struct {
		suffix string
		unit   Bytes
	}{
		// Longest suffixes first so "PiB" wins over "B".
		{"KiB", KiB}, {"MiB", MiB}, {"GiB", GiB}, {"TiB", TiB}, {"PiB", PiB},
		{"KB", KB}, {"MB", MB}, {"GB", GB}, {"TB", TB}, {"PB", PB},
		{"B", Byte},
	}
	for _, c := range suffixes {
		if strings.HasSuffix(in, c.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(in, c.suffix))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad size %q: %w", s, err)
			}
			if v < 0 {
				return 0, fmt.Errorf("units: negative size %q", s)
			}
			return Bytes(v) * c.unit, nil
		}
	}
	v, err := strconv.ParseFloat(in, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return Bytes(v), nil
}
