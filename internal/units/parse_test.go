package units

// Edge-case coverage for ParseBytes beyond the happy paths in
// units_test.go: error-message content, the decimal-vs-binary prefix
// scale split, and format→parse round trips of specific values.

import (
	"strings"
	"testing"
)

func TestParseBytesPrefixScales(t *testing.T) {
	tests := []struct {
		in   string
		want Bytes
	}{
		// Decimal prefixes are powers of 1000, binary prefixes powers
		// of 1024 — the same digit must land on different byte counts.
		{"1KB", 1e3},
		{"1KiB", 1 << 10},
		{"1GB", 1e9},
		{"1GiB", 1 << 30},
		{"1PB", 1e15},
		{"1PiB", 1 << 50},
		// Longest-suffix match: "MiB" must not parse as "1Mi" + "B".
		{"2MiB", 2 << 20},
		// Bare numbers are bytes, including scientific notation.
		{"1e15", 1e15},
		{"42", 42},
		{"0", 0},
		{"1.5TB", 1.5 * TB},
	}
	for _, tt := range tests {
		got, err := ParseBytes(tt.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): unexpected error %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseBytes(%q) = %v, want %v", tt.in, float64(got), float64(tt.want))
		}
	}
}

func TestParseBytesErrorMessages(t *testing.T) {
	tests := []struct {
		in      string
		errPart string
	}{
		{"", "empty"},
		{"   ", "empty"},
		{"-1GB", "negative"},
		{"-0.5", "negative"},
		{"-3GiB", "negative"},
		{"PB", "bad size"},     // suffix with no number
		{"12XB", "bad size"},   // unknown prefix leaves non-numeric text
		{"1..5TB", "bad size"}, // malformed mantissa
		{"ten GB", "bad size"},
	}
	for _, tt := range tests {
		got, err := ParseBytes(tt.in)
		if err == nil {
			t.Errorf("ParseBytes(%q) = %v, want error containing %q", tt.in, float64(got), tt.errPart)
			continue
		}
		if !strings.Contains(err.Error(), tt.errPart) {
			t.Errorf("ParseBytes(%q) error = %q, want it to contain %q", tt.in, err, tt.errPart)
		}
	}
}

// TestParseBytesFormatRoundTrip checks fixed values (the property test in
// units_test.go only exercises whole-GB multiples) survive String() and
// re-parsing within the %.3g rendering precision.
func TestParseBytesFormatRoundTrip(t *testing.T) {
	values := []Bytes{
		0, 1, 999, KB, 1.5 * MB, GB, 29 * PB, 512 * GiB, 4 * TB, 123456789,
	}
	for _, v := range values {
		s := v.String()
		back, err := ParseBytes(s)
		if err != nil {
			t.Errorf("ParseBytes(%q) from %v.String(): %v", s, float64(v), err)
			continue
		}
		if !almostEq(float64(back), float64(v), 5e-3) {
			t.Errorf("round trip %v -> %q -> %v exceeds %%.3g tolerance", float64(v), s, float64(back))
		}
	}
}
