package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDecimalDataUnits(t *testing.T) {
	if 29*PB/TB != 29000 {
		t.Fatalf("29PB = %v TB, want 29000", 29*PB/TB)
	}
	if TB != 1e12 {
		t.Fatalf("TB = %v, want 1e12", float64(TB))
	}
	if GiB != 1073741824 {
		t.Fatalf("GiB = %v", float64(GiB))
	}
}

func TestPaper580kSeconds(t *testing.T) {
	// §II-C: 29 PB over 400 Gb/s takes 580,000 s ≈ 6.71 days.
	rate := (400 * Gbps).BytesPerSecond()
	tt := rate.TransferTime(29 * PB)
	if tt != 580000 {
		t.Fatalf("29PB @ 400Gb/s = %v s, want 580000", float64(tt))
	}
	if !almostEq(tt.Days(), 6.71, 0.01) {
		t.Fatalf("days = %v, want ≈6.71", tt.Days())
	}
}

func TestTransferTimeEdgeCases(t *testing.T) {
	if got := BytesPerSecond(0).TransferTime(GB); !math.IsInf(float64(got), 1) {
		t.Fatalf("zero rate: got %v, want +Inf", got)
	}
	if got := GBps.TransferTime(0); got != 0 {
		t.Fatalf("zero size: got %v, want 0", got)
	}
	if got := GBps.TransferTime(-5 * GB); got != 0 {
		t.Fatalf("negative size: got %v, want 0", got)
	}
}

func TestEnergyPowerRoundTrip(t *testing.T) {
	e := Energy(24*Watt, 580000*Second)
	if !almostEq(e.MJ(), 13.92, 1e-9) {
		t.Fatalf("A0 energy = %v MJ, want 13.92", e.MJ())
	}
	p := Power(e, 580000*Second)
	if !almostEq(float64(p), 24, 1e-12) {
		t.Fatalf("power round trip = %v, want 24", float64(p))
	}
	if Power(Joule, 0) != 0 {
		t.Fatal("Power with zero duration should be 0")
	}
}

func TestEnergyPowerProperty(t *testing.T) {
	f := func(w float64, tRaw float64) bool {
		tt := math.Abs(math.Mod(tRaw, 1e6)) + 1e-3
		ww := math.Mod(w, 1e6)
		e := Energy(Watts(ww), Seconds(tt))
		back := Power(e, Seconds(tt))
		return almostEq(float64(back), ww, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGBPerJoule(t *testing.T) {
	// Table VI: 256 TB moved for 15.04 kJ ≈ 17 GB/J.
	got := GBPerJoule(256*TB, 15040*Joule)
	if !almostEq(got, 17.02, 0.001) {
		t.Fatalf("GB/J = %v, want ≈17.02", got)
	}
	if !math.IsInf(GBPerJoule(GB, 0), 1) {
		t.Fatal("zero energy should give +Inf efficiency")
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{29 * PB, "29PB"},
		{256 * TB, "256TB"},
		{360 * GB, "360GB"},
		{5 * MB, "5MB"},
		{2 * KB, "2KB"},
		{12 * Byte, "12B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{580000, "6.71d"},
		{7200, "2h"},
		{90, "1.5min"},
		{8.6, "8.6s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestJoulesWattsString(t *testing.T) {
	if got := (15040 * Joule).String(); got != "15kJ" {
		t.Errorf("Joules.String() = %q, want 15kJ", got)
	}
	if got := (13.92 * Megajoule).String(); got != "13.9MJ" {
		t.Errorf("Joules.String() = %q, want 13.9MJ", got)
	}
	if got := (75200 * Watt).String(); got != "75.2kW" {
		t.Errorf("Watts.String() = %q, want 75.2kW", got)
	}
	if got := (24 * Watt).String(); got != "24W" {
		t.Errorf("Watts.String() = %q, want 24W", got)
	}
	if got := (3 * Megawatt).String(); got != "3MW" {
		t.Errorf("Watts.String() = %q, want 3MW", got)
	}
}

func TestRateStrings(t *testing.T) {
	if got := (400 * Gbps).String(); got != "400Gb/s" {
		t.Errorf("got %q", got)
	}
	if got := (3.8 * Tbps).String(); got != "3.8Tb/s" {
		t.Errorf("got %q", got)
	}
	if got := (30 * TBps).String(); got != "30TB/s" {
		t.Errorf("got %q", got)
	}
	if got := (50 * GBps).String(); got != "50GB/s" {
		t.Errorf("got %q", got)
	}
	if got := (500 * MBps).String(); got != "500MB/s" {
		t.Errorf("got %q", got)
	}
}

func TestGramsString(t *testing.T) {
	if got := (282 * Gram).String(); got != "282g" {
		t.Errorf("got %q", got)
	}
	if got := (1.5 * Kilogram).String(); got != "1.5kg" {
		t.Errorf("got %q", got)
	}
	if (282 * Gram).Kg() != 0.282 {
		t.Errorf("Kg() = %v", (282 * Gram).Kg())
	}
}

func TestUSDString(t *testing.T) {
	cases := []struct {
		in   USD
		want string
	}{
		{9525, "$9,525"},
		{21842, "$21,842"},
		{733, "$733"},
		{0, "$0"},
		{-14569, "-$14,569"},
		{1234567, "$1,234,567"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("USD(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestRatioString(t *testing.T) {
	if got := Ratio(376.07).String(); got != "376.1x" {
		t.Errorf("got %q", got)
	}
}

func TestBitsConversion(t *testing.T) {
	if (50 * GB).Bits() != 400e9 {
		t.Fatalf("50GB = %v bits", (50 * GB).Bits())
	}
	r := 400 * Gbps
	if r.BytesPerSecond() != 50*GBps {
		t.Fatalf("400Gb/s = %v", r.BytesPerSecond())
	}
}

func TestUnitAccessors(t *testing.T) {
	b := 1500 * GB
	if b.TBf() != 1.5 {
		t.Errorf("TBf = %v", b.TBf())
	}
	if b.GBf() != 1500 {
		t.Errorf("GBf = %v", b.GBf())
	}
	if b.PBf() != 0.0015 {
		t.Errorf("PBf = %v", b.PBf())
	}
	j := 2500 * Joule
	if j.KJ() != 2.5 {
		t.Errorf("KJ = %v", j.KJ())
	}
	w := 1750 * Watt
	if w.KW() != 1.75 {
		t.Errorf("KW = %v", w.KW())
	}
	s := 7200 * Second
	if s.Hours() != 2 {
		t.Errorf("Hours = %v", s.Hours())
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]Bytes{
		"29PB":   29 * PB,
		"256 TB": 256 * TB,
		"360GB":  360 * GB,
		"512GiB": 512 * GiB,
		"5.67MB": 5.67 * MB,
		"1e15":   1e15,
		"42B":    42,
		" 8 TB ": 8 * TB,
		"0.5KB":  500,
		"3KiB":   3 * KiB,
		"2MiB":   2 * MiB,
		"1TiB":   TiB,
		"0PB":    0,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBytes(%q) = %v, want %v", in, float64(got), float64(want))
		}
	}
	for _, bad := range []string{"", "PB", "abcTB", "-5GB", "-7", "12XB x"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}

func TestParseBytesRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		b := Bytes(raw%100000) * GB
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String() keeps 3 significant digits; allow that rounding.
		return almostEq(float64(parsed), float64(b), 0.005)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
