// Package cart implements the DHL cart composition and mass model of
// §III-B.1 and §IV-A of the paper.
//
// A cart is a polyacetal frame (≤30 g) holding N M.2 SSDs, with neodymium
// Halbach arrays for levitation and an aluminium fin for LIM propulsion. The
// paper's track configuration needs magnets at 10 % of total cart mass and a
// fin at 15 %, so:
//
//	total = (frame + SSDs) / (1 − 0.10 − 0.15)
//
// which reproduces Table V's 161 / 282 / 524 g for 16 / 32 / 64 SSDs.
package cart

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/storage"
	"repro/internal/units"
)

// Paper constants (§IV-A).
const (
	// MagnetMassFraction: Halbach arrays plus correcting magnets are 10 % of
	// cart mass for a 10 mm air gap.
	MagnetMassFraction = 0.10
	// FinMassFraction: the aluminium fin is 15 % of cart mass.
	FinMassFraction = 0.15
	// DefaultFrameMass: "no greater than 30 grams".
	DefaultFrameMass units.Grams = 30
	// NeodymiumDensity g/cm³.
	NeodymiumDensity = 7.5
	// AirGapMM is the standard levitation height.
	AirGapMM = 10.0
)

// Errors returned by cart construction.
var (
	ErrNoSSDs           = errors.New("cart: need at least one SSD")
	ErrBadMassFractions = errors.New("cart: magnet+fin mass fractions must sum below 1")
)

// Config describes a cart build.
type Config struct {
	// SSD is the storage device model loaded on the cart.
	SSD storage.DeviceSpec
	// NumSSDs is the number of SSDs (16, 32 or 64 in the paper's sweep).
	NumSSDs int
	// FrameMass of the polyacetal structure.
	FrameMass units.Grams
	// MagnetFraction and FinFraction of total cart mass.
	MagnetFraction, FinFraction float64
}

// DefaultConfig is the paper's bold configuration: 32 × 8 TB M.2 (256 TB,
// 282 g).
func DefaultConfig() Config {
	return Config{
		SSD:            storage.SabrentRocket4Plus,
		NumSSDs:        32,
		FrameMass:      DefaultFrameMass,
		MagnetFraction: MagnetMassFraction,
		FinFraction:    FinMassFraction,
	}
}

// WithSSDs returns a copy of the config with n SSDs.
func (c Config) WithSSDs(n int) Config {
	c.NumSSDs = n
	return c
}

// Cart is a built cart: the mass decomposition plus its storage array.
type Cart struct {
	Config Config

	// Mass decomposition.
	SSDMass    units.Grams
	MagnetMass units.Grams
	FinMass    units.Grams
	TotalMass  units.Grams
}

// New validates the config and computes the mass decomposition.
func New(cfg Config) (*Cart, error) {
	if cfg.NumSSDs < 1 {
		return nil, ErrNoSSDs
	}
	if cfg.SSD.Capacity <= 0 {
		return nil, fmt.Errorf("cart: SSD spec %q has no capacity", cfg.SSD.Name)
	}
	payloadFrac := 1 - cfg.MagnetFraction - cfg.FinFraction
	if cfg.MagnetFraction < 0 || cfg.FinFraction < 0 || payloadFrac <= 0 {
		return nil, fmt.Errorf("%w: magnet=%v fin=%v", ErrBadMassFractions,
			cfg.MagnetFraction, cfg.FinFraction)
	}
	ssd := units.Grams(float64(cfg.NumSSDs) * float64(cfg.SSD.Mass))
	total := (cfg.FrameMass + ssd) / units.Grams(payloadFrac)
	return &Cart{
		Config:     cfg,
		SSDMass:    ssd,
		MagnetMass: units.Grams(float64(total) * cfg.MagnetFraction),
		FinMass:    units.Grams(float64(total) * cfg.FinFraction),
		TotalMass:  total,
	}, nil
}

// MustNew is New for known-good configs; it panics on error. Intended for
// package-level defaults and tests.
func MustNew(cfg Config) *Cart {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Capacity is the cart's total storage capacity.
func (c *Cart) Capacity() units.Bytes {
	return units.Bytes(float64(c.Config.NumSSDs) * float64(c.Config.SSD.Capacity))
}

// DensityPerGram is bytes stored per gram of cart.
func (c *Cart) DensityPerGram() units.BytesPerGram {
	return units.BytesPerGram(float64(c.Capacity()) / float64(c.TotalMass))
}

// NewArray builds the cart's storage array (RAID level and PCIe interface
// per docking-station design; the paper pairs one PCIe-6 lane per SSD at the
// 64-SSD maximum).
func (c *Cart) NewArray(level storage.RAIDLevel, pcieGen, lanesPerSSD int) (*storage.Array, error) {
	return storage.NewArray(level, c.Config.SSD, c.Config.NumSSDs, pcieGen, lanesPerSSD)
}

// MagnetVolumeCm3 is the neodymium volume implied by the magnet mass.
func (c *Cart) MagnetVolumeCm3() float64 {
	return float64(c.MagnetMass) / NeodymiumDensity
}

// String summarises the cart.
func (c *Cart) String() string {
	return fmt.Sprintf("cart{%d×%s = %v, %v}",
		c.Config.NumSSDs, c.Config.SSD.Name, c.Capacity(), c.TotalMass)
}

// ForCapacity builds the smallest cart (in whole SSDs) reaching the target
// capacity with the given SSD spec.
func ForCapacity(target units.Bytes, ssd storage.DeviceSpec) (*Cart, error) {
	if target <= 0 {
		return nil, fmt.Errorf("cart: target capacity must be positive, got %v", target)
	}
	n := int(math.Ceil(float64(target) / float64(ssd.Capacity)))
	cfg := DefaultConfig()
	cfg.SSD = ssd
	cfg.NumSSDs = n
	return New(cfg)
}

// PaperSweep returns the paper's three evaluated cart sizes: 128, 256 and
// 512 TB (16, 32 and 64 SSDs).
func PaperSweep() []*Cart {
	return []*Cart{
		MustNew(DefaultConfig().WithSSDs(16)),
		MustNew(DefaultConfig().WithSSDs(32)),
		MustNew(DefaultConfig().WithSSDs(64)),
	}
}
