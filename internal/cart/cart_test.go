package cart

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/units"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(math.Abs(want), 1e-12) {
		t.Errorf("%s = %v, want %v (±%v%%)", name, got, want, tol*100)
	}
}

func TestReproCartMasses(t *testing.T) {
	// Table V: cart masses 161, 282, 524 g for 16, 32, 64 SSDs.
	want := map[int]float64{16: 161, 32: 282, 64: 524}
	for n, m := range want {
		c := MustNew(DefaultConfig().WithSSDs(n))
		approx(t, "total mass", float64(c.TotalMass), m, 0.005)
	}
}

func TestReproSSDPackMasses(t *testing.T) {
	// §IV-A: 32 SSDs → 180 g pack; 16 → 91 g; 64 → 363 g.
	want := map[int]float64{16: 91, 32: 180, 64: 363}
	for n, m := range want {
		c := MustNew(DefaultConfig().WithSSDs(n))
		approx(t, "SSD pack mass", float64(c.SSDMass), m, 0.01)
	}
}

func TestCartCapacities(t *testing.T) {
	want := map[int]units.Bytes{16: 128 * units.TB, 32: 256 * units.TB, 64: 512 * units.TB}
	for n, cap := range want {
		c := MustNew(DefaultConfig().WithSSDs(n))
		if c.Capacity() != cap {
			t.Errorf("%d SSDs capacity = %v, want %v", n, c.Capacity(), cap)
		}
	}
}

func TestMassDecompositionClosure(t *testing.T) {
	c := MustNew(DefaultConfig())
	sum := c.SSDMass + c.MagnetMass + c.FinMass + c.Config.FrameMass
	approx(t, "mass closure", float64(sum), float64(c.TotalMass), 1e-12)
	approx(t, "magnet fraction", float64(c.MagnetMass)/float64(c.TotalMass), 0.10, 1e-12)
	approx(t, "fin fraction", float64(c.FinMass)/float64(c.TotalMass), 0.15, 1e-12)
}

func TestMassClosureProperty(t *testing.T) {
	f := func(nRaw uint8, magRaw, finRaw float64) bool {
		n := int(nRaw%128) + 1
		mag := math.Abs(math.Mod(magRaw, 0.4))
		fin := math.Abs(math.Mod(finRaw, 0.4))
		cfg := DefaultConfig()
		cfg.NumSSDs = n
		cfg.MagnetFraction = mag
		cfg.FinFraction = fin
		c, err := New(cfg)
		if err != nil {
			return mag+fin >= 1 // only rejectable reason here
		}
		sum := float64(c.SSDMass + c.MagnetMass + c.FinMass + cfg.FrameMass)
		return math.Abs(sum-float64(c.TotalMass)) < 1e-9*float64(c.TotalMass)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(DefaultConfig().WithSSDs(0)); !errors.Is(err, ErrNoSSDs) {
		t.Errorf("err = %v", err)
	}
	cfg := DefaultConfig()
	cfg.MagnetFraction = 0.6
	cfg.FinFraction = 0.5
	if _, err := New(cfg); !errors.Is(err, ErrBadMassFractions) {
		t.Errorf("err = %v", err)
	}
	cfg = DefaultConfig()
	cfg.MagnetFraction = -0.1
	if _, err := New(cfg); !errors.Is(err, ErrBadMassFractions) {
		t.Errorf("err = %v", err)
	}
	cfg = DefaultConfig()
	cfg.SSD = storage.DeviceSpec{Name: "empty"}
	if _, err := New(cfg); err == nil {
		t.Error("zero-capacity SSD must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config must panic")
		}
	}()
	MustNew(DefaultConfig().WithSSDs(-1))
}

func TestDensityPerGram(t *testing.T) {
	c := MustNew(DefaultConfig())
	// 256 TB / 282 g ≈ 0.91 TB/g.
	approx(t, "density", float64(c.DensityPerGram()), 256e12/281.92, 0.001)
	// Density improves with larger carts (fixed frame amortised).
	small := MustNew(DefaultConfig().WithSSDs(16))
	big := MustNew(DefaultConfig().WithSSDs(64))
	if !(big.DensityPerGram() > c.DensityPerGram() && c.DensityPerGram() > small.DensityPerGram()) {
		t.Error("density must increase with cart size")
	}
}

func TestNewArrayFromCart(t *testing.T) {
	c := MustNew(DefaultConfig())
	a, err := c.NewArray(storage.RAID0, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() != c.Capacity() {
		t.Errorf("array capacity %v != cart capacity %v", a.Capacity(), c.Capacity())
	}
}

func TestForCapacity(t *testing.T) {
	c, err := ForCapacity(360*units.GB, storage.SabrentRocket4Plus)
	if err != nil {
		t.Fatal(err)
	}
	if c.Config.NumSSDs != 1 {
		t.Errorf("360GB needs %d SSDs, want 1", c.Config.NumSSDs)
	}
	c2, err := ForCapacity(29*units.PB, storage.SabrentRocket4Plus)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Config.NumSSDs != 3625 {
		t.Errorf("29PB needs %d SSDs, want 3625", c2.Config.NumSSDs)
	}
	if _, err := ForCapacity(0, storage.SabrentRocket4Plus); err == nil {
		t.Error("zero target must error")
	}
}

func TestPaperSweep(t *testing.T) {
	sweep := PaperSweep()
	if len(sweep) != 3 {
		t.Fatalf("sweep size = %d", len(sweep))
	}
	wantTB := []float64{128, 256, 512}
	for i, c := range sweep {
		if c.Capacity().TBf() != wantTB[i] {
			t.Errorf("sweep[%d] = %v TB, want %v", i, c.Capacity().TBf(), wantTB[i])
		}
	}
}

func TestMagnetVolume(t *testing.T) {
	c := MustNew(DefaultConfig())
	// 28.2 g of NdFeB at 7.5 g/cm³ ≈ 3.76 cm³.
	approx(t, "magnet volume", c.MagnetVolumeCm3(), 28.192/7.5, 0.01)
}

func TestString(t *testing.T) {
	if MustNew(DefaultConfig()).String() == "" {
		t.Error("empty String()")
	}
}
